// Scenario: why cost-benefit beats fixed-parameter prefetching.
//
// Sweeps the compute/I-O ratio (T_cpu) and a mix of workloads, showing
// that (a) the best fixed threshold for Curewitz-style prefetching moves
// around, while (b) the cost-benefit controller adapts by itself — the
// paper's Section 9.7 argument, reproduced as a user-facing study.
//
//   $ ./adaptive_readahead [--refs N]
#include <algorithm>
#include <iostream>

#include "sim/simulator.hpp"
#include "trace/workloads.hpp"
#include "util/options.hpp"
#include "util/string_utils.hpp"
#include "util/table.hpp"

using namespace pfp;

int main(int argc, char** argv) {
  util::Options options;
  options.add("refs", "80000", "trace length per workload");
  options.add("cache", "1024", "cache size in blocks");
  if (!options.parse(argc, argv)) {
    return 0;
  }
  const auto refs = options.u64("refs");
  const auto blocks = static_cast<std::size_t>(options.u64("cache"));

  std::cout << "Adaptive cost-benefit prefetching vs fixed thresholds\n\n";
  const std::vector<double> thresholds = {0.002, 0.025, 0.1};

  util::TextTable table({"workload", "T_cpu(ms)", "tree (adaptive)",
                         "thr=0.002", "thr=0.025", "thr=0.1",
                         "best fixed"});
  for (const auto w : {trace::Workload::kSnake, trace::Workload::kCad}) {
    const auto workload = trace::make_workload(w, refs);
    // Small T_cpu values sit below the prefetch horizon (disk time no
    // longer hides behind one period of compute), which is where the
    // cost-benefit depth adaptation differs from fixed schemes.
    for (const double t_cpu : {2.0, 20.0, 320.0}) {
      std::vector<std::string> row = {trace::workload_name(w),
                                      util::format_double(t_cpu, 0)};
      sim::SimConfig config;
      config.cache_blocks = blocks;
      config.timing.t_cpu = t_cpu;
      config.policy.kind = core::policy::PolicyKind::kTree;
      const auto tree = sim::simulate(config, workload);
      row.push_back(util::format_percent(tree.metrics.miss_rate()));

      double best = 1.0;
      for (const double threshold : thresholds) {
        config.policy.kind = core::policy::PolicyKind::kTreeThreshold;
        config.policy.threshold = threshold;
        const auto r = sim::simulate(config, workload);
        row.push_back(util::format_percent(r.metrics.miss_rate()));
        best = std::min(best, r.metrics.miss_rate());
      }
      row.push_back(util::format_percent(best));
      table.row(std::move(row));
    }
  }
  table.print(std::cout);
  std::cout << "\nThe adaptive column tracks the best fixed column without "
               "anyone choosing a\nthreshold — and no single threshold "
               "column wins everywhere.\n";
  return 0;
}
