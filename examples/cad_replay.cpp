// Scenario: object prefetching for a CAD/EDA working set.
//
// The paper's motivating non-sequential workload: a design tool that
// re-traverses object structures whose identifiers have no spatial
// locality, so OS readahead (one-block lookahead) is useless.  This
// example replays a CAD-like session and shows (a) readahead failing,
// (b) the probability-tree prefetcher learning the traversals, and
// (c) what the predictions look like from inside the tree.
//
//   $ ./cad_replay [--refs N] [--cache N]
#include <iostream>

#include "core/tree/enumerator.hpp"
#include "sim/simulator.hpp"
#include "trace/gen_cad.hpp"
#include "util/options.hpp"
#include "util/string_utils.hpp"

using namespace pfp;

int main(int argc, char** argv) {
  util::Options options;
  options.add("refs", "147000", "trace length (paper CAD: 147,345)");
  options.add("cache", "1024", "cache size in blocks");
  options.add("seed", "1993", "workload seed");
  if (!options.parse(argc, argv)) {
    return 0;
  }

  trace::CadGenerator::Config gen;
  gen.references = options.u64("refs");
  gen.seed = options.u64("seed");
  const auto workload = trace::CadGenerator(gen).generate();
  std::cout << "CAD session: " << util::format_count(workload.size())
            << " object references, "
            << util::format_count(workload.unique_blocks())
            << " distinct objects\n\n";

  const auto cache_blocks =
      static_cast<std::size_t>(options.u64("cache"));
  sim::Result tree_result;
  sim::Result baseline;
  for (const auto kind : {core::policy::PolicyKind::kNoPrefetch,
                          core::policy::PolicyKind::kNextLimit,
                          core::policy::PolicyKind::kTree}) {
    sim::SimConfig config;
    config.cache_blocks = cache_blocks;
    config.policy.kind = kind;
    const auto result = sim::simulate(config, workload);
    std::cout << "== " << result.policy_name << " ==\n"
              << result.metrics.summary() << "\n";
    if (kind == core::policy::PolicyKind::kTree) {
      tree_result = result;
    } else if (kind == core::policy::PolicyKind::kNoPrefetch) {
      baseline = result;
    }
  }

  // Peek inside a standalone tree trained on the same trace: what does it
  // predict from the final context?
  core::tree::PrefetchTree tree;
  for (const auto& r : workload) {
    tree.access(r.block);
  }
  std::cout << "trained tree: " << util::format_count(tree.node_count())
            << " nodes (~"
            << util::format_bytes(
                   static_cast<double>(tree.approx_memory_bytes()))
            << " at the paper's 40 B/node)\n";
  core::tree::EnumeratorLimits limits;
  limits.max_candidates = 5;
  // The parse may have ended on a context with no history yet; fall back
  // to the root, whose children are the traversal entry points.
  auto candidates =
      core::tree::enumerate_candidates(tree, tree.current(), limits);
  if (candidates.empty()) {
    candidates = core::tree::enumerate_candidates(tree, tree.root(), limits);
  }
  std::cout << "next-object predictions from the current context:\n";
  for (const auto& c : candidates) {
    std::cout << "  object " << c.block << "  p="
              << util::format_double(c.probability, 3) << "  distance "
              << c.depth << "\n";
  }
  const double reduction =
      baseline.metrics.miss_rate() > 0
          ? 1.0 - tree_result.metrics.miss_rate() /
                      baseline.metrics.miss_rate()
          : 0.0;
  std::cout << "\nTakeaway: readahead gained nothing (object ids are "
               "scattered), while the\nprobability tree cut the miss rate "
               "by " << util::format_percent(reduction)
            << " — see bench/fig06_miss_rates for the full comparison.\n";
  return 0;
}
