// Quickstart: the library in five minutes.
//
//  1. Build an LZ prefetch tree from a handful of block accesses and ask
//     it for predictions (the paper's Figure 1 example).
//  2. Run the cost-benefit "tree" prefetcher against a tiny synthetic
//     workload and compare it with no prefetching.
//
//   $ ./quickstart
#include <iostream>

#include "core/tree/enumerator.hpp"
#include "core/tree/prefetch_tree.hpp"
#include "sim/simulator.hpp"
#include "trace/trace.hpp"
#include "util/prng.hpp"
#include "util/string_utils.hpp"

using namespace pfp;

namespace {

void demo_prefetch_tree() {
  std::cout << "--- 1. The prefetch tree (paper Figure 1) ---\n";
  // Blocks: a = 1, b = 2, c = 3.  Access string (a)(ac)(ab)(aba)(abb)(b).
  core::tree::PrefetchTree tree;
  for (const trace::BlockId b : {1u, 1u, 3u, 1u, 2u, 1u, 2u, 1u, 1u, 2u,
                                 2u, 2u}) {
    tree.access(b);
  }
  const auto root = tree.root();
  std::cout << "root weight (substrings seen): " << tree.node(root).weight
            << "\n";
  for (const auto child : tree.children(root)) {
    std::cout << "  P(block " << tree.node(child).block
              << " starts the next run) = "
              << util::format_percent(tree.edge_probability(root, child))
              << "\n";
  }

  core::tree::EnumeratorLimits limits;
  const auto candidates =
      core::tree::enumerate_candidates(tree, root, limits);
  std::cout << "prefetch candidates from the root, most probable first:\n";
  for (const auto& c : candidates) {
    std::cout << "  block " << c.block << "  p=" << c.probability
              << "  distance=" << c.depth << "\n";
  }
}

void demo_simulation() {
  std::cout << "\n--- 2. Cost-benefit prefetching vs plain LRU ---\n";
  // A workload a plain cache handles badly: a 60-block non-sequential
  // pattern looping through a 32-block cache.
  trace::Trace workload("looping-pattern");
  util::SplitMix64 scatter(2024);
  std::vector<trace::BlockId> pattern;
  for (int i = 0; i < 60; ++i) {
    pattern.push_back(scatter.next() >> 20);
  }
  for (int round = 0; round < 300; ++round) {
    for (const auto b : pattern) {
      workload.append(b);
    }
  }

  for (const auto kind : {core::policy::PolicyKind::kNoPrefetch,
                          core::policy::PolicyKind::kTree}) {
    sim::SimConfig config;
    config.cache_blocks = 32;
    config.policy.kind = kind;
    const auto result = sim::simulate(config, workload);
    std::cout << result.policy_name << ": miss rate "
              << util::format_percent(result.metrics.miss_rate())
              << ", simulated time "
              << util::format_double(result.metrics.elapsed_ms / 1000.0, 1)
              << " s\n";
  }
  std::cout << "\nThe tree learns the pattern and prefetches it ahead of "
               "use;\nsee examples/cad_replay.cpp for a realistic version "
               "of this effect.\n";
}

}  // namespace

int main() {
  demo_prefetch_tree();
  demo_simulation();
  return 0;
}
