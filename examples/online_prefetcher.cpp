// Scenario: embedding the prefetcher in a live system.
//
// Most of this repository replays recorded traces; real systems discover
// their reference stream one access at a time.  This example drives
// engine::PrefetchEngine exactly like a host block layer would — push one
// access, get the outcome and its modeled latency — and shows the
// predictor warming up live.  It then demonstrates persisting the whole
// trained engine (predictor tree + cache residency + metrics) with
// snapshot()/restore() and resuming it, the way a prediction service
// would survive a restart.
//
//   $ ./online_prefetcher [--refs N] [--cache N]
//
// The engine runs with its observability layer on (phase timers + event
// ring), the way a live deployment would expose itself to a metrics
// scraper; the run ends with the per-phase latency breakdown and a
// Prometheus text exposition of the counters.
#include <iostream>
#include <sstream>

#include "engine/prefetch_engine.hpp"
#include "obs/prometheus.hpp"
#include "trace/gen_cad.hpp"
#include "util/options.hpp"
#include "util/string_utils.hpp"

using namespace pfp;

int main(int argc, char** argv) {
  util::Options options;
  options.add("refs", "60000", "accesses to push through the engine");
  options.add("cache", "1024", "cache size in blocks");
  if (!options.parse(argc, argv)) {
    return 0;
  }

  trace::CadGenerator::Config gen;
  gen.references = options.u64("refs");
  const auto workload = trace::CadGenerator(gen).generate();

  engine::EngineConfig config;
  config.cache_blocks = static_cast<std::size_t>(options.u64("cache"));
  config.policy.kind = core::policy::PolicyKind::kTreeNextLimit;
  config.obs.phase_timers = true;
  config.obs.trace_capacity = 2048;
  engine::PrefetchEngine eng(config);

  std::cout << "Pushing " << util::format_count(workload.size())
            << " live accesses through an embedded tree-next-limit "
               "engine...\n\n";
  std::cout << "window       miss rate   mean latency (ms)\n";
  std::cout << "------------------------------------------\n";
  const std::size_t window = workload.size() / 8;
  std::uint64_t window_misses = 0;
  double window_latency = 0.0;
  std::size_t window_count = 0;
  std::size_t window_index = 0;
  for (const auto& record : workload) {
    const auto result = eng.access(record.block);
    window_latency += result.latency_ms;
    if (result.outcome == engine::Outcome::kMiss) {
      ++window_misses;
    }
    if (++window_count == window) {
      std::cout << "  " << window_index++ << "          "
                << util::format_percent(
                       static_cast<double>(window_misses) /
                       static_cast<double>(window_count))
                << "      "
                << util::format_double(window_latency /
                                           static_cast<double>(window_count),
                                       3)
                << "\n";
      window_misses = 0;
      window_latency = 0.0;
      window_count = 0;
    }
  }
  std::cout << "\nfinal engine metrics:\n" << eng.metrics().summary() << "\n";

  // --- observability: where did the host CPU time actually go? ---------
  const auto stats = eng.stats();
  if (stats.phases.total_count() > 0) {
    std::cout << "per-phase latency breakdown (real time, not modeled):\n"
              << stats.phases.summary() << "\n";
  }
  std::cout << "Prometheus exposition a scraper would see:\n\n";
  const obs::Label labels[] = {{"policy", "tree-next-limit"}};
  obs::render_prometheus(std::cout, stats, labels);
  std::cout << "\n";

  // --- persistence: snapshot the trained engine, restore, resume -------
  std::stringstream blob;
  eng.snapshot(blob);
  std::cout << "engine snapshot: " << blob.str().size() << " bytes ("
            << util::format_count(eng.metrics().policy.tree_nodes)
            << " predictor nodes + cache residency + metrics)\n";

  engine::PrefetchEngine resumed(config);
  resumed.restore(blob);
  std::cout << "restored engine resumes at access #"
            << util::format_count(resumed.metrics().accesses) << " with "
            << util::format_count(resumed.buffer_cache().resident())
            << " blocks already resident\n";

  // The restored predictor keeps the original's knowledge: replaying a
  // recent hot sequence hits immediately instead of re-warming.
  std::uint64_t hits = 0;
  const std::size_t tail = std::min<std::size_t>(workload.size(), 500);
  for (std::size_t i = workload.size() - tail; i < workload.size(); ++i) {
    const auto r = resumed.access(workload[i].block);
    hits += r.outcome != engine::Outcome::kMiss ? 1 : 0;
  }
  std::cout << "replaying the last " << tail
            << " accesses against the restored engine: "
            << util::format_percent(static_cast<double>(hits) /
                                    static_cast<double>(tail))
            << " served from cache\n";
  return 0;
}
