// Scenario: embedding the prefetcher in a live system.
//
// Most of this repository replays recorded traces; real systems discover
// their reference stream one access at a time.  This example drives
// sim::OnlineSession exactly like a host block layer would — push one
// access, get the outcome and its modeled latency — and shows the
// predictor warming up live.  It then demonstrates persisting a trained
// prefetch tree and reloading it for a prediction service.
//
//   $ ./online_prefetcher [--refs N] [--cache N]
#include <iostream>
#include <sstream>

#include "core/tree/enumerator.hpp"
#include "core/tree/prefetch_tree.hpp"
#include "sim/online_session.hpp"
#include "trace/gen_cad.hpp"
#include "util/options.hpp"
#include "util/string_utils.hpp"

using namespace pfp;

int main(int argc, char** argv) {
  util::Options options;
  options.add("refs", "60000", "accesses to push through the session");
  options.add("cache", "1024", "cache size in blocks");
  if (!options.parse(argc, argv)) {
    return 0;
  }

  trace::CadGenerator::Config gen;
  gen.references = options.u64("refs");
  const auto workload = trace::CadGenerator(gen).generate();

  sim::SimConfig config;
  config.cache_blocks = static_cast<std::size_t>(options.u64("cache"));
  config.policy.kind = core::policy::PolicyKind::kTreeNextLimit;
  sim::OnlineSession session(config);

  std::cout << "Pushing " << util::format_count(workload.size())
            << " live accesses through an online tree-next-limit "
               "session...\n\n";
  std::cout << "window       miss rate   mean latency (ms)\n";
  std::cout << "------------------------------------------\n";
  const std::size_t window = workload.size() / 8;
  std::uint64_t window_misses = 0;
  double window_latency = 0.0;
  std::size_t window_count = 0;
  std::size_t window_index = 0;
  for (const auto& record : workload) {
    const auto result = session.access(record.block);
    window_latency += result.latency_ms;
    if (result.outcome == sim::OnlineSession::Outcome::kMiss) {
      ++window_misses;
    }
    if (++window_count == window) {
      std::cout << "  " << window_index++ << "          "
                << util::format_percent(
                       static_cast<double>(window_misses) /
                       static_cast<double>(window_count))
                << "      "
                << util::format_double(window_latency /
                                           static_cast<double>(window_count),
                                       3)
                << "\n";
      window_misses = 0;
      window_latency = 0.0;
      window_count = 0;
    }
  }
  std::cout << "\nfinal session metrics:\n"
            << session.metrics().summary() << "\n";

  // --- persistence: train a tree, save it, reload it, predict ----------
  core::tree::PrefetchTree tree;
  for (const auto& record : workload) {
    tree.access(record.block);
  }
  std::stringstream blob;
  tree.serialize(blob);
  std::cout << "serialized trained tree: " << blob.str().size()
            << " bytes for " << util::format_count(tree.node_count())
            << " nodes\n";
  const auto reloaded = core::tree::PrefetchTree::deserialize(blob);
  core::tree::EnumeratorLimits limits;
  limits.max_candidates = 3;
  const auto predictions = core::tree::enumerate_candidates(
      reloaded, reloaded.root(), limits);
  std::cout << "top session entry points predicted by the reloaded tree:\n";
  for (const auto& c : predictions) {
    std::cout << "  object " << c.block << "  p="
              << util::format_double(c.probability, 3) << "\n";
  }
  return 0;
}
