// Trace utility: generate, convert, characterize and simulate traces from
// the command line.
//
//   $ ./trace_tool generate --workload cad --refs 50000 --out cad.pfpt
//   $ ./trace_tool info cad.pfpt
//   $ ./trace_tool convert cad.pfpt cad.txt
//   $ ./trace_tool simulate cad.pfpt --policy tree --cache 1024
#include <iostream>

#include "core/tree/predictability.hpp"
#include "sim/simulator.hpp"
#include "trace/characterize.hpp"
#include "trace/reader.hpp"
#include "trace/workloads.hpp"
#include "trace/writer.hpp"
#include "util/options.hpp"
#include "util/string_utils.hpp"

using namespace pfp;

namespace {

int usage() {
  std::cerr <<
      "usage: trace_tool <command> [args]\n"
      "  generate --workload cello|snake|cad|sitar --refs N --out FILE\n"
      "           [--seed N]\n"
      "  info FILE                    characterize a trace\n"
      "  convert SRC DST              transcode (.pfpt binary <-> text)\n"
      "  simulate FILE [--policy P] [--cache N] [--threshold X]\n"
      "           [--children K]\n";
  return 2;
}

int cmd_generate(int argc, char** argv) {
  util::Options options;
  options.add("workload", "cad", "cello|snake|cad|sitar");
  options.add("refs", "50000", "references to generate");
  options.add("out", "trace.pfpt", "output path (.pfpt = binary)");
  options.add("seed", "0", "seed perturbation");
  if (!options.parse(argc, argv)) {
    return 2;
  }
  const auto workload = trace::workload_from_name(options.str("workload"));
  const auto t = trace::make_workload(workload, options.u64("refs"),
                                      options.u64("seed"));
  trace::write_file(options.str("out"), t);
  std::cout << "wrote " << t.size() << " references to "
            << options.str("out") << "\n";
  return 0;
}

int cmd_info(int argc, char** argv) {
  if (argc < 1) {
    return usage();
  }
  const auto t = trace::read_file(argv[0]);
  std::cout << trace::to_string(trace::characterize(t));
  const auto lz = core::tree::measure_predictability(t);
  std::cout << "  LZ predictability: "
            << util::format_percent(lz.prediction_accuracy())
            << " (lvc revisit "
            << util::format_percent(lz.lvc_revisit_rate()) << ", "
            << lz.tree_nodes << " tree nodes)\n";
  return 0;
}

int cmd_convert(int argc, char** argv) {
  if (argc < 2) {
    return usage();
  }
  const auto t = trace::read_file(argv[0]);
  trace::write_file(argv[1], t);
  std::cout << "converted " << t.size() << " references: " << argv[0]
            << " -> " << argv[1] << "\n";
  return 0;
}

int cmd_simulate(int argc, char** argv) {
  if (argc < 1) {
    return usage();
  }
  const std::string path = argv[0];
  util::Options options;
  options.add("policy", "tree-next-limit",
              "no-prefetch|next-limit|tree|tree-next-limit|tree-lvc|"
              "perfect-selector|tree-threshold|tree-children");
  options.add("cache", "1024", "cache size in blocks");
  options.add("threshold", "0.05", "tree-threshold parameter");
  options.add("children", "3", "tree-children parameter");
  options.add("tcpu", "50", "T_cpu in milliseconds");
  if (!options.parse(argc - 1, argv + 1)) {
    return 2;
  }
  const auto t = trace::read_file(path);
  sim::SimConfig config;
  config.cache_blocks = static_cast<std::size_t>(options.u64("cache"));
  config.timing.t_cpu = options.real("tcpu");
  config.policy.kind =
      core::policy::kind_from_name(options.str("policy"));
  config.policy.threshold = options.real("threshold");
  config.policy.children =
      static_cast<std::uint32_t>(options.u64("children"));
  const auto result = sim::simulate(config, t);
  std::cout << "policy: " << result.policy_name << "  cache: "
            << config.cache_blocks << " blocks\n"
            << result.metrics.summary();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return usage();
  }
  const std::string command = argv[1];
  try {
    if (command == "generate") {
      return cmd_generate(argc - 1, argv + 1);
    }
    if (command == "info") {
      return cmd_info(argc - 2, argv + 2);
    }
    if (command == "convert") {
      return cmd_convert(argc - 2, argv + 2);
    }
    if (command == "simulate") {
      return cmd_simulate(argc - 2, argv + 2);
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return usage();
}
