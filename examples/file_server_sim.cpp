// Scenario: sizing the buffer cache of a file server.
//
// Generates a snake-like file-server workload (sequential file reads from
// many clients behind a small first-level cache) and reports, for a range
// of second-level cache sizes, what each prefetching policy buys — the
// kind of study an operator would run before provisioning RAM.  The study
// drives engine::PrefetchEngine push-style (the way the file server
// itself would embed it), then sizes up with engine::ShardedEngine to
// show what hash-partitioning the block space across cores buys.
//
//   $ ./file_server_sim [--refs N] [--clients N] [--csv out.csv]
//
// The final sharded run doubles as an observability demo: it scrapes the
// live engine counters into a Prometheus text exposition and dumps the
// per-shard event rings as Chrome trace_event JSON (open the file in
// chrome://tracing or https://ui.perfetto.dev).
#include <algorithm>
#include <chrono>
#include <fstream>
#include <iostream>

#include "engine/prefetch_engine.hpp"
#include "engine/sharded_engine.hpp"
#include "obs/prometheus.hpp"
#include "sim/report.hpp"
#include "trace/gen_fileserver.hpp"
#include "trace/l1_filter.hpp"
#include "util/options.hpp"
#include "util/string_utils.hpp"

using namespace pfp;

int main(int argc, char** argv) {
  util::Options options;
  options.add("refs", "150000", "post-filter trace length");
  options.add("clients", "12", "concurrently active clients");
  options.add("l1-mb", "5", "first-level cache size in MiB (8 KiB blocks)");
  options.add("seed", "42", "workload seed");
  options.add("csv", "", "write full results CSV here");
  options.add("trace-json", "file_server_trace.json",
              "write the sharded run's Chrome trace here (empty = skip)");
  if (!options.parse(argc, argv)) {
    return 0;
  }

  std::cout << "File-server cache sizing study\n";
  trace::FileServerGenerator::Config gen;
  gen.references = options.u64("refs") * 3;
  gen.clients = static_cast<std::uint32_t>(options.u64("clients"));
  gen.seed = options.u64("seed");
  const auto raw = trace::FileServerGenerator(gen).generate();
  trace::L1Filter l1(options.u64("l1-mb") * 1024 * 1024 / 8192);
  trace::Trace workload = l1.filter(raw);
  workload.truncate(options.u64("refs"));
  workload.set_name("file-server");
  std::cout << "workload: " << util::format_count(workload.size())
            << " disk-level references ("
            << util::format_percent(
                   static_cast<double>(l1.hits()) /
                   static_cast<double>(l1.hits() + l1.misses()))
            << " of raw accesses absorbed by the first-level cache)\n";

  std::vector<core::policy::PolicySpec> policies(4);
  policies[0].kind = core::policy::PolicyKind::kNoPrefetch;
  policies[1].kind = core::policy::PolicyKind::kNextLimit;
  policies[2].kind = core::policy::PolicyKind::kTree;
  policies[3].kind = core::policy::PolicyKind::kTreeNextLimit;

  // The sizing grid, driven through the embeddable engine the way the
  // server would run it: one push per block request.
  const std::vector<std::size_t> sizes = {256, 512, 1024, 2048, 4096};
  std::vector<sim::Result> results;
  for (const auto& policy : policies) {
    for (const std::size_t size : sizes) {
      engine::EngineConfig config;
      config.cache_blocks = size;
      config.policy = policy;
      engine::PrefetchEngine eng(config);
      for (const auto& record : workload) {
        eng.access(record.block);
      }
      sim::Result r;
      r.config = config;
      r.policy_name = eng.prefetcher().name();
      r.trace_name = workload.name();
      r.metrics = eng.metrics();
      results.push_back(std::move(r));
    }
  }

  sim::print_series_by_cache_size(
      std::cout, results,
      [](const sim::Result& r) { return r.metrics.miss_rate(); },
      "miss rate", /*percent=*/true);

  std::cout << "\nSimulated elapsed time (s) — what the miss rates mean "
               "for throughput:\n";
  sim::print_series_by_cache_size(
      std::cout, results,
      [](const sim::Result& r) { return r.metrics.elapsed_ms / 1000.0; },
      "simulated seconds", /*percent=*/false);

  // Provisioning verdict: smallest cache within 10% of the best observed
  // miss rate, per policy.
  std::cout << "\nSmallest cache within 10% of each policy's best miss "
               "rate:\n";
  for (const auto& policy : policies) {
    double best = 1.0;
    for (const auto& r : results) {
      if (r.config.policy.kind == policy.kind) {
        best = std::min(best, r.metrics.miss_rate());
      }
    }
    for (const std::size_t size : sizes) {
      const auto it = std::find_if(
          results.begin(), results.end(), [&](const sim::Result& r) {
            return r.config.policy.kind == policy.kind &&
                   r.config.cache_blocks == size;
          });
      if (it != results.end() &&
          it->metrics.miss_rate() <= best * 1.1 + 1e-9) {
        std::cout << "  " << it->policy_name << ": " << size << " blocks ("
                  << util::format_bytes(static_cast<double>(size) * 8192)
                  << ")\n";
        break;
      }
    }
  }
  if (sim::maybe_write_csv(options.str("csv"), results)) {
    std::cout << "(full CSV written to " << options.str("csv") << ")\n";
  }

  // --- scaling out: shard the block space across cores -----------------
  // A busy server can hash-partition blocks across independent engines,
  // one worker thread each.  Miss rates shift slightly (each shard has
  // its own cache and predictor) but wall-clock throughput scales.
  std::cout << "\nSharded scale-out (tree-next-limit, 1024 blocks total):\n";
  std::cout << "shards   wall ms   accesses/s   miss rate\n";
  std::cout << "------------------------------------------\n";
  for (const std::uint32_t shards : {1u, 2u, 4u}) {
    engine::ShardedConfig sc;
    sc.engine.cache_blocks = 1024 / shards;  // same total buffer memory
    sc.engine.policy.kind = core::policy::PolicyKind::kTreeNextLimit;
    sc.shards = shards;
    engine::ShardedEngine sharded(sc);
    const auto start = std::chrono::steady_clock::now();
    for (const auto& record : workload) {
      sharded.push(record.block);
    }
    sharded.flush();
    const auto elapsed = std::chrono::duration<double, std::milli>(
        std::chrono::steady_clock::now() - start);
    const auto merged = sharded.merged_metrics();
    std::cout << "  " << shards << "      "
              << util::format_double(elapsed.count(), 1) << "      "
              << util::format_count(static_cast<std::uint64_t>(
                     static_cast<double>(merged.accesses) /
                     (elapsed.count() / 1000.0)))
              << "      " << util::format_percent(merged.miss_rate())
              << "\n";
  }

  // --- observability: scrape the sharded server like Prometheus would --
  // Same 4-shard configuration, this time with phase timers and the
  // per-shard event rings on, the way a production scrape endpoint and a
  // flight recorder would run.
  {
    engine::ShardedConfig sc;
    sc.engine.cache_blocks = 256;
    sc.engine.policy.kind = core::policy::PolicyKind::kTreeNextLimit;
    sc.engine.obs.phase_timers = true;
    sc.engine.obs.trace_capacity = 4096;
    sc.shards = 4;
    engine::ShardedEngine sharded(sc);
    for (const auto& record : workload) {
      sharded.push(record.block);
    }
    sharded.flush();

    std::cout << "\nPrometheus exposition of the sharded run (merged view, "
              << sharded.stats().shards << " shards):\n\n";
    const obs::Label labels[] = {{"workload", workload.name()},
                                 {"policy", "tree-next-limit"}};
    obs::render_prometheus(std::cout, sharded.stats(), labels);

    const std::string trace_path = options.str("trace-json");
    if (!trace_path.empty()) {
      std::ofstream trace_out(trace_path);
      sharded.write_chrome_trace(trace_out);
      std::cout << "\n(chrome://tracing timeline of the last "
                << util::format_count(sharded.stats().trace_occupancy)
                << " events written to " << trace_path << ")\n";
    }
  }
  return 0;
}
