// Scenario: sizing the buffer cache of a file server.
//
// Generates a snake-like file-server workload (sequential file reads from
// many clients behind a small first-level cache) and reports, for a range
// of second-level cache sizes, what each prefetching policy buys — the
// kind of study an operator would run before provisioning RAM.
//
//   $ ./file_server_sim [--refs N] [--clients N] [--csv out.csv]
#include <iostream>

#include "sim/experiment.hpp"
#include "sim/report.hpp"
#include "trace/gen_fileserver.hpp"
#include "trace/l1_filter.hpp"
#include "util/options.hpp"
#include "util/string_utils.hpp"

using namespace pfp;

int main(int argc, char** argv) {
  util::Options options;
  options.add("refs", "150000", "post-filter trace length");
  options.add("clients", "12", "concurrently active clients");
  options.add("l1-mb", "5", "first-level cache size in MiB (8 KiB blocks)");
  options.add("seed", "42", "workload seed");
  options.add("csv", "", "write full results CSV here");
  if (!options.parse(argc, argv)) {
    return 0;
  }

  std::cout << "File-server cache sizing study\n";
  trace::FileServerGenerator::Config gen;
  gen.references = options.u64("refs") * 3;
  gen.clients = static_cast<std::uint32_t>(options.u64("clients"));
  gen.seed = options.u64("seed");
  const auto raw = trace::FileServerGenerator(gen).generate();
  trace::L1Filter l1(options.u64("l1-mb") * 1024 * 1024 / 8192);
  trace::Trace workload = l1.filter(raw);
  workload.truncate(options.u64("refs"));
  workload.set_name("file-server");
  std::cout << "workload: " << util::format_count(workload.size())
            << " disk-level references ("
            << util::format_percent(
                   static_cast<double>(l1.hits()) /
                   static_cast<double>(l1.hits() + l1.misses()))
            << " of raw accesses absorbed by the first-level cache)\n";

  std::vector<core::policy::PolicySpec> policies(4);
  policies[0].kind = core::policy::PolicyKind::kNoPrefetch;
  policies[1].kind = core::policy::PolicyKind::kNextLimit;
  policies[2].kind = core::policy::PolicyKind::kTree;
  policies[3].kind = core::policy::PolicyKind::kTreeNextLimit;

  const std::vector<std::size_t> sizes = {256, 512, 1024, 2048, 4096};
  const auto results =
      sim::run_serial(sim::grid(workload, sizes, policies));

  sim::print_series_by_cache_size(
      std::cout, results,
      [](const sim::Result& r) { return r.metrics.miss_rate(); },
      "miss rate", /*percent=*/true);

  std::cout << "\nSimulated elapsed time (s) — what the miss rates mean "
               "for throughput:\n";
  sim::print_series_by_cache_size(
      std::cout, results,
      [](const sim::Result& r) { return r.metrics.elapsed_ms / 1000.0; },
      "simulated seconds", /*percent=*/false);

  // Provisioning verdict: smallest cache within 10% of the best observed
  // miss rate, per policy.
  std::cout << "\nSmallest cache within 10% of each policy's best miss "
               "rate:\n";
  for (const auto& policy : policies) {
    double best = 1.0;
    for (const auto& r : results) {
      if (r.config.policy.kind == policy.kind) {
        best = std::min(best, r.metrics.miss_rate());
      }
    }
    for (const std::size_t size : sizes) {
      const auto it = std::find_if(
          results.begin(), results.end(), [&](const sim::Result& r) {
            return r.config.policy.kind == policy.kind &&
                   r.config.cache_blocks == size;
          });
      if (it != results.end() &&
          it->metrics.miss_rate() <= best * 1.1 + 1e-9) {
        std::cout << "  " << it->policy_name << ": " << size << " blocks ("
                  << util::format_bytes(static_cast<double>(size) * 8192)
                  << ")\n";
        break;
      }
    }
  }
  if (sim::maybe_write_csv(options.str("csv"), results)) {
    std::cout << "(full CSV written to " << options.str("csv") << ")\n";
  }
  return 0;
}
