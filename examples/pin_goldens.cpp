// Regenerates the golden table in tests/integration/metrics_pin_test.cpp.
// Run after an INTENTIONAL semantic change, paste the output over kGolden,
// and explain the drift in the commit message.  Counters print exactly;
// doubles print with max_digits10 so the pins can compare bit-identically.
#include <cinttypes>
#include <cstddef>
#include <cstdio>

#include "core/policy/factory.hpp"
#include "sim/simulator.hpp"
#include "trace/workloads.hpp"

namespace {

constexpr std::uint64_t kReferences = 30'000;
constexpr std::uint64_t kSeed = 7;
constexpr std::size_t kCacheBlocks = 512;

const pfp::core::policy::PolicyKind kKinds[] = {
    pfp::core::policy::PolicyKind::kNoPrefetch,
    pfp::core::policy::PolicyKind::kNextLimit,
    pfp::core::policy::PolicyKind::kTree,
    pfp::core::policy::PolicyKind::kTreeNextLimit,
    pfp::core::policy::PolicyKind::kTreeLvc,
    pfp::core::policy::PolicyKind::kTreeThreshold,
    pfp::core::policy::PolicyKind::kTreeChildren,
    pfp::core::policy::PolicyKind::kProbGraph,
    pfp::core::policy::PolicyKind::kPerfectSelector,
    pfp::core::policy::PolicyKind::kTreeAdaptive,
    pfp::core::policy::PolicyKind::kMarkov,
    pfp::core::policy::PolicyKind::kAssoc,
};

// Enumerator names as they appear in the Golden initializers.
const char* kind_token(pfp::core::policy::PolicyKind kind) {
  using pfp::core::policy::PolicyKind;
  switch (kind) {
    case PolicyKind::kNoPrefetch: return "kNoPrefetch";
    case PolicyKind::kNextLimit: return "kNextLimit";
    case PolicyKind::kTree: return "kTree";
    case PolicyKind::kTreeNextLimit: return "kTreeNextLimit";
    case PolicyKind::kTreeLvc: return "kTreeLvc";
    case PolicyKind::kTreeThreshold: return "kTreeThreshold";
    case PolicyKind::kTreeChildren: return "kTreeChildren";
    case PolicyKind::kProbGraph: return "kProbGraph";
    case PolicyKind::kPerfectSelector: return "kPerfectSelector";
    case PolicyKind::kTreeAdaptive: return "kTreeAdaptive";
    case PolicyKind::kMarkov: return "kMarkov";
    case PolicyKind::kAssoc: return "kAssoc";
  }
  return "?";
}

const char* workload_token(pfp::trace::Workload workload) {
  using pfp::trace::Workload;
  switch (workload) {
    case Workload::kCello: return "kCello";
    case Workload::kSnake: return "kSnake";
    case Workload::kCad: return "kCad";
    case Workload::kSitar: return "kSitar";
  }
  return "?";
}

}  // namespace

int main() {
  using namespace pfp;
  // Table order matches the test file: cad, sitar, then the PR that adds
  // a workload appends its rows at the end.
  const trace::Workload order[] = {trace::Workload::kCad,
                                   trace::Workload::kSitar,
                                   trace::Workload::kCello,
                                   trace::Workload::kSnake};
  for (const trace::Workload workload : order) {
    const trace::Trace t = trace::make_workload(workload, kReferences, kSeed);
    for (const core::policy::PolicyKind kind : kKinds) {
      sim::SimConfig config;
      config.cache_blocks = kCacheBlocks;
      config.policy.kind = kind;
      const sim::Result r = sim::simulate(config, t);
      std::printf(
          "    {trace::Workload::%s, core::policy::PolicyKind::%s,\n"
          "     %" PRIu64 "u, %" PRIu64 "u, %" PRIu64 "u, %.17g, %.17g},\n",
          workload_token(workload), kind_token(kind), r.metrics.demand_hits,
          r.metrics.prefetch_hits, r.metrics.misses, r.metrics.stall_ms,
          r.metrics.elapsed_ms);
    }
  }
  return 0;
}
