#include "cache/lru_cache.hpp"

#include <gtest/gtest.h>

namespace pfp::cache {
namespace {

TEST(LruCache, MissesThenHits) {
  LruCache c(2);
  EXPECT_FALSE(c.access(1));
  EXPECT_TRUE(c.access(1));
  EXPECT_EQ(c.hits(), 1u);
  EXPECT_EQ(c.misses(), 1u);
  EXPECT_DOUBLE_EQ(c.hit_rate(), 0.5);
}

TEST(LruCache, EvictsLeastRecentlyUsed) {
  LruCache c(2);
  c.access(1);
  c.access(2);
  c.access(3);               // evicts 1
  EXPECT_FALSE(c.contains(1));
  EXPECT_TRUE(c.contains(2));
  EXPECT_TRUE(c.contains(3));
}

TEST(LruCache, HitPromotes) {
  LruCache c(2);
  c.access(1);
  c.access(2);
  c.access(1);  // 1 MRU
  c.access(3);  // evicts 2
  EXPECT_TRUE(c.contains(1));
  EXPECT_FALSE(c.contains(2));
}

TEST(LruCache, SizeNeverExceedsCapacity) {
  LruCache c(4);
  for (BlockId b = 0; b < 100; ++b) {
    c.access(b);
    EXPECT_LE(c.size(), 4u);
  }
  EXPECT_EQ(c.size(), 4u);
}

TEST(LruCache, ContentsMruOrder) {
  LruCache c(3);
  c.access(1);
  c.access(2);
  c.access(3);
  c.access(1);
  EXPECT_EQ(c.contents_mru_order(), (std::vector<BlockId>{1, 3, 2}));
}

TEST(LruCache, CapacityOneThrashes) {
  LruCache c(1);
  EXPECT_FALSE(c.access(1));
  EXPECT_FALSE(c.access(2));
  EXPECT_FALSE(c.access(1));
  EXPECT_TRUE(c.access(1));
}

}  // namespace
}  // namespace pfp::cache
