#include "cache/stack_distance.hpp"

#include <gtest/gtest.h>

namespace pfp::cache {
namespace {

StackDistanceEstimator::Config no_decay() {
  StackDistanceEstimator::Config config;
  config.bucket_width = 1;  // exact depths for unit tests
  config.decay = 1.0;
  return config;
}

TEST(StackDistance, EmptyEstimatesZero) {
  StackDistanceEstimator e;
  EXPECT_DOUBLE_EQ(e.marginal_hit_rate(1), 0.0);
  EXPECT_DOUBLE_EQ(e.hit_rate(10), 0.0);
}

TEST(StackDistance, SingleDepthConcentratesMass) {
  StackDistanceEstimator e(no_decay());
  for (int i = 0; i < 10; ++i) {
    e.record(true, 3);
  }
  EXPECT_DOUBLE_EQ(e.marginal_hit_rate(3), 1.0);
  EXPECT_DOUBLE_EQ(e.marginal_hit_rate(2), 0.0);
  EXPECT_DOUBLE_EQ(e.marginal_hit_rate(4), 0.0);
}

TEST(StackDistance, MissesDiluteRates) {
  StackDistanceEstimator e(no_decay());
  e.record(true, 1);
  e.record(false);
  e.record(false);
  e.record(false);
  EXPECT_DOUBLE_EQ(e.marginal_hit_rate(1), 0.25);
}

TEST(StackDistance, HitRateSumsMarginals) {
  StackDistanceEstimator e(no_decay());
  e.record(true, 1);
  e.record(true, 2);
  e.record(true, 5);
  e.record(false);
  // H(2) = hits at depth <= 2 over 4 accesses = 0.5
  EXPECT_DOUBLE_EQ(e.hit_rate(2), 0.5);
  EXPECT_DOUBLE_EQ(e.hit_rate(5), 0.75);
  // H(n) - H(n-1) == marginal at n
  EXPECT_NEAR(e.hit_rate(5) - e.hit_rate(4), e.marginal_hit_rate(5), 1e-12);
}

TEST(StackDistance, HitRateMonotoneInN) {
  StackDistanceEstimator e(no_decay());
  for (std::size_t d = 1; d <= 20; ++d) {
    e.record(true, d);
  }
  double last = 0.0;
  for (std::size_t n = 1; n <= 25; ++n) {
    const double h = e.hit_rate(n);
    EXPECT_GE(h, last);
    last = h;
  }
  EXPECT_NEAR(last, 1.0, 1e-12);
}

TEST(StackDistance, BucketsSpreadMassEvenly) {
  StackDistanceEstimator::Config config;
  config.bucket_width = 4;
  config.decay = 1.0;
  StackDistanceEstimator e(config);
  e.record(true, 2);  // lands in bucket covering depths 1-4
  for (std::size_t d = 1; d <= 4; ++d) {
    EXPECT_DOUBLE_EQ(e.marginal_hit_rate(d), 0.25);
  }
  EXPECT_DOUBLE_EQ(e.marginal_hit_rate(5), 0.0);
}

TEST(StackDistance, DeepHitsClampToMaxDepth) {
  StackDistanceEstimator::Config config;
  config.bucket_width = 1;
  config.max_depth = 16;
  config.decay = 1.0;
  StackDistanceEstimator e(config);
  e.record(true, 1'000'000);
  EXPECT_GT(e.marginal_hit_rate(16), 0.0);
}

TEST(StackDistance, DecayForgetsOldPhases) {
  StackDistanceEstimator::Config config;
  config.bucket_width = 1;
  config.decay = 0.99;
  StackDistanceEstimator e(config);
  for (int i = 0; i < 500; ++i) {
    e.record(true, 2);
  }
  const double before = e.marginal_hit_rate(2);
  for (int i = 0; i < 5'000; ++i) {
    e.record(true, 9);  // phase change
  }
  EXPECT_LT(e.marginal_hit_rate(2), before * 0.1);
  EXPECT_GT(e.marginal_hit_rate(9), 0.5);
}

TEST(StackDistance, ResetClears) {
  StackDistanceEstimator e(no_decay());
  e.record(true, 1);
  e.reset();
  EXPECT_DOUBLE_EQ(e.marginal_hit_rate(1), 0.0);
  EXPECT_DOUBLE_EQ(e.accesses_weighted(), 0.0);
}

}  // namespace
}  // namespace pfp::cache
