#include "cache/buffer_cache.hpp"

#include <gtest/gtest.h>

namespace pfp::cache {
namespace {

PrefetchEntry entry(BlockId block) {
  PrefetchEntry e;
  e.block = block;
  e.probability = 0.4;
  e.depth = 1;
  e.eject_cost = 0.2;
  return e;
}

TEST(BufferCache, MissOnEmpty) {
  BufferCache c(4);
  EXPECT_TRUE(std::holds_alternative<Miss>(c.access(1)));
  EXPECT_EQ(c.resident(), 0u);
  EXPECT_EQ(c.free_buffers(), 4u);
}

TEST(BufferCache, DemandHitReportsDepth) {
  BufferCache c(4);
  c.admit_demand(1);
  c.admit_demand(2);
  const auto r = c.access(1);
  const auto* hit = std::get_if<DemandHit>(&r);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->stack_depth, 2u);
}

TEST(BufferCache, PrefetchHitMigratesToDemand) {
  BufferCache c(4);
  c.admit_prefetch(entry(7));
  EXPECT_EQ(c.prefetch().size(), 1u);
  EXPECT_EQ(c.demand().size(), 0u);

  const auto r = c.access(7);
  const auto* hit = std::get_if<PrefetchHit>(&r);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->entry.block, 7u);
  // Figure 2 (iii): block moved, total residency unchanged.
  EXPECT_EQ(c.prefetch().size(), 0u);
  EXPECT_EQ(c.demand().size(), 1u);
  EXPECT_EQ(c.resident(), 1u);

  // Second access is now a demand hit.
  EXPECT_TRUE(std::holds_alternative<DemandHit>(c.access(7)));
}

TEST(BufferCache, ResidencyAccountsBothSides) {
  BufferCache c(4);
  c.admit_demand(1);
  c.admit_prefetch(entry(2));
  EXPECT_EQ(c.resident(), 2u);
  EXPECT_EQ(c.free_buffers(), 2u);
  EXPECT_TRUE(c.contains(1));
  EXPECT_TRUE(c.contains(2));
  EXPECT_FALSE(c.contains(3));
}

TEST(BufferCache, PartitionIsDynamic) {
  BufferCache c(4);
  // All four buffers can be prefetch...
  for (BlockId b = 0; b < 4; ++b) {
    c.admit_prefetch(entry(b));
  }
  EXPECT_EQ(c.free_buffers(), 0u);
  // ...and migrate one-by-one into the demand side.
  for (BlockId b = 0; b < 4; ++b) {
    c.access(b);
  }
  EXPECT_EQ(c.demand().size(), 4u);
  EXPECT_EQ(c.prefetch().size(), 0u);
}

}  // namespace
}  // namespace pfp::cache
