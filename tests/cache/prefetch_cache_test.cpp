#include "cache/prefetch_cache.hpp"

#include <gtest/gtest.h>

namespace pfp::cache {
namespace {

PrefetchEntry entry(BlockId block, double cost, bool obl = false) {
  PrefetchEntry e;
  e.block = block;
  e.probability = 0.5;
  e.depth = 1;
  e.eject_cost = cost;
  e.obl = obl;
  return e;
}

TEST(PrefetchCache, InsertAndLookup) {
  PrefetchCache c(4);
  c.insert(entry(1, 0.5));
  const auto got = c.lookup(1);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->block, 1u);
  EXPECT_DOUBLE_EQ(got->eject_cost, 0.5);
  EXPECT_FALSE(c.lookup(2).has_value());
}

TEST(PrefetchCache, RemoveReturnsEntryAndFreesSlot) {
  PrefetchCache c(1);
  c.insert(entry(1, 0.5));
  const auto removed = c.remove(1);
  EXPECT_EQ(removed.block, 1u);
  EXPECT_EQ(c.size(), 0u);
  c.insert(entry(2, 0.1));  // slot reusable
  EXPECT_TRUE(c.contains(2));
}

TEST(PrefetchCache, CheapestFindsMinimumCost) {
  PrefetchCache c(8);
  c.insert(entry(1, 0.9));
  c.insert(entry(2, 0.1));
  c.insert(entry(3, 0.5));
  ASSERT_TRUE(c.cheapest().has_value());
  EXPECT_EQ(c.cheapest()->block, 2u);
}

TEST(PrefetchCache, CheapestSurvivesRemovals) {
  PrefetchCache c(8);
  c.insert(entry(1, 0.1));
  c.insert(entry(2, 0.2));
  c.remove(1);  // stale heap top must be skipped
  ASSERT_TRUE(c.cheapest().has_value());
  EXPECT_EQ(c.cheapest()->block, 2u);
}

TEST(PrefetchCache, CheapestEmptyIsNullopt) {
  PrefetchCache c(2);
  EXPECT_FALSE(c.cheapest().has_value());
  c.insert(entry(1, 0.3));
  c.remove(1);
  EXPECT_FALSE(c.cheapest().has_value());
}

TEST(PrefetchCache, RepriceChangesVictimOrder) {
  PrefetchCache c(4);
  c.insert(entry(1, 0.1));
  c.insert(entry(2, 0.5));
  c.reprice(1, 0.9);
  EXPECT_EQ(c.cheapest()->block, 2u);
  EXPECT_DOUBLE_EQ(c.lookup(1)->eject_cost, 0.9);
}

TEST(PrefetchCache, OldestOblTracksInsertionOrder) {
  PrefetchCache c(8);
  c.insert(entry(1, 0.1, /*obl=*/true));
  c.insert(entry(2, 0.1, /*obl=*/false));
  c.insert(entry(3, 0.1, /*obl=*/true));
  EXPECT_EQ(c.obl_count(), 2u);
  EXPECT_EQ(*c.oldest_obl(), 1u);
  c.remove(1);
  EXPECT_EQ(*c.oldest_obl(), 3u);
  c.remove(3);
  EXPECT_FALSE(c.oldest_obl().has_value());
}

TEST(PrefetchCache, OldestAnyTracksInsertionOrder) {
  PrefetchCache c(8);
  c.insert(entry(5, 0.1));
  c.insert(entry(6, 0.1));
  EXPECT_EQ(*c.oldest_any(), 5u);
  c.remove(5);
  EXPECT_EQ(*c.oldest_any(), 6u);
}

TEST(PrefetchCache, EntriesListsAllResidents) {
  PrefetchCache c(8);
  c.insert(entry(1, 0.1));
  c.insert(entry(2, 0.2));
  const auto all = c.entries();
  EXPECT_EQ(all.size(), 2u);
}

TEST(PrefetchCache, StressReuseKeepsHeapConsistent) {
  PrefetchCache c(16);
  for (int round = 0; round < 1'000; ++round) {
    const BlockId b = static_cast<BlockId>(round % 16 + 1);
    if (c.contains(b)) {
      c.remove(b);
    }
    c.insert(entry(b, static_cast<double>((round * 7) % 13)));
    ASSERT_TRUE(c.cheapest().has_value());
    // cheapest must actually be a resident minimum
    double min_cost = 1e9;
    for (const auto& e : c.entries()) {
      min_cost = std::min(min_cost, e.eject_cost);
    }
    ASSERT_DOUBLE_EQ(c.cheapest()->eject_cost, min_cost);
  }
}

}  // namespace
}  // namespace pfp::cache
