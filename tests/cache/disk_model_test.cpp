#include "cache/disk_model.hpp"

#include <gtest/gtest.h>

namespace pfp::cache {
namespace {

TEST(DiskArray, InfiniteDisksNeverQueue) {
  DiskArray disks(DiskConfig{0, 15.0});
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(disks.submit(static_cast<trace::BlockId>(i), 100.0),
                     115.0);
  }
  EXPECT_DOUBLE_EQ(disks.queue_delay_ms(), 0.0);
  EXPECT_EQ(disks.requests(), 100u);
}

TEST(DiskArray, SingleDiskSerializesRequests) {
  DiskArray disks(DiskConfig{1, 10.0});
  EXPECT_DOUBLE_EQ(disks.submit(1, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(disks.submit(2, 0.0), 20.0);  // queued behind first
  EXPECT_DOUBLE_EQ(disks.submit(3, 0.0), 30.0);
  EXPECT_DOUBLE_EQ(disks.queue_delay_ms(), 10.0 + 20.0);
}

TEST(DiskArray, IdleDiskServesImmediately) {
  DiskArray disks(DiskConfig{1, 10.0});
  disks.submit(1, 0.0);       // busy until 10
  EXPECT_DOUBLE_EQ(disks.submit(2, 50.0), 60.0);  // idle again at 50
  EXPECT_DOUBLE_EQ(disks.queue_delay_ms(), 0.0);
}

TEST(DiskArray, ManyDisksSpreadLoad) {
  // With plenty of disks, simultaneous requests to distinct blocks
  // mostly land on different spindles.
  DiskArray few(DiskConfig{1, 10.0});
  DiskArray many(DiskConfig{64, 10.0});
  for (trace::BlockId b = 0; b < 32; ++b) {
    few.submit(b, 0.0);
    many.submit(b, 0.0);
  }
  EXPECT_GT(few.queue_delay_ms(), many.queue_delay_ms());
}

TEST(DiskArray, StripingIsDeterministic) {
  DiskArray a(DiskConfig{4, 10.0});
  DiskArray b(DiskConfig{4, 10.0});
  for (trace::BlockId blk = 0; blk < 50; ++blk) {
    EXPECT_DOUBLE_EQ(a.submit(blk, 0.0), b.submit(blk, 0.0));
  }
}

TEST(DiskArray, SequentialBlocksStripeAcrossDisks) {
  // Sequential block numbers must not all map to one disk (the stripe
  // hash exists precisely for this).
  DiskArray disks(DiskConfig{8, 10.0});
  double max_completion = 0.0;
  for (trace::BlockId b = 0; b < 8; ++b) {
    max_completion = std::max(max_completion, disks.submit(b, 0.0));
  }
  // If all eight landed on one disk the last would finish at 80.
  EXPECT_LT(max_completion, 80.0);
}

}  // namespace
}  // namespace pfp::cache
