// SIM_AUDIT detection tests: each test corrupts one piece of redundant
// cache state through a test-only friend and proves the matching audit
// sweep fires.  A sweep that stays silent on seeded corruption is a dead
// invariant — these tests are the audits' own regression suite.
//
// Compiled against SIM_AUDIT=0 the sweeps are no-ops, so every detection
// test skips; the sanitizer CI legs build with -DPFP_AUDIT=ON and run
// them for real.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "cache/buffer_cache.hpp"
#include "cache/demand_cache.hpp"
#include "cache/prefetch_cache.hpp"
#include "util/audit.hpp"

namespace pfp::cache {

// Friend of DemandCache/PrefetchCache: reaches private state to seed
// precise corruptions.  Lives in the test binary only.
struct AuditTestAccess {
  static void corrupt_slot_block(DemandCache& cache, BlockId resident,
                                 BlockId junk) {
    cache.slot_block_[cache.map_.find(resident)->second] = junk;
  }
  static void unlink_lru(DemandCache& cache, BlockId resident) {
    cache.lru_.erase(cache.map_.find(resident)->second);
  }
  static void drift_fenwick(DemandCache& cache) {
    cache.fenwick_[1] += 1;  // phantom stack-depth mark at time zero
  }
  static void flip_obl_flag(PrefetchCache& cache, BlockId resident) {
    cache.slots_[cache.map_.find(resident)->second].obl ^= true;
  }
  static void corrupt_entry_block(PrefetchCache& cache, BlockId resident,
                                  BlockId junk) {
    cache.slots_[cache.map_.find(resident)->second].block = junk;
  }
  static void corrupt_probability(PrefetchCache& cache, BlockId resident) {
    cache.slots_[cache.map_.find(resident)->second].probability = 1.5;
  }
};

namespace {

void throwing_handler(const char* component, const char* what, const char*,
                      int) {
  throw std::runtime_error(std::string(component) + ": " + what);
}

class AuditDetection : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!PFP_AUDIT_ENABLED) {
      GTEST_SKIP() << "built without SIM_AUDIT; sweeps are no-ops";
    }
    previous_ = util::set_audit_handler(&throwing_handler);
  }
  void TearDown() override {
    if (PFP_AUDIT_ENABLED) {
      util::set_audit_handler(previous_);
    }
  }

 private:
  util::AuditHandler previous_ = nullptr;
};

PrefetchEntry entry_for(BlockId block, bool obl = false) {
  PrefetchEntry entry;
  entry.block = block;
  entry.probability = 0.5;
  entry.depth = 1;
  entry.eject_cost = 1.0;
  entry.obl = obl;
  return entry;
}

TEST_F(AuditDetection, CleanDemandCachePasses) {
  DemandCache cache(8);
  for (BlockId b = 0; b < 8; ++b) {
    cache.insert(b);
  }
  for (BlockId b = 0; b < 8; b += 2) {
    (void)cache.lookup_touch(b);
  }
  cache.evict_lru();
  cache.erase(4);
  EXPECT_NO_THROW(cache.audit());
}

TEST_F(AuditDetection, DemandSlotBlockCorruptionFires) {
  DemandCache cache(8);
  cache.insert(1);
  cache.insert(2);
  AuditTestAccess::corrupt_slot_block(cache, 1, 99);
  EXPECT_THROW(cache.audit(), std::runtime_error);
}

TEST_F(AuditDetection, DemandLruUnlinkFires) {
  DemandCache cache(8);
  cache.insert(1);
  cache.insert(2);
  AuditTestAccess::unlink_lru(cache, 1);
  EXPECT_THROW(cache.audit(), std::runtime_error);
}

TEST_F(AuditDetection, DemandFenwickDriftFires) {
  DemandCache cache(8);
  cache.insert(1);
  AuditTestAccess::drift_fenwick(cache);
  EXPECT_THROW(cache.audit(), std::runtime_error);
}

TEST_F(AuditDetection, CleanPrefetchCachePasses) {
  PrefetchCache cache(8);
  cache.insert(entry_for(1));
  cache.insert(entry_for(2, /*obl=*/true));
  cache.insert(entry_for(3));
  cache.reprice(3, 0.25);
  (void)cache.remove(1);
  EXPECT_NO_THROW(cache.audit());
}

TEST_F(AuditDetection, PrefetchOblFlagFlipFires) {
  PrefetchCache cache(8);
  cache.insert(entry_for(1, /*obl=*/true));
  cache.insert(entry_for(2));
  AuditTestAccess::flip_obl_flag(cache, 2);
  EXPECT_THROW(cache.audit(), std::runtime_error);
}

TEST_F(AuditDetection, PrefetchEntryBlockCorruptionFires) {
  PrefetchCache cache(8);
  cache.insert(entry_for(1));
  AuditTestAccess::corrupt_entry_block(cache, 1, 42);
  EXPECT_THROW(cache.audit(), std::runtime_error);
}

TEST_F(AuditDetection, PrefetchProbabilityOutOfRangeFires) {
  PrefetchCache cache(8);
  cache.insert(entry_for(1));
  AuditTestAccess::corrupt_probability(cache, 1);
  EXPECT_THROW(cache.audit(), std::runtime_error);
}

TEST_F(AuditDetection, CleanBufferCachePasses) {
  BufferCache cache(8);
  cache.admit_demand(1);
  cache.admit_prefetch(entry_for(2));
  (void)cache.access(2);  // migrates 2 into the demand partition
  EXPECT_NO_THROW(cache.audit());
}

TEST_F(AuditDetection, DualResidencyFires) {
  BufferCache cache(8);
  cache.admit_demand(1);
  // Bypass admit_prefetch's precondition via the raw partition handle:
  // the same block now sits on both sides of the Figure 2 partition.
  cache.prefetch().insert(entry_for(1));
  EXPECT_THROW(cache.audit(), std::runtime_error);
}

TEST_F(AuditDetection, PoolOverflowFires) {
  BufferCache cache(4);
  // Fill both partitions past the shared pool bound through the raw
  // handles (admit_* would refuse).
  cache.demand().insert(1);
  cache.demand().insert(2);
  cache.demand().insert(3);
  cache.prefetch().insert(entry_for(10));
  cache.prefetch().insert(entry_for(11));
  EXPECT_THROW(cache.audit(), std::runtime_error);
}

}  // namespace
}  // namespace pfp::cache
