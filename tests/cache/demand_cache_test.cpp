#include "cache/demand_cache.hpp"

#include <gtest/gtest.h>

#include <deque>

#include "util/prng.hpp"

namespace pfp::cache {
namespace {

TEST(DemandCache, MissOnEmpty) {
  DemandCache c(4);
  EXPECT_FALSE(c.lookup_touch(1).has_value());
  EXPECT_EQ(c.size(), 0u);
}

TEST(DemandCache, InsertThenHitAtDepthOne) {
  DemandCache c(4);
  c.insert(1);
  const auto depth = c.lookup_touch(1);
  ASSERT_TRUE(depth.has_value());
  EXPECT_EQ(*depth, 1u);  // MRU position
}

TEST(DemandCache, DepthReflectsStackPosition) {
  DemandCache c(8);
  c.insert(1);
  c.insert(2);
  c.insert(3);  // stack: 3 2 1
  EXPECT_EQ(*c.lookup_touch(1), 3u);  // deepest
  // now stack: 1 3 2
  EXPECT_EQ(*c.lookup_touch(3), 2u);
  EXPECT_EQ(*c.lookup_touch(3), 1u);  // promoted to MRU by previous touch
}

TEST(DemandCache, EvictLruReturnsOldest) {
  DemandCache c(4);
  c.insert(1);
  c.insert(2);
  c.insert(3);
  EXPECT_EQ(c.evict_lru(), 1u);
  EXPECT_EQ(c.evict_lru(), 2u);
  EXPECT_EQ(c.size(), 1u);
}

TEST(DemandCache, LruBlockPeeksWithoutRemoving) {
  DemandCache c(4);
  EXPECT_FALSE(c.lru_block().has_value());
  c.insert(9);
  c.insert(10);
  EXPECT_EQ(*c.lru_block(), 9u);
  EXPECT_EQ(c.size(), 2u);
}

TEST(DemandCache, EraseRemovesSpecificBlock) {
  DemandCache c(4);
  c.insert(1);
  c.insert(2);
  c.erase(1);
  EXPECT_FALSE(c.contains(1));
  EXPECT_TRUE(c.contains(2));
  EXPECT_EQ(c.size(), 1u);
}

TEST(DemandCache, TouchChangesEvictionOrder) {
  DemandCache c(4);
  c.insert(1);
  c.insert(2);
  c.lookup_touch(1);
  EXPECT_EQ(c.evict_lru(), 2u);
}

// Long-run exercise crossing the internal timestamp-compaction window:
// depths must stay correct throughout.
TEST(DemandCache, DepthsSurviveCompaction) {
  constexpr std::size_t kCapacity = 32;
  DemandCache c(kCapacity);
  std::deque<BlockId> model;  // front = MRU
  util::Xoshiro256 rng(77);

  for (int step = 0; step < 200'000; ++step) {
    const BlockId b = rng.below(64);
    const auto it = std::find(model.begin(), model.end(), b);
    const auto got = c.lookup_touch(b);
    if (it == model.end()) {
      ASSERT_FALSE(got.has_value()) << "step " << step;
      if (model.size() == kCapacity) {
        ASSERT_EQ(c.evict_lru(), model.back());
        model.pop_back();
      }
      c.insert(b);
      model.push_front(b);
    } else {
      const auto expected_depth =
          static_cast<std::size_t>(std::distance(model.begin(), it)) + 1;
      ASSERT_TRUE(got.has_value()) << "step " << step;
      ASSERT_EQ(*got, expected_depth) << "step " << step;
      model.erase(it);
      model.push_front(b);
    }
  }
}

}  // namespace
}  // namespace pfp::cache
