// SIM_AUDIT detection tests for the LZ prefetch tree: seed one precise
// structural corruption per test and prove the audit sweep fires.  Skips
// when built without SIM_AUDIT (the sanitizer CI legs enable it).
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>

#include "core/tree/prefetch_tree.hpp"
#include "util/audit.hpp"
#include "util/lru_list.hpp"
#include "util/prng.hpp"

namespace pfp::core::tree {

// Friend of PrefetchTree: exposes the node pool, parse position and leaf
// LRU so tests can corrupt them.  Lives in the test binary only.
struct AuditTestAccess {
  static NodePool& pool(PrefetchTree& tree) { return tree.pool_; }
  static NodeId& current(PrefetchTree& tree) { return tree.current_; }
  static util::LruList& leaf_lru(PrefetchTree& tree) {
    return tree.leaf_lru_;
  }
};

namespace {

void throwing_handler(const char* component, const char* what, const char*,
                      int) {
  throw std::runtime_error(std::string(component) + ": " + what);
}

class TreeAuditDetection : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!PFP_AUDIT_ENABLED) {
      GTEST_SKIP() << "built without SIM_AUDIT; sweeps are no-ops";
    }
    previous_ = util::set_audit_handler(&throwing_handler);
  }
  void TearDown() override {
    if (PFP_AUDIT_ENABLED) {
      util::set_audit_handler(previous_);
    }
  }

 private:
  util::AuditHandler previous_ = nullptr;
};

// Parse a, b, a, c: root(w3) -> {a(w2) -> {c(w1)}, b(w1)}, so the tree
// has an interior non-root node, a two-child node, and two leaves.
PrefetchTree small_tree() {
  PrefetchTree tree;
  tree.access(1);  // a
  tree.access(2);  // b
  tree.access(1);  // a (parse descends to node a)
  tree.access(3);  // c (new node under a; parse resets)
  return tree;
}

TEST_F(TreeAuditDetection, CleanParseAuditsPass) {
  PrefetchTree tree;
  util::Xoshiro256 rng(11);
  for (int i = 0; i < 2'000; ++i) {
    tree.access(rng.below(64));
    if (i % 100 == 0) {
      EXPECT_NO_THROW(tree.audit());
    }
  }
  EXPECT_NO_THROW(tree.audit());
}

TEST_F(TreeAuditDetection, CleanBoundedTreeAuditsPass) {
  TreeConfig config;
  config.max_nodes = 32;
  PrefetchTree tree(config);
  util::Xoshiro256 rng(13);
  for (int i = 0; i < 2'000; ++i) {
    tree.access(rng.below(256));
    if (i % 100 == 0) {
      EXPECT_NO_THROW(tree.audit());
    }
  }
  EXPECT_NO_THROW(tree.audit());
}

TEST_F(TreeAuditDetection, SerializeRoundTripAuditsPass) {
  PrefetchTree tree = small_tree();
  std::stringstream stream;
  tree.serialize(stream);
  PrefetchTree restored = PrefetchTree::deserialize(stream);
  EXPECT_NO_THROW(restored.audit());
}

TEST_F(TreeAuditDetection, BrokenParentLinkFires) {
  PrefetchTree tree = small_tree();
  const NodeId a = tree.find_child(tree.root(), 1);
  const NodeId c = tree.find_child(a, 3);
  ASSERT_NE(c, kNoNode);
  AuditTestAccess::pool(tree).hot(c).parent = tree.root();
  EXPECT_THROW(tree.audit(), std::runtime_error);
}

TEST_F(TreeAuditDetection, InflatedChildWeightFires) {
  PrefetchTree tree = small_tree();
  const NodeId b = tree.find_child(tree.root(), 2);
  ASSERT_NE(b, kNoNode);
  // b now outweighs its visit budget: children sum past the root's count
  // and the descending-weight order breaks.
  AuditTestAccess::pool(tree).hot(b).weight = 100;
  EXPECT_THROW(tree.audit(), std::runtime_error);
}

TEST_F(TreeAuditDetection, EdgeMapMismatchFires) {
  PrefetchTree tree = small_tree();
  const NodeId b = tree.find_child(tree.root(), 2);
  ASSERT_NE(b, kNoNode);
  // Relabel the node without touching the edge map: (root, 99) misses.
  AuditTestAccess::pool(tree).hot(b).block = 99;
  EXPECT_THROW(tree.audit(), std::runtime_error);
}

TEST_F(TreeAuditDetection, DanglingLastVisitedChildFires) {
  PrefetchTree tree = small_tree();
  const NodeId a = tree.find_child(tree.root(), 1);
  const NodeId c = tree.find_child(a, 3);
  ASSERT_NE(c, kNoNode);
  // c is a's child, not the root's.
  AuditTestAccess::pool(tree).cold(tree.root()).last_visited_child = c;
  EXPECT_THROW(tree.audit(), std::runtime_error);
}

TEST_F(TreeAuditDetection, LeafLruDesyncFires) {
  PrefetchTree tree = small_tree();
  const NodeId b = tree.find_child(tree.root(), 2);
  ASSERT_NE(b, kNoNode);
  // b is a live leaf; dropping it from the leaf LRU makes it unevictable
  // (the bounded-tree experiments would leak nodes).
  AuditTestAccess::leaf_lru(tree).erase(b);
  EXPECT_THROW(tree.audit(), std::runtime_error);
}

TEST_F(TreeAuditDetection, UnreachableParsePositionFires) {
  PrefetchTree tree = small_tree();
  const NodeId a = tree.find_child(tree.root(), 1);
  const NodeId c = tree.find_child(a, 3);
  ASSERT_NE(c, kNoNode);
  // Destroy leaf c (keeping the leaf LRU consistent: c leaves it, its
  // parent a becomes a leaf and enters it), then park the parse on the
  // dead node.  Only the reachability audit can catch this.
  AuditTestAccess::leaf_lru(tree).erase(c);
  AuditTestAccess::pool(tree).destroy(c);
  AuditTestAccess::leaf_lru(tree).push_front(a);
  AuditTestAccess::current(tree) = c;
  EXPECT_THROW(tree.audit(), std::runtime_error);
}

}  // namespace
}  // namespace pfp::core::tree
