// Randomized churn property test for the SoA NodePool: drive
// create/destroy/increment_weight against a naive reference-model pool
// (AoS records, per-node std::vector child lists, std::map edge index —
// the "obviously correct" implementation the arena layout replaced) and
// assert the two stay observationally identical: same find_child answers,
// same child enumeration order, same weights and positions.  Every 1'000
// operations the full live structure is compared and, in SIM_AUDIT
// builds, the pool's arena-layout audit must come back clean.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/tree/node_pool.hpp"
#include "util/audit.hpp"
#include "util/prng.hpp"

namespace pfp::core::tree {
namespace {

// Mirror of NodePool's observable semantics with the simplest possible
// storage.  increment_weight reproduces the documented invariant-restoring
// move exactly (binary search for the first lighter sibling + one swap),
// so child *order* — not just the multiset of children — must match.
class ReferencePool {
 public:
  NodeId create(NodeId parent, BlockId block) {
    NodeId id;
    if (!free_.empty()) {
      id = free_.back();
      free_.pop_back();
      nodes_[id] = RefNode{};
    } else {
      id = static_cast<NodeId>(nodes_.size());
      nodes_.emplace_back();
    }
    RefNode& node = nodes_[id];
    node.block = block;
    node.weight = 1;
    node.parent = parent;
    if (parent != kNoNode) {
      node.pos_in_parent =
          static_cast<std::uint32_t>(nodes_[parent].children.size());
      nodes_[parent].children.push_back(id);
      edges_[{parent, block}] = id;
    }
    ++live_;
    return id;
  }

  [[nodiscard]] NodeId find_child(NodeId parent, BlockId block) const {
    const auto it = edges_.find({parent, block});
    return it == edges_.end() ? kNoNode : it->second;
  }

  void increment_weight(NodeId id) {
    RefNode& node = nodes_[id];
    ++node.weight;
    if (node.parent == kNoNode) {
      return;
    }
    auto& siblings = nodes_[node.parent].children;
    const std::uint32_t pos = node.pos_in_parent;
    if (pos == 0 || nodes_[siblings[pos - 1]].weight >= node.weight) {
      return;
    }
    std::uint32_t lo = 0;
    std::uint32_t hi = pos;
    while (lo < hi) {
      const std::uint32_t mid = lo + (hi - lo) / 2;
      if (nodes_[siblings[mid]].weight >= node.weight) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    std::swap(siblings[lo], siblings[pos]);
    nodes_[siblings[pos]].pos_in_parent = pos;
    node.pos_in_parent = lo;
  }

  void destroy(NodeId id) {
    RefNode& node = nodes_[id];
    const NodeId parent = node.parent;
    if (parent != kNoNode) {
      auto& siblings = nodes_[parent].children;
      siblings.erase(siblings.begin() + node.pos_in_parent);
      for (std::size_t i = node.pos_in_parent; i < siblings.size(); ++i) {
        nodes_[siblings[i]].pos_in_parent = static_cast<std::uint32_t>(i);
      }
      edges_.erase({parent, node.block});
    }
    nodes_[id] = RefNode{};
    free_.push_back(id);
    --live_;
  }

  [[nodiscard]] std::size_t live_nodes() const { return live_; }
  [[nodiscard]] BlockId block(NodeId id) const { return nodes_[id].block; }
  [[nodiscard]] std::uint64_t weight(NodeId id) const {
    return nodes_[id].weight;
  }
  [[nodiscard]] NodeId parent(NodeId id) const { return nodes_[id].parent; }
  [[nodiscard]] const std::vector<NodeId>& children(NodeId id) const {
    return nodes_[id].children;
  }

 private:
  struct RefNode {
    BlockId block = 0;
    std::uint64_t weight = 0;
    NodeId parent = kNoNode;
    std::uint32_t pos_in_parent = 0;
    std::vector<NodeId> children;
  };

  std::vector<RefNode> nodes_;
  std::vector<NodeId> free_;
  std::map<std::pair<NodeId, BlockId>, NodeId> edges_;
  std::size_t live_ = 0;
};

void throwing_handler(const char* component, const char* what, const char*,
                      int) {
  throw std::runtime_error(std::string(component) + ": " + what);
}

// Compare the full live structure: weights, parents, blocks and exact
// child order for every live node, plus find_child over every live edge.
void expect_identical(const NodePool& pool, const ReferencePool& ref,
                      const std::vector<NodeId>& live) {
  ASSERT_EQ(pool.live_nodes(), ref.live_nodes());
  for (const NodeId id : live) {
    ASSERT_EQ(pool.block(id), ref.block(id)) << "node " << id;
    ASSERT_EQ(pool.weight(id), ref.weight(id)) << "node " << id;
    ASSERT_EQ(pool.parent(id), ref.parent(id)) << "node " << id;
    const auto got = pool.children(id);
    const auto& want = ref.children(id);
    ASSERT_EQ(got.size(), want.size()) << "node " << id;
    for (std::size_t i = 0; i < want.size(); ++i) {
      ASSERT_EQ(got[i], want[i]) << "node " << id << " child " << i;
      ASSERT_EQ(pool.pos_in_parent(got[i]), i) << "node " << id;
    }
    ASSERT_EQ(pool.find_child(pool.parent(id) == kNoNode ? id : pool.parent(id),
                              pool.block(id)),
              ref.find_child(ref.parent(id) == kNoNode ? id : ref.parent(id),
                             ref.block(id)));
  }
}

TEST(NodePoolChurn, RandomizedOpsMatchReferenceModel) {
  util::AuditHandler previous = nullptr;
  if (PFP_AUDIT_ENABLED) {
    previous = util::set_audit_handler(&throwing_handler);
  }

  NodePool pool;
  ReferencePool ref;
  const NodeId root = pool.create(kNoNode, 0);
  ASSERT_EQ(ref.create(kNoNode, 0), root);

  std::vector<NodeId> live{root};  // ids live in BOTH pools (identical)
  util::Xoshiro256 rng(0xC0FFEE);
  constexpr int kOps = 30'000;
  constexpr std::uint64_t kBlockSpace = 48;  // small: forces fanout + dups

  for (int op = 0; op < kOps; ++op) {
    const std::uint64_t dice = rng.below(100);
    if (dice < 45) {
      // Create a child of a random live node under a random label; if the
      // edge exists this is the parse's "walk the edge" case — increment.
      const NodeId parent = live[rng.below(live.size())];
      const BlockId block = 1 + rng.below(kBlockSpace);
      const NodeId existing = pool.find_child(parent, block);
      ASSERT_EQ(existing, ref.find_child(parent, block));
      if (existing != kNoNode) {
        pool.increment_weight(existing);
        ref.increment_weight(existing);
      } else {
        const NodeId a = pool.create(parent, block);
        const NodeId b = ref.create(parent, block);
        ASSERT_EQ(a, b) << "free-list recycling order diverged";
        live.push_back(a);
      }
    } else if (dice < 85) {
      // Weight churn drives the sibling-run reorder path.
      const NodeId id = live[rng.below(live.size())];
      pool.increment_weight(id);
      ref.increment_weight(id);
    } else {
      // Destroy a random live *leaf* (the pool's contract), freeing its
      // slot and possibly its parent's whole child run.
      const std::size_t start = rng.below(live.size());
      for (std::size_t k = 0; k < live.size(); ++k) {
        const std::size_t at = (start + k) % live.size();
        const NodeId victim = live[at];
        if (victim == root || pool.child_count(victim) != 0) {
          continue;
        }
        pool.destroy(victim);
        ref.destroy(victim);
        live[at] = live.back();
        live.pop_back();
        break;
      }
    }

    // Cheap per-op probe: one random edge lookup must agree.
    const NodeId probe = live[rng.below(live.size())];
    const BlockId label = 1 + rng.below(kBlockSpace);
    ASSERT_EQ(pool.find_child(probe, label), ref.find_child(probe, label));

    if ((op + 1) % 1'000 == 0) {
      expect_identical(pool, ref, live);
      if (PFP_AUDIT_ENABLED) {
        // Arena-layout invariants (run ownership, free-list hygiene,
        // freed-slot reset) must hold at every checkpoint.
        ASSERT_NO_THROW(pool.audit());
      }
    }
  }
  expect_identical(pool, ref, live);
  if (PFP_AUDIT_ENABLED) {
    ASSERT_NO_THROW(pool.audit());
    util::set_audit_handler(previous);
  }
}

TEST(NodePoolChurn, ActualMemoryTracksLayoutNotPaperAccounting) {
  NodePool pool;
  const NodeId root = pool.create(kNoNode, 0);
  for (BlockId b = 1; b <= 64; ++b) {
    pool.create(root, b);
  }
  // Paper accounting is exactly 40 B/node; the layout figure counts what
  // the planes + arena + edge map actually reserve and is necessarily
  // at least the live hot+cold footprint.
  EXPECT_EQ(pool.approx_memory_bytes(), 65u * NodePool::kPaperBytesPerNode);
  EXPECT_GE(pool.actual_memory_bytes(),
            pool.live_nodes() * (sizeof(HotNode) + sizeof(ColdNode)));
  const std::size_t before = pool.actual_memory_bytes();
  for (BlockId b = 65; b <= 512; ++b) {
    pool.create(root, b);
  }
  EXPECT_GT(pool.actual_memory_bytes(), before);
}

}  // namespace
}  // namespace pfp::core::tree
