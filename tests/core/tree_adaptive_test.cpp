#include "core/policy/tree_adaptive.hpp"

#include <gtest/gtest.h>

#include "core/policy/factory.hpp"
#include "sim/simulator.hpp"
#include "util/prng.hpp"

namespace pfp::core::policy {
namespace {

TEST(TreeAdaptive, FactoryIntegration) {
  PolicySpec spec;
  spec.kind = PolicyKind::kTreeAdaptive;
  const auto p = make_prefetcher(spec);
  EXPECT_EQ(p->name(), "tree-adaptive");
  EXPECT_EQ(kind_from_name("tree-adaptive"), PolicyKind::kTreeAdaptive);
}

TEST(TreeAdaptive, FloorStartsAtInitial) {
  AdaptiveConfig config;
  config.initial_floor = 0.03;
  TreeAdaptive policy(TreePolicyConfig{}, config);
  EXPECT_DOUBLE_EQ(policy.probability_floor(), 0.03);
}

TEST(TreeAdaptive, RejectsInvalidConfig) {
  AdaptiveConfig bad;
  bad.min_floor = 0.5;
  bad.initial_floor = 0.1;  // min > initial
  EXPECT_DEATH(TreeAdaptive(TreePolicyConfig{}, bad), "precondition");
}

TEST(TreeAdaptive, FloorTightensOnNoisyWorkload) {
  // Mostly-random accesses: tree prefetches rarely hit, h collapses, the
  // floor must rise from its initial value.
  trace::Trace t("noise");
  util::Xoshiro256 rng(1);
  // Weak repeated pattern so some prefetching happens at all.
  std::vector<trace::BlockId> pattern;
  for (int i = 0; i < 10; ++i) {
    pattern.push_back(rng.below(1'000));
  }
  std::size_t pos = 0;
  for (int i = 0; i < 30'000; ++i) {
    if (rng.bernoulli(0.8)) {
      t.append(rng.below(10'000'000));
    } else {
      t.append(pattern[pos]);
      pos = (pos + 1) % pattern.size();
    }
  }
  sim::SimConfig c;
  c.cache_blocks = 64;
  c.policy.kind = PolicyKind::kTreeAdaptive;
  const auto adaptive = sim::simulate(c, t);
  c.policy.kind = PolicyKind::kTree;
  const auto plain = sim::simulate(c, t);
  // The whole point: fewer wasted prefetches than plain tree on noise.
  EXPECT_LT(adaptive.metrics.policy.prefetches_issued,
            plain.metrics.policy.prefetches_issued);
  // And no meaningful miss-rate regression.
  EXPECT_LE(adaptive.metrics.miss_rate(), plain.metrics.miss_rate() + 0.02);
}

TEST(TreeAdaptive, MatchesTreeOnCleanPattern) {
  // High-precision regime: h stays high, the floor relaxes to its
  // minimum, behaviour converges to plain tree.
  trace::Trace t("clean");
  util::SplitMix64 sm(7);
  std::vector<trace::BlockId> pattern;
  for (int i = 0; i < 40; ++i) {
    pattern.push_back(sm.next() >> 20);
  }
  for (int r = 0; r < 300; ++r) {
    for (const auto b : pattern) {
      t.append(b);
    }
  }
  sim::SimConfig c;
  c.cache_blocks = 16;
  c.policy.kind = PolicyKind::kTreeAdaptive;
  const auto adaptive = sim::simulate(c, t);
  c.policy.kind = PolicyKind::kTree;
  const auto plain = sim::simulate(c, t);
  EXPECT_NEAR(adaptive.metrics.miss_rate(), plain.metrics.miss_rate(),
              0.05);
}

TEST(TreeAdaptive, DeterministicRuns) {
  trace::Trace t("d");
  util::Xoshiro256 rng(9);
  for (int i = 0; i < 5'000; ++i) {
    t.append(rng.below(300));
  }
  sim::SimConfig c;
  c.cache_blocks = 64;
  c.policy.kind = PolicyKind::kTreeAdaptive;
  const auto a = sim::simulate(c, t);
  const auto b = sim::simulate(c, t);
  EXPECT_EQ(a.metrics.misses, b.metrics.misses);
}

}  // namespace
}  // namespace pfp::core::policy
