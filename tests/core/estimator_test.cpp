#include "core/costben/estimator.hpp"

#include <gtest/gtest.h>

namespace pfp::core::costben {
namespace {

TEST(Estimators, InitialValues) {
  Estimators e;
  EXPECT_DOUBLE_EQ(e.s(), 1.0);   // optimistic one prefetch/period
  EXPECT_DOUBLE_EQ(e.h(), 0.5);
  EXPECT_DOUBLE_EQ(e.obl_h(), 0.5);
  EXPECT_EQ(e.periods(), 0u);
}

TEST(Estimators, SConvergesToIssueRate) {
  Estimators e;
  for (int i = 0; i < 500; ++i) {
    e.end_period(3);
  }
  EXPECT_NEAR(e.s(), 3.0, 1e-6);
  EXPECT_EQ(e.periods(), 500u);
}

TEST(Estimators, STracksChanges) {
  Estimators e;
  for (int i = 0; i < 200; ++i) {
    e.end_period(0);
  }
  EXPECT_NEAR(e.s(), 0.0, 1e-3);
  for (int i = 0; i < 200; ++i) {
    e.end_period(5);
  }
  EXPECT_NEAR(e.s(), 5.0, 0.01);
}

TEST(Estimators, HSeparatesTreeAndObl) {
  Estimators e;
  for (int i = 0; i < 300; ++i) {
    e.prefetch_outcome(true, /*obl=*/false);
    e.prefetch_outcome(false, /*obl=*/true);
  }
  EXPECT_NEAR(e.h(), 1.0, 0.01);
  EXPECT_NEAR(e.obl_h(), 0.0, 0.01);
}

TEST(Estimators, HConvergesToHitFraction) {
  Estimators e;
  for (int i = 0; i < 1'000; ++i) {
    e.prefetch_outcome(i % 4 != 0, /*obl=*/false);  // 75% hits
  }
  EXPECT_NEAR(e.h(), 0.75, 0.1);
}

TEST(Estimators, CustomConfigRespected) {
  Estimators::Config config;
  config.s_initial = 2.5;
  config.h_initial = 0.9;
  Estimators e(config);
  EXPECT_DOUBLE_EQ(e.s(), 2.5);
  EXPECT_DOUBLE_EQ(e.h(), 0.9);
}

}  // namespace
}  // namespace pfp::core::costben
