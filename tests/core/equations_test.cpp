#include "core/costben/equations.hpp"

#include <gtest/gtest.h>

namespace pfp::core::costben {
namespace {

// Paper constants (Section 8.1).
TimingParams paper() { return TimingParams{}; }

TEST(Timing, PaperDefaults) {
  const TimingParams t;
  EXPECT_DOUBLE_EQ(t.t_hit, 0.243);
  EXPECT_DOUBLE_EQ(t.t_driver, 0.580);
  EXPECT_DOUBLE_EQ(t.t_disk, 15.0);
  EXPECT_DOUBLE_EQ(t.t_cpu, 50.0);
  EXPECT_DOUBLE_EQ(t.t_miss(), 0.580 + 15.0 + 0.243);
}

// Eq. 3: T_compute(d) = d (T_cpu + T_hit + s T_driver).
TEST(Equations, TComputeHandValues) {
  const auto t = paper();
  // s = 2: per period 50 + 0.243 + 2*0.58 = 51.403
  EXPECT_NEAR(t_compute(t, 2.0, 1), 51.403, 1e-9);
  EXPECT_NEAR(t_compute(t, 2.0, 3), 3 * 51.403, 1e-9);
  // s = 0 degenerates to T_cpu + T_hit.
  EXPECT_NEAR(t_compute(t, 0.0, 2), 2 * 50.243, 1e-9);
}

// Eq. 6 boundary condition: T_stall(0) = T_disk (demand fetch).
TEST(Equations, TStallAtZeroIsFullDiskTime) {
  EXPECT_DOUBLE_EQ(t_stall(paper(), 1.0, 0), 15.0);
}

// With the paper's T_cpu = 50 ms, one access period already hides a
// 15 ms disk access: T_stall(d >= 1) = 0.
TEST(Equations, TStallZeroWhenComputeDominates) {
  const auto t = paper();
  for (std::uint32_t d = 1; d <= 8; ++d) {
    EXPECT_DOUBLE_EQ(t_stall(t, 1.0, d), 0.0) << "d=" << d;
  }
}

// With tiny T_cpu the stall follows Eq. 6 exactly.
TEST(Equations, TStallHandValueSmallCpu) {
  TimingParams t;
  t.t_cpu = 1.0;  // per period: 1 + 0.243 + s*0.58
  // s = 1: per-period = 1.823; d = 2: 15/2 - 1.823 = 5.677
  EXPECT_NEAR(t_stall(t, 1.0, 2), 5.677, 1e-9);
  // d = 8: 15/8 - 1.823 = 0.052
  EXPECT_NEAR(t_stall(t, 1.0, 8), 0.052, 1e-9);
  // d = 9: negative -> clamped to 0
  EXPECT_DOUBLE_EQ(t_stall(t, 1.0, 9), 0.0);
}

TEST(Equations, TStallDecreasesWithDepth) {
  TimingParams t;
  t.t_cpu = 0.5;
  double last = t_stall(t, 1.0, 1);
  for (std::uint32_t d = 2; d <= 30; ++d) {
    const double s = t_stall(t, 1.0, d);
    EXPECT_LE(s, last);
    last = s;
  }
}

TEST(Equations, TStallDecreasesWithS) {
  TimingParams t;
  t.t_cpu = 1.0;
  EXPECT_GT(t_stall(t, 0.0, 2), t_stall(t, 5.0, 2));
}

// Eq. 2: dT_pf(d) = T_disk - T_stall(d); dT_pf(0) = 0.
TEST(Equations, DeltaTpfBoundaries) {
  const auto t = paper();
  EXPECT_DOUBLE_EQ(delta_t_pf(t, 1.0, 0), 0.0);
  EXPECT_DOUBLE_EQ(delta_t_pf(t, 1.0, 1), 15.0);  // fully hidden
}

TEST(Equations, DeltaTpfHandValueSmallCpu) {
  TimingParams t;
  t.t_cpu = 1.0;
  // d = 2, s = 1: stall 5.677 -> saved 9.323
  EXPECT_NEAR(delta_t_pf(t, 1.0, 2), 9.323, 1e-9);
}

// Eq. 1: B = p_b dT_pf(d_b) - p_x dT_pf(d_b - 1).
TEST(Equations, BenefitDepthOneIsPureGain) {
  const auto t = paper();
  // d_b = 1: parent term uses dT_pf(0) = 0.
  EXPECT_NEAR(benefit(t, 1.0, 0.4, 1.0, 1), 0.4 * 15.0, 1e-12);
}

TEST(Equations, BenefitDeeperIsNegativeWhenNoStallRemains) {
  const auto t = paper();  // T_cpu = 50: dT_pf saturates at T_disk
  // p_b < p_x and both saved times equal T_disk -> negative benefit.
  EXPECT_LT(benefit(t, 1.0, 0.3, 0.6, 2), 0.0);
}

TEST(Equations, BenefitHandValueSmallCpu) {
  TimingParams t;
  t.t_cpu = 1.0;
  // s = 1: dT_pf(1) = 15 - (15 - 1.823) = 1.823; dT_pf(2) = 9.323
  // B = 0.5 * 9.323 - 0.8 * 1.823 = 4.6615 - 1.4584 = 3.2031
  EXPECT_NEAR(benefit(t, 1.0, 0.5, 0.8, 2), 3.2031, 1e-9);
}

// Eq. 14: T_oh = (1 - p_b / p_x) T_driver.
TEST(Equations, OverheadHandValues) {
  const auto t = paper();
  EXPECT_NEAR(prefetch_overhead(t, 0.25, 0.5), 0.5 * 0.580, 1e-12);
  EXPECT_DOUBLE_EQ(prefetch_overhead(t, 0.5, 0.5), 0.0);  // certain child
  EXPECT_DOUBLE_EQ(prefetch_overhead(t, 0.7, 0.5), 0.0);  // clamped
}

// Eq. 11: C_pr = p_b (T_driver + T_stall(x)) / (d_b - x).
TEST(Equations, EjectPrefetchHandValues) {
  const auto t = paper();
  // x = 0: stall(0) = T_disk -> p * (0.58 + 15) / d_b
  EXPECT_NEAR(cost_eject_prefetch(t, 1.0, 0.5, 1, 0), 0.5 * 15.58, 1e-12);
  EXPECT_NEAR(cost_eject_prefetch(t, 1.0, 0.5, 4, 0), 0.5 * 15.58 / 4.0,
              1e-12);
  // x >= 1 with T_cpu = 50: stall 0 -> p * T_driver / (d - x)
  EXPECT_NEAR(cost_eject_prefetch(t, 1.0, 0.6, 5, 2), 0.6 * 0.58 / 3.0,
              1e-12);
}

// Eq. 13: C_dc = (H(n) - H(n-1)) (T_driver + T_disk).
TEST(Equations, EjectDemandHandValues) {
  const auto t = paper();
  EXPECT_NEAR(cost_eject_demand(t, 0.01), 0.01 * 15.58, 1e-12);
  EXPECT_DOUBLE_EQ(cost_eject_demand(t, 0.0), 0.0);
}

TEST(Equations, PrefetchHorizonPaperConstants) {
  const auto t = paper();
  // 15 / (0.243 + 50 + s*0.58) < 1 -> horizon 1 for any s >= 0.
  EXPECT_EQ(prefetch_horizon(t, 0.0), 1u);
  EXPECT_EQ(prefetch_horizon(t, 4.0), 1u);
}

TEST(Equations, PrefetchHorizonSmallCpu) {
  TimingParams t;
  t.t_cpu = 1.0;
  // s = 1: per period 1.823 -> ceil(15 / 1.823) = ceil(8.228) = 9
  EXPECT_EQ(prefetch_horizon(t, 1.0), 9u);
  // larger s shortens the horizon
  EXPECT_LE(prefetch_horizon(t, 10.0), 9u);
}

TEST(Equations, BenefitMonotoneInProbability) {
  TimingParams t;
  t.t_cpu = 1.0;
  double last = -1e9;
  for (double p = 0.05; p <= 1.0; p += 0.05) {
    const double b = benefit(t, 1.0, p, 1.0, 2);
    EXPECT_GT(b, last);
    last = b;
  }
}

}  // namespace
}  // namespace pfp::core::costben
