#include "core/policy/eviction.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/costben/equations.hpp"
#include "policy_harness.hpp"

namespace pfp::core::policy {
namespace {

using testing::Harness;

TEST(Eviction, CheapestCostInfinityWhenEmpty) {
  Harness h(4);
  EXPECT_TRUE(std::isinf(cheapest_eviction_cost(h.ctx)));
}

TEST(Eviction, CheapestCostUsesStoredPrefetchCost) {
  Harness h(4);
  h.prefetch(1, 0.25);
  EXPECT_DOUBLE_EQ(cheapest_eviction_cost(h.ctx), 0.25);
}

TEST(Eviction, CheapestCostUsesDemandMarginal) {
  Harness h(4);
  h.demand(1);
  // Feed the stack-distance profile: all hits at depth 1 out of 2
  // accesses -> marginal(1) spread over bucket width 32 -> 1/(32*2).
  h.stack.record(true, 1);
  h.stack.record(false);
  const double expected = costben::cost_eject_demand(
      h.timing, h.stack.marginal_hit_rate(1));
  EXPECT_DOUBLE_EQ(cheapest_eviction_cost(h.ctx), expected);
  EXPECT_GT(expected, 0.0);
}

TEST(Eviction, EvictCheapestPrefersCheaperSide) {
  Harness h(4);
  h.demand(1);
  h.prefetch(2, /*cost=*/1e-9);  // prefetch side much cheaper
  // Give the demand side a real marginal hit rate so its ejection cost
  // is positive (an unprofiled cache prices its LRU buffer at zero).
  for (int i = 0; i < 8; ++i) {
    h.stack.record(true, 1);
  }
  evict_cheapest(h.ctx);
  EXPECT_TRUE(h.cache.demand().contains(1));
  EXPECT_FALSE(h.cache.prefetch().contains(2));
  EXPECT_EQ(h.metrics.prefetch_ejections, 1u);
}

TEST(Eviction, EvictCheapestPrefersDemandWhenPrefetchExpensive) {
  Harness h(4);
  h.demand(1);
  h.prefetch(2, /*cost=*/100.0);
  // no recorded hits at the tail -> demand marginal 0 -> demand cheaper
  evict_cheapest(h.ctx);
  EXPECT_FALSE(h.cache.demand().contains(1));
  EXPECT_TRUE(h.cache.prefetch().contains(2));
  EXPECT_EQ(h.metrics.demand_ejections, 1u);
}

TEST(Eviction, EvictCheapestRecordsUnusedPrefetchOutcome) {
  Harness h(4);
  h.prefetch(2, 0.0);
  const double h_before = h.estimators.h();
  evict_cheapest(h.ctx);
  EXPECT_LT(h.estimators.h(), h_before);  // a miss outcome was recorded
}

TEST(Eviction, PrefetchFirstTakesOldestPrefetch) {
  Harness h(4);
  h.demand(1);
  h.prefetch(2, 0.9);
  h.prefetch(3, 0.1);
  evict_prefetch_first(h.ctx);
  EXPECT_FALSE(h.cache.prefetch().contains(2));  // oldest, not cheapest
  EXPECT_TRUE(h.cache.prefetch().contains(3));
  EXPECT_TRUE(h.cache.demand().contains(1));
}

TEST(Eviction, PrefetchFirstFallsBackToDemand) {
  Harness h(4);
  h.demand(1);
  h.demand(2);
  evict_prefetch_first(h.ctx);
  EXPECT_FALSE(h.cache.demand().contains(1));  // LRU demand went
  EXPECT_TRUE(h.cache.demand().contains(2));
}

TEST(Eviction, DemandFirstTakesDemandLru) {
  Harness h(4);
  h.demand(1);
  h.demand(2);
  h.prefetch(3, 0.1);
  evict_demand_first(h.ctx);
  EXPECT_FALSE(h.cache.demand().contains(1));
  EXPECT_TRUE(h.cache.prefetch().contains(3));
}

TEST(Eviction, DemandFirstFallsBackToPrefetch) {
  Harness h(4);
  h.prefetch(3, 0.1);
  evict_demand_first(h.ctx);
  EXPECT_EQ(h.cache.resident(), 0u);
}

TEST(Eviction, EjectSpecificBlock) {
  Harness h(4);
  h.prefetch(5, 0.5, /*obl=*/true);
  const double obl_before = h.estimators.obl_h();
  eject_prefetch_block(h.ctx, 5);
  EXPECT_FALSE(h.cache.prefetch().contains(5));
  EXPECT_LT(h.estimators.obl_h(), obl_before);
  EXPECT_EQ(h.metrics.prefetch_ejections, 1u);
}

}  // namespace
}  // namespace pfp::core::policy
