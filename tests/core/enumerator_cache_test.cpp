// The incremental candidate cache: verbatim reuse, O(k) rescale, and the
// invalidation edge cases (leaf-LRU slot reuse, limit changes, cross-tree
// slot collisions, tree copies/moves), plus seeded-corruption proof that
// the SIM_AUDIT sweep detects a cache that drifted from the tree.
//
// Cache slots materialize lazily: the first lookup of a key records only
// a header and answers from the shared hot buffer; the second (still
// valid) lookup promotes the slot with a walk into its own list; from the
// third on, reuse is verbatim or rescaled.  Tests below spell out that
// miss → promote → hit progression in their stats expectations.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/tree/enumerator.hpp"
#include "core/tree/prefetch_tree.hpp"
#include "util/audit.hpp"
#include "util/prng.hpp"

namespace pfp::core::tree {

// Friend of CandidateEnumerator: exposes the slot array so tests can
// corrupt cached candidate lists.  Lives in the test binary only.
struct EnumeratorTestAccess {
  static auto& slots(CandidateEnumerator& enumerator) {
    return enumerator.slots_;
  }
};

namespace {

// The Figure 1 tree: (a)(ac)(ab)(aba)(abb)(b) with a=1, b=2, c=3.
PrefetchTree figure1_tree() {
  PrefetchTree tree;
  for (const BlockId b : {1u, 1u, 3u, 1u, 2u, 1u, 2u, 1u, 1u, 2u, 2u, 2u}) {
    tree.access(b);
  }
  return tree;
}

EnumeratorLimits loose() {
  EnumeratorLimits limits;
  limits.max_depth = 8;
  limits.min_probability = 0.0001;
  limits.max_candidates = 100;
  return limits;
}

std::vector<Candidate> copy_of(std::span<const Candidate> span) {
  return {span.begin(), span.end()};
}

void expect_same(std::span<const Candidate> got,
                 const std::vector<Candidate>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].block, want[i].block) << "candidate " << i;
    EXPECT_EQ(got[i].probability, want[i].probability) << "candidate " << i;
    EXPECT_EQ(got[i].parent_probability, want[i].parent_probability)
        << "candidate " << i;
    EXPECT_EQ(got[i].depth, want[i].depth) << "candidate " << i;
    EXPECT_EQ(got[i].node, want[i].node) << "candidate " << i;
  }
}

TEST(EnumeratorCache, UnchangedTreeServesVerbatimHit) {
  PrefetchTree tree = figure1_tree();
  CandidateEnumerator enumerator;
  const auto first = copy_of(enumerator.enumerate(tree, tree.root(), loose()));
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(enumerator.cache_stats().full_walks, 1u);

  // The key repeated while valid: the slot is promoted with its own walk.
  const auto second = copy_of(enumerator.enumerate(tree, tree.root(), loose()));
  EXPECT_EQ(enumerator.cache_stats().verbatim_hits, 0u);
  EXPECT_EQ(enumerator.cache_stats().full_walks, 2u);
  expect_same(second, first);

  // From here on the materialized list is served verbatim.
  const auto third = enumerator.enumerate(tree, tree.root(), loose());
  EXPECT_EQ(enumerator.cache_stats().verbatim_hits, 1u);
  EXPECT_EQ(enumerator.cache_stats().full_walks, 2u);
  expect_same(third, first);
}

TEST(EnumeratorCache, OwnWeightGrowthRescalesBitIdentically) {
  // Enumerate from node ab, then have the parse re-arrive at ab: its own
  // weight grows but nothing below it changes, so the cached list is
  // rescaled in O(k) — and must equal a fresh enumeration exactly.
  PrefetchTree tree = figure1_tree();
  ASSERT_EQ(tree.current(), tree.root());
  const NodeId a = tree.find_child(tree.root(), 1);
  ASSERT_NE(a, kNoNode);
  const NodeId ab = tree.find_child(a, 2);
  ASSERT_NE(ab, kNoNode);

  CandidateEnumerator enumerator;
  (void)enumerator.enumerate(tree, ab, loose());
  const auto before = copy_of(enumerator.enumerate(tree, ab, loose()));
  ASSERT_FALSE(before.empty());
  ASSERT_EQ(enumerator.cache_stats().full_walks, 2u);  // miss then promote
  const std::uint64_t epoch_before = tree.node(ab).children_epoch;
  const std::uint64_t weight_before = tree.node(ab).weight;

  tree.access(1);  // parse descends root -> a
  tree.access(2);  // parse descends a -> ab; ab's weight grows
  ASSERT_EQ(tree.node(ab).weight, weight_before + 1);
  ASSERT_EQ(tree.node(ab).children_epoch, epoch_before)
      << "growing ab's own weight must not stamp ab itself";

  const auto rescaled = enumerator.enumerate(tree, ab, loose());
  EXPECT_EQ(enumerator.cache_stats().rescale_hits, 1u);
  EXPECT_EQ(enumerator.cache_stats().full_walks, 2u);
  expect_same(rescaled, enumerate_candidates(tree, ab, loose()));
}

TEST(EnumeratorCache, RescaleCrossingCutoffFallsBackToFullWalk) {
  // With min_probability between 1/4 and 1/3, ab's children (weight 1
  // each) survive at weight(ab)=3 but drop out at weight(ab)=4 — the
  // membership change makes the rescale ineligible.
  PrefetchTree tree = figure1_tree();
  const NodeId a = tree.find_child(tree.root(), 1);
  const NodeId ab = tree.find_child(a, 2);
  ASSERT_NE(ab, kNoNode);
  ASSERT_EQ(tree.node(ab).weight, 3u);

  EnumeratorLimits limits = loose();
  limits.min_probability = 0.3;
  CandidateEnumerator enumerator;
  (void)enumerator.enumerate(tree, ab, limits);
  const auto before = enumerator.enumerate(tree, ab, limits);  // promote
  ASSERT_EQ(before.size(), 2u);  // children a and b at p = 1/3

  tree.access(1);
  tree.access(2);  // weight(ab) -> 4; children fall to p = 1/4 < 0.3

  const auto after = enumerator.enumerate(tree, ab, limits);
  EXPECT_TRUE(after.empty());
  EXPECT_EQ(enumerator.cache_stats().rescale_hits, 0u);
  EXPECT_EQ(enumerator.cache_stats().full_walks, 3u);
  expect_same(after, enumerate_candidates(tree, ab, limits));
}

TEST(EnumeratorCache, SubtreeMutationForcesFullWalk) {
  // A new node below the enumeration root stamps its children_epoch, so
  // even a fully materialized list is not reusable.
  PrefetchTree tree = figure1_tree();
  CandidateEnumerator enumerator;
  (void)enumerator.enumerate(tree, tree.root(), loose());
  (void)enumerator.enumerate(tree, tree.root(), loose());  // promote

  tree.access(3);  // new node c under the root; parse resets
  const auto after = enumerator.enumerate(tree, tree.root(), loose());
  EXPECT_EQ(enumerator.cache_stats().verbatim_hits, 0u);
  EXPECT_EQ(enumerator.cache_stats().rescale_hits, 0u);
  EXPECT_EQ(enumerator.cache_stats().full_walks, 3u);
  expect_same(after, enumerate_candidates(tree, tree.root(), loose()));
}

TEST(EnumeratorCache, ParseBelowFillIsNotReusedAfterDeepMutation) {
  // Fill the root's slot while the parse sits strictly below the root: a
  // later access can then mutate the subtree without ever crossing (and
  // stamping) the root.  The parse-order argument does not apply to such
  // fills — only the frozen-serial rule may serve them, and it dies with
  // the very next access.
  PrefetchTree tree = figure1_tree();
  tree.access(1);  // parse descends root -> a
  ASSERT_NE(tree.current(), tree.root());

  CandidateEnumerator enumerator;
  (void)enumerator.enumerate(tree, tree.root(), loose());
  (void)enumerator.enumerate(tree, tree.root(), loose());  // promote
  const auto frozen = enumerator.enumerate(tree, tree.root(), loose());
  EXPECT_EQ(enumerator.cache_stats().verbatim_hits, 1u);
  expect_same(frozen, enumerate_candidates(tree, tree.root(), loose()));

  const std::uint64_t root_epoch = tree.node(tree.root()).children_epoch;
  const std::uint64_t root_weight = tree.node(tree.root()).weight;
  tree.access(2);  // parse a -> ab: grows ab's weight below the root
  ASSERT_EQ(tree.node(tree.root()).children_epoch, root_epoch)
      << "the deep mutation must not have stamped the root";
  ASSERT_EQ(tree.node(tree.root()).weight, root_weight);

  const auto after = enumerator.enumerate(tree, tree.root(), loose());
  EXPECT_EQ(enumerator.cache_stats().verbatim_hits, 1u);
  EXPECT_EQ(enumerator.cache_stats().rescale_hits, 0u);
  EXPECT_EQ(enumerator.cache_stats().full_walks, 3u);
  expect_same(after, enumerate_candidates(tree, tree.root(), loose()));
}

TEST(EnumeratorCache, ChangedLimitsForceFullWalk) {
  PrefetchTree tree = figure1_tree();
  CandidateEnumerator enumerator;
  (void)enumerator.enumerate(tree, tree.root(), loose());

  EnumeratorLimits narrower = loose();
  narrower.max_depth = 1;
  const auto after = enumerator.enumerate(tree, tree.root(), narrower);
  EXPECT_EQ(enumerator.cache_stats().verbatim_hits, 0u);
  EXPECT_EQ(enumerator.cache_stats().full_walks, 2u);
  expect_same(after, enumerate_candidates(tree, tree.root(), narrower));
}

TEST(EnumeratorCache, EmptyTreeBypassesCache) {
  PrefetchTree tree;
  CandidateEnumerator enumerator;
  EXPECT_TRUE(enumerator.enumerate(tree, tree.root(), loose()).empty());
  EXPECT_EQ(enumerator.cache_stats().verbatim_hits, 0u);
  EXPECT_EQ(enumerator.cache_stats().rescale_hits, 0u);
  EXPECT_EQ(enumerator.cache_stats().full_walks, 0u);
}

TEST(EnumeratorCache, DistinctTreesNeverShareSlots) {
  // Two structurally identical trees have identical NodeIds (same slot
  // index) but distinct uids, so the second lookup must re-walk.
  PrefetchTree one = figure1_tree();
  PrefetchTree two = figure1_tree();
  ASSERT_NE(one.uid(), two.uid());

  CandidateEnumerator enumerator;
  (void)enumerator.enumerate(one, one.root(), loose());
  const auto from_two = enumerator.enumerate(two, two.root(), loose());
  EXPECT_EQ(enumerator.cache_stats().verbatim_hits, 0u);
  EXPECT_EQ(enumerator.cache_stats().full_walks, 2u);
  expect_same(from_two, enumerate_candidates(two, two.root(), loose()));
}

TEST(EnumeratorCache, CopiedTreeGetsFreshUid) {
  PrefetchTree tree = figure1_tree();
  CandidateEnumerator enumerator;
  (void)enumerator.enumerate(tree, tree.root(), loose());

  PrefetchTree copy = tree;
  EXPECT_NE(copy.uid(), tree.uid());
  const auto from_copy = enumerator.enumerate(copy, copy.root(), loose());
  EXPECT_EQ(enumerator.cache_stats().verbatim_hits, 0u);
  EXPECT_EQ(enumerator.cache_stats().full_walks, 2u);
  expect_same(from_copy, enumerate_candidates(copy, copy.root(), loose()));
}

TEST(EnumeratorCache, MovedTreeKeepsUidAndCacheEntries) {
  // A move transfers the exact structure the cache entries describe, so
  // the moved-to tree keeps the uid and cached lists stay valid; the
  // moved-from husk is re-uided and can never alias them.
  PrefetchTree tree = figure1_tree();
  const std::uint64_t uid = tree.uid();
  CandidateEnumerator enumerator;
  (void)enumerator.enumerate(tree, tree.root(), loose());
  const auto first = copy_of(enumerator.enumerate(tree, tree.root(), loose()));
  ASSERT_EQ(enumerator.cache_stats().full_walks, 2u);  // miss then promote

  PrefetchTree moved = std::move(tree);
  EXPECT_EQ(moved.uid(), uid);
  EXPECT_NE(tree.uid(), uid);  // NOLINT(bugprone-use-after-move)

  const auto second = enumerator.enumerate(moved, moved.root(), loose());
  EXPECT_EQ(enumerator.cache_stats().verbatim_hits, 1u);
  EXPECT_EQ(enumerator.cache_stats().full_walks, 2u);
  expect_same(second, first);
}

TEST(EnumeratorCache, ClearCacheDropsEntriesButKeepsStats) {
  PrefetchTree tree = figure1_tree();
  CandidateEnumerator enumerator;
  (void)enumerator.enumerate(tree, tree.root(), loose());
  (void)enumerator.enumerate(tree, tree.root(), loose());  // promote
  (void)enumerator.enumerate(tree, tree.root(), loose());
  ASSERT_EQ(enumerator.cache_stats().verbatim_hits, 1u);

  enumerator.clear_cache();
  const auto after = enumerator.enumerate(tree, tree.root(), loose());
  EXPECT_EQ(enumerator.cache_stats().verbatim_hits, 1u);
  EXPECT_EQ(enumerator.cache_stats().full_walks, 3u);
  expect_same(after, enumerate_candidates(tree, tree.root(), loose()));
}

TEST(EnumeratorCache, LeafLruChurnNeverServesStaleLists) {
  // A node-capped tree constantly evicts leaves and recycles pool slots;
  // every enumeration through the shared (caching) enumerator must equal
  // a fresh one-shot enumeration of the live tree.
  TreeConfig config;
  config.max_nodes = 16;
  PrefetchTree tree(config);
  CandidateEnumerator enumerator;
  EnumeratorLimits limits = loose();
  util::Xoshiro256 rng(17);
  for (int i = 0; i < 3'000; ++i) {
    tree.access(rng.below(24));
    const auto cached = enumerator.enumerate(tree, tree.current(), limits);
    const auto fresh = enumerate_candidates(tree, tree.current(), limits);
    ASSERT_NO_FATAL_FAILURE(expect_same(cached, fresh)) << "access " << i;
  }
  EXPECT_EQ(tree.node_count(), config.max_nodes)
      << "churn test never saturated the pool; eviction was not exercised";
}

// --- SIM_AUDIT detection -------------------------------------------------

void throwing_handler(const char* component, const char* what, const char*,
                      int) {
  throw std::runtime_error(std::string(component) + ": " + what);
}

class EnumeratorAuditDetection : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!PFP_AUDIT_ENABLED) {
      GTEST_SKIP() << "built without SIM_AUDIT; sweeps are no-ops";
    }
    previous_ = util::set_audit_handler(&throwing_handler);
  }
  void TearDown() override {
    if (PFP_AUDIT_ENABLED) {
      util::set_audit_handler(previous_);
    }
  }

 private:
  util::AuditHandler previous_ = nullptr;
};

TEST_F(EnumeratorAuditDetection, CleanCacheAuditsPass) {
  PrefetchTree tree = figure1_tree();
  CandidateEnumerator enumerator;
  (void)enumerator.enumerate(tree, tree.root(), loose());
  (void)enumerator.enumerate(tree, tree.root(), loose());
  EXPECT_NO_THROW(enumerator.audit(tree));
}

TEST_F(EnumeratorAuditDetection, CorruptedVerbatimSlotFires) {
  PrefetchTree tree = figure1_tree();
  CandidateEnumerator enumerator;
  (void)enumerator.enumerate(tree, tree.root(), loose());
  (void)enumerator.enumerate(tree, tree.root(), loose());  // materialize

  bool corrupted = false;
  for (auto& slot : EnumeratorTestAccess::slots(enumerator)) {
    if (slot.from == tree.root() && slot.tree_uid == tree.uid()) {
      ASSERT_TRUE(slot.items_valid);
      ASSERT_FALSE(slot.items.empty());
      slot.items[0].probability += 0.125;
      corrupted = true;
    }
  }
  ASSERT_TRUE(corrupted);
  EXPECT_THROW(enumerator.audit(tree), std::runtime_error);
}

TEST_F(EnumeratorAuditDetection, CorruptedRescalableSlotFires) {
  // Leave the slot in the rescale-eligible state (own weight grew,
  // children_epoch unchanged) and corrupt a cached block id: the audit
  // must rescale the copy and catch the mismatch against a fresh walk.
  PrefetchTree tree = figure1_tree();
  const NodeId a = tree.find_child(tree.root(), 1);
  const NodeId ab = tree.find_child(a, 2);
  ASSERT_NE(ab, kNoNode);
  CandidateEnumerator enumerator;
  (void)enumerator.enumerate(tree, ab, loose());
  (void)enumerator.enumerate(tree, ab, loose());  // materialize
  tree.access(1);
  tree.access(2);  // grow ab's own weight; subtree untouched

  bool corrupted = false;
  for (auto& slot : EnumeratorTestAccess::slots(enumerator)) {
    if (slot.from == ab && slot.tree_uid == tree.uid()) {
      ASSERT_TRUE(slot.items_valid);
      ASSERT_FALSE(slot.items.empty());
      slot.items[0].block += 100;
      corrupted = true;
    }
  }
  ASSERT_TRUE(corrupted);
  EXPECT_THROW(enumerator.audit(tree), std::runtime_error);
}

}  // namespace
}  // namespace pfp::core::tree
