#include "core/markov/markov_model.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <vector>

namespace pfp::core::markov {
namespace {

using costben::PredictedBlock;

std::vector<PredictedBlock> predict(const DeltaMarkov& model,
                                    MarkovPredictLimits limits = {}) {
  std::vector<PredictedBlock> out;
  model.predict_into(limits, out);
  return out;
}

TEST(DeltaMarkov, EmptyModelPredictsNothing) {
  DeltaMarkov model;
  EXPECT_TRUE(predict(model).empty());
  model.observe(10);
  model.observe(11);  // one delta exists, but no transition yet
  EXPECT_TRUE(predict(model).empty());
  EXPECT_EQ(model.row_count(), 0u);
}

TEST(DeltaMarkov, LearnsAStrideAsASingleRow) {
  DeltaMarkov model;
  for (trace::BlockId b = 0; b <= 40; b += 4) {
    model.observe(b);
  }
  // One context (+4) with one successor (+4), certain.
  EXPECT_EQ(model.row_count(), 1u);
  EXPECT_EQ(model.transition_count(), 1u);

  const auto out = predict(model);
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out[0].block, 44u);
  EXPECT_DOUBLE_EQ(out[0].probability, 1.0);
  EXPECT_DOUBLE_EQ(out[0].parent_probability, 1.0);
  EXPECT_EQ(out[0].depth, 1u);
}

TEST(DeltaMarkov, ChainsExtendWithMultipliedProbabilities) {
  DeltaMarkov model;
  for (trace::BlockId b = 0; b <= 400; b += 4) {
    model.observe(b);
  }
  MarkovPredictLimits limits;
  limits.max_depth = 3;
  const auto out = predict(model, limits);
  ASSERT_EQ(out.size(), 3u);
  // A pure stride is certain at every depth; the deeper candidate's
  // parent probability is the previous chain element's probability.
  for (std::uint32_t d = 1; d <= 3; ++d) {
    EXPECT_EQ(out[d - 1].depth, d);
    EXPECT_DOUBLE_EQ(out[d - 1].probability, 1.0);
    EXPECT_EQ(out[d - 1].block, 400u + 4u * d);
  }
}

TEST(DeltaMarkov, SplitsProbabilityAcrossCompetingSuccessors) {
  DeltaMarkov model;
  // Departures from context +1 in this sequence: +1 twice, +8 twice,
  // +10 once (five total).
  const trace::BlockId seq[] = {0, 1, 2, 10, 11, 12, 20, 21, 31};
  for (const trace::BlockId b : seq) {
    model.observe(b);
  }
  // Last delta is +10; steer the parse position back onto context +1.
  model.observe(32);  // delta +1 -> context is now +1
  MarkovPredictLimits limits;
  limits.max_depth = 1;
  limits.min_probability = 0.0;
  const auto out = predict(model, limits);
  ASSERT_EQ(out.size(), 3u);
  // Equal probabilities tie-break by ascending block.
  EXPECT_EQ(out[0].block, 33u);  // +1
  EXPECT_NEAR(out[0].probability, 2.0 / 5.0, 1e-12);
  EXPECT_EQ(out[1].block, 40u);  // +8
  EXPECT_NEAR(out[1].probability, 2.0 / 5.0, 1e-12);
  EXPECT_EQ(out[2].block, 42u);  // +10
  EXPECT_NEAR(out[2].probability, 1.0 / 5.0, 1e-12);
}

TEST(DeltaMarkov, MinProbabilityCutsTheTail) {
  DeltaMarkov model;
  const trace::BlockId seq[] = {0, 1, 2, 10, 11, 12, 20, 21, 31};
  for (const trace::BlockId b : seq) {
    model.observe(b);
  }
  model.observe(32);
  MarkovPredictLimits limits;
  limits.max_depth = 1;
  limits.min_probability = 0.3;  // keeps the two 2/5ths, cuts the 1/5th
  const auto out = predict(model, limits);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].block, 33u);
  EXPECT_EQ(out[1].block, 40u);
}

TEST(DeltaMarkov, DeduplicatesConvergingChains) {
  DeltaMarkov model;
  for (trace::BlockId b = 0; b <= 400; b += 4) {
    model.observe(b);
  }
  const auto out = predict(model);
  for (std::size_t i = 0; i < out.size(); ++i) {
    for (std::size_t j = i + 1; j < out.size(); ++j) {
      EXPECT_NE(out[i].block, out[j].block);
    }
  }
}

TEST(DeltaMarkov, NeverPredictsNegativeBlocks) {
  DeltaMarkov model;
  // Learn a -100 stride near the origin: candidates would go negative.
  for (int i = 0; i < 6; ++i) {
    model.observe(static_cast<trace::BlockId>(500 - i * 100));
  }
  MarkovPredictLimits limits;
  limits.max_depth = 8;
  const auto out = predict(model, limits);
  for (const PredictedBlock& c : out) {
    EXPECT_LE(c.block, 500u);  // and implicitly >= 0 by type
  }
}

TEST(DeltaMarkov, RowWidthDisplacesTheWeakestSuccessor) {
  MarkovConfig config;
  config.row_width = 2;
  DeltaMarkov model(config);
  // Context +1 followed by +2 (x3), +3 (x2), then +4 once: the row holds
  // only the two strongest.
  const trace::BlockId seq[] = {0,  1,  3,  10, 11, 13, 20, 21, 23,
                                30, 31, 34, 40, 41, 44, 50, 51, 55};
  for (const trace::BlockId b : seq) {
    model.observe(b);
  }
  model.observe(56);  // context back to +1
  MarkovPredictLimits limits;
  limits.max_depth = 1;
  limits.min_probability = 0.0;
  const auto out = predict(model, limits);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].block, 58u);  // +2, the strongest
}

TEST(DeltaMarkov, ContextCountIsLruBounded) {
  MarkovConfig config;
  config.max_contexts = 4;
  DeltaMarkov model(config);
  // Alternate deltas (1, k) for many distinct k: every (1 -> k) and
  // (k -> 1) pair mints new context rows.
  trace::BlockId b = 1000000;
  for (int k = 2; k < 40; ++k) {
    model.observe(b += 1);
    model.observe(b += static_cast<trace::BlockId>(k));
  }
  EXPECT_LE(model.row_count(), 4u);
  model.audit();
}

TEST(DeltaMarkov, DecayHalvesSaturatedRows) {
  MarkovConfig config;
  config.max_count = 4;
  DeltaMarkov model(config);
  for (trace::BlockId b = 0; b < 400; b += 4) {
    model.observe(b);
  }
  // The (+4 -> +4) count keeps saturating and halving, never reaching
  // max_count; prediction still says "certain".
  const auto out = predict(model);
  ASSERT_FALSE(out.empty());
  EXPECT_DOUBLE_EQ(out[0].probability, 1.0);
  model.audit();
}

TEST(DeltaMarkov, MemoryAccountingIsNonTrivial) {
  DeltaMarkov model;
  for (trace::BlockId b = 0; b <= 40; b += 4) {
    model.observe(b);
  }
  EXPECT_GT(model.actual_memory_bytes(), 0u);
}

TEST(DeltaMarkovSerialize, RoundTripPreservesPredictions) {
  DeltaMarkov model;
  const trace::BlockId seq[] = {0, 1, 2, 10, 11, 12, 20, 21, 31, 32, 33};
  for (const trace::BlockId b : seq) {
    model.observe(b);
  }
  std::stringstream stream;
  model.serialize(stream);
  DeltaMarkov restored = DeltaMarkov::deserialize(stream, model.config());

  EXPECT_EQ(restored.row_count(), model.row_count());
  EXPECT_EQ(restored.transition_count(), model.transition_count());
  restored.audit();

  // The parse position is transient (not serialized), so prime the
  // restored model onto context +1 — the first delta after a restore has
  // no predecessor and therefore updates no counts — and check the
  // trained row survived verbatim: {+1: 3, +8: 2, +10: 1} of 6.
  restored.observe(100);
  restored.observe(101);
  MarkovPredictLimits limits;
  limits.max_depth = 1;
  limits.min_probability = 0.0;
  std::vector<PredictedBlock> out;
  restored.predict_into(limits, out);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].block, 102u);
  EXPECT_NEAR(out[0].probability, 3.0 / 6.0, 1e-12);
  EXPECT_EQ(out[1].block, 109u);
  EXPECT_NEAR(out[1].probability, 2.0 / 6.0, 1e-12);
  EXPECT_EQ(out[2].block, 111u);
  EXPECT_NEAR(out[2].probability, 1.0 / 6.0, 1e-12);
}

TEST(DeltaMarkovSerialize, RoundTripIsByteStable) {
  DeltaMarkov model;
  for (trace::BlockId b = 0; b < 100; b += 3) {
    model.observe(b);
    model.observe(b + 1);
  }
  std::stringstream first;
  model.serialize(first);
  DeltaMarkov restored = DeltaMarkov::deserialize(first, model.config());
  std::stringstream second;
  restored.serialize(second);
  EXPECT_EQ(first.str(), second.str());
}

TEST(DeltaMarkovSerialize, RejectsBadMagic) {
  std::stringstream stream("XXXXjunk");
  EXPECT_THROW(DeltaMarkov::deserialize(stream, MarkovConfig{}),
               std::runtime_error);
}

TEST(DeltaMarkovSerialize, RejectsTruncatedStream) {
  DeltaMarkov model;
  for (trace::BlockId b = 0; b <= 40; b += 4) {
    model.observe(b);
  }
  std::stringstream stream;
  model.serialize(stream);
  const std::string bytes = stream.str();
  for (std::size_t cut = 4; cut < bytes.size(); cut += 7) {
    std::stringstream truncated(bytes.substr(0, cut));
    EXPECT_THROW(DeltaMarkov::deserialize(truncated, model.config()),
                 std::runtime_error);
  }
}

TEST(DeltaMarkovSerialize, RejectsRowsBeyondTheConfiguredBounds) {
  DeltaMarkov wide;  // default bounds
  for (trace::BlockId b = 0; b < 60; ++b) {
    wide.observe(b * b);  // quadratic: every delta is new
  }
  std::stringstream stream;
  wide.serialize(stream);
  MarkovConfig tiny;
  tiny.max_contexts = 2;
  EXPECT_THROW(DeltaMarkov::deserialize(stream, tiny), std::runtime_error);
}

}  // namespace
}  // namespace pfp::core::markov
