// Pins the factory-kind -> concrete-type mapping behind dispatch_kind:
// every PolicyKind must devirtualize (never hand visitors the vtable
// fallback), and the static type must match the dynamic type the factory
// actually constructs.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <type_traits>
#include <typeinfo>

#include "core/policy/dispatch.hpp"
#include "core/policy/factory.hpp"

namespace pfp::core::policy {
namespace {

TEST(Dispatch, EveryFactoryKindIsDevirtualized) {
  for (const PolicyKind kind : all_policy_kinds()) {
    const bool devirtualized = dispatch_kind(kind, [](auto tag) {
      using Concrete = typename decltype(tag)::type;
      return !std::is_same_v<Concrete, Prefetcher>;
    });
    EXPECT_TRUE(devirtualized) << kind_name(kind);
  }
}

TEST(Dispatch, StaticTypeMatchesTheFactoryDynamicType) {
  for (const PolicyKind kind : all_policy_kinds()) {
    PolicySpec spec;
    spec.kind = kind;
    const std::unique_ptr<Prefetcher> built = make_prefetcher(spec);
    ASSERT_NE(built, nullptr) << kind_name(kind);
    dispatch_kind(kind, [&](auto tag) {
      using Concrete = typename decltype(tag)::type;
      // The factory may build a subclass of the dispatched type only for
      // kinds documented to share a base (none today): pin exact equality
      // so a future mismatch is an explicit decision, not drift.
      EXPECT_EQ(typeid(*built), typeid(Concrete)) << kind_name(kind);
      EXPECT_NE(dynamic_cast<const Concrete*>(built.get()), nullptr)
          << kind_name(kind);
    });
  }
}

TEST(Dispatch, NewPredictorKindsMapToTheirPolicies) {
  dispatch_kind(PolicyKind::kMarkov, [](auto tag) {
    using Concrete = typename decltype(tag)::type;
    EXPECT_TRUE((std::is_same_v<Concrete, MarkovCostBenefit>));
  });
  dispatch_kind(PolicyKind::kAssoc, [](auto tag) {
    using Concrete = typename decltype(tag)::type;
    EXPECT_TRUE((std::is_same_v<Concrete, AssocCostBenefit>));
  });
}

}  // namespace
}  // namespace pfp::core::policy
