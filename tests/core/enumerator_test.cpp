#include "core/tree/enumerator.hpp"

#include <gtest/gtest.h>

namespace pfp::core::tree {
namespace {

// Build the Figure 1 tree: (a)(ac)(ab)(aba)(abb)(b).
PrefetchTree figure1_tree() {
  PrefetchTree tree;
  for (const BlockId b : {1u, 1u, 3u, 1u, 2u, 1u, 2u, 1u, 1u, 2u, 2u, 2u}) {
    tree.access(b);
  }
  return tree;
}

EnumeratorLimits loose() {
  EnumeratorLimits limits;
  limits.max_depth = 8;
  limits.min_probability = 0.0001;
  limits.max_candidates = 100;
  return limits;
}

TEST(Enumerator, EmptyTreeYieldsNothing) {
  PrefetchTree tree;
  const auto c = enumerate_candidates(tree, tree.root(), loose());
  EXPECT_TRUE(c.empty());
}

TEST(Enumerator, Figure1RootCandidates) {
  // Parse position after the Figure-1 string is the root (last access
  // created node b).  From the root: a (5/6), b (1/6), and descendants.
  PrefetchTree tree = figure1_tree();
  ASSERT_EQ(tree.current(), tree.root());
  const auto c = enumerate_candidates(tree, tree.root(), loose());
  ASSERT_FALSE(c.empty());
  // Most probable candidate is a with p = 5/6 at depth 1.
  EXPECT_EQ(c[0].block, 1u);
  EXPECT_DOUBLE_EQ(c[0].probability, 5.0 / 6.0);
  EXPECT_EQ(c[0].depth, 1u);
  EXPECT_DOUBLE_EQ(c[0].parent_probability, 1.0);
}

TEST(Enumerator, PathProbabilitiesMultiply) {
  PrefetchTree tree = figure1_tree();
  const auto c = enumerate_candidates(tree, tree.root(), loose());
  // Figure 1: P(reach c two deep) = 5/6 * 1/5 = 1/6.  Block 2 (b) appears
  // at depth 1 with p = 1/6 AND under a with p = 5/6 * 3/5 = 1/2 — dedup
  // keeps the more probable depth-2 occurrence.
  bool found_b = false;
  for (const auto& cand : c) {
    if (cand.block == 2) {
      found_b = true;
      EXPECT_DOUBLE_EQ(cand.probability, 0.5);
      EXPECT_EQ(cand.depth, 2u);
      EXPECT_DOUBLE_EQ(cand.parent_probability, 5.0 / 6.0);
    }
  }
  EXPECT_TRUE(found_b);
}

TEST(Enumerator, CandidatesSortedByProbability) {
  PrefetchTree tree = figure1_tree();
  const auto c = enumerate_candidates(tree, tree.root(), loose());
  for (std::size_t i = 1; i < c.size(); ++i) {
    EXPECT_GE(c[i - 1].probability, c[i].probability);
  }
}

TEST(Enumerator, BlocksAreUnique) {
  PrefetchTree tree = figure1_tree();
  const auto c = enumerate_candidates(tree, tree.root(), loose());
  for (std::size_t i = 0; i < c.size(); ++i) {
    for (std::size_t j = i + 1; j < c.size(); ++j) {
      EXPECT_NE(c[i].block, c[j].block);
    }
  }
}

TEST(Enumerator, MaxDepthPrunes) {
  PrefetchTree tree = figure1_tree();
  EnumeratorLimits limits = loose();
  limits.max_depth = 1;
  const auto c = enumerate_candidates(tree, tree.root(), limits);
  for (const auto& cand : c) {
    EXPECT_EQ(cand.depth, 1u);
  }
}

TEST(Enumerator, MinProbabilityPrunes) {
  PrefetchTree tree = figure1_tree();
  EnumeratorLimits limits = loose();
  limits.min_probability = 0.5;
  const auto c = enumerate_candidates(tree, tree.root(), limits);
  for (const auto& cand : c) {
    EXPECT_GE(cand.probability, 0.5);
  }
  // a (5/6) qualifies; its child b at 1/2 qualifies.
  EXPECT_GE(c.size(), 2u);
}

TEST(Enumerator, MaxCandidatesCaps) {
  PrefetchTree tree;
  // Create 50 distinct children of root.
  for (BlockId b = 1; b <= 50; ++b) {
    tree.access(b);
  }
  EnumeratorLimits limits = loose();
  limits.max_candidates = 10;
  const auto c = enumerate_candidates(tree, tree.root(), limits);
  EXPECT_EQ(c.size(), 10u);
}

TEST(Enumerator, FromInteriorNode) {
  PrefetchTree tree = figure1_tree();
  const NodeId a = tree.find_child(tree.root(), 1);
  const auto c = enumerate_candidates(tree, a, loose());
  // From a: children b (3/5), c (1/5), then b's children a, b at 1/3 each
  // of b's path... top candidate must be b at 3/5.
  ASSERT_FALSE(c.empty());
  EXPECT_EQ(c[0].block, 2u);
  EXPECT_DOUBLE_EQ(c[0].probability, 0.6);
}

TEST(Enumerator, ReusedEnumeratorMatchesFreshCalls) {
  // One CandidateEnumerator driven across many positions and limit sets
  // must return exactly what a fresh enumerate_candidates call returns —
  // no state may leak between calls through the reused buffers.
  PrefetchTree tree;
  CandidateEnumerator reused;
  const BlockId stream[] = {1, 2, 3, 1, 2, 4, 1, 2, 3, 5, 1, 2,
                            3, 1, 4, 2, 1, 2, 3, 4, 5, 1, 2, 3};
  EnumeratorLimits tight;
  tight.max_depth = 2;
  tight.min_probability = 0.05;
  tight.max_candidates = 4;
  std::size_t step = 0;
  for (const BlockId b : stream) {
    tree.access(b);
    const EnumeratorLimits& limits = (step % 2 == 0) ? loose() : tight;
    const auto fresh = enumerate_candidates(tree, tree.current(), limits);
    const auto again = reused.enumerate(tree, tree.current(), limits);
    ASSERT_EQ(again.size(), fresh.size()) << "step " << step;
    for (std::size_t i = 0; i < fresh.size(); ++i) {
      EXPECT_EQ(again[i].block, fresh[i].block) << "step " << step;
      EXPECT_EQ(again[i].node, fresh[i].node) << "step " << step;
      EXPECT_EQ(again[i].depth, fresh[i].depth) << "step " << step;
      EXPECT_DOUBLE_EQ(again[i].probability, fresh[i].probability)
          << "step " << step;
      EXPECT_DOUBLE_EQ(again[i].parent_probability,
                       fresh[i].parent_probability)
          << "step " << step;
    }
    ++step;
  }
}

TEST(Enumerator, ReuseAfterEmptyTreeResult) {
  // An empty-tree call must not leave stale candidates behind for the
  // next call.
  PrefetchTree empty;
  PrefetchTree tree = figure1_tree();
  CandidateEnumerator reused;
  EXPECT_FALSE(reused.enumerate(tree, tree.root(), loose()).empty());
  EXPECT_TRUE(reused.enumerate(empty, empty.root(), loose()).empty());
  const auto fresh = enumerate_candidates(tree, tree.root(), loose());
  const auto again = reused.enumerate(tree, tree.root(), loose());
  ASSERT_EQ(again.size(), fresh.size());
  for (std::size_t i = 0; i < fresh.size(); ++i) {
    EXPECT_EQ(again[i].block, fresh[i].block);
    EXPECT_DOUBLE_EQ(again[i].probability, fresh[i].probability);
  }
}

}  // namespace
}  // namespace pfp::core::tree
