// The cost-model ablation knobs: re-prefetch-distance rule (Eq. 11's x)
// and reclaim rule.  These exist for bench/abl03 and abl04; the tests pin
// their mechanics.
#include <gtest/gtest.h>

#include "core/policy/factory.hpp"
#include "sim/simulator.hpp"
#include "util/prng.hpp"

namespace pfp::core::policy {
namespace {

trace::Trace mixed_trace(std::size_t n) {
  trace::Trace t("mixed");
  util::Xoshiro256 rng(11);
  std::vector<trace::BlockId> pattern;
  for (int i = 0; i < 30; ++i) {
    pattern.push_back(1'000 + rng.below(5'000));
  }
  std::size_t pos = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) {
      t.append(rng.below(100'000));
    } else {
      t.append(pattern[pos]);
      pos = (pos + 1) % pattern.size();
    }
  }
  return t;
}

sim::Result run_with(RefetchDistanceRule refetch, ReclaimRule reclaim,
                     const trace::Trace& t, double t_cpu = 50.0) {
  sim::SimConfig c;
  c.cache_blocks = 64;
  c.timing.t_cpu = t_cpu;
  c.policy.kind = PolicyKind::kTree;
  c.policy.tree.refetch = refetch;
  c.policy.tree.reclaim = reclaim;
  return sim::simulate(c, t);
}

TEST(TreeKnobs, AllRuleCombinationsRunClean) {
  const auto t = mixed_trace(10'000);
  for (const auto refetch :
       {RefetchDistanceRule::kHorizon, RefetchDistanceRule::kParentDepth,
        RefetchDistanceRule::kImmediate}) {
    for (const auto reclaim :
         {ReclaimRule::kCostBased, ReclaimRule::kPrefetchFirst,
          ReclaimRule::kDemandFirst}) {
      const auto r = run_with(refetch, reclaim, t);
      EXPECT_EQ(r.metrics.accesses, 10'000u);
      EXPECT_LE(r.metrics.miss_rate(), 1.0);
    }
  }
}

TEST(TreeKnobs, RulesAreDeterministic) {
  const auto t = mixed_trace(10'000);
  const auto a = run_with(RefetchDistanceRule::kImmediate,
                          ReclaimRule::kPrefetchFirst, t);
  const auto b = run_with(RefetchDistanceRule::kImmediate,
                          ReclaimRule::kPrefetchFirst, t);
  EXPECT_EQ(a.metrics.misses, b.metrics.misses);
}

TEST(TreeKnobs, RefetchRuleChangesEjectionPrices) {
  // kImmediate prices ejections at the full demand-refetch penalty
  // (x = 0 -> stall = T_disk), making prefetched blocks look expensive to
  // eject; kParentDepth prices deep candidates with zero stall.  The
  // rules only differ for candidates deeper than one access, which the
  // cost-benefit loop admits only when stalls exist — i.e. at a small
  // compute/IO ratio (at the paper's T_cpu = 50 ms every positive-benefit
  // candidate sits at depth 1 and all three rules coincide).
  const auto t = mixed_trace(20'000);
  const auto immediate = run_with(RefetchDistanceRule::kImmediate,
                                  ReclaimRule::kCostBased, t, /*t_cpu=*/1.0);
  const auto parent = run_with(RefetchDistanceRule::kParentDepth,
                               ReclaimRule::kCostBased, t, /*t_cpu=*/1.0);
  EXPECT_TRUE(immediate.metrics.misses != parent.metrics.misses ||
              immediate.metrics.policy.prefetch_ejections !=
                  parent.metrics.policy.prefetch_ejections);
}

TEST(TreeKnobs, CostBasedReclaimNotWorseThanNaiveRules) {
  // The paper's premise: pricing victims via Eqs. 11/13 performs at least
  // as well as blind recency rules (allow small noise either way).
  const auto t = mixed_trace(30'000);
  const auto cost =
      run_with(RefetchDistanceRule::kHorizon, ReclaimRule::kCostBased, t);
  const auto naive = run_with(RefetchDistanceRule::kHorizon,
                              ReclaimRule::kPrefetchFirst, t);
  EXPECT_LE(cost.metrics.miss_rate(), naive.metrics.miss_rate() + 0.05);
}

}  // namespace
}  // namespace pfp::core::policy
