#include "core/tree/predictability.hpp"

#include <gtest/gtest.h>

#include "sim/simulator.hpp"
#include "trace/workloads.hpp"

namespace pfp::core::tree {
namespace {

trace::Trace of_blocks(std::initializer_list<trace::BlockId> blocks) {
  trace::Trace t("t");
  for (const auto b : blocks) {
    t.append(b);
  }
  return t;
}

TEST(Predictability, EmptyTrace) {
  const auto r = measure_predictability(trace::Trace("empty"));
  EXPECT_EQ(r.accesses, 0u);
  EXPECT_DOUBLE_EQ(r.prediction_accuracy(), 0.0);
  EXPECT_DOUBLE_EQ(r.lvc_revisit_rate(), 0.0);
}

TEST(Predictability, AllNovelBlocksAreUnpredictable) {
  const auto r = measure_predictability(of_blocks({1, 2, 3, 4, 5}));
  EXPECT_EQ(r.accesses, 5u);
  EXPECT_EQ(r.predictable, 0u);
  EXPECT_EQ(r.tree_nodes, 6u);  // root + 5
}

TEST(Predictability, RepetitionBecomesPredictable) {
  // (1)(1,2)(1,...): the second and third "1" match a root child.
  const auto r = measure_predictability(of_blocks({1, 1, 2, 1}));
  EXPECT_EQ(r.predictable, 2u);
  EXPECT_DOUBLE_EQ(r.prediction_accuracy(), 0.5);
}

TEST(Predictability, MatchesSimulatorsTreeMetric) {
  // The standalone pass must agree exactly with the metric the simulator
  // collects through the tree policy (same parse, same counters).
  const auto t = trace::make_workload(trace::Workload::kCad, 20'000);
  const auto standalone = measure_predictability(t);

  sim::SimConfig c;
  c.cache_blocks = 1024;
  c.policy.kind = core::policy::PolicyKind::kTree;
  const auto simulated = sim::simulate(c, t);

  EXPECT_EQ(standalone.predictable, simulated.metrics.policy.predictable);
  EXPECT_EQ(standalone.lvc_followed,
            simulated.metrics.policy.lvc_followed);
  EXPECT_EQ(standalone.lvc_opportunities,
            simulated.metrics.policy.lvc_opportunities);
  EXPECT_EQ(standalone.tree_nodes, simulated.metrics.policy.tree_nodes);
}

TEST(Predictability, BoundedTreeLimitsNodes) {
  TreeConfig config;
  config.max_nodes = 64;
  const auto t = trace::make_workload(trace::Workload::kSnake, 20'000);
  const auto r = measure_predictability(t, config);
  EXPECT_LE(r.tree_nodes, 65u);
  // Bounded trees forget, so they predict no better than unbounded ones.
  const auto unbounded = measure_predictability(t);
  EXPECT_LE(r.prediction_accuracy(),
            unbounded.prediction_accuracy() + 1e-9);
}

}  // namespace
}  // namespace pfp::core::tree
