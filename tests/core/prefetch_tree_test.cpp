#include "core/tree/prefetch_tree.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/prng.hpp"

namespace pfp::core::tree {
namespace {

constexpr BlockId A = 1;
constexpr BlockId B = 2;
constexpr BlockId C = 3;

void feed(PrefetchTree& tree, std::initializer_list<BlockId> blocks) {
  for (const BlockId b : blocks) {
    tree.access(b);
  }
}

// The paper's Figure 1: after the access string (a)(ac)(ab)(aba)(abb)(b)
// the tree has root weight 6 with children a (weight 5) and b (weight 1);
// a has children c (1) and b (3); a's b has children a (1) and b (1).
TEST(PrefetchTree, Figure1WeightsAfterParse) {
  PrefetchTree tree;
  feed(tree, {A, A, C, A, B, A, B, A, A, B, B, B});

  const NodeId root = tree.root();
  EXPECT_EQ(tree.node(root).weight, 6u);

  const NodeId a = tree.find_child(root, A);
  const NodeId b_root = tree.find_child(root, B);
  ASSERT_NE(a, kNoNode);
  ASSERT_NE(b_root, kNoNode);
  EXPECT_EQ(tree.node(a).weight, 5u);
  EXPECT_EQ(tree.node(b_root).weight, 1u);

  const NodeId c = tree.find_child(a, C);
  const NodeId ab = tree.find_child(a, B);
  ASSERT_NE(c, kNoNode);
  ASSERT_NE(ab, kNoNode);
  EXPECT_EQ(tree.node(c).weight, 1u);
  EXPECT_EQ(tree.node(ab).weight, 3u);

  const NodeId aba = tree.find_child(ab, A);
  const NodeId abb = tree.find_child(ab, B);
  ASSERT_NE(aba, kNoNode);
  ASSERT_NE(abb, kNoNode);
  EXPECT_EQ(tree.node(aba).weight, 1u);
  EXPECT_EQ(tree.node(abb).weight, 1u);

  // Figure 1(a)'s probabilities: P(a|root) = 5/6, P(b|root) = 1/6.
  EXPECT_DOUBLE_EQ(tree.edge_probability(root, a), 5.0 / 6.0);
  EXPECT_DOUBLE_EQ(tree.edge_probability(root, b_root), 1.0 / 6.0);
}

// Figure 1(b): one more access of b from the root increments the weights
// of the visited nodes: root -> 7, b -> 2.
TEST(PrefetchTree, Figure1AfterRevisitingB) {
  PrefetchTree tree;
  feed(tree, {A, A, C, A, B, A, B, A, A, B, B, B});
  tree.access(B);
  const NodeId root = tree.root();
  const NodeId b_root = tree.find_child(root, B);
  EXPECT_EQ(tree.node(root).weight, 7u);
  EXPECT_EQ(tree.node(b_root).weight, 2u);
  // Parse is positioned at b now.
  EXPECT_EQ(tree.current(), b_root);
}

TEST(PrefetchTree, StartsAtRootWithNoStatistics) {
  PrefetchTree tree;
  EXPECT_EQ(tree.current(), tree.root());
  EXPECT_EQ(tree.node(tree.root()).weight, 0u);
  EXPECT_EQ(tree.node_count(), 1u);  // just the root
}

TEST(PrefetchTree, NewBlockCreatesNodeAndResetsToRoot) {
  PrefetchTree tree;
  const auto info = tree.access(A);
  EXPECT_TRUE(info.new_node);
  EXPECT_FALSE(info.predictable);
  EXPECT_EQ(tree.current(), tree.root());
  EXPECT_EQ(tree.node_count(), 2u);
}

TEST(PrefetchTree, KnownBlockDescends) {
  PrefetchTree tree;
  tree.access(A);
  const auto info = tree.access(A);
  EXPECT_FALSE(info.new_node);
  EXPECT_TRUE(info.predictable);
  EXPECT_NE(tree.current(), tree.root());
  EXPECT_EQ(tree.node(tree.current()).block, A);
}

TEST(PrefetchTree, PredictableMatchesChildPresence) {
  PrefetchTree tree;
  feed(tree, {A, A, B});  // creates a, then a->b
  // at root; A is a child of root, B is not... feed ends after creating
  // a->b so parse reset to root.
  EXPECT_TRUE(tree.access(A).predictable);
  // now at node a; b is a child of a.
  EXPECT_TRUE(tree.access(B).predictable);
}

TEST(PrefetchTree, LastVisitedChildTracking) {
  PrefetchTree tree;
  // Build children a and b under root.
  feed(tree, {A, B});
  // Access A from root: root's lvc exists (b created last), not followed.
  auto info = tree.access(A);
  EXPECT_TRUE(info.had_lvc);
  EXPECT_FALSE(info.followed_lvc);
  // Back to root via unseen continuation.
  tree.access(C);  // creates c under a, reset to root
  // Root's lvc is now a; access A again -> followed.
  info = tree.access(A);
  EXPECT_TRUE(info.had_lvc);
  EXPECT_TRUE(info.followed_lvc);
  EXPECT_EQ(tree.last_visited_child(tree.root()),
            tree.find_child(tree.root(), A));
}

TEST(PrefetchTree, ChildrenSortedByDescendingWeight) {
  PrefetchTree tree;
  // Root children a, b, c; a revisited most, then b.
  feed(tree, {A, B, C, A, A, B, A, A, B});
  const auto children = tree.children(tree.root());
  ASSERT_GE(children.size(), 2u);
  for (std::size_t i = 1; i < children.size(); ++i) {
    EXPECT_GE(tree.node(children[i - 1]).weight,
              tree.node(children[i]).weight);
  }
  EXPECT_EQ(tree.node(children[0]).block, A);
}

TEST(PrefetchTree, ChildWeightNeverExceedsParent) {
  PrefetchTree tree;
  const BlockId blocks[] = {1, 2, 3, 1, 2, 1, 3, 2, 1, 1, 2, 3, 3, 2, 1};
  for (int round = 0; round < 50; ++round) {
    for (const BlockId b : blocks) {
      tree.access(b + static_cast<BlockId>(round % 3));
    }
  }
  // Walk every node and check the invariant.
  std::vector<NodeId> stack = {tree.root()};
  while (!stack.empty()) {
    const NodeId n = stack.back();
    stack.pop_back();
    std::uint64_t child_sum = 0;
    for (const NodeId c : tree.children(n)) {
      EXPECT_LE(tree.node(c).weight, tree.node(n).weight);
      child_sum += tree.node(c).weight;
      stack.push_back(c);
    }
    EXPECT_LE(child_sum, tree.node(n).weight);
  }
}

TEST(PrefetchTree, BoundedTreeRespectsNodeBudget) {
  TreeConfig config;
  config.max_nodes = 64;
  PrefetchTree tree(config);
  util::Xoshiro256 rng(5);
  for (int i = 0; i < 20'000; ++i) {
    tree.access(rng.below(500));
    ASSERT_LE(tree.node_count(), 65u);  // budget (+1 transient tolerance)
  }
}

TEST(PrefetchTree, BoundedTreeKeepsHotPaths) {
  TreeConfig config;
  config.max_nodes = 32;
  PrefetchTree tree(config);
  // Hammer one pattern, sprinkle one-off noise.
  util::Xoshiro256 rng(9);
  for (int round = 0; round < 2'000; ++round) {
    for (const BlockId b : {10u, 11u, 12u}) {
      tree.access(b);
    }
    tree.access(100000 + rng.below(100000));  // cold noise
  }
  // The hot first-order context must have survived eviction.
  EXPECT_NE(tree.find_child(tree.root(), 10), kNoNode);
}

TEST(PrefetchTree, UnboundedTreeGrowsWithNovelty) {
  PrefetchTree tree;
  for (BlockId b = 0; b < 1'000; ++b) {
    tree.access(b);
  }
  EXPECT_EQ(tree.node_count(), 1'001u);  // root + one per novel block
  EXPECT_EQ(tree.approx_memory_bytes(), 1'001u * 40u);
}

TEST(PrefetchTree, MemoryAccountingUses40BytesPerNode) {
  PrefetchTree tree;
  tree.access(1);
  tree.access(2);
  EXPECT_EQ(tree.approx_memory_bytes(), tree.node_count() * 40);
}

}  // namespace
}  // namespace pfp::core::tree
