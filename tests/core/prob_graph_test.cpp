#include "core/policy/prob_graph.hpp"

#include <gtest/gtest.h>

#include "core/policy/factory.hpp"
#include "policy_harness.hpp"
#include "sim/simulator.hpp"
#include "util/prng.hpp"

namespace pfp::core::policy {
namespace {

using testing::Harness;

Context& drive(ProbGraph& policy, Harness& h,
               std::initializer_list<BlockId> blocks) {
  for (const BlockId b : blocks) {
    policy.on_access(b, AccessOutcome::kMiss, h.ctx);
  }
  return h.ctx;
}

TEST(ProbGraph, LearnsTransitionProbabilities) {
  Harness h(64);
  ProbGraph policy;
  drive(policy, h, {1u, 2u, 1u, 2u, 1u, 3u});
  // From 1: saw 2 twice and 3 once.
  EXPECT_NEAR(policy.successor_probability(1, 2), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(policy.successor_probability(1, 3), 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(policy.successor_probability(2, 3), 0.0);
  EXPECT_DOUBLE_EQ(policy.successor_probability(99, 1), 0.0);
}

TEST(ProbGraph, PrefetchesLikelySuccessor) {
  Harness h(64);
  ProbGraph policy;
  drive(policy, h, {1u, 2u, 1u, 2u, 1u});
  // After the final access of 1, successor 2 has p = 1.0 >= cutoff and
  // must have been prefetched.
  EXPECT_TRUE(h.cache.prefetch().contains(2));
  EXPECT_GT(h.metrics.prefetches_issued, 0u);
}

TEST(ProbGraph, RespectsProbabilityCutoff) {
  ProbGraphConfig config;
  config.min_probability = 0.9;
  Harness h(64);
  ProbGraph policy(config);
  // Train 1 -> {2,3} at 50% each (drop anything prefetched while the
  // early estimate was still 100%), then check the final access issues
  // nothing: both successors are below the 0.9 cutoff.
  drive(policy, h, {1u, 2u, 1u, 3u});
  for (const BlockId b : {2u, 3u}) {
    if (h.cache.prefetch().contains(b)) {
      h.cache.prefetch().remove(b);
    }
  }
  policy.on_access(1, AccessOutcome::kMiss, h.ctx);
  EXPECT_FALSE(h.cache.prefetch().contains(2));
  EXPECT_FALSE(h.cache.prefetch().contains(3));
}

TEST(ProbGraph, CapsSuccessorsPerBlock) {
  ProbGraphConfig config;
  config.max_successors = 2;
  Harness h(64);
  ProbGraph policy(config);
  // Four different successors of block 1; only 2 can be retained.
  drive(policy, h, {1u, 10u, 1u, 11u, 1u, 12u, 1u, 13u});
  int known = 0;
  for (const BlockId s : {10u, 11u, 12u, 13u}) {
    if (policy.successor_probability(1, s) > 0.0) {
      ++known;
    }
  }
  EXPECT_LE(known, 2);
  // Tracked = blocks with observed departures: 1, 10, 11, 12 (13 is the
  // final access and never departs).
  EXPECT_EQ(policy.tracked_blocks(), 4u);
}

TEST(ProbGraph, FactoryIntegration) {
  PolicySpec spec;
  spec.kind = PolicyKind::kProbGraph;
  const auto p = make_prefetcher(spec);
  EXPECT_EQ(p->name(), "prob-graph");
  EXPECT_EQ(kind_from_name("prob-graph"), PolicyKind::kProbGraph);
}

TEST(ProbGraph, BeatsNothingOnAlternatingPattern) {
  // a-b-a-b...: first-order prediction is perfect.
  trace::Trace t("ab");
  for (int i = 0; i < 2'000; ++i) {
    t.append(i % 2 == 0 ? 100 : 200);
  }
  sim::SimConfig config;
  config.cache_blocks = 4;
  config.policy.kind = PolicyKind::kProbGraph;
  const auto r = sim::simulate(config, t);
  EXPECT_LT(r.metrics.miss_rate(), 0.05);
}

TEST(ProbGraph, LosesToTreeOnInterleavedStreams) {
  // Two deterministic streams interleaved: first-order context confuses
  // them where deeper LZ context does not (after sufficient training).
  trace::Trace t("interleaved");
  util::Xoshiro256 rng(3);
  std::vector<BlockId> s1;
  std::vector<BlockId> s2;
  for (int i = 0; i < 16; ++i) {
    s1.push_back(1'000 + rng.below(10'000));
    s2.push_back(100'000 + rng.below(10'000));
  }
  std::size_t p1 = 0;
  std::size_t p2 = 0;
  for (int i = 0; i < 20'000; ++i) {
    if (rng.bernoulli(0.5)) {
      t.append(s1[p1]);
      p1 = (p1 + 1) % s1.size();
    } else {
      t.append(s2[p2]);
      p2 = (p2 + 1) % s2.size();
    }
  }
  sim::SimConfig config;
  config.cache_blocks = 16;  // smaller than the combined pattern
  config.policy.kind = PolicyKind::kProbGraph;
  const auto graph = sim::simulate(config, t);
  config.policy.kind = PolicyKind::kTree;
  const auto tree = sim::simulate(config, t);
  // Both learn something, but the graph's one-block context cannot
  // separate the streams as well.
  EXPECT_LE(tree.metrics.miss_rate(), graph.metrics.miss_rate() + 0.02);
}

}  // namespace
}  // namespace pfp::core::policy
