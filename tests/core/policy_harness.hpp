// Shared fixture for policy-layer unit tests: a buffer cache plus all the
// reference state a Context carries.
#pragma once

#include "core/policy/context.hpp"

namespace pfp::core::policy::testing {

struct Harness {
  explicit Harness(std::size_t blocks)
      : cache(blocks),
        disks(::pfp::cache::DiskConfig{}),
        ctx{cache,  disks,     timing, estimators, stack,
            metrics, /*period=*/0, /*now_ms=*/0.0, {}} {}

  cache::BufferCache cache;
  ::pfp::cache::DiskArray disks;
  costben::TimingParams timing;
  costben::Estimators estimators;
  ::pfp::cache::StackDistanceEstimator stack;
  PolicyMetrics metrics;
  Context ctx;

  /// Admits a demand block, reclaiming nothing (caller ensures room).
  void demand(BlockId block) { cache.admit_demand(block); }

  /// Admits a prefetch entry with the given parameters.
  void prefetch(BlockId block, double cost, bool obl = false) {
    ::pfp::cache::PrefetchEntry e;
    e.block = block;
    e.probability = 0.5;
    e.depth = 1;
    e.eject_cost = cost;
    e.obl = obl;
    cache.admit_prefetch(e);
  }
};

}  // namespace pfp::core::policy::testing
