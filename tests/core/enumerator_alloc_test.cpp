// Steady-state allocation discipline of the candidate enumerator: after a
// warm-up, thousands of enumerations — verbatim hits, rescales and full
// re-walks alike — must perform zero heap allocations, because the policy
// hot path runs one enumeration per simulated access.
//
// The whole test binary's scalar operator new/delete are replaced with
// counting forwards to malloc/free; array and aligned forms fall through
// to these, so the counter sees every ordinary container allocation.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "core/tree/enumerator.hpp"
#include "core/tree/prefetch_tree.hpp"
#include "util/audit.hpp"
#include "util/prng.hpp"

namespace {
std::atomic<std::uint64_t> g_allocation_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  if (size == 0) {
    size = 1;
  }
  if (void* p = std::malloc(size)) {
    return p;
  }
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace pfp::core::tree {
namespace {

TEST(EnumeratorAllocations, SteadyStateEnumerationIsAllocationFree) {
#if SIM_AUDIT >= 2
  GTEST_SKIP() << "SIM_AUDIT >= 2 re-walks every cache hit into audit "
                  "scratch buffers; allocation accounting does not apply";
#else
  PrefetchTree tree;
  util::Xoshiro256 rng(23);
  for (int i = 0; i < 20'000; ++i) {
    tree.access(rng.below(64));
  }

  EnumeratorLimits wide;
  wide.max_depth = 8;
  wide.min_probability = 0.0001;
  wide.max_candidates = 64;
  EnumeratorLimits narrow = wide;
  narrow.min_probability = 0.01;  // same max_candidates: one dedup table

  CandidateEnumerator enumerator;
  const auto probes = tree.children(tree.root());
  ASSERT_FALSE(probes.empty());

  // Warm-up: size the frontier heap, dedup table and hot output buffer,
  // and probe each measured slot twice under its measured limits so the
  // lazy header-then-promote fill (and its one items allocation) happens
  // here, not in the measured loop.
  for (int round = 0; round < 4; ++round) {
    (void)enumerator.enumerate(tree, tree.root(), wide);
  }
  for (int round = 0; round < 4; ++round) {
    (void)enumerator.enumerate(tree, tree.root(), narrow);
  }
  for (int round = 0; round < 2; ++round) {
    for (const NodeId child : probes) {
      (void)enumerator.enumerate(tree, child, wide);
    }
  }

  const std::uint64_t before =
      g_allocation_count.load(std::memory_order_relaxed);
  for (int i = 0; i < 10'000; ++i) {
    // Alternating limits defeat the cache key, so half of these are full
    // re-walks into warm buffers; the probe sweep serves verbatim hits.
    (void)enumerator.enumerate(tree, tree.root(), (i & 1) ? wide : narrow);
    (void)enumerator.enumerate(
        tree, probes[static_cast<std::size_t>(i) % probes.size()], wide);
  }
  const std::uint64_t after =
      g_allocation_count.load(std::memory_order_relaxed);

  EXPECT_EQ(after - before, 0u)
      << "post-warm-up enumerations touched the heap";
  EXPECT_GT(enumerator.cache_stats().full_walks, 100u);
  EXPECT_GT(enumerator.cache_stats().verbatim_hits, 1'000u);
#endif
}

}  // namespace
}  // namespace pfp::core::tree
