// TreeInstrumentedPrefetcher's shared instrumentation: the exact metric
// semantics the paper's Tables 2/3 and Figures 14/16 rely on.
#include <gtest/gtest.h>

#include "core/policy/tree_base.hpp"
#include "policy_harness.hpp"

namespace pfp::core::policy {
namespace {

using testing::Harness;

// Minimal concrete policy: instrumentation only, no prefetching.
class Probe final : public TreeInstrumentedPrefetcher {
 public:
  Probe() : TreeInstrumentedPrefetcher(tree::TreeConfig{}) {}
  std::string name() const override { return "probe"; }
  void on_access(BlockId block, AccessOutcome outcome,
                 Context& ctx) override {
    observe_access(block, outcome, ctx);
  }
  void reclaim_for_demand(Context& ctx) override {
    ctx.cache.demand().evict_lru();
  }
};

TEST(TreeBase, PredictableCountsChildMatches) {
  Harness h(16);
  Probe probe;
  // First visit: nothing predictable.
  probe.on_access(1, AccessOutcome::kMiss, h.ctx);
  EXPECT_EQ(h.metrics.predictable, 0u);
  // Second visit of 1 from the root: predictable.
  probe.on_access(1, AccessOutcome::kMiss, h.ctx);
  EXPECT_EQ(h.metrics.predictable, 1u);
}

TEST(TreeBase, PredictableUncachedNeedsMissOutcome) {
  Harness h(16);
  Probe probe;
  probe.on_access(1, AccessOutcome::kMiss, h.ctx);
  // Predictable + demand hit: cached, so not counted as uncached.
  probe.on_access(1, AccessOutcome::kDemandHit, h.ctx);
  EXPECT_EQ(h.metrics.predictable, 1u);
  EXPECT_EQ(h.metrics.predictable_uncached, 0u);
  // Reset parse to root via new block, then revisit 1 as a miss.
  probe.on_access(99, AccessOutcome::kMiss, h.ctx);   // at node 1: new
  probe.on_access(1, AccessOutcome::kMiss, h.ctx);    // from root: match
  EXPECT_EQ(h.metrics.predictable, 2u);
  EXPECT_EQ(h.metrics.predictable_uncached, 1u);
}

TEST(TreeBase, LvcCountersFollowTable3Semantics) {
  Harness h(16);
  Probe probe;
  // Build root children 1 and 2 (each access from root).
  probe.on_access(1, AccessOutcome::kMiss, h.ctx);
  probe.on_access(2, AccessOutcome::kMiss, h.ctx);
  EXPECT_EQ(h.metrics.lvc_opportunities, 1u);  // 2nd access saw lvc=1
  EXPECT_EQ(h.metrics.lvc_followed, 0u);
  // Access 2 again from root: lvc is now 2 -> followed.
  probe.on_access(2, AccessOutcome::kMiss, h.ctx);
  EXPECT_EQ(h.metrics.lvc_opportunities, 2u);
  EXPECT_EQ(h.metrics.lvc_followed, 1u);
}

TEST(TreeBase, LvcCachedChecksResidency) {
  Harness h(16);
  Probe probe;
  // Parse: (1)(1,2): after the second "1" the parse sits at node 1 whose
  // lvc will exist once child 2 is created.
  probe.on_access(1, AccessOutcome::kMiss, h.ctx);
  probe.on_access(1, AccessOutcome::kMiss, h.ctx);
  probe.on_access(2, AccessOutcome::kMiss, h.ctx);  // creates 1->2, reset
  const auto checks_before = h.metrics.lvc_checks;
  // Revisit 1: parse lands at node 1, which has lvc (block 2).  Block 2
  // is not cached -> lvc_checks grows, lvc_cached does not.
  probe.on_access(1, AccessOutcome::kMiss, h.ctx);
  EXPECT_EQ(h.metrics.lvc_checks, checks_before + 1);
  EXPECT_EQ(h.metrics.lvc_cached, 0u);
  // Cache block 2, then steer node 1's lvc back to its 2-child (creating
  // any node overwrites the parent's lvc, so re-traverse the 1->2 edge)
  // and land on node 1 once more.
  h.demand(2);
  probe.on_access(2, AccessOutcome::kDemandHit, h.ctx);  // 1 -> 2-child
  probe.on_access(7, AccessOutcome::kMiss, h.ctx);       // reset to root
  const auto cached_before = h.metrics.lvc_cached;
  probe.on_access(1, AccessOutcome::kMiss, h.ctx);       // at node 1
  EXPECT_EQ(h.metrics.lvc_cached, cached_before + 1);
}

TEST(TreeBase, TreeSizeMetricsTrackLiveTree) {
  Harness h(16);
  Probe probe;
  probe.on_access(1, AccessOutcome::kMiss, h.ctx);
  probe.on_access(2, AccessOutcome::kMiss, h.ctx);
  EXPECT_EQ(h.metrics.tree_nodes, 3u);  // root + 2
  EXPECT_EQ(h.metrics.tree_bytes, 3u * 40u);
}

}  // namespace
}  // namespace pfp::core::policy
