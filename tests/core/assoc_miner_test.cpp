#include "core/assoc/association_miner.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <vector>

namespace pfp::core::assoc {
namespace {

using costben::PredictedBlock;

std::vector<PredictedBlock> predict(const AssociationMiner& miner,
                                    trace::BlockId block,
                                    AssocPredictLimits limits = {}) {
  std::vector<PredictedBlock> out;
  miner.predict_into(block, limits, out);
  return out;
}

AssocConfig small_config() {
  AssocConfig config;
  config.window = 16;
  config.lookahead = 4;
  return config;
}

TEST(AssociationMiner, EmptyMinerPredictsNothing) {
  AssociationMiner miner(small_config());
  EXPECT_TRUE(predict(miner, 7).empty());
  miner.observe(7);
  EXPECT_TRUE(predict(miner, 7).empty());  // window not yet closed
  EXPECT_EQ(miner.row_count(), 0u);
}

TEST(AssociationMiner, MinesForwardCoOccurrence) {
  AssociationMiner miner(small_config());
  // 100 is always followed by 200 within the lookahead, across three
  // repetitions with filler in between.
  const trace::BlockId seq[] = {100, 200, 1, 2, 3,   100, 200, 4, 5,
                                6,   100, 200, 7, 8, 9,   10,  11};
  for (const trace::BlockId b : seq) {
    miner.observe(b);
  }
  AssocPredictLimits limits;
  limits.min_support = 2;
  const auto out = predict(miner, 100, limits);
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out[0].block, 200u);
  EXPECT_DOUBLE_EQ(out[0].probability, 1.0);  // in every closed window
  EXPECT_EQ(out[0].depth, 1u);                // gap 1, immediately after
  EXPECT_DOUBLE_EQ(out[0].parent_probability, 1.0);  // depth-1 convention
}

TEST(AssociationMiner, SurvivesInterleavedTraffic) {
  AssociationMiner miner(small_config());
  // The pair (100 -> 200) always has one unrelated access between them —
  // a first-order model (prob-graph, delta-Markov) cannot see it, the
  // windowed miner can.
  trace::BlockId noise = 1000;
  for (int rep = 0; rep < 6; ++rep) {
    miner.observe(100);
    miner.observe(noise++);
    miner.observe(200);
    miner.observe(noise++);
    miner.observe(noise++);
  }
  AssocPredictLimits limits;
  limits.min_support = 2;
  limits.min_probability = 0.5;
  const auto out = predict(miner, 100, limits);
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out[0].block, 200u);
  EXPECT_EQ(out[0].depth, 2u);  // min gap 2
  // Deeper-than-one parentless candidates carry p as their own parent.
  EXPECT_DOUBLE_EQ(out[0].parent_probability, out[0].probability);
}

TEST(AssociationMiner, MinSupportFiltersSporadicNoise) {
  AssociationMiner miner(small_config());
  // (100 -> 200) co-occurs three times; (100 -> 300) only once.
  const trace::BlockId seq[] = {100, 200, 1,   100, 200, 2,
                                100, 200, 300, 3,   4,   5, 6, 7};
  for (const trace::BlockId b : seq) {
    miner.observe(b);
  }
  AssocPredictLimits strict;
  strict.min_support = 2;
  strict.min_probability = 0.0;
  const auto out = predict(miner, 100, strict);
  for (const PredictedBlock& c : out) {
    EXPECT_NE(c.block, 300u);
  }
  AssocPredictLimits lax;
  lax.min_support = 1;
  lax.min_probability = 0.0;
  const auto all = predict(miner, 100, lax);
  bool saw_300 = false;
  for (const PredictedBlock& c : all) {
    saw_300 = saw_300 || c.block == 300u;
  }
  EXPECT_TRUE(saw_300);
}

TEST(AssociationMiner, CountsADistinctPartnerOncePerWindow) {
  AssociationMiner miner(small_config());
  // 200 appears twice inside 100's forward window: support must rise by
  // one per window, keeping probability a frequency (<= 1).
  for (int rep = 0; rep < 5; ++rep) {
    miner.observe(100);
    miner.observe(200);
    miner.observe(200);
    miner.observe(300 + static_cast<trace::BlockId>(rep));
    miner.observe(400 + static_cast<trace::BlockId>(rep));
  }
  AssocPredictLimits limits;
  limits.min_support = 1;
  limits.min_probability = 0.0;
  const auto out = predict(miner, 100, limits);
  ASSERT_FALSE(out.empty());
  for (const PredictedBlock& c : out) {
    EXPECT_LE(c.probability, 1.0);
  }
  miner.audit();
}

TEST(AssociationMiner, RowCountIsLruBounded) {
  AssocConfig config = small_config();
  config.max_rows = 8;
  AssociationMiner miner(config);
  for (trace::BlockId b = 0; b < 500; ++b) {
    miner.observe(b * 17);  // all distinct sources
  }
  EXPECT_LE(miner.row_count(), 8u);
  miner.audit();
}

TEST(AssociationMiner, AgingHalvesSupportsAndOccurrences) {
  AssocConfig config = small_config();
  config.age_threshold = 8;
  AssociationMiner miner(config);
  for (int rep = 0; rep < 50; ++rep) {
    miner.observe(100);
    miner.observe(200);
    miner.observe(1);
    miner.observe(2);
    miner.observe(3);
  }
  // Many agings later the association must still predict with full
  // confidence: supports and occurrences halve together.
  AssocPredictLimits limits;
  limits.min_support = 1;
  const auto out = predict(miner, 100, limits);
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out[0].block, 200u);
  EXPECT_DOUBLE_EQ(out[0].probability, 1.0);
  miner.audit();
}

TEST(AssociationMiner, MemoryAccountingIsNonTrivial) {
  AssociationMiner miner(small_config());
  for (trace::BlockId b = 0; b < 50; ++b) {
    miner.observe(b % 10);
  }
  EXPECT_GT(miner.actual_memory_bytes(), 0u);
}

TEST(AssociationMinerSerialize, RoundTripPreservesPredictions) {
  AssociationMiner miner(small_config());
  const trace::BlockId seq[] = {100, 200, 1, 2, 3, 100, 200, 4,  5,
                                6,   100, 200, 7, 8, 9,  10, 11, 12};
  for (const trace::BlockId b : seq) {
    miner.observe(b);
  }
  std::stringstream stream;
  miner.serialize(stream);
  AssociationMiner restored =
      AssociationMiner::deserialize(stream, miner.config());
  EXPECT_EQ(restored.row_count(), miner.row_count());
  EXPECT_EQ(restored.association_count(), miner.association_count());
  restored.audit();

  AssocPredictLimits limits;
  limits.min_support = 1;
  limits.min_probability = 0.0;
  for (const trace::BlockId source : {100u, 200u, 1u, 7u}) {
    const auto a = predict(miner, source, limits);
    const auto b = predict(restored, source, limits);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].block, b[i].block);
      EXPECT_EQ(a[i].probability, b[i].probability);
      EXPECT_EQ(a[i].parent_probability, b[i].parent_probability);
      EXPECT_EQ(a[i].depth, b[i].depth);
    }
  }
}

TEST(AssociationMinerSerialize, RoundTripIsByteStable) {
  AssociationMiner miner(small_config());
  for (trace::BlockId b = 0; b < 200; ++b) {
    miner.observe(b % 23);
  }
  std::stringstream first;
  miner.serialize(first);
  AssociationMiner restored =
      AssociationMiner::deserialize(first, miner.config());
  std::stringstream second;
  restored.serialize(second);
  EXPECT_EQ(first.str(), second.str());
}

TEST(AssociationMinerSerialize, RejectsBadMagic) {
  std::stringstream stream("NOPEnope");
  EXPECT_THROW(AssociationMiner::deserialize(stream, AssocConfig{}),
               std::runtime_error);
}

TEST(AssociationMinerSerialize, RejectsTruncatedStream) {
  AssociationMiner miner(small_config());
  for (trace::BlockId b = 0; b < 60; ++b) {
    miner.observe(b % 7);
  }
  std::stringstream stream;
  miner.serialize(stream);
  const std::string bytes = stream.str();
  for (std::size_t cut = 4; cut < bytes.size(); cut += 9) {
    std::stringstream truncated(bytes.substr(0, cut));
    EXPECT_THROW(AssociationMiner::deserialize(truncated, miner.config()),
                 std::runtime_error);
  }
}

TEST(AssociationMinerSerialize, RejectsRowsBeyondTheConfiguredBounds) {
  AssociationMiner miner(small_config());
  for (trace::BlockId b = 0; b < 100; ++b) {
    miner.observe(b);
  }
  std::stringstream stream;
  miner.serialize(stream);
  AssocConfig tiny = small_config();
  tiny.max_rows = 2;
  EXPECT_THROW(AssociationMiner::deserialize(stream, tiny),
               std::runtime_error);
}

TEST(AssociationMinerSerialize, RejectsGapBeyondTheLookahead) {
  AssociationMiner miner(small_config());
  const trace::BlockId seq[] = {100, 200, 1, 2, 3, 100, 200, 4, 5, 6, 7, 8};
  for (const trace::BlockId b : seq) {
    miner.observe(b);
  }
  std::stringstream stream;
  miner.serialize(stream);
  AssocConfig narrow = small_config();
  narrow.lookahead = 1;  // window still exceeds it
  // Mined gaps of 2+ are invalid under the narrower config.
  EXPECT_THROW(AssociationMiner::deserialize(stream, narrow),
               std::runtime_error);
}

}  // namespace
}  // namespace pfp::core::assoc
