// Behavioral tests for the policies, driven through the simulator on
// small crafted traces.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "core/policy/factory.hpp"
#include "sim/simulator.hpp"
#include "trace/trace.hpp"
#include "util/prng.hpp"

namespace pfp::core::policy {
namespace {

using sim::SimConfig;
using sim::simulate;
using trace::BlockId;
using trace::Trace;

Trace sequential_trace(std::size_t n) {
  Trace t("seq");
  // Disjoint sequential runs of 50 blocks (fresh addresses each run).
  for (std::size_t i = 0; i < n; ++i) {
    const BlockId base = static_cast<BlockId>(i / 50) * 1'000;
    t.append(base + i % 50);
  }
  return t;
}

Trace repeated_scattered_trace(int rounds) {
  // A fixed non-sequential pattern repeated over and over: the LZ tree
  // must learn it; one-block lookahead must not.
  Trace t("pattern");
  util::SplitMix64 sm(1234);
  std::vector<BlockId> pattern;
  for (int i = 0; i < 40; ++i) {
    pattern.push_back(sm.next() >> 20);
  }
  for (int r = 0; r < rounds; ++r) {
    for (const BlockId b : pattern) {
      t.append(b);
    }
  }
  return t;
}

SimConfig config_for(PolicyKind kind, std::size_t blocks = 64) {
  SimConfig c;
  c.cache_blocks = blocks;
  c.policy.kind = kind;
  return c;
}

TEST(Policies, FactoryMakesEveryKind) {
  // all_policy_kinds() is the registry: a new kind failing to construct
  // (or missing from the registry) must fail here, not in a sweep.
  for (const PolicyKind kind : all_policy_kinds()) {
    PolicySpec spec;
    spec.kind = kind;
    const auto p = make_prefetcher(spec);
    ASSERT_NE(p, nullptr) << kind_name(kind);
    EXPECT_FALSE(p->name().empty()) << kind_name(kind);
  }
}

TEST(Policies, KindNamesRoundTrip) {
  std::set<std::string> names;
  for (const PolicyKind kind : all_policy_kinds()) {
    const std::string name = kind_name(kind);
    EXPECT_EQ(kind_from_name(name), kind);
    EXPECT_TRUE(names.insert(name).second) << "duplicate name " << name;
  }
}

TEST(Policies, MalformedKindNamesNameTheOffender) {
  for (const char* bad : {"nope", "", "Tree", "tree ", "markov2"}) {
    try {
      kind_from_name(bad);
      FAIL() << "accepted '" << bad << "'";
    } catch (const std::invalid_argument& e) {
      EXPECT_EQ(std::string(e.what()),
                std::string("unknown policy '") + bad + "'");
    }
  }
}

TEST(Policies, HeadlineListMatchesPaperOrder) {
  const auto& list = headline_policies();
  ASSERT_EQ(list.size(), 4u);
  EXPECT_EQ(list[0], PolicyKind::kNoPrefetch);
  EXPECT_EQ(list[3], PolicyKind::kTreeNextLimit);
}

TEST(Policies, ParametricNamesIncludeParameter) {
  PolicySpec spec;
  spec.kind = PolicyKind::kTreeThreshold;
  spec.threshold = 0.125;
  EXPECT_EQ(make_prefetcher(spec)->name(), "tree-threshold(0.125)");
  spec.kind = PolicyKind::kTreeChildren;
  spec.children = 7;
  EXPECT_EQ(make_prefetcher(spec)->name(), "tree-children(7)");
}

TEST(Policies, NoPrefetchNeverPrefetches) {
  const auto r =
      simulate(config_for(PolicyKind::kNoPrefetch), sequential_trace(5'000));
  EXPECT_EQ(r.metrics.policy.prefetches_issued, 0u);
  EXPECT_EQ(r.metrics.prefetch_hits, 0u);
}

TEST(Policies, NextLimitStreamsSequentialRuns) {
  const Trace t = sequential_trace(5'000);
  const auto np = simulate(config_for(PolicyKind::kNoPrefetch), t);
  const auto nl = simulate(config_for(PolicyKind::kNextLimit), t);
  // Fresh 50-block runs: no-prefetch misses everything; OBL misses only
  // the first block of each run.
  EXPECT_GT(np.metrics.miss_rate(), 0.9);
  EXPECT_LT(nl.metrics.miss_rate(), 0.1);
  EXPECT_GT(nl.metrics.prefetch_hits, 0u);
}

TEST(Policies, NextLimitRespectsQuota) {
  const auto r =
      simulate(config_for(PolicyKind::kNextLimit), sequential_trace(5'000));
  // 10% of 64 blocks = 6; the OBL share may never have exceeded it, and
  // with streaming each prefetch is consumed next access anyway.
  EXPECT_LE(r.metrics.policy.obl_prefetches_issued,
            r.metrics.policy.prefetches_issued);
}

TEST(Policies, NextLimitUselessOnScatteredPattern) {
  const Trace t = repeated_scattered_trace(100);
  const auto np = simulate(config_for(PolicyKind::kNoPrefetch, 16), t);
  const auto nl = simulate(config_for(PolicyKind::kNextLimit, 16), t);
  // Scattered ids: next-block prefetches never hit.
  EXPECT_EQ(nl.metrics.prefetch_hits, 0u);
  EXPECT_NEAR(nl.metrics.miss_rate(), np.metrics.miss_rate(), 0.05);
}

TEST(Policies, TreeLearnsScatteredPattern) {
  const Trace t = repeated_scattered_trace(100);
  // Cache smaller than the 40-block pattern: plain LRU always misses.
  const auto np = simulate(config_for(PolicyKind::kNoPrefetch, 16), t);
  const auto tree = simulate(config_for(PolicyKind::kTree, 16), t);
  EXPECT_GT(np.metrics.miss_rate(), 0.95);
  EXPECT_LT(tree.metrics.miss_rate(), np.metrics.miss_rate() - 0.2)
      << "tree must exploit the learned pattern";
  EXPECT_GT(tree.metrics.prefetch_hits, 0u);
}

TEST(Policies, TreePredictionAccuracyOnPattern) {
  const Trace t = repeated_scattered_trace(100);
  const auto tree = simulate(config_for(PolicyKind::kTree, 16), t);
  // After warm-up, nearly every access matches a tree child.
  EXPECT_GT(tree.metrics.prediction_accuracy(), 0.8);
}

TEST(Policies, TreeNextLimitCombinesBothStrengths) {
  const Trace seq = sequential_trace(5'000);
  const Trace pat = repeated_scattered_trace(100);
  const auto on_seq = simulate(config_for(PolicyKind::kTreeNextLimit), seq);
  const auto on_pat =
      simulate(config_for(PolicyKind::kTreeNextLimit, 16), pat);
  EXPECT_LT(on_seq.metrics.miss_rate(), 0.12);
  EXPECT_LT(on_pat.metrics.miss_rate(), 0.75);
}

TEST(Policies, PerfectSelectorBeatsTreeOnNoisyPattern) {
  // Add noise so plain tree mispredicts sometimes.
  Trace t("noisy");
  util::Xoshiro256 rng(7);
  util::SplitMix64 sm(99);
  std::vector<BlockId> pattern;
  for (int i = 0; i < 30; ++i) {
    pattern.push_back(sm.next() >> 20);
  }
  for (int r = 0; r < 150; ++r) {
    for (const BlockId b : pattern) {
      if (rng.bernoulli(0.1)) {
        t.append(rng.below(1 << 20));  // noise
      }
      t.append(b);
    }
  }
  const auto tree = simulate(config_for(PolicyKind::kTree, 16), t);
  const auto perfect =
      simulate(config_for(PolicyKind::kPerfectSelector, 16), t);
  EXPECT_LE(perfect.metrics.miss_rate(), tree.metrics.miss_rate() + 1e-9);
}

TEST(Policies, PerfectSelectorNearZeroMissOnCleanPattern) {
  const Trace t = repeated_scattered_trace(200);
  const auto r = simulate(config_for(PolicyKind::kPerfectSelector, 16), t);
  // After warm-up almost every access is predictable and prefetched just
  // in time; residual misses come from LZ substring boundaries that land
  // on root contexts without the needed child yet.
  EXPECT_LT(r.metrics.miss_rate(), 0.15);
}

TEST(Policies, TreeThresholdPrefetchesLikelyChildren) {
  PolicySpec spec;
  spec.kind = PolicyKind::kTreeThreshold;
  spec.threshold = 0.2;
  SimConfig c;
  c.cache_blocks = 16;
  c.policy = spec;
  const auto r = simulate(c, repeated_scattered_trace(100));
  EXPECT_GT(r.metrics.policy.prefetches_issued, 0u);
  EXPECT_GT(r.metrics.prefetch_hits, 0u);
  EXPECT_LT(r.metrics.miss_rate(), 0.8);
}

TEST(Policies, TreeChildrenPrefetchesTopK) {
  PolicySpec spec;
  spec.kind = PolicyKind::kTreeChildren;
  spec.children = 1;
  SimConfig c;
  c.cache_blocks = 16;
  c.policy = spec;
  const auto r = simulate(c, repeated_scattered_trace(100));
  EXPECT_GT(r.metrics.policy.prefetches_issued, 0u);
  EXPECT_LT(r.metrics.miss_rate(), 0.8);
}

TEST(Policies, TreeLvcMatchesTreeOnCleanPattern) {
  // Section 9.6's finding: tree-lvc ~ tree (lvc blocks mostly cached).
  const Trace t = repeated_scattered_trace(150);
  const auto tree = simulate(config_for(PolicyKind::kTree, 32), t);
  const auto lvc = simulate(config_for(PolicyKind::kTreeLvc, 32), t);
  EXPECT_NEAR(lvc.metrics.miss_rate(), tree.metrics.miss_rate(), 0.1);
}

TEST(Policies, TreeRespectsNodeBudget) {
  PolicySpec spec;
  spec.kind = PolicyKind::kTree;
  spec.tree.tree.max_nodes = 128;
  SimConfig c;
  c.cache_blocks = 64;
  c.policy = spec;
  const auto r = simulate(c, repeated_scattered_trace(200));
  EXPECT_LE(r.metrics.policy.tree_nodes, 129u);
  EXPECT_LE(r.metrics.policy.tree_bytes, 129u * 40u);
}

TEST(Policies, MetricsCountersAreConsistent) {
  const auto r = simulate(config_for(PolicyKind::kTreeNextLimit, 32),
                          repeated_scattered_trace(100));
  const auto& m = r.metrics;
  EXPECT_EQ(m.accesses, m.demand_hits + m.prefetch_hits + m.misses);
  EXPECT_EQ(m.policy.prefetches_issued,
            m.policy.obl_prefetches_issued + m.policy.tree_prefetches_issued);
  EXPECT_LE(m.prefetch_hits, m.policy.prefetches_issued);
  EXPECT_LE(m.policy.candidates_already_cached, m.policy.candidates_chosen);
  EXPECT_LE(m.policy.predictable, m.accesses);
  EXPECT_LE(m.policy.lvc_followed, m.policy.lvc_opportunities);
  EXPECT_LE(m.policy.lvc_cached, m.policy.lvc_checks);
}

}  // namespace
}  // namespace pfp::core::policy
