// Parameterized property sweeps over the Section 5/6 equations: bounds
// and monotonicity that must hold for any (T_cpu, s) operating point.
#include <gtest/gtest.h>

#include <tuple>

#include "core/costben/equations.hpp"

namespace pfp::core::costben {
namespace {

using Param = std::tuple<double, double>;  // (t_cpu, s)

class EquationSweep : public ::testing::TestWithParam<Param> {
 protected:
  TimingParams timing() const {
    TimingParams t;
    t.t_cpu = std::get<0>(GetParam());
    return t;
  }
  double s() const { return std::get<1>(GetParam()); }
};

TEST_P(EquationSweep, StallIsBoundedByDiskTime) {
  const auto t = timing();
  for (std::uint32_t d = 0; d <= 64; ++d) {
    const double stall = t_stall(t, s(), d);
    EXPECT_GE(stall, 0.0) << "d=" << d;
    EXPECT_LE(stall, t.t_disk + 1e-12) << "d=" << d;
  }
}

TEST_P(EquationSweep, StallIsNonIncreasingInDepth) {
  const auto t = timing();
  double last = t_stall(t, s(), 0);
  for (std::uint32_t d = 1; d <= 64; ++d) {
    const double stall = t_stall(t, s(), d);
    EXPECT_LE(stall, last + 1e-12) << "d=" << d;
    last = stall;
  }
}

TEST_P(EquationSweep, SavedTimeIsBoundedAndMonotone) {
  const auto t = timing();
  double last = delta_t_pf(t, s(), 0);
  EXPECT_DOUBLE_EQ(last, 0.0);
  for (std::uint32_t d = 1; d <= 64; ++d) {
    const double saved = delta_t_pf(t, s(), d);
    EXPECT_GE(saved, last - 1e-12);
    EXPECT_LE(saved, t.t_disk + 1e-12);
    last = saved;
  }
}

TEST_P(EquationSweep, HorizonIsExactlyWhereStallVanishes) {
  const auto t = timing();
  const std::uint32_t horizon = prefetch_horizon(t, s());
  ASSERT_GE(horizon, 1u);
  EXPECT_DOUBLE_EQ(t_stall(t, s(), horizon), 0.0);
  if (horizon > 1) {
    EXPECT_GT(t_stall(t, s(), horizon - 1), 0.0);
  }
}

TEST_P(EquationSweep, BenefitAtDepthOneIsProbabilityScaledSaving) {
  const auto t = timing();
  for (const double p : {0.1, 0.5, 1.0}) {
    EXPECT_NEAR(benefit(t, s(), p, 1.0, 1),
                p * delta_t_pf(t, s(), 1), 1e-12);
  }
}

TEST_P(EquationSweep, OverheadIsBoundedByDriverTime) {
  const auto t = timing();
  for (const double px : {0.2, 0.6, 1.0}) {
    for (double pb = 0.01; pb <= px; pb += 0.05) {
      const double oh = prefetch_overhead(t, pb, px);
      EXPECT_GE(oh, 0.0);
      EXPECT_LE(oh, t.t_driver + 1e-12);
    }
  }
}

TEST_P(EquationSweep, EjectionCostDecreasesWithSlack) {
  // More access periods between ejection and re-prefetch (larger
  // d_b - x) amortize the loss: the cost must fall.
  const auto t = timing();
  double last = cost_eject_prefetch(t, s(), 0.5, 2, 1);
  for (std::uint32_t d = 3; d <= 32; ++d) {
    const double cost = cost_eject_prefetch(t, s(), 0.5, d, 1);
    EXPECT_LT(cost, last);
    last = cost;
  }
}

TEST_P(EquationSweep, EjectionCostScalesWithProbability) {
  const auto t = timing();
  double last = 0.0;
  for (double p = 0.1; p <= 1.0; p += 0.1) {
    const double cost = cost_eject_prefetch(t, s(), p, 4, 1);
    EXPECT_GT(cost, last);
    last = cost;
  }
}

INSTANTIATE_TEST_SUITE_P(
    OperatingPoints, EquationSweep,
    ::testing::Combine(::testing::Values(0.5, 2.0, 15.0, 50.0, 640.0),
                       ::testing::Values(0.0, 1.0, 4.0, 16.0)),
    [](const ::testing::TestParamInfo<Param>& param_info) {
      const double t_cpu = std::get<0>(param_info.param);
      const double s = std::get<1>(param_info.param);
      return "tcpu" + std::to_string(static_cast<int>(t_cpu * 10)) +
             "_s" + std::to_string(static_cast<int>(s));
    });

}  // namespace
}  // namespace pfp::core::costben
