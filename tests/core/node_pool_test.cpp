#include "core/tree/node_pool.hpp"

#include <gtest/gtest.h>

namespace pfp::core::tree {
namespace {

TEST(NodePool, CreateRootAndChildren) {
  NodePool pool;
  const NodeId root = pool.create(kNoNode, 0);
  const NodeId a = pool.create(root, 10);
  const NodeId b = pool.create(root, 20);
  EXPECT_EQ(pool.live_nodes(), 3u);
  EXPECT_EQ(pool.find_child(root, 10), a);
  EXPECT_EQ(pool.find_child(root, 20), b);
  EXPECT_EQ(pool.find_child(root, 30), kNoNode);
  EXPECT_EQ(pool.parent(a), root);
  EXPECT_EQ(pool.weight(a), 1u);
}

TEST(NodePool, DestroyLeafUnlinksEverything) {
  NodePool pool;
  const NodeId root = pool.create(kNoNode, 0);
  const NodeId a = pool.create(root, 10);
  const NodeId b = pool.create(root, 20);
  pool.destroy(a);
  EXPECT_EQ(pool.live_nodes(), 2u);
  EXPECT_EQ(pool.find_child(root, 10), kNoNode);
  EXPECT_EQ(pool.find_child(root, 20), b);
  ASSERT_EQ(pool.children(root).size(), 1u);
  EXPECT_EQ(pool.children(root)[0], b);
  EXPECT_EQ(pool.pos_in_parent(b), 0u);
}

TEST(NodePool, DestroyClearsLvcPointer) {
  NodePool pool;
  const NodeId root = pool.create(kNoNode, 0);
  const NodeId a = pool.create(root, 10);
  pool.set_last_visited_child(root, a);
  pool.destroy(a);
  EXPECT_EQ(pool.last_visited_child(root), kNoNode);
}

TEST(NodePool, SlotsAreRecycled) {
  NodePool pool;
  const NodeId root = pool.create(kNoNode, 0);
  const NodeId a = pool.create(root, 10);
  pool.destroy(a);
  const NodeId c = pool.create(root, 30);
  EXPECT_EQ(c, a);  // reused slot
  EXPECT_EQ(pool.block(c), 30u);
  EXPECT_EQ(pool.weight(c), 1u);
}

TEST(NodePool, IncrementKeepsDescendingOrder) {
  NodePool pool;
  const NodeId root = pool.create(kNoNode, 0);
  const NodeId a = pool.create(root, 1);
  const NodeId b = pool.create(root, 2);
  const NodeId c = pool.create(root, 3);
  // weights: a=1 b=1 c=1, order of creation a b c.
  pool.increment_weight(c);  // c=2 must move to front
  EXPECT_EQ(pool.children(root)[0], c);
  pool.increment_weight(b);  // b=2, after c
  pool.increment_weight(b);  // b=3, front
  EXPECT_EQ(pool.children(root)[0], b);
  EXPECT_EQ(pool.children(root)[1], c);
  EXPECT_EQ(pool.children(root)[2], a);
  // positions consistent
  EXPECT_EQ(pool.pos_in_parent(b), 0u);
  EXPECT_EQ(pool.pos_in_parent(c), 1u);
  EXPECT_EQ(pool.pos_in_parent(a), 2u);
}

TEST(NodePool, IncrementOrderPropertyUnderStress) {
  NodePool pool;
  const NodeId root = pool.create(kNoNode, 0);
  constexpr int kChildren = 40;
  std::vector<NodeId> ids;
  for (int i = 0; i < kChildren; ++i) {
    ids.push_back(pool.create(root, static_cast<BlockId>(i + 1)));
  }
  // Deterministic pseudo-random increment pattern.
  std::uint64_t x = 0x12345678;
  for (int step = 0; step < 10'000; ++step) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    pool.increment_weight(ids[(x >> 33) % kChildren]);
    // invariant: descending weights, consistent positions
    const auto children = pool.children(root);
    for (std::size_t i = 0; i < children.size(); ++i) {
      ASSERT_EQ(pool.pos_in_parent(children[i]), i);
      if (i > 0) {
        ASSERT_GE(pool.weight(children[i - 1]), pool.weight(children[i]));
      }
    }
  }
}

TEST(NodePool, MemoryAccountingFollowsLiveNodes) {
  NodePool pool;
  const NodeId root = pool.create(kNoNode, 0);
  EXPECT_EQ(pool.approx_memory_bytes(), 40u);
  const NodeId a = pool.create(root, 1);
  EXPECT_EQ(pool.approx_memory_bytes(), 80u);
  pool.destroy(a);
  EXPECT_EQ(pool.approx_memory_bytes(), 40u);
}

}  // namespace
}  // namespace pfp::core::tree
