#include <gtest/gtest.h>

#include <sstream>

#include "core/tree/enumerator.hpp"
#include "core/tree/prefetch_tree.hpp"
#include "util/prng.hpp"

namespace pfp::core::tree {
namespace {

PrefetchTree trained_tree(std::uint64_t seed, int accesses) {
  PrefetchTree tree;
  util::Xoshiro256 rng(seed);
  // Mixture of a repeated pattern and noise, to get real structure.
  std::vector<BlockId> pattern;
  for (int i = 0; i < 25; ++i) {
    pattern.push_back(1000 + rng.below(500));
  }
  std::size_t pos = 0;
  for (int i = 0; i < accesses; ++i) {
    if (rng.bernoulli(0.1)) {
      tree.access(rng.below(100'000));
    } else {
      tree.access(pattern[pos]);
      pos = (pos + 1) % pattern.size();
    }
  }
  return tree;
}

void expect_equal_trees(const PrefetchTree& a, const PrefetchTree& b) {
  ASSERT_EQ(a.node_count(), b.node_count());
  // Walk both in lockstep.
  std::vector<std::pair<NodeId, NodeId>> stack = {{a.root(), b.root()}};
  while (!stack.empty()) {
    const auto [na, nb] = stack.back();
    stack.pop_back();
    ASSERT_EQ(a.node(na).block, b.node(nb).block);
    ASSERT_EQ(a.node(na).weight, b.node(nb).weight);
    const auto ca = a.children(na);
    const auto cb = b.children(nb);
    ASSERT_EQ(ca.size(), cb.size());
    for (std::size_t i = 0; i < ca.size(); ++i) {
      stack.emplace_back(ca[i], cb[i]);
    }
  }
}

TEST(TreeSerialize, RoundTripPreservesStructure) {
  const PrefetchTree original = trained_tree(1, 20'000);
  std::stringstream buf;
  original.serialize(buf);
  const PrefetchTree loaded = PrefetchTree::deserialize(buf);
  expect_equal_trees(original, loaded);
}

TEST(TreeSerialize, RoundTripPreservesPredictions) {
  const PrefetchTree original = trained_tree(2, 20'000);
  std::stringstream buf;
  original.serialize(buf);
  const PrefetchTree loaded = PrefetchTree::deserialize(buf);
  EnumeratorLimits limits;
  const auto a = enumerate_candidates(original, original.root(), limits);
  const auto b = enumerate_candidates(loaded, loaded.root(), limits);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].block, b[i].block);
    EXPECT_DOUBLE_EQ(a[i].probability, b[i].probability);
    EXPECT_EQ(a[i].depth, b[i].depth);
  }
}

TEST(TreeSerialize, LoadedTreeKeepsLearning) {
  PrefetchTree original;
  for (const BlockId b : {1u, 2u, 1u, 2u, 1u, 2u}) {
    original.access(b);
  }
  std::stringstream buf;
  original.serialize(buf);
  PrefetchTree loaded = PrefetchTree::deserialize(buf);
  // New accesses keep updating weights from the loaded state.
  const auto before = loaded.node(loaded.find_child(loaded.root(), 1)).weight;
  loaded.access(1);
  const auto after = loaded.node(loaded.find_child(loaded.root(), 1)).weight;
  EXPECT_EQ(after, before + 1);
}

TEST(TreeSerialize, BoundedConfigAppliesToFutureGrowth) {
  const PrefetchTree original = trained_tree(3, 5'000);
  std::stringstream buf;
  original.serialize(buf);
  TreeConfig config;
  config.max_nodes = original.node_count();  // loaded exactly at budget
  PrefetchTree loaded = PrefetchTree::deserialize(buf, config);
  EXPECT_EQ(loaded.node_count(), original.node_count());
  util::Xoshiro256 rng(4);
  for (int i = 0; i < 2'000; ++i) {
    loaded.access(rng.below(1'000'000));
  }
  EXPECT_LE(loaded.node_count(), config.max_nodes + 1);
}

TEST(TreeSerialize, EmptyTreeRoundTrips) {
  PrefetchTree empty;
  std::stringstream buf;
  empty.serialize(buf);
  const PrefetchTree loaded = PrefetchTree::deserialize(buf);
  EXPECT_EQ(loaded.node_count(), 1u);
  EXPECT_EQ(loaded.node(loaded.root()).weight, 0u);
}

TEST(TreeSerialize, RejectsBadMagic) {
  std::stringstream buf("garbage data here");
  EXPECT_THROW(PrefetchTree::deserialize(buf), std::runtime_error);
}

TEST(TreeSerialize, RejectsTruncatedStream) {
  const PrefetchTree original = trained_tree(5, 2'000);
  std::stringstream buf;
  original.serialize(buf);
  std::string bytes = buf.str();
  bytes.resize(bytes.size() / 2);
  std::stringstream cut(bytes);
  EXPECT_THROW(PrefetchTree::deserialize(cut), std::runtime_error);
}

TEST(TreeSerialize, RejectsCorruptedWeights) {
  PrefetchTree original;
  for (const BlockId b : {1u, 1u, 2u}) {
    original.access(b);
  }
  std::stringstream buf;
  original.serialize(buf);
  std::string bytes = buf.str();
  // Blow up a weight byte in the body (after the 14-byte header the root
  // record starts; weights of children follow block ids).
  bytes[bytes.size() - 5] = '\xff';
  std::stringstream bad(bytes);
  EXPECT_THROW(PrefetchTree::deserialize(bad), std::runtime_error);
}

}  // namespace
}  // namespace pfp::core::tree
