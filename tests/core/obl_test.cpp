#include "core/policy/obl.hpp"

#include <gtest/gtest.h>

#include "policy_harness.hpp"

namespace pfp::core::policy {
namespace {

using testing::Harness;

TEST(Obl, PrefetchesNextBlock) {
  Harness h(16);
  SequentialLookahead obl(0.10);
  EXPECT_TRUE(obl.maybe_prefetch_next(100, h.ctx));
  const auto entry = h.cache.prefetch().lookup(101);
  ASSERT_TRUE(entry.has_value());
  EXPECT_TRUE(entry->obl);
  EXPECT_EQ(entry->depth, 1u);
  EXPECT_EQ(h.metrics.prefetches_issued, 1u);
  EXPECT_EQ(h.metrics.obl_prefetches_issued, 1u);
}

TEST(Obl, SkipsWhenTargetAlreadyCached) {
  Harness h(16);
  h.demand(101);
  SequentialLookahead obl(0.10);
  EXPECT_FALSE(obl.maybe_prefetch_next(100, h.ctx));
  EXPECT_EQ(h.metrics.prefetches_issued, 0u);
}

TEST(Obl, QuotaEvictsOldestOblBlock) {
  Harness h(20);  // quota = max(1, 0.1 * 20) = 2
  SequentialLookahead obl(0.10);
  obl.maybe_prefetch_next(100, h.ctx);
  obl.maybe_prefetch_next(200, h.ctx);
  EXPECT_EQ(h.cache.prefetch().obl_count(), 2u);
  obl.maybe_prefetch_next(300, h.ctx);  // over quota: 101 must go
  EXPECT_EQ(h.cache.prefetch().obl_count(), 2u);
  EXPECT_FALSE(h.cache.prefetch().contains(101));
  EXPECT_TRUE(h.cache.prefetch().contains(201));
  EXPECT_TRUE(h.cache.prefetch().contains(301));
  EXPECT_EQ(h.metrics.prefetch_ejections, 1u);
}

TEST(Obl, FullCacheUnderQuotaDisplacesDemandLru) {
  Harness h(4);  // quota = max(1, 0.4) = 1... use 0.5 for quota 2
  SequentialLookahead obl(0.5);
  h.demand(1);
  h.demand(2);
  h.demand(3);
  h.demand(4);
  EXPECT_EQ(h.cache.free_buffers(), 0u);
  EXPECT_TRUE(obl.maybe_prefetch_next(10, h.ctx));
  EXPECT_FALSE(h.cache.demand().contains(1));  // LRU displaced
  EXPECT_TRUE(h.cache.prefetch().contains(11));
}

TEST(Obl, EntryPricedWithOblHitEstimate) {
  Harness h(16);
  SequentialLookahead obl(0.10);
  obl.maybe_prefetch_next(100, h.ctx);
  const auto entry = h.cache.prefetch().lookup(101);
  ASSERT_TRUE(entry.has_value());
  // probability mirrors the OBL hit estimator (initially 0.5)
  EXPECT_DOUBLE_EQ(entry->probability, h.estimators.obl_h());
  // Eq. 11 with d=1, x=0: p * (t_driver + t_disk)
  EXPECT_NEAR(entry->eject_cost,
              h.estimators.obl_h() * (h.timing.t_driver + h.timing.t_disk),
              1e-12);
}

TEST(Obl, QuotaOfTinyCacheIsAtLeastOne) {
  Harness h(4);  // 0.1 * 4 = 0.4 -> quota clamps to 1
  SequentialLookahead obl(0.10);
  obl.maybe_prefetch_next(100, h.ctx);
  obl.maybe_prefetch_next(200, h.ctx);
  EXPECT_EQ(h.cache.prefetch().obl_count(), 1u);
  EXPECT_TRUE(h.cache.prefetch().contains(201));
}

}  // namespace
}  // namespace pfp::core::policy
