// The markov / assoc policies under the generic predictor-state
// interface: candidate flow into the shared cost-benefit loop, the
// opaque serialize/restore virtuals, and typed candidate introspection.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "core/policy/assoc_policy.hpp"
#include "core/policy/factory.hpp"
#include "core/policy/markov_policy.hpp"
#include "policy_harness.hpp"
#include "sim/simulator.hpp"
#include "trace/trace.hpp"

namespace pfp::core::policy {
namespace {

using sim::simulate;

trace::Trace strided_trace(std::size_t n, trace::BlockId stride) {
  trace::Trace t("stride");
  for (std::size_t i = 0; i < n; ++i) {
    t.append(static_cast<trace::BlockId>(i) * stride);
  }
  return t;
}

trace::Trace interleaved_pair_trace(int reps) {
  // 100 -> 200 always separated by one fresh noise block: invisible to
  // first-order chains, visible to the windowed association miner.
  trace::Trace t("interleaved");
  trace::BlockId noise = 1'000'000;
  for (int rep = 0; rep < reps; ++rep) {
    t.append(100);
    t.append(noise++);
    t.append(200);
    t.append(noise++);
    t.append(noise++);
  }
  return t;
}

sim::SimConfig config_for(PolicyKind kind, std::size_t blocks = 64) {
  sim::SimConfig c;
  c.cache_blocks = blocks;
  c.policy.kind = kind;
  return c;
}

/// Hand-feeds a trace through a bare policy (no engine): enough to train
/// the predictor model for the state round-trip tests.
void feed(Prefetcher& policy, testing::Harness& h, const trace::Trace& t) {
  for (const trace::TraceRecord& r : t) {
    const AccessOutcome outcome = h.cache.contains(r.block)
                                      ? AccessOutcome::kDemandHit
                                      : AccessOutcome::kMiss;
    policy.on_access(r.block, outcome, h.ctx);
    h.ctx.now_ms += 15.0;
    ++h.ctx.period;
  }
}

TEST(MarkovPolicy, PrefetchesALearnedStride) {
  // A strided scan revisits no block, so the LZ tree can only predict
  // already-seen (never re-referenced) blocks; the delta chain collapses
  // the scan onto a single certain transition and prefetches ahead.
  const trace::Trace t = strided_trace(3'000, 4);
  const auto tree = simulate(config_for(PolicyKind::kTree), t);
  const auto markov = simulate(config_for(PolicyKind::kMarkov), t);
  EXPECT_EQ(tree.metrics.prefetch_hits, 0u);
  EXPECT_GT(markov.metrics.prefetch_hits, 2'000u);
  EXPECT_LT(markov.metrics.miss_rate(), 0.5);
}

TEST(MarkovPolicy, ReportsPredictorSizeCounters) {
  const auto r =
      simulate(config_for(PolicyKind::kMarkov), strided_trace(500, 4));
  // The tree_* counters double as generic predictor-size gauges.
  EXPECT_GT(r.metrics.policy.tree_nodes, 0u);
  EXPECT_GT(r.metrics.policy.tree_bytes, 0u);
}

TEST(MarkovPolicy, PredictorStateRoundTripsThroughTheVirtuals) {
  testing::Harness h(64);
  MarkovCostBenefit trained;
  feed(trained, h, strided_trace(200, 4));
  EXPECT_EQ(trained.predictor_state_tag(), kPredictorMarkov);
  ASSERT_GT(trained.model().row_count(), 0u);

  std::stringstream blob;
  trained.save_predictor_state(blob);
  MarkovCostBenefit restored;
  EXPECT_TRUE(restored.load_predictor_state(blob));
  EXPECT_EQ(restored.model().row_count(), trained.model().row_count());
  EXPECT_EQ(restored.model().transition_count(),
            trained.model().transition_count());
}

TEST(MarkovPolicy, LoadRejectsForeignBlobs) {
  MarkovCostBenefit policy;
  std::stringstream junk("PFTRnot-a-markov-stream");
  EXPECT_THROW(policy.load_predictor_state(junk), std::runtime_error);
}

TEST(MarkovPolicy, PredictionsIntoReportsTypedCandidates) {
  testing::Harness h(64);
  MarkovCostBenefit policy;
  feed(policy, h, strided_trace(41, 4));  // last access: block 160
  std::vector<costben::PredictedBlock> out;
  const std::size_t n = policy.predictions_into(out);
  ASSERT_GT(n, 0u);
  ASSERT_EQ(out.size(), n);
  EXPECT_EQ(out[0].block, 164u);
  EXPECT_GT(out[0].probability, 0.0);
  EXPECT_EQ(out[0].depth, 1u);
}

trace::Trace rotating_pairs_trace(int cycles, int pairs) {
  // Pairs (A_i -> A_i + 500) visited round-robin with fresh noise blocks
  // between and after them.  With more pairs than cache blocks a pair is
  // long evicted when it comes around again, so only prediction — not
  // residency — can produce hits; the ever-fresh noise block inside each
  // pair hides the association from first-order delta chains.
  trace::Trace t("pairs");
  trace::BlockId noise = 1'000'000;
  for (int cycle = 0; cycle < cycles; ++cycle) {
    for (int i = 0; i < pairs; ++i) {
      const trace::BlockId a =
          10'000 + static_cast<trace::BlockId>(i) * 1'000;
      t.append(a);
      t.append(noise++);
      t.append(a + 500);
      t.append(noise++);
      t.append(noise++);
    }
  }
  return t;
}

TEST(AssocPolicy, PrefetchesAMinedAssociation) {
  const trace::Trace t = rotating_pairs_trace(20, 96);
  const auto markov = simulate(config_for(PolicyKind::kMarkov), t);
  const auto assoc = simulate(config_for(PolicyKind::kAssoc), t);
  EXPECT_GT(assoc.metrics.prefetch_hits, 1'000u);
  EXPECT_GT(assoc.metrics.prefetch_hits, markov.metrics.prefetch_hits);
}

TEST(AssocPolicy, PredictorStateRoundTripsThroughTheVirtuals) {
  testing::Harness h(64);
  AssocPolicyConfig config;
  config.miner.window = 16;
  config.miner.lookahead = 4;
  AssocCostBenefit trained(config);
  feed(trained, h, interleaved_pair_trace(8));
  EXPECT_EQ(trained.predictor_state_tag(), kPredictorAssoc);
  ASSERT_GT(trained.miner().row_count(), 0u);

  std::stringstream blob;
  trained.save_predictor_state(blob);
  AssocCostBenefit restored(config);
  EXPECT_TRUE(restored.load_predictor_state(blob));
  EXPECT_EQ(restored.miner().row_count(), trained.miner().row_count());
  EXPECT_EQ(restored.miner().association_count(),
            trained.miner().association_count());
}

TEST(AssocPolicy, LoadRejectsForeignBlobs) {
  AssocCostBenefit policy;
  std::stringstream junk("PFMKnot-an-association-stream");
  EXPECT_THROW(policy.load_predictor_state(junk), std::runtime_error);
}

TEST(AssocPolicy, PredictionsIntoReportsTypedCandidates) {
  testing::Harness h(64);
  AssocPolicyConfig config;
  config.miner.window = 16;
  config.miner.lookahead = 4;
  AssocCostBenefit policy(config);
  trace::Trace t = interleaved_pair_trace(8);
  t.append(100);  // park the introspection point on the trained source
  feed(policy, h, t);
  std::vector<costben::PredictedBlock> out;
  const std::size_t n = policy.predictions_into(out);
  ASSERT_GT(n, 0u);
  ASSERT_EQ(out.size(), n);
  EXPECT_EQ(out[0].block, 200u);
  EXPECT_GT(out[0].probability, 0.0);
}

TEST(PredictorInterface, BaselinePoliciesCarryNoState) {
  const PolicySpec spec;  // kNoPrefetch
  const auto policy = make_prefetcher(spec);
  EXPECT_EQ(policy->predictor_state_tag(), kPredictorNone);
  std::vector<costben::PredictedBlock> out;
  EXPECT_EQ(policy->predictions_into(out), 0u);
  std::stringstream blob;
  policy->save_predictor_state(blob);
  EXPECT_TRUE(blob.str().empty());
  EXPECT_FALSE(policy->load_predictor_state(blob));
}

TEST(PredictorInterface, TagNamesAreHumanReadable) {
  EXPECT_EQ(predictor_tag_name(kPredictorNone), "none");
  EXPECT_EQ(predictor_tag_name(kPredictorTree), "tree");
  EXPECT_EQ(predictor_tag_name(kPredictorMarkov), "markov");
  EXPECT_EQ(predictor_tag_name(kPredictorAssoc), "assoc");
  // Unknown tags print as hex so snapshot mismatch errors stay debuggable.
  EXPECT_EQ(predictor_tag_name(0xdeadbeefu), "0xdeadbeef");
}

TEST(PredictorInterface, FactoryKindsReportTheirFamilyTag) {
  const struct {
    PolicyKind kind;
    std::uint32_t tag;
  } expected[] = {
      {PolicyKind::kNoPrefetch, kPredictorNone},
      {PolicyKind::kNextLimit, kPredictorNone},
      {PolicyKind::kTree, kPredictorTree},
      {PolicyKind::kTreeNextLimit, kPredictorTree},
      {PolicyKind::kTreeLvc, kPredictorTree},
      {PolicyKind::kPerfectSelector, kPredictorTree},
      {PolicyKind::kTreeThreshold, kPredictorTree},
      {PolicyKind::kTreeChildren, kPredictorTree},
      {PolicyKind::kProbGraph, kPredictorNone},
      {PolicyKind::kTreeAdaptive, kPredictorTree},
      {PolicyKind::kMarkov, kPredictorMarkov},
      {PolicyKind::kAssoc, kPredictorAssoc},
  };
  EXPECT_EQ(std::size(expected), all_policy_kinds().size());
  for (const auto& row : expected) {
    PolicySpec spec;
    spec.kind = row.kind;
    const auto policy = make_prefetcher(spec);
    EXPECT_EQ(policy->predictor_state_tag(), row.tag)
        << kind_name(row.kind);
  }
}

}  // namespace
}  // namespace pfp::core::policy
