#include <gtest/gtest.h>

#include <sstream>

#include "trace/reader.hpp"
#include "trace/writer.hpp"

namespace pfp::trace {
namespace {

Trace sample_trace() {
  Trace t("sample");
  t.append(1, 0);
  t.append(99999999999ULL, 7);
  t.append(42, 3);
  t.append(42, 3);
  return t;
}

TEST(TraceIo, TextRoundTrip) {
  const Trace original = sample_trace();
  std::stringstream buf;
  write_text(buf, original);
  const Trace read = read_text(buf, "sample");
  ASSERT_EQ(read.size(), original.size());
  for (std::size_t i = 0; i < read.size(); ++i) {
    EXPECT_EQ(read[i], original[i]) << "record " << i;
  }
}

TEST(TraceIo, BinaryRoundTrip) {
  const Trace original = sample_trace();
  std::stringstream buf;
  write_binary(buf, original);
  const Trace read = read_binary(buf, "sample");
  ASSERT_EQ(read.size(), original.size());
  for (std::size_t i = 0; i < read.size(); ++i) {
    EXPECT_EQ(read[i], original[i]) << "record " << i;
  }
}

TEST(TraceIo, TextSkipsCommentsAndBlanks) {
  std::stringstream buf("# header\n\n10\n  20 5  # trailing comment\n\n");
  const Trace t = read_text(buf, "t");
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t[0].block, 10u);
  EXPECT_EQ(t[1].block, 20u);
  EXPECT_EQ(t[1].stream, 5u);
}

TEST(TraceIo, TextRejectsJunkBlock) {
  std::stringstream buf("banana\n");
  EXPECT_THROW(read_text(buf, "t"), TraceFormatError);
}

TEST(TraceIo, TextRejectsJunkStream) {
  std::stringstream buf("1 banana\n");
  EXPECT_THROW(read_text(buf, "t"), TraceFormatError);
}

TEST(TraceIo, TextRejectsOverflowingStream) {
  std::stringstream buf("1 4294967296\n");  // 2^32 exceeds StreamId
  EXPECT_THROW(read_text(buf, "t"), TraceFormatError);
}

TEST(TraceIo, BinaryRejectsBadMagic) {
  std::stringstream buf("NOPE, not a trace");
  EXPECT_THROW(read_binary(buf, "t"), TraceFormatError);
}

TEST(TraceIo, BinaryRejectsTruncatedBody) {
  const Trace original = sample_trace();
  std::stringstream buf;
  write_binary(buf, original);
  std::string bytes = buf.str();
  bytes.resize(bytes.size() - 5);
  std::stringstream cut(bytes);
  EXPECT_THROW(read_binary(cut, "t"), TraceFormatError);
}

TEST(TraceIo, FileRoundTripBothFormats) {
  const Trace original = sample_trace();
  const std::string text_path = ::testing::TempDir() + "/pfp_io_test.txt";
  const std::string bin_path = ::testing::TempDir() + "/pfp_io_test.pfpt";
  write_file(text_path, original);
  write_file(bin_path, original);
  const Trace from_text = read_file(text_path);
  const Trace from_bin = read_file(bin_path);
  ASSERT_EQ(from_text.size(), original.size());
  ASSERT_EQ(from_bin.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(from_text[i].block, original[i].block);
    EXPECT_EQ(from_bin[i], original[i]);
  }
}

TEST(TraceIo, ReadMissingFileThrows) {
  EXPECT_THROW(read_file("/nonexistent/path/x.pfpt"), TraceFormatError);
}

TEST(TraceIo, EmptyTraceRoundTrips) {
  Trace empty("e");
  std::stringstream buf;
  write_binary(buf, empty);
  const Trace read = read_binary(buf, "e");
  EXPECT_TRUE(read.empty());
}

}  // namespace
}  // namespace pfp::trace
