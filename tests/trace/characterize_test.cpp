#include "trace/characterize.hpp"

#include <gtest/gtest.h>

namespace pfp::trace {
namespace {

Trace of_blocks(std::initializer_list<BlockId> blocks) {
  Trace t("t");
  for (const BlockId b : blocks) {
    t.append(b);
  }
  return t;
}

TEST(Characterize, EmptyTrace) {
  const auto p = characterize(Trace("empty"));
  EXPECT_EQ(p.references, 0u);
  EXPECT_EQ(p.unique_blocks, 0u);
}

TEST(Characterize, PureSequentialRun) {
  const auto p = characterize(of_blocks({1, 2, 3, 4, 5}));
  EXPECT_DOUBLE_EQ(p.sequential_fraction, 1.0);
  EXPECT_DOUBLE_EQ(p.reuse_fraction, 0.0);
  EXPECT_EQ(p.unique_blocks, 5u);
  EXPECT_DOUBLE_EQ(p.mean_run_length, 5.0);
}

TEST(Characterize, NoSequentialAdjacency) {
  const auto p = characterize(of_blocks({10, 20, 30, 40}));
  EXPECT_DOUBLE_EQ(p.sequential_fraction, 0.0);
  EXPECT_DOUBLE_EQ(p.mean_run_length, 1.0);
}

TEST(Characterize, ReuseFractionCountsRepeats) {
  // 6 refs, 3 unique -> 3 repeats -> reuse 0.5
  const auto p = characterize(of_blocks({1, 2, 3, 1, 2, 3}));
  EXPECT_DOUBLE_EQ(p.reuse_fraction, 0.5);
  EXPECT_EQ(p.unique_blocks, 3u);
}

TEST(Characterize, StackDistanceOfImmediateRepeatIsZero) {
  const auto p = characterize(of_blocks({7, 7}));
  // one reuse at distance 0
  EXPECT_EQ(p.reuse_distances.total(), 1u);
  EXPECT_EQ(p.reuse_distances.bucket_count(0), 1u);
}

TEST(Characterize, StackDistanceCountsInterveningDistinct) {
  // 1 (2 3) 1: two distinct blocks between the two 1s.
  const auto p = characterize(of_blocks({1, 2, 3, 1}));
  EXPECT_EQ(p.reuse_distances.total(), 1u);
  // distance 2 lands in bucket [2,3]
  EXPECT_EQ(p.reuse_distances.bucket_count(2), 1u);
}

TEST(Characterize, StackDistanceIgnoresDuplicateIntervening) {
  // 1 (2 2 2) 1: only ONE distinct intervening block -> distance 1.
  const auto p = characterize(of_blocks({1, 2, 2, 2, 1}));
  // reuses: 2 (x2) at distance 0, and 1 at distance 1
  EXPECT_EQ(p.reuse_distances.bucket_count(0), 2u);
  EXPECT_EQ(p.reuse_distances.bucket_count(1), 1u);
}

TEST(Characterize, MixedRunLengths) {
  // runs: [5 6 7], [100], [200 201] -> mean (3 + 1 + 2) / 3 = 2
  const auto p = characterize(of_blocks({5, 6, 7, 100, 200, 201}));
  EXPECT_DOUBLE_EQ(p.mean_run_length, 2.0);
}

TEST(Characterize, ToStringMentionsEverything) {
  const auto p = characterize(of_blocks({1, 2, 3, 1}));
  const auto text = to_string(p);
  EXPECT_NE(text.find("references"), std::string::npos);
  EXPECT_NE(text.find("unique blocks"), std::string::npos);
  EXPECT_NE(text.find("sequential"), std::string::npos);
}

}  // namespace
}  // namespace pfp::trace
