#include "trace/l1_filter.hpp"

#include <gtest/gtest.h>

namespace pfp::trace {
namespace {

TEST(L1Filter, FirstAccessMisses) {
  L1Filter f(4);
  EXPECT_TRUE(f.access(1));
  EXPECT_EQ(f.misses(), 1u);
  EXPECT_EQ(f.hits(), 0u);
}

TEST(L1Filter, RepeatWithinCapacityHits) {
  L1Filter f(4);
  f.access(1);
  EXPECT_FALSE(f.access(1));
  EXPECT_EQ(f.hits(), 1u);
}

TEST(L1Filter, EvictsLruWhenFull) {
  L1Filter f(2);
  f.access(1);
  f.access(2);
  f.access(3);              // evicts 1
  EXPECT_TRUE(f.access(1));  // 1 was evicted: miss again
  EXPECT_FALSE(f.access(3));
}

TEST(L1Filter, TouchRefreshesRecency) {
  L1Filter f(2);
  f.access(1);
  f.access(2);
  f.access(1);               // 1 becomes MRU
  f.access(3);               // evicts 2, not 1
  EXPECT_FALSE(f.access(1));
  EXPECT_TRUE(f.access(2));
}

TEST(L1Filter, FilterKeepsOnlyMisses) {
  Trace in("raw");
  for (const BlockId b : {1u, 2u, 1u, 3u, 2u, 4u, 1u}) {
    in.append(b);
  }
  L1Filter f(10);  // big enough: every block misses once
  const Trace out = f.filter(in);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0].block, 1u);
  EXPECT_EQ(out[1].block, 2u);
  EXPECT_EQ(out[2].block, 3u);
  EXPECT_EQ(out[3].block, 4u);
}

TEST(L1Filter, FilterPreservesStreamIds) {
  Trace in("raw");
  in.append(1, 5);
  in.append(1, 6);  // hit: dropped
  in.append(2, 7);
  L1Filter f(10);
  const Trace out = f.filter(in);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].stream, 5u);
  EXPECT_EQ(out[1].stream, 7u);
}

TEST(L1Filter, TinyCachePassesEverythingDistinctAdjacent) {
  // Capacity 1: alternating blocks always miss.
  L1Filter f(1);
  Trace in("raw");
  for (int i = 0; i < 10; ++i) {
    in.append(i % 2 == 0 ? 100 : 200);
  }
  const Trace out = f.filter(in);
  EXPECT_EQ(out.size(), 10u);
}

TEST(L1Filter, ResidentNeverExceedsCapacity) {
  L1Filter f(8);
  for (BlockId b = 0; b < 100; ++b) {
    f.access(b % 20);
    EXPECT_LE(f.resident(), 8u);
  }
}

TEST(L1Filter, FilteredTraceHasNoShortReuse) {
  // Property: in the filtered stream, a block can only repeat if at least
  // `capacity` distinct other blocks intervened in the filtered stream
  // (it had to be evicted from the L1 first).
  L1Filter f(16);
  Trace in("raw");
  for (int round = 0; round < 50; ++round) {
    for (BlockId b = 0; b < 40; ++b) {  // cyclic scan > capacity
      in.append(b);
    }
  }
  const Trace out = f.filter(in);
  // Cyclic scan through 40 > 16 blocks thrashes LRU: everything misses.
  EXPECT_EQ(out.size(), in.size());
}

}  // namespace
}  // namespace pfp::trace
