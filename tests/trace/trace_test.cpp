#include "trace/trace.hpp"

#include <gtest/gtest.h>

namespace pfp::trace {
namespace {

TEST(Trace, StartsEmpty) {
  Trace t("x");
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.name(), "x");
}

TEST(Trace, AppendAndIndex) {
  Trace t("x");
  t.append(10, 1);
  t.append(20);
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t[0].block, 10u);
  EXPECT_EQ(t[0].stream, 1u);
  EXPECT_EQ(t[1].block, 20u);
  EXPECT_EQ(t[1].stream, 0u);
}

TEST(Trace, RangeForIteratesInOrder) {
  Trace t("x");
  for (BlockId b = 0; b < 5; ++b) {
    t.append(b);
  }
  BlockId expected = 0;
  for (const auto& r : t) {
    EXPECT_EQ(r.block, expected++);
  }
}

TEST(Trace, UniqueBlocksCountsDistinct) {
  Trace t("x");
  t.append(1);
  t.append(2);
  t.append(1);
  t.append(3);
  t.append(2);
  EXPECT_EQ(t.unique_blocks(), 3u);
}

TEST(Trace, TruncateShortens) {
  Trace t("x");
  for (BlockId b = 0; b < 10; ++b) {
    t.append(b);
  }
  t.truncate(4);
  EXPECT_EQ(t.size(), 4u);
  t.truncate(100);  // no-op
  EXPECT_EQ(t.size(), 4u);
}

TEST(Trace, RecordsSpanViewsSameData) {
  Trace t("x");
  t.append(42);
  const auto span = t.records();
  ASSERT_EQ(span.size(), 1u);
  EXPECT_EQ(span[0].block, 42u);
}

TEST(Trace, SetNameChangesName) {
  Trace t("a");
  t.set_name("b");
  EXPECT_EQ(t.name(), "b");
}

}  // namespace
}  // namespace pfp::trace
