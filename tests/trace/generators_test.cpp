#include <gtest/gtest.h>

#include <set>

#include "trace/characterize.hpp"
#include "trace/gen_cad.hpp"
#include "trace/gen_fileserver.hpp"
#include "trace/gen_sequential.hpp"
#include "trace/gen_timeshare.hpp"

namespace pfp::trace {
namespace {

// ---- determinism: same config => identical trace ------------------------

template <typename Gen>
void expect_deterministic(typename Gen::Config config) {
  config.references = 5'000;
  const Trace a = Gen(config).generate();
  const Trace b = Gen(config).generate();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << "diverged at " << i;
  }
}

TEST(Generators, SitarIsDeterministic) {
  expect_deterministic<SitarGenerator>({});
}
TEST(Generators, CadIsDeterministic) {
  expect_deterministic<CadGenerator>({});
}
TEST(Generators, TimeshareIsDeterministic) {
  expect_deterministic<TimeshareGenerator>({});
}
TEST(Generators, FileServerIsDeterministic) {
  expect_deterministic<FileServerGenerator>({});
}

// ---- seeds matter --------------------------------------------------------

TEST(Generators, DifferentSeedsProduceDifferentTraces) {
  CadGenerator::Config a;
  a.references = 2'000;
  CadGenerator::Config b = a;
  b.seed += 1;
  const Trace ta = CadGenerator(a).generate();
  const Trace tb = CadGenerator(b).generate();
  bool differs = false;
  for (std::size_t i = 0; i < ta.size() && !differs; ++i) {
    differs = !(ta[i] == tb[i]);
  }
  EXPECT_TRUE(differs);
}

// ---- exact lengths -------------------------------------------------------

TEST(Generators, ProduceExactlyRequestedReferences) {
  SitarGenerator::Config sc;
  sc.references = 12'345;
  EXPECT_EQ(SitarGenerator(sc).generate().size(), 12'345u);
  CadGenerator::Config cc;
  cc.references = 999;
  EXPECT_EQ(CadGenerator(cc).generate().size(), 999u);
}

// ---- structural signatures (what the paper's results hinge on) -----------

TEST(Generators, SitarIsHighlySequential) {
  SitarGenerator::Config config;
  config.references = 50'000;
  const auto profile = characterize(SitarGenerator(config).generate());
  EXPECT_GT(profile.sequential_fraction, 0.6)
      << "sitar must reward one-block lookahead";
  EXPECT_GT(profile.mean_run_length, 3.0);
}

TEST(Generators, CadHasNoSequentialAdjacency) {
  CadGenerator::Config config;
  config.references = 50'000;
  const auto profile = characterize(CadGenerator(config).generate());
  EXPECT_LT(profile.sequential_fraction, 0.01)
      << "CAD object ids must defeat one-block lookahead";
}

TEST(Generators, CadHasHeavyRepetition) {
  CadGenerator::Config config;
  config.references = 50'000;
  const auto profile = characterize(CadGenerator(config).generate());
  EXPECT_GT(profile.reuse_fraction, 0.5)
      << "CAD sessions re-traverse the same structures";
}

TEST(Generators, TimeshareMixesSequentialAndRandom) {
  TimeshareGenerator::Config config;
  config.references = 50'000;
  const auto profile = characterize(TimeshareGenerator(config).generate());
  EXPECT_GT(profile.sequential_fraction, 0.1);
  EXPECT_LT(profile.sequential_fraction, 0.7);
}

TEST(Generators, FileServerIsSequentialWithReuse) {
  FileServerGenerator::Config config;
  config.references = 50'000;
  const auto profile = characterize(FileServerGenerator(config).generate());
  EXPECT_GT(profile.sequential_fraction, 0.4);
  EXPECT_GT(profile.reuse_fraction, 0.3);
}

TEST(Generators, CadStreamTagsMatchSequences) {
  CadGenerator::Config config;
  config.references = 5'000;
  const Trace t = CadGenerator(config).generate();
  std::set<StreamId> streams;
  for (const auto& r : t) {
    streams.insert(r.stream);
  }
  EXPECT_GT(streams.size(), 1u);
  EXPECT_LE(streams.size(), config.sequences);
}

TEST(Generators, SitarFilesAreReadFrontToBack) {
  // Within one stream, block numbers inside a file ascend by one; verify
  // the dominant pattern: for stream 0, strictly ascending runs.
  SitarGenerator::Config config;
  config.references = 20'000;
  config.streams = 1;
  config.metadata_prob = 0.0;
  const Trace t = SitarGenerator(config).generate();
  std::uint64_t ascending = 0;
  std::uint64_t total = 0;
  for (std::size_t i = 1; i < t.size(); ++i) {
    ++total;
    if (t[i].block == t[i - 1].block + 1) {
      ++ascending;
    }
  }
  EXPECT_GT(static_cast<double>(ascending) / static_cast<double>(total),
            0.7);
}

}  // namespace
}  // namespace pfp::trace
