#include "trace/workloads.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "trace/characterize.hpp"

namespace pfp::trace {
namespace {

TEST(Workloads, NamesRoundTrip) {
  for (const Workload w : all_workloads()) {
    EXPECT_EQ(workload_from_name(workload_name(w)), w);
  }
}

TEST(Workloads, UnknownNameThrows) {
  EXPECT_THROW(workload_from_name("bogus"), std::invalid_argument);
}

TEST(Workloads, FourWorkloadsInPaperOrder) {
  const auto& all = all_workloads();
  ASSERT_EQ(all.size(), 4u);
  EXPECT_EQ(workload_name(all[0]), "cello");
  EXPECT_EQ(workload_name(all[1]), "snake");
  EXPECT_EQ(workload_name(all[2]), "cad");
  EXPECT_EQ(workload_name(all[3]), "sitar");
}

TEST(Workloads, L1SizesMatchTable1) {
  // 30 MB and 5 MB at 8 KiB blocks (Table 1).
  EXPECT_EQ(workload_l1_blocks(Workload::kCello), 3840u);
  EXPECT_EQ(workload_l1_blocks(Workload::kSnake), 640u);
  EXPECT_EQ(workload_l1_blocks(Workload::kCad), 0u);
  EXPECT_EQ(workload_l1_blocks(Workload::kSitar), 0u);
}

TEST(Workloads, ProducesRequestedLength) {
  for (const Workload w : all_workloads()) {
    const Trace t = make_workload(w, 10'000);
    EXPECT_EQ(t.size(), 10'000u) << workload_name(w);
    EXPECT_EQ(t.name(), workload_name(w));
  }
}

TEST(Workloads, DeterministicAcrossCalls) {
  const Trace a = make_workload(Workload::kSnake, 5'000);
  const Trace b = make_workload(Workload::kSnake, 5'000);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]);
  }
}

TEST(Workloads, SeedPerturbsTrace) {
  const Trace a = make_workload(Workload::kCad, 5'000, 0);
  const Trace b = make_workload(Workload::kCad, 5'000, 1);
  bool differs = false;
  for (std::size_t i = 0; i < a.size() && !differs; ++i) {
    differs = !(a[i] == b[i]);
  }
  EXPECT_TRUE(differs);
}

// Table 1's key property: the disk-level traces contain no references
// that would have hit the original first-level cache.  Equivalent check:
// replaying the filtered trace through an identical L1 never hits on
// short distances... directly verify the filter did run by comparing
// with the unfiltered generators' reuse at short range.
TEST(Workloads, FilteredTracesHaveReducedShortRangeReuse) {
  const Trace cello = make_workload(Workload::kCello, 30'000);
  const auto profile = characterize(cello);
  // Raw timeshare reuse is dominated by hot working sets that the 30 MB
  // L1 absorbs; the residual reuse fraction must be much lower than the
  // raw generator's (> 0.5 at these lengths).
  EXPECT_LT(profile.reuse_fraction, 0.45);
}

TEST(Workloads, CadIsUsedUnfiltered) {
  // CAD has no L1 filter: short-range repetition survives.
  const Trace cad = make_workload(Workload::kCad, 30'000);
  const auto profile = characterize(cad);
  EXPECT_GT(profile.reuse_fraction, 0.5);
}

}  // namespace
}  // namespace pfp::trace
