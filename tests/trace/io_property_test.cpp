// Property sweep: any trace round-trips bit-exactly through both trace
// formats, across sizes and content shapes.
#include <gtest/gtest.h>

#include <sstream>
#include <tuple>

#include "trace/reader.hpp"
#include "trace/writer.hpp"
#include "util/prng.hpp"

namespace pfp::trace {
namespace {

enum class Shape { kEmpty, kSequential, kRandom64Bit, kRepeats, kStreams };

Trace make_trace(Shape shape, std::size_t n, std::uint64_t seed) {
  Trace t("prop");
  util::Xoshiro256 rng(seed);
  switch (shape) {
    case Shape::kEmpty:
      break;
    case Shape::kSequential:
      for (std::size_t i = 0; i < n; ++i) {
        t.append(1'000 + i);
      }
      break;
    case Shape::kRandom64Bit:
      for (std::size_t i = 0; i < n; ++i) {
        t.append(rng.next());  // full 64-bit ids
      }
      break;
    case Shape::kRepeats:
      for (std::size_t i = 0; i < n; ++i) {
        t.append(rng.below(4));
      }
      break;
    case Shape::kStreams:
      for (std::size_t i = 0; i < n; ++i) {
        t.append(rng.below(1'000),
                 static_cast<StreamId>(rng.below(0xffffffffULL)));
      }
      break;
  }
  return t;
}

using Param = std::tuple<Shape, std::size_t>;

class IoRoundTrip : public ::testing::TestWithParam<Param> {};

TEST_P(IoRoundTrip, Binary) {
  const auto [shape, n] = GetParam();
  const Trace original = make_trace(shape, n, 42);
  std::stringstream buf;
  write_binary(buf, original);
  const Trace loaded = read_binary(buf, "prop");
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    ASSERT_EQ(loaded[i], original[i]) << i;
  }
}

TEST_P(IoRoundTrip, Text) {
  const auto [shape, n] = GetParam();
  const Trace original = make_trace(shape, n, 43);
  std::stringstream buf;
  write_text(buf, original);
  const Trace loaded = read_text(buf, "prop");
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    ASSERT_EQ(loaded[i], original[i]) << i;
  }
}

std::string shape_name(Shape shape) {
  switch (shape) {
    case Shape::kEmpty:
      return "empty";
    case Shape::kSequential:
      return "sequential";
    case Shape::kRandom64Bit:
      return "random64";
    case Shape::kRepeats:
      return "repeats";
    case Shape::kStreams:
      return "streams";
  }
  return "?";
}

std::string param_name(const ::testing::TestParamInfo<Param>& param_info) {
  return shape_name(std::get<0>(param_info.param)) + "_" +
         std::to_string(std::get<1>(param_info.param));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, IoRoundTrip,
    ::testing::Combine(::testing::Values(Shape::kEmpty, Shape::kSequential,
                                         Shape::kRandom64Bit,
                                         Shape::kRepeats, Shape::kStreams),
                       ::testing::Values(std::size_t{1}, std::size_t{100},
                                         std::size_t{10'000})),
    param_name);

}  // namespace
}  // namespace pfp::trace
