#include "obs/counters.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

namespace pfp::obs {
namespace {

TEST(Counter, StartsAtZeroAndAccumulates) {
  Counter c;
  c.assert_writer();  // the test thread is the unique writer
  EXPECT_EQ(c.get(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.get(), 42u);
}

TEST(Counter, SetPublishesExternalTotal) {
  Counter c;
  c.assert_writer();
  c.inc(7);
  c.set(1000);
  EXPECT_EQ(c.get(), 1000u);
}

TEST(Gauge, SetOverwrites) {
  Gauge g;
  g.assert_writer();
  EXPECT_EQ(g.get(), 0u);
  g.set(5);
  g.set(3);
  EXPECT_EQ(g.get(), 3u);
}

TEST(Counter, CellsAreCacheLinePadded) {
  // The whole point of the padding is that adjacent cells in a struct
  // never share a line (no false sharing between writer and scraper).
  EXPECT_EQ(alignof(Counter), kCacheLineSize);
  EXPECT_EQ(sizeof(Counter) % kCacheLineSize, 0u);
  EXPECT_EQ(alignof(Gauge), kCacheLineSize);
}

TEST(SnapshotGate, QuiescentReadDoesNotRetry) {
  SnapshotGate gate;
  const auto v = gate.read_begin();
  EXPECT_EQ(v & 1, 0u);
  EXPECT_FALSE(gate.read_retry(v));
}

TEST(SnapshotGate, MidWriteReadRetries) {
  SnapshotGate gate;
  gate.assert_writer();
  gate.begin_write();
  const auto v = gate.read_begin();
  EXPECT_EQ(v & 1, 1u);  // odd = writer inside the section
  EXPECT_TRUE(gate.read_retry(v));
  gate.end_write();
  const auto v2 = gate.read_begin();
  EXPECT_EQ(v2 & 1, 0u);
  EXPECT_FALSE(gate.read_retry(v2));
}

TEST(SnapshotGate, WriteBetweenBeginAndRetryIsDetected) {
  SnapshotGate gate;
  gate.assert_writer();
  const auto v = gate.read_begin();
  gate.begin_write();
  gate.end_write();
  EXPECT_TRUE(gate.read_retry(v));
}

// One writer keeps a pair of cells in lockstep under the gate; a reader
// using the retry protocol must never observe them out of step.
TEST(SnapshotGate, ReaderNeverSeesTornPair) {
  SnapshotGate gate;
  Counter a;
  Counter b;
  std::atomic<bool> stop{false};

  std::thread writer([&] {
    gate.assert_writer();
    a.assert_writer();
    b.assert_writer();
    for (std::uint64_t i = 1; !stop.load(std::memory_order_relaxed); ++i) {
      gate.begin_write();
      a.set(i);
      b.set(2 * i);
      gate.end_write();
    }
  });

  int clean_reads = 0;
  for (int i = 0; i < 200000 && clean_reads < 1000; ++i) {
    const auto v = gate.read_begin();
    const std::uint64_t sa = a.get();
    const std::uint64_t sb = b.get();
    if (!gate.read_retry(v)) {
      EXPECT_EQ(sb, 2 * sa) << "torn snapshot passed the gate";
      ++clean_reads;
    } else {
      // On a single CPU the writer can sit parked mid-section for a
      // whole timeslice; spinning through the retry without yielding
      // would burn every iteration against the same odd version.
      std::this_thread::yield();
    }
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  EXPECT_GT(clean_reads, 0);
}

}  // namespace
}  // namespace pfp::obs
