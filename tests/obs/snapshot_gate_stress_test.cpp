// Contention stress for the observability read paths.
//
// The seqlock's happy path (reader sees a quiescent version) is covered
// in counters_test.cpp; these tests exercise the two unhappy contracts:
// EngineObs::stats() must *terminate* against a writer that never goes
// quiescent — taking the torn-but-well-defined cut and saying so via
// consistent=false — and PhaseTiming::sample() must stay well-defined
// when scraped mid-write.  Both run with PFP_OBS on or off: the gate and
// the stats() retry loop are compiled unconditionally; only the
// phase-cell internals are stubbed, which the sample test accounts for.

#include <atomic>
#include <thread>

#include <gtest/gtest.h>

#include "obs/counters.hpp"
#include "obs/engine_obs.hpp"
#include "obs/phase_timing.hpp"
#include "util/phase.hpp"

namespace pfp::obs {
namespace {

// The deterministic fallback case: a writer parked inside its write
// section pins the version odd, so every one of stats()' bounded retries
// loses and the snapshot must come back flagged inconsistent — proving
// the retry loop cannot hang on a stalled writer.
TEST(SnapshotGateStress, StalledWriterForcesInconsistentFallback) {
  EngineObs obs{ObsOptions{}};
  obs.gate().assert_writer();  // the test thread is the unique writer
  obs.gate().begin_write();

  const EngineStats mid = obs.stats();
  EXPECT_FALSE(mid.consistent)
      << "stats() claimed consistency while a write section was open";

  obs.gate().end_write();
  const EngineStats after = obs.stats();
  EXPECT_TRUE(after.consistent);
}

// Live contention: a writer hammers paired cells in lockstep under the
// gate while a reader scrapes.  Every snapshot the reader accepts as
// consistent must show the pairing; inconsistent snapshots are allowed
// (that is the documented fallback) but must still carry sane values.
TEST(SnapshotGateStress, ConsistentSnapshotsAreNeverTorn) {
  EngineObs obs{ObsOptions{}};
  std::atomic<bool> stop{false};

  std::thread writer([&] {
    auto& gate = obs.gate();
    auto& counters = obs.counters();
    gate.assert_writer();
    counters.assert_writer();
    for (std::uint64_t i = 1; !stop.load(std::memory_order_relaxed); ++i) {
      gate.begin_write();
      counters.accesses.set(i);
      counters.misses.set(2 * i);
      gate.end_write();
      if ((i & 0xff) == 0) {
        std::this_thread::yield();  // let the reader through on 1 CPU
      }
    }
  });

  int consistent_reads = 0;
  int fallback_reads = 0;
  for (int i = 0; i < 20000 && consistent_reads < 500; ++i) {
    const EngineStats s = obs.stats();
    if (s.consistent) {
      EXPECT_EQ(s.misses, 2 * s.accesses)
          << "torn pair passed the gate as consistent";
      ++consistent_reads;
    } else {
      // The fallback cut may mix two periods but each cell is still a
      // real published value, never garbage.
      EXPECT_LE(s.accesses, std::uint64_t{40000});
      ++fallback_reads;
      std::this_thread::yield();
    }
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  EXPECT_GT(consistent_reads, 0)
      << "reader never won the seqlock race (fallbacks: "
      << fallback_reads << ")";
}

// PhaseTiming::sample against a live writer: per-cell relaxed atomics
// make each load well-defined, and the sampled totals must stay
// monotonic across scrapes because the writer only ever adds.
TEST(PhaseTimingStress, ConcurrentScrapeSeesMonotonicTotals) {
  util::PhaseCells cells;
  std::atomic<bool> stop{false};

  std::thread writer([&] {
    cells.assert_writer();
    while (!stop.load(std::memory_order_relaxed)) {
      cells.add(util::EnginePhase::kLookup, 5);
      cells.add(util::EnginePhase::kIssue, 7);
      std::this_thread::yield();
    }
  });

  std::uint64_t last_total = 0;
  for (int i = 0; i < 2000; ++i) {
    const PhaseTiming t = PhaseTiming::sample(cells);
    const std::uint64_t total = t.total_count();
    ASSERT_GE(total, last_total) << "sampled counts went backwards";
    last_total = total;
  }
  // On one CPU the writer may not have run yet; yield until it makes
  // progress so the final assertion checks a real concurrent scrape.
  // (With PFP_OBS off the stub never progresses — the loop just spins
  // its bounded yields and the zero branch below takes over.)
  for (int i = 0; kEnabled && last_total == 0 && i < 100000; ++i) {
    std::this_thread::yield();
    last_total = PhaseTiming::sample(cells).total_count();
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();

  if (!kEnabled) {
    // PFP_OBS=OFF stubs the cells: the whole run must sample as zero.
    EXPECT_EQ(last_total, 0u);
    GTEST_SKIP() << "PFP_OBS off: progress assertions not applicable";
  }
  EXPECT_GT(last_total, 0u);
}

}  // namespace
}  // namespace pfp::obs
