#include "obs/trace_ring.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace pfp::obs {
namespace {

TraceEvent access_event(std::uint64_t block, double ts_ms) {
  TraceEvent e;
  e.block = block;
  e.ts_ms = ts_ms;
  e.dur_ms = 1.5;
  e.kind = EventKind::kAccess;
  e.arg = static_cast<std::uint32_t>(EventOutcome::kMiss);
  return e;
}

TEST(TraceRing, ZeroCapacityDisablesRecording) {
  TraceRing ring(0);
  ring.assert_writer();  // the test thread is the unique writer
  EXPECT_FALSE(ring.enabled());
  EXPECT_EQ(ring.capacity(), 0u);
  ring.emit(access_event(1, 0.0));
  EXPECT_EQ(ring.recorded(), 0u);
  EXPECT_EQ(ring.occupancy(), 0u);
  EXPECT_TRUE(ring.events().empty());
}

TEST(TraceRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(TraceRing(1).capacity(), 2u);
  EXPECT_EQ(TraceRing(5).capacity(), 8u);
  EXPECT_EQ(TraceRing(8).capacity(), 8u);
}

TEST(TraceRing, StampsMonotonicSerials) {
  TraceRing ring(4);
  ring.assert_writer();
  for (int i = 0; i < 3; ++i) {
    ring.emit(access_event(static_cast<std::uint64_t>(i), i * 1.0));
  }
  const auto events = ring.events();
  ASSERT_EQ(events.size(), 3u);
  for (std::uint64_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].serial, i);
    EXPECT_EQ(events[i].block, i);
  }
  EXPECT_EQ(ring.recorded(), 3u);
  EXPECT_EQ(ring.dropped(), 0u);
}

TEST(TraceRing, OverwritesOldestWhenFull) {
  TraceRing ring(4);
  ring.assert_writer();
  for (int i = 0; i < 10; ++i) {
    ring.emit(access_event(static_cast<std::uint64_t>(i), i * 1.0));
  }
  EXPECT_EQ(ring.recorded(), 10u);
  EXPECT_EQ(ring.dropped(), 6u);
  EXPECT_EQ(ring.occupancy(), 4u);
  const auto events = ring.events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first: serials 6..9 survive.
  EXPECT_EQ(events.front().serial, 6u);
  EXPECT_EQ(events.back().serial, 9u);
  EXPECT_EQ(events.back().block, 9u);
}

TEST(TraceRing, ClearRestartsSerials) {
  TraceRing ring(4);
  ring.assert_writer();
  ring.emit(access_event(1, 0.0));
  ring.clear();
  EXPECT_EQ(ring.recorded(), 0u);
  EXPECT_TRUE(ring.events().empty());
  ring.emit(access_event(2, 0.0));
  EXPECT_EQ(ring.events().front().serial, 0u);
}

TEST(ChromeTrace, RendersAccessesAsCompleteEvents) {
  TraceRing ring(4);
  ring.assert_writer();
  ring.emit(access_event(7, 2.0));
  TraceEvent issue;
  issue.block = 8;
  issue.ts_ms = 3.0;
  issue.kind = EventKind::kPrefetchIssue;
  issue.arg = 2;
  ring.emit(issue);

  std::ostringstream out;
  const TraceRing* rings[] = {&ring};
  write_chrome_trace(out, rings);
  const std::string json = out.str();

  EXPECT_NE(json.find(R"("displayTimeUnit":"ms")"), std::string::npos);
  EXPECT_NE(json.find(R"("name":"access:miss")"), std::string::npos);
  EXPECT_NE(json.find(R"("ph":"X")"), std::string::npos);
  EXPECT_NE(json.find(R"("name":"prefetch-issue")"), std::string::npos);
  EXPECT_NE(json.find(R"("ph":"i")"), std::string::npos);
  // ms -> us conversion: ts 2.0 ms renders as 2000 us.
  EXPECT_NE(json.find(R"("ts":2000)"), std::string::npos);
}

TEST(ChromeTrace, MultipleRingsBecomeSeparatePids) {
  TraceRing a(2);
  TraceRing b(2);
  a.assert_writer();
  b.assert_writer();
  a.emit(access_event(1, 0.0));
  b.emit(access_event(2, 0.0));
  std::ostringstream out;
  const TraceRing* rings[] = {&a, &b};
  write_chrome_trace(out, rings);
  EXPECT_NE(out.str().find(R"("pid":0)"), std::string::npos);
  EXPECT_NE(out.str().find(R"("pid":1)"), std::string::npos);
}

TEST(ChromeTrace, NullAndEmptyRingsProduceValidEmptyDocument) {
  TraceRing empty(2);
  std::ostringstream out;
  const TraceRing* rings[] = {nullptr, &empty};
  write_chrome_trace(out, rings);
  EXPECT_EQ(out.str(), "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}\n");
}

}  // namespace
}  // namespace pfp::obs
