#include "obs/prometheus.hpp"

#include <gtest/gtest.h>

#include <set>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "obs/engine_obs.hpp"
#include "util/phase.hpp"

namespace pfp::obs {
namespace {

EngineStats sample_stats() {
  EngineStats s;
  s.accesses = 100;
  s.demand_hits = 60;
  s.prefetch_hits = 25;
  s.misses = 15;
  s.prefetches_issued = 40;
  s.resident_blocks = 512;
  s.elapsed_virtual_us = 2'500'000;  // 2.5 virtual seconds
  return s;
}

TEST(Prometheus, RendersHelpTypeAndValueLines) {
  std::ostringstream out;
  render_prometheus(out, sample_stats());
  const std::string text = out.str();
  EXPECT_NE(text.find("# HELP pfp_accesses_total"), std::string::npos);
  EXPECT_NE(text.find("# TYPE pfp_accesses_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("pfp_accesses_total 100\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE pfp_resident_blocks gauge"),
            std::string::npos);
  EXPECT_NE(text.find("pfp_resident_blocks 512\n"), std::string::npos);
  EXPECT_NE(text.find("pfp_elapsed_virtual_seconds 2.5\n"),
            std::string::npos);
  EXPECT_NE(text.find("pfp_stats_consistent 1\n"), std::string::npos);
}

TEST(Prometheus, BaseLabelsAttachToEverySample) {
  std::ostringstream out;
  const Label labels[] = {{"workload", "cello"}, {"shard", "3"}};
  render_prometheus(out, sample_stats(), labels);
  EXPECT_NE(out.str().find(
                "pfp_accesses_total{workload=\"cello\",shard=\"3\"} 100"),
            std::string::npos);
}

TEST(Prometheus, LabelValuesAreEscaped) {
  EXPECT_EQ(escape_label_value("plain"), "plain");
  EXPECT_EQ(escape_label_value("a\"b"), "a\\\"b");
  EXPECT_EQ(escape_label_value("a\\b"), "a\\\\b");
  EXPECT_EQ(escape_label_value("a\nb"), "a\\nb");

  std::ostringstream out;
  const Label labels[] = {{"trace", "we\"ird\\path"}};
  render_prometheus(out, sample_stats(), labels);
  EXPECT_NE(out.str().find("trace=\"we\\\"ird\\\\path\""),
            std::string::npos);
}

TEST(Prometheus, HistogramBucketsAreCumulativeWithUniqueBounds) {
  EngineStats s = sample_stats();
  const auto p = static_cast<std::size_t>(util::EnginePhase::kLookup);
  s.phases.count[p] = 6;
  s.phases.total_ns[p] = 1000;
  s.phases.buckets[p][0] = 1;
  s.phases.buckets[p][5] = 2;
  s.phases.buckets[p][9] = 3;

  std::ostringstream out;
  render_prometheus(out, s);
  const std::string text = out.str();

  // Every lookup _bucket row: le must be unique (regression: fixed-point
  // formatting once collapsed all sub-microsecond bounds to "0.000000")
  // and the counts cumulative, ending at the +Inf row == _count.
  std::set<std::string> les;
  std::uint64_t last_cumulative = 0;
  std::size_t rows = 0;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.find("pfp_phase_latency_seconds_bucket{phase=\"lookup\"") ==
        std::string::npos) {
      continue;
    }
    ++rows;
    const auto le_start = line.find("le=\"") + 4;
    const auto le_end = line.find('"', le_start);
    EXPECT_TRUE(les.insert(line.substr(le_start, le_end - le_start)).second)
        << "duplicate le bound: " << line;
    const auto value =
        static_cast<std::uint64_t>(std::stoull(line.substr(le_end + 2)));
    EXPECT_GE(value, last_cumulative) << line;
    last_cumulative = value;
  }
  EXPECT_GT(rows, 2u);
  EXPECT_EQ(last_cumulative, 6u);  // +Inf row carries the full count
  EXPECT_NE(
      text.find("pfp_phase_latency_seconds_count{phase=\"lookup\"} 6"),
      std::string::npos);
}

TEST(Prometheus, MergedViewReportsShardsAndConsistency) {
  EngineStats a = sample_stats();
  EngineStats b = sample_stats();
  b.consistent = false;
  a.merge(b);
  EXPECT_EQ(a.shards, 2u);
  EXPECT_EQ(a.accesses, 200u);
  EXPECT_FALSE(a.consistent);

  std::ostringstream out;
  render_prometheus(out, a);
  EXPECT_NE(out.str().find("pfp_shards 2\n"), std::string::npos);
  EXPECT_NE(out.str().find("pfp_stats_consistent 0\n"), std::string::npos);
}

std::size_t count_occurrences(const std::string& text,
                              const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t at = text.find(needle); at != std::string::npos;
       at = text.find(needle, at + needle.size())) {
    ++count;
  }
  return count;
}

TEST(Prometheus, MultiViewEmitsEachFamilyOnceWithOneSamplePerView) {
  std::vector<LabeledStats> views;
  views.push_back(LabeledStats{{Label{"tenant", "alpha"}}, sample_stats()});
  EngineStats beta = sample_stats();
  beta.accesses = 7;
  views.push_back(LabeledStats{{Label{"tenant", "beta"}}, beta});

  std::ostringstream out;
  render_prometheus(out, std::span<const LabeledStats>(views));
  const std::string text = out.str();

  // The exposition format allows one HELP/TYPE block per family per
  // scrape; both views' samples must share it.
  EXPECT_EQ(count_occurrences(text, "# HELP pfp_accesses_total"), 1u);
  EXPECT_EQ(count_occurrences(text, "# TYPE pfp_accesses_total"), 1u);
  EXPECT_NE(text.find("pfp_accesses_total{tenant=\"alpha\"} 100\n"),
            std::string::npos);
  EXPECT_NE(text.find("pfp_accesses_total{tenant=\"beta\"} 7\n"),
            std::string::npos);
  EXPECT_EQ(count_occurrences(text, "# HELP pfp_phase_latency_seconds"),
            1u);
}

TEST(Prometheus, SingleViewDelegatesToMultiViewByteIdentically) {
  const Label labels[] = {{"tenant", "x"}};
  std::ostringstream single;
  render_prometheus(single, sample_stats(), labels);

  const LabeledStats view{{Label{"tenant", "x"}}, sample_stats()};
  std::ostringstream multi;
  render_prometheus(multi, std::span<const LabeledStats>(&view, 1));

  EXPECT_EQ(single.str(), multi.str());
}

TEST(EngineStatsMerge, ElapsedTakesMaxCountersSum) {
  EngineStats a;
  a.elapsed_virtual_us = 10;
  a.misses = 1;
  a.queue_backpressure_waits = 5;
  EngineStats b;
  b.elapsed_virtual_us = 30;
  b.misses = 2;
  b.queue_backpressure_waits = 7;
  a.merge(b);
  EXPECT_EQ(a.elapsed_virtual_us, 30u);
  EXPECT_EQ(a.misses, 3u);
  EXPECT_EQ(a.queue_backpressure_waits, 12u);
}

}  // namespace
}  // namespace pfp::obs
