#include "obs/phase_timing.hpp"

#include <gtest/gtest.h>

#include "util/phase.hpp"

namespace pfp::obs {
namespace {

using util::EnginePhase;

TEST(PhaseTiming, DefaultIsEmpty) {
  PhaseTiming t;
  EXPECT_EQ(t.total_count(), 0u);
  EXPECT_DOUBLE_EQ(t.mean_ns(EnginePhase::kLookup), 0.0);
  EXPECT_EQ(t.histogram(EnginePhase::kLookup).total(), 0u);
}

#ifdef PFP_OBS

TEST(PhaseTiming, SampleCopiesLiveCells) {
  util::PhaseCells cells;
  cells.assert_writer();  // the test thread is the unique writer
  cells.add(EnginePhase::kLookup, 0);     // bucket 0
  cells.add(EnginePhase::kLookup, 100);   // bit_width(100) == 7
  cells.add(EnginePhase::kIssue, 1);      // bucket 1

  const PhaseTiming t = PhaseTiming::sample(cells);
  const auto lookup = static_cast<std::size_t>(EnginePhase::kLookup);
  const auto issue = static_cast<std::size_t>(EnginePhase::kIssue);
  EXPECT_EQ(t.count[lookup], 2u);
  EXPECT_EQ(t.total_ns[lookup], 100u);
  EXPECT_EQ(t.buckets[lookup][0], 1u);
  EXPECT_EQ(t.buckets[lookup][7], 1u);
  EXPECT_EQ(t.count[issue], 1u);
  EXPECT_EQ(t.buckets[issue][1], 1u);
  EXPECT_EQ(t.total_count(), 3u);
  EXPECT_DOUBLE_EQ(t.mean_ns(EnginePhase::kLookup), 50.0);
}

TEST(PhaseTiming, OverlongSampleClampsToOverflowBucket) {
  util::PhaseCells cells;
  cells.assert_writer();
  // ~4.6e18 ns: bit_width is 63, beyond any realistic phase but the
  // clamp keeps it inside the fixed bucket array.
  cells.add(EnginePhase::kEviction, std::uint64_t{1} << 62);
  const PhaseTiming t = PhaseTiming::sample(cells);
  const auto p = static_cast<std::size_t>(EnginePhase::kEviction);
  EXPECT_EQ(t.buckets[p][util::kPhaseBucketCount - 1], 1u);
  EXPECT_EQ(t.count[p], 1u);
}

TEST(PhaseTiming, MergeSumsEveryCell) {
  util::PhaseCells a;
  util::PhaseCells b;
  a.assert_writer();
  b.assert_writer();
  a.add(EnginePhase::kEnumeration, 10);
  b.add(EnginePhase::kEnumeration, 20);
  b.add(EnginePhase::kCostBenefit, 5);

  PhaseTiming merged = PhaseTiming::sample(a);
  merged.merge(PhaseTiming::sample(b));
  const auto en = static_cast<std::size_t>(EnginePhase::kEnumeration);
  const auto cb = static_cast<std::size_t>(EnginePhase::kCostBenefit);
  EXPECT_EQ(merged.count[en], 2u);
  EXPECT_EQ(merged.total_ns[en], 30u);
  EXPECT_EQ(merged.count[cb], 1u);
  EXPECT_EQ(merged.total_count(), 3u);
}

TEST(PhaseTiming, HistogramRoundTripsBuckets) {
  util::PhaseCells cells;
  cells.assert_writer();
  cells.add(EnginePhase::kLookup, 5);  // [4, 7] -> log2 bucket 3
  cells.add(EnginePhase::kLookup, 6);
  const PhaseTiming t = PhaseTiming::sample(cells);
  const auto h = t.histogram(EnginePhase::kLookup);
  EXPECT_EQ(h.total(), 2u);
  EXPECT_EQ(h.bucket_count(3), 2u);
}

TEST(PhaseTiming, SummaryNamesSampledPhases) {
  util::PhaseCells cells;
  cells.assert_writer();
  cells.add(EnginePhase::kCostBenefit, 64);
  const auto text = PhaseTiming::sample(cells).summary();
  EXPECT_NE(text.find("cost_benefit"), std::string::npos);
  // Unsampled phases are omitted to keep logs tight.
  EXPECT_EQ(text.find("predictor_update"), std::string::npos);
}

TEST(PhaseStopwatch, ChargesElapsedToMarkedPhase) {
  util::PhaseCells cells;
  util::PhaseStopwatch clock;
  clock.arm(&cells);
  EXPECT_TRUE(clock.armed());
  clock.start();
  clock.mark(EnginePhase::kLookup);
  clock.mark(EnginePhase::kIssue);
  EXPECT_EQ(cells.count(static_cast<std::size_t>(EnginePhase::kLookup)), 1u);
  EXPECT_EQ(cells.count(static_cast<std::size_t>(EnginePhase::kIssue)), 1u);
}

#endif  // PFP_OBS

TEST(PhaseStopwatch, DisarmedMarksAreNoOps) {
  util::PhaseStopwatch clock;
  EXPECT_FALSE(clock.armed());
  clock.start();
  clock.mark(EnginePhase::kLookup);  // must not crash
  util::phase_mark(nullptr, EnginePhase::kIssue);
  util::phase_mark(&clock, EnginePhase::kIssue);
}

}  // namespace
}  // namespace pfp::obs
