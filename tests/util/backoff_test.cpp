#include "util/backoff.hpp"

#include <gtest/gtest.h>

#include <cstdint>

namespace pfp::util {
namespace {

// The escalation contract the sharded engine's backpressure fix relies
// on: a stalled producer (or worker) spins only a bounded number of
// rounds, after which EVERY wait cedes the core via yield — it can
// never burn a core unbounded (the regression ShardedEngine saw on the
// 1-CPU container).
TEST(Backoff, SpinsBoundedRoundsThenAlwaysYields) {
  Backoff backoff;
  // Spin tier: exponents 0..kMaxSpinExponent return false (no yield).
  for (std::uint32_t i = 0; i <= Backoff::kMaxSpinExponent; ++i) {
    EXPECT_FALSE(backoff.yielding());
    EXPECT_FALSE(backoff.wait()) << "spin round " << i << " yielded early";
  }
  // Yield tier: from here on, every single wait yields.
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(backoff.yielding());
    EXPECT_TRUE(backoff.wait()) << "yield-tier wait " << i << " spun";
  }
}

TEST(Backoff, RoundCounterSaturatesAtYieldTier) {
  Backoff backoff;
  for (std::uint32_t i = 0; i <= Backoff::kMaxSpinExponent; ++i) {
    EXPECT_EQ(backoff.round(), i);
    backoff.wait();
  }
  const std::uint32_t at_yield = backoff.round();
  backoff.wait();
  backoff.wait();
  EXPECT_EQ(backoff.round(), at_yield);  // no further escalation state
}

TEST(Backoff, ResetReturnsToCheapTier) {
  Backoff backoff;
  while (!backoff.yielding()) {
    backoff.wait();
  }
  backoff.reset();
  EXPECT_FALSE(backoff.yielding());
  EXPECT_EQ(backoff.round(), 0u);
  EXPECT_FALSE(backoff.wait());  // first post-reset wait spins again
}

TEST(Backoff, CpuRelaxIsCallable) {
  // Smoke: the pause/yield intrinsic must compile and execute on this
  // target (the #if ladder in backoff.hpp covers x86/ARM/other).
  cpu_relax();
}

}  // namespace
}  // namespace pfp::util
