#include "util/small_vector.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

namespace pfp::util {
namespace {

TEST(SmallVector, InlineUntilCapacity) {
  SmallVector<std::uint32_t, 4> v;
  EXPECT_TRUE(v.empty());
  for (std::uint32_t i = 0; i < 4; ++i) {
    v.push_back(i);
    EXPECT_FALSE(v.on_heap());
  }
  EXPECT_EQ(v.size(), 4u);
  v.push_back(4);
  EXPECT_TRUE(v.on_heap());
  ASSERT_EQ(v.size(), 5u);
  for (std::uint32_t i = 0; i < 5; ++i) {
    EXPECT_EQ(v[i], i);
  }
}

TEST(SmallVector, EraseShiftsTailAndPreservesOrder) {
  SmallVector<std::uint32_t, 4> v;
  for (std::uint32_t i = 0; i < 7; ++i) {
    v.push_back(i);
  }
  v.erase(v.begin() + 2);
  const std::uint32_t expected[] = {0, 1, 3, 4, 5, 6};
  ASSERT_EQ(v.size(), 6u);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(v[i], expected[i]);
  }
  v.erase(v.begin() + 5);  // last element
  EXPECT_EQ(v.size(), 5u);
  EXPECT_EQ(v.back(), 5u);
}

TEST(SmallVector, ReverseIteration) {
  SmallVector<std::uint32_t, 4> v;
  for (std::uint32_t i = 0; i < 6; ++i) {
    v.push_back(i);
  }
  std::vector<std::uint32_t> reversed(v.rbegin(), v.rend());
  ASSERT_EQ(reversed.size(), 6u);
  for (std::uint32_t i = 0; i < 6; ++i) {
    EXPECT_EQ(reversed[i], 5 - i);
  }
}

TEST(SmallVector, CopyAndMoveAcrossSpillBoundary) {
  for (const std::uint32_t count : {2u, 4u, 9u}) {
    SmallVector<std::uint32_t, 4> original;
    for (std::uint32_t i = 0; i < count; ++i) {
      original.push_back(i * 3);
    }
    SmallVector<std::uint32_t, 4> copy(original);
    ASSERT_EQ(copy.size(), count);
    for (std::uint32_t i = 0; i < count; ++i) {
      EXPECT_EQ(copy[i], i * 3);
    }

    SmallVector<std::uint32_t, 4> moved(std::move(original));
    ASSERT_EQ(moved.size(), count);
    EXPECT_TRUE(original.empty());  // NOLINT(bugprone-use-after-move)
    for (std::uint32_t i = 0; i < count; ++i) {
      EXPECT_EQ(moved[i], i * 3);
    }

    SmallVector<std::uint32_t, 4> assigned;
    assigned.push_back(999);
    assigned = copy;
    ASSERT_EQ(assigned.size(), count);
    for (std::uint32_t i = 0; i < count; ++i) {
      EXPECT_EQ(assigned[i], i * 3);
    }
  }
}

TEST(SmallVector, ClearAndRefill) {
  SmallVector<std::uint32_t, 4> v;
  for (std::uint32_t i = 0; i < 20; ++i) {
    v.push_back(i);
  }
  v.clear();
  EXPECT_TRUE(v.empty());
  v.push_back(42);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0], 42u);
}

TEST(SmallVector, MatchesStdVectorUnderMixedOps) {
  SmallVector<std::uint32_t, 4> small;
  std::vector<std::uint32_t> reference;
  std::uint32_t next = 0;
  // Deterministic push/pop/erase mix crossing the spill boundary often.
  for (int round = 0; round < 200; ++round) {
    const int action = round % 5;
    if (action < 3) {
      small.push_back(next);
      reference.push_back(next);
      ++next;
    } else if (action == 3 && !reference.empty()) {
      small.pop_back();
      reference.pop_back();
    } else if (!reference.empty()) {
      const std::size_t at = static_cast<std::size_t>(round) % reference.size();
      small.erase(small.begin() + static_cast<std::ptrdiff_t>(at));
      reference.erase(reference.begin() + static_cast<std::ptrdiff_t>(at));
    }
    ASSERT_EQ(small.size(), reference.size()) << "round " << round;
    for (std::size_t i = 0; i < reference.size(); ++i) {
      ASSERT_EQ(small[i], reference[i]) << "round " << round;
    }
  }
}

}  // namespace
}  // namespace pfp::util
