#include "util/options.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace pfp::util {
namespace {

std::vector<const char*> argv_of(std::initializer_list<const char*> args) {
  return std::vector<const char*>(args);
}

TEST(Options, DefaultsApplyWhenUnset) {
  Options opts;
  opts.add("refs", "1000", "reference count");
  const auto argv = argv_of({"prog"});
  ASSERT_TRUE(opts.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(opts.u64("refs"), 1000u);
}

TEST(Options, SpaceSeparatedValue) {
  Options opts;
  opts.add("refs", "1000", "");
  const auto argv = argv_of({"prog", "--refs", "42"});
  ASSERT_TRUE(opts.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(opts.u64("refs"), 42u);
}

TEST(Options, EqualsSeparatedValue) {
  Options opts;
  opts.add("rate", "0.5", "");
  const auto argv = argv_of({"prog", "--rate=0.25"});
  ASSERT_TRUE(opts.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_DOUBLE_EQ(opts.real("rate"), 0.25);
}

TEST(Options, FlagsDefaultFalseAndSet) {
  Options opts;
  opts.add_flag("verbose", "");
  auto argv = argv_of({"prog"});
  ASSERT_TRUE(opts.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_FALSE(opts.flag("verbose"));
  argv = argv_of({"prog", "--verbose"});
  ASSERT_TRUE(opts.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_TRUE(opts.flag("verbose"));
}

TEST(Options, FlagWithExplicitValue) {
  Options opts;
  opts.add_flag("verbose", "");
  const auto argv = argv_of({"prog", "--verbose=false"});
  ASSERT_TRUE(opts.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_FALSE(opts.flag("verbose"));
}

TEST(Options, UnknownOptionFailsParse) {
  Options opts;
  opts.add("refs", "1", "");
  const auto argv = argv_of({"prog", "--bogus", "3"});
  EXPECT_FALSE(opts.parse(static_cast<int>(argv.size()), argv.data()));
}

TEST(Options, MissingValueFailsParse) {
  Options opts;
  opts.add("refs", "1", "");
  const auto argv = argv_of({"prog", "--refs"});
  EXPECT_FALSE(opts.parse(static_cast<int>(argv.size()), argv.data()));
}

TEST(Options, HelpReturnsFalse) {
  Options opts;
  opts.add("refs", "1", "count");
  const auto argv = argv_of({"prog", "--help"});
  EXPECT_FALSE(opts.parse(static_cast<int>(argv.size()), argv.data()));
}

TEST(Options, CollectsPositionals) {
  Options opts;
  opts.add("refs", "1", "");
  const auto argv = argv_of({"prog", "input.txt", "--refs", "2", "out.txt"});
  ASSERT_TRUE(opts.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(opts.positional(),
            (std::vector<std::string>{"input.txt", "out.txt"}));
}

TEST(Options, UsageMentionsOptionsAndDefaults) {
  Options opts;
  opts.add("cache", "1024", "cache size in blocks");
  const auto text = opts.usage("prog");
  EXPECT_NE(text.find("--cache"), std::string::npos);
  EXPECT_NE(text.find("1024"), std::string::npos);
  EXPECT_NE(text.find("cache size in blocks"), std::string::npos);
}

TEST(Options, ReparseResetsState) {
  Options opts;
  opts.add("refs", "1", "");
  auto argv = argv_of({"prog", "--refs", "5"});
  ASSERT_TRUE(opts.parse(static_cast<int>(argv.size()), argv.data()));
  argv = argv_of({"prog"});
  ASSERT_TRUE(opts.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(opts.u64("refs"), 1u);  // back to default
  EXPECT_TRUE(opts.positional().empty());
}

}  // namespace
}  // namespace pfp::util
