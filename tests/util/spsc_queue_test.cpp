#include "util/spsc_queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <span>
#include <thread>
#include <vector>

namespace pfp::util {
namespace {

TEST(SpscQueue, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscQueue<int>(1).capacity(), 2u);
  EXPECT_EQ(SpscQueue<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscQueue<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscQueue<int>(100).capacity(), 128u);
  EXPECT_EQ(SpscQueue<int>(4096).capacity(), 4096u);
}

TEST(SpscQueue, PopOnEmptyFails) {
  SpscQueue<int> q(4);
  // Single-threaded test: this thread plays both queue roles.
  q.assert_producer();
  q.assert_consumer();
  int v = -1;
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.try_pop(v));
  EXPECT_EQ(v, -1);
}

TEST(SpscQueue, PushOnFullFails) {
  SpscQueue<int> q(4);
  q.assert_producer();
  q.assert_consumer();
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(q.try_push(i));
  }
  EXPECT_FALSE(q.try_push(99));
  EXPECT_EQ(q.size(), 4u);
}

TEST(SpscQueue, FifoOrder) {
  SpscQueue<int> q(8);
  q.assert_producer();
  q.assert_consumer();
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(q.try_push(i));
  }
  for (int i = 0; i < 8; ++i) {
    int v = -1;
    ASSERT_TRUE(q.try_pop(v));
    EXPECT_EQ(v, i);
  }
  EXPECT_TRUE(q.empty());
}

TEST(SpscQueue, IndicesWrapAroundTheRing) {
  SpscQueue<int> q(4);
  q.assert_producer();
  q.assert_consumer();
  // Many times the capacity, alternating push/pop, so head and tail wrap
  // the ring repeatedly while staying partially full.
  int next_in = 0;
  int next_out = 0;
  ASSERT_TRUE(q.try_push(next_in++));
  ASSERT_TRUE(q.try_push(next_in++));
  for (int round = 0; round < 1000; ++round) {
    ASSERT_TRUE(q.try_push(next_in++));
    int v = -1;
    ASSERT_TRUE(q.try_pop(v));
    ASSERT_EQ(v, next_out++);
  }
  EXPECT_EQ(q.size(), 2u);
}

TEST(SpscQueue, TwoThreadTransferDeliversEverythingInOrder) {
  SpscQueue<std::uint64_t> q(64);
  constexpr std::uint64_t kCount = 200'000;

  std::vector<std::uint64_t> received;
  received.reserve(kCount);
  std::thread consumer([&] {
    q.assert_consumer();
    std::uint64_t v = 0;
    while (received.size() < kCount) {
      if (q.try_pop(v)) {
        received.push_back(v);
      } else {
        std::this_thread::yield();
      }
    }
  });

  q.assert_producer();
  for (std::uint64_t i = 0; i < kCount; ++i) {
    while (!q.try_push(i)) {
      std::this_thread::yield();
    }
  }
  consumer.join();

  ASSERT_EQ(received.size(), kCount);
  for (std::uint64_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(received[i], i) << "reordered at index " << i;
  }
}

// Regression for a real ordering defect: size() used to load tail before
// head, so a pop landing between the two loads could make head > tail
// and the unsigned difference wrap to ~2^64.  With the fixed order (head
// first) the difference can transiently over- or under-count by the
// in-flight elements but can never go negative, so any astronomically
// large value proves the old bug.
TEST(SpscQueue, SizeNeverUnderflowsUnderConcurrentPop) {
  SpscQueue<std::uint64_t> q(16);
  constexpr std::uint64_t kCount = 50'000;
  std::atomic<bool> done{false};

  std::thread consumer([&] {
    q.assert_consumer();
    std::uint64_t v = 0;
    std::uint64_t popped = 0;
    while (popped < kCount) {
      if (q.try_pop(v)) {
        ++popped;
      } else {
        std::this_thread::yield();
      }
    }
    done.store(true, std::memory_order_release);
  });

  std::thread sampler([&] {
    while (!done.load(std::memory_order_acquire)) {
      // A sane size is bounded by capacity plus a small in-flight slack;
      // the underflow produced values near 2^64.
      ASSERT_LT(q.size(), std::uint64_t{1} << 32);
      std::this_thread::yield();  // don't starve the transfer on 1 CPU
    }
  });

  q.assert_producer();
  for (std::uint64_t i = 0; i < kCount; ++i) {
    while (!q.try_push(i)) {
      std::this_thread::yield();
    }
  }
  consumer.join();
  sampler.join();
}

TEST(SpscQueue, BulkPushPopRoundTrip) {
  SpscQueue<int> q(16);
  q.assert_producer();
  q.assert_consumer();
  std::vector<int> in(10);
  std::iota(in.begin(), in.end(), 0);
  EXPECT_EQ(q.try_push_n(in), 10u);
  EXPECT_EQ(q.size(), 10u);
  std::vector<int> out(16, -1);
  EXPECT_EQ(q.try_pop_n(out.data(), out.size()), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(out[static_cast<std::size_t>(i)], i);
  }
  EXPECT_TRUE(q.empty());
}

TEST(SpscQueue, BulkOpsOnEmptyInputsAreNoops) {
  SpscQueue<int> q(4);
  q.assert_producer();
  q.assert_consumer();
  EXPECT_EQ(q.try_push_n(std::span<const int>{}), 0u);
  int out = -1;
  EXPECT_EQ(q.try_pop_n(&out, 0), 0u);
  EXPECT_EQ(q.try_pop_n(&out, 4), 0u);  // empty ring
  EXPECT_EQ(out, -1);
}

TEST(SpscQueue, BulkPushAcceptsPartialRunWhenNearlyFull) {
  SpscQueue<int> q(8);
  q.assert_producer();
  q.assert_consumer();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(q.try_push(i));
  }
  // 3 slots free; a 6-element run is accepted front-first, partially.
  const std::vector<int> in{5, 6, 7, 8, 9, 10};
  EXPECT_EQ(q.try_push_n(in), 3u);
  EXPECT_EQ(q.size(), 8u);
  EXPECT_EQ(q.try_push_n(in), 0u);  // now genuinely full
  for (int i = 0; i < 8; ++i) {
    int v = -1;
    ASSERT_TRUE(q.try_pop(v));
    EXPECT_EQ(v, i);  // FIFO preserved across the partial bulk push
  }
}

TEST(SpscQueue, BulkPopReturnsAtMostWhatIsAvailable) {
  SpscQueue<int> q(8);
  q.assert_producer();
  q.assert_consumer();
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(q.try_push(i));
  }
  std::vector<int> out(8, -1);
  EXPECT_EQ(q.try_pop_n(out.data(), 8), 3u);
  EXPECT_EQ(out[0], 0);
  EXPECT_EQ(out[1], 1);
  EXPECT_EQ(out[2], 2);
  EXPECT_EQ(out[3], -1);
}

// Property test for the wrap seam: drive the ring through every head
// offset with mixed-size bulk pushes/pops and verify the stream comes
// out intact.  Every iteration whose start offset + run length crosses
// capacity() exercises the two-segment copy in both directions.
TEST(SpscQueue, BulkOpsPreserveFifoAcrossWrapSeam) {
  SpscQueue<std::uint64_t> q(16);
  q.assert_producer();
  q.assert_consumer();
  std::uint64_t next_in = 0;
  std::uint64_t next_out = 0;
  std::vector<std::uint64_t> chunk;
  std::vector<std::uint64_t> out(16);
  // Varying run lengths 1..13 against capacity 16 hit every alignment of
  // the seam over 500 rounds.
  for (int round = 0; round < 500; ++round) {
    const std::size_t len = 1 + static_cast<std::size_t>(round) % 13;
    chunk.clear();
    for (std::size_t i = 0; i < len; ++i) {
      chunk.push_back(next_in++);
    }
    std::span<const std::uint64_t> rest(chunk);
    while (!rest.empty()) {
      const std::size_t accepted = q.try_push_n(rest);
      if (accepted == 0) {
        const std::size_t popped = q.try_pop_n(out.data(), out.size());
        ASSERT_GT(popped, 0u);
        for (std::size_t i = 0; i < popped; ++i) {
          ASSERT_EQ(out[i], next_out++);
        }
        continue;
      }
      rest = rest.subspan(accepted);
    }
  }
  for (;;) {
    const std::size_t popped = q.try_pop_n(out.data(), out.size());
    if (popped == 0) {
      break;
    }
    for (std::size_t i = 0; i < popped; ++i) {
      ASSERT_EQ(out[i], next_out++);
    }
  }
  EXPECT_EQ(next_out, next_in);
  EXPECT_TRUE(q.empty());
}

// Two-thread bulk transfer: producer pushes in bulk runs, consumer
// drains in bulk runs, contents must arrive complete and in order.
// Doubles as the TSan coverage for the single release/acquire pair the
// bulk ops publish a whole run under (CI runs this file under
// -fsanitize=thread via the SpscQueue filter).
TEST(SpscQueue, TwoThreadBulkTransferDeliversEverythingInOrder) {
  SpscQueue<std::uint64_t> q(64);
  constexpr std::uint64_t kCount = 200'000;

  std::vector<std::uint64_t> received;
  received.reserve(kCount);
  std::thread consumer([&] {
    q.assert_consumer();
    std::uint64_t buf[48];
    while (received.size() < kCount) {
      const std::size_t n = q.try_pop_n(buf, 48);
      if (n == 0) {
        std::this_thread::yield();
        continue;
      }
      received.insert(received.end(), buf, buf + n);
    }
  });

  q.assert_producer();
  std::vector<std::uint64_t> chunk;
  std::uint64_t next = 0;
  while (next < kCount) {
    const std::size_t len =
        static_cast<std::size_t>(1 + next % 37);  // mixed run sizes
    chunk.clear();
    for (std::size_t i = 0; i < len && next < kCount; ++i) {
      chunk.push_back(next++);
    }
    std::span<const std::uint64_t> rest(chunk);
    while (!rest.empty()) {
      const std::size_t accepted = q.try_push_n(rest);
      if (accepted == 0) {
        std::this_thread::yield();
        continue;
      }
      rest = rest.subspan(accepted);
    }
  }
  consumer.join();

  ASSERT_EQ(received.size(), kCount);
  for (std::uint64_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(received[i], i) << "reordered at index " << i;
  }
}

// size() monotonicity/sanity under concurrent bulk pops: same contract
// as SizeNeverUnderflowsUnderConcurrentPop, but with the consumer
// draining whole runs so head advances by large strides between the
// sampler's two loads.
TEST(SpscQueue, SizeNeverUnderflowsUnderConcurrentBulkPop) {
  SpscQueue<std::uint64_t> q(16);
  constexpr std::uint64_t kCount = 50'000;
  std::atomic<bool> done{false};

  std::thread consumer([&] {
    q.assert_consumer();
    std::uint64_t buf[16];
    std::uint64_t popped = 0;
    while (popped < kCount) {
      const std::size_t n = q.try_pop_n(buf, 16);
      if (n == 0) {
        std::this_thread::yield();
      } else {
        popped += n;
      }
    }
    done.store(true, std::memory_order_release);
  });

  std::thread sampler([&] {
    while (!done.load(std::memory_order_acquire)) {
      ASSERT_LT(q.size(), std::uint64_t{1} << 32);
      std::this_thread::yield();  // don't starve the transfer on 1 CPU
    }
  });

  q.assert_producer();
  std::vector<std::uint64_t> chunk;
  std::uint64_t next = 0;
  while (next < kCount) {
    chunk.clear();
    for (std::size_t i = 0; i < 8 && next < kCount; ++i) {
      chunk.push_back(next++);
    }
    std::span<const std::uint64_t> rest(chunk);
    while (!rest.empty()) {
      const std::size_t accepted = q.try_push_n(rest);
      if (accepted == 0) {
        std::this_thread::yield();
        continue;
      }
      rest = rest.subspan(accepted);
    }
  }
  consumer.join();
  sampler.join();
}

}  // namespace
}  // namespace pfp::util
