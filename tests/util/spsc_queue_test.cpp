#include "util/spsc_queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

namespace pfp::util {
namespace {

TEST(SpscQueue, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscQueue<int>(1).capacity(), 2u);
  EXPECT_EQ(SpscQueue<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscQueue<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscQueue<int>(100).capacity(), 128u);
  EXPECT_EQ(SpscQueue<int>(4096).capacity(), 4096u);
}

TEST(SpscQueue, PopOnEmptyFails) {
  SpscQueue<int> q(4);
  // Single-threaded test: this thread plays both queue roles.
  q.assert_producer();
  q.assert_consumer();
  int v = -1;
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.try_pop(v));
  EXPECT_EQ(v, -1);
}

TEST(SpscQueue, PushOnFullFails) {
  SpscQueue<int> q(4);
  q.assert_producer();
  q.assert_consumer();
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(q.try_push(i));
  }
  EXPECT_FALSE(q.try_push(99));
  EXPECT_EQ(q.size(), 4u);
}

TEST(SpscQueue, FifoOrder) {
  SpscQueue<int> q(8);
  q.assert_producer();
  q.assert_consumer();
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(q.try_push(i));
  }
  for (int i = 0; i < 8; ++i) {
    int v = -1;
    ASSERT_TRUE(q.try_pop(v));
    EXPECT_EQ(v, i);
  }
  EXPECT_TRUE(q.empty());
}

TEST(SpscQueue, IndicesWrapAroundTheRing) {
  SpscQueue<int> q(4);
  q.assert_producer();
  q.assert_consumer();
  // Many times the capacity, alternating push/pop, so head and tail wrap
  // the ring repeatedly while staying partially full.
  int next_in = 0;
  int next_out = 0;
  ASSERT_TRUE(q.try_push(next_in++));
  ASSERT_TRUE(q.try_push(next_in++));
  for (int round = 0; round < 1000; ++round) {
    ASSERT_TRUE(q.try_push(next_in++));
    int v = -1;
    ASSERT_TRUE(q.try_pop(v));
    ASSERT_EQ(v, next_out++);
  }
  EXPECT_EQ(q.size(), 2u);
}

TEST(SpscQueue, TwoThreadTransferDeliversEverythingInOrder) {
  SpscQueue<std::uint64_t> q(64);
  constexpr std::uint64_t kCount = 200'000;

  std::vector<std::uint64_t> received;
  received.reserve(kCount);
  std::thread consumer([&] {
    q.assert_consumer();
    std::uint64_t v = 0;
    while (received.size() < kCount) {
      if (q.try_pop(v)) {
        received.push_back(v);
      } else {
        std::this_thread::yield();
      }
    }
  });

  q.assert_producer();
  for (std::uint64_t i = 0; i < kCount; ++i) {
    while (!q.try_push(i)) {
      std::this_thread::yield();
    }
  }
  consumer.join();

  ASSERT_EQ(received.size(), kCount);
  for (std::uint64_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(received[i], i) << "reordered at index " << i;
  }
}

// Regression for a real ordering defect: size() used to load tail before
// head, so a pop landing between the two loads could make head > tail
// and the unsigned difference wrap to ~2^64.  With the fixed order (head
// first) the difference can transiently over- or under-count by the
// in-flight elements but can never go negative, so any astronomically
// large value proves the old bug.
TEST(SpscQueue, SizeNeverUnderflowsUnderConcurrentPop) {
  SpscQueue<std::uint64_t> q(16);
  constexpr std::uint64_t kCount = 50'000;
  std::atomic<bool> done{false};

  std::thread consumer([&] {
    q.assert_consumer();
    std::uint64_t v = 0;
    std::uint64_t popped = 0;
    while (popped < kCount) {
      if (q.try_pop(v)) {
        ++popped;
      } else {
        std::this_thread::yield();
      }
    }
    done.store(true, std::memory_order_release);
  });

  std::thread sampler([&] {
    while (!done.load(std::memory_order_acquire)) {
      // A sane size is bounded by capacity plus a small in-flight slack;
      // the underflow produced values near 2^64.
      ASSERT_LT(q.size(), std::uint64_t{1} << 32);
      std::this_thread::yield();  // don't starve the transfer on 1 CPU
    }
  });

  q.assert_producer();
  for (std::uint64_t i = 0; i < kCount; ++i) {
    while (!q.try_push(i)) {
      std::this_thread::yield();
    }
  }
  consumer.join();
  sampler.join();
}

}  // namespace
}  // namespace pfp::util
