#include "util/spsc_queue.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

namespace pfp::util {
namespace {

TEST(SpscQueue, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscQueue<int>(1).capacity(), 2u);
  EXPECT_EQ(SpscQueue<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscQueue<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscQueue<int>(100).capacity(), 128u);
  EXPECT_EQ(SpscQueue<int>(4096).capacity(), 4096u);
}

TEST(SpscQueue, PopOnEmptyFails) {
  SpscQueue<int> q(4);
  int v = -1;
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.try_pop(v));
  EXPECT_EQ(v, -1);
}

TEST(SpscQueue, PushOnFullFails) {
  SpscQueue<int> q(4);
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(q.try_push(i));
  }
  EXPECT_FALSE(q.try_push(99));
  EXPECT_EQ(q.size(), 4u);
}

TEST(SpscQueue, FifoOrder) {
  SpscQueue<int> q(8);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(q.try_push(i));
  }
  for (int i = 0; i < 8; ++i) {
    int v = -1;
    ASSERT_TRUE(q.try_pop(v));
    EXPECT_EQ(v, i);
  }
  EXPECT_TRUE(q.empty());
}

TEST(SpscQueue, IndicesWrapAroundTheRing) {
  SpscQueue<int> q(4);
  // Many times the capacity, alternating push/pop, so head and tail wrap
  // the ring repeatedly while staying partially full.
  int next_in = 0;
  int next_out = 0;
  ASSERT_TRUE(q.try_push(next_in++));
  ASSERT_TRUE(q.try_push(next_in++));
  for (int round = 0; round < 1000; ++round) {
    ASSERT_TRUE(q.try_push(next_in++));
    int v = -1;
    ASSERT_TRUE(q.try_pop(v));
    ASSERT_EQ(v, next_out++);
  }
  EXPECT_EQ(q.size(), 2u);
}

TEST(SpscQueue, TwoThreadTransferDeliversEverythingInOrder) {
  SpscQueue<std::uint64_t> q(64);
  constexpr std::uint64_t kCount = 200'000;

  std::vector<std::uint64_t> received;
  received.reserve(kCount);
  std::thread consumer([&] {
    std::uint64_t v = 0;
    while (received.size() < kCount) {
      if (q.try_pop(v)) {
        received.push_back(v);
      } else {
        std::this_thread::yield();
      }
    }
  });

  for (std::uint64_t i = 0; i < kCount; ++i) {
    while (!q.try_push(i)) {
      std::this_thread::yield();
    }
  }
  consumer.join();

  ASSERT_EQ(received.size(), kCount);
  for (std::uint64_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(received[i], i) << "reordered at index " << i;
  }
}

}  // namespace
}  // namespace pfp::util
