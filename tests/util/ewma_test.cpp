#include "util/ewma.hpp"

#include <gtest/gtest.h>

namespace pfp::util {
namespace {

TEST(Ewma, ReturnsInitialBeforeSamples) {
  Ewma e(0.1, 3.5);
  EXPECT_DOUBLE_EQ(e.value(), 3.5);
  EXPECT_FALSE(e.seeded());
}

TEST(Ewma, FirstSampleReplacesInitial) {
  Ewma e(0.1, 3.5);
  e.add(10.0);
  EXPECT_DOUBLE_EQ(e.value(), 10.0);
  EXPECT_TRUE(e.seeded());
}

TEST(Ewma, ConvergesToConstantInput) {
  Ewma e(0.2, 0.0);
  for (int i = 0; i < 200; ++i) {
    e.add(7.0);
  }
  EXPECT_NEAR(e.value(), 7.0, 1e-9);
}

TEST(Ewma, SmoothsStepChange) {
  Ewma e(0.5, 0.0);
  e.add(0.0);
  e.add(10.0);  // 0 + 0.5 * (10 - 0) = 5
  EXPECT_DOUBLE_EQ(e.value(), 5.0);
  e.add(10.0);  // 5 + 0.5 * 5 = 7.5
  EXPECT_DOUBLE_EQ(e.value(), 7.5);
}

TEST(Ewma, AlphaOneTracksLastSample) {
  Ewma e(1.0, 0.0);
  e.add(3.0);
  e.add(-2.0);
  EXPECT_DOUBLE_EQ(e.value(), -2.0);
}

TEST(Ewma, ResetForgetsHistory) {
  Ewma e(0.3, 1.0);
  e.add(100.0);
  e.reset(2.0);
  EXPECT_DOUBLE_EQ(e.value(), 2.0);
  EXPECT_FALSE(e.seeded());
  e.add(4.0);
  EXPECT_DOUBLE_EQ(e.value(), 4.0);  // first sample after reset re-seeds
}

}  // namespace
}  // namespace pfp::util
