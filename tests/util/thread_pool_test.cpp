#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace pfp::util {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 7; });
  EXPECT_EQ(f.get(), 7);
}

TEST(ThreadPool, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPool, AllTasksComplete) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) {
    f.get();
  }
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, ResultsMatchInputs) {
  ThreadPool pool(3);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 50; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPool, ExceptionsPropagateThroughFutures) {
  ThreadPool pool(1);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 20; ++i) {
      pool.submit([&counter] { ++counter; });
    }
  }  // destructor joins after draining
  EXPECT_EQ(counter.load(), 20);
}

}  // namespace
}  // namespace pfp::util
