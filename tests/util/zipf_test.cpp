#include "util/zipf.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace pfp::util {
namespace {

TEST(Zipf, SamplesAreInRange) {
  Xoshiro256 rng(1);
  ZipfSampler zipf(100, 1.0);
  for (int i = 0; i < 10'000; ++i) {
    ASSERT_LT(zipf(rng), 100u);
  }
}

TEST(Zipf, SingleElementAlwaysZero) {
  Xoshiro256 rng(2);
  ZipfSampler zipf(1, 1.2);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(zipf(rng), 0u);
  }
}

TEST(Zipf, RankZeroIsMostFrequent) {
  Xoshiro256 rng(3);
  ZipfSampler zipf(50, 1.0);
  std::vector<int> counts(50, 0);
  for (int i = 0; i < 100'000; ++i) {
    ++counts[zipf(rng)];
  }
  for (std::size_t k = 1; k < counts.size(); ++k) {
    // Monotone on average; allow noise by comparing to rank 0.
    EXPECT_GE(counts[0], counts[k]);
  }
}

// Frequencies should match the analytic Zipf pmf across skews.
class ZipfPmfTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfPmfTest, MatchesAnalyticPmf) {
  const double s = GetParam();
  const std::uint64_t n = 20;
  Xoshiro256 rng(42);
  ZipfSampler zipf(n, s);
  std::vector<double> counts(n, 0.0);
  const int draws = 400'000;
  for (int i = 0; i < draws; ++i) {
    counts[zipf(rng)] += 1.0;
  }
  double norm = 0.0;
  for (std::uint64_t k = 1; k <= n; ++k) {
    norm += std::pow(static_cast<double>(k), -s);
  }
  for (std::uint64_t k = 0; k < n; ++k) {
    const double expected =
        std::pow(static_cast<double>(k + 1), -s) / norm;
    const double observed = counts[k] / draws;
    EXPECT_NEAR(observed, expected, 0.012)
        << "rank " << k << " skew " << s;
  }
}

INSTANTIATE_TEST_SUITE_P(Skews, ZipfPmfTest,
                         ::testing::Values(0.5, 0.8, 1.0, 1.2, 2.0));

TEST(Zipf, IsDeterministicGivenSeed) {
  ZipfSampler zipf(1000, 0.9);
  Xoshiro256 a(99);
  Xoshiro256 b(99);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(zipf(a), zipf(b));
  }
}

TEST(Zipf, LargePopulationStillInRange) {
  Xoshiro256 rng(5);
  ZipfSampler zipf(10'000'000, 1.05);
  for (int i = 0; i < 10'000; ++i) {
    ASSERT_LT(zipf(rng), 10'000'000u);
  }
}

}  // namespace
}  // namespace pfp::util
