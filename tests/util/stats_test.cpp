#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace pfp::util {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.add(x);
  }
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // population variance
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesCombinedStream) {
  RunningStats a;
  RunningStats b;
  RunningStats combined;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10.0;
    (i % 2 == 0 ? a : b).add(x);
    combined.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_NEAR(a.mean(), combined.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), combined.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(a.min(), combined.min());
  EXPECT_DOUBLE_EQ(a.max(), combined.max());
}

TEST(RunningStats, MergeWithEmptySides) {
  RunningStats a;
  RunningStats b;
  b.add(3.0);
  a.merge(b);  // empty.merge(non-empty)
  EXPECT_EQ(a.count(), 1u);
  EXPECT_DOUBLE_EQ(a.mean(), 3.0);
  RunningStats c;
  a.merge(c);  // non-empty.merge(empty)
  EXPECT_EQ(a.count(), 1u);
}

TEST(RunningStats, MergeOfTwoEmptiesStaysEmpty) {
  RunningStats a;
  RunningStats b;
  a.merge(b);
  EXPECT_EQ(a.count(), 0u);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
  EXPECT_DOUBLE_EQ(a.variance(), 0.0);
}

TEST(RunningStats, ConstantStreamHasZeroVariance) {
  RunningStats s;
  for (int i = 0; i < 1000; ++i) {
    s.add(3.25);
  }
  EXPECT_DOUBLE_EQ(s.mean(), 3.25);
  // Welford must not accumulate rounding noise on a constant stream.
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, NegativeValuesTrackMinMax) {
  RunningStats s;
  s.add(-7.0);
  s.add(2.0);
  EXPECT_DOUBLE_EQ(s.min(), -7.0);
  EXPECT_DOUBLE_EQ(s.max(), 2.0);
  EXPECT_DOUBLE_EQ(s.sum(), -5.0);
}

TEST(RunningStats, ResetThenReuse) {
  RunningStats s;
  s.add(100.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.mean(), 1.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 1.0);
}

TEST(RunningStats, SummaryMentionsFields) {
  RunningStats s;
  s.add(1.0);
  const auto text = s.summary();
  EXPECT_NE(text.find("mean="), std::string::npos);
  EXPECT_NE(text.find("n=1"), std::string::npos);
}

TEST(RatioCounter, EmptyIsZero) {
  RatioCounter r;
  EXPECT_DOUBLE_EQ(r.value(), 0.0);
}

TEST(RatioCounter, CountsHitsAndMisses) {
  RatioCounter r;
  r.hit();
  r.hit();
  r.miss();
  r.miss();
  EXPECT_EQ(r.numerator(), 2u);
  EXPECT_EQ(r.denominator(), 4u);
  EXPECT_DOUBLE_EQ(r.value(), 0.5);
}

TEST(RatioCounter, AddDispatches) {
  RatioCounter r;
  r.add(true);
  r.add(false);
  r.add(true);
  EXPECT_DOUBLE_EQ(r.value(), 2.0 / 3.0);
}

TEST(RatioCounter, ResetClears) {
  RatioCounter r;
  r.hit();
  r.reset();
  EXPECT_EQ(r.denominator(), 0u);
  EXPECT_DOUBLE_EQ(r.value(), 0.0);
}

}  // namespace
}  // namespace pfp::util
