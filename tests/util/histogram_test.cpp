#include "util/histogram.hpp"

#include <gtest/gtest.h>

namespace pfp::util {
namespace {

TEST(LinearHistogram, BinsPartitionRange) {
  LinearHistogram h(0.0, 10.0, 5);
  EXPECT_EQ(h.bins(), 5u);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(4), 10.0);
}

TEST(LinearHistogram, AddRoutesToCorrectBin) {
  LinearHistogram h(0.0, 10.0, 5);
  h.add(0.0);
  h.add(1.9);
  h.add(2.0);
  h.add(9.999);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(1), 1u);
  EXPECT_EQ(h.bin_count(4), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(LinearHistogram, UnderflowOverflowTracked) {
  LinearHistogram h(0.0, 10.0, 5);
  h.add(-1.0);
  h.add(10.0);
  h.add(100.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(LinearHistogram, WeightedAdd) {
  LinearHistogram h(0.0, 10.0, 2);
  h.add(1.0, 7);
  EXPECT_EQ(h.bin_count(0), 7u);
  EXPECT_EQ(h.total(), 7u);
}

TEST(LinearHistogram, MedianOfUniformFill) {
  LinearHistogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) {
    h.add(i + 0.5);
  }
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.quantile(0.1), 10.0, 1.5);
  EXPECT_NEAR(h.quantile(0.9), 90.0, 1.5);
}

TEST(LinearHistogram, QuantileOfEmptyIsLo) {
  LinearHistogram h(5.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 5.0);
}

TEST(LinearHistogram, ResetClears) {
  LinearHistogram h(0.0, 1.0, 2);
  h.add(0.5);
  h.reset();
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.bin_count(0), 0u);
  EXPECT_EQ(h.bin_count(1), 0u);
}

TEST(Log2Histogram, BucketBoundaries) {
  EXPECT_EQ(Log2Histogram::bucket_lo(0), 0u);
  EXPECT_EQ(Log2Histogram::bucket_hi(0), 0u);
  EXPECT_EQ(Log2Histogram::bucket_lo(1), 1u);
  EXPECT_EQ(Log2Histogram::bucket_hi(1), 1u);
  EXPECT_EQ(Log2Histogram::bucket_lo(2), 2u);
  EXPECT_EQ(Log2Histogram::bucket_hi(2), 3u);
  EXPECT_EQ(Log2Histogram::bucket_lo(3), 4u);
  EXPECT_EQ(Log2Histogram::bucket_hi(3), 7u);
}

TEST(Log2Histogram, ValuesLandInCoveringBuckets) {
  Log2Histogram h;
  h.add(0);
  h.add(1);
  h.add(2);
  h.add(3);
  h.add(4);
  h.add(1024);
  EXPECT_EQ(h.bucket_count(0), 1u);  // 0
  EXPECT_EQ(h.bucket_count(1), 1u);  // 1
  EXPECT_EQ(h.bucket_count(2), 2u);  // 2-3
  EXPECT_EQ(h.bucket_count(3), 1u);  // 4-7
  EXPECT_EQ(h.bucket_count(11), 1u); // 1024-2047
  EXPECT_EQ(h.total(), 6u);
}

TEST(Log2Histogram, ToStringListsNonEmptyBuckets) {
  Log2Histogram h;
  h.add(5, 3);
  const auto text = h.to_string();
  EXPECT_NE(text.find("4-7: 3"), std::string::npos);
}

TEST(Log2Histogram, ResetClears) {
  Log2Histogram h;
  h.add(9);
  h.reset();
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.buckets(), 0u);
}

TEST(LinearHistogram, MergeSumsBinsAndOverflow) {
  LinearHistogram a(0.0, 10.0, 5);
  LinearHistogram b(0.0, 10.0, 5);
  a.add(1.0);
  a.add(-5.0);
  b.add(1.5);
  b.add(3.0);
  b.add(100.0);
  a.merge(b);
  EXPECT_EQ(a.bin_count(0), 2u);
  EXPECT_EQ(a.bin_count(1), 1u);
  EXPECT_EQ(a.underflow(), 1u);
  EXPECT_EQ(a.overflow(), 1u);
  EXPECT_EQ(a.total(), 5u);
}

TEST(LinearHistogram, MergeWithEmptyIsIdentity) {
  LinearHistogram a(0.0, 10.0, 5);
  a.add(4.0);
  LinearHistogram empty(0.0, 10.0, 5);
  a.merge(empty);
  EXPECT_EQ(a.total(), 1u);
  EXPECT_EQ(a.bin_count(2), 1u);
}

TEST(LinearHistogram, MergeRejectsMismatchedBinning) {
  LinearHistogram a(0.0, 10.0, 5);
  LinearHistogram b(0.0, 10.0, 4);
  EXPECT_DEATH(a.merge(b), "precondition");
}

TEST(Log2Histogram, SingleSampleQuantileBehaviour) {
  Log2Histogram h;
  h.add(37);  // [32, 63] -> bucket 6
  EXPECT_EQ(h.total(), 1u);
  EXPECT_EQ(h.bucket_count(6), 1u);
  EXPECT_EQ(h.buckets(), 7u);  // grows lazily to the covering bucket
}

TEST(Log2Histogram, MergeGrowsToWiderBucketSet) {
  Log2Histogram narrow;
  narrow.add(1);
  Log2Histogram wide;
  wide.add(1 << 20);
  narrow.merge(wide);
  EXPECT_EQ(narrow.total(), 2u);
  EXPECT_EQ(narrow.bucket_count(1), 1u);
  EXPECT_EQ(narrow.bucket_count(21), 1u);

  // And the mirror direction: merging a narrow set into a wide one must
  // leave the wide tail untouched.
  Log2Histogram wide2;
  wide2.add(1 << 20);
  Log2Histogram narrow2;
  narrow2.add(1);
  wide2.merge(narrow2);
  EXPECT_EQ(wide2.total(), 2u);
  EXPECT_EQ(wide2.bucket_count(21), 1u);
}

TEST(Log2Histogram, MergeWithEmptyIsIdentity) {
  Log2Histogram h;
  h.add(12, 4);
  Log2Histogram empty;
  h.merge(empty);
  empty.merge(h);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(empty.total(), 4u);
  EXPECT_EQ(empty.bucket_count(4), 4u);
}

TEST(Log2Histogram, HugeValuesLandInHighBuckets) {
  Log2Histogram h;
  h.add(std::uint64_t{1} << 62);
  EXPECT_EQ(h.total(), 1u);
  EXPECT_EQ(h.bucket_count(63), 1u);
  EXPECT_EQ(Log2Histogram::bucket_lo(63), std::uint64_t{1} << 62);
}

}  // namespace
}  // namespace pfp::util
