#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace pfp::util {
namespace {

TEST(Csv, WritesHeaderOnConstruction) {
  std::ostringstream out;
  CsvWriter csv(out, {"a", "b"});
  EXPECT_EQ(out.str(), "a,b\n");
  EXPECT_EQ(csv.rows_written(), 0u);
}

TEST(Csv, WritesPlainRow) {
  std::ostringstream out;
  CsvWriter csv(out, {"a", "b"});
  csv.row({"1", "2"});
  EXPECT_EQ(out.str(), "a,b\n1,2\n");
  EXPECT_EQ(csv.rows_written(), 1u);
}

TEST(Csv, EscapesCommasQuotesNewlines) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::escape("two\nlines"), "\"two\nlines\"");
}

TEST(Csv, RowBuilderFormatsTypes) {
  std::ostringstream out;
  CsvWriter csv(out, {"name", "ratio", "count"});
  csv.row().add("x").add(0.5).add(std::uint64_t{42}).done();
  EXPECT_EQ(out.str(), "name,ratio,count\nx,0.500000,42\n");
}

TEST(Csv, QuotedFieldRoundTripsInRow) {
  std::ostringstream out;
  CsvWriter csv(out, {"v"});
  csv.row({"a,b"});
  EXPECT_EQ(out.str(), "v\n\"a,b\"\n");
}

}  // namespace
}  // namespace pfp::util
