#include "util/lru_list.hpp"

#include <gtest/gtest.h>

#include <deque>
#include <vector>

#include "util/prng.hpp"

namespace pfp::util {
namespace {

TEST(LruList, StartsEmpty) {
  LruList list(4);
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(list.size(), 0u);
  EXPECT_EQ(list.front(), LruList::npos);
  EXPECT_EQ(list.back(), LruList::npos);
  EXPECT_EQ(list.pop_back(), LruList::npos);
}

TEST(LruList, PushFrontOrders) {
  LruList list(4);
  list.push_front(0);
  list.push_front(1);
  list.push_front(2);
  EXPECT_EQ(list.front(), 2u);
  EXPECT_EQ(list.back(), 0u);
  EXPECT_EQ(list.size(), 3u);
}

TEST(LruList, ContainsTracksMembership) {
  LruList list(4);
  EXPECT_FALSE(list.contains(1));
  list.push_front(1);
  EXPECT_TRUE(list.contains(1));
  list.erase(1);
  EXPECT_FALSE(list.contains(1));
}

TEST(LruList, TouchMovesToFront) {
  LruList list(4);
  list.push_front(0);
  list.push_front(1);
  list.push_front(2);  // order: 2 1 0
  list.touch(0);       // order: 0 2 1
  EXPECT_EQ(list.front(), 0u);
  EXPECT_EQ(list.back(), 1u);
}

TEST(LruList, TouchFrontIsNoop) {
  LruList list(4);
  list.push_front(0);
  list.push_front(1);
  list.touch(1);
  EXPECT_EQ(list.front(), 1u);
  EXPECT_EQ(list.back(), 0u);
}

TEST(LruList, PopBackRemovesLru) {
  LruList list(4);
  list.push_front(0);
  list.push_front(1);
  EXPECT_EQ(list.pop_back(), 0u);
  EXPECT_EQ(list.pop_back(), 1u);
  EXPECT_TRUE(list.empty());
}

TEST(LruList, EraseMiddleKeepsChain) {
  LruList list(8);
  for (std::uint32_t i = 0; i < 5; ++i) {
    list.push_front(i);  // 4 3 2 1 0
  }
  list.erase(2);  // 4 3 1 0
  std::vector<std::uint32_t> order;
  for (auto s = list.front(); s != LruList::npos; s = list.next(s)) {
    order.push_back(s);
  }
  EXPECT_EQ(order, (std::vector<std::uint32_t>{4, 3, 1, 0}));
}

TEST(LruList, PrevWalksBackward) {
  LruList list(4);
  list.push_front(0);
  list.push_front(1);
  list.push_front(2);  // 2 1 0
  std::vector<std::uint32_t> order;
  for (auto s = list.back(); s != LruList::npos; s = list.prev(s)) {
    order.push_back(s);
  }
  EXPECT_EQ(order, (std::vector<std::uint32_t>{0, 1, 2}));
}

TEST(LruList, ClearEmptiesAndAllowsReuse) {
  LruList list(4);
  list.push_front(0);
  list.push_front(1);
  list.clear();
  EXPECT_TRUE(list.empty());
  EXPECT_FALSE(list.contains(0));
  list.push_front(0);
  EXPECT_EQ(list.front(), 0u);
}

TEST(LruList, ResizePreservesExistingLinks) {
  LruList list(2);
  list.push_front(0);
  list.push_front(1);
  list.resize(10);
  EXPECT_TRUE(list.contains(0));
  EXPECT_TRUE(list.contains(1));
  list.push_front(9);
  EXPECT_EQ(list.front(), 9u);
  EXPECT_EQ(list.back(), 0u);
}

// Differential test against a std::deque reference model.
TEST(LruList, MatchesReferenceModelUnderRandomOps) {
  constexpr std::uint32_t kSlots = 64;
  LruList list(kSlots);
  std::deque<std::uint32_t> model;  // front = MRU
  Xoshiro256 rng(123);

  const auto model_contains = [&](std::uint32_t s) {
    return std::find(model.begin(), model.end(), s) != model.end();
  };

  for (int step = 0; step < 20'000; ++step) {
    const auto slot = static_cast<std::uint32_t>(rng.below(kSlots));
    switch (rng.below(4)) {
      case 0:  // push if absent
        if (!model_contains(slot)) {
          list.push_front(slot);
          model.push_front(slot);
        }
        break;
      case 1:  // touch if present
        if (model_contains(slot)) {
          list.touch(slot);
          model.erase(std::find(model.begin(), model.end(), slot));
          model.push_front(slot);
        }
        break;
      case 2:  // erase if present
        if (model_contains(slot)) {
          list.erase(slot);
          model.erase(std::find(model.begin(), model.end(), slot));
        }
        break;
      case 3:  // pop back
        if (!model.empty()) {
          ASSERT_EQ(list.pop_back(), model.back());
          model.pop_back();
        } else {
          ASSERT_EQ(list.pop_back(), LruList::npos);
        }
        break;
    }
    ASSERT_EQ(list.size(), model.size());
    if (!model.empty()) {
      ASSERT_EQ(list.front(), model.front());
      ASSERT_EQ(list.back(), model.back());
    }
  }
}

}  // namespace
}  // namespace pfp::util
