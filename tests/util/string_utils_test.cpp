#include "util/string_utils.hpp"

#include <gtest/gtest.h>

namespace pfp::util {
namespace {

TEST(Split, BasicFields) {
  EXPECT_EQ(split("a,b,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(Split, PreservesEmptyFields) {
  EXPECT_EQ(split(",a,", ','), (std::vector<std::string>{"", "a", ""}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
}

TEST(Trim, StripsAllWhitespaceKinds) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("\t\r\n x \n"), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("a b"), "a b");
}

TEST(StartsWith, Basics) {
  EXPECT_TRUE(starts_with("--flag", "--"));
  EXPECT_FALSE(starts_with("-", "--"));
  EXPECT_TRUE(starts_with("abc", ""));
}

TEST(ParseU64, AcceptsOnlyCleanIntegers) {
  EXPECT_EQ(parse_u64("0"), 0u);
  EXPECT_EQ(parse_u64("18446744073709551615"), 18446744073709551615ull);
  EXPECT_FALSE(parse_u64(""));
  EXPECT_FALSE(parse_u64("12x"));
  EXPECT_FALSE(parse_u64("-1"));
  EXPECT_FALSE(parse_u64(" 1"));
  EXPECT_FALSE(parse_u64("1.5"));
}

TEST(ParseDouble, AcceptsOnlyCleanNumbers) {
  EXPECT_DOUBLE_EQ(*parse_double("2.5"), 2.5);
  EXPECT_DOUBLE_EQ(*parse_double("-3"), -3.0);
  EXPECT_DOUBLE_EQ(*parse_double("1e3"), 1000.0);
  EXPECT_FALSE(parse_double(""));
  EXPECT_FALSE(parse_double("abc"));
  EXPECT_FALSE(parse_double("1.5x"));
}

TEST(ParseBool, AcceptsCommonSpellings) {
  EXPECT_EQ(parse_bool("1"), true);
  EXPECT_EQ(parse_bool("true"), true);
  EXPECT_EQ(parse_bool("yes"), true);
  EXPECT_EQ(parse_bool("on"), true);
  EXPECT_EQ(parse_bool("0"), false);
  EXPECT_EQ(parse_bool("false"), false);
  EXPECT_EQ(parse_bool("no"), false);
  EXPECT_EQ(parse_bool("off"), false);
  EXPECT_FALSE(parse_bool("TRUE").has_value());  // strict, no case folding
  EXPECT_FALSE(parse_bool("2").has_value());
}

TEST(FormatPercent, RendersFractionTimes100) {
  EXPECT_EQ(format_percent(0.5), "50.00%");
  EXPECT_EQ(format_percent(0.12345, 1), "12.3%");
  EXPECT_EQ(format_percent(1.0, 0), "100%");
}

TEST(FormatBytes, PicksUnits) {
  EXPECT_EQ(format_bytes(512), "512.00 B");
  EXPECT_EQ(format_bytes(2048), "2.00 KiB");
  EXPECT_EQ(format_bytes(1.25 * 1024 * 1024), "1.25 MiB");
}

TEST(FormatDouble, FixedDecimals) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(2.0, 0), "2");
}

TEST(FormatCount, GroupsThousands) {
  EXPECT_EQ(format_count(0), "0");
  EXPECT_EQ(format_count(999), "999");
  EXPECT_EQ(format_count(1000), "1,000");
  EXPECT_EQ(format_count(3530115), "3,530,115");
  EXPECT_EQ(format_count(12), "12");
  EXPECT_EQ(format_count(123456), "123,456");
}

}  // namespace
}  // namespace pfp::util
