#include "util/flat_map.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/prng.hpp"

namespace pfp::util {
namespace {

TEST(FlatMap, StartsEmpty) {
  FlatMap<std::uint64_t, int> map;
  EXPECT_EQ(map.size(), 0u);
  EXPECT_TRUE(map.empty());
  EXPECT_FALSE(map.contains(7));
  EXPECT_EQ(map.find(7), map.end());
  EXPECT_EQ(map.erase(7), 0u);
  EXPECT_EQ(map.begin(), map.end());
}

TEST(FlatMap, InsertFindErase) {
  FlatMap<std::uint64_t, int> map;
  EXPECT_TRUE(map.emplace(1, 10).second);
  EXPECT_TRUE(map.emplace(2, 20).second);
  EXPECT_FALSE(map.emplace(1, 99).second);  // duplicate keeps old value
  EXPECT_EQ(map.size(), 2u);
  ASSERT_NE(map.find(1), map.end());
  EXPECT_EQ(map.find(1)->second, 10);
  EXPECT_EQ(map.erase(1), 1u);
  EXPECT_EQ(map.find(1), map.end());
  EXPECT_EQ(map.size(), 1u);
}

TEST(FlatMap, SubscriptInsertsDefault) {
  FlatMap<std::uint64_t, int> map;
  map[5] = 50;
  EXPECT_EQ(map[5], 50);
  EXPECT_EQ(map[6], 0);  // default-constructed on first touch
  EXPECT_EQ(map.size(), 2u);
}

TEST(FlatMap, ReserveAvoidsRehash) {
  FlatMap<std::uint64_t, int> map;
  map.reserve(1000);
  const std::size_t cap = map.capacity();
  for (std::uint64_t k = 0; k < 1000; ++k) {
    map.emplace(k, static_cast<int>(k));
  }
  EXPECT_EQ(map.capacity(), cap);
  EXPECT_EQ(map.size(), 1000u);
}

TEST(FlatMap, IterationVisitsEveryElementOnce) {
  FlatMap<std::uint64_t, int> map;
  for (std::uint64_t k = 0; k < 100; ++k) {
    map.emplace(k * 7919, static_cast<int>(k));
  }
  std::vector<bool> seen(100, false);
  for (const auto& [key, value] : map) {
    ASSERT_EQ(key, static_cast<std::uint64_t>(value) * 7919);
    ASSERT_FALSE(seen[static_cast<std::size_t>(value)]);
    seen[static_cast<std::size_t>(value)] = true;
  }
  for (const bool s : seen) {
    EXPECT_TRUE(s);
  }
}

TEST(FlatMap, NonTrivialValueTypeReleasedOnErase) {
  FlatMap<std::uint64_t, std::vector<std::string>> map;
  map[1].push_back("hello");
  map[2].push_back("world");
  EXPECT_EQ(map.erase(1), 1u);
  ASSERT_NE(map.find(2), map.end());
  ASSERT_EQ(map.find(2)->second.size(), 1u);
  EXPECT_EQ(map.find(2)->second[0], "world");
}

TEST(FlatMap, ClearKeepsCapacity) {
  FlatMap<std::uint64_t, int> map;
  for (std::uint64_t k = 0; k < 64; ++k) {
    map.emplace(k, 1);
  }
  const std::size_t cap = map.capacity();
  map.clear();
  EXPECT_EQ(map.size(), 0u);
  EXPECT_EQ(map.capacity(), cap);
  EXPECT_FALSE(map.contains(3));
  EXPECT_TRUE(map.emplace(3, 4).second);
}

// Backward-shift deletion must repair probe chains: keys engineered to
// collide into one cluster stay findable as cluster members are erased in
// every order.
TEST(FlatMap, CollisionClusterSurvivesErasure) {
  struct OneBucketHash {
    std::size_t operator()(std::uint64_t) const noexcept { return 0; }
  };
  for (std::uint64_t victim = 0; victim < 8; ++victim) {
    FlatMap<std::uint64_t, std::uint64_t, OneBucketHash> map;
    for (std::uint64_t k = 0; k < 8; ++k) {
      map.emplace(k, k * 100);
    }
    EXPECT_EQ(map.erase(victim), 1u);
    for (std::uint64_t k = 0; k < 8; ++k) {
      if (k == victim) {
        EXPECT_FALSE(map.contains(k));
      } else {
        ASSERT_TRUE(map.contains(k)) << "victim=" << victim << " k=" << k;
        EXPECT_EQ(map.find(k)->second, k * 100);
      }
    }
  }
}

// Property test: ~10^5 randomized insert/find/erase/clear operations must
// leave FlatMap observably identical to std::unordered_map.  Keys are
// drawn from a small universe so collisions, growth and churn all happen.
TEST(FlatMapProperty, MatchesUnorderedMapUnderRandomOps) {
  util::Xoshiro256 rng(0xf1a7);
  FlatMap<std::uint64_t, std::uint32_t> flat;
  std::unordered_map<std::uint64_t, std::uint32_t> reference;

  for (std::uint32_t op = 0; op < 100'000; ++op) {
    const std::uint64_t key = rng.below(4096);
    switch (rng.below(10)) {
      case 0:
      case 1:
      case 2:
      case 3: {  // insert
        const bool inserted = flat.emplace(key, op).second;
        const bool ref_inserted = reference.emplace(key, op).second;
        ASSERT_EQ(inserted, ref_inserted) << "op " << op;
        break;
      }
      case 4:
      case 5:
      case 6: {  // find
        const auto it = flat.find(key);
        const auto ref_it = reference.find(key);
        ASSERT_EQ(it == flat.end(), ref_it == reference.end())
            << "op " << op;
        if (ref_it != reference.end()) {
          ASSERT_EQ(it->second, ref_it->second) << "op " << op;
        }
        break;
      }
      case 7:
      case 8: {  // erase
        ASSERT_EQ(flat.erase(key), reference.erase(key)) << "op " << op;
        break;
      }
      default: {  // occasionally wipe to exercise the cleared state
        if (rng.below(1000) == 0) {
          flat.clear();
          reference.clear();
        } else {  // subscript upsert
          flat[key] = op;
          reference[key] = op;
        }
        break;
      }
    }
    ASSERT_EQ(flat.size(), reference.size()) << "op " << op;
  }

  // Final deep comparison in both directions: every reference entry is in
  // the flat map, and iteration yields exactly the reference contents.
  for (const auto& [key, value] : reference) {
    const auto it = flat.find(key);
    ASSERT_NE(it, flat.end());
    EXPECT_EQ(it->second, value);
  }
  std::size_t visited = 0;
  for (const auto& [key, value] : flat) {
    const auto ref_it = reference.find(key);
    ASSERT_NE(ref_it, reference.end());
    EXPECT_EQ(value, ref_it->second);
    ++visited;
  }
  EXPECT_EQ(visited, reference.size());
}

}  // namespace
}  // namespace pfp::util
