// ThreadPool stress tests: the TSan CI leg runs these to shake out data
// races and missed wakeups in the submit/worker/shutdown protocol that a
// two-task unit test never exercises (queue contention, concurrent
// producers, rapid construct/join cycles).
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/thread_pool.hpp"

namespace pfp::util {
namespace {

TEST(ThreadPoolStress, TenThousandTinyTasks) {
  ThreadPool pool(4);
  std::atomic<std::size_t> ran{0};
  std::vector<std::future<std::size_t>> futures;
  constexpr std::size_t kTasks = 10'000;
  futures.reserve(kTasks);
  for (std::size_t i = 0; i < kTasks; ++i) {
    futures.push_back(pool.submit([i, &ran] {
      ran.fetch_add(1, std::memory_order_relaxed);
      return i;
    }));
  }
  std::size_t sum = 0;
  for (auto& future : futures) {
    sum += future.get();
  }
  EXPECT_EQ(ran.load(), kTasks);
  EXPECT_EQ(sum, kTasks * (kTasks - 1) / 2);
}

TEST(ThreadPoolStress, ConcurrentProducers) {
  ThreadPool pool(4);
  std::atomic<std::size_t> ran{0};
  constexpr std::size_t kProducers = 8;
  constexpr std::size_t kTasksEach = 1'250;
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&pool, &ran] {
      std::vector<std::future<void>> futures;
      futures.reserve(kTasksEach);
      for (std::size_t i = 0; i < kTasksEach; ++i) {
        futures.push_back(pool.submit(
            [&ran] { ran.fetch_add(1, std::memory_order_relaxed); }));
      }
      for (auto& future : futures) {
        future.get();
      }
    });
  }
  for (auto& producer : producers) {
    producer.join();
  }
  EXPECT_EQ(ran.load(), kProducers * kTasksEach);
}

TEST(ThreadPoolStress, RapidConstructDestroyCycles) {
  // Shutdown races (a worker missing the stop signal, or the destructor
  // joining before the queue drains) show up as hangs or lost tasks here.
  std::atomic<std::size_t> ran{0};
  constexpr std::size_t kCycles = 200;
  constexpr std::size_t kTasksPerCycle = 16;
  for (std::size_t cycle = 0; cycle < kCycles; ++cycle) {
    ThreadPool pool(2);
    std::vector<std::future<void>> futures;
    futures.reserve(kTasksPerCycle);
    for (std::size_t i = 0; i < kTasksPerCycle; ++i) {
      futures.push_back(pool.submit(
          [&ran] { ran.fetch_add(1, std::memory_order_relaxed); }));
    }
    // Destructor must drain the queue even though no future was waited on.
  }
  EXPECT_EQ(ran.load(), kCycles * kTasksPerCycle);
}

TEST(ThreadPoolStress, ExceptionsPropagateUnderLoad) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  constexpr std::size_t kTasks = 2'000;
  futures.reserve(kTasks);
  for (std::size_t i = 0; i < kTasks; ++i) {
    futures.push_back(pool.submit([i]() -> int {
      if (i % 7 == 0) {
        throw std::runtime_error("simulated failure");
      }
      return static_cast<int>(i);
    }));
  }
  std::size_t failures = 0;
  for (std::size_t i = 0; i < kTasks; ++i) {
    if (i % 7 == 0) {
      EXPECT_THROW(futures[i].get(), std::runtime_error);
      ++failures;
    } else {
      EXPECT_EQ(futures[i].get(), static_cast<int>(i));
    }
  }
  EXPECT_GT(failures, 0u);
}

}  // namespace
}  // namespace pfp::util
