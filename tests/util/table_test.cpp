#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace pfp::util {
namespace {

TEST(TextTable, PrintsHeaderAndUnderline) {
  TextTable t({"name", "value"});
  std::ostringstream out;
  t.print(out);
  const auto text = out.str();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("value"), std::string::npos);
  EXPECT_NE(text.find("---"), std::string::npos);
}

TEST(TextTable, RightAlignsNumericColumns) {
  TextTable t({"k", "v"});
  t.row({"aa", "5"});
  t.row({"b", "123"});
  std::ostringstream out;
  t.print(out);
  // numeric column padded on the left: "  5" aligns under "123"
  EXPECT_NE(out.str().find("aa    5"), std::string::npos);
  EXPECT_NE(out.str().find("b   123"), std::string::npos);
}

TEST(TextTable, LeftAlignsTextColumns) {
  TextTable t({"k", "v"});
  t.row({"short", "x"});
  t.row({"a-much-longer-key", "y"});
  std::ostringstream out;
  t.print(out);
  EXPECT_NE(out.str().find("short            "), std::string::npos);
}

TEST(TextTable, CountsRows) {
  TextTable t({"a"});
  EXPECT_EQ(t.rows(), 0u);
  t.row({"1"});
  t.row({"2"});
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TextTable, PercentValuesCountAsNumeric) {
  TextTable t({"k", "rate"});
  t.row({"a", "12.50%"});
  t.row({"b", "3.00%"});
  std::ostringstream out;
  t.print(out);
  EXPECT_NE(out.str().find(" 3.00%"), std::string::npos);
}

}  // namespace
}  // namespace pfp::util
