#include "util/space_saving.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "util/prng.hpp"

namespace pfp::util {
namespace {

TEST(SpaceSaving, RejectsZeroCapacity) {
  EXPECT_DEATH(SpaceSaving(0), "precondition");
}

TEST(SpaceSaving, ExactCountsWhileUnderCapacity) {
  SpaceSaving sketch(4);
  for (int i = 0; i < 3; ++i) {
    sketch.record(7);
  }
  sketch.record(9);
  EXPECT_EQ(sketch.size(), 2u);
  EXPECT_EQ(sketch.total(), 4u);
  EXPECT_EQ(sketch.count(7), 3u);
  EXPECT_EQ(sketch.count(9), 1u);
  EXPECT_EQ(sketch.count(42), 0u);
  EXPECT_TRUE(sketch.tracked(7));
  EXPECT_FALSE(sketch.tracked(42));
  // No replacements yet, so counts are exact: guaranteed == estimate.
  EXPECT_TRUE(sketch.is_heavy(7, 3));
  EXPECT_FALSE(sketch.is_heavy(7, 4));
}

TEST(SpaceSaving, ReplacementInheritsMinCountAsError) {
  SpaceSaving sketch(2);
  sketch.record(1);
  sketch.record(1);
  sketch.record(2);  // min slot: count 1
  sketch.record(3);  // evicts key 2, inherits count 1 as error
  EXPECT_FALSE(sketch.tracked(2));
  EXPECT_TRUE(sketch.tracked(3));
  EXPECT_EQ(sketch.count(3), 2u);  // inherited 1 + its own occurrence
  // Guaranteed count is 2 - 1 = 1: is_heavy() must not promote it past
  // that, which is exactly how the Zipf tail gets filtered.
  EXPECT_TRUE(sketch.is_heavy(3, 1));
  EXPECT_FALSE(sketch.is_heavy(3, 2));
}

TEST(SpaceSaving, HeavyHittersAlwaysTracked) {
  // Classic space-saving guarantee: any key with true frequency > N/K
  // occupies a slot at stream end.  8 hot keys at ~10% each against a
  // K=16 sketch over a noisy uniform tail.
  constexpr std::uint64_t kHot = 8;
  SpaceSaving sketch(16);
  Xoshiro256 rng(5);
  std::uint64_t hot_true[kHot] = {};
  for (int i = 0; i < 100'000; ++i) {
    if (rng.below(10) < 8) {
      const std::uint64_t key = rng.below(kHot);
      ++hot_true[key];
      sketch.record(key);
    } else {
      sketch.record(1000 + rng.below(50'000));
    }
  }
  for (std::uint64_t key = 0; key < kHot; ++key) {
    ASSERT_TRUE(sketch.tracked(key)) << "hot key " << key << " lost";
    // count() is an over-estimate, never an under-estimate.
    EXPECT_GE(sketch.count(key), hot_true[key]);
    // And the guaranteed bound clears a threshold far above tail noise.
    EXPECT_TRUE(sketch.is_heavy(key, hot_true[key] / 2));
  }
}

TEST(SpaceSaving, TopIsSortedAndDeterministic) {
  SpaceSaving sketch(4);
  for (int i = 0; i < 5; ++i) {
    sketch.record(10);
  }
  for (int i = 0; i < 3; ++i) {
    sketch.record(20);
  }
  sketch.record(30);
  sketch.record(31);  // same count as 30: ties break by key
  const std::vector<SpaceSaving::Entry> top = sketch.top();
  ASSERT_EQ(top.size(), 4u);
  EXPECT_EQ(top[0].key, 10u);
  EXPECT_EQ(top[1].key, 20u);
  EXPECT_EQ(top[2].key, 30u);
  EXPECT_EQ(top[3].key, 31u);
}

TEST(SpaceSaving, ClearEmptiesTheSketch) {
  SpaceSaving sketch(4);
  sketch.record(1);
  sketch.record(1);
  sketch.clear();
  EXPECT_EQ(sketch.size(), 0u);
  EXPECT_EQ(sketch.total(), 0u);
  EXPECT_FALSE(sketch.tracked(1));
  sketch.record(2);
  EXPECT_EQ(sketch.count(2), 1u);
}

TEST(SpaceSaving, DeterministicAcrossIdenticalStreams) {
  // The sharded engine's routing depends on this: the sketch is a pure
  // function of the record() sequence.
  SpaceSaving a(8);
  SpaceSaving b(8);
  Xoshiro256 rng(9);
  std::vector<std::uint64_t> stream;
  for (int i = 0; i < 20'000; ++i) {
    stream.push_back(rng.below(64));
  }
  for (const std::uint64_t key : stream) {
    a.record(key);
  }
  for (const std::uint64_t key : stream) {
    b.record(key);
  }
  const auto ta = a.top();
  const auto tb = b.top();
  ASSERT_EQ(ta.size(), tb.size());
  for (std::size_t i = 0; i < ta.size(); ++i) {
    EXPECT_EQ(ta[i].key, tb[i].key);
    EXPECT_EQ(ta[i].count, tb[i].count);
    EXPECT_EQ(ta[i].error, tb[i].error);
  }
}

}  // namespace
}  // namespace pfp::util
