#include "util/logging.hpp"

#include <gtest/gtest.h>

namespace pfp::util {
namespace {

// Restores the process-wide level after each test.
class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { previous_ = log_level(); }
  void TearDown() override { set_log_level(previous_); }
  LogLevel previous_ = LogLevel::kInfo;
};

TEST_F(LoggingTest, LevelRoundTrips) {
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
}

TEST_F(LoggingTest, MacroBuildsMessagesWithoutCrashing) {
  set_log_level(LogLevel::kError);  // below threshold: discarded
  PFP_LOG_DEBUG() << "value " << 42 << " and " << 3.14;
  PFP_LOG_INFO() << "info line";
  PFP_LOG_WARN() << "warn line";
  set_log_level(LogLevel::kDebug);
  PFP_LOG_DEBUG() << "emitted";
  SUCCEED();
}

TEST_F(LoggingTest, LogMessageRespectsThreshold) {
  set_log_level(LogLevel::kWarn);
  // These exercise the filtered and unfiltered paths; visible effects go
  // to stderr, correctness here is "no crash, no deadlock".
  log_message(LogLevel::kDebug, "dropped");
  log_message(LogLevel::kError, "emitted");
  SUCCEED();
}

}  // namespace
}  // namespace pfp::util
