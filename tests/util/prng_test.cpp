#include "util/prng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <set>

namespace pfp::util {
namespace {

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Xoshiro256, IsDeterministic) {
  Xoshiro256 a(7);
  Xoshiro256 b(7);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next(), b.next());
  }
}

TEST(Xoshiro256, UniformIsInHalfOpenUnitInterval) {
  Xoshiro256 rng(1);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Xoshiro256, UniformMeanIsAboutHalf) {
  Xoshiro256 rng(2);
  double sum = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    sum += rng.uniform();
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Xoshiro256, BelowIsAlwaysInRange) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 10'000; ++i) {
    ASSERT_LT(rng.below(17), 17u);
  }
}

TEST(Xoshiro256, BelowCoversAllResidues) {
  Xoshiro256 rng(4);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1'000; ++i) {
    seen.insert(rng.below(7));
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Xoshiro256, BelowIsApproximatelyUniform) {
  Xoshiro256 rng(5);
  std::array<int, 10> counts{};
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    ++counts[rng.below(10)];
  }
  for (const int c : counts) {
    EXPECT_NEAR(c, n / 10, n / 100);  // within 10% relative
  }
}

TEST(Xoshiro256, RangeIsInclusive) {
  Xoshiro256 rng(6);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10'000; ++i) {
    const auto v = rng.range(3, 5);
    ASSERT_GE(v, 3u);
    ASSERT_LE(v, 5u);
    saw_lo |= v == 3;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Xoshiro256, BernoulliEdgeCases) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-0.5));
    EXPECT_TRUE(rng.bernoulli(1.5));
  }
}

TEST(Xoshiro256, BernoulliFrequencyMatchesP) {
  Xoshiro256 rng(8);
  int hits = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    hits += rng.bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Xoshiro256, ExponentialHasRequestedMean) {
  Xoshiro256 rng(9);
  double sum = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    sum += rng.exponential(4.0);
  }
  EXPECT_NEAR(sum / n, 4.0, 0.1);
}

TEST(Xoshiro256, PoissonHasRequestedMeanSmall) {
  Xoshiro256 rng(10);
  double sum = 0.0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(rng.poisson(3.5));
  }
  EXPECT_NEAR(sum / n, 3.5, 0.1);
}

TEST(Xoshiro256, PoissonHasRequestedMeanLarge) {
  Xoshiro256 rng(11);
  double sum = 0.0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(rng.poisson(200.0));
  }
  EXPECT_NEAR(sum / n, 200.0, 2.0);
}

TEST(Xoshiro256, PoissonZeroMeanIsZero) {
  Xoshiro256 rng(12);
  EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Xoshiro256, NormalMomentsMatch) {
  Xoshiro256 rng(13);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.01);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.02);
}

TEST(Xoshiro256, NormalWithParamsShiftsAndScales) {
  Xoshiro256 rng(14);
  double sum = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    sum += rng.normal(10.0, 2.0);
  }
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Xoshiro256, LognormalIsPositive) {
  Xoshiro256 rng(15);
  for (int i = 0; i < 10'000; ++i) {
    ASSERT_GT(rng.lognormal(1.0, 1.0), 0.0);
  }
}

TEST(Xoshiro256, GeometricProbabilityOneIsZero) {
  Xoshiro256 rng(16);
  EXPECT_EQ(rng.geometric(1.0), 0u);
}

TEST(Xoshiro256, GeometricMeanMatches) {
  Xoshiro256 rng(17);
  // mean failures before success = (1-p)/p = 4 for p = 0.2
  double sum = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(rng.geometric(0.2));
  }
  EXPECT_NEAR(sum / n, 4.0, 0.1);
}

}  // namespace
}  // namespace pfp::util
