// ShardedEngine observability: per-shard and merged live stats, queue
// gauges, and the multi-ring Chrome trace dump.
#include <gtest/gtest.h>

#include <sstream>

#include "engine/sharded_engine.hpp"
#include "obs/engine_obs.hpp"
#include "util/prng.hpp"

namespace pfp::engine {
namespace {

ShardedConfig sharded_config(std::uint32_t shards) {
  ShardedConfig c;
  c.engine.cache_blocks = 64;
  c.engine.policy.kind = core::policy::PolicyKind::kTreeNextLimit;
  c.shards = shards;
  c.queue_capacity = 128;
  return c;
}

trace::Trace random_trace(std::uint64_t seed, int length, int universe) {
  trace::Trace t("t");
  util::Xoshiro256 rng(seed);
  for (int i = 0; i < length; ++i) {
    t.append(rng.below(static_cast<std::uint64_t>(universe)));
  }
  return t;
}

TEST(ShardedObs, MergedStatsMatchMergedMetrics) {
  if (!obs::kEnabled) {
    GTEST_SKIP() << "PFP_OBS compiled out";
  }
  ShardedEngine eng(sharded_config(4));
  const auto t = random_trace(21, 20'000, 600);
  for (const auto& rec : t) {
    eng.push(rec.block);
  }
  const auto merged = eng.merged_metrics();  // flushes first
  const auto stats = eng.stats();

  EXPECT_EQ(stats.shards, 4u);
  EXPECT_EQ(stats.accesses, merged.accesses);
  EXPECT_EQ(stats.demand_hits, merged.demand_hits);
  EXPECT_EQ(stats.prefetch_hits, merged.prefetch_hits);
  EXPECT_EQ(stats.misses, merged.misses);
  EXPECT_EQ(stats.prefetches_issued, merged.policy.prefetches_issued);
  EXPECT_EQ(stats.disk_requests, merged.disk_requests);
  EXPECT_TRUE(stats.consistent);
}

TEST(ShardedObs, MergedStatsAreAPureFunctionOfTraceAndShardCount) {
  // Re-running the same stream through a fresh sharded engine must
  // reproduce the merged counters exactly, independent of worker timing:
  // the hash partition fixes each shard's sub-stream, each shard is
  // deterministic on its sub-stream, and the merge folds in shard order.
  if (!obs::kEnabled) {
    GTEST_SKIP() << "PFP_OBS compiled out";
  }
  const auto t = random_trace(33, 30'000, 800);

  auto run = [&t]() {
    ShardedEngine eng(sharded_config(4));
    for (const auto& rec : t) {
      eng.push(rec.block);
    }
    eng.flush();
    return eng.stats();
  };
  const auto first = run();
  const auto second = run();

  EXPECT_EQ(first.accesses, second.accesses);
  EXPECT_EQ(first.demand_hits, second.demand_hits);
  EXPECT_EQ(first.prefetch_hits, second.prefetch_hits);
  EXPECT_EQ(first.misses, second.misses);
  EXPECT_EQ(first.prefetches_issued, second.prefetches_issued);
  EXPECT_EQ(first.prefetch_ejections, second.prefetch_ejections);
  EXPECT_EQ(first.demand_ejections, second.demand_ejections);
  EXPECT_EQ(first.disk_requests, second.disk_requests);
  EXPECT_EQ(first.elapsed_virtual_us, second.elapsed_virtual_us);
  EXPECT_EQ(first.tree_nodes, second.tree_nodes);
}

TEST(ShardedObs, PerShardViewsCarryQueueGauges) {
  ShardedEngine eng(sharded_config(2));
  const auto t = random_trace(5, 5'000, 200);
  for (const auto& rec : t) {
    eng.push(rec.block);
  }
  eng.flush();

  std::uint64_t accesses = 0;
  for (std::uint32_t i = 0; i < eng.shards(); ++i) {
    const auto s = eng.shard_stats(i);
    EXPECT_EQ(s.shards, 1u);
    EXPECT_EQ(s.queue_capacity, 128u);
    EXPECT_EQ(s.queue_occupancy, 0u);  // flushed: queues drained
    accesses += s.accesses;
  }
  if (obs::kEnabled) {
    EXPECT_EQ(accesses, t.size());
    // The merged view sums the per-shard queue capacity.
    EXPECT_EQ(eng.stats().queue_capacity, 2u * 128u);
  }
}

TEST(ShardedObs, ChromeTraceCarriesOneLanePerShard) {
  if (!obs::kEnabled) {
    GTEST_SKIP() << "PFP_OBS compiled out";
  }
  auto config = sharded_config(2);
  config.engine.obs.trace_capacity = 512;
  ShardedEngine eng(config);
  for (const auto& rec : random_trace(17, 5'000, 200)) {
    eng.push(rec.block);
  }
  std::ostringstream json;
  eng.write_chrome_trace(json);
  EXPECT_NE(json.str().find("\"pid\":0"), std::string::npos);
  EXPECT_NE(json.str().find("\"pid\":1"), std::string::npos);
  EXPECT_GT(eng.stats().trace_recorded, 0u);
}

TEST(ShardedObs, BackpressureWaitsSurfaceInMergedView) {
  if (!obs::kEnabled) {
    GTEST_SKIP() << "PFP_OBS compiled out";
  }
  // A tiny queue forces the producer to spin at least occasionally on a
  // 1-shard engine driven with many references.
  ShardedConfig config = sharded_config(1);
  config.queue_capacity = 2;
  ShardedEngine eng(config);
  for (const auto& rec : random_trace(2, 20'000, 400)) {
    eng.push(rec.block);
  }
  eng.flush();
  EXPECT_EQ(eng.stats().accesses, 20'000u);
  // Waits are timing-dependent; the gauge just has to be readable and
  // monotone, so only sanity-check that the field is plumbed through.
  EXPECT_EQ(eng.shard_stats(0).queue_backpressure_waits,
            eng.stats().queue_backpressure_waits);
}

}  // namespace
}  // namespace pfp::engine
