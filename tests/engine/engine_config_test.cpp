#include "engine/config.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>

#include "engine/prefetch_engine.hpp"

namespace pfp::engine {
namespace {

using core::policy::PolicyKind;

EngineConfig good_config() {
  EngineConfig c;
  c.cache_blocks = 64;
  c.policy.kind = PolicyKind::kTreeNextLimit;
  return c;
}

TEST(EngineConfigValidate, DefaultsAreValid) {
  EXPECT_NO_THROW(validate(EngineConfig{}));
  EXPECT_NO_THROW(validate(good_config()));
}

TEST(EngineConfigValidate, RejectsEmptyCache) {
  EngineConfig c = good_config();
  c.cache_blocks = 0;
  EXPECT_THROW(validate(c), std::invalid_argument);
}

TEST(EngineConfigValidate, RejectsNonPositiveHitTime) {
  EngineConfig c = good_config();
  c.timing.t_hit = 0.0;
  EXPECT_THROW(validate(c), std::invalid_argument);
  c.timing.t_hit = -0.243;
  EXPECT_THROW(validate(c), std::invalid_argument);
}

TEST(EngineConfigValidate, RejectsNonPositiveDriverTime) {
  EngineConfig c = good_config();
  c.timing.t_driver = 0.0;
  EXPECT_THROW(validate(c), std::invalid_argument);
}

TEST(EngineConfigValidate, RejectsNonPositiveDiskTime) {
  EngineConfig c = good_config();
  c.timing.t_disk = -15.0;
  EXPECT_THROW(validate(c), std::invalid_argument);
}

TEST(EngineConfigValidate, RejectsNonPositiveCpuTime) {
  EngineConfig c = good_config();
  c.timing.t_cpu = 0.0;
  EXPECT_THROW(validate(c), std::invalid_argument);
}

TEST(EngineConfigValidate, RejectsNanTiming) {
  EngineConfig c = good_config();
  c.timing.t_disk = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(validate(c), std::invalid_argument);
}

TEST(EngineConfigValidate, RejectsOblQuotaOutsideUnitInterval) {
  EngineConfig c = good_config();
  c.policy.obl_quota = -0.1;
  EXPECT_THROW(validate(c), std::invalid_argument);
  c.policy.obl_quota = 1.5;
  EXPECT_THROW(validate(c), std::invalid_argument);
}

TEST(EngineConfigValidate, RejectsThresholdOutsideUnitInterval) {
  EngineConfig c = good_config();
  c.policy.threshold = 2.0;
  EXPECT_THROW(validate(c), std::invalid_argument);
}

TEST(EngineConfigValidate, RejectsGraphMinProbabilityOutsideUnitInterval) {
  EngineConfig c = good_config();
  c.policy.graph.min_probability = -0.5;
  EXPECT_THROW(validate(c), std::invalid_argument);
}

TEST(EngineConfigValidate, RejectsZeroChildren) {
  EngineConfig c = good_config();
  c.policy.children = 0;
  EXPECT_THROW(validate(c), std::invalid_argument);
}

TEST(EngineConfigValidate, RejectsZeroPrefetchBudget) {
  EngineConfig c = good_config();
  c.policy.tree.max_prefetches_per_period = 0;
  EXPECT_THROW(validate(c), std::invalid_argument);
}

TEST(EngineConfigValidate, EngineConstructorValidates) {
  EngineConfig c = good_config();
  c.cache_blocks = 0;
  EXPECT_THROW(PrefetchEngine{c}, std::invalid_argument);
  c = good_config();
  c.timing.t_cpu = -1.0;
  EXPECT_THROW(PrefetchEngine{c}, std::invalid_argument);
}

}  // namespace
}  // namespace pfp::engine
