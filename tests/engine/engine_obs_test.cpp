// Engine <-> observability wiring: the published stats mirror the
// deterministic metrics, instrumentation never changes a decision, and
// the trace ring records what the engine did.
#include <gtest/gtest.h>

#include <sstream>

#include "engine/prefetch_engine.hpp"
#include "obs/engine_obs.hpp"
#include "util/phase.hpp"
#include "util/prng.hpp"

namespace pfp::engine {
namespace {

using core::policy::PolicyKind;

EngineConfig tree_config(std::size_t blocks = 64) {
  EngineConfig c;
  c.cache_blocks = blocks;
  c.policy.kind = PolicyKind::kTreeNextLimit;
  return c;
}

trace::Trace random_trace(std::uint64_t seed, int length, int universe) {
  trace::Trace t("t");
  util::Xoshiro256 rng(seed);
  for (int i = 0; i < length; ++i) {
    t.append(rng.below(static_cast<std::uint64_t>(universe)));
  }
  return t;
}

void expect_stats_mirror_metrics(const PrefetchEngine& eng) {
  const auto stats = eng.stats();
  const auto& m = eng.metrics();
  EXPECT_EQ(stats.accesses, m.accesses);
  EXPECT_EQ(stats.demand_hits, m.demand_hits);
  EXPECT_EQ(stats.prefetch_hits, m.prefetch_hits);
  EXPECT_EQ(stats.misses, m.misses);
  EXPECT_EQ(stats.prefetches_issued, m.policy.prefetches_issued);
  EXPECT_EQ(stats.prefetch_ejections, m.policy.prefetch_ejections);
  EXPECT_EQ(stats.demand_ejections, m.policy.demand_ejections);
  EXPECT_EQ(stats.disk_requests, m.disk_requests);
  EXPECT_EQ(stats.resident_blocks, eng.buffer_cache().resident());
  EXPECT_EQ(stats.tree_nodes, m.policy.tree_nodes);
  EXPECT_EQ(stats.elapsed_virtual_us,
            static_cast<std::uint64_t>(m.elapsed_ms * 1000.0));
  EXPECT_TRUE(stats.consistent);
  EXPECT_EQ(stats.shards, 1u);
}

TEST(EngineObs, StatsMirrorDeterministicMetrics) {
  if (!obs::kEnabled) {
    GTEST_SKIP() << "PFP_OBS compiled out";
  }
  PrefetchEngine eng(tree_config());
  const auto t = random_trace(7, 10'000, 300);
  eng.run_trace(t);
  expect_stats_mirror_metrics(eng);
}

TEST(EngineObs, InstrumentationNeverChangesDecisions) {
  // Phase timers and the event ring are write-only: a fully instrumented
  // engine must stay bit-identical to a bare one on the same stream.
  const auto t = random_trace(11, 10'000, 300);

  PrefetchEngine bare(tree_config());
  bare.run_trace(t);

  EngineConfig instrumented_config = tree_config();
  instrumented_config.obs.phase_timers = true;
  instrumented_config.obs.trace_capacity = 1024;
  PrefetchEngine instrumented(instrumented_config);
  instrumented.run_trace(t);

  EXPECT_EQ(instrumented.metrics().misses, bare.metrics().misses);
  EXPECT_EQ(instrumented.metrics().prefetch_hits,
            bare.metrics().prefetch_hits);
  EXPECT_EQ(instrumented.metrics().elapsed_ms, bare.metrics().elapsed_ms);
  EXPECT_EQ(instrumented.metrics().policy.prefetches_issued,
            bare.metrics().policy.prefetches_issued);
  EXPECT_EQ(instrumented.metrics().policy.prefetch_ejections,
            bare.metrics().policy.prefetch_ejections);
}

TEST(EngineObs, PhaseTimersCoverEveryAccess) {
  if (!obs::kEnabled) {
    GTEST_SKIP() << "PFP_OBS compiled out";
  }
  EngineConfig config = tree_config();
  config.obs.phase_timers = true;
  PrefetchEngine eng(config);
  eng.run_trace(random_trace(3, 2'000, 100));

  const auto stats = eng.stats();
  const auto lookup = static_cast<std::size_t>(util::EnginePhase::kLookup);
  const auto issue = static_cast<std::size_t>(util::EnginePhase::kIssue);
  // Lookup and issue close exactly once per access; the other phases
  // fire on subsets (misses, policy internals).
  EXPECT_EQ(stats.phases.count[lookup], eng.metrics().accesses);
  EXPECT_EQ(stats.phases.count[issue], eng.metrics().accesses);
  EXPECT_EQ(
      stats.phases.count[static_cast<std::size_t>(
          util::EnginePhase::kEviction)],
      eng.metrics().misses);
}

TEST(EngineObs, PhaseTimersOffByDefault) {
  PrefetchEngine eng(tree_config());
  eng.run_trace(random_trace(3, 500, 100));
  EXPECT_EQ(eng.stats().phases.total_count(), 0u);
  EXPECT_EQ(eng.stats().trace_capacity, 0u);
}

TEST(EngineObs, TraceRingRecordsTheRun) {
  if (!obs::kEnabled) {
    GTEST_SKIP() << "PFP_OBS compiled out";
  }
  EngineConfig config = tree_config();
  config.obs.trace_capacity = 256;
  PrefetchEngine eng(config);
  eng.run_trace(random_trace(9, 2'000, 100));

  const auto stats = eng.stats();
  EXPECT_EQ(stats.trace_capacity, 256u);
  EXPECT_GE(stats.trace_recorded, eng.metrics().accesses);
  EXPECT_EQ(stats.trace_occupancy, 256u);  // long run fills the ring
  EXPECT_EQ(stats.trace_dropped, stats.trace_recorded - 256u);

  const auto events = eng.observability().ring().events();
  ASSERT_EQ(events.size(), 256u);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_EQ(events[i].serial, events[i - 1].serial + 1);
    EXPECT_GE(events[i].ts_ms, events[i - 1].ts_ms);
  }

  std::ostringstream json;
  eng.write_chrome_trace(json);
  EXPECT_NE(json.str().find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.str().find("\"ph\":\"X\""), std::string::npos);
}

TEST(EngineObs, RestoredEnginePublishesItsStats) {
  if (!obs::kEnabled) {
    GTEST_SKIP() << "PFP_OBS compiled out";
  }
  PrefetchEngine eng(tree_config());
  eng.run_trace(random_trace(13, 5'000, 200));

  std::stringstream blob;
  eng.snapshot(blob);
  PrefetchEngine resumed(tree_config());
  resumed.restore(blob);

  expect_stats_mirror_metrics(resumed);
  EXPECT_EQ(resumed.stats().accesses, eng.stats().accesses);
}

TEST(EngineObs, DisabledBackendReportsZeros) {
  if (obs::kEnabled) {
    GTEST_SKIP() << "only meaningful with PFP_OBS off";
  }
  PrefetchEngine eng(tree_config());
  eng.run_trace(random_trace(7, 1'000, 100));
  const auto stats = eng.stats();
  EXPECT_EQ(stats.accesses, 0u);
  EXPECT_EQ(stats.trace_capacity, 0u);
  EXPECT_EQ(stats.phases.total_count(), 0u);
}

TEST(EngineObs, OversizedTraceCapacityRejected) {
  EngineConfig config = tree_config();
  config.obs.trace_capacity = (std::size_t{1} << 24) + 1;
  EXPECT_THROW(PrefetchEngine{config}, std::invalid_argument);
}

}  // namespace
}  // namespace pfp::engine
