// Thread-safety stress for the sharded engine; run under TSan in CI (the
// sanitize workflow leg selects it by the "Sharded" test-name pattern).
// The nightly leg sets PFP_STRESS_SCALE=10 to multiply every workload
// and iteration count without a separate test binary.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <thread>
#include <vector>

#include "engine/sharded_engine.hpp"
#include "trace/gen_cad.hpp"

namespace pfp::engine {
namespace {

using core::policy::PolicyKind;

std::uint64_t stress_scale() {
  static const std::uint64_t scale = [] {
    const char* env = std::getenv("PFP_STRESS_SCALE");
    if (env == nullptr) {
      return std::uint64_t{1};
    }
    const long parsed = std::atol(env);
    return parsed >= 1 ? static_cast<std::uint64_t>(parsed)
                       : std::uint64_t{1};
  }();
  return scale;
}

ShardedConfig stress_config(std::uint32_t shards) {
  ShardedConfig c;
  c.engine.cache_blocks = 128;
  c.engine.policy.kind = PolicyKind::kTreeNextLimit;
  c.shards = shards;
  c.queue_capacity = 256;  // small ring: exercise the full/backpressure path
  return c;
}

trace::Trace cad_trace(std::uint64_t references) {
  trace::CadGenerator::Config cfg;
  cfg.references = references;
  return trace::CadGenerator(cfg).generate();
}

TEST(ShardedStress, FourShardCadTraceWithInterleavedFlushes) {
  const auto t = cad_trace(100'000 * stress_scale());
  ShardedEngine eng(stress_config(4));
  for (std::size_t i = 0; i < t.size(); ++i) {
    eng.push(t[i].block);
    if (i % 9973 == 0) {
      eng.flush();  // racing flushes against busy workers
    }
  }
  const auto merged = eng.merged_metrics();
  EXPECT_EQ(merged.accesses, t.size());
  EXPECT_EQ(merged.demand_hits + merged.prefetch_hits + merged.misses,
            t.size());
}

TEST(ShardedStress, DestructionDrainsQueuedWork) {
  // Destroy the engine with requests still queued; the workers must
  // drain them (no lost accesses, no use-after-free on the queues).
  const auto t = cad_trace(30'000 * stress_scale());
  for (std::uint64_t round = 0; round < 5 * stress_scale(); ++round) {
    ShardedEngine eng(stress_config(4));
    for (const auto& rec : t) {
      eng.push(rec.block);
    }
    // No flush: destructor must drain.
  }
  SUCCEED();
}

TEST(ShardedStress, RepeatedConstructionTeardown) {
  // Thread-pool spin-up/tear-down churn with tiny work batches.
  const auto t = cad_trace(2'000 * stress_scale());
  for (std::uint64_t round = 0; round < 20 * stress_scale(); ++round) {
    ShardedEngine eng(stress_config(static_cast<std::uint32_t>(1 + round % 4)));
    for (const auto& rec : t) {
      eng.push(rec.block);
    }
    const auto merged = eng.merged_metrics();
    ASSERT_EQ(merged.accesses, t.size());
  }
}

TEST(ShardedStress, MetricsReadsAfterFlushAreStable) {
  const auto t = cad_trace(50'000 * stress_scale());
  ShardedEngine eng(stress_config(4));
  std::size_t i = 0;
  for (const auto& rec : t) {
    eng.push(rec.block);
    if (++i % 10'000 == 0) {
      eng.flush();
      // Post-flush reads must be race-free and self-consistent.
      std::uint64_t sum = 0;
      for (std::uint32_t s = 0; s < eng.shards(); ++s) {
        sum += eng.shard(s).metrics().accesses;
      }
      ASSERT_EQ(sum, i);
    }
  }
}

TEST(ShardedStress, BulkHandoffWithInterleavedDrainsAndFlushes) {
  // The batched path under TSan: staging-buffer flushes (bulk
  // try_push_n) racing bulk worker pops (try_pop_n) on small rings,
  // with drain()/flush() mixed in mid-stream.
  const auto t = cad_trace(100'000 * stress_scale());
  std::vector<trace::BlockId> blocks;
  blocks.reserve(t.size());
  for (const auto& rec : t) {
    blocks.push_back(rec.block);
  }
  ShardedEngine eng(stress_config(4));
  std::size_t i = 0;
  std::size_t round = 0;
  while (i < blocks.size()) {
    const std::size_t n = std::min<std::size_t>(blocks.size() - i,
                                                1 + (round * 131) % 997);
    eng.access_many({blocks.data() + i, n});
    i += n;
    if (++round % 17 == 0) {
      eng.drain();
    }
    if (round % 61 == 0) {
      eng.flush();
    }
  }
  const auto merged = eng.merged_metrics();
  EXPECT_EQ(merged.accesses, blocks.size());
  EXPECT_EQ(merged.demand_hits + merged.prefetch_hits + merged.misses,
            blocks.size());
}

TEST(ShardedStress, BulkDestructionDrainsStagedAndQueuedWork) {
  // Tear down with work both staged in the producer buffers and queued
  // in the rings: the destructor must flush the staging residue to the
  // rings and the workers must drain them.
  const auto t = cad_trace(30'000 * stress_scale());
  std::vector<trace::BlockId> blocks;
  blocks.reserve(t.size());
  for (const auto& rec : t) {
    blocks.push_back(rec.block);
  }
  for (std::uint64_t round = 0; round < 5 * stress_scale(); ++round) {
    ShardedEngine eng(stress_config(4));
    eng.access_many(blocks);
    // No drain, no flush: destructor must hand over staged residue.
  }
  SUCCEED();
}

TEST(ShardedStress, BulkHotKeyStrategiesUnderLoad) {
  // Both mitigation strategies racing a skewed stream through small
  // rings; completeness is the assertion, TSan the real check.
  const auto t = cad_trace(50'000 * stress_scale());
  std::vector<trace::BlockId> blocks;
  blocks.reserve(t.size());
  for (const auto& rec : t) {
    // Skew: fold a third of the stream onto 4 hot blocks.
    blocks.push_back(rec.block % 3 == 0 ? rec.block % 4 : rec.block);
  }
  for (const HotKeyStrategy strategy :
       {HotKeyStrategy::kBatchRuns, HotKeyStrategy::kRebalance}) {
    ShardedConfig c = stress_config(4);
    c.hot_keys = strategy;
    c.hot_key_min_count = 128;
    ShardedEngine eng(c);
    eng.access_many(blocks);
    const auto merged = eng.merged_metrics();
    ASSERT_EQ(merged.accesses, blocks.size());
  }
}

TEST(ShardedStress, RunRoutingUnderLoad) {
  // The positional deal racing bulk worker pops through small rings,
  // with a run length misaligned with both the chunking and the ring
  // size; completeness is the assertion, TSan the real check.
  const auto t = cad_trace(100'000 * stress_scale());
  std::vector<trace::BlockId> blocks;
  blocks.reserve(t.size());
  for (const auto& rec : t) {
    blocks.push_back(rec.block);
  }
  ShardedConfig c = stress_config(4);
  c.routing = Routing::kRuns;
  c.run_length = 193;
  ShardedEngine eng(c);
  std::size_t i = 0;
  std::size_t round = 0;
  while (i < blocks.size()) {
    const std::size_t n = std::min<std::size_t>(blocks.size() - i,
                                                1 + (round * 89) % 733);
    eng.access_many({blocks.data() + i, n});
    i += n;
    if (++round % 23 == 0) {
      eng.drain();
    }
  }
  const auto merged = eng.merged_metrics();
  EXPECT_EQ(merged.accesses, blocks.size());
  EXPECT_EQ(merged.demand_hits + merged.prefetch_hits + merged.misses,
            blocks.size());
}

}  // namespace
}  // namespace pfp::engine
