#include "engine/sharded_engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "engine/prefetch_engine.hpp"
#include "trace/gen_cad.hpp"
#include "util/prng.hpp"

namespace pfp::engine {
namespace {

using core::policy::PolicyKind;

EngineConfig tree_config(std::size_t blocks = 256) {
  EngineConfig c;
  c.cache_blocks = blocks;
  c.policy.kind = PolicyKind::kTreeNextLimit;
  return c;
}

trace::Trace cad_trace(std::uint64_t references = 50'000) {
  trace::CadGenerator::Config cfg;
  cfg.references = references;
  return trace::CadGenerator(cfg).generate();
}

TEST(ShardedEngine, RejectsBadShardCounts) {
  ShardedConfig c;
  c.engine = tree_config();
  c.shards = 0;
  EXPECT_THROW(ShardedEngine{c}, std::invalid_argument);
  c.shards = 5000;
  EXPECT_THROW(ShardedEngine{c}, std::invalid_argument);
}

TEST(ShardedEngine, ValidatesEngineConfig) {
  ShardedConfig c;
  c.engine = tree_config();
  c.engine.cache_blocks = 0;
  c.shards = 2;
  EXPECT_THROW(ShardedEngine{c}, std::invalid_argument);
}

TEST(ShardedEngine, ShardOfIsAStablePartition) {
  ShardedConfig c;
  c.engine = tree_config();
  c.shards = 4;
  ShardedEngine eng(c);
  for (trace::BlockId b = 0; b < 10'000; ++b) {
    const auto s = eng.shard_of(b);
    EXPECT_LT(s, 4u);
    EXPECT_EQ(s, eng.shard_of(b));  // stable
  }
}

TEST(ShardedEngine, AccountsEveryAccessExactlyOnce) {
  ShardedConfig c;
  c.engine = tree_config();
  c.shards = 4;
  ShardedEngine eng(c);
  const auto t = cad_trace(20'000);
  for (const auto& rec : t) {
    eng.push(rec.block);
  }
  const auto merged = eng.merged_metrics();
  EXPECT_EQ(merged.accesses, t.size());
  EXPECT_EQ(merged.demand_hits + merged.prefetch_hits + merged.misses,
            t.size());
}

// The acceptance bar from the issue: with the CAD trace block-partitioned
// across N=4 shards, every shard must reproduce bit-identically the
// metrics of a single PrefetchEngine fed that shard's sub-stream.
TEST(ShardedEngine, ShardsMatchSingleEnginePerPartitionBitIdentically) {
  const auto t = cad_trace();

  ShardedConfig c;
  c.engine = tree_config();
  c.shards = 4;
  ShardedEngine sharded(c);
  for (const auto& rec : t) {
    sharded.push(rec.block);
  }
  sharded.flush();

  for (std::uint32_t s = 0; s < c.shards; ++s) {
    PrefetchEngine reference(c.engine);
    for (const auto& rec : t) {
      if (sharded.shard_of(rec.block) == s) {
        reference.access(rec.block);
      }
    }
    const Metrics& got = sharded.shard(s).metrics();
    const Metrics& want = reference.metrics();
    EXPECT_EQ(got.accesses, want.accesses) << "shard " << s;
    EXPECT_EQ(got.demand_hits, want.demand_hits) << "shard " << s;
    EXPECT_EQ(got.prefetch_hits, want.prefetch_hits) << "shard " << s;
    EXPECT_EQ(got.misses, want.misses) << "shard " << s;
    EXPECT_EQ(got.elapsed_ms, want.elapsed_ms) << "shard " << s;
    EXPECT_EQ(got.stall_ms, want.stall_ms) << "shard " << s;
    EXPECT_EQ(got.policy.prefetches_issued, want.policy.prefetches_issued)
        << "shard " << s;
    EXPECT_EQ(got.policy.sum_prefetch_probability,
              want.policy.sum_prefetch_probability)
        << "shard " << s;
    EXPECT_EQ(got.policy.tree_nodes, want.policy.tree_nodes) << "shard " << s;
  }
}

// Property: the merged metrics are a deterministic function of the
// (trace, shard count) alone — independent of worker scheduling and of
// the order shards happen to finish in.  Run the same partitioned
// workload repeatedly under different push interleavings and demand
// bit-identical merged results (EXPECT_EQ on doubles, not EXPECT_NEAR).
TEST(ShardedEngineProperty, MergedMetricsAreDeterministic) {
  const auto t = cad_trace(30'000);
  util::Xoshiro256 rng(99);

  for (const std::uint32_t shards : {1u, 2u, 3u, 4u, 7u}) {
    ShardedConfig c;
    c.engine = tree_config(128);
    c.shards = shards;

    std::vector<Metrics> merged_runs;
    for (int run = 0; run < 3; ++run) {
      ShardedEngine eng(c);
      if (run == 0) {
        for (const auto& rec : t) {
          eng.push(rec.block);
        }
      } else {
        // Different producer pacing each run: random bursts with flushes
        // in between, so queue occupancy and worker interleaving differ
        // wildly from the straight-through push of run 0.  Per-shard
        // streams are FIFO either way, so the result may not change.
        std::size_t i = 0;
        while (i < t.size()) {
          const std::size_t burst =
              1 + static_cast<std::size_t>(rng.below(997));
          for (std::size_t j = 0; j < burst && i < t.size(); ++j, ++i) {
            eng.push(t[i].block);
          }
          if (rng.below(4) == 0) {
            eng.flush();
          }
        }
      }
      merged_runs.push_back(eng.merged_metrics());
    }

    for (std::size_t run = 1; run < merged_runs.size(); ++run) {
      const Metrics& a = merged_runs[0];
      const Metrics& b = merged_runs[run];
      EXPECT_EQ(a.accesses, b.accesses) << shards << " shards, run " << run;
      EXPECT_EQ(a.demand_hits, b.demand_hits);
      EXPECT_EQ(a.prefetch_hits, b.prefetch_hits);
      EXPECT_EQ(a.misses, b.misses);
      EXPECT_EQ(a.elapsed_ms, b.elapsed_ms);
      EXPECT_EQ(a.stall_ms, b.stall_ms);
      EXPECT_EQ(a.disk_queue_delay_ms, b.disk_queue_delay_ms);
      EXPECT_EQ(a.policy.prefetches_issued, b.policy.prefetches_issued);
      EXPECT_EQ(a.policy.sum_prefetch_probability,
                b.policy.sum_prefetch_probability);
      EXPECT_EQ(a.policy.tree_nodes, b.policy.tree_nodes);
      EXPECT_EQ(a.policy.tree_bytes, b.policy.tree_bytes);
    }
  }
}

TEST(ShardedEngine, MergeMetricsFoldsInShardIndexOrder) {
  // Double addition is not associative; merge_metrics pins the fold to
  // shard-index order so the merged value never depends on completion
  // order.  Check against a hand-rolled left fold.
  std::vector<Metrics> shards(3);
  shards[0].elapsed_ms = 0.1;
  shards[1].elapsed_ms = 1e16;
  shards[2].elapsed_ms = -1e16;
  shards[0].accesses = 1;
  shards[1].accesses = 2;
  shards[2].accesses = 3;

  const Metrics merged = merge_metrics(shards);
  EXPECT_EQ(merged.accesses, 6u);
  EXPECT_EQ(merged.elapsed_ms, (0.1 + 1e16) + -1e16);
}

TEST(ShardedEngine, SingleShardMatchesPlainEngine) {
  const auto t = cad_trace(20'000);

  ShardedConfig c;
  c.engine = tree_config();
  c.shards = 1;
  ShardedEngine sharded(c);
  for (const auto& rec : t) {
    sharded.push(rec.block);
  }

  PrefetchEngine plain(c.engine);
  for (const auto& rec : t) {
    plain.access(rec.block);
  }

  const Metrics merged = sharded.merged_metrics();
  EXPECT_EQ(merged.accesses, plain.metrics().accesses);
  EXPECT_EQ(merged.misses, plain.metrics().misses);
  EXPECT_EQ(merged.prefetch_hits, plain.metrics().prefetch_hits);
  EXPECT_EQ(merged.elapsed_ms, plain.metrics().elapsed_ms);
}

TEST(ShardedEngine, RejectsBadBatchingConfig) {
  ShardedConfig c;
  c.engine = tree_config();
  c.flush_threshold_min = 0;
  EXPECT_THROW(ShardedEngine{c}, std::invalid_argument);
  c.flush_threshold_min = 64;
  c.flush_threshold_max = 32;
  EXPECT_THROW(ShardedEngine{c}, std::invalid_argument);
  c.flush_threshold_max = 64;
  c.hot_keys = HotKeyStrategy::kRebalance;
  c.hot_key_capacity = 0;
  EXPECT_THROW(ShardedEngine{c}, std::invalid_argument);
}

// The tentpole equivalence, extended to the batched hand-off: routing a
// stream through access_many() (staging buffers, bulk ring
// transactions, bulk worker pops) must merge to exactly the metrics of
// the push-one path, for any batch split.
TEST(ShardedEngine, AccessManyMatchesPushOneBitIdentically) {
  const auto t = cad_trace(30'000);
  std::vector<trace::BlockId> blocks;
  blocks.reserve(t.size());
  for (const auto& rec : t) {
    blocks.push_back(rec.block);
  }

  ShardedConfig c;
  c.engine = tree_config(128);
  c.shards = 4;

  ShardedEngine pushed(c);
  for (const trace::BlockId block : blocks) {
    pushed.push(block);
  }
  const Metrics want = pushed.merged_metrics();

  util::Xoshiro256 rng(41);
  for (int split = 0; split < 3; ++split) {
    ShardedEngine batched(c);
    if (split == 0) {
      batched.access_many(blocks);
    } else {
      // Random chunking, with drain() sprinkled in so staged residue
      // takes the early-flush path too.
      std::size_t i = 0;
      while (i < blocks.size()) {
        const std::size_t n = std::min(
            blocks.size() - i, 1 + static_cast<std::size_t>(rng.below(777)));
        batched.access_many({blocks.data() + i, n});
        i += n;
        if (rng.below(5) == 0) {
          batched.drain();
        }
      }
    }
    const Metrics got = batched.merged_metrics();
    EXPECT_EQ(got.accesses, want.accesses) << "split " << split;
    EXPECT_EQ(got.demand_hits, want.demand_hits) << "split " << split;
    EXPECT_EQ(got.prefetch_hits, want.prefetch_hits) << "split " << split;
    EXPECT_EQ(got.misses, want.misses) << "split " << split;
    EXPECT_EQ(got.elapsed_ms, want.elapsed_ms) << "split " << split;
    EXPECT_EQ(got.stall_ms, want.stall_ms) << "split " << split;
    EXPECT_EQ(got.policy.prefetches_issued, want.policy.prefetches_issued);
    EXPECT_EQ(got.policy.sum_prefetch_probability,
              want.policy.sum_prefetch_probability);
    EXPECT_EQ(got.policy.tree_nodes, want.policy.tree_nodes);
  }
}

// Per-shard == single-engine equivalence holds on the batched path: the
// staging buffers and bulk transactions change hand-off timing, never
// per-shard order.
TEST(ShardedEngine, BatchedShardsMatchSingleEnginePerPartition) {
  const auto t = cad_trace(30'000);
  std::vector<trace::BlockId> blocks;
  blocks.reserve(t.size());
  for (const auto& rec : t) {
    blocks.push_back(rec.block);
  }

  ShardedConfig c;
  c.engine = tree_config();
  c.shards = 4;
  ShardedEngine sharded(c);
  sharded.access_many(blocks);
  sharded.flush();

  for (std::uint32_t s = 0; s < c.shards; ++s) {
    PrefetchEngine reference(c.engine);
    for (const trace::BlockId block : blocks) {
      if (sharded.shard_of(block) == s) {
        reference.access(block);
      }
    }
    const Metrics& got = sharded.shard(s).metrics();
    const Metrics& want = reference.metrics();
    EXPECT_EQ(got.accesses, want.accesses) << "shard " << s;
    EXPECT_EQ(got.misses, want.misses) << "shard " << s;
    EXPECT_EQ(got.prefetch_hits, want.prefetch_hits) << "shard " << s;
    EXPECT_EQ(got.elapsed_ms, want.elapsed_ms) << "shard " << s;
    EXPECT_EQ(got.policy.sum_prefetch_probability,
              want.policy.sum_prefetch_probability)
        << "shard " << s;
  }
}

TEST(ShardedEngine, DrainFlushesStagedResidue) {
  ShardedConfig c;
  c.engine = tree_config();
  c.shards = 2;
  ShardedEngine eng(c);
  // 5 references — far below flush_threshold_min, so they sit in the
  // staging buffers until drained.
  const std::vector<trace::BlockId> blocks{1, 2, 3, 4, 5};
  eng.access_many(blocks);
  eng.drain();  // residue reaches the rings without a full flush()
  const Metrics merged = eng.merged_metrics();
  EXPECT_EQ(merged.accesses, 5u);
}

TEST(ShardedEngine, DestructorDrainsStagedResidue) {
  // Staged residue must not be lost when the engine is torn down
  // without an explicit drain()/flush().  Indirect check: destruction
  // must not deadlock and the workers must have consumed the residue
  // (observed through a second engine replaying the same stream — the
  // real assertion is that this test terminates and ASan/TSan legs see
  // no lost writes).
  const std::vector<trace::BlockId> blocks{10, 20, 30};
  ShardedConfig c;
  c.engine = tree_config();
  c.shards = 2;
  {
    ShardedEngine eng(c);
    eng.access_many(blocks);
    // No drain(), no flush(): ~ShardedEngine must hand the residue over
    // before stopping the workers.
  }
  SUCCEED();
}

TEST(ShardedEngine, MixedPushAndAccessManyPreservePerShardFifo) {
  const auto t = cad_trace(20'000);
  std::vector<trace::BlockId> blocks;
  blocks.reserve(t.size());
  for (const auto& rec : t) {
    blocks.push_back(rec.block);
  }

  ShardedConfig c;
  c.engine = tree_config(128);
  c.shards = 3;

  ShardedEngine pure(c);
  for (const trace::BlockId block : blocks) {
    pure.push(block);
  }
  const Metrics want = pure.merged_metrics();

  // Alternate entry points mid-stream: push() must flush a shard's
  // staged residue before its direct ring push, or the shard would see
  // the stream out of order.
  ShardedEngine mixed(c);
  util::Xoshiro256 rng(43);
  std::size_t i = 0;
  while (i < blocks.size()) {
    if (rng.below(2) == 0) {
      mixed.push(blocks[i++]);
    } else {
      const std::size_t n = std::min(
          blocks.size() - i, 1 + static_cast<std::size_t>(rng.below(200)));
      mixed.access_many({blocks.data() + i, n});
      i += n;
    }
  }
  const Metrics got = mixed.merged_metrics();
  EXPECT_EQ(got.accesses, want.accesses);
  EXPECT_EQ(got.misses, want.misses);
  EXPECT_EQ(got.prefetch_hits, want.prefetch_hits);
  EXPECT_EQ(got.elapsed_ms, want.elapsed_ms);
  EXPECT_EQ(got.policy.sum_prefetch_probability,
            want.policy.sum_prefetch_probability);
}

std::vector<trace::BlockId> zipf_blocks(std::uint64_t seed, int length) {
  // Half the stream on 8 hot blocks, half uniform: the skew the hot-key
  // strategies exist for.
  std::vector<trace::BlockId> out;
  out.reserve(static_cast<std::size_t>(length));
  util::Xoshiro256 rng(seed);
  for (int i = 0; i < length; ++i) {
    if (rng.below(2) == 0) {
      out.push_back(rng.below(8));
    } else {
      out.push_back(8 + rng.below(50'000));
    }
  }
  return out;
}

TEST(ShardedEngine, BatchRunsStrategyChangesOnlyFlushTiming) {
  // kBatchRuns defers hot shards' flushes to the max threshold — the
  // per-shard sub-streams are untouched, so every metric must equal the
  // kNone run bit for bit.
  const auto blocks = zipf_blocks(51, 40'000);

  ShardedConfig c;
  c.engine = tree_config(128);
  c.shards = 4;
  c.hot_key_min_count = 64;

  ShardedEngine plain(c);
  plain.access_many(blocks);
  const Metrics want = plain.merged_metrics();

  c.hot_keys = HotKeyStrategy::kBatchRuns;
  ShardedEngine batched(c);
  batched.access_many(blocks);
  const Metrics got = batched.merged_metrics();

  EXPECT_EQ(got.accesses, want.accesses);
  EXPECT_EQ(got.demand_hits, want.demand_hits);
  EXPECT_EQ(got.prefetch_hits, want.prefetch_hits);
  EXPECT_EQ(got.misses, want.misses);
  EXPECT_EQ(got.elapsed_ms, want.elapsed_ms);
  EXPECT_EQ(got.policy.sum_prefetch_probability,
            want.policy.sum_prefetch_probability);
}

TEST(ShardedEngine, RebalanceStrategyIsDeterministicAndComplete) {
  // kRebalance re-routes guaranteed-heavy keys, so merged metrics
  // legitimately differ from kNone — but the sketch is a pure function
  // of the stream prefix, so two identical runs must agree bit for bit,
  // and every access must still be accounted exactly once.
  const auto blocks = zipf_blocks(53, 40'000);

  ShardedConfig c;
  c.engine = tree_config(128);
  c.shards = 4;
  c.hot_keys = HotKeyStrategy::kRebalance;
  c.hot_key_min_count = 64;

  std::vector<Metrics> runs;
  for (int run = 0; run < 2; ++run) {
    ShardedEngine eng(c);
    eng.access_many(blocks);
    runs.push_back(eng.merged_metrics());
    EXPECT_EQ(runs.back().accesses, blocks.size());
    EXPECT_EQ(runs.back().demand_hits + runs.back().prefetch_hits +
                  runs.back().misses,
              blocks.size());
  }
  EXPECT_EQ(runs[0].misses, runs[1].misses);
  EXPECT_EQ(runs[0].prefetch_hits, runs[1].prefetch_hits);
  EXPECT_EQ(runs[0].elapsed_ms, runs[1].elapsed_ms);
  EXPECT_EQ(runs[0].policy.sum_prefetch_probability,
            runs[1].policy.sum_prefetch_probability);
}

TEST(ShardedEngine, BackpressureIsCountedNotBurned) {
  // A 2-slot ring in front of the full per-access state machine forces
  // the producer into the backpressure path constantly on a shared
  // core.  The regression contract: push() escalates through
  // util::Backoff (bounded spins, then yields — it cannot burn a core
  // unbounded, which is what let this test deadlock-watchdog before the
  // fix) and every wait increments the push_waits counter surfaced in
  // shard_stats().
  ShardedConfig c;
  c.engine = tree_config(64);
  c.shards = 2;
  c.queue_capacity = 2;
  c.flush_threshold_min = 2;
  c.flush_threshold_max = 4;
  ShardedEngine eng(c);
  const auto t = cad_trace(20'000);
  for (const auto& rec : t) {
    eng.push(rec.block);
  }
  eng.flush();
  std::uint64_t waits = 0;
  for (std::uint32_t s = 0; s < eng.shards(); ++s) {
    waits += eng.shard_stats(s).queue_backpressure_waits;
  }
  EXPECT_GT(waits, 0u);
  EXPECT_EQ(eng.merged_metrics().accesses, t.size());
}

TEST(ShardedEngine, RejectsBadRunRoutingConfig) {
  ShardedConfig c;
  c.engine = tree_config();
  c.run_length = 0;
  EXPECT_THROW(ShardedEngine{c}, std::invalid_argument);
  c.run_length = 64;
  c.routing = Routing::kRuns;
  c.hot_keys = HotKeyStrategy::kRebalance;  // no key affinity to rebalance
  EXPECT_THROW(ShardedEngine{c}, std::invalid_argument);
}

// Run routing deals the stream out by position, so each shard must
// reproduce bit-identically a single engine fed that shard's positional
// slices — the kRuns analogue of the shard_of() partition equivalence.
TEST(ShardedEngine, RunRoutedShardsMatchSingleEnginePerSlice) {
  const auto t = cad_trace(30'000);
  std::vector<trace::BlockId> blocks;
  blocks.reserve(t.size());
  for (const auto& rec : t) {
    blocks.push_back(rec.block);
  }

  ShardedConfig c;
  c.engine = tree_config();
  c.shards = 3;
  c.routing = Routing::kRuns;
  c.run_length = 100;
  ShardedEngine sharded(c);
  sharded.access_many(blocks);
  sharded.flush();

  for (std::uint32_t s = 0; s < c.shards; ++s) {
    PrefetchEngine reference(c.engine);
    for (std::size_t i = 0; i < blocks.size(); ++i) {
      if ((i / c.run_length) % c.shards == s) {
        reference.access(blocks[i]);
      }
    }
    const Metrics& got = sharded.shard(s).metrics();
    const Metrics& want = reference.metrics();
    EXPECT_EQ(got.accesses, want.accesses) << "shard " << s;
    EXPECT_EQ(got.misses, want.misses) << "shard " << s;
    EXPECT_EQ(got.prefetch_hits, want.prefetch_hits) << "shard " << s;
    EXPECT_EQ(got.elapsed_ms, want.elapsed_ms) << "shard " << s;
    EXPECT_EQ(got.policy.sum_prefetch_probability,
              want.policy.sum_prefetch_probability)
        << "shard " << s;
  }
}

// The deal is a pure function of the stream position, not of the entry
// point: any mix of push() and access_many() over the same stream must
// land every reference on the same shard.
TEST(ShardedEngine, RunRoutingIsStableAcrossEntryPoints) {
  const auto t = cad_trace(20'000);
  std::vector<trace::BlockId> blocks;
  blocks.reserve(t.size());
  for (const auto& rec : t) {
    blocks.push_back(rec.block);
  }

  ShardedConfig c;
  c.engine = tree_config(128);
  c.shards = 4;
  c.routing = Routing::kRuns;
  c.run_length = 37;  // deliberately misaligned with the chunking below

  ShardedEngine batched(c);
  batched.access_many(blocks);
  batched.flush();

  ShardedEngine mixed(c);
  util::Xoshiro256 rng(7);
  std::size_t i = 0;
  while (i < blocks.size()) {
    if (rng.below(2) == 0) {
      mixed.push(blocks[i]);
      ++i;
    } else {
      const std::size_t n = std::min(
          blocks.size() - i, 1 + static_cast<std::size_t>(rng.below(100)));
      mixed.access_many({blocks.data() + i, n});
      i += n;
    }
  }
  mixed.flush();

  for (std::uint32_t s = 0; s < c.shards; ++s) {
    const Metrics& got = mixed.shard(s).metrics();
    const Metrics& want = batched.shard(s).metrics();
    EXPECT_EQ(got.accesses, want.accesses) << "shard " << s;
    EXPECT_EQ(got.misses, want.misses) << "shard " << s;
    EXPECT_EQ(got.elapsed_ms, want.elapsed_ms) << "shard " << s;
  }
}

// kBatchRuns composes with run routing (only kRebalance is rejected):
// the sketch drives flush timing, never the deal, so merged metrics
// stay bit-identical to the kNone fold.
TEST(ShardedEngine, RunRoutingComposesWithBatchRunsStrategy) {
  const auto blocks = zipf_blocks(31, 30'000);

  ShardedConfig c;
  c.engine = tree_config(128);
  c.shards = 4;
  c.routing = Routing::kRuns;
  c.run_length = 64;

  ShardedEngine plain(c);
  plain.access_many(blocks);
  const Metrics want = plain.merged_metrics();

  c.hot_keys = HotKeyStrategy::kBatchRuns;
  c.hot_key_min_count = 64;
  ShardedEngine hot(c);
  hot.access_many(blocks);
  const Metrics got = hot.merged_metrics();

  EXPECT_EQ(got.accesses, want.accesses);
  EXPECT_EQ(got.misses, want.misses);
  EXPECT_EQ(got.prefetch_hits, want.prefetch_hits);
  EXPECT_EQ(got.elapsed_ms, want.elapsed_ms);
  EXPECT_EQ(got.policy.sum_prefetch_probability,
            want.policy.sum_prefetch_probability);
}

}  // namespace
}  // namespace pfp::engine
