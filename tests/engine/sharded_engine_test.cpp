#include "engine/sharded_engine.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "engine/prefetch_engine.hpp"
#include "trace/gen_cad.hpp"
#include "util/prng.hpp"

namespace pfp::engine {
namespace {

using core::policy::PolicyKind;

EngineConfig tree_config(std::size_t blocks = 256) {
  EngineConfig c;
  c.cache_blocks = blocks;
  c.policy.kind = PolicyKind::kTreeNextLimit;
  return c;
}

trace::Trace cad_trace(std::uint64_t references = 50'000) {
  trace::CadGenerator::Config cfg;
  cfg.references = references;
  return trace::CadGenerator(cfg).generate();
}

TEST(ShardedEngine, RejectsBadShardCounts) {
  ShardedConfig c;
  c.engine = tree_config();
  c.shards = 0;
  EXPECT_THROW(ShardedEngine{c}, std::invalid_argument);
  c.shards = 5000;
  EXPECT_THROW(ShardedEngine{c}, std::invalid_argument);
}

TEST(ShardedEngine, ValidatesEngineConfig) {
  ShardedConfig c;
  c.engine = tree_config();
  c.engine.cache_blocks = 0;
  c.shards = 2;
  EXPECT_THROW(ShardedEngine{c}, std::invalid_argument);
}

TEST(ShardedEngine, ShardOfIsAStablePartition) {
  ShardedConfig c;
  c.engine = tree_config();
  c.shards = 4;
  ShardedEngine eng(c);
  for (trace::BlockId b = 0; b < 10'000; ++b) {
    const auto s = eng.shard_of(b);
    EXPECT_LT(s, 4u);
    EXPECT_EQ(s, eng.shard_of(b));  // stable
  }
}

TEST(ShardedEngine, AccountsEveryAccessExactlyOnce) {
  ShardedConfig c;
  c.engine = tree_config();
  c.shards = 4;
  ShardedEngine eng(c);
  const auto t = cad_trace(20'000);
  for (const auto& rec : t) {
    eng.push(rec.block);
  }
  const auto merged = eng.merged_metrics();
  EXPECT_EQ(merged.accesses, t.size());
  EXPECT_EQ(merged.demand_hits + merged.prefetch_hits + merged.misses,
            t.size());
}

// The acceptance bar from the issue: with the CAD trace block-partitioned
// across N=4 shards, every shard must reproduce bit-identically the
// metrics of a single PrefetchEngine fed that shard's sub-stream.
TEST(ShardedEngine, ShardsMatchSingleEnginePerPartitionBitIdentically) {
  const auto t = cad_trace();

  ShardedConfig c;
  c.engine = tree_config();
  c.shards = 4;
  ShardedEngine sharded(c);
  for (const auto& rec : t) {
    sharded.push(rec.block);
  }
  sharded.flush();

  for (std::uint32_t s = 0; s < c.shards; ++s) {
    PrefetchEngine reference(c.engine);
    for (const auto& rec : t) {
      if (sharded.shard_of(rec.block) == s) {
        reference.access(rec.block);
      }
    }
    const Metrics& got = sharded.shard(s).metrics();
    const Metrics& want = reference.metrics();
    EXPECT_EQ(got.accesses, want.accesses) << "shard " << s;
    EXPECT_EQ(got.demand_hits, want.demand_hits) << "shard " << s;
    EXPECT_EQ(got.prefetch_hits, want.prefetch_hits) << "shard " << s;
    EXPECT_EQ(got.misses, want.misses) << "shard " << s;
    EXPECT_EQ(got.elapsed_ms, want.elapsed_ms) << "shard " << s;
    EXPECT_EQ(got.stall_ms, want.stall_ms) << "shard " << s;
    EXPECT_EQ(got.policy.prefetches_issued, want.policy.prefetches_issued)
        << "shard " << s;
    EXPECT_EQ(got.policy.sum_prefetch_probability,
              want.policy.sum_prefetch_probability)
        << "shard " << s;
    EXPECT_EQ(got.policy.tree_nodes, want.policy.tree_nodes) << "shard " << s;
  }
}

// Property: the merged metrics are a deterministic function of the
// (trace, shard count) alone — independent of worker scheduling and of
// the order shards happen to finish in.  Run the same partitioned
// workload repeatedly under different push interleavings and demand
// bit-identical merged results (EXPECT_EQ on doubles, not EXPECT_NEAR).
TEST(ShardedEngineProperty, MergedMetricsAreDeterministic) {
  const auto t = cad_trace(30'000);
  util::Xoshiro256 rng(99);

  for (const std::uint32_t shards : {1u, 2u, 3u, 4u, 7u}) {
    ShardedConfig c;
    c.engine = tree_config(128);
    c.shards = shards;

    std::vector<Metrics> merged_runs;
    for (int run = 0; run < 3; ++run) {
      ShardedEngine eng(c);
      if (run == 0) {
        for (const auto& rec : t) {
          eng.push(rec.block);
        }
      } else {
        // Different producer pacing each run: random bursts with flushes
        // in between, so queue occupancy and worker interleaving differ
        // wildly from the straight-through push of run 0.  Per-shard
        // streams are FIFO either way, so the result may not change.
        std::size_t i = 0;
        while (i < t.size()) {
          const std::size_t burst =
              1 + static_cast<std::size_t>(rng.below(997));
          for (std::size_t j = 0; j < burst && i < t.size(); ++j, ++i) {
            eng.push(t[i].block);
          }
          if (rng.below(4) == 0) {
            eng.flush();
          }
        }
      }
      merged_runs.push_back(eng.merged_metrics());
    }

    for (std::size_t run = 1; run < merged_runs.size(); ++run) {
      const Metrics& a = merged_runs[0];
      const Metrics& b = merged_runs[run];
      EXPECT_EQ(a.accesses, b.accesses) << shards << " shards, run " << run;
      EXPECT_EQ(a.demand_hits, b.demand_hits);
      EXPECT_EQ(a.prefetch_hits, b.prefetch_hits);
      EXPECT_EQ(a.misses, b.misses);
      EXPECT_EQ(a.elapsed_ms, b.elapsed_ms);
      EXPECT_EQ(a.stall_ms, b.stall_ms);
      EXPECT_EQ(a.disk_queue_delay_ms, b.disk_queue_delay_ms);
      EXPECT_EQ(a.policy.prefetches_issued, b.policy.prefetches_issued);
      EXPECT_EQ(a.policy.sum_prefetch_probability,
                b.policy.sum_prefetch_probability);
      EXPECT_EQ(a.policy.tree_nodes, b.policy.tree_nodes);
      EXPECT_EQ(a.policy.tree_bytes, b.policy.tree_bytes);
    }
  }
}

TEST(ShardedEngine, MergeMetricsFoldsInShardIndexOrder) {
  // Double addition is not associative; merge_metrics pins the fold to
  // shard-index order so the merged value never depends on completion
  // order.  Check against a hand-rolled left fold.
  std::vector<Metrics> shards(3);
  shards[0].elapsed_ms = 0.1;
  shards[1].elapsed_ms = 1e16;
  shards[2].elapsed_ms = -1e16;
  shards[0].accesses = 1;
  shards[1].accesses = 2;
  shards[2].accesses = 3;

  const Metrics merged = merge_metrics(shards);
  EXPECT_EQ(merged.accesses, 6u);
  EXPECT_EQ(merged.elapsed_ms, (0.1 + 1e16) + -1e16);
}

TEST(ShardedEngine, SingleShardMatchesPlainEngine) {
  const auto t = cad_trace(20'000);

  ShardedConfig c;
  c.engine = tree_config();
  c.shards = 1;
  ShardedEngine sharded(c);
  for (const auto& rec : t) {
    sharded.push(rec.block);
  }

  PrefetchEngine plain(c.engine);
  for (const auto& rec : t) {
    plain.access(rec.block);
  }

  const Metrics merged = sharded.merged_metrics();
  EXPECT_EQ(merged.accesses, plain.metrics().accesses);
  EXPECT_EQ(merged.misses, plain.metrics().misses);
  EXPECT_EQ(merged.prefetch_hits, plain.metrics().prefetch_hits);
  EXPECT_EQ(merged.elapsed_ms, plain.metrics().elapsed_ms);
}

}  // namespace
}  // namespace pfp::engine
