// Snapshot stream migration: v1 images (predictor-tree flag + raw PFTR
// stream) must keep restoring bit-identically under the v2 reader, and
// the v2 tagged predictor blob must fail closed — truncation, garbage,
// implausible lengths, trailing bytes, and cross-kind restores all raise
// typed errors instead of silently corrupting the predictor.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>

#include "engine/prefetch_engine.hpp"
#include "util/prng.hpp"

namespace pfp::engine {
namespace {

using core::policy::PolicyKind;

EngineConfig config_for(PolicyKind kind, std::size_t blocks = 64) {
  EngineConfig c;
  c.cache_blocks = blocks;
  c.policy.kind = kind;
  return c;
}

trace::Trace random_trace(std::uint64_t seed, int length, int universe) {
  trace::Trace t("t");
  util::Xoshiro256 rng(seed);
  for (int i = 0; i < length; ++i) {
    t.append(rng.below(static_cast<std::uint64_t>(universe)));
  }
  return t;
}

std::string snapshot_bytes(const PrefetchEngine& eng) {
  std::stringstream stream;
  eng.snapshot(stream);
  return stream.str();
}

std::string predictor_blob(const PrefetchEngine& eng) {
  std::ostringstream blob;
  eng.prefetcher().save_predictor_state(blob);
  return std::move(blob).str();
}

/// Rewrites a v2 snapshot into the v1 wire format: the common body is
/// unchanged, the tagged length-prefixed tail becomes a presence flag
/// followed by the raw predictor stream.  This is exactly what old v1
/// writers produced, so the migration tests need no archived fixtures.
std::string as_v1_image(const std::string& v2, const std::string& blob,
                        bool carries_tree) {
  const std::size_t tail = 4 + (carries_tree ? 8 + blob.size() : 0);
  std::string image = v2.substr(0, v2.size() - tail);
  image[4] = '\1';  // little-endian u16 version = 1
  image[5] = '\0';
  image.push_back(carries_tree ? '\1' : '\0');
  if (carries_tree) {
    image += blob;
  }
  return image;
}

void expect_restore_error(const EngineConfig& config,
                          const std::string& image,
                          const std::string& needle) {
  PrefetchEngine eng(config);
  std::stringstream stream(image);
  try {
    eng.restore(stream);
    FAIL() << "restore accepted a corrupt image (wanted: " << needle << ")";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << e.what();
  }
}

TEST(SnapshotMigration, V1TreeImageRestoresBitIdentically) {
  const EngineConfig config = config_for(PolicyKind::kTreeNextLimit);
  PrefetchEngine trained(config);
  trained.run_trace(random_trace(11, 20'000, 300));

  const std::string v2 = snapshot_bytes(trained);
  const std::string v1 =
      as_v1_image(v2, predictor_blob(trained), /*carries_tree=*/true);

  PrefetchEngine restored(config);
  std::stringstream stream(v1);
  restored.restore(stream);

  // Re-snapshotting the v1-restored engine reproduces the v2 image byte
  // for byte: nothing was lost or reinterpreted in migration.
  EXPECT_EQ(snapshot_bytes(restored), v2);
}

TEST(SnapshotMigration, V1TreelessImageRestores) {
  const EngineConfig config = config_for(PolicyKind::kNextLimit);
  PrefetchEngine trained(config);
  trained.run_trace(random_trace(13, 5'000, 100));

  const std::string v2 = snapshot_bytes(trained);
  const std::string v1 = as_v1_image(v2, "", /*carries_tree=*/false);

  PrefetchEngine restored(config);
  std::stringstream stream(v1);
  restored.restore(stream);
  EXPECT_EQ(restored.metrics().misses, trained.metrics().misses);
  EXPECT_EQ(snapshot_bytes(restored), v2);
}

TEST(SnapshotMigration, V1TreeImageRejectsTreelessPolicies) {
  const EngineConfig tree_config = config_for(PolicyKind::kTreeNextLimit);
  PrefetchEngine trained(tree_config);
  trained.run_trace(random_trace(17, 5'000, 100));
  const std::string v1 = as_v1_image(
      snapshot_bytes(trained), predictor_blob(trained), /*carries_tree=*/true);

  // Same cache geometry, but the configured policy keeps no tree.
  expect_restore_error(config_for(PolicyKind::kNextLimit), v1,
                       "snapshot carries a predictor tree");
}

TEST(SnapshotMigration, V2RoundTripsTheMarkovPredictor) {
  const EngineConfig config = config_for(PolicyKind::kMarkov);
  PrefetchEngine original(config);
  original.run_trace(random_trace(19, 20'000, 200));

  std::stringstream stream(snapshot_bytes(original));
  PrefetchEngine resumed(config);
  resumed.restore(stream);

  // The chain's parse position is transient by design, so continuation
  // outcomes may differ on the first accesses; the durable state — rows,
  // counts, residency, metrics — must re-snapshot byte-identically.
  EXPECT_EQ(snapshot_bytes(resumed), snapshot_bytes(original));
}

TEST(SnapshotMigration, V2RoundTripsTheAssocPredictor) {
  const EngineConfig config = config_for(PolicyKind::kAssoc);
  PrefetchEngine original(config);
  original.run_trace(random_trace(23, 20'000, 200));

  std::stringstream stream(snapshot_bytes(original));
  PrefetchEngine resumed(config);
  resumed.restore(stream);
  EXPECT_EQ(snapshot_bytes(resumed), snapshot_bytes(original));
}

TEST(SnapshotMigration, V2RejectsCrossKindRestores) {
  PrefetchEngine markov(config_for(PolicyKind::kMarkov));
  markov.run_trace(random_trace(29, 5'000, 100));
  const std::string image = snapshot_bytes(markov);

  expect_restore_error(config_for(PolicyKind::kAssoc), image,
                       "predictor kind mismatch: snapshot carries markov "
                       "state but the configured policy keeps assoc");
  expect_restore_error(config_for(PolicyKind::kTreeNextLimit), image,
                       "predictor kind mismatch");
  expect_restore_error(config_for(PolicyKind::kNextLimit), image,
                       "predictor kind mismatch");
}

TEST(SnapshotMigration, V2RejectsATruncatedPredictorTag) {
  PrefetchEngine markov(config_for(PolicyKind::kMarkov));
  markov.run_trace(random_trace(31, 5'000, 100));
  const std::string image = snapshot_bytes(markov);
  const std::size_t tail = 4 + 8 + predictor_blob(markov).size();

  expect_restore_error(config_for(PolicyKind::kMarkov),
                       image.substr(0, image.size() - tail),
                       "truncated predictor tag");
}

TEST(SnapshotMigration, V2RejectsATruncatedPredictorBlob) {
  PrefetchEngine markov(config_for(PolicyKind::kMarkov));
  markov.run_trace(random_trace(37, 5'000, 100));
  const std::string image = snapshot_bytes(markov);

  expect_restore_error(config_for(PolicyKind::kMarkov),
                       image.substr(0, image.size() - 3),
                       "truncated predictor blob");
}

TEST(SnapshotMigration, V2RejectsAnImplausibleBlobLength) {
  PrefetchEngine markov(config_for(PolicyKind::kMarkov));
  markov.run_trace(random_trace(41, 5'000, 100));
  std::string image = snapshot_bytes(markov);
  const std::size_t blob_size = predictor_blob(markov).size();

  // Overwrite the little-endian u64 length prefix with ~2^62 bytes.
  const std::size_t len_at = image.size() - blob_size - 8;
  for (int i = 0; i < 8; ++i) {
    image[len_at + static_cast<std::size_t>(i)] = (i == 7) ? '\x40' : '\0';
  }
  expect_restore_error(config_for(PolicyKind::kMarkov), image,
                       "implausible predictor blob length");
}

TEST(SnapshotMigration, V2RejectsAGarbagePredictorBlob) {
  PrefetchEngine markov(config_for(PolicyKind::kMarkov));
  markov.run_trace(random_trace(43, 5'000, 100));
  std::string image = snapshot_bytes(markov);
  const std::size_t blob_size = predictor_blob(markov).size();

  // Stomp the blob's own magic: the policy's deserializer must refuse.
  const std::size_t blob_at = image.size() - blob_size;
  image[blob_at] = 'X';
  image[blob_at + 1] = 'X';

  PrefetchEngine eng(config_for(PolicyKind::kMarkov));
  std::stringstream stream(image);
  EXPECT_THROW(eng.restore(stream), std::runtime_error);
}

TEST(SnapshotMigration, V2RejectsTrailingBlobBytes) {
  PrefetchEngine markov(config_for(PolicyKind::kMarkov));
  markov.run_trace(random_trace(47, 5'000, 100));
  std::string image = snapshot_bytes(markov);
  const std::size_t blob_size = predictor_blob(markov).size();

  // Grow the declared length by four and pad: the policy parses its
  // stream, the engine must notice the unconsumed tail.
  const std::size_t len_at = image.size() - blob_size - 8;
  const std::uint64_t padded = static_cast<std::uint64_t>(blob_size) + 4;
  for (int i = 0; i < 8; ++i) {
    image[len_at + static_cast<std::size_t>(i)] =
        static_cast<char>((padded >> (8 * i)) & 0xff);
  }
  image += "pad!";
  expect_restore_error(config_for(PolicyKind::kMarkov), image,
                       "predictor blob has trailing bytes");
}

}  // namespace
}  // namespace pfp::engine
