// The access_many() bit-identity contract: the batched loop hoists
// per-access setup (context build, dispatch resolution, observability
// publish) but must produce exactly the metrics of the push-one path —
// same decisions, same timing charges, down to the last double.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <span>
#include <vector>

#include "engine/prefetch_engine.hpp"
#include "util/prng.hpp"

namespace pfp::engine {
namespace {

using core::policy::PolicyKind;

EngineConfig config_for(PolicyKind kind, std::size_t blocks = 64) {
  EngineConfig c;
  c.cache_blocks = blocks;
  c.policy.kind = kind;
  return c;
}

std::vector<trace::BlockId> random_blocks(std::uint64_t seed, int length,
                                          int universe) {
  std::vector<trace::BlockId> out;
  out.reserve(static_cast<std::size_t>(length));
  util::Xoshiro256 rng(seed);
  for (int i = 0; i < length; ++i) {
    out.push_back(rng.below(static_cast<std::uint64_t>(universe)));
  }
  return out;
}

trace::Trace as_trace(const std::vector<trace::BlockId>& blocks) {
  trace::Trace t("t");
  for (const trace::BlockId block : blocks) {
    t.append(block);
  }
  return t;
}

void expect_identical(const Metrics& a, const Metrics& b) {
  EXPECT_EQ(a.accesses, b.accesses);
  EXPECT_EQ(a.demand_hits, b.demand_hits);
  EXPECT_EQ(a.prefetch_hits, b.prefetch_hits);
  EXPECT_EQ(a.misses, b.misses);
  EXPECT_EQ(a.elapsed_ms, b.elapsed_ms);
  EXPECT_EQ(a.stall_ms, b.stall_ms);
  EXPECT_EQ(a.disk_queue_delay_ms, b.disk_queue_delay_ms);
  EXPECT_EQ(a.disk_requests, b.disk_requests);
  EXPECT_EQ(a.policy.prefetches_issued, b.policy.prefetches_issued);
  EXPECT_EQ(a.policy.obl_prefetches_issued, b.policy.obl_prefetches_issued);
  EXPECT_EQ(a.policy.tree_prefetches_issued,
            b.policy.tree_prefetches_issued);
  EXPECT_EQ(a.policy.sum_prefetch_probability,
            b.policy.sum_prefetch_probability);
  EXPECT_EQ(a.policy.candidates_chosen, b.policy.candidates_chosen);
  EXPECT_EQ(a.policy.candidates_already_cached,
            b.policy.candidates_already_cached);
  EXPECT_EQ(a.policy.prefetch_ejections, b.policy.prefetch_ejections);
  EXPECT_EQ(a.policy.demand_ejections, b.policy.demand_ejections);
  EXPECT_EQ(a.policy.predictable, b.policy.predictable);
  EXPECT_EQ(a.policy.predictable_uncached, b.policy.predictable_uncached);
  EXPECT_EQ(a.policy.lvc_opportunities, b.policy.lvc_opportunities);
  EXPECT_EQ(a.policy.lvc_followed, b.policy.lvc_followed);
  EXPECT_EQ(a.policy.lvc_checks, b.policy.lvc_checks);
  EXPECT_EQ(a.policy.lvc_cached, b.policy.lvc_cached);
  EXPECT_EQ(a.policy.tree_nodes, b.policy.tree_nodes);
}

TEST(AccessMany, MatchesPushOneExactlyAcrossPolicies) {
  const auto blocks = random_blocks(3, 20'000, 400);
  for (const PolicyKind kind :
       {PolicyKind::kNoPrefetch, PolicyKind::kNextLimit, PolicyKind::kTree,
        PolicyKind::kTreeNextLimit, PolicyKind::kTreeLvc,
        PolicyKind::kTreeThreshold, PolicyKind::kTreeChildren,
        PolicyKind::kTreeAdaptive}) {
    SCOPED_TRACE(static_cast<int>(kind));
    PrefetchEngine batched(config_for(kind));
    batched.access_many(blocks);

    PrefetchEngine one(config_for(kind));
    for (const trace::BlockId block : blocks) {
      one.access(block);
    }
    expect_identical(batched.metrics(), one.metrics());
  }
}

TEST(AccessMany, BatchSizeIsInvariant) {
  // Splitting the stream into runs of any size must not change a single
  // metric: period numbering continues across calls because it rides
  // the running access counter, not the batch offset.
  const auto blocks = random_blocks(11, 15'000, 300);
  PrefetchEngine whole(config_for(PolicyKind::kTreeNextLimit));
  whole.access_many(blocks);

  for (const std::size_t chunk : {std::size_t{1}, std::size_t{3},
                                  std::size_t{64}, std::size_t{1000}}) {
    SCOPED_TRACE(chunk);
    PrefetchEngine split(config_for(PolicyKind::kTreeNextLimit));
    std::span<const trace::BlockId> rest(blocks);
    while (!rest.empty()) {
      const std::size_t n = std::min(chunk, rest.size());
      split.access_many(rest.first(n));
      rest = rest.subspan(n);
    }
    expect_identical(split.metrics(), whole.metrics());
  }
}

TEST(AccessMany, MatchesRunTraceOnFreshEngine) {
  // run_trace() replays through access_many() when the engine is fresh
  // and the policy is not the oracle; the three paths must agree.
  const auto blocks = random_blocks(5, 20'000, 500);
  const auto t = as_trace(blocks);

  PrefetchEngine replayed(config_for(PolicyKind::kTreeNextLimit));
  replayed.run_trace(t);

  PrefetchEngine batched(config_for(PolicyKind::kTreeNextLimit));
  batched.access_many(blocks);

  expect_identical(replayed.metrics(), batched.metrics());
}

TEST(AccessMany, BatchResultSumsTheBatch) {
  const auto blocks = random_blocks(7, 10'000, 250);

  PrefetchEngine one(config_for(PolicyKind::kTreeNextLimit));
  std::uint64_t demand_hits = 0;
  std::uint64_t prefetch_hits = 0;
  std::uint64_t misses = 0;
  double latency_ms = 0.0;
  for (const trace::BlockId block : blocks) {
    const AccessResult r = one.access(block);
    demand_hits += r.outcome == Outcome::kDemandHit ? 1 : 0;
    prefetch_hits += r.outcome == Outcome::kPrefetchHit ? 1 : 0;
    misses += r.outcome == Outcome::kMiss ? 1 : 0;
    latency_ms += r.latency_ms;
  }

  PrefetchEngine batched(config_for(PolicyKind::kTreeNextLimit));
  const BatchResult b = batched.access_many(blocks);
  EXPECT_EQ(b.demand_hits, demand_hits);
  EXPECT_EQ(b.prefetch_hits, prefetch_hits);
  EXPECT_EQ(b.misses, misses);
  EXPECT_NEAR(b.latency_ms, latency_ms, 1e-6);
  EXPECT_EQ(b.demand_hits + b.prefetch_hits + b.misses, blocks.size());
}

TEST(AccessMany, WarmEngineStillMatchesPushOne) {
  // A non-fresh engine numbers periods from its running access counter;
  // the batched path must keep doing exactly that.
  const auto warmup = random_blocks(13, 5'000, 200);
  const auto blocks = random_blocks(17, 10'000, 200);

  PrefetchEngine batched(config_for(PolicyKind::kTreeNextLimit));
  batched.access_many(warmup);
  batched.access_many(blocks);

  PrefetchEngine one(config_for(PolicyKind::kTreeNextLimit));
  for (const trace::BlockId block : warmup) {
    one.access(block);
  }
  for (const trace::BlockId block : blocks) {
    one.access(block);
  }
  expect_identical(batched.metrics(), one.metrics());
}

TEST(AccessMany, RunTraceOnWarmEngineMatchesStepLoop) {
  // A warm engine disqualifies the access_many fast path (periods would
  // restart from the access counter, not the trace index); run_trace
  // must fall back to the indexed loop and keep matching step().
  const auto warmup = random_blocks(19, 2'000, 150);
  const auto blocks = random_blocks(23, 8'000, 150);
  const auto t = as_trace(blocks);

  PrefetchEngine replayed(config_for(PolicyKind::kTreeNextLimit));
  replayed.access_many(warmup);
  replayed.run_trace(t);

  PrefetchEngine stepped(config_for(PolicyKind::kTreeNextLimit));
  stepped.access_many(warmup);
  for (std::size_t i = 0; i < t.size(); ++i) {
    stepped.step(t, i);
  }
  expect_identical(replayed.metrics(), stepped.metrics());
}

TEST(AccessMany, OraclePolicyReplayUnchanged) {
  // kPerfectSelector reads the rest of the trace (ctx.upcoming), which
  // access_many cannot supply — run_trace must keep the oracle on the
  // indexed loop and bit-match step().
  const auto blocks = random_blocks(29, 8'000, 200);
  const auto t = as_trace(blocks);

  PrefetchEngine replayed(config_for(PolicyKind::kPerfectSelector));
  replayed.run_trace(t);

  PrefetchEngine stepped(config_for(PolicyKind::kPerfectSelector));
  for (std::size_t i = 0; i < t.size(); ++i) {
    stepped.step(t, i);
  }
  expect_identical(replayed.metrics(), stepped.metrics());
}

}  // namespace
}  // namespace pfp::engine
