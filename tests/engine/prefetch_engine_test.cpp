#include "engine/prefetch_engine.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "util/prng.hpp"

namespace pfp::engine {
namespace {

using core::policy::PolicyKind;

EngineConfig tree_config(std::size_t blocks = 64) {
  EngineConfig c;
  c.cache_blocks = blocks;
  c.policy.kind = PolicyKind::kTreeNextLimit;
  return c;
}

trace::Trace random_trace(std::uint64_t seed, int length, int universe) {
  trace::Trace t("t");
  util::Xoshiro256 rng(seed);
  for (int i = 0; i < length; ++i) {
    t.append(rng.below(static_cast<std::uint64_t>(universe)));
  }
  return t;
}

TEST(PrefetchEngine, FirstAccessMissesThenHits) {
  PrefetchEngine eng(tree_config());
  const auto miss = eng.access(42);
  EXPECT_EQ(miss.outcome, Outcome::kMiss);
  EXPECT_GT(miss.latency_ms, 15.0);  // miss pays driver + disk
  const auto hit = eng.access(42);
  EXPECT_EQ(hit.outcome, Outcome::kDemandHit);
  EXPECT_LT(hit.latency_ms, 1.0);
}

TEST(PrefetchEngine, PushPathMatchesBatchReplayExactly) {
  // access() one block at a time must be bit-identical to run_trace()
  // over the same stream — same cache decisions, same timing charges.
  const auto t = random_trace(5, 20'000, 500);

  PrefetchEngine batch(tree_config());
  batch.run_trace(t);

  PrefetchEngine push(tree_config());
  for (const auto& rec : t) {
    push.access(rec.block);
  }

  EXPECT_EQ(push.metrics().accesses, batch.metrics().accesses);
  EXPECT_EQ(push.metrics().misses, batch.metrics().misses);
  EXPECT_EQ(push.metrics().demand_hits, batch.metrics().demand_hits);
  EXPECT_EQ(push.metrics().prefetch_hits, batch.metrics().prefetch_hits);
  EXPECT_EQ(push.metrics().elapsed_ms, batch.metrics().elapsed_ms);
  EXPECT_EQ(push.metrics().stall_ms, batch.metrics().stall_ms);
  EXPECT_EQ(push.metrics().policy.prefetches_issued,
            batch.metrics().policy.prefetches_issued);
  EXPECT_EQ(push.metrics().policy.sum_prefetch_probability,
            batch.metrics().policy.sum_prefetch_probability);
}

TEST(PrefetchEngine, StepMatchesRunTrace) {
  const auto t = random_trace(7, 10'000, 300);

  PrefetchEngine batch(tree_config());
  batch.run_trace(t);

  PrefetchEngine stepped(tree_config());
  for (std::size_t i = 0; i < t.size(); ++i) {
    stepped.step(t, i);
  }

  EXPECT_EQ(stepped.metrics().misses, batch.metrics().misses);
  EXPECT_EQ(stepped.metrics().prefetch_hits, batch.metrics().prefetch_hits);
  EXPECT_EQ(stepped.metrics().elapsed_ms, batch.metrics().elapsed_ms);
}

TEST(PrefetchEngine, SnapshotRestoreRoundTripsDurableState) {
  const auto t = random_trace(11, 30'000, 400);
  PrefetchEngine trained(tree_config());
  trained.run_trace(t);

  std::stringstream stream;
  trained.snapshot(stream);

  PrefetchEngine restored(tree_config());
  restored.restore(stream);

  // Metrics round-trip bit-identically.
  EXPECT_EQ(restored.metrics().accesses, trained.metrics().accesses);
  EXPECT_EQ(restored.metrics().misses, trained.metrics().misses);
  EXPECT_EQ(restored.metrics().prefetch_hits,
            trained.metrics().prefetch_hits);
  EXPECT_EQ(restored.metrics().elapsed_ms, trained.metrics().elapsed_ms);
  EXPECT_EQ(restored.metrics().policy.prefetches_issued,
            trained.metrics().policy.prefetches_issued);

  // Cache residency round-trips: same resident set.
  EXPECT_EQ(restored.buffer_cache().resident(),
            trained.buffer_cache().resident());
  for (const auto block : trained.buffer_cache().demand().blocks_lru_to_mru()) {
    EXPECT_TRUE(restored.buffer_cache().contains(block));
  }
}

TEST(PrefetchEngine, RestoredEngineContinuesLikeTheOriginal) {
  // Warm an engine, snapshot, restore into a fresh one, then drive both
  // with the same continuation stream: behaviour must stay identical for
  // everything the snapshot covers (tree + caches + metrics).  The
  // estimator EWMAs are transient, so cost-benefit decisions could drift
  // in principle; a short deterministic continuation stays in agreement.
  const auto warmup = random_trace(13, 20'000, 200);
  PrefetchEngine original(tree_config());
  original.run_trace(warmup);

  std::stringstream stream;
  original.snapshot(stream);
  PrefetchEngine resumed(tree_config());
  resumed.restore(stream);

  for (trace::BlockId b = 0; b < 50; ++b) {
    const auto a = original.access(b);
    const auto r = resumed.access(b);
    EXPECT_EQ(static_cast<int>(a.outcome), static_cast<int>(r.outcome))
        << "diverged at block " << b;
  }
}

TEST(PrefetchEngine, RestoreRequiresFreshEngine) {
  PrefetchEngine trained(tree_config());
  trained.access(1);

  std::stringstream stream;
  trained.snapshot(stream);

  PrefetchEngine used(tree_config());
  used.access(2);
  EXPECT_THROW(used.restore(stream), std::runtime_error);
}

TEST(PrefetchEngine, RestoreRejectsCacheSizeMismatch) {
  PrefetchEngine trained(tree_config(64));
  trained.access(1);
  std::stringstream stream;
  trained.snapshot(stream);

  PrefetchEngine other(tree_config(128));
  EXPECT_THROW(other.restore(stream), std::runtime_error);
}

TEST(PrefetchEngine, RestoreRejectsGarbage) {
  std::stringstream garbage("this is not a snapshot");
  PrefetchEngine eng(tree_config());
  EXPECT_THROW(eng.restore(garbage), std::runtime_error);
}

TEST(PrefetchEngine, RestoreRejectsTruncatedStream) {
  PrefetchEngine trained(tree_config());
  trained.run_trace(random_trace(17, 5'000, 100));
  std::stringstream stream;
  trained.snapshot(stream);

  const std::string full = stream.str();
  std::stringstream truncated(full.substr(0, full.size() / 2));
  PrefetchEngine eng(tree_config());
  EXPECT_THROW(eng.restore(truncated), std::runtime_error);
}

TEST(PrefetchEngine, SnapshotWorksForTreelessPolicies) {
  EngineConfig c = tree_config();
  c.policy.kind = PolicyKind::kNextLimit;
  PrefetchEngine eng(c);
  eng.run_trace(random_trace(19, 5'000, 100));

  std::stringstream stream;
  eng.snapshot(stream);
  PrefetchEngine restored(c);
  restored.restore(stream);
  EXPECT_EQ(restored.metrics().misses, eng.metrics().misses);
  EXPECT_EQ(restored.buffer_cache().resident(),
            eng.buffer_cache().resident());
}

}  // namespace
}  // namespace pfp::engine
