// Parameterized property sweeps: invariants that must hold for every
// (policy, cache size) combination on every workload.
#include <gtest/gtest.h>

#include <tuple>

#include "sim/experiment.hpp"
#include "trace/workloads.hpp"

namespace pfp::sim {
namespace {

using core::policy::PolicyKind;
using trace::Trace;
using trace::Workload;

const Trace& shared_workload(Workload w) {
  static Trace cello = trace::make_workload(Workload::kCello, 25'000);
  static Trace snake = trace::make_workload(Workload::kSnake, 25'000);
  static Trace cad = trace::make_workload(Workload::kCad, 25'000);
  static Trace sitar = trace::make_workload(Workload::kSitar, 25'000);
  switch (w) {
    case Workload::kCello:
      return cello;
    case Workload::kSnake:
      return snake;
    case Workload::kCad:
      return cad;
    default:
      return sitar;
  }
}

using Param = std::tuple<Workload, PolicyKind, std::size_t>;

std::string sanitize(std::string name) {
  for (char& c : name) {
    if (c == '-') {
      c = '_';
    }
  }
  return name;
}

std::string grid_param_name(const ::testing::TestParamInfo<Param>& p) {
  return sanitize(trace::workload_name(std::get<0>(p.param)) + "_" +
                  core::policy::kind_name(std::get<1>(p.param)) + "_" +
                  std::to_string(std::get<2>(p.param)));
}

std::string policy_param_name(
    const ::testing::TestParamInfo<PolicyKind>& p) {
  return sanitize(core::policy::kind_name(p.param));
}

class SimProperties : public ::testing::TestWithParam<Param> {};

TEST_P(SimProperties, CountersAreCoherent) {
  const auto [workload, kind, blocks] = GetParam();
  SimConfig c;
  c.cache_blocks = blocks;
  c.policy.kind = kind;
  const auto r = simulate(c, shared_workload(workload));
  const auto& m = r.metrics;

  // Every access is exactly one of hit/prefetch-hit/miss.
  EXPECT_EQ(m.accesses, m.demand_hits + m.prefetch_hits + m.misses);
  // Rates are well-formed.
  EXPECT_GE(m.miss_rate(), 0.0);
  EXPECT_LE(m.miss_rate(), 1.0);
  EXPECT_LE(m.prefetch_cache_hit_rate(), 1.0);
  // A prefetch hit requires a prior prefetch.
  EXPECT_LE(m.prefetch_hits, m.policy.prefetches_issued);
  // Prefetches either hit, are ejected, or are still resident.
  EXPECT_LE(m.prefetch_hits + m.policy.prefetch_ejections,
            m.policy.prefetches_issued + blocks);
  // Instrumentation subsets.
  EXPECT_LE(m.policy.predictable_uncached, m.policy.predictable);
  EXPECT_LE(m.policy.lvc_followed, m.policy.lvc_opportunities);
  EXPECT_LE(m.policy.lvc_cached, m.policy.lvc_checks);
  EXPECT_LE(m.policy.candidates_already_cached, m.policy.candidates_chosen);
  // Timing is charged for every access.
  EXPECT_GT(m.elapsed_ms, 0.0);
  EXPECT_LE(m.stall_ms, m.elapsed_ms);
}

TEST_P(SimProperties, PrefetchingNeverWorseThanNoPrefetchByMuch) {
  const auto [workload, kind, blocks] = GetParam();
  SimConfig c;
  c.cache_blocks = blocks;
  c.policy.kind = kind;
  const auto r = simulate(c, shared_workload(workload));
  SimConfig np = c;
  np.policy.kind = PolicyKind::kNoPrefetch;
  const auto base = simulate(np, shared_workload(workload));
  // Cost-benefit should keep harmful prefetching in check; allow a small
  // tolerance for cache-pollution noise in the baselines.
  EXPECT_LE(r.metrics.miss_rate(), base.metrics.miss_rate() + 0.08)
      << r.policy_name << " on " << r.trace_name << " @" << blocks;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SimProperties,
    ::testing::Combine(
        ::testing::Values(Workload::kCello, Workload::kSnake, Workload::kCad,
                          Workload::kSitar),
        ::testing::Values(PolicyKind::kNoPrefetch, PolicyKind::kNextLimit,
                          PolicyKind::kTree, PolicyKind::kTreeNextLimit,
                          PolicyKind::kTreeLvc, PolicyKind::kPerfectSelector,
                          PolicyKind::kTreeThreshold,
                          PolicyKind::kTreeChildren),
        ::testing::Values(std::size_t{128}, std::size_t{1024})),
    grid_param_name);

// Determinism across the whole grid: same spec, same metrics.
class SimDeterminism : public ::testing::TestWithParam<PolicyKind> {};

TEST_P(SimDeterminism, RepeatRunsAreIdentical) {
  SimConfig c;
  c.cache_blocks = 256;
  c.policy.kind = GetParam();
  const auto& t = shared_workload(Workload::kCad);
  const auto a = simulate(c, t);
  const auto b = simulate(c, t);
  EXPECT_EQ(a.metrics.misses, b.metrics.misses);
  EXPECT_EQ(a.metrics.policy.prefetches_issued,
            b.metrics.policy.prefetches_issued);
  EXPECT_EQ(a.metrics.policy.predictable, b.metrics.policy.predictable);
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, SimDeterminism,
    ::testing::Values(PolicyKind::kNoPrefetch, PolicyKind::kNextLimit,
                      PolicyKind::kTree, PolicyKind::kTreeNextLimit,
                      PolicyKind::kTreeLvc, PolicyKind::kPerfectSelector,
                      PolicyKind::kTreeThreshold, PolicyKind::kTreeChildren),
    policy_param_name);

}  // namespace
}  // namespace pfp::sim
