// Pins exact simulation results against golden values recorded from the
// std-container implementation (before flat_map / small_vector / reusable
// enumeration landed).  The hot-path containers are used strictly as
// sets/maps — never as ordered collections — so swapping their internals
// must not move a single counter.  Any drift here means an optimization
// changed simulation SEMANTICS, not just speed, and is a bug even if the
// new numbers look plausible.
//
// Regenerating (only after an intentional semantic change): run
// ./build/examples/pin_goldens, which replays every (workload, policy)
// pair below at 30'000 references, seed 7, 512 cache blocks, default
// timing, and prints rows in exactly this format (counters exact,
// doubles at max_digits10); paste them over kGolden and explain the
// drift in the commit message.
#include <gtest/gtest.h>

#include <cstdint>

#include "core/policy/factory.hpp"
#include "sim/simulator.hpp"
#include "trace/workloads.hpp"

namespace pfp::sim {
namespace {

struct Golden {
  trace::Workload workload;
  core::policy::PolicyKind kind;
  std::uint64_t demand_hits;
  std::uint64_t prefetch_hits;
  std::uint64_t misses;
  double stall_ms;
  double elapsed_ms;
};

constexpr std::uint64_t kReferences = 30'000;
constexpr std::uint64_t kSeed = 7;
constexpr std::size_t kCacheBlocks = 512;

const Golden kGolden[] = {
    {trace::Workload::kCad, core::policy::PolicyKind::kNoPrefetch,
     8135u, 0u, 21865u, 327975, 1847946.7000008877},
    {trace::Workload::kCad, core::policy::PolicyKind::kNextLimit,
     7868u, 0u, 22132u, 331980, 1864943.1200013915},
    {trace::Workload::kCad, core::policy::PolicyKind::kTree,
     4054u, 9105u, 16841u, 252615, 1775256.4400009138},
    {trace::Workload::kCad, core::policy::PolicyKind::kTreeNextLimit,
     3945u, 9173u, 16882u, 253230, 1791023.9400007452},
    {trace::Workload::kCad, core::policy::PolicyKind::kTreeLvc,
     3608u, 9421u, 16971u, 254565, 1778226.0800010264},
    {trace::Workload::kCad, core::policy::PolicyKind::kTreeThreshold,
     8134u, 5224u, 16642u, 249630, 1773151.8800008276},
    {trace::Workload::kCad, core::policy::PolicyKind::kTreeChildren,
     8134u, 5268u, 16598u, 248970, 1771611.4400008137},
    {trace::Workload::kCad, core::policy::PolicyKind::kProbGraph,
     8134u, 13534u, 8332u, 124979.99999999997, 1647739.7600007725},
    {trace::Workload::kCad, core::policy::PolicyKind::kPerfectSelector,
     8135u, 11663u, 10202u, 153030, 1673001.7000007906},
    {trace::Workload::kCad, core::policy::PolicyKind::kTreeAdaptive,
     4054u, 9105u, 16841u, 252615, 1775256.4400009138},
    {trace::Workload::kCad, core::policy::PolicyKind::kMarkov,
     5081u, 17368u, 7551u, 113265, 1635266.7000007527},
    {trace::Workload::kCad, core::policy::PolicyKind::kAssoc,
     4987u, 16360u, 8653u, 129795, 1652095.9800006372},
    {trace::Workload::kSitar, core::policy::PolicyKind::kNoPrefetch,
     16665u, 0u, 13335u, 200025, 1715049.3000006385},
    {trace::Workload::kSitar, core::policy::PolicyKind::kNextLimit,
     16012u, 12983u, 1005u, 15075, 1530945.5200005798},
    {trace::Workload::kSitar, core::policy::PolicyKind::kTree,
     11432u, 6930u, 11638u, 174570, 1692898.5600007956},
    {trace::Workload::kSitar, core::policy::PolicyKind::kTreeNextLimit,
     10112u, 18993u, 895u, 13425, 1532924.5800006709},
    {trace::Workload::kSitar, core::policy::PolicyKind::kTreeLvc,
     11228u, 7111u, 11661u, 174915, 1693372.9000008027},
    {trace::Workload::kSitar, core::policy::PolicyKind::kTreeThreshold,
     16664u, 2018u, 11318u, 169769.99999999994, 1686752.9600006524},
    {trace::Workload::kSitar, core::policy::PolicyKind::kTreeChildren,
     16664u, 1997u, 11339u, 170085, 1687875.9000006858},
    {trace::Workload::kSitar, core::policy::PolicyKind::kProbGraph,
     16665u, 5886u, 7449u, 111735, 1627437.3200006019},
    {trace::Workload::kSitar, core::policy::PolicyKind::kPerfectSelector,
     16665u, 4536u, 8799u, 131985, 1647009.3000006182},
    {trace::Workload::kSitar, core::policy::PolicyKind::kTreeAdaptive,
     11432u, 6930u, 11638u, 174570, 1692898.5600007956},
    {trace::Workload::kSitar, core::policy::PolicyKind::kMarkov,
     12490u, 15170u, 2340u, 35100, 1552754.60000069},
    {trace::Workload::kSitar, core::policy::PolicyKind::kAssoc,
     16641u, 4434u, 8925u, 133875, 1648957.8800005689},
    {trace::Workload::kCello, core::policy::PolicyKind::kNoPrefetch,
     0u, 0u, 30000u, 450000, 1974690.0000011714},
    {trace::Workload::kCello, core::policy::PolicyKind::kNextLimit,
     0u, 9925u, 20075u, 301125, 1837279.8600014711},
    {trace::Workload::kCello, core::policy::PolicyKind::kTree,
     0u, 369u, 29631u, 444465, 1969636.4000012134},
    {trace::Workload::kCello, core::policy::PolicyKind::kTreeNextLimit,
     0u, 9478u, 20522u, 307830, 1844761.4800014023},
    {trace::Workload::kCello, core::policy::PolicyKind::kTreeLvc,
     0u, 366u, 29634u, 444510, 1970318.8200012879},
    {trace::Workload::kCello, core::policy::PolicyKind::kTreeThreshold,
     0u, 101u, 29899u, 448485, 1973924.9400012051},
    {trace::Workload::kCello, core::policy::PolicyKind::kTreeChildren,
     0u, 101u, 29899u, 448484.99999999988, 2012905.0000009078},
    {trace::Workload::kCello, core::policy::PolicyKind::kProbGraph,
     0u, 747u, 29253u, 438795, 1968629.0200011856},
    {trace::Workload::kCello, core::policy::PolicyKind::kPerfectSelector,
     0u, 4947u, 25053u, 375795, 1900485.0000011257},
    {trace::Workload::kCello, core::policy::PolicyKind::kTreeAdaptive,
     0u, 266u, 29734u, 446010, 1970999.2800011917},
    {trace::Workload::kCello, core::policy::PolicyKind::kMarkov,
     0u, 3531u, 26469u, 397034.99999999988, 1923372.780001228},
    {trace::Workload::kCello, core::policy::PolicyKind::kAssoc,
     0u, 567u, 29433u, 441495, 1966202.4000011473},
    {trace::Workload::kSnake, core::policy::PolicyKind::kNoPrefetch,
     1u, 0u, 29999u, 449985, 1974674.4200011713},
    {trace::Workload::kSnake, core::policy::PolicyKind::kNextLimit,
     0u, 27293u, 2707u, 40605, 1566717.7400007911},
    {trace::Workload::kSnake, core::policy::PolicyKind::kTree,
     0u, 3983u, 26017u, 390255, 1915570.8200010902},
    {trace::Workload::kSnake, core::policy::PolicyKind::kTreeNextLimit,
     0u, 27495u, 2505u, 37575, 1564296.1600007147},
    {trace::Workload::kSnake, core::policy::PolicyKind::kTreeLvc,
     0u, 3983u, 26017u, 390255, 1916862.4800012289},
    {trace::Workload::kSnake, core::policy::PolicyKind::kTreeThreshold,
     1u, 2086u, 27913u, 418694.99999999994, 1946415.5000011344},
    {trace::Workload::kSnake, core::policy::PolicyKind::kTreeChildren,
     1u, 2095u, 27904u, 418560.00000000012, 1970474.0400008687},
    {trace::Workload::kSnake, core::policy::PolicyKind::kProbGraph,
     1u, 7223u, 22776u, 341640, 1871225.2000010931},
    {trace::Workload::kSnake, core::policy::PolicyKind::kPerfectSelector,
     1u, 8397u, 21602u, 324030, 1848719.420001077},
    {trace::Workload::kSnake, core::policy::PolicyKind::kTreeAdaptive,
     0u, 3983u, 26017u, 390255, 1915570.8200010902},
    {trace::Workload::kSnake, core::policy::PolicyKind::kMarkov,
     0u, 21732u, 8268u, 124020, 1649011.6000008665},
    {trace::Workload::kSnake, core::policy::PolicyKind::kAssoc,
     0u, 6055u, 23945u, 359175.00000000006, 1883876.0200009751},
};

class MetricsPin : public ::testing::TestWithParam<Golden> {};

TEST_P(MetricsPin, ExactlyMatchesStdContainerBaseline) {
  const Golden& golden = GetParam();
  const trace::Trace t =
      trace::make_workload(golden.workload, kReferences, kSeed);
  SimConfig config;
  config.cache_blocks = kCacheBlocks;
  config.policy.kind = golden.kind;
  const Result r = simulate(config, t);
  EXPECT_EQ(r.metrics.demand_hits, golden.demand_hits);
  EXPECT_EQ(r.metrics.prefetch_hits, golden.prefetch_hits);
  EXPECT_EQ(r.metrics.misses, golden.misses);
  // Exact double comparison on purpose: the timing model is a deterministic
  // fold over per-access doubles, so any container-induced reordering of
  // simulation events shows up here even when the counters happen to agree.
  EXPECT_EQ(r.metrics.stall_ms, golden.stall_ms);
  EXPECT_EQ(r.metrics.elapsed_ms, golden.elapsed_ms);
}

std::string pin_name(const ::testing::TestParamInfo<Golden>& info) {
  std::string name = trace::workload_name(info.param.workload) + "_" +
                     core::policy::kind_name(info.param.kind);
  for (char& c : name) {
    if (c == '-') {
      c = '_';
    }
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(Policies, MetricsPin, ::testing::ValuesIn(kGolden),
                         pin_name);

}  // namespace
}  // namespace pfp::sim
