// The paper's headline qualitative results must not depend on the
// particular random seed used to synthesize the workloads.
#include <gtest/gtest.h>

#include "sim/simulator.hpp"
#include "trace/workloads.hpp"

namespace pfp::sim {
namespace {

using core::policy::PolicyKind;

class SeedRobustness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedRobustness, CadHeadlineHoldsAcrossSeeds) {
  const auto seed = GetParam();
  const auto cad = trace::make_workload(trace::Workload::kCad, 40'000, seed);
  SimConfig c;
  c.cache_blocks = 512;
  c.policy.kind = PolicyKind::kNoPrefetch;
  const auto np = simulate(c, cad);
  c.policy.kind = PolicyKind::kNextLimit;
  const auto nl = simulate(c, cad);
  c.policy.kind = PolicyKind::kTree;
  const auto tree = simulate(c, cad);
  // One-block lookahead never helps CAD...
  EXPECT_GE(nl.metrics.miss_rate(), np.metrics.miss_rate() - 0.02)
      << "seed " << seed;
  // ...while the tree always does, substantially.
  EXPECT_LT(tree.metrics.miss_rate(), np.metrics.miss_rate() * 0.92)
      << "seed " << seed;
}

TEST_P(SeedRobustness, SitarHeadlineHoldsAcrossSeeds) {
  const auto seed = GetParam();
  const auto sitar =
      trace::make_workload(trace::Workload::kSitar, 40'000, seed);
  SimConfig c;
  c.cache_blocks = 512;
  c.policy.kind = PolicyKind::kNoPrefetch;
  const auto np = simulate(c, sitar);
  c.policy.kind = PolicyKind::kNextLimit;
  const auto nl = simulate(c, sitar);
  // One-block lookahead removes the bulk of sitar's misses on any seed.
  EXPECT_LT(nl.metrics.miss_rate(), np.metrics.miss_rate() * 0.4)
      << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedRobustness,
                         ::testing::Values(1u, 7u, 12345u));

}  // namespace
}  // namespace pfp::sim
