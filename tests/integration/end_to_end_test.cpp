// End-to-end runs on the paper workloads: the qualitative results the
// paper reports must hold on the synthetic reproductions.
#include <gtest/gtest.h>

#include "sim/experiment.hpp"
#include "trace/workloads.hpp"

namespace pfp::sim {
namespace {

using core::policy::PolicyKind;
using trace::Trace;
using trace::Workload;

constexpr std::uint64_t kRefs = 60'000;  // enough to warm the tree

Result run(const Trace& t, PolicyKind kind, std::size_t blocks) {
  SimConfig c;
  c.cache_blocks = blocks;
  c.policy.kind = kind;
  return simulate(c, t);
}

class WorkloadFixture : public ::testing::Test {
 protected:
  static const Trace& workload(Workload w) {
    static Trace cello = trace::make_workload(Workload::kCello, kRefs);
    static Trace snake = trace::make_workload(Workload::kSnake, kRefs);
    static Trace cad = trace::make_workload(Workload::kCad, kRefs);
    static Trace sitar = trace::make_workload(Workload::kSitar, kRefs);
    switch (w) {
      case Workload::kCello:
        return cello;
      case Workload::kSnake:
        return snake;
      case Workload::kCad:
        return cad;
      default:
        return sitar;
    }
  }
};

// Section 9.1: prefetching helps everywhere; tree-next-limit is the best
// or tied-best scheme across traces and sizes.
TEST_F(WorkloadFixture, TreeNextLimitNeverLosesBadly) {
  for (const Workload w : trace::all_workloads()) {
    const auto& t = workload(w);
    for (const std::size_t blocks : {512u, 2048u}) {
      const auto np = run(t, PolicyKind::kNoPrefetch, blocks);
      const auto tnl = run(t, PolicyKind::kTreeNextLimit, blocks);
      EXPECT_LE(tnl.metrics.miss_rate(), np.metrics.miss_rate() + 0.02)
          << trace::workload_name(w) << " @" << blocks;
    }
  }
}

// The CAD headline: one-block lookahead gains nothing, the tree gains a
// lot (Section 9.1, "reducing cache miss rates by up to 36%").
TEST_F(WorkloadFixture, CadTreeBeatsNextLimit) {
  const auto& cad = workload(Workload::kCad);
  const auto np = run(cad, PolicyKind::kNoPrefetch, 1024);
  const auto nl = run(cad, PolicyKind::kNextLimit, 1024);
  const auto tree = run(cad, PolicyKind::kTree, 1024);
  // next-limit ~ no-prefetch
  EXPECT_NEAR(nl.metrics.miss_rate(), np.metrics.miss_rate(), 0.05);
  // tree clearly better
  EXPECT_LT(tree.metrics.miss_rate(), np.metrics.miss_rate() * 0.9);
}

// The sitar headline: next-limit removes most misses; plain tree does not
// (Section 9.1, "the basic tree algorithm performs poorly [on sitar]").
TEST_F(WorkloadFixture, SitarNextLimitDominates) {
  const auto& sitar = workload(Workload::kSitar);
  const auto np = run(sitar, PolicyKind::kNoPrefetch, 1024);
  const auto nl = run(sitar, PolicyKind::kNextLimit, 1024);
  const auto tree = run(sitar, PolicyKind::kTree, 1024);
  EXPECT_LT(nl.metrics.miss_rate(), np.metrics.miss_rate() * 0.4)
      << "OBL must remove most sequential misses";
  EXPECT_GT(tree.metrics.miss_rate(), np.metrics.miss_rate() * 0.75)
      << "plain tree close to no-prefetch on sequential workloads";
}

// cello/snake: both components help; the combination is at least as good
// as either alone (the paper finds the reductions additive).
TEST_F(WorkloadFixture, CombinationAtLeastAsGoodAsParts) {
  for (const Workload w : {Workload::kCello, Workload::kSnake}) {
    const auto& t = workload(w);
    const auto nl = run(t, PolicyKind::kNextLimit, 1024);
    const auto tree = run(t, PolicyKind::kTree, 1024);
    const auto tnl = run(t, PolicyKind::kTreeNextLimit, 1024);
    const double best_single =
        std::min(nl.metrics.miss_rate(), tree.metrics.miss_rate());
    // Tolerance covers mild cache pollution on cello, whose residual
    // stream predicts poorly (Table 2: 35.8%) so some tree prefetches
    // displace OBL-useful buffers.
    EXPECT_LE(tnl.metrics.miss_rate(), best_single + 0.06)
        << trace::workload_name(w);
  }
}

// Section 9.5: perfect-selector reduces miss rates considerably vs tree.
TEST_F(WorkloadFixture, PerfectSelectorBeatsTree) {
  for (const Workload w : {Workload::kCad, Workload::kSnake}) {
    const auto& t = workload(w);
    const auto tree = run(t, PolicyKind::kTree, 1024);
    const auto perfect = run(t, PolicyKind::kPerfectSelector, 1024);
    EXPECT_LT(perfect.metrics.miss_rate(), tree.metrics.miss_rate())
        << trace::workload_name(w);
  }
}

// Section 9.2.1: the tree's advantage shrinks as the cache grows.
TEST_F(WorkloadFixture, TreeAdvantageDeclinesWithCacheSize) {
  const auto& cad = workload(Workload::kCad);
  const auto np_small = run(cad, PolicyKind::kNoPrefetch, 256);
  const auto tree_small = run(cad, PolicyKind::kTree, 256);
  const auto np_big = run(cad, PolicyKind::kNoPrefetch, 8192);
  const auto tree_big = run(cad, PolicyKind::kTree, 8192);
  const double gain_small =
      np_small.metrics.miss_rate() - tree_small.metrics.miss_rate();
  const double gain_big =
      np_big.metrics.miss_rate() - tree_big.metrics.miss_rate();
  EXPECT_GT(gain_small, gain_big);
}

// Figure 7's mechanism: at large caches most chosen candidates are
// already resident.
TEST_F(WorkloadFixture, CandidatesMostlyCachedAtLargeSizes) {
  const auto& cad = workload(Workload::kCad);
  const auto r = run(cad, PolicyKind::kTree, 8192);
  EXPECT_GT(r.metrics.candidates_cached_fraction(), 0.7);
}

// Section 9.7 / Figure 17: cost-benefit tree is competitive with the best
// hand-tuned parametric schemes.
TEST_F(WorkloadFixture, TreeCompetitiveWithTunedParametrics) {
  const auto& snake = workload(Workload::kSnake);
  const auto tree = run(snake, PolicyKind::kTree, 1024);
  double best_parametric = 1.0;
  for (const double threshold : {0.002, 0.025, 0.05, 0.1, 0.2}) {
    SimConfig c;
    c.cache_blocks = 1024;
    c.policy.kind = PolicyKind::kTreeThreshold;
    c.policy.threshold = threshold;
    best_parametric =
        std::min(best_parametric, simulate(c, snake).metrics.miss_rate());
  }
  EXPECT_LE(tree.metrics.miss_rate(), best_parametric + 0.05);
}

// Table 2's ordering: cello predicts worst, the others land around
// 50-80%.
TEST_F(WorkloadFixture, PredictionAccuracyOrdering) {
  const auto cello = run(workload(Workload::kCello), PolicyKind::kTree, 1024);
  const auto snake = run(workload(Workload::kSnake), PolicyKind::kTree, 1024);
  const auto cad = run(workload(Workload::kCad), PolicyKind::kTree, 1024);
  const auto sitar = run(workload(Workload::kSitar), PolicyKind::kTree, 1024);
  EXPECT_LT(cello.metrics.prediction_accuracy(),
            snake.metrics.prediction_accuracy());
  EXPECT_LT(snake.metrics.prediction_accuracy(),
            cad.metrics.prediction_accuracy() + 0.1);
  EXPECT_GT(sitar.metrics.prediction_accuracy(), 0.5);
  EXPECT_GT(cad.metrics.prediction_accuracy(), 0.5);
}

}  // namespace
}  // namespace pfp::sim
