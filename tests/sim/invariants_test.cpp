// Step-level structural invariants of the simulator, checked after every
// single access across policies: pool accounting, cache disjointness, OBL
// quota, and monotone counters.
#include <gtest/gtest.h>

#include "sim/simulator.hpp"
#include "trace/workloads.hpp"

namespace pfp::sim {
namespace {

using core::policy::PolicyKind;

class StepInvariants : public ::testing::TestWithParam<PolicyKind> {};

TEST_P(StepInvariants, HoldAfterEveryAccess) {
  const auto t = trace::make_workload(trace::Workload::kSnake, 15'000);
  SimConfig c;
  c.cache_blocks = 64;
  c.policy.kind = GetParam();
  Simulator sim(c);

  std::uint64_t last_accesses = 0;
  for (std::size_t i = 0; i < t.size(); ++i) {
    sim.step(t, i);
    const auto& cache = sim.buffer_cache();
    const auto& m = sim.metrics();

    // Pool accounting.
    ASSERT_LE(cache.resident(), cache.total_blocks());
    ASSERT_EQ(cache.resident(),
              cache.demand().size() + cache.prefetch().size());

    // The referenced block ends up in the demand cache — unless the pool
    // is fully contended, where a policy may legally reclaim even the
    // just-referenced buffer for a prefetch it prices higher (the data
    // was already delivered to the application).
    if (cache.resident() < cache.total_blocks()) {
      ASSERT_TRUE(cache.demand().contains(t[i].block)) << "i=" << i;
    }

    // Demand and prefetch caches are disjoint: a block resident in both
    // would double-count a buffer.
    for (const auto& entry : cache.prefetch().entries()) {
      ASSERT_FALSE(cache.demand().contains(entry.block)) << "i=" << i;
    }

    // OBL quota: next-limit style blocks never exceed 10% (+1 rounding).
    ASSERT_LE(cache.prefetch().obl_count(),
              cache.total_blocks() / 10 + 1);

    // Counters advance exactly one access at a time and stay coherent.
    ASSERT_EQ(m.accesses, last_accesses + 1);
    last_accesses = m.accesses;
    ASSERT_EQ(m.accesses, m.demand_hits + m.prefetch_hits + m.misses);
    ASSERT_LE(m.stall_ms, m.elapsed_ms);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Policies, StepInvariants,
    ::testing::Values(PolicyKind::kNoPrefetch, PolicyKind::kNextLimit,
                      PolicyKind::kTree, PolicyKind::kTreeNextLimit,
                      PolicyKind::kTreeLvc, PolicyKind::kPerfectSelector,
                      PolicyKind::kTreeThreshold, PolicyKind::kTreeChildren,
                      PolicyKind::kProbGraph, PolicyKind::kTreeAdaptive),
    [](const ::testing::TestParamInfo<PolicyKind>& param_info) {
      std::string name = core::policy::kind_name(param_info.param);
      for (char& ch : name) {
        if (ch == '-') {
          ch = '_';
        }
      }
      return name;
    });

}  // namespace
}  // namespace pfp::sim
