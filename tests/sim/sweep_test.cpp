#include "sim/sweep.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "sim/experiment.hpp"
#include "trace/workloads.hpp"

namespace pfp::sim {
namespace {

trace::Trace small_trace() {
  return trace::make_workload(trace::Workload::kCad, 2'000, 11);
}

TEST(Sweep, EmptySpecsReturnsEmptyResults) {
  const std::vector<RunSpec> specs;
  const auto results = run_parallel(specs);
  EXPECT_TRUE(results.empty());
}

TEST(Sweep, ResultOrderMatchesSpecOrder) {
  const trace::Trace t = small_trace();
  // Distinct cache sizes label each run; more runs than threads forces
  // queueing, and 3 threads on shuffled durations scrambles completion
  // order relative to submission order.
  const std::vector<std::size_t> sizes = {64, 512, 128, 1024, 256, 96};
  std::vector<RunSpec> specs;
  for (const std::size_t size : sizes) {
    RunSpec spec;
    spec.trace = &t;
    spec.config.cache_blocks = size;
    spec.config.policy.kind = core::policy::PolicyKind::kTree;
    specs.push_back(spec);
  }
  const auto parallel = run_parallel(specs, 3);
  const auto serial = run_serial(specs);
  ASSERT_EQ(parallel.size(), specs.size());
  ASSERT_EQ(serial.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(parallel[i].config.cache_blocks, sizes[i]) << "slot " << i;
    // Order preserved implies each slot carries its own run's metrics.
    EXPECT_EQ(parallel[i].metrics.demand_hits, serial[i].metrics.demand_hits)
        << "slot " << i;
    EXPECT_EQ(parallel[i].metrics.misses, serial[i].metrics.misses)
        << "slot " << i;
  }
}

TEST(Sweep, ExceptionFromOneRunPropagatesWithoutDeadlock) {
  const trace::Trace t = small_trace();
  std::vector<RunSpec> specs;
  for (int i = 0; i < 6; ++i) {
    RunSpec spec;
    spec.trace = &t;
    spec.config.cache_blocks = 128;
    specs.push_back(spec);
  }
  specs[2].trace = nullptr;  // this run throws inside the worker
  // Must rethrow the worker's exception after all runs drain — a hang
  // here (the old failure mode would be a deadlocked pool join) trips the
  // test timeout rather than passing silently.
  EXPECT_THROW(run_parallel(specs, 2), std::invalid_argument);
  // The pool must be fully torn down and reusable: a follow-up sweep on
  // the same thread count still works.
  specs[2].trace = &t;
  const auto results = run_parallel(specs, 2);
  EXPECT_EQ(results.size(), specs.size());
}

}  // namespace
}  // namespace pfp::sim
