#include "sim/experiment.hpp"

#include <gtest/gtest.h>

#include "sim/sweep.hpp"
#include "util/prng.hpp"

namespace pfp::sim {
namespace {

using core::policy::PolicyKind;
using core::policy::PolicySpec;
using trace::Trace;

Trace small_trace() {
  Trace t("small");
  util::Xoshiro256 rng(2);
  for (int i = 0; i < 3'000; ++i) {
    t.append(rng.below(200));
  }
  return t;
}

TEST(Experiment, DefaultCacheSizesAscend) {
  const auto& sizes = default_cache_sizes();
  ASSERT_GE(sizes.size(), 4u);
  for (std::size_t i = 1; i < sizes.size(); ++i) {
    EXPECT_GT(sizes[i], sizes[i - 1]);
  }
}

TEST(Experiment, GridBuildsFullCross) {
  const Trace t = small_trace();
  PolicySpec a;
  a.kind = PolicyKind::kNoPrefetch;
  PolicySpec b;
  b.kind = PolicyKind::kNextLimit;
  const auto specs = grid(t, {8, 16, 32}, {a, b});
  ASSERT_EQ(specs.size(), 6u);
  EXPECT_EQ(specs[0].config.cache_blocks, 8u);
  EXPECT_EQ(specs[0].config.policy.kind, PolicyKind::kNoPrefetch);
  EXPECT_EQ(specs[1].config.policy.kind, PolicyKind::kNextLimit);
  EXPECT_EQ(specs[5].config.cache_blocks, 32u);
  for (const auto& s : specs) {
    EXPECT_EQ(s.trace, &t);
  }
}

TEST(Experiment, RunSerialPreservesOrder) {
  const Trace t = small_trace();
  PolicySpec np;
  np.kind = PolicyKind::kNoPrefetch;
  const auto specs = grid(t, {8, 64}, {np});
  const auto results = run_serial(specs);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].config.cache_blocks, 8u);
  EXPECT_EQ(results[1].config.cache_blocks, 64u);
  // larger cache cannot miss more under LRU inclusion
  EXPECT_GE(results[0].metrics.misses, results[1].metrics.misses);
}

TEST(Experiment, ParallelMatchesSerial) {
  const Trace t = small_trace();
  PolicySpec np;
  np.kind = PolicyKind::kNoPrefetch;
  PolicySpec tree;
  tree.kind = PolicyKind::kTree;
  const auto specs = grid(t, {16, 32}, {np, tree});
  const auto serial = run_serial(specs);
  const auto parallel = run_parallel(specs, 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].metrics.misses, parallel[i].metrics.misses) << i;
    EXPECT_EQ(serial[i].policy_name, parallel[i].policy_name) << i;
  }
}

TEST(Experiment, DefaultReferencesMatchPaperScaling) {
  // CAD is kept at its original length; the multi-million traces are
  // scaled down but stay the largest.
  EXPECT_EQ(default_references(trace::Workload::kCad), 147'000u);
  EXPECT_GE(default_references(trace::Workload::kCello), 200'000u);
  EXPECT_GE(default_references(trace::Workload::kSnake), 200'000u);
}

}  // namespace
}  // namespace pfp::sim
