// run_parallel stress: many small simulations across worker threads must
// produce exactly the serial results, in spec order, with no data races —
// the TSan CI leg runs this alongside the ThreadPool stress tests.
#include <gtest/gtest.h>

#include <cstddef>
#include <stdexcept>
#include <vector>

#include "sim/experiment.hpp"
#include "sim/sweep.hpp"
#include "trace/workloads.hpp"

namespace pfp::sim {
namespace {

std::vector<RunSpec> small_grid(const trace::Trace& trace) {
  using core::policy::PolicyKind;
  std::vector<RunSpec> specs;
  for (const PolicyKind kind :
       {PolicyKind::kNoPrefetch, PolicyKind::kTree, PolicyKind::kProbGraph}) {
    for (const std::size_t blocks : {32u, 64u, 128u, 256u}) {
      RunSpec spec;
      spec.trace = &trace;
      spec.config.cache_blocks = blocks;
      spec.config.policy.kind = kind;
      specs.push_back(spec);
    }
  }
  return specs;
}

TEST(SweepStress, ParallelMatchesSerialAcrossManyRuns) {
  const trace::Trace cad =
      trace::make_workload(trace::Workload::kCad, 1'000, /*seed=*/3);
  const trace::Trace sitar =
      trace::make_workload(trace::Workload::kSitar, 1'000, /*seed=*/3);
  std::vector<RunSpec> specs = small_grid(cad);
  for (const RunSpec& spec : small_grid(sitar)) {
    specs.push_back(spec);
  }

  const std::vector<Result> serial = run_serial(specs);
  const std::vector<Result> parallel = run_parallel(specs, /*threads=*/4);
  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(parallel[i].policy_name, serial[i].policy_name) << i;
    EXPECT_EQ(parallel[i].metrics.demand_hits, serial[i].metrics.demand_hits)
        << i;
    EXPECT_EQ(parallel[i].metrics.prefetch_hits,
              serial[i].metrics.prefetch_hits)
        << i;
    EXPECT_EQ(parallel[i].metrics.misses, serial[i].metrics.misses) << i;
    EXPECT_EQ(parallel[i].metrics.stall_ms, serial[i].metrics.stall_ms) << i;
  }
}

TEST(SweepStress, ExceptionUnderLoadStillDrainsCleanly) {
  const trace::Trace cad =
      trace::make_workload(trace::Workload::kCad, 500, /*seed=*/5);
  std::vector<RunSpec> specs = small_grid(cad);
  RunSpec broken;  // null trace: the worker throws mid-sweep
  specs.insert(specs.begin() + static_cast<std::ptrdiff_t>(specs.size() / 2),
               broken);
  EXPECT_THROW(run_parallel(specs, /*threads=*/4), std::invalid_argument);
}

}  // namespace
}  // namespace pfp::sim
