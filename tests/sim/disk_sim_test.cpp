// Simulator behaviour under the finite-disk extension (the paper assumes
// infinite disks; SimConfig::disks relaxes that).
#include <gtest/gtest.h>

#include "sim/simulator.hpp"
#include "util/prng.hpp"

namespace pfp::sim {
namespace {

using core::policy::PolicyKind;
using trace::Trace;

Trace random_trace(std::size_t n, std::uint64_t seed) {
  Trace t("rand");
  util::Xoshiro256 rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    t.append(rng.below(10'000));
  }
  return t;
}

TEST(DiskSim, InfiniteDisksHaveNoQueueDelay) {
  SimConfig c;
  c.cache_blocks = 64;
  c.disks = 0;
  c.policy.kind = PolicyKind::kTreeNextLimit;
  const auto r = simulate(c, random_trace(10'000, 1));
  EXPECT_DOUBLE_EQ(r.metrics.disk_queue_delay_ms, 0.0);
  EXPECT_GT(r.metrics.disk_requests, 0u);
}

TEST(DiskSim, MissRatesUnaffectedByDiskCount) {
  // The disk model changes time, not cache contents: hit/miss counts are
  // identical for any disk count.
  const Trace t = random_trace(20'000, 2);
  SimConfig c;
  c.cache_blocks = 128;
  c.policy.kind = PolicyKind::kTreeNextLimit;
  c.disks = 0;
  const auto infinite = simulate(c, t);
  c.disks = 2;
  const auto two = simulate(c, t);
  EXPECT_EQ(infinite.metrics.misses, two.metrics.misses);
  EXPECT_EQ(infinite.metrics.prefetch_hits, two.metrics.prefetch_hits);
}

TEST(DiskSim, FewerDisksSlowerOrEqual) {
  const Trace t = random_trace(20'000, 3);
  SimConfig c;
  c.cache_blocks = 128;
  c.policy.kind = PolicyKind::kNextLimit;
  double last_elapsed = 0.0;
  for (const std::uint32_t disks : {1u, 4u, 16u}) {
    c.disks = disks;
    const auto r = simulate(c, t);
    if (last_elapsed > 0.0) {
      EXPECT_LE(r.metrics.elapsed_ms, last_elapsed + 1e-6)
          << disks << " disks";
    }
    last_elapsed = r.metrics.elapsed_ms;
  }
  // And infinite is at least as fast as 16.
  c.disks = 0;
  EXPECT_LE(simulate(c, t).metrics.elapsed_ms, last_elapsed + 1e-6);
}

TEST(DiskSim, SingleDiskAccruesQueueDelayUnderPrefetchTraffic) {
  // One disk + a prefetching policy: prefetches queue behind demand
  // fetches, so queue delay must appear.
  Trace t("seq");
  for (std::size_t i = 0; i < 20'000; ++i) {
    const trace::BlockId base = static_cast<trace::BlockId>(i / 50) * 1'000;
    t.append(base + i % 50);
  }
  SimConfig c;
  c.cache_blocks = 64;
  c.disks = 1;
  c.policy.kind = PolicyKind::kNextLimit;
  const auto r = simulate(c, t);
  EXPECT_GT(r.metrics.disk_queue_delay_ms, 0.0);
  EXPECT_GT(r.metrics.elapsed_ms, r.metrics.stall_ms);
}

TEST(DiskSim, PrefetchHitStallReflectsLateCompletion) {
  // With T_cpu tiny and one disk, a just-issued prefetch cannot complete
  // before the very next access: prefetch hits must stall.
  Trace t("seq");
  for (std::size_t i = 0; i < 5'000; ++i) {
    t.append(i);
  }
  SimConfig c;
  c.cache_blocks = 64;
  c.disks = 1;
  c.timing.t_cpu = 0.1;
  c.policy.kind = PolicyKind::kNextLimit;
  const auto r = simulate(c, t);
  EXPECT_GT(r.metrics.prefetch_hits, 0u);
  EXPECT_GT(r.metrics.stall_ms, 0.0);
}

}  // namespace
}  // namespace pfp::sim
