#include "sim/online_session.hpp"

#include <gtest/gtest.h>

#include "util/prng.hpp"

namespace pfp::sim {
namespace {

using core::policy::PolicyKind;

SimConfig tree_config(std::size_t blocks = 64) {
  SimConfig c;
  c.cache_blocks = blocks;
  c.policy.kind = PolicyKind::kTreeNextLimit;
  return c;
}

TEST(OnlineSession, FirstAccessMisses) {
  OnlineSession session(tree_config());
  const auto r = session.access(42);
  EXPECT_EQ(r.outcome, OnlineSession::Outcome::kMiss);
  // A miss pays driver + disk (+ hit time charged as part of the period).
  EXPECT_GT(r.latency_ms, 15.0);
}

TEST(OnlineSession, RepeatAccessHitsCheaply) {
  OnlineSession session(tree_config());
  session.access(42);
  const auto r = session.access(42);
  EXPECT_EQ(r.outcome, OnlineSession::Outcome::kDemandHit);
  EXPECT_LT(r.latency_ms, 1.0);
}

TEST(OnlineSession, SequentialStreamGetsPrefetchHits) {
  OnlineSession session(tree_config());
  bool saw_prefetch_hit = false;
  for (trace::BlockId b = 0; b < 200; ++b) {
    const auto r = session.access(b);
    saw_prefetch_hit |= r.outcome == OnlineSession::Outcome::kPrefetchHit;
  }
  EXPECT_TRUE(saw_prefetch_hit);
  EXPECT_GT(session.metrics().prefetch_hits, 0u);
}

TEST(OnlineSession, MatchesBatchSimulatorExactly) {
  // Feeding a trace record-by-record must produce the same cache
  // behaviour as the batch simulator.
  trace::Trace t("t");
  util::Xoshiro256 rng(5);
  for (int i = 0; i < 20'000; ++i) {
    t.append(rng.below(500));
  }
  const auto batch = simulate(tree_config(), t);

  OnlineSession session(tree_config());
  for (const auto& rec : t) {
    session.access(rec.block);
  }
  EXPECT_EQ(session.metrics().misses, batch.metrics.misses);
  EXPECT_EQ(session.metrics().prefetch_hits, batch.metrics.prefetch_hits);
  EXPECT_EQ(session.metrics().policy.prefetches_issued,
            batch.metrics.policy.prefetches_issued);
}

TEST(OnlineSession, RejectsOraclePolicies) {
  SimConfig c;
  c.policy.kind = PolicyKind::kPerfectSelector;
  EXPECT_THROW(OnlineSession{c}, std::invalid_argument);
}

TEST(OnlineSession, LatencySumsToElapsedMinusCompute) {
  SimConfig c = tree_config();
  OnlineSession session(c);
  double latency_total = 0.0;
  std::uint64_t prefetch_driver = 0;
  for (trace::BlockId b = 0; b < 500; ++b) {
    latency_total += session.access(b % 100).latency_ms;
  }
  prefetch_driver = session.metrics().policy.prefetches_issued;
  const double expected =
      session.metrics().elapsed_ms -
      500.0 * c.timing.t_cpu;
  // latency excludes T_cpu but includes everything else the model
  // charges (hit time, driver overheads, stalls).
  EXPECT_NEAR(latency_total, expected, 1e-6);
  (void)prefetch_driver;
}

TEST(OnlineSession, MoveTransfersState) {
  OnlineSession a(tree_config());
  a.access(1);
  OnlineSession b = std::move(a);
  EXPECT_EQ(b.metrics().accesses, 1u);
  b.access(1);
  EXPECT_EQ(b.metrics().demand_hits, 1u);
}

TEST(OnlineSession, MoveAssignmentTransfersState) {
  OnlineSession a(tree_config());
  a.access(1);
  a.access(1);
  OnlineSession b(tree_config(32));
  b = std::move(a);
  EXPECT_EQ(b.metrics().accesses, 2u);
  EXPECT_EQ(b.metrics().demand_hits, 1u);
  EXPECT_EQ(b.config().cache_blocks, 64u);
  b.access(1);
  EXPECT_EQ(b.metrics().demand_hits, 2u);
}

TEST(OnlineSession, SelfMoveAssignmentIsSafe) {
  OnlineSession a(tree_config());
  a.access(7);
  // Via a reference so the compiler can't flag (or elide) the self-move.
  OnlineSession& alias = a;
  a = std::move(alias);
  // The session must survive with its state intact and stay usable.
  EXPECT_EQ(a.metrics().accesses, 1u);
  const auto r = a.access(7);
  EXPECT_EQ(r.outcome, OnlineSession::Outcome::kDemandHit);
  EXPECT_EQ(a.metrics().demand_hits, 1u);
}

}  // namespace
}  // namespace pfp::sim
