#include "sim/metrics.hpp"

#include <gtest/gtest.h>

namespace pfp::sim {
namespace {

TEST(Metrics, ZeroSafeOnEmpty) {
  const Metrics m;
  EXPECT_DOUBLE_EQ(m.miss_rate(), 0.0);
  EXPECT_DOUBLE_EQ(m.prefetch_cache_hit_rate(), 0.0);
  EXPECT_DOUBLE_EQ(m.prefetches_per_access(), 0.0);
  EXPECT_DOUBLE_EQ(m.mean_prefetch_probability(), 0.0);
  EXPECT_DOUBLE_EQ(m.candidates_cached_fraction(), 0.0);
  EXPECT_DOUBLE_EQ(m.prediction_accuracy(), 0.0);
  EXPECT_DOUBLE_EQ(m.lvc_revisit_rate(), 0.0);
}

TEST(Metrics, MissRate) {
  Metrics m;
  m.accesses = 10;
  m.misses = 3;
  EXPECT_DOUBLE_EQ(m.miss_rate(), 0.3);
  EXPECT_DOUBLE_EQ(m.hit_rate(), 0.7);
}

TEST(Metrics, PrefetchCacheHitRate) {
  Metrics m;
  m.prefetch_hits = 30;
  m.policy.prefetches_issued = 40;
  EXPECT_DOUBLE_EQ(m.prefetch_cache_hit_rate(), 0.75);
}

TEST(Metrics, PrefetchesPerAccess) {
  Metrics m;
  m.accesses = 100;
  m.policy.prefetches_issued = 150;
  EXPECT_DOUBLE_EQ(m.prefetches_per_access(), 1.5);
}

TEST(Metrics, MeanPrefetchProbability) {
  Metrics m;
  m.policy.tree_prefetches_issued = 4;
  m.policy.sum_prefetch_probability = 2.0;
  EXPECT_DOUBLE_EQ(m.mean_prefetch_probability(), 0.5);
}

TEST(Metrics, CandidatesCachedFraction) {
  Metrics m;
  m.policy.candidates_chosen = 8;
  m.policy.candidates_already_cached = 6;
  EXPECT_DOUBLE_EQ(m.candidates_cached_fraction(), 0.75);
}

TEST(Metrics, PredictionMetrics) {
  Metrics m;
  m.accesses = 100;
  m.policy.predictable = 60;
  m.policy.predictable_uncached = 9;
  EXPECT_DOUBLE_EQ(m.prediction_accuracy(), 0.6);
  EXPECT_DOUBLE_EQ(m.predictable_uncached_fraction(), 0.15);
}

TEST(Metrics, LvcMetrics) {
  Metrics m;
  m.policy.lvc_opportunities = 50;
  m.policy.lvc_followed = 35;
  m.policy.lvc_checks = 40;
  m.policy.lvc_cached = 34;
  EXPECT_DOUBLE_EQ(m.lvc_revisit_rate(), 0.7);
  EXPECT_DOUBLE_EQ(m.lvc_cached_fraction(), 0.85);
}

TEST(Metrics, TrafficRatio) {
  Metrics m;
  m.misses = 100;
  m.policy.prefetches_issued = 180;
  EXPECT_DOUBLE_EQ(m.prefetch_traffic_ratio(), 1.8);
}

TEST(Metrics, SummaryMentionsKeyNumbers) {
  Metrics m;
  m.accesses = 1000;
  m.misses = 250;
  const auto text = m.summary();
  EXPECT_NE(text.find("miss rate"), std::string::npos);
  EXPECT_NE(text.find("25.00%"), std::string::npos);
  EXPECT_NE(text.find("1,000"), std::string::npos);
}

}  // namespace
}  // namespace pfp::sim
