#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include "cache/lru_cache.hpp"
#include "util/prng.hpp"

namespace pfp::sim {
namespace {

using core::policy::PolicyKind;
using trace::BlockId;
using trace::Trace;

Trace zipfish_trace(std::size_t n, std::uint64_t seed) {
  Trace t("zipfish");
  util::Xoshiro256 rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    // mixture of hot set and cold tail
    if (rng.bernoulli(0.6)) {
      t.append(rng.below(100));
    } else {
      t.append(1'000 + rng.below(100'000));
    }
  }
  return t;
}

SimConfig no_prefetch_config(std::size_t blocks) {
  SimConfig c;
  c.cache_blocks = blocks;
  c.policy.kind = PolicyKind::kNoPrefetch;
  return c;
}

// The no-prefetch simulator must match a plain LRU cache access-for-access.
TEST(Simulator, NoPrefetchEqualsPlainLru) {
  const Trace t = zipfish_trace(50'000, 11);
  for (const std::size_t blocks : {16u, 64u, 256u}) {
    cache::LruCache reference(blocks);
    std::uint64_t ref_misses = 0;
    for (const auto& r : t) {
      if (!reference.access(r.block)) {
        ++ref_misses;
      }
    }
    const auto result = simulate(no_prefetch_config(blocks), t);
    EXPECT_EQ(result.metrics.misses, ref_misses) << "blocks=" << blocks;
    EXPECT_EQ(result.metrics.demand_hits, t.size() - ref_misses);
  }
}

TEST(Simulator, EmptyTraceProducesZeroMetrics) {
  const auto r = simulate(no_prefetch_config(8), Trace("empty"));
  EXPECT_EQ(r.metrics.accesses, 0u);
  EXPECT_DOUBLE_EQ(r.metrics.miss_rate(), 0.0);
  EXPECT_DOUBLE_EQ(r.metrics.elapsed_ms, 0.0);
}

TEST(Simulator, ResultCarriesNames) {
  const Trace t = zipfish_trace(100, 1);
  SimConfig c = no_prefetch_config(8);
  const auto r = simulate(c, t);
  EXPECT_EQ(r.trace_name, "zipfish");
  EXPECT_EQ(r.policy_name, "no-prefetch");
  EXPECT_EQ(r.config.cache_blocks, 8u);
}

TEST(Simulator, DeterministicAcrossRuns) {
  const Trace t = zipfish_trace(20'000, 3);
  SimConfig c;
  c.cache_blocks = 64;
  c.policy.kind = PolicyKind::kTreeNextLimit;
  const auto a = simulate(c, t);
  const auto b = simulate(c, t);
  EXPECT_EQ(a.metrics.misses, b.metrics.misses);
  EXPECT_EQ(a.metrics.prefetch_hits, b.metrics.prefetch_hits);
  EXPECT_EQ(a.metrics.policy.prefetches_issued,
            b.metrics.policy.prefetches_issued);
  EXPECT_DOUBLE_EQ(a.metrics.elapsed_ms, b.metrics.elapsed_ms);
}

TEST(Simulator, ResidencyNeverExceedsCapacity) {
  const Trace t = zipfish_trace(5'000, 4);
  SimConfig c;
  c.cache_blocks = 32;
  c.policy.kind = PolicyKind::kTreeNextLimit;
  Simulator sim(c);
  for (std::size_t i = 0; i < t.size(); ++i) {
    sim.step(t, i);
    ASSERT_LE(sim.buffer_cache().resident(), 32u);
  }
}

TEST(Simulator, ElapsedTimeAccountsMissesAndHits) {
  // Two distinct blocks, each accessed twice, cache big enough: 2 misses
  // + 2 hits, no prefetching.
  Trace t("tiny");
  t.append(1);
  t.append(2);
  t.append(1);
  t.append(2);
  SimConfig c = no_prefetch_config(8);
  const auto r = simulate(c, t);
  const auto& tm = c.timing;
  const double expected = 4 * (tm.t_hit + tm.t_cpu)        // access periods
                          + 2 * (tm.t_driver + tm.t_disk); // two misses
  EXPECT_NEAR(r.metrics.elapsed_ms, expected, 1e-9);
  EXPECT_NEAR(r.metrics.stall_ms, 2 * tm.t_disk, 1e-9);
}

TEST(Simulator, PrefetchingReducesElapsedTimeOnPattern) {
  Trace t("pattern");
  util::SplitMix64 sm(5);
  std::vector<BlockId> pattern;
  for (int i = 0; i < 30; ++i) {
    pattern.push_back(sm.next() >> 20);
  }
  for (int r = 0; r < 200; ++r) {
    for (const BlockId b : pattern) {
      t.append(b);
    }
  }
  SimConfig np = no_prefetch_config(16);
  SimConfig tree = np;
  tree.policy.kind = PolicyKind::kTree;
  const auto r_np = simulate(np, t);
  const auto r_tree = simulate(tree, t);
  EXPECT_LT(r_tree.metrics.elapsed_ms, r_np.metrics.elapsed_ms);
  EXPECT_LT(r_tree.metrics.stall_ms, r_np.metrics.stall_ms);
}

TEST(Simulator, MissRatePlusHitRateIsOne) {
  const auto r = simulate(no_prefetch_config(64), zipfish_trace(10'000, 6));
  EXPECT_NEAR(r.metrics.miss_rate() + r.metrics.hit_rate(), 1.0, 1e-12);
}

TEST(Simulator, SmallestLegalCacheWorks) {
  const auto r = simulate(no_prefetch_config(2), zipfish_trace(5'000, 8));
  EXPECT_EQ(r.metrics.accesses, 5'000u);
}

TEST(Simulator, TreePolicySmallCacheStress) {
  // Tiny cache + aggressive prefetching: the reclaim logic must never
  // violate capacity or deadlock.
  SimConfig c;
  c.cache_blocks = 4;
  c.policy.kind = PolicyKind::kTreeNextLimit;
  const auto r = simulate(c, zipfish_trace(20'000, 9));
  EXPECT_EQ(r.metrics.accesses, 20'000u);
}

}  // namespace
}  // namespace pfp::sim
