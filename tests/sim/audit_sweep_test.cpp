// End-to-end SIM_AUDIT coverage: drive real simulations and sweep the
// buffer-cache invariants periodically.  The unit detection tests prove
// each audit *can* fire; this proves the real simulator keeps every
// invariant across all four paper workloads and the main policy shapes.
// Skips when built without SIM_AUDIT (the sanitizer CI legs enable it).
#include <gtest/gtest.h>

#include <cstddef>

#include "core/policy/factory.hpp"
#include "core/policy/tree_policy.hpp"
#include "sim/simulator.hpp"
#include "trace/workloads.hpp"
#include "util/audit.hpp"

namespace pfp::sim {
namespace {

class SimulatorAuditSweep
    : public ::testing::TestWithParam<trace::Workload> {
 protected:
  void SetUp() override {
    if (!PFP_AUDIT_ENABLED) {
      GTEST_SKIP() << "built without SIM_AUDIT; sweeps are no-ops";
    }
  }
};

TEST_P(SimulatorAuditSweep, InvariantsHoldThroughoutRun) {
  using core::policy::PolicyKind;
  const trace::Trace t = trace::make_workload(GetParam(), 2'000, /*seed=*/7);
  for (const PolicyKind kind :
       {PolicyKind::kTree, PolicyKind::kNextLimit, PolicyKind::kProbGraph}) {
    SimConfig config;
    config.cache_blocks = 64;
    config.policy.kind = kind;
    Simulator simulator(config);
    for (std::size_t i = 0; i < t.size(); ++i) {
      simulator.step(t, i);
      if (i % 50 == 0) {
        // The default abort handler is active: a violated invariant kills
        // the test with the audit message rather than failing an EXPECT.
        simulator.buffer_cache().audit();
        if (const auto* tp = dynamic_cast<const core::policy::TreeCostBenefit*>(
                &simulator.prefetcher())) {
          tp->audit_enumeration_cache();
        }
      }
    }
    simulator.buffer_cache().audit();
    if (const auto* tp = dynamic_cast<const core::policy::TreeCostBenefit*>(
            &simulator.prefetcher())) {
      tp->audit_enumeration_cache();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Workloads, SimulatorAuditSweep,
                         ::testing::ValuesIn(trace::all_workloads()),
                         [](const auto& param_info) {
                           return trace::workload_name(param_info.param);
                         });

}  // namespace
}  // namespace pfp::sim
