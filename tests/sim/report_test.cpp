#include "sim/report.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>

namespace pfp::sim {
namespace {

Result make_result(const std::string& trace, const std::string& policy,
                   std::size_t blocks, double miss_rate) {
  Result r;
  r.trace_name = trace;
  r.policy_name = policy;
  r.config.cache_blocks = blocks;
  r.metrics.accesses = 1000;
  r.metrics.misses = static_cast<std::uint64_t>(miss_rate * 1000);
  r.metrics.demand_hits = r.metrics.accesses - r.metrics.misses;
  return r;
}

TEST(Report, SeriesGroupsByTraceAndPolicy) {
  std::vector<Result> results = {
      make_result("cad", "no-prefetch", 256, 0.8),
      make_result("cad", "tree", 256, 0.5),
      make_result("cad", "no-prefetch", 512, 0.6),
      make_result("cad", "tree", 512, 0.4),
      make_result("sitar", "no-prefetch", 256, 0.7),
      make_result("sitar", "tree", 256, 0.65),
  };
  std::ostringstream out;
  print_series_by_cache_size(
      out, results, [](const Result& r) { return r.metrics.miss_rate(); },
      "miss rate", /*percent=*/true);
  const auto text = out.str();
  EXPECT_NE(text.find("== cad — miss rate =="), std::string::npos);
  EXPECT_NE(text.find("== sitar — miss rate =="), std::string::npos);
  EXPECT_NE(text.find("no-prefetch"), std::string::npos);
  EXPECT_NE(text.find("80.00%"), std::string::npos);
  EXPECT_NE(text.find("40.00%"), std::string::npos);
}

TEST(Report, MissingCellsRenderDash) {
  std::vector<Result> results = {
      make_result("cad", "no-prefetch", 256, 0.8),
      make_result("cad", "tree", 512, 0.4),  // no tree at 256
  };
  std::ostringstream out;
  print_series_by_cache_size(
      out, results, [](const Result& r) { return r.metrics.miss_rate(); },
      "miss rate", true);
  EXPECT_NE(out.str().find('-'), std::string::npos);
}

TEST(Report, CsvHasHeaderAndRows) {
  std::vector<Result> results = {make_result("cad", "tree", 256, 0.5)};
  std::ostringstream out;
  write_results_csv(out, results);
  const auto text = out.str();
  EXPECT_NE(text.find("trace,policy,cache_blocks"), std::string::npos);
  EXPECT_NE(text.find("cad,tree,256"), std::string::npos);
  // exactly 2 lines: header + row
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 2);
}

TEST(Report, MaybeWriteCsvSkipsEmptyPath) {
  EXPECT_FALSE(maybe_write_csv("", {}));
}

TEST(Report, MaybeWriteCsvWritesFile) {
  const std::string path = ::testing::TempDir() + "/pfp_report_test.csv";
  std::vector<Result> results = {make_result("cad", "tree", 256, 0.5)};
  ASSERT_TRUE(maybe_write_csv(path, results));
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_NE(line.find("trace,policy"), std::string::npos);
}

}  // namespace
}  // namespace pfp::sim
