// CI smoke wrapper around the deterministic protocol fuzzer: the same
// corpus the nightly ASan leg runs 10x larger, pinned here so a decoder
// regression fails fast in the default test run too.
#include "server/fuzz.hpp"

#include <gtest/gtest.h>

namespace pfp::server {
namespace {

TEST(ProtocolFuzz, CorpusUpholdsTheErrorContract) {
  FuzzOptions options;
  options.cases = 400;
  const FuzzReport report = run_protocol_fuzz(options);
  EXPECT_EQ(report.contract_violations, 0u);
  EXPECT_EQ(report.cases, 400u);
  // The corpus must actually exercise both sides of the protocol: valid
  // frames that dispatch, and malformed ones that draw typed errors.
  EXPECT_GT(report.frames_handled, 0u);
  EXPECT_GT(report.errors_sent, 0u);
  EXPECT_GT(report.fatal_sessions, 0u);
  EXPECT_GT(report.bytes, 0u);
}

TEST(ProtocolFuzz, SameSeedSameVerdict) {
  FuzzOptions options;
  options.seed = 1234567;
  options.cases = 150;
  const FuzzReport a = run_protocol_fuzz(options);
  const FuzzReport b = run_protocol_fuzz(options);
  EXPECT_EQ(a.cases, b.cases);
  EXPECT_EQ(a.bytes, b.bytes);
  EXPECT_EQ(a.frames_handled, b.frames_handled);
  EXPECT_EQ(a.errors_sent, b.errors_sent);
  EXPECT_EQ(a.fatal_sessions, b.fatal_sessions);
  EXPECT_EQ(a.contract_violations, b.contract_violations);
}

TEST(ProtocolFuzz, DifferentSeedsDifferentCorpora) {
  FuzzOptions a_options;
  a_options.cases = 100;
  a_options.seed = 1;
  FuzzOptions b_options = a_options;
  b_options.seed = 2;
  const FuzzReport a = run_protocol_fuzz(a_options);
  const FuzzReport b = run_protocol_fuzz(b_options);
  EXPECT_NE(a.bytes, b.bytes);  // astronomically unlikely to collide
}

}  // namespace
}  // namespace pfp::server
