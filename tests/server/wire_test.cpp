#include "server/wire.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace pfp::server::wire {
namespace {

std::vector<std::uint8_t> make_frame(MsgType type, std::uint16_t tenant,
                                     std::uint32_t serial,
                                     std::span<const std::uint8_t> payload) {
  FrameHeader header;
  header.type = type;
  header.tenant = tenant;
  header.serial = serial;
  std::vector<std::uint8_t> bytes;
  append_frame(bytes, header, payload);
  return bytes;
}

TEST(WireFrame, HeaderAndPayloadRoundTrip) {
  std::vector<std::uint8_t> payload;
  put_u64(payload, 0xDEADBEEFCAFEF00DULL);
  const std::vector<std::uint8_t> bytes =
      make_frame(MsgType::kAccess, 0xBEEF, 0x12345678, payload);
  ASSERT_EQ(bytes.size(), kHeaderSize + 8);

  const DecodeResult result = decode(bytes);
  ASSERT_EQ(result.status, DecodeStatus::kFrame);
  EXPECT_EQ(result.consumed, bytes.size());
  EXPECT_EQ(result.frame.header.type, MsgType::kAccess);
  EXPECT_EQ(result.frame.header.tenant, 0xBEEF);
  EXPECT_EQ(result.frame.header.serial, 0x12345678u);
  EXPECT_EQ(result.frame.header.payload_len, 8u);
  Reader reader(result.frame.payload);
  EXPECT_EQ(reader.read_u64(), 0xDEADBEEFCAFEF00DULL);
  EXPECT_TRUE(reader.exhausted());
}

TEST(WireFrame, EveryProperPrefixNeedsMore) {
  std::vector<std::uint8_t> payload;
  put_u32(payload, 7);
  const std::vector<std::uint8_t> bytes =
      make_frame(MsgType::kStats, 1, 2, payload);
  for (std::size_t n = 0; n < bytes.size(); ++n) {
    const DecodeResult result =
        decode(std::span<const std::uint8_t>(bytes.data(), n));
    EXPECT_EQ(result.status, DecodeStatus::kNeedMore)
        << "prefix length " << n;
  }
}

TEST(WireFrame, BadMagicIsFatalEvenOnOneBytePrefix) {
  const std::uint8_t bytes[] = {'X'};
  const DecodeResult result = decode(bytes);
  EXPECT_EQ(result.status, DecodeStatus::kError);
  EXPECT_EQ(result.error, ErrorCode::kBadMagic);
}

TEST(WireFrame, BadVersionIsFatalOnFourBytePrefix) {
  const std::uint8_t bytes[] = {'P', 'F', 'P', 2};
  const DecodeResult result = decode(bytes);
  EXPECT_EQ(result.status, DecodeStatus::kError);
  EXPECT_EQ(result.error, ErrorCode::kBadVersion);
}

TEST(WireFrame, OversizedDeclaredLengthIsFatal) {
  std::vector<std::uint8_t> bytes =
      make_frame(MsgType::kPing, 0, 0, {});
  const std::uint32_t huge = kMaxPayload + 1;
  bytes[8] = static_cast<std::uint8_t>(huge & 0xff);
  bytes[9] = static_cast<std::uint8_t>((huge >> 8) & 0xff);
  bytes[10] = static_cast<std::uint8_t>((huge >> 16) & 0xff);
  bytes[11] = static_cast<std::uint8_t>((huge >> 24) & 0xff);
  const DecodeResult result = decode(bytes);
  EXPECT_EQ(result.status, DecodeStatus::kError);
  EXPECT_EQ(result.error, ErrorCode::kOversized);
}

TEST(WireFrame, UnknownTypePassesThroughToTheDispatcher) {
  // Type validation is the session's job (it can send a recoverable
  // typed error); the decoder only rejects what breaks re-sync.
  const std::vector<std::uint8_t> bytes =
      make_frame(static_cast<MsgType>(0x55), 3, 4, {});
  const DecodeResult result = decode(bytes);
  ASSERT_EQ(result.status, DecodeStatus::kFrame);
  EXPECT_EQ(static_cast<std::uint8_t>(result.frame.header.type), 0x55);
}

TEST(WireFrame, BackToBackFramesDecodeIndependently) {
  std::vector<std::uint8_t> bytes = make_frame(MsgType::kPing, 1, 10, {});
  const std::vector<std::uint8_t> second =
      make_frame(MsgType::kStats, 2, 20, {});
  bytes.insert(bytes.end(), second.begin(), second.end());

  const DecodeResult first = decode(bytes);
  ASSERT_EQ(first.status, DecodeStatus::kFrame);
  EXPECT_EQ(first.frame.header.serial, 10u);
  const DecodeResult next =
      decode(std::span<const std::uint8_t>(bytes).subspan(first.consumed));
  ASSERT_EQ(next.status, DecodeStatus::kFrame);
  EXPECT_EQ(next.frame.header.serial, 20u);
  EXPECT_EQ(first.consumed + next.consumed, bytes.size());
}

TEST(WireReader, OverrunLatchesAndReturnsZeros) {
  const std::uint8_t two[] = {0xAA, 0xBB};
  Reader reader{std::span<const std::uint8_t>(two)};
  EXPECT_EQ(reader.read_u32(), 0u);  // only 2 bytes available
  EXPECT_FALSE(reader.ok());
  EXPECT_EQ(reader.read_u64(), 0u);  // stays latched
  EXPECT_TRUE(reader.read_bytes(1).empty());
  EXPECT_FALSE(reader.exhausted());
}

TEST(WireReader, ExhaustedMeansEveryByteConsumed) {
  std::vector<std::uint8_t> bytes;
  put_u16(bytes, 0x1234);
  Reader reader{std::span<const std::uint8_t>(bytes)};
  EXPECT_EQ(reader.read_u16(), 0x1234);
  EXPECT_TRUE(reader.exhausted());

  bytes.push_back(0);  // one trailing byte
  Reader trailing{std::span<const std::uint8_t>(bytes)};
  EXPECT_EQ(trailing.read_u16(), 0x1234);
  EXPECT_FALSE(trailing.exhausted());
}

TEST(WirePayload, TenantOpenRoundTripsAndRejectsTrailingGarbage) {
  TenantOpenRequest request;
  request.name = "cello-replica";
  request.policy = "tree-next-limit";
  request.cache_blocks = 4096;
  request.shards = 3;
  std::vector<std::uint8_t> payload;
  encode_tenant_open(payload, request);

  const auto parsed = parse_tenant_open(payload);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->name, request.name);
  EXPECT_EQ(parsed->policy, request.policy);
  EXPECT_EQ(parsed->cache_blocks, request.cache_blocks);
  EXPECT_EQ(parsed->shards, request.shards);

  payload.push_back(0x00);
  EXPECT_FALSE(parse_tenant_open(payload).has_value());
}

TEST(WirePayload, MetricsRoundTripBitExact) {
  WireMetrics m;
  m.accesses = 1001;
  m.demand_hits = 600;
  m.prefetch_hits = 300;
  m.misses = 101;
  m.elapsed_ms = 12.375;  // exactly representable
  m.stall_ms = 0.5;
  m.disk_queue_delay_ms = 1.0 / 3.0;  // NOT exactly representable in text
  m.disk_requests = 77;
  m.prefetches_issued = 321;
  m.sum_prefetch_probability = 0.1 + 0.2;  // classic rounding trap
  m.tree_nodes = 4242;
  m.tree_bytes = 99999;

  std::vector<std::uint8_t> payload;
  encode_metrics(payload, m);
  const auto parsed = parse_metrics(payload);
  ASSERT_TRUE(parsed.has_value());
  // Doubles travel as bit-cast u64, so equality is exact — this is what
  // makes load_gen's served-vs-replay verification meaningful.
  EXPECT_EQ(*parsed, m);

  payload.pop_back();
  EXPECT_FALSE(parse_metrics(payload).has_value());
}

TEST(WirePayload, BatchReplyRoundTrip) {
  BatchReply batch;
  batch.demand_hits = 5;
  batch.prefetch_hits = 2;
  batch.misses = 1;
  batch.latency_ms = 3.25;
  std::vector<std::uint8_t> payload;
  encode_batch_reply(payload, batch);
  const auto parsed = parse_batch_reply(payload);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->demand_hits, 5u);
  EXPECT_EQ(parsed->prefetch_hits, 2u);
  EXPECT_EQ(parsed->misses, 1u);
  EXPECT_EQ(parsed->latency_ms, 3.25);
}

TEST(WirePayload, ErrorReplyCarriesCodeAndDetail) {
  std::vector<std::uint8_t> payload;
  encode_error(payload,
               ErrorReply{ErrorCode::kNoSuchTenant, "tenant 9 not open"});
  const auto parsed = parse_error(payload);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->code, ErrorCode::kNoSuchTenant);
  EXPECT_EQ(parsed->detail, "tenant 9 not open");
}

TEST(WirePayload, ErrorNamesAreStable) {
  EXPECT_EQ(error_name(ErrorCode::kBadMagic), "bad-magic");
  EXPECT_EQ(error_name(ErrorCode::kNoSuchTenant), "no-such-tenant");
  EXPECT_EQ(error_name(ErrorCode::kBackpressure), "backpressure");
}

}  // namespace
}  // namespace pfp::server::wire
