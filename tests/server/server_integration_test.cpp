// Socket end-to-end tests: a real PrefetchServer on a loopback port, a
// blocking test client speaking PFP1 (and HTTP for /metrics), and the
// bit-identical served-vs-replay check the server-integration CI leg
// scales up via load_gen.
#include "server/server.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "engine/tenant_registry.hpp"
#include "server/session.hpp"
#include "server/wire.hpp"
#include "util/net.hpp"
#include "util/thread_annotations.hpp"

namespace pfp::server {
namespace {

struct Reply {
  wire::FrameHeader header;
  std::vector<std::uint8_t> payload;
};

/// Blocking request/response client (one in-flight frame, like load_gen).
class Client {
 public:
  explicit Client(std::uint16_t port)
      : sock_(util::net::connect_tcp(port)) {}

  Reply call(wire::MsgType type, std::uint16_t tenant, std::uint32_t serial,
             std::span<const std::uint8_t> payload = {}) {
    wire::FrameHeader header;
    header.type = type;
    header.tenant = tenant;
    header.serial = serial;
    std::vector<std::uint8_t> frame;
    wire::append_frame(frame, header, payload);
    EXPECT_TRUE(util::net::write_all(sock_, frame));

    std::vector<std::uint8_t> reply(wire::kHeaderSize);
    EXPECT_TRUE(util::net::read_exact(sock_, reply));
    const std::uint32_t payload_len =
        static_cast<std::uint32_t>(reply[8]) |
        (static_cast<std::uint32_t>(reply[9]) << 8) |
        (static_cast<std::uint32_t>(reply[10]) << 16) |
        (static_cast<std::uint32_t>(reply[11]) << 24);
    reply.resize(wire::kHeaderSize + payload_len);
    EXPECT_TRUE(util::net::read_exact(
        sock_, std::span<std::uint8_t>(reply).subspan(wire::kHeaderSize)));

    const wire::DecodeResult result = wire::decode(reply);
    EXPECT_EQ(result.status, wire::DecodeStatus::kFrame);
    EXPECT_EQ(result.consumed, reply.size());
    EXPECT_EQ(result.frame.header.serial, serial);
    return Reply{result.frame.header,
                 {result.frame.payload.begin(), result.frame.payload.end()}};
  }

 private:
  util::net::Socket sock_;
};

std::vector<std::uint8_t> open_payload(const std::string& name,
                                       const std::string& policy,
                                       std::uint64_t cache_blocks) {
  wire::TenantOpenRequest request;
  request.name = name;
  request.policy = policy;
  request.cache_blocks = cache_blocks;
  std::vector<std::uint8_t> payload;
  wire::encode_tenant_open(payload, request);
  return payload;
}

std::vector<std::uint8_t> access_many_payload(
    std::span<const std::uint64_t> blocks) {
  std::vector<std::uint8_t> payload;
  wire::put_u32(payload, static_cast<std::uint32_t>(blocks.size()));
  for (const std::uint64_t block : blocks) {
    wire::put_u64(payload, block);
  }
  return payload;
}

/// A deterministic access stream (same formula the replay side uses).
std::vector<std::uint64_t> test_stream(std::size_t n) {
  std::vector<std::uint64_t> blocks;
  blocks.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    blocks.push_back((i * 7 + i / 13) % 256);
  }
  return blocks;
}

/// Sends one HTTP request and drains the one-shot response to EOF.
std::string http_get(std::uint16_t port, const std::string& target) {
  const util::net::Socket sock = util::net::connect_tcp(port);
  std::string request;
  request += "GET ";
  request += target;
  request += " HTTP/1.1\r\nHost: localhost\r\n\r\n";
  EXPECT_TRUE(util::net::write_all(
      sock, std::span<const std::uint8_t>(
                reinterpret_cast<const std::uint8_t*>(request.data()),
                request.size())));
  std::string response;
  std::uint8_t buf[4096];
  for (;;) {
    const util::net::IoResult r = util::net::read_some(sock, buf);
    if (r.status == util::net::IoStatus::kOk) {
      response.append(reinterpret_cast<const char*>(buf), r.bytes);
      continue;
    }
    if (r.status == util::net::IoStatus::kClosed) {
      break;
    }
    ADD_FAILURE() << "unexpected read status";
    break;
  }
  return response;
}

TEST(ServerIntegration, ServedStreamMatchesInProcessReplayBitExactly) {
  ServerConfig config;
  config.loops = 2;
  PrefetchServer server(config);

  Client client(server.port());
  Reply reply = client.call(wire::MsgType::kTenantOpen, 1, 1,
                            open_payload("alpha", "tree-next-limit", 128));
  ASSERT_EQ(reply.header.type, wire::MsgType::kTenantOpenReply);

  const std::vector<std::uint64_t> stream = test_stream(1024);
  constexpr std::size_t kBatch = 128;
  std::uint32_t serial = 2;
  for (std::size_t at = 0; at < stream.size(); at += kBatch) {
    reply = client.call(
        wire::MsgType::kAccessMany, 1, serial++,
        access_many_payload(std::span<const std::uint64_t>(stream).subspan(
            at, std::min(kBatch, stream.size() - at))));
    ASSERT_EQ(reply.header.type, wire::MsgType::kAccessManyReply);
  }
  reply = client.call(wire::MsgType::kStats, 1, serial++);
  ASSERT_EQ(reply.header.type, wire::MsgType::kStatsReply);
  const auto served = wire::parse_metrics(reply.payload);
  ASSERT_TRUE(served.has_value());
  EXPECT_EQ(served->accesses, stream.size());

  // In-process replay: same config, same stream, same batching — the
  // STATS payload must match field for field, doubles included.
  engine::TenantConfig local;
  local.name = "replay";
  local.engine.cache_blocks = 128;
  std::string detail;
  ASSERT_EQ(engine::set_policy_by_name(local, "tree-next-limit", &detail),
            engine::TenantStatus::kOk);
  engine::Tenant replay(std::move(local));
  engine::Metrics local_metrics;
  {
    util::MutexLock lock(replay.mu());
    for (std::size_t at = 0; at < stream.size(); at += kBatch) {
      (void)replay.access_many(
          std::span<const std::uint64_t>(stream).subspan(
              at, std::min(kBatch, stream.size() - at)));
    }
    local_metrics = replay.metrics();
  }
  EXPECT_EQ(to_wire_metrics(local_metrics), *served);

  reply = client.call(wire::MsgType::kTenantClose, 1, serial++);
  EXPECT_EQ(reply.header.type, wire::MsgType::kTenantCloseReply);
  server.stop();
}

TEST(ServerIntegration, ConcurrentClientsOnDistinctTenantsStayIsolated) {
  ServerConfig config;
  config.loops = 2;
  PrefetchServer server(config);

  Client a(server.port());
  Client b(server.port());
  ASSERT_EQ(a.call(wire::MsgType::kTenantOpen, 1, 1,
                   open_payload("a", "tree", 64))
                .header.type,
            wire::MsgType::kTenantOpenReply);
  ASSERT_EQ(b.call(wire::MsgType::kTenantOpen, 2, 1,
                   open_payload("b", "markov", 64))
                .header.type,
            wire::MsgType::kTenantOpenReply);

  const std::uint64_t a_blocks[] = {1, 2, 3, 4};
  const std::uint64_t b_blocks[] = {9, 9, 9, 9, 9, 9};
  ASSERT_EQ(a.call(wire::MsgType::kAccessMany, 1, 2,
                   access_many_payload(a_blocks))
                .header.type,
            wire::MsgType::kAccessManyReply);
  ASSERT_EQ(b.call(wire::MsgType::kAccessMany, 2, 2,
                   access_many_payload(b_blocks))
                .header.type,
            wire::MsgType::kAccessManyReply);

  const auto a_stats =
      wire::parse_metrics(a.call(wire::MsgType::kStats, 1, 3).payload);
  const auto b_stats =
      wire::parse_metrics(b.call(wire::MsgType::kStats, 2, 3).payload);
  ASSERT_TRUE(a_stats.has_value());
  ASSERT_TRUE(b_stats.has_value());
  EXPECT_EQ(a_stats->accesses, 4u);
  EXPECT_EQ(b_stats->accesses, 6u);

  // Either client may drive the other's tenant id — same registry.
  const auto cross =
      wire::parse_metrics(b.call(wire::MsgType::kStats, 1, 4).payload);
  ASSERT_TRUE(cross.has_value());
  EXPECT_EQ(cross->accesses, 4u);
  server.stop();
}

TEST(ServerIntegration, MetricsEndpointServesTheMultiTenantExposition) {
  PrefetchServer server(ServerConfig{});
  Client client(server.port());
  ASSERT_EQ(client
                .call(wire::MsgType::kTenantOpen, 1, 1,
                      open_payload("scraped", "tree", 64))
                .header.type,
            wire::MsgType::kTenantOpenReply);
  const std::uint64_t blocks[] = {1, 2, 3};
  ASSERT_EQ(client
                .call(wire::MsgType::kAccessMany, 1, 2,
                      access_many_payload(blocks))
                .header.type,
            wire::MsgType::kAccessManyReply);

  const std::string response = http_get(server.port(), "/metrics");
  EXPECT_EQ(response.rfind("HTTP/1.1 200 OK\r\n", 0), 0u) << response;
  EXPECT_NE(response.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos);
  const std::size_t body_at = response.find("\r\n\r\n");
  ASSERT_NE(body_at, std::string::npos);
  const std::string body = response.substr(body_at + 4);

  // The HTTP body is exactly the in-process renderer's output.
  EXPECT_EQ(body, server.render_metrics());
  EXPECT_NE(body.find("pfp_accesses_total{tenant=\"scraped\",tenant_id="
                      "\"1\"} 3\n"),
            std::string::npos);

  // Light exposition-format validation: every line is a comment or a
  // pfp_-prefixed sample.
  std::size_t line_start = 0;
  while (line_start < body.size()) {
    std::size_t line_end = body.find('\n', line_start);
    if (line_end == std::string::npos) {
      line_end = body.size();
    }
    const std::string line = body.substr(line_start, line_end - line_start);
    if (!line.empty()) {
      EXPECT_TRUE(line[0] == '#' || line.rfind("pfp_", 0) == 0) << line;
    }
    line_start = line_end + 1;
  }
  server.stop();
}

TEST(ServerIntegration, UnknownHttpTargetIs404) {
  PrefetchServer server(ServerConfig{});
  const std::string response = http_get(server.port(), "/nope");
  EXPECT_EQ(response.rfind("HTTP/1.1 404 Not Found\r\n", 0), 0u);
}

TEST(ServerIntegration, FramingGarbageDrawsFatalErrorThenClose) {
  PrefetchServer server(ServerConfig{});
  const util::net::Socket sock = util::net::connect_tcp(server.port());
  const std::uint8_t garbage[] = {'X', 'Y', 'Z', 'W', 1, 2, 3, 4};
  ASSERT_TRUE(util::net::write_all(sock, garbage));

  // One kError frame comes back, then the server closes the connection.
  std::vector<std::uint8_t> header(wire::kHeaderSize);
  ASSERT_TRUE(util::net::read_exact(sock, header));
  const std::uint32_t payload_len =
      static_cast<std::uint32_t>(header[8]) |
      (static_cast<std::uint32_t>(header[9]) << 8) |
      (static_cast<std::uint32_t>(header[10]) << 16) |
      (static_cast<std::uint32_t>(header[11]) << 24);
  std::vector<std::uint8_t> payload(payload_len);
  ASSERT_TRUE(util::net::read_exact(sock, payload));
  header.insert(header.end(), payload.begin(), payload.end());
  const wire::DecodeResult result = wire::decode(header);
  ASSERT_EQ(result.status, wire::DecodeStatus::kFrame);
  EXPECT_EQ(result.frame.header.type, wire::MsgType::kError);
  const auto error = wire::parse_error(result.frame.payload);
  ASSERT_TRUE(error.has_value());
  EXPECT_EQ(error->code, wire::ErrorCode::kBadMagic);

  std::uint8_t extra[16];
  EXPECT_FALSE(util::net::read_exact(sock, extra));  // EOF: closed
}

}  // namespace
}  // namespace pfp::server
