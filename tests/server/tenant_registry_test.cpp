// Lifecycle guarantees of the multi-tenant registry (the state machine
// documented in docs/server.md, "Tenant lifecycle").
#include "engine/tenant_registry.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "util/thread_annotations.hpp"

namespace pfp::engine {
namespace {

TenantConfig small_config(const std::string& name,
                          const std::string& policy = "tree") {
  TenantConfig config;
  config.name = name;
  config.engine.cache_blocks = 64;
  std::string detail;
  EXPECT_EQ(set_policy_by_name(config, policy, &detail), TenantStatus::kOk)
      << detail;
  return config;
}

TEST(TenantRegistry, OpenFindCloseLifecycle) {
  TenantRegistry registry;
  EXPECT_EQ(registry.size(), 0u);
  EXPECT_EQ(registry.open(1, small_config("alpha"), nullptr),
            TenantStatus::kOk);
  EXPECT_EQ(registry.size(), 1u);

  const auto tenant = registry.find(1);
  ASSERT_NE(tenant, nullptr);
  EXPECT_EQ(tenant->name(), "alpha");
  EXPECT_EQ(registry.find(2), nullptr);

  EXPECT_EQ(registry.close(1), TenantStatus::kOk);
  EXPECT_EQ(registry.size(), 0u);
  EXPECT_EQ(registry.find(1), nullptr);
  EXPECT_EQ(registry.close(1), TenantStatus::kNoSuchTenant);
}

TEST(TenantRegistry, DuplicateOpenRejectedLiveTenantUntouched) {
  TenantRegistry registry;
  EXPECT_EQ(registry.open(5, small_config("original"), nullptr),
            TenantStatus::kOk);
  const auto before = registry.find(5);

  std::string detail;
  EXPECT_EQ(registry.open(5, small_config("usurper"), &detail),
            TenantStatus::kExists);
  EXPECT_EQ(registry.find(5), before);  // same object, not replaced
  EXPECT_EQ(registry.find(5)->name(), "original");
}

TEST(TenantRegistry, BadEngineConfigIsTypedNotThrown) {
  TenantRegistry registry;
  TenantConfig config = small_config("broken");
  config.engine.cache_blocks = 0;  // engine::validate rejects this
  std::string detail;
  EXPECT_EQ(registry.open(1, std::move(config), &detail),
            TenantStatus::kBadConfig);
  EXPECT_FALSE(detail.empty());
  EXPECT_EQ(registry.size(), 0u);
}

TEST(SetPolicyByName, ResolvesKnownAndRejectsUnknownNames) {
  TenantConfig config;
  std::string detail;
  EXPECT_EQ(set_policy_by_name(config, "markov", &detail), TenantStatus::kOk);
  EXPECT_EQ(set_policy_by_name(config, "tree-next-limit", &detail),
            TenantStatus::kOk);
  EXPECT_EQ(set_policy_by_name(config, "no-such-policy", &detail),
            TenantStatus::kBadConfig);
  EXPECT_NE(detail.find("no-such-policy"), std::string::npos)
      << "detail should name the junk: " << detail;
}

TEST(Tenant, RestoreSwapsOnlyOnSuccess) {
  TenantRegistry registry;
  EXPECT_EQ(registry.open(1, small_config("t"), nullptr), TenantStatus::kOk);
  const auto tenant = registry.find(1);
  ASSERT_NE(tenant, nullptr);

  // Train, then snapshot the learned state.
  std::vector<trace::BlockId> stream;
  for (int round = 0; round < 8; ++round) {
    for (trace::BlockId block = 0; block < 8; ++block) {
      stream.push_back(block);
    }
  }
  std::ostringstream blob;
  Metrics before;
  {
    util::MutexLock lock(tenant->mu());
    (void)tenant->access_many(stream);
    std::string detail;
    ASSERT_EQ(tenant->snapshot(blob, &detail), TenantStatus::kOk) << detail;
    before = tenant->metrics();
  }

  // A corrupt blob is rejected and the old engine keeps serving with its
  // counters intact.
  {
    util::MutexLock lock(tenant->mu());
    std::istringstream corrupt("definitely not a snapshot");
    std::string detail;
    EXPECT_EQ(tenant->restore(corrupt, &detail), TenantStatus::kBadSnapshot);
    const Metrics after = tenant->metrics();
    EXPECT_EQ(after.accesses, before.accesses);
    EXPECT_EQ(after.misses, before.misses);
  }

  // The good blob swaps in the restored engine; the snapshot carries
  // the accumulated metrics, so the counters pick up where they left off.
  {
    util::MutexLock lock(tenant->mu());
    std::istringstream good(blob.str());
    std::string detail;
    EXPECT_EQ(tenant->restore(good, &detail), TenantStatus::kOk) << detail;
    EXPECT_EQ(tenant->metrics().accesses, before.accesses);
  }
}

TEST(Tenant, PlainTenantHasNoQueuePressure) {
  TenantRegistry registry;
  EXPECT_EQ(registry.open(1, small_config("t"), nullptr), TenantStatus::kOk);
  const auto tenant = registry.find(1);
  ASSERT_NE(tenant, nullptr);
  EXPECT_FALSE(tenant->sharded());
  EXPECT_EQ(tenant->queue_pressure(), 0.0);
}

TEST(Tenant, ShardedTenantRefusesSnapshotAndCountsAllAccesses) {
  TenantRegistry registry;
  TenantConfig config = small_config("wide");
  config.shards = 2;
  EXPECT_EQ(registry.open(1, std::move(config), nullptr), TenantStatus::kOk);
  const auto tenant = registry.find(1);
  ASSERT_NE(tenant, nullptr);
  EXPECT_TRUE(tenant->sharded());

  const std::vector<trace::BlockId> blocks = {1, 2, 3, 4, 5, 6};
  {
    util::MutexLock lock(tenant->mu());
    (void)tenant->access_many(blocks);
    std::ostringstream out;
    std::string detail;
    EXPECT_EQ(tenant->snapshot(out, &detail), TenantStatus::kUnsupported);
    // metrics() flushes the rings first, so nothing is lost.
    EXPECT_EQ(tenant->metrics().accesses, blocks.size());
  }
  EXPECT_EQ(registry.close(1), TenantStatus::kOk);
}

TEST(TenantRegistry, TenantsSnapshotIsIdAscending) {
  TenantRegistry registry;
  EXPECT_EQ(registry.open(30, small_config("c"), nullptr), TenantStatus::kOk);
  EXPECT_EQ(registry.open(10, small_config("a"), nullptr), TenantStatus::kOk);
  EXPECT_EQ(registry.open(20, small_config("b"), nullptr), TenantStatus::kOk);

  const auto live = registry.tenants();
  ASSERT_EQ(live.size(), 3u);
  EXPECT_EQ(live[0].first, 10);
  EXPECT_EQ(live[1].first, 20);
  EXPECT_EQ(live[2].first, 30);
  EXPECT_EQ(live[0].second->name(), "a");
}

}  // namespace
}  // namespace pfp::engine
