// Protocol state-machine tests against the transport-independent
// Session — the exact code path the socket server and the fuzzer drive.
#include "server/session.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "engine/tenant_registry.hpp"
#include "server/wire.hpp"

namespace pfp::server {
namespace {

struct Reply {
  wire::FrameHeader header;
  std::vector<std::uint8_t> payload;
};

/// Decodes and consumes every complete reply frame queued in `session`.
std::vector<Reply> drain_replies(Session& session) {
  std::vector<Reply> replies;
  const std::span<const std::uint8_t> out(session.out());
  std::size_t pos = 0;
  while (pos < out.size()) {
    const wire::DecodeResult result = wire::decode(out.subspan(pos));
    EXPECT_EQ(result.status, wire::DecodeStatus::kFrame)
        << "reply bytes must themselves decode cleanly";
    if (result.status != wire::DecodeStatus::kFrame) {
      break;
    }
    replies.push_back(Reply{result.frame.header,
                            {result.frame.payload.begin(),
                             result.frame.payload.end()}});
    pos += result.consumed;
  }
  session.consumed(pos);
  return replies;
}

std::vector<std::uint8_t> make_frame(
    wire::MsgType type, std::uint16_t tenant, std::uint32_t serial,
    std::span<const std::uint8_t> payload = {}) {
  wire::FrameHeader header;
  header.type = type;
  header.tenant = tenant;
  header.serial = serial;
  std::vector<std::uint8_t> bytes;
  wire::append_frame(bytes, header, payload);
  return bytes;
}

std::vector<std::uint8_t> open_payload(const std::string& name,
                                       const std::string& policy,
                                       std::uint64_t cache_blocks,
                                       std::uint32_t shards = 0) {
  wire::TenantOpenRequest request;
  request.name = name;
  request.policy = policy;
  request.cache_blocks = cache_blocks;
  request.shards = shards;
  std::vector<std::uint8_t> payload;
  wire::encode_tenant_open(payload, request);
  return payload;
}

std::vector<std::uint8_t> access_many_payload(
    std::span<const std::uint64_t> blocks) {
  std::vector<std::uint8_t> payload;
  wire::put_u32(payload, static_cast<std::uint32_t>(blocks.size()));
  for (const std::uint64_t block : blocks) {
    wire::put_u64(payload, block);
  }
  return payload;
}

wire::ErrorReply expect_error(const Reply& reply) {
  EXPECT_EQ(reply.header.type, wire::MsgType::kError);
  const auto parsed = wire::parse_error(reply.payload);
  EXPECT_TRUE(parsed.has_value());
  return parsed.value_or(wire::ErrorReply{});
}

TEST(Session, PingEchoesSerialAndTenant) {
  engine::TenantRegistry registry;
  Session session(registry, SessionConfig{});
  EXPECT_TRUE(session.ingest(make_frame(wire::MsgType::kPing, 9, 4242)));

  const std::vector<Reply> replies = drain_replies(session);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].header.type, wire::MsgType::kPingReply);
  EXPECT_EQ(replies[0].header.tenant, 9);
  EXPECT_EQ(replies[0].header.serial, 4242u);
  EXPECT_TRUE(replies[0].payload.empty());
  EXPECT_FALSE(session.fatal());
}

TEST(Session, OpenAccessStatsCloseGoldenFlow) {
  engine::TenantRegistry registry;
  Session session(registry, SessionConfig{});

  // TENANT_OPEN.
  EXPECT_TRUE(session.ingest(make_frame(
      wire::MsgType::kTenantOpen, 7, 1,
      open_payload("alpha", "tree-next-limit", 64))));
  std::vector<Reply> replies = drain_replies(session);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].header.type, wire::MsgType::kTenantOpenReply);
  EXPECT_EQ(registry.size(), 1u);

  // ACCESS_MANY: every block is accounted for exactly once.
  const std::uint64_t blocks[] = {1, 2, 3, 1, 2, 3, 1, 2};
  EXPECT_TRUE(session.ingest(make_frame(wire::MsgType::kAccessMany, 7, 2,
                                        access_many_payload(blocks))));
  replies = drain_replies(session);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].header.type, wire::MsgType::kAccessManyReply);
  EXPECT_EQ(replies[0].header.flags, 0);  // plain tenant: sync, no flags
  const auto batch = wire::parse_batch_reply(replies[0].payload);
  ASSERT_TRUE(batch.has_value());
  EXPECT_EQ(batch->demand_hits + batch->prefetch_hits + batch->misses, 8u);

  // STATS agrees with the batch totals.
  EXPECT_TRUE(session.ingest(make_frame(wire::MsgType::kStats, 7, 3)));
  replies = drain_replies(session);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].header.type, wire::MsgType::kStatsReply);
  const auto metrics = wire::parse_metrics(replies[0].payload);
  ASSERT_TRUE(metrics.has_value());
  EXPECT_EQ(metrics->accesses, 8u);
  EXPECT_EQ(metrics->demand_hits, batch->demand_hits);
  EXPECT_EQ(metrics->prefetch_hits, batch->prefetch_hits);
  EXPECT_EQ(metrics->misses, batch->misses);

  // TENANT_CLOSE, after which the id is gone.
  EXPECT_TRUE(session.ingest(make_frame(wire::MsgType::kTenantClose, 7, 4)));
  replies = drain_replies(session);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].header.type, wire::MsgType::kTenantCloseReply);
  EXPECT_EQ(registry.size(), 0u);

  EXPECT_TRUE(session.ingest(make_frame(wire::MsgType::kStats, 7, 5)));
  replies = drain_replies(session);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(expect_error(replies[0]).code, wire::ErrorCode::kNoSuchTenant);
}

TEST(Session, ReassemblesFramesAcrossByteAtATimeIngests) {
  engine::TenantRegistry registry;
  Session session(registry, SessionConfig{});
  const std::vector<std::uint8_t> bytes =
      make_frame(wire::MsgType::kPing, 0, 77);
  for (const std::uint8_t byte : bytes) {
    EXPECT_TRUE(session.ingest(std::span<const std::uint8_t>(&byte, 1)));
  }
  const std::vector<Reply> replies = drain_replies(session);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].header.serial, 77u);
}

TEST(Session, DuplicateOpenIsRejectedAndOriginalSurvives) {
  engine::TenantRegistry registry;
  Session session(registry, SessionConfig{});
  EXPECT_TRUE(session.ingest(make_frame(wire::MsgType::kTenantOpen, 3, 1,
                                        open_payload("first", "tree", 64))));
  EXPECT_TRUE(session.ingest(make_frame(
      wire::MsgType::kTenantOpen, 3, 2,
      open_payload("usurper", "markov", 4096))));

  const std::vector<Reply> replies = drain_replies(session);
  ASSERT_EQ(replies.size(), 2u);
  EXPECT_EQ(replies[0].header.type, wire::MsgType::kTenantOpenReply);
  EXPECT_EQ(expect_error(replies[1]).code, wire::ErrorCode::kTenantExists);

  const auto tenant = registry.find(3);
  ASSERT_NE(tenant, nullptr);
  EXPECT_EQ(tenant->name(), "first");
  EXPECT_EQ(tenant->config().engine.cache_blocks, 64u);
}

TEST(Session, BadPolicyNameIsBadConfig) {
  engine::TenantRegistry registry;
  Session session(registry, SessionConfig{});
  EXPECT_TRUE(session.ingest(
      make_frame(wire::MsgType::kTenantOpen, 1, 1,
                 open_payload("t", "definitely-not-a-policy", 64))));
  const std::vector<Reply> replies = drain_replies(session);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(expect_error(replies[0]).code, wire::ErrorCode::kBadConfig);
  EXPECT_EQ(registry.size(), 0u);
}

TEST(Session, UnknownTypeIsRecoverable) {
  engine::TenantRegistry registry;
  Session session(registry, SessionConfig{});
  EXPECT_TRUE(session.ingest(
      make_frame(static_cast<wire::MsgType>(0x40), 0, 1)));
  EXPECT_FALSE(session.fatal());
  // The session keeps serving afterwards.
  EXPECT_TRUE(session.ingest(make_frame(wire::MsgType::kPing, 0, 2)));

  const std::vector<Reply> replies = drain_replies(session);
  ASSERT_EQ(replies.size(), 2u);
  EXPECT_EQ(expect_error(replies[0]).code, wire::ErrorCode::kUnknownType);
  EXPECT_EQ(replies[1].header.type, wire::MsgType::kPingReply);
}

TEST(Session, BadMagicLatchesFatalForever) {
  engine::TenantRegistry registry;
  Session session(registry, SessionConfig{});
  const std::uint8_t garbage[] = {'X', 'Y', 'Z', 'W'};
  EXPECT_FALSE(session.ingest(garbage));
  EXPECT_TRUE(session.fatal());

  const std::vector<Reply> replies = drain_replies(session);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(expect_error(replies[0]).code, wire::ErrorCode::kBadMagic);

  // A valid frame after the fatal latch is never processed.
  EXPECT_FALSE(session.ingest(make_frame(wire::MsgType::kPing, 0, 1)));
  EXPECT_TRUE(drain_replies(session).empty());
  EXPECT_EQ(session.frames_handled(), 0u);
}

TEST(Session, OverLimitBatchGetsDeterministicBackpressure) {
  engine::TenantRegistry registry;
  SessionConfig config;
  config.max_batch = 4;
  Session session(registry, config);
  EXPECT_TRUE(session.ingest(make_frame(wire::MsgType::kTenantOpen, 1, 1,
                                        open_payload("t", "tree", 64))));
  const std::uint64_t blocks[] = {1, 2, 3, 4, 5};
  EXPECT_TRUE(session.ingest(make_frame(wire::MsgType::kAccessMany, 1, 2,
                                        access_many_payload(blocks))));

  const std::vector<Reply> replies = drain_replies(session);
  ASSERT_EQ(replies.size(), 2u);
  EXPECT_EQ(expect_error(replies[1]).code, wire::ErrorCode::kBackpressure);
  EXPECT_FALSE(session.fatal());  // recoverable: split and retry
}

TEST(Session, AccessManyCountMismatchIsBadPayload) {
  engine::TenantRegistry registry;
  Session session(registry, SessionConfig{});
  EXPECT_TRUE(session.ingest(make_frame(wire::MsgType::kTenantOpen, 1, 1,
                                        open_payload("t", "tree", 64))));
  std::vector<std::uint8_t> payload;
  wire::put_u32(payload, 3);  // claims 3 blocks, sends 2
  wire::put_u64(payload, 10);
  wire::put_u64(payload, 11);
  EXPECT_TRUE(session.ingest(
      make_frame(wire::MsgType::kAccessMany, 1, 2, payload)));

  const std::vector<Reply> replies = drain_replies(session);
  ASSERT_EQ(replies.size(), 2u);
  EXPECT_EQ(expect_error(replies[1]).code, wire::ErrorCode::kBadPayload);
}

TEST(Session, AdvisoryBackpressureFlagFollowsThreshold) {
  engine::TenantRegistry registry;
  SessionConfig config;
  config.pressure_threshold = 0.0;  // queue_pressure() >= 0 always trips
  Session session(registry, config);
  EXPECT_TRUE(session.ingest(make_frame(wire::MsgType::kTenantOpen, 1, 1,
                                        open_payload("t", "tree", 64))));
  const std::uint64_t blocks[] = {1, 2};
  EXPECT_TRUE(session.ingest(make_frame(wire::MsgType::kAccessMany, 1, 2,
                                        access_many_payload(blocks))));

  const std::vector<Reply> replies = drain_replies(session);
  ASSERT_EQ(replies.size(), 2u);
  EXPECT_EQ(replies[1].header.type, wire::MsgType::kAccessManyReply);
  EXPECT_NE(replies[1].header.flags & wire::kFlagBackpressure, 0);
}

TEST(Session, SnapshotMovesLearnedStateBetweenTenants) {
  engine::TenantRegistry registry;
  Session session(registry, SessionConfig{});
  EXPECT_TRUE(session.ingest(make_frame(wire::MsgType::kTenantOpen, 1, 1,
                                        open_payload("warm", "tree", 64))));
  std::vector<std::uint64_t> stream;
  for (int round = 0; round < 16; ++round) {
    for (std::uint64_t block = 0; block < 8; ++block) {
      stream.push_back(block);
    }
  }
  EXPECT_TRUE(session.ingest(make_frame(wire::MsgType::kAccessMany, 1, 2,
                                        access_many_payload(stream))));
  EXPECT_TRUE(session.ingest(make_frame(wire::MsgType::kSnapshot, 1, 3)));

  std::vector<Reply> replies = drain_replies(session);
  ASSERT_EQ(replies.size(), 3u);
  ASSERT_EQ(replies[2].header.type, wire::MsgType::kSnapshotReply);
  const std::vector<std::uint8_t> blob = replies[2].payload;
  EXPECT_FALSE(blob.empty());

  // Restore into a fresh tenant, then snapshot again: the learned state
  // round-trips bit-exactly.
  EXPECT_TRUE(session.ingest(make_frame(wire::MsgType::kTenantOpen, 2, 4,
                                        open_payload("cold", "tree", 64))));
  EXPECT_TRUE(
      session.ingest(make_frame(wire::MsgType::kRestore, 2, 5, blob)));
  EXPECT_TRUE(session.ingest(make_frame(wire::MsgType::kSnapshot, 2, 6)));
  replies = drain_replies(session);
  ASSERT_EQ(replies.size(), 3u);
  EXPECT_EQ(replies[1].header.type, wire::MsgType::kRestoreReply);
  ASSERT_EQ(replies[2].header.type, wire::MsgType::kSnapshotReply);
  EXPECT_EQ(replies[2].payload, blob);

  // And the restored tenant serves warm where a never-trained control
  // cannot: the snapshot carries cache residency, so the same probe
  // hits on the restored tenant and misses everywhere on the control.
  EXPECT_TRUE(session.ingest(make_frame(wire::MsgType::kTenantOpen, 3, 7,
                                        open_payload("fresh", "tree", 64))));
  const std::uint64_t probe[] = {0, 1, 2, 3, 4, 5, 6, 7};
  EXPECT_TRUE(session.ingest(make_frame(wire::MsgType::kAccessMany, 2, 8,
                                        access_many_payload(probe))));
  EXPECT_TRUE(session.ingest(make_frame(wire::MsgType::kAccessMany, 3, 9,
                                        access_many_payload(probe))));
  replies = drain_replies(session);
  ASSERT_EQ(replies.size(), 3u);
  const auto restored = wire::parse_batch_reply(replies[1].payload);
  const auto control = wire::parse_batch_reply(replies[2].payload);
  ASSERT_TRUE(restored.has_value());
  ASSERT_TRUE(control.has_value());
  EXPECT_GT(restored->demand_hits + restored->prefetch_hits, 0u);
  EXPECT_EQ(control->demand_hits + control->prefetch_hits, 0u);
}

TEST(Session, CorruptRestoreLeavesTenantStateUntouched) {
  engine::TenantRegistry registry;
  Session session(registry, SessionConfig{});
  EXPECT_TRUE(session.ingest(make_frame(wire::MsgType::kTenantOpen, 1, 1,
                                        open_payload("t", "tree", 64))));
  const std::uint64_t blocks[] = {4, 5, 6, 4, 5, 6};
  EXPECT_TRUE(session.ingest(make_frame(wire::MsgType::kAccessMany, 1, 2,
                                        access_many_payload(blocks))));
  EXPECT_TRUE(session.ingest(make_frame(wire::MsgType::kStats, 1, 3)));
  std::vector<Reply> replies = drain_replies(session);
  ASSERT_EQ(replies.size(), 3u);
  const auto before = wire::parse_metrics(replies[2].payload);
  ASSERT_TRUE(before.has_value());

  const std::string garbage = "this is not a PFEG snapshot";
  EXPECT_TRUE(session.ingest(make_frame(
      wire::MsgType::kRestore, 1, 4,
      std::span<const std::uint8_t>(
          reinterpret_cast<const std::uint8_t*>(garbage.data()),
          garbage.size()))));
  EXPECT_TRUE(session.ingest(make_frame(wire::MsgType::kStats, 1, 5)));

  replies = drain_replies(session);
  ASSERT_EQ(replies.size(), 2u);
  EXPECT_EQ(expect_error(replies[0]).code, wire::ErrorCode::kBadSnapshot);
  const auto after = wire::parse_metrics(replies[1].payload);
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ(*after, *before);  // bit-exact: the old engine kept serving
}

TEST(Session, ShardedTenantRepliesAsyncAndRefusesSnapshot) {
  engine::TenantRegistry registry;
  Session session(registry, SessionConfig{});
  EXPECT_TRUE(session.ingest(
      make_frame(wire::MsgType::kTenantOpen, 1, 1,
                 open_payload("wide", "tree", 256, /*shards=*/2))));
  const std::uint64_t blocks[] = {1, 2, 3, 4, 5, 6, 7, 8};
  EXPECT_TRUE(session.ingest(make_frame(wire::MsgType::kAccessMany, 1, 2,
                                        access_many_payload(blocks))));
  EXPECT_TRUE(session.ingest(make_frame(wire::MsgType::kSnapshot, 1, 3)));
  EXPECT_TRUE(session.ingest(make_frame(wire::MsgType::kStats, 1, 4)));
  EXPECT_TRUE(session.ingest(make_frame(wire::MsgType::kTenantClose, 1, 5)));

  const std::vector<Reply> replies = drain_replies(session);
  ASSERT_EQ(replies.size(), 5u);
  // Batch accepted but counts deferred to the shard workers.
  EXPECT_EQ(replies[1].header.type, wire::MsgType::kAccessManyReply);
  EXPECT_NE(replies[1].header.flags & wire::kFlagAsync, 0);
  const auto batch = wire::parse_batch_reply(replies[1].payload);
  ASSERT_TRUE(batch.has_value());
  EXPECT_EQ(batch->demand_hits + batch->prefetch_hits + batch->misses, 0u);
  // Per-shard predictor state does not concatenate.
  EXPECT_EQ(expect_error(replies[2]).code, wire::ErrorCode::kUnsupported);
  // STATS flushes the rings, so it IS the source of truth.
  const auto metrics = wire::parse_metrics(replies[3].payload);
  ASSERT_TRUE(metrics.has_value());
  EXPECT_EQ(metrics->accesses, 8u);
  EXPECT_EQ(replies[4].header.type, wire::MsgType::kTenantCloseReply);
}

}  // namespace
}  // namespace pfp::server
