// protocol_fuzz: deterministic PFP1 corpus fuzzing (see
// src/server/fuzz.hpp).  Exit 0 when the protocol's total-error
// contract held for every case; 1 with the violation count otherwise.
//
//   protocol_fuzz --seed 1 --cases 2000        # CI smoke (ASan build)
//   protocol_fuzz --seed 1 --cases 20000       # nightly 10x soak

#include <iostream>

#include "server/fuzz.hpp"
#include "util/options.hpp"

int main(int argc, char** argv) {
  pfp::util::Options options;
  options.add("seed", "24414088133", "corpus seed");
  options.add("cases", "2000", "generated cases");
  options.add("max-case-bytes", "4096", "max bytes per generated case");
  if (!options.parse(argc, argv)) {
    return 2;
  }
  pfp::server::FuzzOptions fuzz;
  fuzz.seed = options.u64("seed");
  fuzz.cases = options.u64("cases");
  fuzz.max_case_bytes = options.u64("max-case-bytes");

  const pfp::server::FuzzReport report = pfp::server::run_protocol_fuzz(fuzz);
  std::cout << "protocol_fuzz: cases=" << report.cases
            << " bytes=" << report.bytes
            << " frames=" << report.frames_handled
            << " errors=" << report.errors_sent
            << " fatal_sessions=" << report.fatal_sessions
            << " contract_violations=" << report.contract_violations
            << std::endl;
  if (report.contract_violations != 0) {
    std::cerr << "protocol_fuzz: CONTRACT VIOLATIONS — replay with --seed "
              << fuzz.seed << " --cases " << fuzz.cases << std::endl;
    return 1;
  }
  return 0;
}
