// pfp_server: the prefetch-as-a-service daemon.
//
//   pfp_server --port 7411 --loops 4
//   pfp_server --port 0 --port-file /tmp/pfp.port   # tests: bind any
//
// Tenants are created by clients over the wire (TENANT_OPEN); the
// process itself has no workload configuration.  A Prometheus scraper
// can GET /metrics on the same port.  SIGINT/SIGTERM stop the server
// cleanly (loops drain, tenants flush).

#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <fstream>
#include <iostream>

#include "server/server.hpp"
#include "util/options.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void on_signal(int /*signum*/) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  pfp::util::Options options;
  options.add("port", "7411", "loopback TCP port (0 = kernel-assigned)");
  options.add("loops", "1", "event-loop threads");
  options.add("max-batch", "65536",
              "hard per-frame ACCESS_MANY block bound");
  options.add("pressure-threshold", "0.75",
              "queue-occupancy fraction that sets the backpressure flag");
  options.add("port-file", "",
              "write the bound port here (for scripted harnesses)");
  if (!options.parse(argc, argv)) {
    return 2;
  }

  pfp::server::ServerConfig config;
  config.port = static_cast<std::uint16_t>(options.u64("port"));
  config.loops = static_cast<std::size_t>(options.u64("loops"));
  config.session.max_batch =
      static_cast<std::size_t>(options.u64("max-batch"));
  config.session.pressure_threshold = options.real("pressure-threshold");

  try {
    pfp::server::PrefetchServer server(std::move(config));
    const std::string port_file = options.str("port-file");
    if (!port_file.empty()) {
      std::ofstream out(port_file);
      out << server.port() << "\n";
    }
    std::cout << "pfp_server listening on 127.0.0.1:" << server.port()
              << " (" << options.u64("loops") << " loop(s))" << std::endl;

    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);
    while (g_stop == 0) {
      pause();  // interrupted by the signals above
    }
    std::cout << "pfp_server: stopping" << std::endl;
    server.stop();
  } catch (const std::exception& err) {
    std::cerr << "pfp_server: " << err.what() << std::endl;
    return 1;
  }
  return 0;
}
