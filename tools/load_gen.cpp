// load_gen: drives N concurrent Zipf tenant streams at a pfp_server and
// reports client-observed batch latency (p50/p99) and throughput.
//
//   load_gen --port 7411 --tenants 4 --policies tree-next-limit,markov
//            --ops 20000 --batch 256 --json BENCH_08.json
//
// Each tenant is one worker thread with its own connection, policy
// (cycled from --policies), Zipf block stream (deterministic from
// --seed) and latency record.  With --verify-replay the exact same
// stream is replayed through an in-process engine::Tenant afterwards
// and the server's STATS reply must match the local metrics bit for bit
// — the server-integration CI leg fails on any drift.

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <future>
#include <iostream>
#include <span>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "engine/tenant_registry.hpp"
#include "server/session.hpp"
#include "server/wire.hpp"
#include "util/net.hpp"
#include "util/options.hpp"
#include "util/prng.hpp"
#include "util/thread_annotations.hpp"
#include "util/thread_pool.hpp"
#include "util/zipf.hpp"

namespace {

namespace wire = pfp::server::wire;
namespace net = pfp::util::net;

std::vector<std::string> split_csv(const std::string& text) {
  std::vector<std::string> out;
  std::string item;
  std::istringstream in(text);
  while (std::getline(in, item, ',')) {
    if (!item.empty()) {
      out.push_back(item);
    }
  }
  return out;
}

struct Reply {
  wire::FrameHeader header;
  std::vector<std::uint8_t> payload;
};

/// Blocking request/reply client over one connection.
class Client {
 public:
  explicit Client(std::uint16_t port) : sock_(net::connect_tcp(port)) {}

  /// Sends one frame and blocks for its reply; throws std::runtime_error
  /// on transport failure or a reply that fails to frame.
  Reply call(wire::MsgType type, std::uint16_t tenant,
             std::span<const std::uint8_t> payload) {
    frame_.clear();
    wire::FrameHeader header;
    header.type = type;
    header.tenant = tenant;
    header.serial = serial_++;
    wire::append_frame(frame_, header, payload);
    if (!net::write_all(sock_, frame_)) {
      throw std::runtime_error("load_gen: send failed");
    }

    std::array<std::uint8_t, wire::kHeaderSize> head;
    if (!net::read_exact(sock_, head)) {
      throw std::runtime_error("load_gen: connection closed mid-reply");
    }
    const std::uint32_t len =
        static_cast<std::uint32_t>(head[8]) |
        (static_cast<std::uint32_t>(head[9]) << 8) |
        (static_cast<std::uint32_t>(head[10]) << 16) |
        (static_cast<std::uint32_t>(head[11]) << 24);
    std::vector<std::uint8_t> whole(head.begin(), head.end());
    whole.resize(wire::kHeaderSize + len);
    if (len > 0 &&
        !net::read_exact(sock_, std::span<std::uint8_t>(whole).subspan(
                                    wire::kHeaderSize))) {
      throw std::runtime_error("load_gen: connection closed mid-payload");
    }
    const wire::DecodeResult decoded = wire::decode(whole);
    if (decoded.status != wire::DecodeStatus::kFrame) {
      throw std::runtime_error("load_gen: server reply failed to frame");
    }
    Reply reply;
    reply.header = decoded.frame.header;
    reply.payload.assign(decoded.frame.payload.begin(),
                         decoded.frame.payload.end());
    return reply;
  }

 private:
  net::Socket sock_;
  std::uint32_t serial_ = 1;
  std::vector<std::uint8_t> frame_;
};

[[noreturn]] void die_on_error(const Reply& reply, const std::string& what) {
  std::string detail = "(unparseable error payload)";
  if (const auto parsed = wire::parse_error(reply.payload)) {
    detail = std::string(wire::error_name(parsed->code)) + ": " +
             parsed->detail;
  }
  throw std::runtime_error("load_gen: " + what + " failed: " + detail);
}

struct TenantRun {
  std::uint16_t id = 0;
  std::string policy;
  std::uint64_t ops = 0;
  std::uint64_t batches = 0;
  std::uint64_t backpressure_replies = 0;
  std::uint64_t served_demand_hits = 0;
  std::uint64_t served_prefetch_hits = 0;
  std::uint64_t served_misses = 0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  wire::WireMetrics served;   ///< STATS reply at end of stream
  bool verified = false;      ///< replay comparison ran
  bool verify_ok = false;     ///< ... and matched bit for bit
};

double percentile(std::vector<double> sorted_ms, double q) {
  if (sorted_ms.empty()) {
    return 0.0;
  }
  std::sort(sorted_ms.begin(), sorted_ms.end());
  const double rank = q * static_cast<double>(sorted_ms.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted_ms.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted_ms[lo] + (sorted_ms[hi] - sorted_ms[lo]) * frac;
}

struct StreamConfig {
  std::uint64_t ops = 20000;
  std::uint64_t batch = 256;
  std::uint64_t blocks = 65536;
  double skew = 0.9;
  std::uint64_t seed = 42;
  std::uint64_t cache_blocks = 1024;
  std::uint32_t shards = 0;
};

/// The deterministic block stream for one tenant; the driver and the
/// verify-replay both call this so they can never diverge.
std::vector<pfp::trace::BlockId> tenant_stream(const StreamConfig& config,
                                               std::uint16_t tenant_id) {
  pfp::util::SplitMix64 mix(config.seed + tenant_id);
  pfp::util::Xoshiro256 rng(mix.next());
  const pfp::util::ZipfSampler zipf(config.blocks, config.skew);
  std::vector<pfp::trace::BlockId> stream;
  stream.reserve(config.ops);
  for (std::uint64_t i = 0; i < config.ops; ++i) {
    stream.push_back(zipf(rng));
  }
  return stream;
}

TenantRun drive_tenant(std::uint16_t port, std::uint16_t tenant_id,
                       const std::string& policy,
                       const StreamConfig& config, bool verify,
                       bool keep_open) {
  TenantRun run;
  run.id = tenant_id;
  run.policy = policy;

  Client client(port);
  std::vector<std::uint8_t> payload;
  wire::TenantOpenRequest open;
  open.name = "t";
  open.name += std::to_string(tenant_id);
  open.policy = policy;
  open.cache_blocks = config.cache_blocks;
  open.shards = config.shards;
  wire::encode_tenant_open(payload, open);
  Reply reply = client.call(wire::MsgType::kTenantOpen, tenant_id, payload);
  if (reply.header.type != wire::MsgType::kTenantOpenReply) {
    die_on_error(reply, "TENANT_OPEN");
  }

  const std::vector<pfp::trace::BlockId> stream =
      tenant_stream(config, tenant_id);
  std::vector<double> batch_ms;
  batch_ms.reserve(config.ops / std::max<std::uint64_t>(1, config.batch) +
                   1);
  for (std::size_t at = 0; at < stream.size();
       at += static_cast<std::size_t>(config.batch)) {
    const std::size_t n = std::min(static_cast<std::size_t>(config.batch),
                                   stream.size() - at);
    payload.clear();
    wire::put_u32(payload, static_cast<std::uint32_t>(n));
    for (std::size_t i = 0; i < n; ++i) {
      wire::put_u64(payload, stream[at + i]);
    }
    const auto t0 = std::chrono::steady_clock::now();
    reply = client.call(wire::MsgType::kAccessMany, tenant_id, payload);
    const auto t1 = std::chrono::steady_clock::now();
    if (reply.header.type != wire::MsgType::kAccessManyReply) {
      die_on_error(reply, "ACCESS_MANY");
    }
    batch_ms.push_back(
        std::chrono::duration<double, std::milli>(t1 - t0).count());
    if ((reply.header.flags & wire::kFlagBackpressure) != 0) {
      ++run.backpressure_replies;
    }
    if (const auto batch = wire::parse_batch_reply(reply.payload)) {
      run.served_demand_hits += batch->demand_hits;
      run.served_prefetch_hits += batch->prefetch_hits;
      run.served_misses += batch->misses;
    }
    run.ops += n;
    ++run.batches;
  }
  run.p50_ms = percentile(batch_ms, 0.50);
  run.p99_ms = percentile(batch_ms, 0.99);

  reply = client.call(wire::MsgType::kStats, tenant_id, {});
  if (reply.header.type != wire::MsgType::kStatsReply) {
    die_on_error(reply, "STATS");
  }
  const auto served = wire::parse_metrics(reply.payload);
  if (!served.has_value()) {
    throw std::runtime_error("load_gen: STATS reply failed to parse");
  }
  run.served = *served;

  if (!keep_open) {
    reply = client.call(wire::MsgType::kTenantClose, tenant_id, {});
    if (reply.header.type != wire::MsgType::kTenantCloseReply) {
      die_on_error(reply, "TENANT_CLOSE");
    }
  }

  if (verify) {
    // Replay the identical stream through an in-process tenant built
    // from the same config, then compare the server's projection.
    pfp::engine::TenantConfig local_config;
    local_config.name = open.name;
    local_config.engine.cache_blocks =
        static_cast<std::size_t>(config.cache_blocks);
    local_config.shards = config.shards;
    std::string detail;
    if (pfp::engine::set_policy_by_name(local_config, policy, &detail) !=
        pfp::engine::TenantStatus::kOk) {
      throw std::runtime_error("load_gen: replay config: " + detail);
    }
    pfp::engine::Tenant local(std::move(local_config));
    pfp::engine::Metrics local_metrics;
    {
      pfp::util::MutexLock lock(local.mu());
      for (std::size_t at = 0; at < stream.size();
           at += static_cast<std::size_t>(config.batch)) {
        const std::size_t n = std::min(
            static_cast<std::size_t>(config.batch), stream.size() - at);
        (void)local.access_many(
            std::span<const pfp::trace::BlockId>(stream).subspan(at, n));
      }
      local_metrics = local.metrics();
    }
    run.verified = true;
    run.verify_ok =
        pfp::server::to_wire_metrics(local_metrics) == run.served;
  }
  return run;
}

void write_json(std::ostream& out, const StreamConfig& config,
                const std::vector<TenantRun>& runs, double seconds) {
  std::uint64_t total_ops = 0;
  std::vector<double> p99s;
  for (const TenantRun& run : runs) {
    total_ops += run.ops;
    p99s.push_back(run.p99_ms);
  }
  const double worst_p99 =
      p99s.empty() ? 0.0 : *std::max_element(p99s.begin(), p99s.end());
  out.precision(9);
  out << "{\n"
      << "  \"bench\": \"server_load\",\n"
      << "  \"config\": {\"tenants\": " << runs.size()
      << ", \"ops_per_tenant\": " << config.ops
      << ", \"batch\": " << config.batch
      << ", \"blocks\": " << config.blocks << ", \"skew\": " << config.skew
      << ", \"seed\": " << config.seed
      << ", \"cache_blocks\": " << config.cache_blocks
      << ", \"shards\": " << config.shards << "},\n"
      << "  \"tenants\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const TenantRun& run = runs[i];
    out << "    {\"id\": " << run.id << ", \"policy\": \"" << run.policy
        << "\", \"ops\": " << run.ops << ", \"batches\": " << run.batches
        << ", \"p50_ms\": " << run.p50_ms << ", \"p99_ms\": " << run.p99_ms
        << ", \"backpressure_replies\": " << run.backpressure_replies
        << ", \"served_accesses\": " << run.served.accesses
        << ", \"verify\": \""
        << (run.verified ? (run.verify_ok ? "ok" : "MISMATCH") : "skipped")
        << "\"}" << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  out << "  ],\n"
      << "  \"total\": {\"ops\": " << total_ops
      << ", \"seconds\": " << seconds << ", \"ops_per_sec\": "
      << (seconds > 0.0 ? static_cast<double>(total_ops) / seconds : 0.0)
      << ", \"worst_p99_ms\": " << worst_p99 << "}\n"
      << "}\n";
}

}  // namespace

int main(int argc, char** argv) {
  pfp::util::Options options;
  options.add("port", "0", "pfp_server port (required)");
  options.add("tenants", "4", "concurrent tenant streams");
  options.add("policies", "tree-next-limit,markov",
              "comma-separated policy kinds, cycled across tenants");
  options.add("ops", "20000", "accesses per tenant");
  options.add("batch", "256", "blocks per ACCESS_MANY frame");
  options.add("blocks", "65536", "block-id space per tenant");
  options.add("skew", "0.9", "Zipf skew of each stream");
  options.add("seed", "42", "stream seed (tenant id is mixed in)");
  options.add("cache-blocks", "1024", "per-tenant cache capacity");
  options.add("shards", "0", "per-tenant shard count (0 = plain engine)");
  options.add("json", "", "write the result record here (BENCH_08 format)");
  options.add_flag("verify-replay",
                   "replay each stream in-process and require bit-equal "
                   "metrics");
  options.add_flag("keep-open",
                   "skip TENANT_CLOSE so a follow-up /metrics scrape still "
                   "sees the tenants");
  if (!options.parse(argc, argv)) {
    return 2;
  }
  const std::uint16_t port = static_cast<std::uint16_t>(options.u64("port"));
  if (port == 0) {
    std::cerr << "load_gen: --port is required" << std::endl;
    return 2;
  }
  const std::uint64_t tenants = std::max<std::uint64_t>(
      std::uint64_t{1}, options.u64("tenants"));
  const std::vector<std::string> policies =
      split_csv(options.str("policies"));
  if (policies.empty()) {
    std::cerr << "load_gen: --policies must name at least one kind"
              << std::endl;
    return 2;
  }
  StreamConfig config;
  config.ops = options.u64("ops");
  config.batch = std::max<std::uint64_t>(std::uint64_t{1},
                                         options.u64("batch"));
  config.blocks = std::max<std::uint64_t>(std::uint64_t{1},
                                          options.u64("blocks"));
  config.skew = options.real("skew");
  config.seed = options.u64("seed");
  config.cache_blocks = options.u64("cache-blocks");
  config.shards = static_cast<std::uint32_t>(options.u64("shards"));
  const bool verify = options.flag("verify-replay");
  const bool keep_open = options.flag("keep-open");

  try {
    pfp::util::ThreadPool pool(static_cast<std::size_t>(tenants));
    std::vector<std::future<TenantRun>> futures;
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t t = 0; t < tenants; ++t) {
      const std::uint16_t id = static_cast<std::uint16_t>(t + 1);
      const std::string policy = policies[t % policies.size()];
      futures.push_back(
          pool.submit([port, id, policy, config, verify, keep_open] {
            return drive_tenant(port, id, policy, config, verify, keep_open);
          }));
    }
    std::vector<TenantRun> runs;
    for (std::future<TenantRun>& future : futures) {
      runs.push_back(future.get());
    }
    const auto t1 = std::chrono::steady_clock::now();
    const double seconds =
        std::chrono::duration<double>(t1 - t0).count();

    bool failed = false;
    std::uint64_t total_ops = 0;
    for (const TenantRun& run : runs) {
      total_ops += run.ops;
      std::cout << "tenant " << run.id << " policy=" << run.policy
                << " ops=" << run.ops << " p50=" << run.p50_ms
                << "ms p99=" << run.p99_ms << "ms"
                << " backpressure=" << run.backpressure_replies;
      if (run.verified) {
        std::cout << " verify=" << (run.verify_ok ? "ok" : "MISMATCH");
        failed = failed || !run.verify_ok;
      }
      std::cout << "\n";
    }
    std::cout << "total ops=" << total_ops << " seconds=" << seconds
              << " ops/s="
              << (seconds > 0.0 ? static_cast<double>(total_ops) / seconds
                                : 0.0)
              << std::endl;

    const std::string json_path = options.str("json");
    if (!json_path.empty()) {
      std::ofstream out(json_path);
      write_json(out, config, runs, seconds);
    }
    return failed ? 1 : 0;
  } catch (const std::exception& err) {
    std::cerr << err.what() << std::endl;
    return 1;
  }
}
