#!/usr/bin/env python3
"""Atomics-discipline linter for the prefetching simulator.

Clang's -Wthread-safety leg (see docs/static-analysis.md, "Concurrency
analysis") proves lock and role discipline, but it says nothing about
*memory ordering* — a defaulted seq_cst, a fence with no pairing story,
or an atomic member whose writer set nobody wrote down all pass the
capability analysis.  This linter enforces the repo's ordering rules:

  explicit-order    every atomic load / store / RMW names its
                    std::memory_order explicitly.  The defaulted argument
                    is seq_cst, which is both the slowest ordering and —
                    worse — a silent one: a reader cannot tell a
                    deliberate seq_cst from an ordering nobody thought
                    about.  Single-writer cells and the SPSC ring need
                    relaxed/acquire/release only.
  seq-cst           memory_order_seq_cst is banned unless waived with
                    `lint: allow(seq-cst): <why>`; the rationale must say
                    what the total order buys that acq/rel does not.
  fence             standalone std::atomic_thread_fence /
                    atomic_signal_fence need `lint: allow(fence): <why>`
                    naming the acquire/release pairing (the two seqlock
                    fences in obs/counters.hpp are the template).
  role-comment      every `std::atomic<...>` variable declaration — and
                    every field guarded by a thread-role capability
                    (`PFP_GUARDED_BY(<...>role<...>)`, e.g. the SPSC
                    cached indices and the sharded engine's staging
                    buffers) — carries `// writers: ...  readers: ...`
                    comments within the six lines above it, so the
                    single-writer contracts the thread-safety roles
                    assert are also written down where the data lives.
                    Mutex-guarded fields are exempt: their contract IS
                    the mutex.
  atomics-allowlist atomics may only appear in the files listed in
                    ATOMIC_FILES below.  Concurrency stays corralled in
                    the audited leaf primitives; a new atomic anywhere
                    else is an architecture decision, not a drive-by —
                    extend the list in the same PR that reviews the
                    design.

Two analysis modes:

  --mode regex (the default under `auto` when libclang is missing) runs
      the line-based scanner below on src/.  It is the mode exercised by
      the repo's own self-tests and the blocking CI leg; it blanks
      comments and string literals first, and tracks multi-line call
      argument lists, so the usual false-positive sources are handled.
  --mode ast parses compile_commands.json through clang.cindex and walks
      real atomic member calls, so renamed objects, macros and exotic
      formatting cannot hide an operation.  Needs libclang (python3-clang
      in CI's nightly strict leg — the dev container does not ship it,
      which is why regex is the blocking path).  --strict turns "AST
      unavailable" from a fallback into exit 2.

Waivers reuse the conventions-linter grammar: `lint: allow(<rule>)` on
the offending line (or the line above, for fences and declarations);
seq-cst and fence additionally REQUIRE the `: <rationale>` suffix — a
waiver without a proof obligation is itself a violation.

Exit status: 0 clean, 1 violations found, 2 usage/configuration error.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import re
import sys
import tempfile
from typing import Iterable, List, NamedTuple, Optional, Sequence

SOURCE_SUFFIXES = {".hpp", ".cpp"}

# The audited concurrency surface: the only files that may declare an
# std::atomic or perform an atomic operation.  Keep sorted.
ATOMIC_FILES = {
    "src/core/tree/prefetch_tree.cpp",   # uid counter for tree instances
    "src/engine/sharded_engine.cpp",     # stop flag + processed counters
    "src/engine/sharded_engine.hpp",
    "src/obs/counters.hpp",              # single-writer cells + seqlock
    "src/obs/trace_ring.hpp",            # single-writer event ring
    "src/obs/trace_ring.cpp",
    "src/util/audit.cpp",                # audit-handler slot
    "src/util/logging.cpp",              # log-level filter
    "src/util/phase.hpp",                # phase accumulation cells
    "src/util/spsc_queue.hpp",           # head/tail indices
}

# Atomic member functions that take a memory_order argument (possibly
# defaulted).  notify_* take none and are therefore not listed.
ORDERED_OPS = (
    "load", "store", "exchange", "fetch_add", "fetch_sub", "fetch_and",
    "fetch_or", "fetch_xor", "compare_exchange_weak",
    "compare_exchange_strong", "wait", "test_and_set", "clear",
)

# `.clear(` and `.wait(` are common on non-atomic types (containers,
# condition variables); only treat them as atomic ops when the call
# names a memory_order or the receiver is a known atomic-ish expression.
AMBIGUOUS_OPS = {"clear", "wait", "store", "load", "exchange"}

ATOMIC_DECL_RE = re.compile(r"\bstd\s*::\s*atomic(?:_flag\b|\s*<)")
# A field guarded by a thread-role capability (not a mutex): the
# capability expression names a role, e.g. PFP_GUARDED_BY(producer_role)
# or PFP_GUARDED_BY(queue.consumer_role).  These are the cross-thread
# single-writer contracts (SPSC cached indices, staging buffers), so
# they carry the same writers:/readers: documentation duty as atomics.
ROLE_GUARDED_RE = re.compile(r"\bPFP_GUARDED_BY\s*\(\s*[\w.>\-]*role\w*\s*\)")
OP_CALL_RE = re.compile(
    r"[.\->]\s*(" + "|".join(ORDERED_OPS) + r")\s*\(")
FENCE_RE = re.compile(
    r"\b(?:std\s*::\s*)?atomic_(?:thread|signal)_fence\s*\(")
SEQ_CST_RE = re.compile(r"\bmemory_order(?:_seq_cst\b|\s*::\s*seq_cst\b)")
# Both spellings: memory_order_relaxed and memory_order::relaxed (and a
# plain `std::memory_order` variable being forwarded).
MEMORY_ORDER_RE = re.compile(r"\bmemory_order(?:_\w+|\s*::\s*\w+|\b)")
ROLE_COMMENT_WINDOW = 6  # lines above an atomic decl searched for roles

ALLOW_LINE_RE = re.compile(r"lint:\s*allow\(([a-z-]+)\)")
ALLOW_FILE_RE = re.compile(r"lint:\s*allow-file\(([a-z-]+)\)")
ALLOW_REASON_RE = re.compile(r"lint:\s*allow\(([a-z-]+)\):\s*(\S.*)")


class Violation(NamedTuple):
    path: str
    line: int  # 1-based; 0 for file-level findings
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


# --- shared comment/literal blanking (mirrors check_conventions.py) ------


def strip_code(line: str) -> str:
    """Drop string/char literals and // comments so regexes see code only."""
    out: List[str] = []
    i = 0
    n = len(line)
    while i < n:
        c = line[i]
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        if c in "\"'":
            quote = c
            i += 1
            while i < n:
                if line[i] == "\\":
                    i += 2
                    continue
                if line[i] == quote:
                    i += 1
                    break
                i += 1
            out.append(" ")
            continue
        out.append(c)
        i += 1
    return "".join(out)


def code_lines(text: str) -> List[str]:
    """Per-line code with comments and literals blanked."""
    lines: List[str] = []
    in_block = False
    for raw in text.splitlines():
        if in_block:
            end = raw.find("*/")
            if end == -1:
                lines.append("")
                continue
            raw = " " * (end + 2) + raw[end + 2:]
            in_block = False
        raw = strip_code(raw)
        while True:
            start = raw.find("/*")
            if start == -1:
                break
            end = raw.find("*/", start + 2)
            if end == -1:
                raw = raw[:start]
                in_block = True
                break
            raw = raw[:start] + " " * (end + 2 - start) + raw[end + 2:]
        lines.append(raw)
    return lines


def call_args(code: Sequence[str], line_idx: int, open_col: int) -> str:
    """The argument text of a call whose '(' sits at code[line_idx][open_col].

    Scans forward across lines until the parenthesis balances; gives up
    (returning what it has) after 20 lines, which no real call exceeds.
    """
    depth = 0
    out: List[str] = []
    for i in range(line_idx, min(line_idx + 20, len(code))):
        segment = code[i][open_col:] if i == line_idx else code[i]
        for ch in segment:
            if ch == "(":
                depth += 1
                if depth == 1:
                    continue
            elif ch == ")":
                depth -= 1
                if depth == 0:
                    return "".join(out)
            if depth >= 1:
                out.append(ch)
    return "".join(out)


def is_atomic_ref(line: str, after_open: int) -> bool:
    """True when `std::atomic<...>` at this position is a `&`/`*` use.

    References and pointers (function parameters, return types) don't own
    the cell, so the role-comment rule belongs at the owning declaration,
    not here.  `after_open` is the index just past the `<` (or past
    `atomic_flag`).
    """
    if line[after_open - 1] != "<":
        i = after_open  # atomic_flag: no template args to skip
    else:
        depth = 1
        i = after_open
        while i < len(line) and depth > 0:
            if line[i] == "<":
                depth += 1
            elif line[i] == ">":
                depth -= 1
            i += 1
        if depth != 0:
            return False  # template args continue on the next line
    while i < len(line) and line[i] == " ":
        i += 1
    return i < len(line) and line[i] in "&*"


# --- regex mode ----------------------------------------------------------


def waiver_reason(raw_lines: Sequence[str], lineno: int, rule: str
                  ) -> Optional[str]:
    """The rationale of a `lint: allow(rule): why` on the line or above."""
    for idx in (lineno - 1, lineno - 2, lineno - 3):
        if 0 <= idx < len(raw_lines):
            for match in ALLOW_REASON_RE.finditer(raw_lines[idx]):
                if match.group(1) == rule:
                    return match.group(2).strip()
    return None


def has_bare_waiver(raw_lines: Sequence[str], lineno: int, rule: str) -> bool:
    for idx in (lineno - 1, lineno - 2, lineno - 3):
        if 0 <= idx < len(raw_lines):
            if rule in ALLOW_LINE_RE.findall(raw_lines[idx]):
                return True
    return False


def check_file(root: pathlib.Path, path: pathlib.Path) -> List[Violation]:
    rel = path.relative_to(root).as_posix()
    try:
        text = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as err:
        return [Violation(rel, 0, "io", f"unreadable: {err}")]

    raw_lines = text.splitlines()
    code = code_lines(text)
    file_waivers = set(ALLOW_FILE_RE.findall(text))
    allowlisted = rel in ATOMIC_FILES

    violations: List[Violation] = []

    def report(lineno: int, rule: str, message: str) -> None:
        if rule in file_waivers:
            return
        # seq-cst and fence demand the `: <rationale>` suffix (checked by
        # the caller before reporting); a bare waiver is not a proof
        # obligation, so it does not silence them.
        if rule not in ("seq-cst", "fence") \
                and has_bare_waiver(raw_lines, lineno, rule):
            return
        violations.append(Violation(rel, lineno, rule, message))

    uses_atomics = False

    for i, line in enumerate(code, start=1):
        if not line.strip():
            continue

        decl_match = ATOMIC_DECL_RE.search(line)
        if decl_match and not is_atomic_ref(line, decl_match.end()):
            uses_atomics = True
            # Declaration (not a using/typedef/template parameter): demand
            # the writers/readers role comment in the window above.
            window = raw_lines[max(0, i - 1 - ROLE_COMMENT_WINDOW):i]
            blob = "\n".join(window)
            if "writers:" not in blob or "readers:" not in blob:
                report(i, "role-comment",
                       "std::atomic declaration without '// writers: ...' "
                       "and 'readers: ...' comments in the "
                       f"{ROLE_COMMENT_WINDOW} lines above; write the "
                       "thread contract down where the data lives")

        # Role-guarded fields (PFP_GUARDED_BY over a *role* capability):
        # same documentation duty as atomics — they are the data the
        # role contracts exist for.  Skip preprocessor lines so the
        # macro's own #define never trips the rule.
        if not line.lstrip().startswith("#") and ROLE_GUARDED_RE.search(line):
            window = raw_lines[max(0, i - 1 - ROLE_COMMENT_WINDOW):i]
            blob = "\n".join(window)
            if "writers:" not in blob or "readers:" not in blob:
                report(i, "role-comment",
                       "role-guarded field without '// writers: ...' and "
                       "'readers: ...' comments in the "
                       f"{ROLE_COMMENT_WINDOW} lines above; the guarded "
                       "declaration is where the cross-thread contract "
                       "belongs")

        if SEQ_CST_RE.search(line):
            uses_atomics = True
            if waiver_reason(raw_lines, i, "seq-cst") is None:
                report(i, "seq-cst",
                       "memory_order_seq_cst needs "
                       "'lint: allow(seq-cst): <why>' stating what the "
                       "total order buys over acq/rel")

        for match in FENCE_RE.finditer(line):
            uses_atomics = True
            if waiver_reason(raw_lines, i, "fence") is None:
                report(i, "fence",
                       "standalone fence needs 'lint: allow(fence): <why>' "
                       "naming its acquire/release pairing")

        for match in OP_CALL_RE.finditer(line):
            op = match.group(1)
            open_col = line.index("(", match.start())
            args = call_args(code, i - 1, open_col)
            has_order = bool(MEMORY_ORDER_RE.search(args))
            receiver = line[:match.start()]
            if op in AMBIGUOUS_OPS and not has_order:
                # Only atomic receivers count; skip containers/streams/CVs
                # unless the file's own atomics make the receiver likely.
                if not re.search(r"atomic|_\.\s*$|flag", receiver) \
                        and not allowlisted:
                    continue
                # In allowlisted files, a known-atomic receiver spelling
                # (trailing underscore members, atomic locals) is assumed;
                # non-member calls like `out.clear()` on streams still
                # need skipping.
                if not re.search(
                        r"(?:^|[^\w.])(?:\w*_|\w*atomic\w*|counter|cell|"
                        r"version|head|tail|next|stop|done|processed|"
                        r"g_\w+)\s*$",
                        receiver.rstrip()):
                    continue
            uses_atomics = True
            if not has_order:
                report(i, "explicit-order",
                       f".{op}() without an explicit std::memory_order "
                       "(the default is a silent seq_cst)")

    if uses_atomics and not allowlisted \
            and "atomics-allowlist" not in file_waivers:
        report(0, "atomics-allowlist",
               "file uses std::atomic but is not in "
               "check_atomics.ATOMIC_FILES; new concurrency primitives "
               "belong in the audited allowlist (same PR, reviewed)")

    return violations


def iter_sources(root: pathlib.Path) -> Iterable[pathlib.Path]:
    src = root / "src"
    if not src.is_dir():
        raise FileNotFoundError(f"no src/ directory under {root}")
    for path in sorted(src.rglob("*")):
        if path.suffix in SOURCE_SUFFIXES and path.is_file():
            yield path


def run_regex(root: pathlib.Path) -> int:
    try:
        paths = list(iter_sources(root))
    except FileNotFoundError as err:
        print(f"check_atomics: error: {err}", file=sys.stderr)
        return 2
    violations: List[Violation] = []
    for path in paths:
        violations.extend(check_file(root, path))
    for violation in violations:
        print(violation)
    if violations:
        print(f"check_atomics: {len(violations)} violation(s) in "
              f"{len(paths)} file(s) [regex mode]", file=sys.stderr)
        return 1
    print(f"check_atomics: OK ({len(paths)} files, regex mode)")
    return 0


# --- AST mode ------------------------------------------------------------


def load_cindex():
    """Import clang.cindex, returning the module or None."""
    try:
        import clang.cindex as cindex  # type: ignore[import-not-found]
        return cindex
    except ImportError:
        return None


def ast_check_tu(cindex, tu, root: pathlib.Path) -> List[Violation]:
    """Walk one translation unit for atomic calls missing explicit orders.

    Token-level check scoped to genuine std::atomic member calls: the
    cursor tells us the receiver type, and the call's token extent tells
    us whether any argument names a memory_order.  Defaulted arguments
    never appear in the extent, so "no memory_order token" == "defaulted
    seq_cst".
    """
    violations: List[Violation] = []
    kind = cindex.CursorKind
    src_root = (root / "src").resolve()

    def rel_of(cursor) -> Optional[str]:
        if cursor.location.file is None:
            return None
        p = pathlib.Path(cursor.location.file.name).resolve()
        try:
            return p.relative_to(root.resolve()).as_posix()
        except ValueError:
            return None
        finally:
            pass

    def in_src(cursor) -> bool:
        if cursor.location.file is None:
            return False
        try:
            pathlib.Path(cursor.location.file.name).resolve() \
                .relative_to(src_root)
            return True
        except ValueError:
            return False

    def visit(cursor) -> None:
        if cursor.kind == kind.CALL_EXPR and in_src(cursor) \
                and cursor.spelling in ORDERED_OPS:
            children = list(cursor.get_children())
            if children:
                recv_type = children[0].type.spelling
                if "atomic" in recv_type:
                    tokens = " ".join(
                        t.spelling for t in cursor.get_tokens())
                    if "memory_order" not in tokens:
                        rel = rel_of(cursor) or "<unknown>"
                        violations.append(Violation(
                            rel, cursor.location.line, "explicit-order",
                            f".{cursor.spelling}() on {recv_type} without "
                            "an explicit std::memory_order [ast]"))
        for child in cursor.get_children():
            visit(child)

    visit(tu.cursor)
    return violations


def run_ast(root: pathlib.Path, strict: bool) -> int:
    cindex = load_cindex()
    if cindex is None:
        msg = ("check_atomics: clang.cindex unavailable "
               "(install python3-clang for AST mode)")
        if strict:
            print(msg, file=sys.stderr)
            return 2
        print(f"{msg}; falling back to regex mode", file=sys.stderr)
        return run_regex(root)

    compdb_path = root / "build" / "compile_commands.json"
    if not compdb_path.is_file():
        msg = (f"check_atomics: {compdb_path} missing (configure with "
               "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON)")
        if strict:
            print(msg, file=sys.stderr)
            return 2
        print(f"{msg}; falling back to regex mode", file=sys.stderr)
        return run_regex(root)

    try:
        entries = json.loads(compdb_path.read_text())
    except (OSError, json.JSONDecodeError) as err:
        print(f"check_atomics: bad compilation database: {err}",
              file=sys.stderr)
        return 2

    index = cindex.Index.create()
    violations: List[Violation] = []
    seen: set = set()
    parsed = 0
    for entry in entries:
        f = pathlib.Path(entry["file"])
        if not f.is_absolute():
            f = pathlib.Path(entry["directory"]) / f
        rel = None
        try:
            rel = f.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            pass
        if rel is None or not rel.startswith("src/") or rel in seen:
            continue
        seen.add(rel)
        args = entry.get("arguments")
        if args is None:
            args = entry.get("command", "").split()
        # Drop the compiler argv[0] and the -o/-c bookkeeping libclang
        # re-derives itself.
        flags = [a for a in args[1:] if a not in ("-c", str(f))]
        if "-o" in flags:
            i = flags.index("-o")
            del flags[i:i + 2]
        try:
            tu = index.parse(str(f), args=flags)
        except cindex.TranslationUnitLoadError as err:
            print(f"check_atomics: parse failed for {rel}: {err}",
                  file=sys.stderr)
            return 2
        parsed += 1
        violations.extend(ast_check_tu(cindex, tu, root))

    # The AST pass covers operation sites; declarations, waiver grammar
    # and the allowlist are textual properties, so the regex rules still
    # run and the union is reported.
    for path in iter_sources(root):
        violations.extend(check_file(root, path))

    uniq = sorted(set(violations))
    for violation in uniq:
        print(violation)
    if uniq:
        print(f"check_atomics: {len(uniq)} violation(s) "
              f"[ast mode, {parsed} TUs]", file=sys.stderr)
        return 1
    print(f"check_atomics: OK (ast mode, {parsed} TUs)")
    return 0


# --- self-test -----------------------------------------------------------

SELF_TEST_CASES = [
    # (name, relpath, source, expected rule or None)
    ("defaulted-load",
     "src/util/spsc_queue.hpp",
     "// writers: w  readers: r\nstd::atomic<int> head_{0};\n"
     "int f() { return head_.load(); }\n",
     "explicit-order"),
    ("explicit-load-clean",
     "src/util/spsc_queue.hpp",
     "// writers: w  readers: r\nstd::atomic<int> head_{0};\n"
     "int f() { return head_.load(std::memory_order_acquire); }\n",
     None),
    ("multiline-order-clean",
     "src/util/spsc_queue.hpp",
     "// writers: w  readers: r\nstd::atomic<int> head_{0};\n"
     "void f() { head_.store(1,\n    std::memory_order_release); }\n",
     None),
    ("seq-cst-unwaived",
     "src/util/spsc_queue.hpp",
     "// writers: w  readers: r\nstd::atomic<int> head_{0};\n"
     "int f() { return head_.load(std::memory_order_seq_cst); }\n",
     "seq-cst"),
    ("seq-cst-waived-with-reason",
     "src/util/spsc_queue.hpp",
     "// writers: w  readers: r\nstd::atomic<int> head_{0};\n"
     "// lint: allow(seq-cst): total order anchors the ABA test oracle\n"
     "int f() { return head_.load(std::memory_order_seq_cst); }\n",
     None),
    ("fence-unwaived",
     "src/obs/counters.hpp",
     "#include <atomic>\nvoid f() {\n"
     "  std::atomic_thread_fence(std::memory_order_release);\n}\n",
     "fence"),
    ("fence-waived",
     "src/obs/counters.hpp",
     "#include <atomic>\nvoid f() {\n"
     "  // lint: allow(fence): seqlock begin — pairs with reader acquire\n"
     "  std::atomic_thread_fence(std::memory_order_release);\n}\n",
     None),
    ("missing-role-comment",
     "src/util/phase.hpp",
     "std::atomic<unsigned> count_{0};\n",
     "role-comment"),
    ("role-comment-in-window",
     "src/util/phase.hpp",
     "// writers: the engine thread\n// readers: any scraper\n"
     "std::atomic<unsigned> count_{0};\n",
     None),
    ("allowlist-violation",
     "src/core/policy/rogue.cpp",
     "// writers: w  readers: r\nstd::atomic<int> sneaky_{0};\n",
     "atomics-allowlist"),
    # Bulk-queue patterns: a run-publishing store with a defaulted order
    # is exactly the bug the bulk ops must never regress into.
    ("bulk-publish-defaulted-store",
     "src/util/spsc_queue.hpp",
     "// writers: w  readers: r\nstd::atomic<std::uint64_t> tail_{0};\n"
     "void f(std::size_t n) { auto t = tail_.load(\n"
     "    std::memory_order_relaxed); tail_.store(t + n); }\n",
     "explicit-order"),
    ("bulk-publish-explicit-store-clean",
     "src/util/spsc_queue.hpp",
     "// writers: w  readers: r\nstd::atomic<std::uint64_t> tail_{0};\n"
     "void f(std::size_t n) { auto t = tail_.load(\n"
     "    std::memory_order_relaxed);\n"
     "  tail_.store(t + n, std::memory_order_release); }\n",
     None),
    # Role-guarded fields (staging buffers, cached indices) need the
    # writers:/readers: contract like atomics do.
    ("role-guarded-missing-comment",
     "src/engine/sharded_engine.hpp",
     "std::vector<int> staged PFP_GUARDED_BY(queue.producer_role);\n",
     "role-comment"),
    ("role-guarded-with-comment",
     "src/engine/sharded_engine.hpp",
     "// writers: producer thread  readers: producer thread\n"
     "std::vector<int> staged PFP_GUARDED_BY(queue.producer_role);\n",
     None),
    ("mutex-guarded-exempt",
     "src/util/thread_pool.hpp",
     "std::queue<int> queue_ PFP_GUARDED_BY(mutex_);\n",
     None),
    ("guarded-macro-define-exempt",
     "src/util/thread_annotations.hpp",
     "#define PFP_GUARDED_BY(x) __attribute__((guarded_by(x)))\n"
     "// mentions producer_role in prose only\n",
     None),
    ("comment-mention-clean",
     "src/core/policy/clean.cpp",
     "// std::atomic would be wrong here; see docs\nint x = 0;\n",
     None),
]


def run_self_test() -> int:
    failures = 0
    with tempfile.TemporaryDirectory() as tmp:
        root = pathlib.Path(tmp)
        for name, rel, source, expected in SELF_TEST_CASES:
            path = root / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(source, encoding="utf-8")
            rules = {v.rule for v in check_file(root, path)}
            path.unlink()
            if expected is None:
                ok = not rules
                detail = f"expected clean, got {sorted(rules)}"
            else:
                ok = expected in rules
                detail = f"expected [{expected}], got {sorted(rules)}"
            status = "ok" if ok else "FAIL"
            print(f"self-test {name}: {status}" + ("" if ok else
                                                   f" ({detail})"))
            failures += 0 if ok else 1
    if failures:
        print(f"check_atomics: self-test FAILED ({failures} case(s))",
              file=sys.stderr)
        return 1
    print("check_atomics: self-test OK "
          f"({len(SELF_TEST_CASES)} cases)")
    return 0


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="atomics-discipline linter "
                    "(see docs/static-analysis.md)")
    parser.add_argument(
        "--root", type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parents[2],
        help="repository root (default: two levels above this script)")
    parser.add_argument(
        "--mode", choices=("auto", "regex", "ast"), default="auto",
        help="auto prefers ast when libclang + compile_commands.json "
             "exist, else regex")
    parser.add_argument(
        "--strict", action="store_true",
        help="in ast/auto mode, fail instead of falling back to regex")
    parser.add_argument(
        "--self-test", action="store_true",
        help="run the seeded-violation self-checks and exit")
    args = parser.parse_args(argv)

    if args.self_test:
        return run_self_test()

    root = args.root.resolve()
    if args.mode == "regex":
        return run_regex(root)
    if args.mode == "ast":
        return run_ast(root, strict=args.strict)
    # auto
    if load_cindex() is not None \
            and (root / "build" / "compile_commands.json").is_file():
        return run_ast(root, strict=args.strict)
    if args.strict:
        print("check_atomics: --strict requires AST mode "
              "(libclang + compile_commands.json)", file=sys.stderr)
        return 2
    return run_regex(root)


if __name__ == "__main__":
    sys.exit(main())
