#!/usr/bin/env python3
"""Repo-specific conventions linter for the prefetching simulator.

clang-tidy covers general C++ hygiene; this script enforces the handful of
project rules that generic tooling cannot know about (see
docs/static-analysis.md for the rationale behind each):

  hot-container     std::map / std::unordered_map / std::set /
                    std::unordered_set are banned in the hot-path dirs
                    (src/core/, src/cache/, src/obs/).  The hot-path overhaul
                    replaced them with util::FlatMap / util::SmallVector; a
                    node-based container sneaking back in silently undoes
                    that PR.  src/obs/ counts as hot because the engine
                    publishes into it once per access.
  hot-alloc         per-access heap allocation (naked new, make_unique,
                    make_shared) is banned in the hot-path dirs.  Setup-time
                    construction sites carry an explicit waiver.
  naked-new         naked new outside the hot dirs must also be waived
                    (util::SmallVector's buffer management is the only
                    legitimate owner today).
  no-std-rand       std::rand / srand are banned everywhere in src/; all
                    randomness flows through util::SplitMix64 / Xoshiro256 so
                    runs stay reproducible from a seed.
  no-float-costben  the cost-benefit arithmetic (paper Eq. 1-14, in
                    src/core/costben/) must stay double; float intermediates
                    change eviction decisions between builds.
  node-heap-member  heap-owning containers (std::vector, util::SmallVector,
                    std::string, deque/list/map/...) are banned as members
                    of node records (structs/classes whose name ends in
                    "Node") in src/core/tree/.  The SoA overhaul moved
                    child storage into the pool's shared arena so node
                    records stay fixed-size POD planes; a per-node
                    container member reintroduces pointer-chasing into the
                    walks the arena layout exists to avoid.
  raw-thread        std::thread / std::jthread / pthread_create are banned
                    in src/ outside src/util/.  Thread lifetime belongs to
                    util::ThreadPool (whose queue discipline is annotated
                    for -Wthread-safety, see util/thread_annotations.hpp);
                    a raw spawn elsewhere escapes both the pool's join
                    guarantees and the static analysis.  std::this_thread
                    (yield/sleep) is fine and does not match.
  raw-socket        raw socket/poll syscalls (socket, bind, listen, accept,
                    connect, recv/send and friends, poll/epoll, shutdown)
                    are banned in src/ outside src/server/ and src/util/.
                    Every byte that crosses the network goes through the
                    one reviewed surface in util/net.hpp; a stray syscall
                    elsewhere escapes its EINTR/non-blocking discipline and
                    the server's event-loop ownership model.
  include-guard     every header under src/ uses #pragma once (repo
                    convention; mixing guard styles breaks the amalgamated
                    include checks).
  layering          src/engine/ may not include sim/ headers, and src/obs/
                    may include util/ (and obs/ itself) only.  The engine
                    extraction put the per-access state machine below the
                    trace-replay drivers (util -> {trace, cache} -> core ->
                    engine -> sim, with obs between util and engine); an
                    upward include would recreate the cycles those refactors
                    removed.  src/server/ sits on top of engine: it may
                    include engine/, obs/ and util/ only (never core/,
                    cache/, trace/ or sim/ — the wire protocol speaks raw
                    u64 block ids precisely so it needs none of them), and
                    NOTHING outside src/server/ may include server/ headers
                    (it is the top of the stack; an upward include would
                    drag socket code into the simulation layers).

Waivers: append `lint: allow(<rule>)` in a comment on the offending line, or
put `lint: allow-file(<rule>)` in a comment anywhere in the file to waive a
rule for the whole file.  Waivers are deliberate, greppable decisions.

Exit status: 0 clean, 1 violations found, 2 usage/configuration error.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys
from typing import Iterable, List, NamedTuple

HOT_DIRS = ("src/core", "src/cache", "src/obs")
COSTBEN_DIR = "src/core/costben"
TREE_DIR = "src/core/tree"
MARKOV_DIR = "src/core/markov"
ASSOC_DIR = "src/core/assoc"
ENGINE_DIR = "src/engine"
OBS_DIR = "src/obs"
UTIL_DIR = "src/util"
SERVER_DIR = "src/server"
SOURCE_SUFFIXES = {".hpp", ".cpp"}

# Layer boundaries: directory -> include prefixes it may not reach.  The
# obs entry lists every project layer except util/ and obs/ itself, which
# is the allowlist "obs may include util only" phrased as a ban.  The
# costben entry keeps the controller predictor-agnostic: the cost model
# (Eq. 1-14) consumes generic candidates (costben/candidate.hpp) and may
# never know any predictor family's types — the predictor-zoo refactor
# depends on that direction staying one-way.  The predictor modules
# (tree/, markov/, assoc/) are below policy/ and must not reach up into
# the policies that drive them, nor sideways into each other.
LAYERING = {
    ENGINE_DIR: ("sim/",),
    OBS_DIR: ("trace/", "cache/", "core/", "engine/", "sim/"),
    COSTBEN_DIR: ("core/tree/", "core/markov/", "core/assoc/",
                  "core/policy/", "cache/", "trace/", "engine/", "sim/",
                  "obs/"),
    TREE_DIR: ("core/policy/", "core/markov/", "core/assoc/", "engine/",
               "sim/", "obs/"),
    MARKOV_DIR: ("core/policy/", "core/tree/", "core/assoc/", "engine/",
                 "sim/", "obs/"),
    ASSOC_DIR: ("core/policy/", "core/tree/", "core/markov/", "engine/",
                "sim/", "obs/"),
    SERVER_DIR: ("trace/", "cache/", "core/", "sim/"),
}

# The inverse rule for the top of the stack: server/ headers may be
# included from src/server/ only.
SERVER_INCLUDE_PREFIX = "server/"

ALLOW_LINE_RE = re.compile(r"lint:\s*allow\(([a-z-]+)\)")
ALLOW_FILE_RE = re.compile(r"lint:\s*allow-file\(([a-z-]+)\)")

HOT_CONTAINER_RE = re.compile(
    r"std\s*::\s*(?:unordered_map|unordered_set|map|multimap|set|multiset)\s*<"
)
ALLOC_RE = re.compile(r"(?:\bnew\b(?!\s*\()|\bnew\s*\[|std\s*::\s*make_(?:unique|shared)\s*<)")
NAKED_NEW_RE = re.compile(r"\bnew\b")
STD_RAND_RE = re.compile(r"(?:std\s*::\s*rand\b|\bsrand\s*\(|\brand\s*\(\s*\))")
FLOAT_RE = re.compile(r"\bfloat\b")
INCLUDE_RE = re.compile(r'^\s*#\s*include\s*[<"]([^">]+)[">]')
# A node-record definition: struct/class whose name ends in "Node" with a
# body (forward declarations don't own members).  Matches HotNode/ColdNode
# but not NodePool or NodeView.
NODE_STRUCT_RE = re.compile(r"\b(?:struct|class)\s+(\w*Node)\b(?!\s*;)")
NODE_HEAP_MEMBER_RE = re.compile(
    r"\b(?:util\s*::\s*SmallVector\s*<"
    r"|std\s*::\s*(?:vector|deque|list|forward_list|map|multimap|set|"
    r"multiset|unordered_map|unordered_set|basic_string)\s*<"
    r"|std\s*::\s*string\b)"
)
# std::this_thread::yield()/sleep_for() never match: "this_thread" is a
# different token than "thread" after the ::.
RAW_THREAD_RE = re.compile(r"\bstd\s*::\s*j?thread\b|\bpthread_create\b")
# Bare socket-API calls.  The lookbehind skips member/qualified calls
# (ring.send(...), util::net::connect_tcp(...) is a different token) so
# only the global-namespace syscall form matches.
RAW_SOCKET_RE = re.compile(
    r"(?<![\w.>:])(?:socket|bind|listen|accept4?|connect|"
    r"recv(?:from|msg)?|send(?:to|msg)?|setsockopt|getsockopt|"
    r"epoll_(?:create1?|ctl|wait)|poll|ppoll|select|shutdown)\s*\("
)


class Violation(NamedTuple):
    path: str
    line: int  # 1-based; 0 for file-level findings
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_code(line: str) -> str:
    """Drop string/char literals and // comments so regexes see only code.

    Block comments are handled by the caller (they can span lines); this
    function is line-local.  Escapes inside literals are honoured.
    """
    out: List[str] = []
    i = 0
    n = len(line)
    while i < n:
        c = line[i]
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        if c in "\"'":
            quote = c
            i += 1
            while i < n:
                if line[i] == "\\":
                    i += 2
                    continue
                if line[i] == quote:
                    i += 1
                    break
                i += 1
            out.append(" ")  # keep column drift small
            continue
        out.append(c)
        i += 1
    return "".join(out)


def code_lines(text: str) -> List[str]:
    """Return per-line code with comments and literals blanked."""
    lines: List[str] = []
    in_block = False
    for raw in text.splitlines():
        if in_block:
            end = raw.find("*/")
            if end == -1:
                lines.append("")
                continue
            raw = " " * (end + 2) + raw[end + 2 :]
            in_block = False
        # Strip complete /* ... */ runs, then check for an unterminated one.
        raw = strip_code(raw)
        while True:
            start = raw.find("/*")
            if start == -1:
                break
            end = raw.find("*/", start + 2)
            if end == -1:
                raw = raw[:start]
                in_block = True
                break
            raw = raw[:start] + " " * (end + 2 - start) + raw[end + 2 :]
        lines.append(raw)
    return lines


def in_dir(rel: str, prefix: str) -> bool:
    return rel == prefix or rel.startswith(prefix + "/")


def check_file(root: pathlib.Path, path: pathlib.Path) -> List[Violation]:
    rel = path.relative_to(root).as_posix()
    try:
        text = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as err:
        return [Violation(rel, 0, "io", f"unreadable: {err}")]

    raw_lines = text.splitlines()
    code = code_lines(text)
    file_waivers = set(ALLOW_FILE_RE.findall(text))
    hot = any(in_dir(rel, d) for d in HOT_DIRS)
    costben = in_dir(rel, COSTBEN_DIR)
    tree = in_dir(rel, TREE_DIR)

    violations: List[Violation] = []

    def report(lineno: int, rule: str, message: str) -> None:
        if rule in file_waivers:
            return
        if lineno >= 1 and lineno <= len(raw_lines):
            if rule in ALLOW_LINE_RE.findall(raw_lines[lineno - 1]):
                return
        violations.append(Violation(rel, lineno, rule, message))

    if path.suffix == ".hpp" and "#pragma once" not in text:
        report(0, "include-guard",
               "header lacks '#pragma once' (repo guard convention)")

    # Layering runs on raw lines: code_lines() blanks string literals, and
    # the include path is one.
    for layer_dir, banned_prefixes in LAYERING.items():
        if not in_dir(rel, layer_dir):
            continue
        for i, raw in enumerate(raw_lines, start=1):
            match = INCLUDE_RE.match(raw)
            if match and match.group(1).startswith(banned_prefixes):
                report(i, "layering",
                       f"'{match.group(1)}' reaches across the layer stack "
                       f"({layer_dir}/ may not include it; see "
                       "docs/architecture.md)")
    if not in_dir(rel, SERVER_DIR):
        for i, raw in enumerate(raw_lines, start=1):
            match = INCLUDE_RE.match(raw)
            if match and match.group(1).startswith(SERVER_INCLUDE_PREFIX):
                report(i, "layering",
                       f"'{match.group(1)}' is the top of the stack; only "
                       "src/server/ may include server/ headers (see "
                       "docs/architecture.md)")

    # node-heap-member tracks struct bodies across lines: once a *Node
    # definition opens, flag heap-container members until its braces
    # balance again.  in_node is the running brace balance of the current
    # node record's body, or None when outside one.
    in_node: int | None = None
    for i, line in enumerate(code, start=1):
        if tree:
            if in_node is None and NODE_STRUCT_RE.search(line):
                in_node = 0
            if in_node is not None:
                body_open = in_node > 0 or "{" in line
                if body_open and NODE_HEAP_MEMBER_RE.search(line):
                    report(i, "node-heap-member",
                           "heap-owning container inside a node record; "
                           "store indices into a pool-owned arena instead "
                           "(or waive with 'lint: allow(node-heap-member)')")
                in_node += line.count("{") - line.count("}")
                if in_node == 0 and "}" in line:
                    in_node = None
        if not line.strip():
            continue
        if STD_RAND_RE.search(line):
            report(i, "no-std-rand",
                   "std::rand/srand breaks seeded reproducibility; "
                   "use util::SplitMix64 or util::Xoshiro256")
        if not in_dir(rel, UTIL_DIR) and RAW_THREAD_RE.search(line):
            report(i, "raw-thread",
                   "raw thread spawn outside src/util/; route work "
                   "through util::ThreadPool so lifetimes stay joined "
                   "and the thread-safety annotations apply")
        if (not in_dir(rel, UTIL_DIR) and not in_dir(rel, SERVER_DIR)
                and RAW_SOCKET_RE.search(line)):
            report(i, "raw-socket",
                   "raw socket/poll syscall outside src/server/ and "
                   "src/util/; go through util/net.hpp so every network "
                   "byte crosses the one reviewed surface")
        if hot and HOT_CONTAINER_RE.search(line):
            report(i, "hot-container",
                   "node-based std container in a hot-path dir; "
                   "use util::FlatMap / util::SmallVector")
        if hot and ALLOC_RE.search(line):
            report(i, "hot-alloc",
                   "heap allocation in a hot-path dir; hoist to setup "
                   "or waive with 'lint: allow(hot-alloc)'")
        elif not hot and NAKED_NEW_RE.search(line):
            report(i, "naked-new",
                   "naked new; prefer containers or std::make_unique, "
                   "or waive with 'lint: allow(naked-new)'")
        if costben and FLOAT_RE.search(line):
            report(i, "no-float-costben",
                   "cost-model arithmetic (paper Eq. 1-14) must stay "
                   "double; float drifts eviction decisions")
    return violations


def iter_sources(root: pathlib.Path) -> Iterable[pathlib.Path]:
    src = root / "src"
    if not src.is_dir():
        raise FileNotFoundError(f"no src/ directory under {root}")
    for path in sorted(src.rglob("*")):
        if path.suffix in SOURCE_SUFFIXES and path.is_file():
            yield path


def run(root: pathlib.Path) -> int:
    try:
        paths = list(iter_sources(root))
    except FileNotFoundError as err:
        print(f"check_conventions: error: {err}", file=sys.stderr)
        return 2
    violations: List[Violation] = []
    for path in paths:
        violations.extend(check_file(root, path))
    for violation in violations:
        print(violation)
    if violations:
        print(f"check_conventions: {len(violations)} violation(s) in "
              f"{len(paths)} file(s)", file=sys.stderr)
        return 1
    print(f"check_conventions: OK ({len(paths)} files)")
    return 0


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="project conventions linter (see docs/static-analysis.md)")
    parser.add_argument(
        "--root", type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parents[2],
        help="repository root (default: two levels above this script)")
    args = parser.parse_args(argv)
    return run(args.root.resolve())


if __name__ == "__main__":
    sys.exit(main())
