"""Self-tests for check_conventions.py.

Each rule gets a seeded-violation test (the rule must fire) and a
clean-code test (it must stay silent); waiver markers get both flavours
too.  Runnable with pytest or `python3 -m unittest` — CI uses pytest, the
dev container only has unittest.
"""

from __future__ import annotations

import pathlib
import sys
import tempfile
import unittest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

import check_conventions as lint  # noqa: E402


class LintHarness(unittest.TestCase):
    def setUp(self) -> None:
        self._tmp = tempfile.TemporaryDirectory()
        self.root = pathlib.Path(self._tmp.name)
        self.addCleanup(self._tmp.cleanup)

    def write(self, rel: str, text: str) -> pathlib.Path:
        path = self.root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
        return path

    def lint_file(self, rel: str, text: str) -> list:
        path = self.write(rel, text)
        return lint.check_file(self.root, path)

    def rules(self, violations: list) -> set:
        return {v.rule for v in violations}


class HotContainerRule(LintHarness):
    def test_unordered_map_in_core_fires(self) -> None:
        found = self.lint_file(
            "src/core/tree/bad.hpp",
            "#pragma once\n#include <unordered_map>\n"
            "std::unordered_map<int, int> edges_;\n")
        self.assertIn("hot-container", self.rules(found))
        self.assertEqual(found[0].line, 3)

    def test_std_map_in_cache_fires(self) -> None:
        found = self.lint_file(
            "src/cache/bad.cpp", "std::map<int, double> costs;\n")
        self.assertIn("hot-container", self.rules(found))

    def test_flat_map_is_fine(self) -> None:
        found = self.lint_file(
            "src/cache/good.cpp", "util::FlatMap<int, int> map_;\n")
        self.assertEqual(self.rules(found), set())

    def test_unordered_map_outside_hot_dirs_is_fine(self) -> None:
        found = self.lint_file(
            "src/sim/report.cpp", "std::unordered_map<int, int> rows;\n")
        self.assertEqual(self.rules(found), set())

    def test_mention_in_comment_is_fine(self) -> None:
        found = self.lint_file(
            "src/core/tree/good.cpp",
            "// replaced std::unordered_map<int, int> with FlatMap\n"
            "/* std::map<int, int> is banned here */\n")
        self.assertEqual(self.rules(found), set())


class HotAllocRule(LintHarness):
    def test_naked_new_in_core_fires(self) -> None:
        found = self.lint_file("src/core/bad.cpp", "int* p = new int[4];\n")
        self.assertIn("hot-alloc", self.rules(found))

    def test_make_unique_in_cache_fires(self) -> None:
        found = self.lint_file(
            "src/cache/bad.cpp", "auto e = std::make_unique<Entry>();\n")
        self.assertIn("hot-alloc", self.rules(found))

    def test_line_waiver_silences(self) -> None:
        found = self.lint_file(
            "src/core/ok.cpp",
            "int* p = new int[4];  // lint: allow(hot-alloc)\n")
        self.assertEqual(self.rules(found), set())

    def test_file_waiver_silences(self) -> None:
        found = self.lint_file(
            "src/core/factory_like.cpp",
            "// setup-time only.  lint: allow-file(hot-alloc)\n"
            "auto a = std::make_unique<A>();\n"
            "auto b = std::make_unique<B>();\n")
        self.assertEqual(self.rules(found), set())

    def test_identifier_containing_new_is_fine(self) -> None:
        found = self.lint_file(
            "src/core/ok2.cpp", "std::size_t new_capacity = renew(old);\n")
        self.assertEqual(self.rules(found), set())


class NakedNewRule(LintHarness):
    def test_naked_new_outside_hot_dirs_fires(self) -> None:
        found = self.lint_file("src/util/bad.cpp", "char* b = new char[8];\n")
        self.assertIn("naked-new", self.rules(found))

    def test_waived_naked_new_is_fine(self) -> None:
        found = self.lint_file(
            "src/util/ok.cpp",
            "char* b = new char[8];  // lint: allow(naked-new)\n")
        self.assertEqual(self.rules(found), set())

    def test_make_unique_outside_hot_dirs_is_fine(self) -> None:
        found = self.lint_file(
            "src/sim/ok.cpp", "auto s = std::make_unique<Sim>();\n")
        self.assertEqual(self.rules(found), set())


class StdRandRule(LintHarness):
    def test_std_rand_fires_anywhere(self) -> None:
        found = self.lint_file(
            "src/trace/bad.cpp", "int r = std::rand() % 6;\n")
        self.assertIn("no-std-rand", self.rules(found))

    def test_srand_fires(self) -> None:
        found = self.lint_file("src/util/bad.cpp", "srand(42);\n")
        self.assertIn("no-std-rand", self.rules(found))

    def test_project_prng_is_fine(self) -> None:
        found = self.lint_file(
            "src/trace/good.cpp",
            "util::Xoshiro256 rng(7);\nauto r = rng.below(6);\n")
        self.assertEqual(self.rules(found), set())

    def test_random_shuffle_word_is_fine(self) -> None:
        found = self.lint_file(
            "src/util/ok.cpp", "bool randomized = operand(x);\n")
        self.assertEqual(self.rules(found), set())


class FloatCostbenRule(LintHarness):
    def test_float_in_costben_fires(self) -> None:
        found = self.lint_file(
            "src/core/costben/bad.hpp",
            "#pragma once\nfloat t_disk = 15.0f;\n")
        self.assertIn("no-float-costben", self.rules(found))

    def test_double_in_costben_is_fine(self) -> None:
        found = self.lint_file(
            "src/core/costben/good.hpp",
            "#pragma once\ndouble t_disk = 15.0;\n")
        self.assertEqual(self.rules(found), set())

    def test_float_outside_costben_is_fine(self) -> None:
        found = self.lint_file("src/sim/ok.cpp", "float ratio = 0.5f;\n")
        self.assertEqual(self.rules(found), set())

    def test_float_in_comment_is_fine(self) -> None:
        found = self.lint_file(
            "src/core/costben/ok.cpp",
            "// never use float here\ndouble x = 1.0;\n")
        self.assertEqual(self.rules(found), set())


class NodeHeapMemberRule(LintHarness):
    def test_vector_member_in_node_struct_fires(self) -> None:
        found = self.lint_file(
            "src/core/tree/bad.hpp",
            "#pragma once\n"
            "struct HotNode {\n"
            "  std::uint64_t weight = 0;\n"
            "  std::vector<int> children;\n"
            "};\n")
        self.assertIn("node-heap-member", self.rules(found))
        self.assertEqual(
            [v.line for v in found if v.rule == "node-heap-member"], [4])

    def test_small_vector_member_fires(self) -> None:
        found = self.lint_file(
            "src/core/tree/bad2.hpp",
            "#pragma once\n"
            "struct ColdNode {\n"
            "  util::SmallVector<int, 4> kids;\n"
            "};\n")
        self.assertIn("node-heap-member", self.rules(found))

    def test_one_line_node_struct_fires(self) -> None:
        found = self.lint_file(
            "src/core/tree/bad3.cpp",
            "struct TmpNode { std::string label; };\n")
        self.assertIn("node-heap-member", self.rules(found))

    def test_pod_node_struct_is_fine(self) -> None:
        found = self.lint_file(
            "src/core/tree/good.hpp",
            "#pragma once\n"
            "struct HotNode {\n"
            "  std::uint64_t weight = 0;\n"
            "  std::uint32_t child_begin = 0;\n"
            "};\n")
        self.assertEqual(self.rules(found), set())

    def test_vector_outside_node_struct_is_fine(self) -> None:
        # The pool's plane storage is exactly where vectors belong.
        found = self.lint_file(
            "src/core/tree/good2.hpp",
            "#pragma once\n"
            "struct HotNode {\n"
            "  std::uint64_t weight = 0;\n"
            "};\n"
            "class NodePool {\n"
            "  std::vector<HotNode> hot_;\n"
            "  std::vector<int> arena_;\n"
            "};\n")
        self.assertEqual(self.rules(found), set())

    def test_forward_declaration_does_not_open_tracking(self) -> None:
        found = self.lint_file(
            "src/core/tree/good3.hpp",
            "#pragma once\n"
            "struct HotNode;\n"
            "std::vector<int> roots;\n")
        self.assertEqual(self.rules(found), set())

    def test_node_struct_outside_tree_dir_is_fine(self) -> None:
        found = self.lint_file(
            "src/sim/report.cpp",
            "struct RowNode { std::vector<int> cells; };\n")
        self.assertEqual(self.rules(found), set())

    def test_line_waiver_silences(self) -> None:
        found = self.lint_file(
            "src/core/tree/waived.hpp",
            "#pragma once\n"
            "struct ScratchNode {\n"
            "  std::vector<int> tmp;  // lint: allow(node-heap-member)\n"
            "};\n")
        self.assertEqual(self.rules(found), set())


class RawThreadRule(LintHarness):
    def test_std_thread_outside_util_fires(self) -> None:
        found = self.lint_file(
            "src/engine/bad.cpp",
            "#include <thread>\nstd::thread worker_;\n")
        self.assertIn("raw-thread", self.rules(found))
        self.assertEqual(
            [v.line for v in found if v.rule == "raw-thread"], [2])

    def test_jthread_fires_too(self) -> None:
        found = self.lint_file(
            "src/sim/bad.cpp", "std::jthread worker_;\n")
        self.assertIn("raw-thread", self.rules(found))

    def test_pthread_create_fires(self) -> None:
        found = self.lint_file(
            "src/engine/bad.cpp",
            "int r = pthread_create(&tid, nullptr, fn, nullptr);\n")
        self.assertIn("raw-thread", self.rules(found))

    def test_std_thread_inside_util_is_fine(self) -> None:
        found = self.lint_file(
            "src/util/thread_pool_extra.cpp",
            "std::vector<std::thread> workers_;\n")
        self.assertEqual(self.rules(found), set())

    def test_this_thread_yield_is_fine(self) -> None:
        found = self.lint_file(
            "src/engine/good.cpp",
            "void f() { std::this_thread::yield(); }\n")
        self.assertEqual(self.rules(found), set())

    def test_hardware_concurrency_mention_in_comment_is_fine(self) -> None:
        found = self.lint_file(
            "src/engine/good.cpp",
            "// sized to std::thread::hardware_concurrency()\nint n;\n")
        self.assertEqual(self.rules(found), set())

    def test_line_waiver_silences(self) -> None:
        found = self.lint_file(
            "src/engine/waived.cpp",
            "std::thread t;  // lint: allow(raw-thread)\n")
        self.assertEqual(self.rules(found), set())


class IncludeGuardRule(LintHarness):
    def test_header_without_pragma_once_fires(self) -> None:
        found = self.lint_file(
            "src/util/bad.hpp",
            "#ifndef PFP_BAD_HPP\n#define PFP_BAD_HPP\n#endif\n")
        self.assertIn("include-guard", self.rules(found))
        self.assertEqual(found[0].line, 0)

    def test_pragma_once_is_fine(self) -> None:
        found = self.lint_file("src/util/good.hpp", "#pragma once\nint x;\n")
        self.assertEqual(self.rules(found), set())

    def test_cpp_file_needs_no_guard(self) -> None:
        found = self.lint_file("src/util/ok.cpp", "int x;\n")
        self.assertEqual(self.rules(found), set())


class CommentAndLiteralStripping(LintHarness):
    def test_violation_inside_string_literal_is_fine(self) -> None:
        found = self.lint_file(
            "src/core/ok.cpp",
            'const char* msg = "do not call std::rand() or new int";\n')
        self.assertEqual(self.rules(found), set())

    def test_multiline_block_comment_is_fine(self) -> None:
        found = self.lint_file(
            "src/core/ok2.cpp",
            "/* std::map<int,int> banned\n   new int[4] also banned */\n"
            "int x;\n")
        self.assertEqual(self.rules(found), set())

    def test_code_after_block_comment_still_checked(self) -> None:
        found = self.lint_file(
            "src/core/bad.cpp",
            "/* harmless */ int* p = new int[4];\n")
        self.assertIn("hot-alloc", self.rules(found))


class LayeringRule(LintHarness):
    def test_engine_including_sim_fires(self) -> None:
        found = self.lint_file(
            "src/engine/bad.hpp",
            '#pragma once\n#include "sim/simulator.hpp"\n')
        self.assertIn("layering", self.rules(found))
        self.assertEqual(found[0].line, 2)

    def test_engine_including_sim_cpp_fires(self) -> None:
        found = self.lint_file(
            "src/engine/bad.cpp", '#include "sim/metrics.hpp"\n')
        self.assertIn("layering", self.rules(found))

    def test_engine_including_core_is_fine(self) -> None:
        found = self.lint_file(
            "src/engine/good.cpp",
            '#include "core/policy/factory.hpp"\n'
            '#include "cache/buffer_cache.hpp"\n'
            '#include "util/assert.hpp"\n')
        self.assertEqual(self.rules(found), set())

    def test_sim_including_engine_is_fine(self) -> None:
        # Downward includes are the point of the layering.
        found = self.lint_file(
            "src/sim/good.cpp", '#include "engine/prefetch_engine.hpp"\n')
        self.assertEqual(self.rules(found), set())

    def test_sim_like_name_elsewhere_is_fine(self) -> None:
        # Only the sim/ prefix is banned, not paths merely containing it.
        found = self.lint_file(
            "src/engine/good2.cpp", '#include "core/simplex/sim.hpp"\n')
        self.assertEqual(self.rules(found), set())

    def test_mention_in_comment_is_fine(self) -> None:
        found = self.lint_file(
            "src/engine/good3.cpp",
            '// do NOT #include "sim/simulator.hpp" here\n')
        self.assertEqual(self.rules(found), set())

    def test_file_waiver_silences(self) -> None:
        found = self.lint_file(
            "src/engine/waived.cpp",
            '// lint: allow-file(layering)\n'
            '#include "sim/simulator.hpp"\n')
        self.assertEqual(self.rules(found), set())


class PredictorLayeringRule(LintHarness):
    def test_costben_including_tree_fires(self) -> None:
        found = self.lint_file(
            "src/core/costben/bad.hpp",
            '#pragma once\n#include "core/tree/prefetch_tree.hpp"\n')
        self.assertIn("layering", self.rules(found))
        self.assertEqual(found[0].line, 2)

    def test_costben_including_markov_or_assoc_fires(self) -> None:
        found = self.lint_file(
            "src/core/costben/bad2.cpp",
            '#include "core/markov/markov_model.hpp"\n'
            '#include "core/assoc/association_miner.hpp"\n')
        self.assertEqual(
            [v.line for v in found if v.rule == "layering"], [1, 2])

    def test_costben_including_policy_fires(self) -> None:
        found = self.lint_file(
            "src/core/costben/bad3.cpp",
            '#include "core/policy/prefetcher.hpp"\n')
        self.assertIn("layering", self.rules(found))

    def test_costben_including_util_and_itself_is_fine(self) -> None:
        found = self.lint_file(
            "src/core/costben/good.cpp",
            '#include "core/costben/equations.hpp"\n'
            '#include "core/costben/candidate.hpp"\n'
            '#include "util/ewma.hpp"\n')
        self.assertEqual(self.rules(found), set())

    def test_markov_including_policy_fires(self) -> None:
        found = self.lint_file(
            "src/core/markov/bad.cpp",
            '#include "core/policy/cost_benefit.hpp"\n')
        self.assertIn("layering", self.rules(found))

    def test_markov_including_sibling_predictor_fires(self) -> None:
        found = self.lint_file(
            "src/core/markov/bad2.cpp",
            '#include "core/tree/node_pool.hpp"\n'
            '#include "core/assoc/association_miner.hpp"\n')
        self.assertEqual(
            [v.line for v in found if v.rule == "layering"], [1, 2])

    def test_assoc_including_tree_or_markov_fires(self) -> None:
        found = self.lint_file(
            "src/core/assoc/bad.cpp",
            '#include "core/markov/markov_model.hpp"\n')
        self.assertIn("layering", self.rules(found))

    def test_tree_including_policy_fires(self) -> None:
        found = self.lint_file(
            "src/core/tree/bad_layer.cpp",
            '#include "core/policy/prefetcher.hpp"\n')
        self.assertIn("layering", self.rules(found))

    def test_predictor_including_costben_and_util_is_fine(self) -> None:
        # Downward includes are the point: predictors speak the generic
        # candidate vocabulary and use util primitives.
        for rel in ("src/core/markov/good.cpp", "src/core/assoc/good.cpp"):
            found = self.lint_file(
                rel,
                '#include "core/costben/candidate.hpp"\n'
                '#include "trace/record.hpp"\n'
                '#include "util/flat_map.hpp"\n'
                '#include "util/lru_list.hpp"\n')
            self.assertEqual(self.rules(found), set())

    def test_policy_including_predictors_is_fine(self) -> None:
        # policy/ sits above all three predictor families.
        found = self.lint_file(
            "src/core/policy/good.cpp",
            '#include "core/tree/prefetch_tree.hpp"\n'
            '#include "core/markov/markov_model.hpp"\n'
            '#include "core/assoc/association_miner.hpp"\n'
            '#include "core/costben/equations.hpp"\n')
        self.assertEqual(self.rules(found), set())


class ObsLayeringRule(LintHarness):
    def test_obs_including_engine_fires(self) -> None:
        found = self.lint_file(
            "src/obs/bad.hpp",
            '#pragma once\n#include "engine/metrics.hpp"\n')
        self.assertIn("layering", self.rules(found))
        self.assertEqual(found[0].line, 2)

    def test_obs_including_core_fires(self) -> None:
        found = self.lint_file(
            "src/obs/bad.cpp", '#include "core/policy/context.hpp"\n')
        self.assertIn("layering", self.rules(found))

    def test_obs_including_trace_or_cache_fires(self) -> None:
        found = self.lint_file(
            "src/obs/bad2.cpp",
            '#include "trace/trace.hpp"\n#include "cache/lru_cache.hpp"\n')
        self.assertEqual(
            [v.line for v in found if v.rule == "layering"], [1, 2])

    def test_obs_including_util_and_obs_is_fine(self) -> None:
        found = self.lint_file(
            "src/obs/good.cpp",
            '#include "obs/counters.hpp"\n'
            '#include "util/histogram.hpp"\n'
            '#include <atomic>\n')
        self.assertEqual(self.rules(found), set())

    def test_engine_including_obs_is_fine(self) -> None:
        # Downward: engine sits above obs.
        found = self.lint_file(
            "src/engine/good_obs.cpp", '#include "obs/engine_obs.hpp"\n')
        self.assertEqual(self.rules(found), set())


class ServerLayeringRule(LintHarness):
    def test_server_including_core_fires(self) -> None:
        found = self.lint_file(
            "src/server/bad.cpp",
            '#include "core/policy/factory.hpp"\n')
        self.assertIn("layering", self.rules(found))

    def test_server_including_trace_cache_sim_fires(self) -> None:
        found = self.lint_file(
            "src/server/bad2.cpp",
            '#include "trace/trace.hpp"\n'
            '#include "cache/lru_cache.hpp"\n'
            '#include "sim/simulator.hpp"\n')
        self.assertEqual(
            [v.line for v in found if v.rule == "layering"], [1, 2, 3])

    def test_server_including_engine_obs_util_is_fine(self) -> None:
        found = self.lint_file(
            "src/server/good.cpp",
            '#include "engine/tenant_registry.hpp"\n'
            '#include "obs/prometheus.hpp"\n'
            '#include "util/net.hpp"\n'
            '#include "server/wire.hpp"\n')
        self.assertEqual(self.rules(found), set())

    def test_nothing_outside_server_includes_server(self) -> None:
        for rel in ("src/engine/bad_up.cpp", "src/sim/bad_up.cpp",
                    "src/util/bad_up.cpp"):
            found = self.lint_file(
                rel, '#include "server/session.hpp"\n')
            self.assertIn("layering", self.rules(found), rel)

    def test_server_mention_in_comment_is_fine(self) -> None:
        found = self.lint_file(
            "src/engine/good_comment.cpp",
            '// the server/ layer drives this registry\nint x;\n')
        self.assertEqual(self.rules(found), set())


class RawSocketRule(LintHarness):
    def test_socket_call_outside_net_dirs_fires(self) -> None:
        found = self.lint_file(
            "src/engine/bad_net.cpp",
            "int fd = socket(AF_INET, SOCK_STREAM, 0);\n")
        self.assertIn("raw-socket", self.rules(found))

    def test_poll_and_epoll_fire(self) -> None:
        found = self.lint_file(
            "src/sim/bad_net.cpp",
            "int n = poll(fds, 2, -1);\n"
            "int ep = epoll_create1(0);\n")
        self.assertEqual(
            [v.line for v in found if v.rule == "raw-socket"], [1, 2])

    def test_send_recv_fire(self) -> None:
        found = self.lint_file(
            "src/core/bad_net.cpp",
            "ssize_t n = send(fd, buf, len, 0);\n"
            "ssize_t m = recvmsg(fd, &msg, 0);\n")
        self.assertEqual(
            [v.line for v in found if v.rule == "raw-socket"], [1, 2])

    def test_syscalls_inside_util_and_server_are_fine(self) -> None:
        for rel in ("src/util/net_extra.cpp", "src/server/loop_extra.cpp"):
            found = self.lint_file(
                rel, "int fd = socket(AF_INET, SOCK_STREAM, 0);\n")
            self.assertNotIn("raw-socket", self.rules(found), rel)

    def test_member_and_qualified_calls_are_fine(self) -> None:
        found = self.lint_file(
            "src/engine/good_net.cpp",
            "ring.send(item);\n"
            "queue->send(item);\n"
            "auto s = util::net::connect_tcp(port);\n"
            "std::bind(&F::run, this);\n")
        self.assertEqual(self.rules(found), set())

    def test_similar_identifiers_are_fine(self) -> None:
        found = self.lint_file(
            "src/engine/good_net2.cpp",
            "resend(frame);\n"
            "disconnect(session);\n"
            "bool accepted = accept_batch(items);\n")
        self.assertEqual(self.rules(found), set())

    def test_mention_in_comment_is_fine(self) -> None:
        found = self.lint_file(
            "src/engine/good_net3.cpp",
            "// never call socket() or poll() here\nint x;\n")
        self.assertEqual(self.rules(found), set())

    def test_line_waiver_silences(self) -> None:
        found = self.lint_file(
            "src/engine/waived_net.cpp",
            "int n = poll(fds, 1, 0);  // lint: allow(raw-socket)\n")
        self.assertEqual(self.rules(found), set())


class ObsHotPathRules(LintHarness):
    def test_hot_container_in_obs_fires(self) -> None:
        found = self.lint_file(
            "src/obs/bad_map.cpp", "std::map<int, int> samples;\n")
        self.assertIn("hot-container", self.rules(found))

    def test_hot_alloc_in_obs_fires(self) -> None:
        found = self.lint_file(
            "src/obs/bad_alloc.cpp", "auto c = std::make_unique<Cell>();\n")
        self.assertIn("hot-alloc", self.rules(found))

    def test_plain_obs_code_is_fine(self) -> None:
        found = self.lint_file(
            "src/obs/good2.cpp",
            "std::vector<int> slots(32);\nslots.resize(64);\n")
        self.assertEqual(self.rules(found), set())


class Driver(LintHarness):
    def test_run_reports_all_violations_and_exits_one(self) -> None:
        self.write("src/core/bad.cpp", "int* p = new int[4];\n")
        self.write("src/cache/bad.cpp", "std::map<int, int> m;\n")
        self.write("src/util/good.hpp", "#pragma once\nint x;\n")
        self.assertEqual(lint.run(self.root), 1)

    def test_run_clean_tree_exits_zero(self) -> None:
        self.write("src/core/good.cpp", "int x = 1;\n")
        self.assertEqual(lint.run(self.root), 0)

    def test_run_without_src_exits_two(self) -> None:
        self.assertEqual(lint.run(self.root), 2)


if __name__ == "__main__":
    unittest.main()
