"""Self-tests for check_atomics.py.

Each rule gets a seeded-violation test (the rule must fire) and a
clean-code test (it must stay silent); the waiver grammar — including the
mandatory rationale on seq-cst and fence waivers — gets both flavours.
Runnable with pytest or `python3 -m unittest`; the built-in
`check_atomics.py --self-test` covers a core subset of the same cases so
CI can gate on the linter without a pytest install.
"""

from __future__ import annotations

import pathlib
import sys
import tempfile
import unittest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

import check_atomics as lint  # noqa: E402

# Role comment accepted everywhere a test needs a quiet declaration.
ROLES = "// writers: the owner thread  readers: any scraper\n"


class LintHarness(unittest.TestCase):
    def setUp(self) -> None:
        self._tmp = tempfile.TemporaryDirectory()
        self.root = pathlib.Path(self._tmp.name)
        self.addCleanup(self._tmp.cleanup)

    def lint_file(self, rel: str, text: str) -> list:
        path = self.root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
        return lint.check_file(self.root, path)

    def rules(self, violations: list) -> set:
        return {v.rule for v in violations}


class ExplicitOrderRule(LintHarness):
    def test_defaulted_load_fires(self) -> None:
        found = self.lint_file(
            "src/util/spsc_queue.hpp",
            ROLES + "std::atomic<int> head_{0};\n"
            "int f() { return head_.load(); }\n")
        self.assertIn("explicit-order", self.rules(found))
        self.assertEqual(
            [v.line for v in found if v.rule == "explicit-order"], [3])

    def test_defaulted_store_fires(self) -> None:
        found = self.lint_file(
            "src/util/spsc_queue.hpp",
            ROLES + "std::atomic<int> head_{0};\n"
            "void f() { head_.store(1); }\n")
        self.assertIn("explicit-order", self.rules(found))

    def test_defaulted_fetch_add_fires(self) -> None:
        found = self.lint_file(
            "src/util/phase.hpp",
            ROLES + "std::atomic<unsigned> count_{0};\n"
            "void f() { count_.fetch_add(1); }\n")
        self.assertIn("explicit-order", self.rules(found))

    def test_explicit_order_is_fine(self) -> None:
        found = self.lint_file(
            "src/util/spsc_queue.hpp",
            ROLES + "std::atomic<int> head_{0};\n"
            "int f() { return head_.load(std::memory_order_acquire); }\n")
        self.assertEqual(self.rules(found), set())

    def test_scoped_enum_spelling_is_fine(self) -> None:
        found = self.lint_file(
            "src/util/spsc_queue.hpp",
            ROLES + "std::atomic<int> head_{0};\n"
            "int f() { return head_.load(std::memory_order::acquire); }\n")
        self.assertEqual(self.rules(found), set())

    def test_order_on_continuation_line_is_fine(self) -> None:
        found = self.lint_file(
            "src/util/spsc_queue.hpp",
            ROLES + "std::atomic<int> head_{0};\n"
            "void f() {\n"
            "  head_.store(head_.load(std::memory_order_relaxed) + 1,\n"
            "              std::memory_order_relaxed);\n"
            "}\n")
        self.assertEqual(self.rules(found), set())

    def test_vector_clear_is_not_an_atomic_op(self) -> None:
        found = self.lint_file(
            "src/core/policy/clean.cpp",
            "void f(std::vector<int>& v) { v.clear(); }\n")
        self.assertEqual(self.rules(found), set())

    def test_stream_calls_in_allowlisted_file_are_fine(self) -> None:
        found = self.lint_file(
            "src/obs/trace_ring.cpp",
            "void f(std::vector<int>& slots) { slots.clear(); }\n")
        self.assertEqual(self.rules(found), set())

    def test_line_waiver_silences(self) -> None:
        found = self.lint_file(
            "src/util/spsc_queue.hpp",
            ROLES + "std::atomic<int> head_{0};\n"
            "int f() { return head_.load(); }"
            "  // lint: allow(explicit-order)\n")
        self.assertEqual(self.rules(found), set())


class SeqCstRule(LintHarness):
    def test_unwaived_seq_cst_fires(self) -> None:
        found = self.lint_file(
            "src/util/spsc_queue.hpp",
            ROLES + "std::atomic<int> head_{0};\n"
            "int f() { return head_.load(std::memory_order_seq_cst); }\n")
        self.assertIn("seq-cst", self.rules(found))

    def test_waiver_without_rationale_still_fires(self) -> None:
        found = self.lint_file(
            "src/util/spsc_queue.hpp",
            ROLES + "std::atomic<int> head_{0};\n"
            "// lint: allow(seq-cst)\n"
            "int f() { return head_.load(std::memory_order_seq_cst); }\n")
        self.assertIn("seq-cst", self.rules(found))

    def test_waiver_with_rationale_silences(self) -> None:
        found = self.lint_file(
            "src/util/spsc_queue.hpp",
            ROLES + "std::atomic<int> head_{0};\n"
            "// lint: allow(seq-cst): total order anchors the test oracle\n"
            "int f() { return head_.load(std::memory_order_seq_cst); }\n")
        self.assertEqual(self.rules(found), set())


class FenceRule(LintHarness):
    def test_unwaived_fence_fires(self) -> None:
        found = self.lint_file(
            "src/obs/counters.hpp",
            "void f() {\n"
            "  std::atomic_thread_fence(std::memory_order_release);\n"
            "}\n")
        self.assertIn("fence", self.rules(found))

    def test_signal_fence_fires_too(self) -> None:
        found = self.lint_file(
            "src/obs/counters.hpp",
            "void f() {\n"
            "  std::atomic_signal_fence(std::memory_order_acquire);\n"
            "}\n")
        self.assertIn("fence", self.rules(found))

    def test_waived_fence_with_pairing_story_silences(self) -> None:
        found = self.lint_file(
            "src/obs/counters.hpp",
            "void f() {\n"
            "  // lint: allow(fence): seqlock begin — pairs with acquire\n"
            "  std::atomic_thread_fence(std::memory_order_release);\n"
            "}\n")
        self.assertEqual(self.rules(found), set())

    def test_repo_seqlock_waivers_hold(self) -> None:
        """The real counters.hpp must stay clean (its fences are waived)."""
        repo_root = pathlib.Path(__file__).resolve().parents[2]
        path = repo_root / "src" / "obs" / "counters.hpp"
        self.assertTrue(path.is_file())
        found = lint.check_file(repo_root, path)
        self.assertEqual(self.rules(found), set())


class RoleCommentRule(LintHarness):
    def test_bare_declaration_fires(self) -> None:
        found = self.lint_file(
            "src/util/phase.hpp",
            "std::atomic<unsigned> count_{0};\n")
        self.assertIn("role-comment", self.rules(found))

    def test_comment_directly_above_silences(self) -> None:
        found = self.lint_file(
            "src/util/phase.hpp",
            ROLES + "std::atomic<unsigned> count_{0};\n")
        self.assertEqual(self.rules(found), set())

    def test_comment_split_across_lines_silences(self) -> None:
        found = self.lint_file(
            "src/util/phase.hpp",
            "// writers: the single writer_role holder (the engine\n"
            "// thread)  readers: any scraper thread\n"
            "std::atomic<unsigned> count_{0};\n")
        self.assertEqual(self.rules(found), set())

    def test_comment_covers_a_run_of_declarations(self) -> None:
        # One comment block may cover several adjacent cells, as in
        # util::PhaseCells — the window is six lines.
        found = self.lint_file(
            "src/util/phase.hpp",
            "// writers: the engine thread's stopwatch\n"
            "// readers: any stats-scraper thread\n"
            "std::atomic<unsigned> count_{0};\n"
            "std::atomic<unsigned> total_{0};\n"
            "std::atomic<unsigned> buckets_[4] = {};\n")
        self.assertEqual(self.rules(found), set())

    def test_comment_outside_window_fires(self) -> None:
        found = self.lint_file(
            "src/util/phase.hpp",
            "// writers: w  readers: r\n" + "int a;\n" * 7 +
            "std::atomic<unsigned> count_{0};\n")
        self.assertIn("role-comment", self.rules(found))

    def test_reference_parameter_is_not_a_declaration(self) -> None:
        found = self.lint_file(
            "src/util/phase.hpp",
            "static void bump(std::atomic<std::uint64_t>& cell) {\n"
            "  cell.store(cell.load(std::memory_order_relaxed) + 1,\n"
            "             std::memory_order_relaxed);\n"
            "}\n")
        self.assertEqual(self.rules(found), set())

    def test_pointer_parameter_is_not_a_declaration(self) -> None:
        found = self.lint_file(
            "src/util/phase.hpp",
            "void f(std::atomic<int>* cell);\n")
        self.assertEqual(self.rules(found), set())

    def test_role_guarded_field_without_comment_fires(self) -> None:
        # The batched hand-off's staging buffers are plain (non-atomic)
        # fields whose cross-thread contract is a role capability; they
        # carry the same documentation duty as atomics.
        found = self.lint_file(
            "src/engine/sharded_engine.hpp",
            "std::vector<int> staged PFP_GUARDED_BY(queue.producer_role);\n")
        self.assertIn("role-comment", self.rules(found))

    def test_role_guarded_field_with_comment_silences(self) -> None:
        found = self.lint_file(
            "src/engine/sharded_engine.hpp",
            "// writers: producer thread  readers: producer thread\n"
            "std::vector<int> staged PFP_GUARDED_BY(queue.producer_role);\n")
        self.assertEqual(self.rules(found), set())

    def test_bare_role_capability_spelling_fires_too(self) -> None:
        found = self.lint_file(
            "src/util/spsc_queue.hpp",
            "std::uint64_t head_cache_ PFP_GUARDED_BY(producer_role) = 0;\n")
        self.assertIn("role-comment", self.rules(found))

    def test_mutex_guarded_field_is_exempt(self) -> None:
        # Mutex-guarded fields document themselves through the mutex;
        # only role capabilities trigger the comment duty.
        found = self.lint_file(
            "src/util/thread_pool.hpp",
            "std::queue<int> queue_ PFP_GUARDED_BY(mutex_);\n")
        self.assertEqual(self.rules(found), set())

    def test_guarded_by_macro_definition_is_exempt(self) -> None:
        found = self.lint_file(
            "src/util/thread_annotations.hpp",
            "#define PFP_GUARDED_BY(x) "
            "PFP_THREAD_ANNOTATION__(guarded_by(x))\n")
        self.assertEqual(self.rules(found), set())


class AllowlistRule(LintHarness):
    def test_atomic_outside_allowlist_fires(self) -> None:
        found = self.lint_file(
            "src/core/policy/rogue.cpp",
            ROLES + "std::atomic<int> sneaky_{0};\n")
        self.assertIn("atomics-allowlist", self.rules(found))
        self.assertEqual(
            [v.line for v in found if v.rule == "atomics-allowlist"], [0])

    def test_atomic_in_allowlisted_file_is_fine(self) -> None:
        found = self.lint_file(
            "src/util/spsc_queue.hpp",
            ROLES + "std::atomic<int> head_{0};\n")
        self.assertEqual(self.rules(found), set())

    def test_file_waiver_silences(self) -> None:
        found = self.lint_file(
            "src/core/policy/waived.cpp",
            "// lint: allow-file(atomics-allowlist)\n" +
            ROLES + "std::atomic<int> ok_{0};\n")
        self.assertEqual(self.rules(found), set())

    def test_comment_mention_is_fine(self) -> None:
        found = self.lint_file(
            "src/core/policy/clean.cpp",
            "// std::atomic would be wrong here; see docs\nint x = 0;\n")
        self.assertEqual(self.rules(found), set())

    def test_string_literal_is_fine(self) -> None:
        found = self.lint_file(
            "src/core/policy/clean.cpp",
            'const char* kDoc = "std::atomic<int> x; x.load();";\n')
        self.assertEqual(self.rules(found), set())


class WholeTree(LintHarness):
    def test_repo_src_is_clean_in_regex_mode(self) -> None:
        repo_root = pathlib.Path(__file__).resolve().parents[2]
        violations = []
        for path in lint.iter_sources(repo_root):
            violations.extend(lint.check_file(repo_root, path))
        self.assertEqual([str(v) for v in violations], [])

    def test_self_test_passes(self) -> None:
        self.assertEqual(lint.run_self_test(), 0)


class AllowlistHygiene(LintHarness):
    def test_every_allowlisted_file_exists(self) -> None:
        repo_root = pathlib.Path(__file__).resolve().parents[2]
        for rel in lint.ATOMIC_FILES:
            self.assertTrue((repo_root / rel).is_file(),
                            f"stale allowlist entry: {rel}")


if __name__ == "__main__":
    unittest.main()
