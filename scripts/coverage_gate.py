#!/usr/bin/env python3
"""Line/branch coverage gate over gcov's JSON intermediate format.

Aggregates coverage of every ``src/`` file exercised by a ``--coverage``
build (``.gcda`` note files under the build directory), prints a
per-directory table, and compares the line percentage against the
recorded baseline in ``scripts/coverage_baseline.json``:

    cmake -B build-cov -DCMAKE_BUILD_TYPE=Debug \\
          -DCMAKE_CXX_FLAGS=--coverage -DCMAKE_EXE_LINKER_FLAGS=--coverage
    cmake --build build-cov -j && ctest --test-dir build-cov
    python3 scripts/coverage_gate.py --build-dir build-cov

The gate fails (exit 1) when line coverage drops more than ``tolerance``
percentage points below the baseline, or when any required subsystem
directory (``REQUIRED_DIRECTORIES``) contributes no measured lines at
all — a subsystem whose tests silently stop building would otherwise
just vanish from the aggregate, often *raising* the percentage.  The
baseline is a *measured* number — re-record it with ``--write-baseline``
after a PR that legitimately moves it (the diff then shows the movement
for review).

Deliberately builds on plain ``gcov --json-format`` so the gate runs
anywhere gcc does; the CI leg additionally renders a gcovr HTML report
as an artifact, but the pass/fail decision never depends on gcovr.

Exit status: 0 gate passed, 1 coverage regressed (or no data), 2 usage
error.  ``--self-test`` exercises the aggregation and comparison logic
on synthetic gcov documents.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import subprocess
import sys
from collections import defaultdict
from typing import Dict, Iterable, List, Tuple

# line key -> hit?  Keyed per resolved source path; a header inlined into
# many translation units is covered if ANY unit executed the line.
FileLines = Dict[int, bool]
FileBranches = Dict[Tuple[int, int], bool]

# Every library subsystem must contribute measured lines.  Presence is
# gated alongside the ratio because a subsystem that drops out of the
# build (or whose tests stop running) disappears from the denominator
# without necessarily moving the percentage down.
REQUIRED_DIRECTORIES = (
    "src/cache",
    "src/core",
    "src/engine",
    "src/obs",
    "src/server",
    "src/sim",
    "src/trace",
    "src/util",
)


def missing_directories(cov: "Coverage",
                        required: Iterable[str]) -> List[str]:
    present = {str(pathlib.PurePosixPath(rel).parent) for rel in cov.lines}
    return [d for d in required
            if not any(p == d or p.startswith(d + "/") for p in present)]


class Coverage:
    def __init__(self) -> None:
        self.lines: Dict[str, FileLines] = defaultdict(dict)
        self.branches: Dict[str, FileBranches] = defaultdict(dict)

    def add_document(self, doc: dict, root: pathlib.Path) -> None:
        """Folds one gcov JSON document (one .gcno's worth) in."""
        cwd = pathlib.Path(doc.get("current_working_directory", "."))
        for entry in doc.get("files", []):
            path = pathlib.Path(entry["file"])
            if not path.is_absolute():
                path = cwd / path
            try:
                rel = path.resolve().relative_to(root).as_posix()
            except ValueError:
                continue  # system/third-party header
            if not rel.startswith("src/"):
                continue  # gate on the library, not tests/tools
            lines = self.lines[rel]
            branches = self.branches[rel]
            for line in entry.get("lines", []):
                number = line["line_number"]
                lines[number] = lines.get(number, False) or line["count"] > 0
                for i, branch in enumerate(line.get("branches", [])):
                    key = (number, i)
                    branches[key] = (branches.get(key, False)
                                    or branch["count"] > 0)

    def line_percent(self) -> float:
        total = sum(len(f) for f in self.lines.values())
        hit = sum(sum(1 for h in f.values() if h)
                  for f in self.lines.values())
        return 100.0 * hit / total if total else 0.0

    def branch_percent(self) -> float:
        total = sum(len(f) for f in self.branches.values())
        hit = sum(sum(1 for h in f.values() if h)
                  for f in self.branches.values())
        return 100.0 * hit / total if total else 0.0

    def by_directory(self) -> List[Tuple[str, float, int]]:
        dirs: Dict[str, List[int]] = defaultdict(lambda: [0, 0])
        for rel, lines in self.lines.items():
            d = str(pathlib.PurePosixPath(rel).parent)
            dirs[d][0] += sum(1 for h in lines.values() if h)
            dirs[d][1] += len(lines)
        return sorted(
            (d, 100.0 * hit / total if total else 0.0, total)
            for d, (hit, total) in dirs.items()
        )


def gcov_documents(build_dir: pathlib.Path) -> Iterable[dict]:
    gcda = sorted(build_dir.rglob("*.gcda"))
    if not gcda:
        raise FileNotFoundError(
            f"no .gcda files under {build_dir} — build with --coverage and "
            "run the tests first")
    # Batched invocations keep this fast; gcov emits one JSON document per
    # input line on stdout with --stdout.
    batch = 64
    for i in range(0, len(gcda), batch):
        chunk = gcda[i:i + batch]
        result = subprocess.run(
            ["gcov", "--json-format", "--stdout", "--branch-probabilities"]
            + [str(p) for p in chunk],
            capture_output=True, text=True, check=False)
        for raw in result.stdout.splitlines():
            raw = raw.strip()
            if not raw:
                continue
            try:
                yield json.loads(raw)
            except json.JSONDecodeError:
                continue


def collect(build_dir: pathlib.Path, root: pathlib.Path) -> Coverage:
    cov = Coverage()
    for doc in gcov_documents(build_dir):
        cov.add_document(doc, root)
    return cov


def report(cov: Coverage) -> None:
    print(f"{'directory':<28} {'lines':>8} {'line %':>8}")
    print("-" * 46)
    for d, percent, total in cov.by_directory():
        print(f"{d:<28} {total:>8} {percent:>7.1f}%")
    print("-" * 46)
    print(f"{'total line coverage':<28} {'':>8} {cov.line_percent():>7.1f}%")
    print(f"{'total branch coverage':<28} {'':>8} "
          f"{cov.branch_percent():>7.1f}%")


def gate(cov: Coverage, baseline_path: pathlib.Path,
         required: Iterable[str] = REQUIRED_DIRECTORIES) -> int:
    if not cov.lines:
        print("coverage_gate: no src/ coverage data found", file=sys.stderr)
        return 1
    missing = missing_directories(cov, required)
    if missing:
        print("coverage_gate: FAIL — no coverage data for required "
              f"subsystem(s): {', '.join(missing)} (did their tests stop "
              "building or running?)", file=sys.stderr)
        return 1
    baseline = json.loads(baseline_path.read_text())
    floor = baseline["line_percent"] - baseline["tolerance_points"]
    current = cov.line_percent()
    print(f"\nbaseline {baseline['line_percent']:.2f}% "
          f"(tolerance {baseline['tolerance_points']:.2f} points, "
          f"floor {floor:.2f}%) — current {current:.2f}%")
    if current < floor:
        print("coverage_gate: FAIL — line coverage regressed below the "
              "recorded baseline", file=sys.stderr)
        return 1
    print("coverage_gate: OK")
    return 0


def write_baseline(cov: Coverage, baseline_path: pathlib.Path,
                   tolerance: float) -> None:
    baseline = {
        # Recorded from a real run; floor = line_percent - tolerance.
        "line_percent": round(cov.line_percent(), 2),
        "branch_percent": round(cov.branch_percent(), 2),
        "tolerance_points": tolerance,
    }
    baseline_path.write_text(json.dumps(baseline, indent=2) + "\n")
    print(f"baseline written to {baseline_path}: {baseline}")


def self_test() -> int:
    """Aggregation/decision checks on synthetic gcov documents."""
    root = pathlib.Path("/repo")

    def doc(file: str, counts: Dict[int, int]) -> dict:
        return {
            "current_working_directory": "/repo",
            "files": [{
                "file": file,
                "lines": [
                    {"line_number": n, "count": c,
                     "branches": ([{"count": c}] if n % 2 else [])}
                    for n, c in counts.items()
                ],
            }],
        }

    cov = Coverage()
    cov.add_document(doc("src/util/a.cpp", {1: 1, 2: 0, 3: 5, 4: 0}), root)
    assert abs(cov.line_percent() - 50.0) < 1e-9, cov.line_percent()

    # The same header seen from two TUs: union of hits, not double count.
    cov.add_document(doc("src/util/h.hpp", {10: 0, 11: 1}), root)
    cov.add_document(doc("src/util/h.hpp", {10: 3, 11: 0}), root)
    assert len(cov.lines["src/util/h.hpp"]) == 2
    assert all(cov.lines["src/util/h.hpp"].values())

    # Non-src and out-of-root files are excluded from the gate.
    cov.add_document(doc("tests/x_test.cpp", {1: 0}), root)
    cov.add_document(doc("/usr/include/vector", {1: 0}), root)
    assert set(cov.lines) == {"src/util/a.cpp", "src/util/h.hpp"}

    # Branch aggregation unions per (line, index) like lines do.
    assert cov.branch_percent() > 0.0

    # Gate decision: a synthetic drop below floor must fail.
    import tempfile
    with tempfile.TemporaryDirectory() as tmp:
        baseline = pathlib.Path(tmp) / "baseline.json"
        baseline.write_text(json.dumps(
            {"line_percent": 90.0, "branch_percent": 50.0,
             "tolerance_points": 0.25}))
        assert gate(cov, baseline, required=()) == 1  # ~66% < 89.75% floor
        baseline.write_text(json.dumps(
            {"line_percent": 60.0, "branch_percent": 50.0,
             "tolerance_points": 0.25}))
        assert gate(cov, baseline, required=()) == 0
        assert gate(Coverage(), baseline) == 1  # no data never passes

        # Subsystem presence: a required directory with zero measured
        # lines fails the gate even when the ratio clears the floor.
        assert gate(cov, baseline, required=("src/util",)) == 0
        assert gate(cov, baseline,
                    required=("src/util", "src/server")) == 1
        assert missing_directories(cov, REQUIRED_DIRECTORIES) == [
            d for d in REQUIRED_DIRECTORIES if d != "src/util"]
        # Nested files satisfy their subsystem prefix.
        cov.add_document(doc("src/server/detail/x.cpp", {1: 1}), root)
        assert "src/server" not in missing_directories(
            cov, REQUIRED_DIRECTORIES)

    print("coverage_gate: self-test OK")
    return 0


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="line-coverage regression gate (gcov JSON)")
    parser.add_argument("--build-dir", type=pathlib.Path,
                        default=pathlib.Path("build-cov"))
    parser.add_argument("--root", type=pathlib.Path,
                        default=pathlib.Path(__file__).resolve().parents[1])
    parser.add_argument("--baseline", type=pathlib.Path, default=None,
                        help="baseline JSON (default: scripts/"
                             "coverage_baseline.json under --root)")
    parser.add_argument("--write-baseline", action="store_true",
                        help="record the measured coverage as the new "
                             "baseline instead of gating")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed drop in percentage points when "
                             "recording a baseline (default 0.25)")
    parser.add_argument("--self-test", action="store_true")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()

    root = args.root.resolve()
    baseline_path = args.baseline or root / "scripts" / \
        "coverage_baseline.json"
    try:
        cov = collect(args.build_dir.resolve(), root)
    except FileNotFoundError as err:
        print(f"coverage_gate: error: {err}", file=sys.stderr)
        return 2
    report(cov)
    if args.write_baseline:
        write_baseline(cov, baseline_path, args.tolerance)
        return 0
    if not baseline_path.is_file():
        print(f"coverage_gate: error: no baseline at {baseline_path} "
              "(record one with --write-baseline)", file=sys.stderr)
        return 2
    return gate(cov, baseline_path)


if __name__ == "__main__":
    sys.exit(main())
