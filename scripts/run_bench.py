#!/usr/bin/env python3
"""Run the microbenchmarks and snapshot items/sec into BENCH_NN.json.

Runs build/bench/micro_benchmarks with --benchmark_format=json and distils
the result into a flat {benchmark name: items per second} snapshot at the
repo root, so every PR leaves a comparable perf-trajectory data point.

Usage:
    scripts/run_bench.py                   # writes BENCH_01.json (default)
    scripts/run_bench.py --out BENCH_02.json
    scripts/run_bench.py --filter 'BM_Simulator.*'
    scripts/run_bench.py --compare BENCH_01.json   # diff, don't write

Comparisons print per-benchmark speedup of the fresh run over the named
snapshot and exit non-zero if any benchmark regressed by more than
--tolerance (default 10%), which makes the script usable as a local
regression gate: scripts/run_bench.py --compare BENCH_01.json
"""

import argparse
import json
import pathlib
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_BINARY = REPO_ROOT / "build" / "bench" / "micro_benchmarks"
DEFAULT_OUT = REPO_ROOT / "BENCH_01.json"


def run_benchmarks(binary: pathlib.Path, bench_filter: str | None) -> dict:
    cmd = [str(binary), "--benchmark_format=json"]
    if bench_filter:
        cmd.append(f"--benchmark_filter={bench_filter}")
    proc = subprocess.run(cmd, capture_output=True, text=True, check=True)
    try:
        return json.loads(proc.stdout)
    except json.JSONDecodeError:
        # e.g. a --filter that matches nothing makes the binary print a
        # warning instead of JSON (and still exit 0).
        print(proc.stdout.strip() or proc.stderr.strip(), file=sys.stderr)
        sys.exit(2)


def snapshot(raw: dict) -> dict:
    """Flatten google-benchmark JSON to {name: items_per_second}."""
    out = {}
    for bench in raw.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        name = bench["name"]
        label = bench.get("label")
        if label:
            name = f"{name}[{label}]"
        ips = bench.get("items_per_second")
        if ips is None:
            # Fall back to inverse wall time so every benchmark lands in
            # the snapshot even if it forgot SetItemsProcessed.
            unit = {"ns": 1e-9, "us": 1e-6, "ms": 1e-3, "s": 1.0}[
                bench["time_unit"]
            ]
            ips = 1.0 / (bench["real_time"] * unit)
        out[name] = ips
    return out


def compare(fresh: dict, baseline_path: pathlib.Path, tolerance: float) -> int:
    if not baseline_path.exists():
        print(f"snapshot not found: {baseline_path}", file=sys.stderr)
        return 2
    try:
        payload = json.loads(baseline_path.read_text())
    except (json.JSONDecodeError, UnicodeDecodeError, OSError) as err:
        print(f"snapshot {baseline_path} is not readable JSON: {err}",
              file=sys.stderr)
        return 2
    baseline = payload.get("items_per_second")
    if not isinstance(baseline, dict):
        print(f"snapshot {baseline_path} has no 'items_per_second' table; "
              f"was it written by this script?", file=sys.stderr)
        return 2
    regressions = []
    width = max(map(len, fresh), default=0)
    for name, ips in sorted(fresh.items()):
        base = baseline.get(name)
        if base is None:
            print(f"{name:{width}}  {ips:>14,.0f}  (new benchmark)")
            continue
        ratio = ips / base if base else float("inf")
        marker = ""
        if ratio < 1.0 - tolerance:
            marker = "  << REGRESSION"
            regressions.append(name)
        print(f"{name:{width}}  {ips:>14,.0f}  vs {base:>14,.0f}"
              f"  ({ratio:6.2%}){marker}")
    if regressions:
        print(f"\n{len(regressions)} benchmark(s) regressed more than "
              f"{tolerance:.0%}: {', '.join(regressions)}")
        return 1
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--binary", type=pathlib.Path, default=DEFAULT_BINARY,
                        help="micro_benchmarks binary (default: %(default)s)")
    parser.add_argument("--out", type=pathlib.Path, default=DEFAULT_OUT,
                        help="snapshot to write (default: %(default)s)")
    parser.add_argument("--filter", default=None,
                        help="google-benchmark regexp filter")
    parser.add_argument("--compare", type=pathlib.Path, default=None,
                        help="compare against this snapshot instead of "
                             "writing one")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="allowed fractional slowdown before --compare "
                             "fails (default: %(default)s)")
    args = parser.parse_args()

    if not args.binary.exists():
        print(f"benchmark binary not found: {args.binary}\n"
              f"build it first: cmake -B build -S . && "
              f"cmake --build build -j", file=sys.stderr)
        return 2

    raw = run_benchmarks(args.binary, args.filter)
    fresh = snapshot(raw)
    if not fresh:
        print("no benchmarks ran (bad --filter?)", file=sys.stderr)
        return 2

    if args.compare is not None:
        return compare(fresh, args.compare, args.tolerance)

    payload = {
        "context": {
            "host": raw.get("context", {}).get("host_name", "unknown"),
            "num_cpus": raw.get("context", {}).get("num_cpus"),
            "cpu_mhz": raw.get("context", {}).get("mhz_per_cpu"),
            "library_build_type":
                raw.get("context", {}).get("library_build_type"),
            "date": raw.get("context", {}).get("date"),
        },
        "items_per_second": fresh,
    }
    args.out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.out} ({len(fresh)} benchmarks)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
