#!/usr/bin/env python3
"""Run the microbenchmarks and snapshot items/sec into BENCH_NN.json.

Runs build/bench/micro_benchmarks with --benchmark_format=json and distils
the result into a flat {benchmark name: items per second} snapshot at the
repo root, so every PR leaves a comparable perf-trajectory data point.
The snapshot context records host, CPU, git SHA and CMake build type so a
later reader can judge comparability.

Usage:
    scripts/run_bench.py                   # writes BENCH_01.json (default)
    scripts/run_bench.py --out BENCH_02.json
    scripts/run_bench.py --filter 'BM_Simulator.*'
    scripts/run_bench.py --min-time 1x     # quick smoke pass
    scripts/run_bench.py --compare BENCH_01.json   # diff, don't write
    scripts/run_bench.py --self-test       # exercise the compare logic

Comparisons print per-benchmark speedup of the fresh run over the named
snapshot and exit non-zero if any benchmark regressed by more than
--tolerance (default 10%), which makes the script usable as a local
regression gate: scripts/run_bench.py --compare BENCH_01.json
With --warn-only the comparison still prints every regression but always
exits 0 on regressions (config errors still exit 2) — for shared-runner
legs like the nightly, where timings inform but must not block.

Benchmarks missing from the baseline are warned about and skipped (new
benchmarks must be able to land without tripping the gate); a missing or
malformed baseline file still exits 2.
"""

import argparse
import json
import pathlib
import subprocess
import sys
import tempfile

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_BINARY = REPO_ROOT / "build" / "bench" / "micro_benchmarks"
DEFAULT_OUT = REPO_ROOT / "BENCH_01.json"


def run_benchmarks(binary: pathlib.Path, bench_filter: str | None,
                   min_time: str | None) -> dict:
    cmd = [str(binary), "--benchmark_format=json"]
    if bench_filter:
        cmd.append(f"--benchmark_filter={bench_filter}")
    if min_time:
        cmd.append(f"--benchmark_min_time={min_time}")
    proc = subprocess.run(cmd, capture_output=True, text=True, check=True)
    try:
        return json.loads(proc.stdout)
    except json.JSONDecodeError:
        # e.g. a --filter that matches nothing makes the binary print a
        # warning instead of JSON (and still exit 0).
        print(proc.stdout.strip() or proc.stderr.strip(), file=sys.stderr)
        sys.exit(2)


def snapshot(raw: dict) -> dict:
    """Flatten google-benchmark JSON to {name: items_per_second}."""
    out = {}
    for bench in raw.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        name = bench["name"]
        label = bench.get("label")
        if label:
            name = f"{name}[{label}]"
        ips = bench.get("items_per_second")
        if ips is None:
            # Fall back to inverse wall time so every benchmark lands in
            # the snapshot even if it forgot SetItemsProcessed.
            unit = {"ns": 1e-9, "us": 1e-6, "ms": 1e-3, "s": 1.0}[
                bench["time_unit"]
            ]
            ips = 1.0 / (bench["real_time"] * unit)
        out[name] = ips
    return out


def git_sha() -> str:
    try:
        proc = subprocess.run(["git", "rev-parse", "HEAD"], cwd=REPO_ROOT,
                              capture_output=True, text=True, timeout=10)
    except OSError:
        return "unknown"
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else "unknown"


def cmake_build_type(binary: pathlib.Path) -> str:
    """CMAKE_BUILD_TYPE from the build tree the binary came out of."""
    for parent in binary.resolve().parents:
        cache = parent / "CMakeCache.txt"
        if not cache.is_file():
            continue
        try:
            for line in cache.read_text().splitlines():
                if line.startswith("CMAKE_BUILD_TYPE:"):
                    value = line.split("=", 1)[-1].strip()
                    return value or "unknown"
        except OSError:
            break
        break
    return "unknown"


def compare(fresh: dict, baseline_path: pathlib.Path, tolerance: float,
            warn_only: bool = False) -> int:
    if not baseline_path.exists():
        print(f"snapshot not found: {baseline_path}", file=sys.stderr)
        return 2
    try:
        payload = json.loads(baseline_path.read_text())
    except (json.JSONDecodeError, UnicodeDecodeError, OSError) as err:
        print(f"snapshot {baseline_path} is not readable JSON: {err}",
              file=sys.stderr)
        return 2
    baseline = payload.get("items_per_second") if isinstance(payload, dict) \
        else None
    if not isinstance(baseline, dict):
        print(f"snapshot {baseline_path} has no 'items_per_second' table; "
              f"was it written by this script?", file=sys.stderr)
        return 2
    regressions = []
    skipped = []
    width = max(map(len, fresh), default=0)
    for name, ips in sorted(fresh.items()):
        base = baseline.get(name)
        if not isinstance(base, (int, float)) or base <= 0:
            # New benchmarks (or junk baseline rows) must not trip the
            # gate; they simply have no baseline to regress against.
            skipped.append(name)
            print(f"{name:{width}}  {ips:>14,.0f}  (not in baseline; "
                  f"skipped)")
            continue
        ratio = ips / base
        marker = ""
        if ratio < 1.0 - tolerance:
            marker = "  << REGRESSION"
            regressions.append(name)
        print(f"{name:{width}}  {ips:>14,.0f}  vs {base:>14,.0f}"
              f"  ({ratio:6.2%}){marker}")
    if skipped:
        print(f"warning: {len(skipped)} benchmark(s) not in "
              f"{baseline_path.name}, skipped: {', '.join(skipped)}",
              file=sys.stderr)
    if regressions:
        print(f"\n{len(regressions)} benchmark(s) regressed more than "
              f"{tolerance:.0%}: {', '.join(regressions)}")
        if warn_only:
            print("(--warn-only: reporting, not failing)")
            return 0
        return 1
    return 0


def self_test() -> int:
    """Exercise compare()'s decision paths without the benchmark binary."""
    fresh = {"BM_A": 100.0, "BM_New": 5.0}
    failures = []

    def check(name: str, got: int, want: int) -> None:
        status = "ok" if got == want else f"FAIL (exit {got}, want {want})"
        print(f"self-test: {name}: {status}")
        if got != want:
            failures.append(name)

    with tempfile.TemporaryDirectory() as tmp:
        tmpdir = pathlib.Path(tmp)

        check("missing baseline file exits 2",
              compare(fresh, tmpdir / "absent.json", 0.10), 2)

        malformed = tmpdir / "malformed.json"
        malformed.write_text("{not json")
        check("malformed baseline exits 2", compare(fresh, malformed, 0.10), 2)

        wrong_shape = tmpdir / "wrong_shape.json"
        wrong_shape.write_text(json.dumps({"benchmarks": []}))
        check("baseline without items_per_second exits 2",
              compare(fresh, wrong_shape, 0.10), 2)

        partial = tmpdir / "partial.json"
        partial.write_text(json.dumps({"items_per_second": {"BM_A": 99.0}}))
        check("benchmark absent from baseline is skipped, exit 0",
              compare(fresh, partial, 0.10), 0)

        regressed = tmpdir / "regressed.json"
        regressed.write_text(json.dumps({"items_per_second": {"BM_A": 200.0}}))
        check("regression beyond tolerance exits 1",
              compare(fresh, regressed, 0.10), 1)

        check("warn-only reports the regression but exits 0",
              compare(fresh, regressed, 0.10, warn_only=True), 0)

        check("warn-only still exits 2 on a missing baseline",
              compare(fresh, tmpdir / "absent.json", 0.10, warn_only=True), 2)

        within = tmpdir / "within.json"
        within.write_text(json.dumps({"items_per_second": {"BM_A": 105.0}}))
        check("slowdown within tolerance exits 0",
              compare(fresh, within, 0.10), 0)

    if failures:
        print(f"self-test: {len(failures)} failure(s)", file=sys.stderr)
        return 1
    print("self-test: all checks passed")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--binary", type=pathlib.Path, default=DEFAULT_BINARY,
                        help="micro_benchmarks binary (default: %(default)s)")
    parser.add_argument("--out", type=pathlib.Path, default=DEFAULT_OUT,
                        help="snapshot to write (default: %(default)s)")
    parser.add_argument("--filter", default=None,
                        help="google-benchmark regexp filter")
    parser.add_argument("--min-time", default=None,
                        help="forwarded as --benchmark_min_time "
                             "(e.g. '1x' for a smoke pass)")
    parser.add_argument("--compare", type=pathlib.Path, default=None,
                        help="compare against this snapshot instead of "
                             "writing one")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="allowed fractional slowdown before --compare "
                             "fails (default: %(default)s)")
    parser.add_argument("--warn-only", action="store_true",
                        help="with --compare: report regressions but exit 0 "
                             "(shared-runner legs where timings inform, "
                             "not block)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the script's own compare-logic checks "
                             "and exit")
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    if not args.binary.exists():
        print(f"benchmark binary not found: {args.binary}\n"
              f"build it first: cmake -B build -S . && "
              f"cmake --build build -j", file=sys.stderr)
        return 2

    raw = run_benchmarks(args.binary, args.filter, args.min_time)
    fresh = snapshot(raw)
    if not fresh:
        print("no benchmarks ran (bad --filter?)", file=sys.stderr)
        return 2

    if args.compare is not None:
        return compare(fresh, args.compare, args.tolerance, args.warn_only)

    payload = {
        "context": {
            "host": raw.get("context", {}).get("host_name", "unknown"),
            "num_cpus": raw.get("context", {}).get("num_cpus"),
            "cpu_mhz": raw.get("context", {}).get("mhz_per_cpu"),
            "library_build_type":
                raw.get("context", {}).get("library_build_type"),
            "cmake_build_type": cmake_build_type(args.binary),
            "git_sha": git_sha(),
            "date": raw.get("context", {}).get("date"),
        },
        "items_per_second": fresh,
    }
    args.out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.out} ({len(fresh)} benchmarks)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
