#!/usr/bin/env python3
"""Plot pfp bench CSVs (written with --csv) as paper-style figures.

Usage:
    bench/fig06_miss_rates --csv fig6.csv
    scripts/plot_results.py fig6.csv --metric miss_rate --out fig6.png

One line per (trace, policy) series, cache_blocks on a log-2 x axis.
Requires matplotlib; everything else in this repository is offline-safe
without it.
"""
import argparse
import collections
import csv
import sys


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("csv_path")
    parser.add_argument("--metric", default="miss_rate",
                        help="column to plot (default: miss_rate)")
    parser.add_argument("--x", default="cache_blocks",
                        help="x-axis column (default: cache_blocks)")
    parser.add_argument("--out", default=None,
                        help="output image (default: show interactively)")
    args = parser.parse_args()

    try:
        import matplotlib
        if args.out:
            matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        print("matplotlib is required for plotting", file=sys.stderr)
        return 1

    series = collections.defaultdict(list)
    with open(args.csv_path, newline="") as handle:
        for row in csv.DictReader(handle):
            key = (row["trace"], row["policy"])
            series[key].append((float(row[args.x]), float(row[args.metric])))

    traces = sorted({trace for trace, _ in series})
    fig, axes = plt.subplots(1, len(traces),
                             figsize=(4 * len(traces), 3.2), squeeze=False)
    for ax, trace in zip(axes[0], traces):
        for (t, policy), points in sorted(series.items()):
            if t != trace:
                continue
            points.sort()
            ax.plot([x for x, _ in points], [y for _, y in points],
                    marker="o", label=policy)
        ax.set_title(trace)
        ax.set_xscale("log", base=2)
        ax.set_xlabel(args.x)
        ax.set_ylabel(args.metric)
        ax.legend(fontsize=7)
        ax.grid(True, alpha=0.3)
    fig.tight_layout()
    if args.out:
        fig.savefig(args.out, dpi=150)
        print(f"wrote {args.out}")
    else:
        plt.show()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
