#!/usr/bin/env python3
"""Classify a changed-path list as ``docs-only`` or ``code``.

The CI ``changes`` job feeds ``git diff --name-only`` through this to
decide whether the slow timing legs (coverage, bench-smoke) can be
skipped for the run.  A change is docs-only when every touched path is
documentation: anything under ``docs/`` or any ``*.md`` file anywhere.
Everything ambiguous errs toward running the legs:

* an empty list (unresolvable diff base, force-push) is ``code``;
* one non-doc path among a hundred doc paths makes the whole change
  ``code``.

Usage::

    git diff --name-only "$base" "$head" | python3 scripts/classify_paths.py

Prints exactly one of ``docs-only`` / ``code`` on stdout and exits 0;
``--self-test`` exercises the decision table.
"""

from __future__ import annotations

import argparse
import sys
from typing import Iterable, List


def is_doc_path(path: str) -> bool:
    path = path.strip().lstrip("./")
    return path.startswith("docs/") or path.endswith(".md")


def classify(paths: Iterable[str]) -> str:
    cleaned = [p.strip() for p in paths if p.strip()]
    if not cleaned:
        return "code"  # no diff information never skips anything
    if all(is_doc_path(p) for p in cleaned):
        return "docs-only"
    return "code"


def self_test() -> int:
    cases = [
        (["docs/server.md"], "docs-only"),
        (["README.md", "docs/perf.md", "CHANGES.md"], "docs-only"),
        (["docs/diagrams/frame.svg"], "docs-only"),  # assets under docs/
        ([], "code"),
        ([" ", ""], "code"),
        (["src/server/wire.cpp"], "code"),
        (["docs/server.md", "src/server/wire.cpp"], "code"),
        (["docs/server.md", ".github/workflows/ci.yml"], "code"),
        (["mdbook.toml"], "code"),       # .md must be the extension
        (["src/README.md"], "docs-only"),
        (["docsx/guide.txt"], "code"),   # docs/ must be the directory
    ]
    for paths, want in cases:
        got = classify(paths)
        assert got == want, f"classify({paths!r}) = {got!r}, want {want!r}"
    print("classify_paths: self-test OK")
    return 0


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="docs-only / code classifier for CI path filtering")
    parser.add_argument("--self-test", action="store_true")
    args = parser.parse_args(argv)
    if args.self_test:
        return self_test()
    print(classify(sys.stdin.read().splitlines()))
    return 0


if __name__ == "__main__":
    sys.exit(main())
