# Empty dependencies file for file_server_sim.
# This may be replaced when dependencies are built.
