file(REMOVE_RECURSE
  "CMakeFiles/file_server_sim.dir/file_server_sim.cpp.o"
  "CMakeFiles/file_server_sim.dir/file_server_sim.cpp.o.d"
  "file_server_sim"
  "file_server_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/file_server_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
