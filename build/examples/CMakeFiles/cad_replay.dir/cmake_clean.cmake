file(REMOVE_RECURSE
  "CMakeFiles/cad_replay.dir/cad_replay.cpp.o"
  "CMakeFiles/cad_replay.dir/cad_replay.cpp.o.d"
  "cad_replay"
  "cad_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cad_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
