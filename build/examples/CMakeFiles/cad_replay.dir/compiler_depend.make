# Empty compiler generated dependencies file for cad_replay.
# This may be replaced when dependencies are built.
