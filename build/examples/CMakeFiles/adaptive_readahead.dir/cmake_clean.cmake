file(REMOVE_RECURSE
  "CMakeFiles/adaptive_readahead.dir/adaptive_readahead.cpp.o"
  "CMakeFiles/adaptive_readahead.dir/adaptive_readahead.cpp.o.d"
  "adaptive_readahead"
  "adaptive_readahead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_readahead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
