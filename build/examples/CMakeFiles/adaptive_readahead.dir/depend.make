# Empty dependencies file for adaptive_readahead.
# This may be replaced when dependencies are built.
