# Empty compiler generated dependencies file for online_prefetcher.
# This may be replaced when dependencies are built.
