file(REMOVE_RECURSE
  "CMakeFiles/online_prefetcher.dir/online_prefetcher.cpp.o"
  "CMakeFiles/online_prefetcher.dir/online_prefetcher.cpp.o.d"
  "online_prefetcher"
  "online_prefetcher.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/online_prefetcher.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
