# Empty dependencies file for fig12_hitrate_vs_tcpu.
# This may be replaced when dependencies are built.
