file(REMOVE_RECURSE
  "CMakeFiles/fig12_hitrate_vs_tcpu.dir/fig12_hitrate_vs_tcpu.cpp.o"
  "CMakeFiles/fig12_hitrate_vs_tcpu.dir/fig12_hitrate_vs_tcpu.cpp.o.d"
  "fig12_hitrate_vs_tcpu"
  "fig12_hitrate_vs_tcpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_hitrate_vs_tcpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
