# Empty dependencies file for fig11_s_vs_tcpu.
# This may be replaced when dependencies are built.
