file(REMOVE_RECURSE
  "CMakeFiles/fig11_s_vs_tcpu.dir/fig11_s_vs_tcpu.cpp.o"
  "CMakeFiles/fig11_s_vs_tcpu.dir/fig11_s_vs_tcpu.cpp.o.d"
  "fig11_s_vs_tcpu"
  "fig11_s_vs_tcpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_s_vs_tcpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
