# Empty dependencies file for fig14_predictable_uncached.
# This may be replaced when dependencies are built.
