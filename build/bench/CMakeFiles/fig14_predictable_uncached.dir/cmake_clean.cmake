file(REMOVE_RECURSE
  "CMakeFiles/fig14_predictable_uncached.dir/fig14_predictable_uncached.cpp.o"
  "CMakeFiles/fig14_predictable_uncached.dir/fig14_predictable_uncached.cpp.o.d"
  "fig14_predictable_uncached"
  "fig14_predictable_uncached.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_predictable_uncached.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
