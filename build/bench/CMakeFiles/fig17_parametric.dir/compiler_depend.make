# Empty compiler generated dependencies file for fig17_parametric.
# This may be replaced when dependencies are built.
