file(REMOVE_RECURSE
  "CMakeFiles/fig17_parametric.dir/fig17_parametric.cpp.o"
  "CMakeFiles/fig17_parametric.dir/fig17_parametric.cpp.o.d"
  "fig17_parametric"
  "fig17_parametric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_parametric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
