file(REMOVE_RECURSE
  "CMakeFiles/tab03_lvc_revisit.dir/tab03_lvc_revisit.cpp.o"
  "CMakeFiles/tab03_lvc_revisit.dir/tab03_lvc_revisit.cpp.o.d"
  "tab03_lvc_revisit"
  "tab03_lvc_revisit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab03_lvc_revisit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
