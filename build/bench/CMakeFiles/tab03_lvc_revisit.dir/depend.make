# Empty dependencies file for tab03_lvc_revisit.
# This may be replaced when dependencies are built.
