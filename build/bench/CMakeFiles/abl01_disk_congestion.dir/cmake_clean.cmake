file(REMOVE_RECURSE
  "CMakeFiles/abl01_disk_congestion.dir/abl01_disk_congestion.cpp.o"
  "CMakeFiles/abl01_disk_congestion.dir/abl01_disk_congestion.cpp.o.d"
  "abl01_disk_congestion"
  "abl01_disk_congestion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl01_disk_congestion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
