# Empty dependencies file for abl01_disk_congestion.
# This may be replaced when dependencies are built.
