# Empty compiler generated dependencies file for fig15_perfect_selector.
# This may be replaced when dependencies are built.
