file(REMOVE_RECURSE
  "CMakeFiles/fig15_perfect_selector.dir/fig15_perfect_selector.cpp.o"
  "CMakeFiles/fig15_perfect_selector.dir/fig15_perfect_selector.cpp.o.d"
  "fig15_perfect_selector"
  "fig15_perfect_selector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_perfect_selector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
