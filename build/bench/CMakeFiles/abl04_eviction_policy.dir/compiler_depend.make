# Empty compiler generated dependencies file for abl04_eviction_policy.
# This may be replaced when dependencies are built.
