file(REMOVE_RECURSE
  "CMakeFiles/abl04_eviction_policy.dir/abl04_eviction_policy.cpp.o"
  "CMakeFiles/abl04_eviction_policy.dir/abl04_eviction_policy.cpp.o.d"
  "abl04_eviction_policy"
  "abl04_eviction_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl04_eviction_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
