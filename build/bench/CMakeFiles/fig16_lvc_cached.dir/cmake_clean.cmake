file(REMOVE_RECURSE
  "CMakeFiles/fig16_lvc_cached.dir/fig16_lvc_cached.cpp.o"
  "CMakeFiles/fig16_lvc_cached.dir/fig16_lvc_cached.cpp.o.d"
  "fig16_lvc_cached"
  "fig16_lvc_cached.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_lvc_cached.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
