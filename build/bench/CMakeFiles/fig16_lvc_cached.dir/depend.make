# Empty dependencies file for fig16_lvc_cached.
# This may be replaced when dependencies are built.
