file(REMOVE_RECURSE
  "libpfp_bench_common.a"
)
