# Empty dependencies file for pfp_bench_common.
# This may be replaced when dependencies are built.
