file(REMOVE_RECURSE
  "CMakeFiles/pfp_bench_common.dir/common.cpp.o"
  "CMakeFiles/pfp_bench_common.dir/common.cpp.o.d"
  "libpfp_bench_common.a"
  "libpfp_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfp_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
