file(REMOVE_RECURSE
  "CMakeFiles/abl05_adaptive_precision.dir/abl05_adaptive_precision.cpp.o"
  "CMakeFiles/abl05_adaptive_precision.dir/abl05_adaptive_precision.cpp.o.d"
  "abl05_adaptive_precision"
  "abl05_adaptive_precision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl05_adaptive_precision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
