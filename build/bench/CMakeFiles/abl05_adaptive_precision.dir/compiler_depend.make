# Empty compiler generated dependencies file for abl05_adaptive_precision.
# This may be replaced when dependencies are built.
