file(REMOVE_RECURSE
  "CMakeFiles/fig13_tree_memory.dir/fig13_tree_memory.cpp.o"
  "CMakeFiles/fig13_tree_memory.dir/fig13_tree_memory.cpp.o.d"
  "fig13_tree_memory"
  "fig13_tree_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_tree_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
