# Empty dependencies file for fig13_tree_memory.
# This may be replaced when dependencies are built.
