# Empty compiler generated dependencies file for tab01_traces.
# This may be replaced when dependencies are built.
