file(REMOVE_RECURSE
  "CMakeFiles/tab01_traces.dir/tab01_traces.cpp.o"
  "CMakeFiles/tab01_traces.dir/tab01_traces.cpp.o.d"
  "tab01_traces"
  "tab01_traces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab01_traces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
