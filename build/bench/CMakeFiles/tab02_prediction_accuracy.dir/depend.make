# Empty dependencies file for tab02_prediction_accuracy.
# This may be replaced when dependencies are built.
