# Empty dependencies file for fig09_pf_hit_rate.
# This may be replaced when dependencies are built.
