# Empty dependencies file for abl03_refetch_distance.
# This may be replaced when dependencies are built.
