file(REMOVE_RECURSE
  "CMakeFiles/abl03_refetch_distance.dir/abl03_refetch_distance.cpp.o"
  "CMakeFiles/abl03_refetch_distance.dir/abl03_refetch_distance.cpp.o.d"
  "abl03_refetch_distance"
  "abl03_refetch_distance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl03_refetch_distance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
