# Empty compiler generated dependencies file for tab04_threshold_sweep.
# This may be replaced when dependencies are built.
