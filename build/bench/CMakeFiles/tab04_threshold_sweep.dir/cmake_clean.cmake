file(REMOVE_RECURSE
  "CMakeFiles/tab04_threshold_sweep.dir/tab04_threshold_sweep.cpp.o"
  "CMakeFiles/tab04_threshold_sweep.dir/tab04_threshold_sweep.cpp.o.d"
  "tab04_threshold_sweep"
  "tab04_threshold_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab04_threshold_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
