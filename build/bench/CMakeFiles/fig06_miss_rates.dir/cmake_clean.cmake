file(REMOVE_RECURSE
  "CMakeFiles/fig06_miss_rates.dir/fig06_miss_rates.cpp.o"
  "CMakeFiles/fig06_miss_rates.dir/fig06_miss_rates.cpp.o.d"
  "fig06_miss_rates"
  "fig06_miss_rates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_miss_rates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
