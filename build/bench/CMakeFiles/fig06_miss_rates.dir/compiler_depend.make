# Empty compiler generated dependencies file for fig06_miss_rates.
# This may be replaced when dependencies are built.
