file(REMOVE_RECURSE
  "CMakeFiles/fig07_already_cached.dir/fig07_already_cached.cpp.o"
  "CMakeFiles/fig07_already_cached.dir/fig07_already_cached.cpp.o.d"
  "fig07_already_cached"
  "fig07_already_cached.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_already_cached.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
