# Empty compiler generated dependencies file for fig07_already_cached.
# This may be replaced when dependencies are built.
