file(REMOVE_RECURSE
  "CMakeFiles/abl02_predictor_duel.dir/abl02_predictor_duel.cpp.o"
  "CMakeFiles/abl02_predictor_duel.dir/abl02_predictor_duel.cpp.o.d"
  "abl02_predictor_duel"
  "abl02_predictor_duel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl02_predictor_duel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
