# Empty compiler generated dependencies file for abl02_predictor_duel.
# This may be replaced when dependencies are built.
