file(REMOVE_RECURSE
  "CMakeFiles/pfp_trace.dir/trace/characterize.cpp.o"
  "CMakeFiles/pfp_trace.dir/trace/characterize.cpp.o.d"
  "CMakeFiles/pfp_trace.dir/trace/gen_cad.cpp.o"
  "CMakeFiles/pfp_trace.dir/trace/gen_cad.cpp.o.d"
  "CMakeFiles/pfp_trace.dir/trace/gen_fileserver.cpp.o"
  "CMakeFiles/pfp_trace.dir/trace/gen_fileserver.cpp.o.d"
  "CMakeFiles/pfp_trace.dir/trace/gen_sequential.cpp.o"
  "CMakeFiles/pfp_trace.dir/trace/gen_sequential.cpp.o.d"
  "CMakeFiles/pfp_trace.dir/trace/gen_timeshare.cpp.o"
  "CMakeFiles/pfp_trace.dir/trace/gen_timeshare.cpp.o.d"
  "CMakeFiles/pfp_trace.dir/trace/l1_filter.cpp.o"
  "CMakeFiles/pfp_trace.dir/trace/l1_filter.cpp.o.d"
  "CMakeFiles/pfp_trace.dir/trace/reader.cpp.o"
  "CMakeFiles/pfp_trace.dir/trace/reader.cpp.o.d"
  "CMakeFiles/pfp_trace.dir/trace/trace.cpp.o"
  "CMakeFiles/pfp_trace.dir/trace/trace.cpp.o.d"
  "CMakeFiles/pfp_trace.dir/trace/workloads.cpp.o"
  "CMakeFiles/pfp_trace.dir/trace/workloads.cpp.o.d"
  "CMakeFiles/pfp_trace.dir/trace/writer.cpp.o"
  "CMakeFiles/pfp_trace.dir/trace/writer.cpp.o.d"
  "libpfp_trace.a"
  "libpfp_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfp_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
