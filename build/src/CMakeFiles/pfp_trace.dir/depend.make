# Empty dependencies file for pfp_trace.
# This may be replaced when dependencies are built.
