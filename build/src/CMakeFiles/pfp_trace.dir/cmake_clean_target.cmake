file(REMOVE_RECURSE
  "libpfp_trace.a"
)
