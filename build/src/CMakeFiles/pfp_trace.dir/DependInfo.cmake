
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/characterize.cpp" "src/CMakeFiles/pfp_trace.dir/trace/characterize.cpp.o" "gcc" "src/CMakeFiles/pfp_trace.dir/trace/characterize.cpp.o.d"
  "/root/repo/src/trace/gen_cad.cpp" "src/CMakeFiles/pfp_trace.dir/trace/gen_cad.cpp.o" "gcc" "src/CMakeFiles/pfp_trace.dir/trace/gen_cad.cpp.o.d"
  "/root/repo/src/trace/gen_fileserver.cpp" "src/CMakeFiles/pfp_trace.dir/trace/gen_fileserver.cpp.o" "gcc" "src/CMakeFiles/pfp_trace.dir/trace/gen_fileserver.cpp.o.d"
  "/root/repo/src/trace/gen_sequential.cpp" "src/CMakeFiles/pfp_trace.dir/trace/gen_sequential.cpp.o" "gcc" "src/CMakeFiles/pfp_trace.dir/trace/gen_sequential.cpp.o.d"
  "/root/repo/src/trace/gen_timeshare.cpp" "src/CMakeFiles/pfp_trace.dir/trace/gen_timeshare.cpp.o" "gcc" "src/CMakeFiles/pfp_trace.dir/trace/gen_timeshare.cpp.o.d"
  "/root/repo/src/trace/l1_filter.cpp" "src/CMakeFiles/pfp_trace.dir/trace/l1_filter.cpp.o" "gcc" "src/CMakeFiles/pfp_trace.dir/trace/l1_filter.cpp.o.d"
  "/root/repo/src/trace/reader.cpp" "src/CMakeFiles/pfp_trace.dir/trace/reader.cpp.o" "gcc" "src/CMakeFiles/pfp_trace.dir/trace/reader.cpp.o.d"
  "/root/repo/src/trace/trace.cpp" "src/CMakeFiles/pfp_trace.dir/trace/trace.cpp.o" "gcc" "src/CMakeFiles/pfp_trace.dir/trace/trace.cpp.o.d"
  "/root/repo/src/trace/workloads.cpp" "src/CMakeFiles/pfp_trace.dir/trace/workloads.cpp.o" "gcc" "src/CMakeFiles/pfp_trace.dir/trace/workloads.cpp.o.d"
  "/root/repo/src/trace/writer.cpp" "src/CMakeFiles/pfp_trace.dir/trace/writer.cpp.o" "gcc" "src/CMakeFiles/pfp_trace.dir/trace/writer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pfp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
