# Empty dependencies file for pfp_util.
# This may be replaced when dependencies are built.
