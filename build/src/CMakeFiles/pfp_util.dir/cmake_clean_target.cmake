file(REMOVE_RECURSE
  "libpfp_util.a"
)
