file(REMOVE_RECURSE
  "CMakeFiles/pfp_util.dir/util/csv.cpp.o"
  "CMakeFiles/pfp_util.dir/util/csv.cpp.o.d"
  "CMakeFiles/pfp_util.dir/util/histogram.cpp.o"
  "CMakeFiles/pfp_util.dir/util/histogram.cpp.o.d"
  "CMakeFiles/pfp_util.dir/util/logging.cpp.o"
  "CMakeFiles/pfp_util.dir/util/logging.cpp.o.d"
  "CMakeFiles/pfp_util.dir/util/options.cpp.o"
  "CMakeFiles/pfp_util.dir/util/options.cpp.o.d"
  "CMakeFiles/pfp_util.dir/util/prng.cpp.o"
  "CMakeFiles/pfp_util.dir/util/prng.cpp.o.d"
  "CMakeFiles/pfp_util.dir/util/stats.cpp.o"
  "CMakeFiles/pfp_util.dir/util/stats.cpp.o.d"
  "CMakeFiles/pfp_util.dir/util/string_utils.cpp.o"
  "CMakeFiles/pfp_util.dir/util/string_utils.cpp.o.d"
  "CMakeFiles/pfp_util.dir/util/table.cpp.o"
  "CMakeFiles/pfp_util.dir/util/table.cpp.o.d"
  "CMakeFiles/pfp_util.dir/util/thread_pool.cpp.o"
  "CMakeFiles/pfp_util.dir/util/thread_pool.cpp.o.d"
  "CMakeFiles/pfp_util.dir/util/zipf.cpp.o"
  "CMakeFiles/pfp_util.dir/util/zipf.cpp.o.d"
  "libpfp_util.a"
  "libpfp_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfp_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
