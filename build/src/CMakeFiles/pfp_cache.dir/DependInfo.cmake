
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/buffer_cache.cpp" "src/CMakeFiles/pfp_cache.dir/cache/buffer_cache.cpp.o" "gcc" "src/CMakeFiles/pfp_cache.dir/cache/buffer_cache.cpp.o.d"
  "/root/repo/src/cache/demand_cache.cpp" "src/CMakeFiles/pfp_cache.dir/cache/demand_cache.cpp.o" "gcc" "src/CMakeFiles/pfp_cache.dir/cache/demand_cache.cpp.o.d"
  "/root/repo/src/cache/disk_model.cpp" "src/CMakeFiles/pfp_cache.dir/cache/disk_model.cpp.o" "gcc" "src/CMakeFiles/pfp_cache.dir/cache/disk_model.cpp.o.d"
  "/root/repo/src/cache/lru_cache.cpp" "src/CMakeFiles/pfp_cache.dir/cache/lru_cache.cpp.o" "gcc" "src/CMakeFiles/pfp_cache.dir/cache/lru_cache.cpp.o.d"
  "/root/repo/src/cache/prefetch_cache.cpp" "src/CMakeFiles/pfp_cache.dir/cache/prefetch_cache.cpp.o" "gcc" "src/CMakeFiles/pfp_cache.dir/cache/prefetch_cache.cpp.o.d"
  "/root/repo/src/cache/stack_distance.cpp" "src/CMakeFiles/pfp_cache.dir/cache/stack_distance.cpp.o" "gcc" "src/CMakeFiles/pfp_cache.dir/cache/stack_distance.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pfp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
