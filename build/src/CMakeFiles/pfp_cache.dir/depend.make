# Empty dependencies file for pfp_cache.
# This may be replaced when dependencies are built.
