file(REMOVE_RECURSE
  "CMakeFiles/pfp_cache.dir/cache/buffer_cache.cpp.o"
  "CMakeFiles/pfp_cache.dir/cache/buffer_cache.cpp.o.d"
  "CMakeFiles/pfp_cache.dir/cache/demand_cache.cpp.o"
  "CMakeFiles/pfp_cache.dir/cache/demand_cache.cpp.o.d"
  "CMakeFiles/pfp_cache.dir/cache/disk_model.cpp.o"
  "CMakeFiles/pfp_cache.dir/cache/disk_model.cpp.o.d"
  "CMakeFiles/pfp_cache.dir/cache/lru_cache.cpp.o"
  "CMakeFiles/pfp_cache.dir/cache/lru_cache.cpp.o.d"
  "CMakeFiles/pfp_cache.dir/cache/prefetch_cache.cpp.o"
  "CMakeFiles/pfp_cache.dir/cache/prefetch_cache.cpp.o.d"
  "CMakeFiles/pfp_cache.dir/cache/stack_distance.cpp.o"
  "CMakeFiles/pfp_cache.dir/cache/stack_distance.cpp.o.d"
  "libpfp_cache.a"
  "libpfp_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfp_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
