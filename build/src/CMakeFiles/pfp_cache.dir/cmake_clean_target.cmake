file(REMOVE_RECURSE
  "libpfp_cache.a"
)
