# Empty compiler generated dependencies file for pfp_sim.
# This may be replaced when dependencies are built.
