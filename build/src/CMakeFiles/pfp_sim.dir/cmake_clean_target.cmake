file(REMOVE_RECURSE
  "libpfp_sim.a"
)
