file(REMOVE_RECURSE
  "CMakeFiles/pfp_sim.dir/sim/experiment.cpp.o"
  "CMakeFiles/pfp_sim.dir/sim/experiment.cpp.o.d"
  "CMakeFiles/pfp_sim.dir/sim/metrics.cpp.o"
  "CMakeFiles/pfp_sim.dir/sim/metrics.cpp.o.d"
  "CMakeFiles/pfp_sim.dir/sim/online_session.cpp.o"
  "CMakeFiles/pfp_sim.dir/sim/online_session.cpp.o.d"
  "CMakeFiles/pfp_sim.dir/sim/report.cpp.o"
  "CMakeFiles/pfp_sim.dir/sim/report.cpp.o.d"
  "CMakeFiles/pfp_sim.dir/sim/simulator.cpp.o"
  "CMakeFiles/pfp_sim.dir/sim/simulator.cpp.o.d"
  "CMakeFiles/pfp_sim.dir/sim/sweep.cpp.o"
  "CMakeFiles/pfp_sim.dir/sim/sweep.cpp.o.d"
  "libpfp_sim.a"
  "libpfp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
