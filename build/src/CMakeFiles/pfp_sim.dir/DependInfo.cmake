
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/experiment.cpp" "src/CMakeFiles/pfp_sim.dir/sim/experiment.cpp.o" "gcc" "src/CMakeFiles/pfp_sim.dir/sim/experiment.cpp.o.d"
  "/root/repo/src/sim/metrics.cpp" "src/CMakeFiles/pfp_sim.dir/sim/metrics.cpp.o" "gcc" "src/CMakeFiles/pfp_sim.dir/sim/metrics.cpp.o.d"
  "/root/repo/src/sim/online_session.cpp" "src/CMakeFiles/pfp_sim.dir/sim/online_session.cpp.o" "gcc" "src/CMakeFiles/pfp_sim.dir/sim/online_session.cpp.o.d"
  "/root/repo/src/sim/report.cpp" "src/CMakeFiles/pfp_sim.dir/sim/report.cpp.o" "gcc" "src/CMakeFiles/pfp_sim.dir/sim/report.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/CMakeFiles/pfp_sim.dir/sim/simulator.cpp.o" "gcc" "src/CMakeFiles/pfp_sim.dir/sim/simulator.cpp.o.d"
  "/root/repo/src/sim/sweep.cpp" "src/CMakeFiles/pfp_sim.dir/sim/sweep.cpp.o" "gcc" "src/CMakeFiles/pfp_sim.dir/sim/sweep.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pfp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pfp_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pfp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pfp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
