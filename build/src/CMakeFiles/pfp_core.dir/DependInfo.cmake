
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/costben/equations.cpp" "src/CMakeFiles/pfp_core.dir/core/costben/equations.cpp.o" "gcc" "src/CMakeFiles/pfp_core.dir/core/costben/equations.cpp.o.d"
  "/root/repo/src/core/costben/estimator.cpp" "src/CMakeFiles/pfp_core.dir/core/costben/estimator.cpp.o" "gcc" "src/CMakeFiles/pfp_core.dir/core/costben/estimator.cpp.o.d"
  "/root/repo/src/core/policy/eviction.cpp" "src/CMakeFiles/pfp_core.dir/core/policy/eviction.cpp.o" "gcc" "src/CMakeFiles/pfp_core.dir/core/policy/eviction.cpp.o.d"
  "/root/repo/src/core/policy/factory.cpp" "src/CMakeFiles/pfp_core.dir/core/policy/factory.cpp.o" "gcc" "src/CMakeFiles/pfp_core.dir/core/policy/factory.cpp.o.d"
  "/root/repo/src/core/policy/next_limit.cpp" "src/CMakeFiles/pfp_core.dir/core/policy/next_limit.cpp.o" "gcc" "src/CMakeFiles/pfp_core.dir/core/policy/next_limit.cpp.o.d"
  "/root/repo/src/core/policy/no_prefetch.cpp" "src/CMakeFiles/pfp_core.dir/core/policy/no_prefetch.cpp.o" "gcc" "src/CMakeFiles/pfp_core.dir/core/policy/no_prefetch.cpp.o.d"
  "/root/repo/src/core/policy/obl.cpp" "src/CMakeFiles/pfp_core.dir/core/policy/obl.cpp.o" "gcc" "src/CMakeFiles/pfp_core.dir/core/policy/obl.cpp.o.d"
  "/root/repo/src/core/policy/perfect_selector.cpp" "src/CMakeFiles/pfp_core.dir/core/policy/perfect_selector.cpp.o" "gcc" "src/CMakeFiles/pfp_core.dir/core/policy/perfect_selector.cpp.o.d"
  "/root/repo/src/core/policy/prefetcher.cpp" "src/CMakeFiles/pfp_core.dir/core/policy/prefetcher.cpp.o" "gcc" "src/CMakeFiles/pfp_core.dir/core/policy/prefetcher.cpp.o.d"
  "/root/repo/src/core/policy/prob_graph.cpp" "src/CMakeFiles/pfp_core.dir/core/policy/prob_graph.cpp.o" "gcc" "src/CMakeFiles/pfp_core.dir/core/policy/prob_graph.cpp.o.d"
  "/root/repo/src/core/policy/tree_adaptive.cpp" "src/CMakeFiles/pfp_core.dir/core/policy/tree_adaptive.cpp.o" "gcc" "src/CMakeFiles/pfp_core.dir/core/policy/tree_adaptive.cpp.o.d"
  "/root/repo/src/core/policy/tree_base.cpp" "src/CMakeFiles/pfp_core.dir/core/policy/tree_base.cpp.o" "gcc" "src/CMakeFiles/pfp_core.dir/core/policy/tree_base.cpp.o.d"
  "/root/repo/src/core/policy/tree_children.cpp" "src/CMakeFiles/pfp_core.dir/core/policy/tree_children.cpp.o" "gcc" "src/CMakeFiles/pfp_core.dir/core/policy/tree_children.cpp.o.d"
  "/root/repo/src/core/policy/tree_lvc.cpp" "src/CMakeFiles/pfp_core.dir/core/policy/tree_lvc.cpp.o" "gcc" "src/CMakeFiles/pfp_core.dir/core/policy/tree_lvc.cpp.o.d"
  "/root/repo/src/core/policy/tree_next_limit.cpp" "src/CMakeFiles/pfp_core.dir/core/policy/tree_next_limit.cpp.o" "gcc" "src/CMakeFiles/pfp_core.dir/core/policy/tree_next_limit.cpp.o.d"
  "/root/repo/src/core/policy/tree_policy.cpp" "src/CMakeFiles/pfp_core.dir/core/policy/tree_policy.cpp.o" "gcc" "src/CMakeFiles/pfp_core.dir/core/policy/tree_policy.cpp.o.d"
  "/root/repo/src/core/policy/tree_threshold.cpp" "src/CMakeFiles/pfp_core.dir/core/policy/tree_threshold.cpp.o" "gcc" "src/CMakeFiles/pfp_core.dir/core/policy/tree_threshold.cpp.o.d"
  "/root/repo/src/core/tree/enumerator.cpp" "src/CMakeFiles/pfp_core.dir/core/tree/enumerator.cpp.o" "gcc" "src/CMakeFiles/pfp_core.dir/core/tree/enumerator.cpp.o.d"
  "/root/repo/src/core/tree/node_pool.cpp" "src/CMakeFiles/pfp_core.dir/core/tree/node_pool.cpp.o" "gcc" "src/CMakeFiles/pfp_core.dir/core/tree/node_pool.cpp.o.d"
  "/root/repo/src/core/tree/predictability.cpp" "src/CMakeFiles/pfp_core.dir/core/tree/predictability.cpp.o" "gcc" "src/CMakeFiles/pfp_core.dir/core/tree/predictability.cpp.o.d"
  "/root/repo/src/core/tree/prefetch_tree.cpp" "src/CMakeFiles/pfp_core.dir/core/tree/prefetch_tree.cpp.o" "gcc" "src/CMakeFiles/pfp_core.dir/core/tree/prefetch_tree.cpp.o.d"
  "/root/repo/src/core/tree/serialize.cpp" "src/CMakeFiles/pfp_core.dir/core/tree/serialize.cpp.o" "gcc" "src/CMakeFiles/pfp_core.dir/core/tree/serialize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pfp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pfp_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pfp_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
