# Empty compiler generated dependencies file for pfp_core.
# This may be replaced when dependencies are built.
