file(REMOVE_RECURSE
  "libpfp_core.a"
)
