
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cache/buffer_cache_test.cpp" "tests/CMakeFiles/pfp_cache_tests.dir/cache/buffer_cache_test.cpp.o" "gcc" "tests/CMakeFiles/pfp_cache_tests.dir/cache/buffer_cache_test.cpp.o.d"
  "/root/repo/tests/cache/demand_cache_test.cpp" "tests/CMakeFiles/pfp_cache_tests.dir/cache/demand_cache_test.cpp.o" "gcc" "tests/CMakeFiles/pfp_cache_tests.dir/cache/demand_cache_test.cpp.o.d"
  "/root/repo/tests/cache/disk_model_test.cpp" "tests/CMakeFiles/pfp_cache_tests.dir/cache/disk_model_test.cpp.o" "gcc" "tests/CMakeFiles/pfp_cache_tests.dir/cache/disk_model_test.cpp.o.d"
  "/root/repo/tests/cache/lru_cache_test.cpp" "tests/CMakeFiles/pfp_cache_tests.dir/cache/lru_cache_test.cpp.o" "gcc" "tests/CMakeFiles/pfp_cache_tests.dir/cache/lru_cache_test.cpp.o.d"
  "/root/repo/tests/cache/prefetch_cache_test.cpp" "tests/CMakeFiles/pfp_cache_tests.dir/cache/prefetch_cache_test.cpp.o" "gcc" "tests/CMakeFiles/pfp_cache_tests.dir/cache/prefetch_cache_test.cpp.o.d"
  "/root/repo/tests/cache/stack_distance_test.cpp" "tests/CMakeFiles/pfp_cache_tests.dir/cache/stack_distance_test.cpp.o" "gcc" "tests/CMakeFiles/pfp_cache_tests.dir/cache/stack_distance_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pfp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pfp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pfp_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pfp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pfp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
