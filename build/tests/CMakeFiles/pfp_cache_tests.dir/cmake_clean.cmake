file(REMOVE_RECURSE
  "CMakeFiles/pfp_cache_tests.dir/cache/buffer_cache_test.cpp.o"
  "CMakeFiles/pfp_cache_tests.dir/cache/buffer_cache_test.cpp.o.d"
  "CMakeFiles/pfp_cache_tests.dir/cache/demand_cache_test.cpp.o"
  "CMakeFiles/pfp_cache_tests.dir/cache/demand_cache_test.cpp.o.d"
  "CMakeFiles/pfp_cache_tests.dir/cache/disk_model_test.cpp.o"
  "CMakeFiles/pfp_cache_tests.dir/cache/disk_model_test.cpp.o.d"
  "CMakeFiles/pfp_cache_tests.dir/cache/lru_cache_test.cpp.o"
  "CMakeFiles/pfp_cache_tests.dir/cache/lru_cache_test.cpp.o.d"
  "CMakeFiles/pfp_cache_tests.dir/cache/prefetch_cache_test.cpp.o"
  "CMakeFiles/pfp_cache_tests.dir/cache/prefetch_cache_test.cpp.o.d"
  "CMakeFiles/pfp_cache_tests.dir/cache/stack_distance_test.cpp.o"
  "CMakeFiles/pfp_cache_tests.dir/cache/stack_distance_test.cpp.o.d"
  "pfp_cache_tests"
  "pfp_cache_tests.pdb"
  "pfp_cache_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfp_cache_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
