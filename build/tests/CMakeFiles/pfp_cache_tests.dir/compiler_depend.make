# Empty compiler generated dependencies file for pfp_cache_tests.
# This may be replaced when dependencies are built.
