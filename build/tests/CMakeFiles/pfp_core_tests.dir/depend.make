# Empty dependencies file for pfp_core_tests.
# This may be replaced when dependencies are built.
