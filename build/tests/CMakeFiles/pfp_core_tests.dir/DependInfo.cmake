
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/enumerator_test.cpp" "tests/CMakeFiles/pfp_core_tests.dir/core/enumerator_test.cpp.o" "gcc" "tests/CMakeFiles/pfp_core_tests.dir/core/enumerator_test.cpp.o.d"
  "/root/repo/tests/core/equations_property_test.cpp" "tests/CMakeFiles/pfp_core_tests.dir/core/equations_property_test.cpp.o" "gcc" "tests/CMakeFiles/pfp_core_tests.dir/core/equations_property_test.cpp.o.d"
  "/root/repo/tests/core/equations_test.cpp" "tests/CMakeFiles/pfp_core_tests.dir/core/equations_test.cpp.o" "gcc" "tests/CMakeFiles/pfp_core_tests.dir/core/equations_test.cpp.o.d"
  "/root/repo/tests/core/estimator_test.cpp" "tests/CMakeFiles/pfp_core_tests.dir/core/estimator_test.cpp.o" "gcc" "tests/CMakeFiles/pfp_core_tests.dir/core/estimator_test.cpp.o.d"
  "/root/repo/tests/core/eviction_test.cpp" "tests/CMakeFiles/pfp_core_tests.dir/core/eviction_test.cpp.o" "gcc" "tests/CMakeFiles/pfp_core_tests.dir/core/eviction_test.cpp.o.d"
  "/root/repo/tests/core/node_pool_test.cpp" "tests/CMakeFiles/pfp_core_tests.dir/core/node_pool_test.cpp.o" "gcc" "tests/CMakeFiles/pfp_core_tests.dir/core/node_pool_test.cpp.o.d"
  "/root/repo/tests/core/obl_test.cpp" "tests/CMakeFiles/pfp_core_tests.dir/core/obl_test.cpp.o" "gcc" "tests/CMakeFiles/pfp_core_tests.dir/core/obl_test.cpp.o.d"
  "/root/repo/tests/core/policies_test.cpp" "tests/CMakeFiles/pfp_core_tests.dir/core/policies_test.cpp.o" "gcc" "tests/CMakeFiles/pfp_core_tests.dir/core/policies_test.cpp.o.d"
  "/root/repo/tests/core/predictability_test.cpp" "tests/CMakeFiles/pfp_core_tests.dir/core/predictability_test.cpp.o" "gcc" "tests/CMakeFiles/pfp_core_tests.dir/core/predictability_test.cpp.o.d"
  "/root/repo/tests/core/prefetch_tree_test.cpp" "tests/CMakeFiles/pfp_core_tests.dir/core/prefetch_tree_test.cpp.o" "gcc" "tests/CMakeFiles/pfp_core_tests.dir/core/prefetch_tree_test.cpp.o.d"
  "/root/repo/tests/core/prob_graph_test.cpp" "tests/CMakeFiles/pfp_core_tests.dir/core/prob_graph_test.cpp.o" "gcc" "tests/CMakeFiles/pfp_core_tests.dir/core/prob_graph_test.cpp.o.d"
  "/root/repo/tests/core/serialize_test.cpp" "tests/CMakeFiles/pfp_core_tests.dir/core/serialize_test.cpp.o" "gcc" "tests/CMakeFiles/pfp_core_tests.dir/core/serialize_test.cpp.o.d"
  "/root/repo/tests/core/tree_adaptive_test.cpp" "tests/CMakeFiles/pfp_core_tests.dir/core/tree_adaptive_test.cpp.o" "gcc" "tests/CMakeFiles/pfp_core_tests.dir/core/tree_adaptive_test.cpp.o.d"
  "/root/repo/tests/core/tree_base_test.cpp" "tests/CMakeFiles/pfp_core_tests.dir/core/tree_base_test.cpp.o" "gcc" "tests/CMakeFiles/pfp_core_tests.dir/core/tree_base_test.cpp.o.d"
  "/root/repo/tests/core/tree_knobs_test.cpp" "tests/CMakeFiles/pfp_core_tests.dir/core/tree_knobs_test.cpp.o" "gcc" "tests/CMakeFiles/pfp_core_tests.dir/core/tree_knobs_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pfp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pfp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pfp_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pfp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pfp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
