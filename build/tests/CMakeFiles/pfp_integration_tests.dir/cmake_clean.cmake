file(REMOVE_RECURSE
  "CMakeFiles/pfp_integration_tests.dir/integration/end_to_end_test.cpp.o"
  "CMakeFiles/pfp_integration_tests.dir/integration/end_to_end_test.cpp.o.d"
  "CMakeFiles/pfp_integration_tests.dir/integration/properties_test.cpp.o"
  "CMakeFiles/pfp_integration_tests.dir/integration/properties_test.cpp.o.d"
  "CMakeFiles/pfp_integration_tests.dir/integration/seed_robustness_test.cpp.o"
  "CMakeFiles/pfp_integration_tests.dir/integration/seed_robustness_test.cpp.o.d"
  "pfp_integration_tests"
  "pfp_integration_tests.pdb"
  "pfp_integration_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfp_integration_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
