# Empty compiler generated dependencies file for pfp_integration_tests.
# This may be replaced when dependencies are built.
