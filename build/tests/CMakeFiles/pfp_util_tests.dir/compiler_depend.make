# Empty compiler generated dependencies file for pfp_util_tests.
# This may be replaced when dependencies are built.
