file(REMOVE_RECURSE
  "CMakeFiles/pfp_util_tests.dir/util/csv_test.cpp.o"
  "CMakeFiles/pfp_util_tests.dir/util/csv_test.cpp.o.d"
  "CMakeFiles/pfp_util_tests.dir/util/ewma_test.cpp.o"
  "CMakeFiles/pfp_util_tests.dir/util/ewma_test.cpp.o.d"
  "CMakeFiles/pfp_util_tests.dir/util/histogram_test.cpp.o"
  "CMakeFiles/pfp_util_tests.dir/util/histogram_test.cpp.o.d"
  "CMakeFiles/pfp_util_tests.dir/util/logging_test.cpp.o"
  "CMakeFiles/pfp_util_tests.dir/util/logging_test.cpp.o.d"
  "CMakeFiles/pfp_util_tests.dir/util/lru_list_test.cpp.o"
  "CMakeFiles/pfp_util_tests.dir/util/lru_list_test.cpp.o.d"
  "CMakeFiles/pfp_util_tests.dir/util/options_test.cpp.o"
  "CMakeFiles/pfp_util_tests.dir/util/options_test.cpp.o.d"
  "CMakeFiles/pfp_util_tests.dir/util/prng_test.cpp.o"
  "CMakeFiles/pfp_util_tests.dir/util/prng_test.cpp.o.d"
  "CMakeFiles/pfp_util_tests.dir/util/stats_test.cpp.o"
  "CMakeFiles/pfp_util_tests.dir/util/stats_test.cpp.o.d"
  "CMakeFiles/pfp_util_tests.dir/util/string_utils_test.cpp.o"
  "CMakeFiles/pfp_util_tests.dir/util/string_utils_test.cpp.o.d"
  "CMakeFiles/pfp_util_tests.dir/util/table_test.cpp.o"
  "CMakeFiles/pfp_util_tests.dir/util/table_test.cpp.o.d"
  "CMakeFiles/pfp_util_tests.dir/util/thread_pool_test.cpp.o"
  "CMakeFiles/pfp_util_tests.dir/util/thread_pool_test.cpp.o.d"
  "CMakeFiles/pfp_util_tests.dir/util/zipf_test.cpp.o"
  "CMakeFiles/pfp_util_tests.dir/util/zipf_test.cpp.o.d"
  "pfp_util_tests"
  "pfp_util_tests.pdb"
  "pfp_util_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfp_util_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
