
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/util/csv_test.cpp" "tests/CMakeFiles/pfp_util_tests.dir/util/csv_test.cpp.o" "gcc" "tests/CMakeFiles/pfp_util_tests.dir/util/csv_test.cpp.o.d"
  "/root/repo/tests/util/ewma_test.cpp" "tests/CMakeFiles/pfp_util_tests.dir/util/ewma_test.cpp.o" "gcc" "tests/CMakeFiles/pfp_util_tests.dir/util/ewma_test.cpp.o.d"
  "/root/repo/tests/util/histogram_test.cpp" "tests/CMakeFiles/pfp_util_tests.dir/util/histogram_test.cpp.o" "gcc" "tests/CMakeFiles/pfp_util_tests.dir/util/histogram_test.cpp.o.d"
  "/root/repo/tests/util/logging_test.cpp" "tests/CMakeFiles/pfp_util_tests.dir/util/logging_test.cpp.o" "gcc" "tests/CMakeFiles/pfp_util_tests.dir/util/logging_test.cpp.o.d"
  "/root/repo/tests/util/lru_list_test.cpp" "tests/CMakeFiles/pfp_util_tests.dir/util/lru_list_test.cpp.o" "gcc" "tests/CMakeFiles/pfp_util_tests.dir/util/lru_list_test.cpp.o.d"
  "/root/repo/tests/util/options_test.cpp" "tests/CMakeFiles/pfp_util_tests.dir/util/options_test.cpp.o" "gcc" "tests/CMakeFiles/pfp_util_tests.dir/util/options_test.cpp.o.d"
  "/root/repo/tests/util/prng_test.cpp" "tests/CMakeFiles/pfp_util_tests.dir/util/prng_test.cpp.o" "gcc" "tests/CMakeFiles/pfp_util_tests.dir/util/prng_test.cpp.o.d"
  "/root/repo/tests/util/stats_test.cpp" "tests/CMakeFiles/pfp_util_tests.dir/util/stats_test.cpp.o" "gcc" "tests/CMakeFiles/pfp_util_tests.dir/util/stats_test.cpp.o.d"
  "/root/repo/tests/util/string_utils_test.cpp" "tests/CMakeFiles/pfp_util_tests.dir/util/string_utils_test.cpp.o" "gcc" "tests/CMakeFiles/pfp_util_tests.dir/util/string_utils_test.cpp.o.d"
  "/root/repo/tests/util/table_test.cpp" "tests/CMakeFiles/pfp_util_tests.dir/util/table_test.cpp.o" "gcc" "tests/CMakeFiles/pfp_util_tests.dir/util/table_test.cpp.o.d"
  "/root/repo/tests/util/thread_pool_test.cpp" "tests/CMakeFiles/pfp_util_tests.dir/util/thread_pool_test.cpp.o" "gcc" "tests/CMakeFiles/pfp_util_tests.dir/util/thread_pool_test.cpp.o.d"
  "/root/repo/tests/util/zipf_test.cpp" "tests/CMakeFiles/pfp_util_tests.dir/util/zipf_test.cpp.o" "gcc" "tests/CMakeFiles/pfp_util_tests.dir/util/zipf_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pfp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pfp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pfp_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pfp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pfp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
