file(REMOVE_RECURSE
  "CMakeFiles/pfp_trace_tests.dir/trace/characterize_test.cpp.o"
  "CMakeFiles/pfp_trace_tests.dir/trace/characterize_test.cpp.o.d"
  "CMakeFiles/pfp_trace_tests.dir/trace/generators_test.cpp.o"
  "CMakeFiles/pfp_trace_tests.dir/trace/generators_test.cpp.o.d"
  "CMakeFiles/pfp_trace_tests.dir/trace/io_property_test.cpp.o"
  "CMakeFiles/pfp_trace_tests.dir/trace/io_property_test.cpp.o.d"
  "CMakeFiles/pfp_trace_tests.dir/trace/io_test.cpp.o"
  "CMakeFiles/pfp_trace_tests.dir/trace/io_test.cpp.o.d"
  "CMakeFiles/pfp_trace_tests.dir/trace/l1_filter_test.cpp.o"
  "CMakeFiles/pfp_trace_tests.dir/trace/l1_filter_test.cpp.o.d"
  "CMakeFiles/pfp_trace_tests.dir/trace/trace_test.cpp.o"
  "CMakeFiles/pfp_trace_tests.dir/trace/trace_test.cpp.o.d"
  "CMakeFiles/pfp_trace_tests.dir/trace/workloads_test.cpp.o"
  "CMakeFiles/pfp_trace_tests.dir/trace/workloads_test.cpp.o.d"
  "pfp_trace_tests"
  "pfp_trace_tests.pdb"
  "pfp_trace_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfp_trace_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
