# Empty compiler generated dependencies file for pfp_trace_tests.
# This may be replaced when dependencies are built.
