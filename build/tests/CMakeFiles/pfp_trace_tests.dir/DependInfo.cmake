
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/trace/characterize_test.cpp" "tests/CMakeFiles/pfp_trace_tests.dir/trace/characterize_test.cpp.o" "gcc" "tests/CMakeFiles/pfp_trace_tests.dir/trace/characterize_test.cpp.o.d"
  "/root/repo/tests/trace/generators_test.cpp" "tests/CMakeFiles/pfp_trace_tests.dir/trace/generators_test.cpp.o" "gcc" "tests/CMakeFiles/pfp_trace_tests.dir/trace/generators_test.cpp.o.d"
  "/root/repo/tests/trace/io_property_test.cpp" "tests/CMakeFiles/pfp_trace_tests.dir/trace/io_property_test.cpp.o" "gcc" "tests/CMakeFiles/pfp_trace_tests.dir/trace/io_property_test.cpp.o.d"
  "/root/repo/tests/trace/io_test.cpp" "tests/CMakeFiles/pfp_trace_tests.dir/trace/io_test.cpp.o" "gcc" "tests/CMakeFiles/pfp_trace_tests.dir/trace/io_test.cpp.o.d"
  "/root/repo/tests/trace/l1_filter_test.cpp" "tests/CMakeFiles/pfp_trace_tests.dir/trace/l1_filter_test.cpp.o" "gcc" "tests/CMakeFiles/pfp_trace_tests.dir/trace/l1_filter_test.cpp.o.d"
  "/root/repo/tests/trace/trace_test.cpp" "tests/CMakeFiles/pfp_trace_tests.dir/trace/trace_test.cpp.o" "gcc" "tests/CMakeFiles/pfp_trace_tests.dir/trace/trace_test.cpp.o.d"
  "/root/repo/tests/trace/workloads_test.cpp" "tests/CMakeFiles/pfp_trace_tests.dir/trace/workloads_test.cpp.o" "gcc" "tests/CMakeFiles/pfp_trace_tests.dir/trace/workloads_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pfp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pfp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pfp_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pfp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pfp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
