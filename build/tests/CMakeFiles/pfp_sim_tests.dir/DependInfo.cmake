
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/disk_sim_test.cpp" "tests/CMakeFiles/pfp_sim_tests.dir/sim/disk_sim_test.cpp.o" "gcc" "tests/CMakeFiles/pfp_sim_tests.dir/sim/disk_sim_test.cpp.o.d"
  "/root/repo/tests/sim/experiment_test.cpp" "tests/CMakeFiles/pfp_sim_tests.dir/sim/experiment_test.cpp.o" "gcc" "tests/CMakeFiles/pfp_sim_tests.dir/sim/experiment_test.cpp.o.d"
  "/root/repo/tests/sim/invariants_test.cpp" "tests/CMakeFiles/pfp_sim_tests.dir/sim/invariants_test.cpp.o" "gcc" "tests/CMakeFiles/pfp_sim_tests.dir/sim/invariants_test.cpp.o.d"
  "/root/repo/tests/sim/metrics_test.cpp" "tests/CMakeFiles/pfp_sim_tests.dir/sim/metrics_test.cpp.o" "gcc" "tests/CMakeFiles/pfp_sim_tests.dir/sim/metrics_test.cpp.o.d"
  "/root/repo/tests/sim/online_session_test.cpp" "tests/CMakeFiles/pfp_sim_tests.dir/sim/online_session_test.cpp.o" "gcc" "tests/CMakeFiles/pfp_sim_tests.dir/sim/online_session_test.cpp.o.d"
  "/root/repo/tests/sim/report_test.cpp" "tests/CMakeFiles/pfp_sim_tests.dir/sim/report_test.cpp.o" "gcc" "tests/CMakeFiles/pfp_sim_tests.dir/sim/report_test.cpp.o.d"
  "/root/repo/tests/sim/simulator_test.cpp" "tests/CMakeFiles/pfp_sim_tests.dir/sim/simulator_test.cpp.o" "gcc" "tests/CMakeFiles/pfp_sim_tests.dir/sim/simulator_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pfp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pfp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pfp_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pfp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pfp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
