# Empty dependencies file for pfp_sim_tests.
# This may be replaced when dependencies are built.
