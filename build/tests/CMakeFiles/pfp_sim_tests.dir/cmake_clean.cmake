file(REMOVE_RECURSE
  "CMakeFiles/pfp_sim_tests.dir/sim/disk_sim_test.cpp.o"
  "CMakeFiles/pfp_sim_tests.dir/sim/disk_sim_test.cpp.o.d"
  "CMakeFiles/pfp_sim_tests.dir/sim/experiment_test.cpp.o"
  "CMakeFiles/pfp_sim_tests.dir/sim/experiment_test.cpp.o.d"
  "CMakeFiles/pfp_sim_tests.dir/sim/invariants_test.cpp.o"
  "CMakeFiles/pfp_sim_tests.dir/sim/invariants_test.cpp.o.d"
  "CMakeFiles/pfp_sim_tests.dir/sim/metrics_test.cpp.o"
  "CMakeFiles/pfp_sim_tests.dir/sim/metrics_test.cpp.o.d"
  "CMakeFiles/pfp_sim_tests.dir/sim/online_session_test.cpp.o"
  "CMakeFiles/pfp_sim_tests.dir/sim/online_session_test.cpp.o.d"
  "CMakeFiles/pfp_sim_tests.dir/sim/report_test.cpp.o"
  "CMakeFiles/pfp_sim_tests.dir/sim/report_test.cpp.o.d"
  "CMakeFiles/pfp_sim_tests.dir/sim/simulator_test.cpp.o"
  "CMakeFiles/pfp_sim_tests.dir/sim/simulator_test.cpp.o.d"
  "pfp_sim_tests"
  "pfp_sim_tests.pdb"
  "pfp_sim_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfp_sim_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
