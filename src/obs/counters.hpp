// Lock-free per-engine counters and gauges.
//
// One engine thread writes, any number of scraper threads read: every
// cell is a cache-line-aligned relaxed atomic, so readers never fault a
// writer's line mid-increment and writers never pay a fetch_add (a
// single-writer relaxed load+store pair is enough).  Cross-counter
// snapshot consistency — e.g. demand_hits + prefetch_hits + misses ==
// accesses even when read mid-run — comes from SnapshotGate, a
// seqlock-style version gate the engine wraps each access period's
// updates in.
//
// The single-writer discipline is machine-checked: every write-side
// method requires the cell's writer role capability (Clang
// -Wthread-safety; src/util/thread_annotations.hpp).  The engine thread
// declares the role once per publish section with assert_writer(); read
// sides (get(), read_begin()/read_retry()) stay capability-free because
// any thread may call them.
//
// Layering: obs sits between util and engine and may include util only
// (enforced by scripts/lint/check_conventions.py).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "util/thread_annotations.hpp"

namespace pfp::obs {

inline constexpr std::size_t kCacheLineSize = 64;

/// Monotonic event count.  Single-writer increments, any-thread reads.
struct alignas(kCacheLineSize) Counter {
  /// The calling thread declares itself the unique writer (zero-cost
  /// trust declaration for the thread-safety analysis).
  void assert_writer() const noexcept PFP_ASSERT_CAPABILITY(writer_role) {}

  // Single-writer RMW: the relaxed load+store pair below is NOT atomic as
  // a unit; it is correct only because exactly one thread (the holder of
  // writer_role) ever writes the cell.  That contract is what the
  // capability requirement encodes.
  void inc(std::uint64_t delta = 1) noexcept PFP_REQUIRES(writer_role) {
    value_.store(value_.load(std::memory_order_relaxed) + delta,
                 std::memory_order_relaxed);
  }
  /// Publishes an externally accumulated total (the engine mirrors its
  /// deterministic Metrics counters through these cells).
  void set(std::uint64_t value) noexcept PFP_REQUIRES(writer_role) {
    value_.store(value, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t get() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

  /// Writer role capability (zero-size; public so capability expressions
  /// can name it).
  util::ThreadRole writer_role;

 private:
  // writers: the single writer_role holder  readers: any scraper thread
  std::atomic<std::uint64_t> value_{0};
};

/// Point-in-time level (ring occupancy, resident blocks).  Single-writer
/// set, any-thread reads.
struct alignas(kCacheLineSize) Gauge {
  void assert_writer() const noexcept PFP_ASSERT_CAPABILITY(writer_role) {}

  void set(std::uint64_t value) noexcept PFP_REQUIRES(writer_role) {
    value_.store(value, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t get() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

  util::ThreadRole writer_role;

 private:
  // writers: the single writer_role holder  readers: any scraper thread
  std::atomic<std::uint64_t> value_{0};
};

/// Seqlock-style write gate: the writer brackets a batch of relaxed cell
/// updates with begin_write()/end_write(); readers retry read_begin()/
/// read_retry() until they observe a quiescent, unchanged version.  All
/// guarded data are themselves atomics, so a lost race is only ever a
/// torn *cut*, never undefined behaviour; readers that exhaust their
/// retry budget fall back to a possibly inconsistent (but well-defined)
/// snapshot.
class SnapshotGate {
 public:
  /// The calling thread declares itself the unique writer.
  void assert_writer() const noexcept PFP_ASSERT_CAPABILITY(writer_role) {}

  void begin_write() noexcept PFP_REQUIRES(writer_role) {
    version_.store(version_.load(std::memory_order_relaxed) + 1,
                   std::memory_order_relaxed);
    // Seqlock begin: the release fence orders the odd version store
    // before every subsequent (relaxed, atomic) cell store — a reader
    // that observes any cell write also observes the odd version.
    // lint: allow(fence): seqlock begin — pairs with read_retry's acquire
    std::atomic_thread_fence(std::memory_order_release);
  }
  void end_write() noexcept PFP_REQUIRES(writer_role) {
    version_.store(version_.load(std::memory_order_relaxed) + 1,
                   std::memory_order_release);
  }

  /// Returns the pre-read version (even = quiescent; odd = mid-write).
  [[nodiscard]] std::uint64_t read_begin() const noexcept {
    return version_.load(std::memory_order_acquire);
  }
  /// True when the snapshot raced a write and must be retried.
  [[nodiscard]] bool read_retry(std::uint64_t begin_version) const noexcept {
    // Seqlock read end: the acquire fence orders every preceding relaxed
    // cell load before the version re-check — if the version still
    // matches, no write overlapped the reads.
    // lint: allow(fence): seqlock read end — pairs with begin_write's release
    std::atomic_thread_fence(std::memory_order_acquire);
    return (begin_version & 1) != 0 ||
           version_.load(std::memory_order_relaxed) != begin_version;
  }

  /// Writer role capability (zero-size; see thread_annotations.hpp).
  util::ThreadRole writer_role;

 private:
  // writers: the single writer_role holder  readers: any scraper thread
  alignas(kCacheLineSize) std::atomic<std::uint64_t> version_{0};
};

}  // namespace pfp::obs
