// Prometheus text exposition (version 0.0.4) for EngineStats snapshots.
//
// render_prometheus() writes one engine view — a single engine, one
// shard, or a merged ShardedEngine view — as `# HELP`/`# TYPE` annotated
// families.  Callers distinguish views with labels, e.g.
// {{"shard", "3"}} or {{"view", "merged"}}; label values are escaped per
// the exposition format.  Phase latencies render as native Prometheus
// histograms (cumulative `le` buckets in seconds) with a `phase` label.
//
// The multi-view overload renders MANY labeled views (e.g. one per
// server tenant) into a single valid exposition: the format allows only
// one HELP/TYPE block per metric name per scrape, so per-view renders
// cannot simply be concatenated — each family is emitted once with one
// sample per view instead.  Views must carry distinguishing labels
// (tenant="...", shard="...") or their samples collide.
#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "obs/engine_obs.hpp"

namespace pfp::obs {

struct Label {
  std::string name;
  std::string value;
};

/// One engine view plus the label set identifying it in the exposition.
struct LabeledStats {
  std::vector<Label> labels;
  EngineStats stats;
};

void render_prometheus(std::ostream& out, const EngineStats& stats,
                       std::span<const Label> labels = {});

/// Multi-view exposition: every family once, one sample per view.
void render_prometheus(std::ostream& out,
                       std::span<const LabeledStats> views);

/// Escapes a label value (backslash, double quote, newline).
[[nodiscard]] std::string escape_label_value(std::string_view value);

}  // namespace pfp::obs
