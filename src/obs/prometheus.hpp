// Prometheus text exposition (version 0.0.4) for EngineStats snapshots.
//
// render_prometheus() writes one engine view — a single engine, one
// shard, or a merged ShardedEngine view — as `# HELP`/`# TYPE` annotated
// families.  Callers distinguish views with labels, e.g.
// {{"shard", "3"}} or {{"view", "merged"}}; label values are escaped per
// the exposition format.  Phase latencies render as native Prometheus
// histograms (cumulative `le` buckets in seconds) with a `phase` label.
#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <string_view>

#include "obs/engine_obs.hpp"

namespace pfp::obs {

struct Label {
  std::string name;
  std::string value;
};

void render_prometheus(std::ostream& out, const EngineStats& stats,
                       std::span<const Label> labels = {});

/// Escapes a label value (backslash, double quote, newline).
[[nodiscard]] std::string escape_label_value(std::string_view value);

}  // namespace pfp::obs
