// Bounded event-trace ring buffer.
//
// Each engine (one per shard under ShardedEngine) records its own stream
// of access / prefetch-issue / eviction events into a fixed power-of-two
// ring: exactly one writer (the engine thread), overwrite-oldest when
// full, every event stamped with a monotonically increasing serial so a
// dump can tell how much history survived.  The single-writer index
// discipline follows util::SpscQueue; the difference is that the "reader"
// here is a whole-ring dump taken under quiescence (single-threaded
// engines dump from their own thread; ShardedEngine::write_chrome_trace
// flushes first, and flush()'s acquire on the processed counters orders
// the slot writes), so the slots themselves stay plain structs and only
// the write index is atomic — stats scrapers read it live for the
// occupancy gauge.
//
// Dumps render as Chrome trace_event JSON (chrome://tracing, Perfetto):
// complete ("X") events for accesses with their modeled latency as the
// duration, instant ("i") events for prefetch issues and evictions.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "util/thread_annotations.hpp"

namespace pfp::obs {

enum class EventKind : std::uint8_t {
  kAccess = 0,        ///< one per access period; arg = outcome
  kPrefetchIssue,     ///< arg = blocks prefetched this period
  kEviction,          ///< arg = buffers ejected this period
};

/// Access outcome codes for TraceEvent::arg (mirrors engine::Outcome
/// without reaching up the layer stack).
enum class EventOutcome : std::uint8_t {
  kDemandHit = 0,
  kPrefetchHit,
  kMiss,
};

struct TraceEvent {
  std::uint64_t serial = 0;   ///< ring-wide event number, from 0
  std::uint64_t block = 0;    ///< block id driving the period
  double ts_ms = 0.0;         ///< engine virtual time at period start
  double dur_ms = 0.0;        ///< modeled period latency (kAccess only)
  EventKind kind = EventKind::kAccess;
  std::uint32_t arg = 0;      ///< outcome / issue count / ejection count
};

class TraceRing {
 public:
  /// Capacity 0 disables recording entirely (emit becomes a no-op);
  /// otherwise rounds up to a power of two.
  explicit TraceRing(std::size_t capacity);

  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  /// The calling thread declares itself the unique writer (zero-cost
  /// trust declaration for the thread-safety analysis).
  void assert_writer() const noexcept PFP_ASSERT_CAPABILITY(writer_role) {}

  /// Writer side.  Stamps the serial; overwrites the oldest event when
  /// the ring is full.
  void emit(TraceEvent event) noexcept PFP_REQUIRES(writer_role);

  [[nodiscard]] bool enabled() const noexcept { return !slots_.empty(); }
  [[nodiscard]] std::size_t capacity() const noexcept {
    return slots_.size();
  }
  /// Total events ever emitted (any thread; relaxed).
  [[nodiscard]] std::uint64_t recorded() const noexcept {
    return next_.load(std::memory_order_relaxed);
  }
  /// Events lost to overwrite (any thread; relaxed).
  [[nodiscard]] std::uint64_t dropped() const noexcept;
  /// Events currently held (any thread; relaxed).
  [[nodiscard]] std::size_t occupancy() const noexcept;

  /// Copies the surviving events oldest-first.  Quiescent-read contract:
  /// call from the writer thread, or after the writer has been observed
  /// parked through an acquire (ShardedEngine::flush).
  [[nodiscard]] std::vector<TraceEvent> events() const;

  void clear() noexcept PFP_REQUIRES(writer_role);

  /// Writer role capability (zero-size; see thread_annotations.hpp).
  util::ThreadRole writer_role;

 private:
  std::vector<TraceEvent> slots_;
  std::uint64_t mask_ = 0;
  // writers: the single writer_role holder (the engine thread)
  // readers: any scraper (recorded/dropped/occupancy); events() additionally
  // requires the quiescent-dump contract for the plain slots_
  std::atomic<std::uint64_t> next_{0};  ///< next serial == events emitted
};

/// Renders rings as one Chrome trace_event JSON document; ring i becomes
/// pid i (one process lane per shard).  Null entries are skipped.
void write_chrome_trace(std::ostream& out,
                        std::span<const TraceRing* const> rings);

}  // namespace pfp::obs
