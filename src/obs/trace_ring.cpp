#include "obs/trace_ring.hpp"

#include <ostream>

#include "util/assert.hpp"

namespace pfp::obs {

TraceRing::TraceRing(std::size_t capacity) {
  if (capacity == 0) {
    return;
  }
  std::size_t cap = 2;
  while (cap < capacity) {
    PFP_REQUIRE(cap <= (std::size_t{1} << 30));
    cap <<= 1;
  }
  slots_.resize(cap);
  mask_ = cap - 1;
}

void TraceRing::emit(TraceEvent event) noexcept {
  if (slots_.empty()) {
    return;
  }
  const std::uint64_t serial = next_.load(std::memory_order_relaxed);
  event.serial = serial;
  slots_[serial & mask_] = event;
  next_.store(serial + 1, std::memory_order_relaxed);
}

std::uint64_t TraceRing::dropped() const noexcept {
  const std::uint64_t n = next_.load(std::memory_order_relaxed);
  return n > slots_.size() ? n - slots_.size() : 0;
}

std::size_t TraceRing::occupancy() const noexcept {
  const std::uint64_t n = next_.load(std::memory_order_relaxed);
  return n < slots_.size() ? static_cast<std::size_t>(n) : slots_.size();
}

std::vector<TraceEvent> TraceRing::events() const {
  const std::uint64_t n = next_.load(std::memory_order_relaxed);
  const std::uint64_t held =
      n < slots_.size() ? n : static_cast<std::uint64_t>(slots_.size());
  std::vector<TraceEvent> out;
  out.reserve(static_cast<std::size_t>(held));
  for (std::uint64_t serial = n - held; serial < n; ++serial) {
    out.push_back(slots_[serial & mask_]);
  }
  return out;
}

void TraceRing::clear() noexcept {
  next_.store(0, std::memory_order_relaxed);
}

namespace {

const char* event_name(const TraceEvent& event) {
  switch (event.kind) {
    case EventKind::kAccess:
      switch (static_cast<EventOutcome>(event.arg)) {
        case EventOutcome::kDemandHit:
          return "access:demand-hit";
        case EventOutcome::kPrefetchHit:
          return "access:prefetch-hit";
        case EventOutcome::kMiss:
          return "access:miss";
      }
      return "access";
    case EventKind::kPrefetchIssue:
      return "prefetch-issue";
    case EventKind::kEviction:
      return "eviction";
  }
  return "event";
}

void write_event(std::ostream& out, const TraceEvent& event,
                 std::size_t pid) {
  // Chrome's ts/dur are microseconds; engine virtual time is ms.
  out << R"({"name":")" << event_name(event) << R"(","cat":"engine","pid":)"
      << pid << R"(,"tid":0,"ts":)" << event.ts_ms * 1000.0;
  if (event.kind == EventKind::kAccess) {
    out << R"(,"ph":"X","dur":)" << event.dur_ms * 1000.0;
  } else {
    out << R"(,"ph":"i","s":"t")";
  }
  out << R"(,"args":{"serial":)" << event.serial << R"(,"block":)"
      << event.block << R"(,"arg":)" << event.arg << "}}";
}

}  // namespace

void write_chrome_trace(std::ostream& out,
                        std::span<const TraceRing* const> rings) {
  out << R"({"displayTimeUnit":"ms","traceEvents":[)";
  bool first = true;
  for (std::size_t pid = 0; pid < rings.size(); ++pid) {
    if (rings[pid] == nullptr) {
      continue;
    }
    for (const TraceEvent& event : rings[pid]->events()) {
      if (!first) {
        out << ",\n";
      }
      first = false;
      write_event(out, event, pid);
    }
  }
  out << "]}\n";
}

}  // namespace pfp::obs
