#include "obs/engine_obs.hpp"

#include <algorithm>

namespace pfp::obs {

void EngineStats::merge(const EngineStats& other) {
  accesses += other.accesses;
  demand_hits += other.demand_hits;
  prefetch_hits += other.prefetch_hits;
  misses += other.misses;
  prefetches_issued += other.prefetches_issued;
  prefetch_ejections += other.prefetch_ejections;
  demand_ejections += other.demand_ejections;
  disk_requests += other.disk_requests;

  resident_blocks += other.resident_blocks;
  free_buffers += other.free_buffers;
  tree_nodes += other.tree_nodes;
  elapsed_virtual_us = std::max(elapsed_virtual_us, other.elapsed_virtual_us);

  phases.merge(other.phases);

  trace_recorded += other.trace_recorded;
  trace_dropped += other.trace_dropped;
  trace_capacity += other.trace_capacity;
  trace_occupancy += other.trace_occupancy;

  queue_occupancy += other.queue_occupancy;
  queue_capacity += other.queue_capacity;
  queue_backpressure_waits += other.queue_backpressure_waits;

  shards += other.shards;
  consistent = consistent && other.consistent;
}

EngineStats EngineObs::stats() const {
  EngineStats out;
  // Bounded seqlock retry: a busy engine publishes once per access, so a
  // handful of retries is plenty; if the scraper still keeps losing the
  // race it takes the torn-but-well-defined cut and says so.
  constexpr int kMaxAttempts = 64;
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    const std::uint64_t version = gate_.read_begin();
    out.accesses = counters_.accesses.get();
    out.demand_hits = counters_.demand_hits.get();
    out.prefetch_hits = counters_.prefetch_hits.get();
    out.misses = counters_.misses.get();
    out.prefetches_issued = counters_.prefetches_issued.get();
    out.prefetch_ejections = counters_.prefetch_ejections.get();
    out.demand_ejections = counters_.demand_ejections.get();
    out.disk_requests = counters_.disk_requests.get();
    out.resident_blocks = counters_.resident_blocks.get();
    out.free_buffers = counters_.free_buffers.get();
    out.tree_nodes = counters_.tree_nodes.get();
    out.elapsed_virtual_us = counters_.elapsed_virtual_us.get();
    out.phases = PhaseTiming::sample(phase_cells_);
    out.trace_recorded = ring_.recorded();
    out.trace_dropped = ring_.dropped();
    out.trace_capacity = ring_.capacity();
    out.trace_occupancy = ring_.occupancy();
    if (!gate_.read_retry(version)) {
      return out;
    }
  }
  out.consistent = false;
  return out;
}

}  // namespace pfp::obs
