// The per-engine observability backend and its snapshot type.
//
// One EngineObs instance rides inside each engine::PrefetchEngine (one
// per shard under ShardedEngine).  The engine thread publishes its
// deterministic Metrics counters into the lock-free cells once per
// access period inside a SnapshotGate write section; scraper threads
// call stats() at any time and get a consistent cut without stopping the
// engine.  The phase stopwatch and the event-trace ring are owned here
// too, so the engine wires exactly one object.
//
// Observability is strictly write-only from the engine's point of view:
// nothing in this layer ever feeds back into a prefetch decision, which
// is why every metric pin stays bit-identical with obs compiled in, out,
// or runtime-disabled.
//
// Zero-cost story: the PFP_OBS CMake option (ON by default) gates the
// engine's per-access publishing code and the util::PhaseCells /
// util::PhaseStopwatch internals.  With PFP_OBS=OFF this class still
// compiles (identical API) but nothing writes to it and stats() returns
// zeros — the engine hot path contains no observability instructions at
// all (verified against BENCH_03, see docs/observability.md).
#pragma once

#include <cstdint>

#include "obs/counters.hpp"
#include "obs/phase_timing.hpp"
#include "obs/trace_ring.hpp"
#include "util/phase.hpp"
#include "util/thread_annotations.hpp"

namespace pfp::obs {

/// True when the observability layer is compiled in (PFP_OBS CMake
/// option); the no-op backend otherwise.
#ifdef PFP_OBS
inline constexpr bool kEnabled = true;
#else
inline constexpr bool kEnabled = false;
#endif

/// Runtime knobs, carried in engine::EngineConfig.  Counters and gauges
/// are always live when PFP_OBS is compiled in (they cost a handful of
/// relaxed stores per access); the clock-reading phase timers and the
/// event ring are opt-in because their overhead is measurable (see
/// BENCH_04.json).
struct ObsOptions {
  /// Wrap the six state-machine stages in latency timers (7 steady_clock
  /// reads per access when on).
  bool phase_timers = false;
  /// Event-trace ring capacity in events (rounded up to a power of two);
  /// 0 disables event recording.
  std::size_t trace_capacity = 0;
};

/// The live lock-free cells the engine publishes into.  Single writer
/// (the engine thread); see counters.hpp for the read contract.
struct EngineCounters {
  /// The calling thread declares itself the unique writer of every cell
  /// at once (the engine publishes them as one batch; asserting the
  /// twelve roles cell-by-cell would drown the publish section).
  void assert_writer() const noexcept PFP_ASSERT_CAPABILITY(
      accesses.writer_role, demand_hits.writer_role,
      prefetch_hits.writer_role, misses.writer_role,
      prefetches_issued.writer_role, prefetch_ejections.writer_role,
      demand_ejections.writer_role, disk_requests.writer_role,
      resident_blocks.writer_role, free_buffers.writer_role,
      tree_nodes.writer_role, elapsed_virtual_us.writer_role) {}

  Counter accesses;
  Counter demand_hits;
  Counter prefetch_hits;
  Counter misses;
  Counter prefetches_issued;
  Counter prefetch_ejections;
  Counter demand_ejections;
  Counter disk_requests;
  Gauge resident_blocks;
  Gauge free_buffers;
  Gauge tree_nodes;
  Gauge elapsed_virtual_us;
};

/// Plain-value snapshot of one engine's (or a merged view's) cells.
struct EngineStats {
  std::uint64_t accesses = 0;
  std::uint64_t demand_hits = 0;
  std::uint64_t prefetch_hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t prefetches_issued = 0;
  std::uint64_t prefetch_ejections = 0;
  std::uint64_t demand_ejections = 0;
  std::uint64_t disk_requests = 0;

  std::uint64_t resident_blocks = 0;
  std::uint64_t free_buffers = 0;
  std::uint64_t tree_nodes = 0;
  std::uint64_t elapsed_virtual_us = 0;

  PhaseTiming phases;

  std::uint64_t trace_recorded = 0;
  std::uint64_t trace_dropped = 0;
  std::uint64_t trace_capacity = 0;
  std::uint64_t trace_occupancy = 0;

  // Shard plumbing (ShardedEngine fills these; zero on a plain engine).
  std::uint64_t queue_occupancy = 0;
  std::uint64_t queue_capacity = 0;
  std::uint64_t queue_backpressure_waits = 0;

  /// Engines folded into this view (1 for a single engine).
  std::uint32_t shards = 1;
  /// False when a live read exhausted its seqlock retries and the cut may
  /// mix two periods (the values themselves are still well-defined).
  bool consistent = true;

  /// Deterministic fold for per-shard views: counters, phase buckets and
  /// queue/trace totals sum; elapsed_virtual_us takes the max (shards run
  /// concurrently, so summed virtual time is not wall-clock-like).
  void merge(const EngineStats& other);
};

class EngineObs {
 public:
  explicit EngineObs(ObsOptions options)
      : options_(options),
        ring_(kEnabled ? options.trace_capacity : 0) {}

  EngineObs(const EngineObs&) = delete;
  EngineObs& operator=(const EngineObs&) = delete;

  [[nodiscard]] const ObsOptions& options() const noexcept {
    return options_;
  }

  // --- writer side (engine thread only) ---------------------------------
  SnapshotGate& gate() noexcept { return gate_; }
  EngineCounters& counters() noexcept { return counters_; }
  TraceRing& ring() noexcept { return ring_; }
  /// Null when phase timing is disabled (arm the stopwatch with this).
  [[nodiscard]] util::PhaseCells* phase_cells() noexcept {
    return kEnabled && options_.phase_timers ? &phase_cells_ : nullptr;
  }

  // --- reader side (any thread) -----------------------------------------
  /// Snapshot-consistent read: retries the seqlock a bounded number of
  /// times, then falls back to a best-effort cut with consistent=false.
  [[nodiscard]] EngineStats stats() const;
  [[nodiscard]] const TraceRing& ring() const noexcept { return ring_; }

 private:
  ObsOptions options_;
  SnapshotGate gate_;
  EngineCounters counters_;
  util::PhaseCells phase_cells_;
  TraceRing ring_;
};

}  // namespace pfp::obs
