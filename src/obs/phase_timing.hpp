// Plain-value snapshot of the per-phase latency cells.
//
// util::PhaseCells is the live, atomically written accumulation target;
// this is the frozen copy that stats snapshots carry around: per phase a
// sample count, total nanoseconds and the fixed log2 latency buckets.
// Being a plain struct it merges, copies and renders without touching
// the engine again.
#pragma once

#include <cstdint>
#include <string>

#include "util/histogram.hpp"
#include "util/phase.hpp"

namespace pfp::obs {

struct PhaseTiming {
  std::uint64_t count[util::kEnginePhaseCount] = {};
  std::uint64_t total_ns[util::kEnginePhaseCount] = {};
  std::uint64_t buckets[util::kEnginePhaseCount][util::kPhaseBucketCount] =
      {};

  /// Copies the live cells (relaxed reads; wrap in a SnapshotGate when a
  /// consistent cut matters).
  static PhaseTiming sample(const util::PhaseCells& cells);

  /// Folds another snapshot in (per-shard aggregation).
  void merge(const PhaseTiming& other);

  [[nodiscard]] std::uint64_t total_count() const;

  /// Mean latency of one phase in nanoseconds (0 when unsampled).
  [[nodiscard]] double mean_ns(util::EnginePhase phase) const;

  /// The phase's buckets as a util::Log2Histogram, for quantiles and
  /// report rendering.
  [[nodiscard]] util::Log2Histogram histogram(util::EnginePhase phase) const;

  /// Multi-line "phase count mean p99" table for logs/examples.
  [[nodiscard]] std::string summary() const;
};

}  // namespace pfp::obs
