#include "obs/phase_timing.hpp"

#include <sstream>

namespace pfp::obs {

PhaseTiming PhaseTiming::sample(const util::PhaseCells& cells) {
  PhaseTiming out;
  for (std::size_t p = 0; p < util::kEnginePhaseCount; ++p) {
    out.count[p] = cells.count(p);
    out.total_ns[p] = cells.total_ns(p);
    for (std::size_t b = 0; b < util::kPhaseBucketCount; ++b) {
      out.buckets[p][b] = cells.bucket(p, b);
    }
  }
  return out;
}

void PhaseTiming::merge(const PhaseTiming& other) {
  for (std::size_t p = 0; p < util::kEnginePhaseCount; ++p) {
    count[p] += other.count[p];
    total_ns[p] += other.total_ns[p];
    for (std::size_t b = 0; b < util::kPhaseBucketCount; ++b) {
      buckets[p][b] += other.buckets[p][b];
    }
  }
}

std::uint64_t PhaseTiming::total_count() const {
  std::uint64_t total = 0;
  for (const std::uint64_t c : count) {
    total += c;
  }
  return total;
}

double PhaseTiming::mean_ns(util::EnginePhase phase) const {
  const auto p = static_cast<std::size_t>(phase);
  return count[p] == 0 ? 0.0
                       : static_cast<double>(total_ns[p]) /
                             static_cast<double>(count[p]);
}

util::Log2Histogram PhaseTiming::histogram(util::EnginePhase phase) const {
  const auto p = static_cast<std::size_t>(phase);
  util::Log2Histogram h;
  for (std::size_t b = 0; b < util::kPhaseBucketCount; ++b) {
    if (buckets[p][b] != 0) {
      // bucket_lo(b) has bit_width b, so the sample re-lands in bucket b.
      h.add(util::Log2Histogram::bucket_lo(b), buckets[p][b]);
    }
  }
  return h;
}

namespace {

// Upper bound (ns) of the bucket where the cumulative count crosses q.
std::uint64_t approx_quantile_ns(
    const std::uint64_t (&buckets)[util::kPhaseBucketCount],
    std::uint64_t total, double q) {
  if (total == 0) {
    return 0;
  }
  const double target = q * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < util::kPhaseBucketCount; ++b) {
    cumulative += buckets[b];
    if (static_cast<double>(cumulative) >= target) {
      return util::Log2Histogram::bucket_hi(b);
    }
  }
  return util::Log2Histogram::bucket_hi(util::kPhaseBucketCount - 1);
}

}  // namespace

std::string PhaseTiming::summary() const {
  std::ostringstream os;
  for (std::size_t p = 0; p < util::kEnginePhaseCount; ++p) {
    if (count[p] == 0) {
      continue;
    }
    os << util::kEnginePhaseNames[p] << ": n=" << count[p] << " mean="
       << static_cast<std::uint64_t>(
              mean_ns(static_cast<util::EnginePhase>(p)))
       << "ns p99<=" << approx_quantile_ns(buckets[p], count[p], 0.99)
       << "ns\n";
  }
  return os.str();
}

}  // namespace pfp::obs
