#include "obs/prometheus.hpp"

#include <cstdio>
#include <ostream>

#include "util/phase.hpp"

namespace pfp::obs {

std::string escape_label_value(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

namespace {

// Pre-rendered `name="value"` pairs, comma-joined, without braces.
std::string render_labels(std::span<const Label> labels) {
  std::string out;
  for (const Label& label : labels) {
    if (!out.empty()) {
      out += ',';
    }
    out += label.name;
    out += "=\"";
    out += escape_label_value(label.value);
    out += '"';
  }
  return out;
}

class Writer {
 public:
  Writer(std::ostream& out, std::string base_labels)
      : out_(out), base_(std::move(base_labels)) {}

  void family(const char* name, const char* type, const char* help) {
    out_ << "# HELP " << name << " " << help << "\n# TYPE " << name << " "
         << type << "\n";
    name_ = name;
  }

  void sample(std::uint64_t value, const std::string& extra_labels = {}) {
    out_ << name_;
    write_label_set(extra_labels);
    out_ << " " << value << "\n";
  }

  void sample(double value, const std::string& extra_labels = {}) {
    out_ << name_;
    write_label_set(extra_labels);
    out_ << " " << value << "\n";
  }

  /// For _bucket/_sum/_count rows of a histogram family.
  void suffixed(const char* suffix, const std::string& extra_labels,
                double value) {
    out_ << name_ << suffix;
    write_label_set(extra_labels);
    out_ << " " << value << "\n";
  }

 private:
  void write_label_set(const std::string& extra) {
    if (base_.empty() && extra.empty()) {
      return;
    }
    out_ << "{" << base_;
    if (!base_.empty() && !extra.empty()) {
      out_ << ",";
    }
    out_ << extra << "}";
  }

  std::ostream& out_;
  std::string base_;
  const char* name_ = "";
};

// `le` bounds are powers-of-two nanoseconds rendered in seconds, so
// fixed-point formatting (std::to_string) would collapse every
// sub-microsecond bound to "0.000000"; %.9g keeps them distinct and
// strictly increasing, as the exposition format requires.
std::string format_le(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.9g", seconds);
  return buf;
}

}  // namespace

namespace {

// One pre-rendered view: its base label string plus the stats cut.
struct RenderView {
  std::string base_labels;
  const EngineStats* stats;
};

void render_views(std::ostream& out, std::span<const RenderView> views) {
  Writer w(out, std::string());

  struct CounterRow {
    const char* name;
    const char* help;
    std::uint64_t EngineStats::* field;
  };
  const CounterRow counters[] = {
      {"pfp_accesses_total", "Block references processed.",
       &EngineStats::accesses},
      {"pfp_demand_hits_total", "References served by the demand cache.",
       &EngineStats::demand_hits},
      {"pfp_prefetch_hits_total",
       "References served by the prefetch cache.",
       &EngineStats::prefetch_hits},
      {"pfp_misses_total", "References that required a demand fetch.",
       &EngineStats::misses},
      {"pfp_prefetches_issued_total", "Prefetch reads submitted to disk.",
       &EngineStats::prefetches_issued},
      {"pfp_prefetch_ejections_total",
       "Prefetched buffers ejected before being referenced.",
       &EngineStats::prefetch_ejections},
      {"pfp_demand_ejections_total", "Demand buffers ejected.",
       &EngineStats::demand_ejections},
      {"pfp_disk_requests_total",
       "Disk reads issued (demand fetches plus prefetches).",
       &EngineStats::disk_requests},
      {"pfp_trace_events_recorded_total",
       "Events emitted into the trace ring.", &EngineStats::trace_recorded},
      {"pfp_trace_events_dropped_total",
       "Trace events lost to ring overwrite.", &EngineStats::trace_dropped},
      {"pfp_queue_backpressure_waits_total",
       "Producer spins on a full shard queue.",
       &EngineStats::queue_backpressure_waits},
  };
  for (const CounterRow& row : counters) {
    w.family(row.name, "counter", row.help);
    for (const RenderView& view : views) {
      w.sample(view.stats->*row.field, view.base_labels);
    }
  }

  const CounterRow gauges[] = {
      {"pfp_resident_blocks", "Buffers currently resident in the caches.",
       &EngineStats::resident_blocks},
      {"pfp_free_buffers", "Unused buffers in the pool.",
       &EngineStats::free_buffers},
      {"pfp_tree_nodes", "Live predictor-tree nodes.",
       &EngineStats::tree_nodes},
      {"pfp_trace_ring_occupancy", "Events currently held in the ring.",
       &EngineStats::trace_occupancy},
      {"pfp_trace_ring_capacity", "Trace ring capacity in events.",
       &EngineStats::trace_capacity},
      {"pfp_queue_occupancy", "Requests queued to shard workers.",
       &EngineStats::queue_occupancy},
      {"pfp_queue_capacity", "Total shard queue capacity.",
       &EngineStats::queue_capacity},
  };
  for (const CounterRow& row : gauges) {
    w.family(row.name, "gauge", row.help);
    for (const RenderView& view : views) {
      w.sample(view.stats->*row.field, view.base_labels);
    }
  }

  w.family("pfp_shards", "gauge", "Engines folded into this view.");
  for (const RenderView& view : views) {
    w.sample(static_cast<std::uint64_t>(view.stats->shards),
             view.base_labels);
  }
  w.family("pfp_stats_consistent", "gauge",
           "1 when this snapshot is a clean seqlock cut.");
  for (const RenderView& view : views) {
    w.sample(static_cast<std::uint64_t>(view.stats->consistent ? 1u : 0u),
             view.base_labels);
  }

  w.family("pfp_elapsed_virtual_seconds", "gauge",
           "Modeled elapsed time under the Section 3 timing model.");
  for (const RenderView& view : views) {
    w.sample(static_cast<double>(view.stats->elapsed_virtual_us) / 1e6,
             view.base_labels);
  }

  // Phase latencies: one native histogram per (view, phase), le in
  // seconds.  Trailing all-zero buckets are elided per view (the +Inf
  // row carries the rest).
  w.family("pfp_phase_latency_seconds", "histogram",
           "Per-phase latency of the access state machine.");
  for (const RenderView& view : views) {
    const EngineStats& stats = *view.stats;
    std::size_t top = 0;
    for (std::size_t p = 0; p < util::kEnginePhaseCount; ++p) {
      for (std::size_t b = 0; b < util::kPhaseBucketCount; ++b) {
        if (stats.phases.buckets[p][b] != 0 && b + 1 > top) {
          top = b + 1;
        }
      }
    }
    for (std::size_t p = 0; p < util::kEnginePhaseCount; ++p) {
      std::string phase_label = view.base_labels;
      if (!phase_label.empty()) {
        phase_label += ',';
      }
      phase_label += std::string("phase=\"") +
                     util::kEnginePhaseNames[p] + "\"";
      std::uint64_t cumulative = 0;
      for (std::size_t b = 0; b < top; ++b) {
        cumulative += stats.phases.buckets[p][b];
        const double le_seconds =
            static_cast<double>(util::Log2Histogram::bucket_hi(b)) / 1e9;
        w.suffixed("_bucket",
                   phase_label + ",le=\"" + format_le(le_seconds) + "\"",
                   static_cast<double>(cumulative));
      }
      w.suffixed("_bucket", phase_label + ",le=\"+Inf\"",
                 static_cast<double>(stats.phases.count[p]));
      w.suffixed("_sum", phase_label,
                 static_cast<double>(stats.phases.total_ns[p]) / 1e9);
      w.suffixed("_count", phase_label,
                 static_cast<double>(stats.phases.count[p]));
    }
  }
}

}  // namespace

void render_prometheus(std::ostream& out, const EngineStats& stats,
                       std::span<const Label> labels) {
  const RenderView view{render_labels(labels), &stats};
  render_views(out, std::span<const RenderView>(&view, 1));
}

void render_prometheus(std::ostream& out,
                       std::span<const LabeledStats> views) {
  std::vector<RenderView> rendered;
  rendered.reserve(views.size());
  for (const LabeledStats& view : views) {
    rendered.push_back(RenderView{render_labels(view.labels), &view.stats});
  }
  render_views(out, rendered);
}

}  // namespace pfp::obs
