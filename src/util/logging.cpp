#include "util/logging.hpp"

#include <cstdio>
#include <mutex>

namespace pfp::util {

namespace {

// writers: any thread via set_log_level (rare, test setup)
// readers: every logging call site (level filter)
std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};
std::mutex g_emit_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void log_message(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) <
      g_level.load(std::memory_order_relaxed)) {
    return;
  }
  std::lock_guard lock(g_emit_mutex);
  std::fprintf(stderr, "[%s] %s\n", level_name(level), message.c_str());
}

}  // namespace pfp::util
