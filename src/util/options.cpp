#include "util/options.hpp"

#include <cstdio>
#include <sstream>

#include "util/assert.hpp"
#include "util/string_utils.hpp"

namespace pfp::util {

void Options::add(const std::string& name, const std::string& default_value,
                  const std::string& help) {
  specs_[name] = Spec{default_value, help, false};
}

void Options::add_flag(const std::string& name, const std::string& help) {
  specs_[name] = Spec{"false", help, true};
}

bool Options::parse(int argc, const char* const* argv) {
  values_.clear();
  positional_.clear();
  const std::string program = argc > 0 ? argv[0] : "pfp";
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (!starts_with(arg, "--")) {
      positional_.emplace_back(arg);
      continue;
    }
    arg.remove_prefix(2);
    if (arg == "help") {
      std::fputs(usage(program).c_str(), stdout);
      return false;
    }
    std::string name;
    std::string value;
    bool have_value = false;
    if (const auto eq = arg.find('='); eq != std::string_view::npos) {
      name = std::string(arg.substr(0, eq));
      value = std::string(arg.substr(eq + 1));
      have_value = true;
    } else {
      name = std::string(arg);
    }
    const auto it = specs_.find(name);
    if (it == specs_.end()) {
      std::fprintf(stderr, "unknown option --%s\n%s", name.c_str(),
                   usage(program).c_str());
      return false;
    }
    if (it->second.is_flag && !have_value) {
      value = "true";
      have_value = true;
    }
    if (!have_value) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "option --%s requires a value\n", name.c_str());
        return false;
      }
      value = argv[++i];
    }
    values_[name] = value;
  }
  return true;
}

std::string Options::str(const std::string& name) const {
  const auto spec = specs_.find(name);
  PFP_REQUIRE(spec != specs_.end());
  const auto it = values_.find(name);
  return it != values_.end() ? it->second : spec->second.default_value;
}

std::uint64_t Options::u64(const std::string& name) const {
  const auto text = str(name);
  const auto value = parse_u64(text);
  if (!value) {
    std::fprintf(stderr, "option --%s: '%s' is not an unsigned integer\n",
                 name.c_str(), text.c_str());
    std::exit(2);  // NOLINT(concurrency-mt-unsafe): pre-thread CLI usage error
  }
  return *value;
}

double Options::real(const std::string& name) const {
  const auto text = str(name);
  const auto value = parse_double(text);
  if (!value) {
    std::fprintf(stderr, "option --%s: '%s' is not a number\n", name.c_str(),
                 text.c_str());
    std::exit(2);  // NOLINT(concurrency-mt-unsafe): pre-thread CLI usage error
  }
  return *value;
}

bool Options::flag(const std::string& name) const {
  const auto text = str(name);
  const auto value = parse_bool(text);
  if (!value) {
    std::fprintf(stderr, "option --%s: '%s' is not a boolean\n", name.c_str(),
                 text.c_str());
    std::exit(2);  // NOLINT(concurrency-mt-unsafe): pre-thread CLI usage error
  }
  return *value;
}

std::string Options::usage(const std::string& program) const {
  std::ostringstream os;
  os << "usage: " << program << " [options]\n";
  for (const auto& [name, spec] : specs_) {
    os << "  --" << name;
    if (!spec.is_flag) {
      os << " <value> (default: " << spec.default_value << ")";
    }
    os << "\n      " << spec.help << "\n";
  }
  return os.str();
}

}  // namespace pfp::util
