// Vector with small-buffer inline storage.
//
// Tree nodes average only a few children (the CAD trace's interior nodes
// mostly hold 1–4), but std::vector<NodeId> costs a heap allocation for
// the first child of every node — hundreds of thousands of allocations
// per simulated run.  SmallVector keeps up to N elements inline in the
// node itself and only spills to the heap for the rare high-fanout node
// (the root of a low-locality trace).
//
// Restricted to trivially copyable element types so growth and erasure
// are plain memcpy/memmove; that covers the NodeId/BlockId bookkeeping
// this repo needs and keeps the container auditably simple.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <iterator>
#include <type_traits>

#include "util/assert.hpp"

namespace pfp::util {

template <typename T, std::size_t N = 4>
class SmallVector {
  static_assert(std::is_trivially_copyable_v<T>);
  static_assert(N >= 1);

 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;
  using reverse_iterator = std::reverse_iterator<iterator>;
  using const_reverse_iterator = std::reverse_iterator<const_iterator>;

  SmallVector() = default;

  SmallVector(const SmallVector& other) { assign_from(other); }
  SmallVector& operator=(const SmallVector& other) {
    if (this != &other) {
      release();
      assign_from(other);
    }
    return *this;
  }

  SmallVector(SmallVector&& other) noexcept { steal_from(other); }
  SmallVector& operator=(SmallVector&& other) noexcept {
    if (this != &other) {
      release();
      steal_from(other);
    }
    return *this;
  }

  ~SmallVector() { release(); }

  T* data() noexcept { return on_heap() ? heap_ : inline_; }
  [[nodiscard]] const T* data() const noexcept { return on_heap() ? heap_ : inline_; }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  /// Whether elements currently live in the heap spill (introspection).
  [[nodiscard]] bool on_heap() const noexcept { return capacity_ > N; }

  T& operator[](std::size_t i) {
    PFP_DASSERT(i < size_);
    return data()[i];
  }
  const T& operator[](std::size_t i) const {
    PFP_DASSERT(i < size_);
    return data()[i];
  }

  T& back() {
    PFP_DASSERT(size_ > 0);
    return data()[size_ - 1];
  }
  [[nodiscard]] const T& back() const {
    PFP_DASSERT(size_ > 0);
    return data()[size_ - 1];
  }

  iterator begin() noexcept { return data(); }
  iterator end() noexcept { return data() + size_; }
  [[nodiscard]] const_iterator begin() const noexcept { return data(); }
  [[nodiscard]] const_iterator end() const noexcept { return data() + size_; }
  reverse_iterator rbegin() noexcept { return reverse_iterator(end()); }
  reverse_iterator rend() noexcept { return reverse_iterator(begin()); }
  [[nodiscard]] const_reverse_iterator rbegin() const noexcept {
    return const_reverse_iterator(end());
  }
  [[nodiscard]] const_reverse_iterator rend() const noexcept {
    return const_reverse_iterator(begin());
  }

  void push_back(const T& value) {
    if (size_ == capacity_) {
      grow(capacity_ * 2);
    }
    data()[size_++] = value;
  }

  void pop_back() {
    PFP_DASSERT(size_ > 0);
    --size_;
  }

  /// Erases the element at `pos`, shifting the tail left (preserves
  /// order, unlike swap-and-pop — callers rely on sortedness).
  iterator erase(const_iterator pos) {
    T* base = data();
    const std::size_t index = static_cast<std::size_t>(pos - base);
    PFP_DASSERT(index < size_);
    std::memmove(base + index, base + index + 1,
                 (size_ - index - 1) * sizeof(T));
    --size_;
    return base + index;
  }

  void clear() noexcept { size_ = 0; }

 private:
  void grow(std::size_t new_capacity) {
    T* fresh = new T[new_capacity];  // lint: allow(naked-new) -- owns buffer
    std::memcpy(fresh, data(), size_ * sizeof(T));
    release();
    heap_ = fresh;
    capacity_ = static_cast<std::uint32_t>(new_capacity);
  }

  void release() noexcept {
    if (on_heap()) {
      delete[] heap_;
    }
    capacity_ = N;
  }

  void assign_from(const SmallVector& other) {
    if (other.size_ > N) {
      heap_ = new T[other.capacity_];  // lint: allow(naked-new) -- owns buffer
      capacity_ = other.capacity_;
    }
    size_ = other.size_;
    std::memcpy(data(), other.data(), size_ * sizeof(T));
  }

  void steal_from(SmallVector& other) noexcept {
    if (other.on_heap()) {
      heap_ = other.heap_;
      capacity_ = other.capacity_;
      size_ = other.size_;
      other.capacity_ = N;
      other.size_ = 0;
      return;
    }
    size_ = other.size_;
    std::memcpy(inline_, other.inline_, size_ * sizeof(T));
    other.size_ = 0;
  }

  std::uint32_t size_ = 0;
  std::uint32_t capacity_ = N;
  union {
    T inline_[N];
    T* heap_;
  };
};

}  // namespace pfp::util
