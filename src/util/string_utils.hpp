// Small string helpers shared by the CLI parser, readers and report
// formatting.  Deliberately minimal — no locale, ASCII semantics.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace pfp::util {

/// Splits on a single character; empty fields are preserved.
std::vector<std::string> split(std::string_view text, char sep);

/// Removes leading/trailing whitespace (space, tab, CR, LF).
std::string_view trim(std::string_view text);

/// Case-sensitive prefix test.
bool starts_with(std::string_view text, std::string_view prefix);

/// Strict parse of a non-negative integer; nullopt on any junk.
std::optional<std::uint64_t> parse_u64(std::string_view text);

/// Strict parse of a double; nullopt on any junk.
std::optional<double> parse_double(std::string_view text);

/// Strict parse of a boolean: accepts 0/1/true/false/yes/no/on/off.
std::optional<bool> parse_bool(std::string_view text);

/// "12.3%" style percentage with the given decimals.
std::string format_percent(double fraction, int decimals = 2);

/// Human-readable byte count ("1.25 MiB").
std::string format_bytes(double bytes);

/// Fixed-decimal double without trailing-zero surprises.
std::string format_double(double value, int decimals = 3);

/// Thousands-separated integer ("3,530,115").
std::string format_count(std::uint64_t value);

}  // namespace pfp::util
