#include "util/table.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace pfp::util {

namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) {
    return false;
  }
  for (const char c : s) {
    if ((c < '0' || c > '9') && c != '.' && c != '-' && c != '+' &&
        c != '%' && c != 'e' && c != ',') {
      return false;
    }
  }
  return true;
}

}  // namespace

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  PFP_REQUIRE(!header_.empty());
}

void TextTable::row(std::vector<std::string> fields) {
  PFP_REQUIRE(fields.size() == header_.size());
  rows_.push_back(std::move(fields));
}

void TextTable::print(std::ostream& out) const {
  std::vector<std::size_t> widths(header_.size());
  std::vector<bool> numeric(header_.size(), !rows_.empty());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
    for (const auto& r : rows_) {
      widths[c] = std::max(widths[c], r[c].size());
      if (!looks_numeric(r[c])) {
        numeric[c] = false;
      }
    }
  }
  const auto emit = [&](const std::vector<std::string>& fields) {
    for (std::size_t c = 0; c < fields.size(); ++c) {
      if (c != 0) {
        out << "  ";
      }
      const auto pad = widths[c] - fields[c].size();
      if (numeric[c]) {
        out << std::string(pad, ' ') << fields[c];
      } else {
        out << fields[c] << std::string(pad, ' ');
      }
    }
    out << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (const auto w : widths) {
    total += w;
  }
  total += 2 * (widths.size() - 1);
  out << std::string(total, '-') << '\n';
  for (const auto& r : rows_) {
    emit(r);
  }
}

}  // namespace pfp::util
