// Space-saving top-K heavy-hitter sketch (Metwally, Agrawal, El Abbadi).
//
// Tracks the K most frequent keys of a stream in O(K) memory with one
// O(1) hash probe per record: a tracked key increments its counter; an
// untracked key replaces the current minimum-count entry, inheriting its
// count as the new entry's over-estimation error.  Guarantees:
//
//   - every key with true frequency > N/K is tracked (no false negatives
//     among genuine heavy hitters once the stream is long enough);
//   - count() over-estimates true frequency by at most error();
//   - count() - error() is a LOWER bound on the true frequency, which is
//     what the hot-key routing uses: a key is only treated as hot once
//     its guaranteed count clears a threshold, so the Zipf tail churning
//     through the sketch's minimum slot never qualifies.
//
// The sharded engine's producer feeds every routed access through one of
// these to drive the hot-key mitigation strategies (docs/perf.md,
// "Batched hand-off").  Deterministic by construction: the sketch state
// is a pure function of the record() sequence, which keeps batched
// routing decisions reproducible run to run.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/assert.hpp"
#include "util/flat_map.hpp"

namespace pfp::util {

/// Fixed-capacity space-saving sketch over uint64 keys.
class SpaceSaving {
 public:
  struct Entry {
    std::uint64_t key = 0;
    std::uint64_t count = 0;  ///< estimate; true frequency <= count
    std::uint64_t error = 0;  ///< count inherited at replacement time
  };

  explicit SpaceSaving(std::size_t capacity) : capacity_(capacity) {
    PFP_REQUIRE(capacity >= 1);
    entries_.reserve(capacity);
    index_.reserve(capacity);
  }

  /// Records one occurrence of `key`.
  void record(std::uint64_t key) {
    ++total_;
    if (auto it = index_.find(key); it != index_.end()) {
      ++entries_[it->second].count;
      return;
    }
    if (entries_.size() < capacity_) {
      index_.emplace(key, static_cast<std::uint32_t>(entries_.size()));
      entries_.push_back(Entry{key, 1, 0});
      return;
    }
    // Replace the minimum-count entry; its count becomes the newcomer's
    // over-estimation error.  O(K) scan — K is small (tens) and this
    // path only runs for keys outside the current top-K.
    std::size_t min_slot = 0;
    for (std::size_t i = 1; i < entries_.size(); ++i) {
      if (entries_[i].count < entries_[min_slot].count) {
        min_slot = i;
      }
    }
    Entry& slot = entries_[min_slot];
    index_.erase(slot.key);
    index_.emplace(key, static_cast<std::uint32_t>(min_slot));
    slot.error = slot.count;
    slot.key = key;
    ++slot.count;
  }

  /// True when `key` occupies a sketch slot (tracked, not necessarily a
  /// genuine heavy hitter — see is_heavy()).
  [[nodiscard]] bool tracked(std::uint64_t key) const {
    return index_.contains(key);
  }

  /// True when `key` is tracked with a GUARANTEED frequency (count minus
  /// inherited error) of at least `min_count`.  The guarantee filters
  /// out tail keys cycling through the minimum slot.
  [[nodiscard]] bool is_heavy(std::uint64_t key,
                              std::uint64_t min_count) const {
    const auto it = index_.find(key);
    if (it == index_.end()) {
      return false;
    }
    const Entry& e = entries_[it->second];
    return e.count - e.error >= min_count;
  }

  /// Frequency estimate (upper bound); 0 for untracked keys.
  [[nodiscard]] std::uint64_t count(std::uint64_t key) const {
    const auto it = index_.find(key);
    return it == index_.end() ? 0 : entries_[it->second].count;
  }

  /// Tracked entries, highest count first (ties by key for determinism).
  [[nodiscard]] std::vector<Entry> top() const {
    std::vector<Entry> out = entries_;
    std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
      return a.count != b.count ? a.count > b.count : a.key < b.key;
    });
    return out;
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

  void clear() {
    entries_.clear();
    index_.clear();
    total_ = 0;
  }

 private:
  std::size_t capacity_;
  std::uint64_t total_ = 0;
  std::vector<Entry> entries_;
  FlatMap<std::uint64_t, std::uint32_t> index_;  ///< key -> entries_ slot
};

}  // namespace pfp::util
