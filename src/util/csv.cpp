#include "util/csv.hpp"

#include <sstream>

#include "util/assert.hpp"
#include "util/string_utils.hpp"

namespace pfp::util {

CsvWriter::CsvWriter(std::ostream& out, std::vector<std::string> header)
    : out_(out), columns_(header.size()) {
  PFP_REQUIRE(!header.empty());
  row(header);
  rows_ = 0;  // header does not count as a data row
}

void CsvWriter::row(const std::vector<std::string>& fields) {
  PFP_REQUIRE(fields.size() == columns_);
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i != 0) {
      out_ << ',';
    }
    out_ << escape(fields[i]);
  }
  out_ << '\n';
  ++rows_;
}

std::string CsvWriter::escape(std::string_view field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) {
    return std::string(field);
  }
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (const char c : field) {
    if (c == '"') {
      out.push_back('"');
    }
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

CsvWriter::RowBuilder& CsvWriter::RowBuilder::add(std::string_view value) {
  fields_.emplace_back(value);
  return *this;
}

CsvWriter::RowBuilder& CsvWriter::RowBuilder::add(double value) {
  fields_.push_back(format_double(value, 6));
  return *this;
}

CsvWriter::RowBuilder& CsvWriter::RowBuilder::add(std::uint64_t value) {
  fields_.push_back(std::to_string(value));
  return *this;
}

void CsvWriter::RowBuilder::done() { writer_.row(fields_); }

}  // namespace pfp::util
