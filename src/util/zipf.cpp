#include "util/zipf.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace pfp::util {

namespace {

// (exp(t) - 1) / t, stable near t = 0.
double expm1_over_t(double t) {
  if (std::abs(t) > 1e-8) {
    return std::expm1(t) / t;
  }
  return 1.0 + t * 0.5 * (1.0 + t / 3.0 * (1.0 + t * 0.25));
}

// log1p(t) / t, stable near t = 0.
double log1p_over_t(double t) {
  if (std::abs(t) > 1e-8) {
    return std::log1p(t) / t;
  }
  return 1.0 - t * (0.5 - t * (1.0 / 3.0 - t * 0.25));
}

}  // namespace

// H(x) = integral of x^(-s): ((x^(1-s)) - 1) / (1 - s), continued to s = 1.
double ZipfSampler::h(double x) const {
  const double log_x = std::log(x);
  return expm1_over_t((1.0 - s_) * log_x) * log_x;
}

double ZipfSampler::h_inverse(double x) const {
  double t = x * (1.0 - s_);
  if (t < -1.0) {
    t = -1.0;  // round-off guard; maps back into the domain
  }
  return std::exp(log1p_over_t(t) * x);
}

ZipfSampler::ZipfSampler(std::uint64_t n, double s) : n_(n), s_(s) {
  PFP_REQUIRE(n >= 1);
  PFP_REQUIRE(s > 0.0);
  h_x1_ = h(1.5) - 1.0;
  h_n_ = h(static_cast<double>(n) + 0.5);
  threshold_ = 2.0 - h_inverse(h(2.5) - std::exp(-s_ * std::log(2.0)));
}

std::uint64_t ZipfSampler::operator()(Xoshiro256& rng) const {
  // Hörmann & Derflinger rejection-inversion.
  for (;;) {
    const double u = h_n_ + rng.uniform() * (h_x1_ - h_n_);
    const double x = h_inverse(u);
    double k = std::floor(x + 0.5);
    if (k < 1.0) {
      k = 1.0;
    } else if (k > static_cast<double>(n_)) {
      k = static_cast<double>(n_);
    }
    if (k - x <= threshold_ ||
        u >= h(k + 0.5) - std::exp(-s_ * std::log(k))) {
      return static_cast<std::uint64_t>(k) - 1;  // ranks are 0-based
    }
  }
}

}  // namespace pfp::util
