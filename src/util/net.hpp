// Minimal TCP socket and readiness primitives for the server frontend.
//
// The server layer (src/server/) owns all protocol logic; this header
// owns the raw OS surface — RAII file descriptors, loopback listen/
// connect, non-blocking reads/writes with EINTR handling, a poll(2)
// readiness multiplexer, and a self-pipe WakeFd so event loops can be
// interrupted from other threads.  Raw socket calls are banned outside
// src/server/ + src/util/ by scripts/lint/check_conventions.py
// (`raw-socket`), so every byte that crosses the network goes through
// this one reviewed surface.
//
// Threading: a Socket/Poller belongs to exactly one event-loop thread
// (see server::PrefetchServer); WakeFd is the only cross-thread object —
// wake() may be called from any thread, drain() only by the owning loop.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace pfp::util::net {

/// Move-only RAII file descriptor (closes on destruction).
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) noexcept : fd_(fd) {}
  ~Socket() { reset(); }

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept : fd_(other.release()) {}
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.release();
    }
    return *this;
  }

  [[nodiscard]] int fd() const noexcept { return fd_; }
  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  /// Relinquishes ownership without closing.
  int release() noexcept {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }
  /// Closes the descriptor (idempotent).
  void reset() noexcept;

 private:
  int fd_ = -1;
};

/// Result of a non-blocking read/write attempt.
enum class IoStatus {
  kOk,          ///< `bytes` transferred (> 0)
  kWouldBlock,  ///< no progress possible right now (EAGAIN)
  kClosed,      ///< orderly peer shutdown (reads only)
  kError,       ///< connection-fatal errno (reset, pipe, ...)
};

struct IoResult {
  IoStatus status = IoStatus::kError;
  std::size_t bytes = 0;
};

/// Binds and listens on 127.0.0.1:`port` (0 = kernel-assigned), sets the
/// listener non-blocking and SO_REUSEADDR.  Throws std::runtime_error
/// with the errno text on failure.
[[nodiscard]] Socket listen_tcp(std::uint16_t port);

/// The port a listener (or any bound socket) is actually bound to.
[[nodiscard]] std::uint16_t local_port(const Socket& socket);

/// Blocking loopback connect (client side; tests and load tools).
/// Throws std::runtime_error on failure.
[[nodiscard]] Socket connect_tcp(std::uint16_t port);

/// Accepts one pending connection, already set non-blocking; an invalid
/// Socket when the backlog is empty.
[[nodiscard]] Socket accept_one(const Socket& listener);

/// Non-blocking read into `buf`; EINTR is retried internally.
[[nodiscard]] IoResult read_some(const Socket& socket,
                                 std::span<std::uint8_t> buf);

/// Non-blocking write from `buf`; EINTR is retried internally.  A short
/// write returns kOk with the partial count.
[[nodiscard]] IoResult write_some(const Socket& socket,
                                  std::span<const std::uint8_t> buf);

/// Blocking helpers for client-side code (load_gen, tests): loop until
/// the whole buffer moved or the connection failed.  Return false on
/// EOF/error.
[[nodiscard]] bool write_all(const Socket& socket,
                             std::span<const std::uint8_t> buf);
[[nodiscard]] bool read_exact(const Socket& socket,
                              std::span<std::uint8_t> buf);

/// Readiness interest/result bits (a stable subset of poll(2)'s).
struct Readiness {
  bool readable = false;
  bool writable = false;
  bool error = false;  ///< POLLERR/POLLHUP/POLLNVAL
};

/// One registered descriptor's interest set and last poll result.
struct PollEntry {
  int fd = -1;
  bool want_read = false;
  bool want_write = false;
  Readiness ready;  ///< filled by Poller::wait
};

/// poll(2) wrapper: the caller owns the entry list (rebuilt or edited
/// between waits), wait() fills each entry's `ready` and returns the
/// number of ready descriptors (0 on timeout).  Throws on EINVAL-class
/// failures; EINTR reads as a timeout.
class Poller {
 public:
  /// `timeout_ms` < 0 blocks indefinitely.
  int wait(std::vector<PollEntry>& entries, int timeout_ms);

 private:
  // Scratch pollfd array, kept to avoid per-wait allocation.
  std::vector<std::uint64_t> scratch_;  // holds struct pollfd bytes
};

/// Self-pipe wakeup: wake() (any thread) makes the read end readable so
/// a poll-parked loop returns; drain() (owning loop only) clears it.
class WakeFd {
 public:
  /// Throws std::runtime_error if the pipe cannot be created.
  WakeFd();

  [[nodiscard]] int read_fd() const noexcept { return read_end_.fd(); }
  /// Any thread; a full pipe is fine (the loop is already signalled).
  void wake() noexcept;
  /// Owning loop only: consume pending wake bytes.
  void drain() noexcept;

 private:
  Socket read_end_;
  Socket write_end_;
};

/// errno rendered as "what: strerror" (for exception messages).
[[nodiscard]] std::string errno_message(const std::string& what);

}  // namespace pfp::util::net
