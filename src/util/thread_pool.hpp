// Fixed-size thread pool for independent simulation runs.
//
// Every experiment is a sweep of independent (trace, policy, cache-size)
// simulations; sim::Sweep submits each run here.  The pool is a classic
// mutex/condvar work queue — the tasks are seconds long, so lock-free
// queues would buy nothing.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <queue>
#include <thread>
#include <vector>

#include "util/thread_annotations.hpp"

namespace pfp::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means std::thread::hardware_concurrency()
  /// (minimum one worker either way).
  explicit ThreadPool(std::size_t threads = 0);

  /// Drains the queue and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; the future resolves with its result (or exception).
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using Result = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<Result()>>(std::forward<F>(fn));
    std::future<Result> future = task->get_future();
    {
      MutexLock lock(mutex_);
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return future;
  }

  /// Safe from any thread: workers_ is written only during construction
  /// (const-after-construction, so no capability guards it).
  [[nodiscard]] std::size_t thread_count() const noexcept { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  Mutex mutex_;
  std::queue<std::function<void()>> queue_ PFP_GUARDED_BY(mutex_);
  std::condition_variable cv_;
  bool stopping_ PFP_GUARDED_BY(mutex_) = false;
};

}  // namespace pfp::util
