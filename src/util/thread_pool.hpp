// Fixed-size thread pool for independent simulation runs.
//
// Every experiment is a sweep of independent (trace, policy, cache-size)
// simulations; sim::Sweep submits each run here.  The pool is a classic
// mutex/condvar work queue — the tasks are seconds long, so lock-free
// queues would buy nothing.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace pfp::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means std::thread::hardware_concurrency()
  /// (minimum one worker either way).
  explicit ThreadPool(std::size_t threads = 0);

  /// Drains the queue and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; the future resolves with its result (or exception).
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using Result = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<Result()>>(std::forward<F>(fn));
    std::future<Result> future = task->get_future();
    {
      std::lock_guard lock(mutex_);
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return future;
  }

  [[nodiscard]] std::size_t thread_count() const noexcept { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace pfp::util
