#include "util/string_utils.hpp"

#include <charconv>
#include <cstdio>

namespace pfp::util {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view trim(std::string_view text) {
  const auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\r' || c == '\n';
  };
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && is_space(text[begin])) ++begin;
  while (end > begin && is_space(text[end - 1])) --end;
  return text.substr(begin, end - begin);
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::optional<std::uint64_t> parse_u64(std::string_view text) {
  std::uint64_t value = 0;
  const char* first = text.data();
  const char* last = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc{} || ptr != last || text.empty()) {
    return std::nullopt;
  }
  return value;
}

std::optional<double> parse_double(std::string_view text) {
  double value = 0.0;
  const char* first = text.data();
  const char* last = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc{} || ptr != last || text.empty()) {
    return std::nullopt;
  }
  return value;
}

std::optional<bool> parse_bool(std::string_view text) {
  if (text == "1" || text == "true" || text == "yes" || text == "on") {
    return true;
  }
  if (text == "0" || text == "false" || text == "no" || text == "off") {
    return false;
  }
  return std::nullopt;
}

std::string format_percent(double fraction, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", decimals, fraction * 100.0);
  return buf;
}

std::string format_bytes(double bytes) {
  static constexpr const char* units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  int unit = 0;
  while (bytes >= 1024.0 && unit < 4) {
    bytes /= 1024.0;
    ++unit;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.2f %s", bytes, units[unit]);
  return buf;
}

std::string format_double(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
  return buf;
}

std::string format_count(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const std::size_t lead = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - lead) % 3 == 0 && i >= lead) {
      out.push_back(',');
    }
    out.push_back(digits[i]);
  }
  return out;
}

}  // namespace pfp::util
