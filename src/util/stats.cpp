#include "util/stats.hpp"

#include <cmath>
#include <sstream>

namespace pfp::util {

void RunningStats::add(double x) noexcept {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(count_);
  const auto nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  count_ += other.count_;
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
}

double RunningStats::variance() const noexcept {
  return count_ > 1 ? m2_ / static_cast<double>(count_) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

std::string RunningStats::summary() const {
  std::ostringstream os;
  os << "mean=" << mean() << " sd=" << stddev() << " min=" << min()
     << " max=" << max() << " n=" << count();
  return os.str();
}

}  // namespace pfp::util
