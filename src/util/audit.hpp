// SIM_AUDIT: opt-in deep invariant checking for debug builds.
//
// The cost-benefit scheme leans on structural invariants the type system
// cannot express: the demand/prefetch partition of the buffer pool
// (Figure 2), LRU-list/hash-map agreement inside each cache, and the
// parent/child/weight discipline of the LZ prefetch tree (Section 2).
// PFP_DASSERT guards single operations; the audits here sweep whole
// containers and cross-check redundant state, so a bookkeeping bug is
// caught at the operation that introduced it instead of thousands of
// accesses later when a counter drifts.
//
// Levels (set SIM_AUDIT at compile time; CMake: -DPFP_AUDIT=ON and
// -DPFP_AUDIT_LEVEL=<1|2>):
//   0 (default)  audits compile to nothing; zero release overhead.
//   1            audit() sweeps are compiled and callable — tests and
//                tools invoke them explicitly after interesting ops.
//   2            every mutating container operation additionally runs a
//                full sweep (O(n) per op; debugging sessions only).
//
// On a violated invariant the installed handler is called; the default
// prints the failure and aborts.  Tests install a throwing handler to
// assert that a deliberately corrupted structure is detected.
#pragma once

#ifndef SIM_AUDIT
#define SIM_AUDIT 0
#endif

#define PFP_AUDIT_ENABLED (SIM_AUDIT >= 1)

namespace pfp::util {

/// Called with the auditing component ("DemandCache", ...), a description
/// of the violated invariant, and the audit's source location.  The
/// handler may throw (tests) or return (logging); returning from the
/// default handler is impossible — it aborts.
using AuditHandler = void (*)(const char* component, const char* what,
                              const char* file, int line);

/// Installs a new failure handler and returns the previous one.
/// Pass nullptr to restore the default print-and-abort handler.
AuditHandler set_audit_handler(AuditHandler handler) noexcept;

/// Invokes the current handler (used by the PFP_AUDIT macro).
void audit_failure(const char* component, const char* what, const char* file,
                   int line);

}  // namespace pfp::util

#if PFP_AUDIT_ENABLED
#define PFP_AUDIT(component, cond, what)                                   \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::pfp::util::audit_failure(component, what, __FILE__, __LINE__);     \
    }                                                                      \
  } while (0)
// Level-2 hook: placed at the end of mutating operations; expands to a
// full audit sweep only when per-operation auditing was requested.
#if SIM_AUDIT >= 2
#define PFP_AUDIT_SWEEP(obj) (obj).audit()
#else
#define PFP_AUDIT_SWEEP(obj) ((void)0)
#endif
#else
#define PFP_AUDIT(component, cond, what) ((void)0)
#define PFP_AUDIT_SWEEP(obj) ((void)0)
#endif
