// Phase-timing primitives for the per-access state machine.
//
// The observability layer (src/obs/) aggregates per-phase latencies of
// the six engine stages (lookup -> predictor update -> enumeration ->
// cost-benefit -> issue -> eviction).  The phase ids, the atomic bucket
// cells and the stopwatch that stamps transitions live here — the lowest
// layer — because core policies mark transitions inside their own code
// and core must not depend on obs (layering: obs includes util only,
// core includes util, engine includes both; see docs/observability.md).
//
// Everything in this header compiles to no-ops when the PFP_OBS CMake
// option is OFF: the stopwatch becomes an empty struct, so instrumented
// call sites cost literally nothing.  The macro is defined PUBLIC on
// pfp_util (like SIM_AUDIT) so every translation unit agrees on the
// layout of the instrumented types.
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/thread_annotations.hpp"

#ifdef PFP_OBS
#include <atomic>
#include <chrono>
#endif

namespace pfp::util {

/// The six stages of the engine's per-access state machine, in pipeline
/// order.  Phase-timer placement is documented in docs/observability.md.
enum class EnginePhase : std::uint8_t {
  kLookup = 0,       ///< buffer-cache probe + hit/miss bookkeeping
  kPredictorUpdate,  ///< LZ tree parse step + Table 2/3 instrumentation
  kEnumeration,      ///< candidate enumeration below the parse position
  kCostBenefit,      ///< Eq. 1-14 benefit tabulation, filter and sort
  kIssue,            ///< prefetch admission loop + estimator end-of-period
  kEviction,         ///< demand-miss reclaim + admission
};

inline constexpr std::size_t kEnginePhaseCount = 6;

/// Stable short names, indexable by static_cast<size_t>(phase); used as
/// Prometheus label values and Chrome trace categories.
inline constexpr const char* kEnginePhaseNames[kEnginePhaseCount] = {
    "lookup",       "predictor_update", "enumeration",
    "cost_benefit", "issue",            "eviction",
};

/// Log2 latency buckets: bucket i counts durations with
/// bit_width(ns) == i, i.e. [2^(i-1), 2^i) ns, bucket 0 counts 0 ns.
/// 32 buckets cap the histogram at ~2.1 s — far beyond any phase.
inline constexpr std::size_t kPhaseBucketCount = 32;

#ifdef PFP_OBS

/// Live per-phase accumulation cells: sample count, total nanoseconds and
/// fixed log2-bucket counts per phase.  Single-writer (the engine
/// thread); relaxed atomics make concurrent reads from a stats scraper
/// well-defined.  Snapshot consistency across cells is the caller's job
/// (obs::EngineObs wraps reads in a seqlock-style version gate).
class PhaseCells {
 public:
  /// The calling thread declares itself the unique writer (zero-cost
  /// trust declaration for the thread-safety analysis; the engine thread
  /// owns the stopwatch that feeds these cells).
  void assert_writer() const noexcept PFP_ASSERT_CAPABILITY(writer_role) {}

  void add(EnginePhase phase, std::uint64_t ns) noexcept
      PFP_REQUIRES(writer_role) {
    const auto p = static_cast<std::size_t>(phase);
    std::size_t bucket = 0;
    std::uint64_t x = ns;
    while (x != 0) {  // bit_width without <bit> (keep the header light)
      ++bucket;
      x >>= 1;
    }
    if (bucket >= kPhaseBucketCount) {
      bucket = kPhaseBucketCount - 1;  // clamp into the overflow bucket
    }
    bump(count_[p]);
    bump(total_ns_[p], ns);
    bump(buckets_[p][bucket]);
  }

  [[nodiscard]] std::uint64_t count(std::size_t phase) const noexcept {
    return count_[phase].load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t total_ns(std::size_t phase) const noexcept {
    return total_ns_[phase].load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t bucket(std::size_t phase,
                                     std::size_t i) const noexcept {
    return buckets_[phase][i].load(std::memory_order_relaxed);
  }

  /// Writer role capability (zero-size; public so capability expressions
  /// can name it, see thread_annotations.hpp).
  ThreadRole writer_role;

 private:
  // Single-writer increment: a relaxed load+store pair is cheaper than a
  // fetch_add and equivalent when only one thread ever writes.
  static void bump(std::atomic<std::uint64_t>& cell,
                   std::uint64_t delta = 1) noexcept {
    cell.store(cell.load(std::memory_order_relaxed) + delta,
               std::memory_order_relaxed);
  }

  // writers: the single writer_role holder (the engine thread's
  // stopwatch)  readers: any stats-scraper thread (PhaseTiming::sample)
  std::atomic<std::uint64_t> count_[kEnginePhaseCount] = {};
  std::atomic<std::uint64_t> total_ns_[kEnginePhaseCount] = {};
  std::atomic<std::uint64_t> buckets_[kEnginePhaseCount][kPhaseBucketCount] =
      {};
};

/// Sequential-phase stopwatch: one clock read per phase boundary instead
/// of two per phase.  start() stamps the origin; each mark(p) charges the
/// time since the previous stamp to phase p.  Disarmed (null cells) it
/// costs one predictable branch per call; with PFP_OBS off the whole
/// class is an empty stub.
class PhaseStopwatch {
 public:
  void arm(PhaseCells* cells) noexcept { cells_ = cells; }
  [[nodiscard]] bool armed() const noexcept { return cells_ != nullptr; }

  void start() noexcept {
    if (cells_ != nullptr) {
      last_ = now_ns();
    }
  }

  void mark(EnginePhase phase) noexcept {
    if (cells_ == nullptr) {
      return;
    }
    // The stopwatch has exactly one owner (the engine thread), so its
    // marks are the cells' single writer by construction.
    cells_->assert_writer();
    const std::uint64_t now = now_ns();
    cells_->add(phase, now - last_);
    last_ = now;
  }

 private:
  static std::uint64_t now_ns() noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  PhaseCells* cells_ = nullptr;
  std::uint64_t last_ = 0;
};

#else  // !PFP_OBS: zero-cost stubs with the same surface

class PhaseCells {
 public:
  void assert_writer() const noexcept {}
  void add(EnginePhase, std::uint64_t) noexcept {}
  [[nodiscard]] std::uint64_t count(std::size_t) const noexcept { return 0; }
  [[nodiscard]] std::uint64_t total_ns(std::size_t) const noexcept {
    return 0;
  }
  [[nodiscard]] std::uint64_t bucket(std::size_t, std::size_t) const noexcept {
    return 0;
  }
};

class PhaseStopwatch {
 public:
  void arm(PhaseCells*) noexcept {}
  [[nodiscard]] bool armed() const noexcept { return false; }
  void start() noexcept {}
  void mark(EnginePhase) noexcept {}
};

#endif  // PFP_OBS

/// Instrumentation stamp used by core policies: `phase_mark(ctx.phases,
/// EnginePhase::kEnumeration)`.  Null-safe so uninstrumented drivers pass
/// nullptr; compiles to nothing when PFP_OBS is off.
inline void phase_mark(PhaseStopwatch* stopwatch, EnginePhase phase) noexcept {
  if (stopwatch != nullptr) {
    stopwatch->mark(phase);
  }
}

}  // namespace pfp::util
