// Deterministic pseudo-random number generation.
//
// All stochastic components of the workload generators draw from
// Xoshiro256** seeded through SplitMix64, so every trace and therefore
// every experiment in the repository is exactly reproducible from a
// 64-bit seed.  We avoid std::mt19937 both for speed and because its
// distributions are not bit-identical across standard library
// implementations; ours are.
#pragma once

#include <array>
#include <cstdint>

namespace pfp::util {

/// SplitMix64: tiny, high-quality 64-bit generator.  Used directly for
/// cheap hashing/streams and to seed Xoshiro256**.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  /// Next 64 uniformly distributed bits.
  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256**: fast general-purpose PRNG with 2^256-1 period.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from one 64-bit seed via SplitMix64.
  explicit Xoshiro256(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  /// Next 64 uniformly distributed bits.
  std::uint64_t next() noexcept;

  /// UniformRandomBitGenerator interface.
  std::uint64_t operator()() noexcept { return next(); }
  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept { return ~0ULL; }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi) noexcept;

  /// True with probability p (clamped to [0,1]).
  bool bernoulli(double p) noexcept;

  /// Geometric number of failures before first success, success prob p.
  /// Returns 0 when p >= 1.
  std::uint64_t geometric(double p) noexcept;

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean) noexcept;

  /// Poisson-distributed count with the given mean (inversion for small
  /// means, normal approximation above 64).
  std::uint64_t poisson(double mean) noexcept;

  /// Standard normal variate (polar method).
  double normal() noexcept;

  /// Normal variate with mean mu and standard deviation sigma.
  double normal(double mu, double sigma) noexcept;

  /// Log-normal variate parameterized by the underlying normal.
  double lognormal(double mu, double sigma) noexcept;

 private:
  std::array<std::uint64_t, 4> s_{};
  bool have_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace pfp::util
