#include "util/histogram.hpp"

#include <bit>
#include <cmath>
#include <sstream>

#include "util/assert.hpp"

namespace pfp::util {

LinearHistogram::LinearHistogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  PFP_REQUIRE(hi > lo);
  PFP_REQUIRE(bins > 0);
}

void LinearHistogram::add(double x, std::uint64_t weight) {
  total_ += weight;
  if (x < lo_) {
    underflow_ += weight;
    return;
  }
  if (x >= hi_) {
    overflow_ += weight;
    return;
  }
  auto idx = static_cast<std::size_t>((x - lo_) / width_);
  if (idx >= counts_.size()) {
    idx = counts_.size() - 1;  // floating-point edge
  }
  counts_[idx] += weight;
}

double LinearHistogram::bin_lo(std::size_t i) const {
  PFP_REQUIRE(i < counts_.size());
  return lo_ + width_ * static_cast<double>(i);
}

double LinearHistogram::bin_hi(std::size_t i) const {
  return bin_lo(i) + width_;
}

double LinearHistogram::quantile(double q) const {
  PFP_REQUIRE(q >= 0.0 && q <= 1.0);
  if (total_ == 0) {
    return lo_;
  }
  const double target = q * static_cast<double>(total_);
  double cumulative = static_cast<double>(underflow_);
  if (cumulative >= target) {
    return lo_;
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cumulative + static_cast<double>(counts_[i]);
    if (next >= target && counts_[i] > 0) {
      const double frac =
          (target - cumulative) / static_cast<double>(counts_[i]);
      return bin_lo(i) + frac * width_;
    }
    cumulative = next;
  }
  return hi_;
}

void LinearHistogram::merge(const LinearHistogram& other) {
  PFP_REQUIRE(lo_ == other.lo_ && hi_ == other.hi_ &&
              counts_.size() == other.counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  total_ += other.total_;
}

void LinearHistogram::reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  underflow_ = overflow_ = total_ = 0;
}

void Log2Histogram::add(std::uint64_t x, std::uint64_t weight) {
  const std::size_t bucket =
      x == 0 ? 0 : static_cast<std::size_t>(std::bit_width(x));
  if (bucket >= counts_.size()) {
    counts_.resize(bucket + 1, 0);
  }
  counts_[bucket] += weight;
  total_ += weight;
}

std::uint64_t Log2Histogram::bucket_count(std::size_t i) const {
  return i < counts_.size() ? counts_[i] : 0;
}

std::uint64_t Log2Histogram::bucket_lo(std::size_t i) noexcept {
  return i == 0 ? 0 : (1ULL << (i - 1));
}

std::uint64_t Log2Histogram::bucket_hi(std::size_t i) noexcept {
  return i == 0 ? 0 : (1ULL << i) - 1;
}

std::string Log2Histogram::to_string() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) {
      continue;
    }
    os << bucket_lo(i) << "-" << bucket_hi(i) << ": " << counts_[i] << "\n";
  }
  return os.str();
}

void Log2Histogram::merge(const Log2Histogram& other) {
  if (other.counts_.size() > counts_.size()) {
    counts_.resize(other.counts_.size(), 0);
  }
  for (std::size_t i = 0; i < other.counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  total_ += other.total_;
}

void Log2Histogram::reset() {
  counts_.clear();
  total_ = 0;
}

}  // namespace pfp::util
