// Index-based intrusive LRU list.
//
// The demand cache, prefetch cache, L1 filter and the bounded prefetch
// tree all need recency ordering over pool slots.  Rather than a
// std::list<T> per container (pointer-chasing, per-node allocation), this
// list links external slot indices through two parallel vectors — cheap to
// grow, cache-friendly, and trivially serializable.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "util/assert.hpp"

namespace pfp::util {

/// Doubly linked recency list over slot indices [0, capacity).
/// Front = most recently used, back = least recently used.
/// A slot is either linked (present) or unlinked; linking a linked slot or
/// unlinking an unlinked one is a contract violation.
class LruList {
 public:
  static constexpr std::uint32_t npos =
      std::numeric_limits<std::uint32_t>::max();

  LruList() = default;
  explicit LruList(std::size_t capacity) { resize(capacity); }

  /// Grows the slot universe; existing links are preserved.
  void resize(std::size_t capacity) {
    PFP_REQUIRE(capacity < npos - 1);  // npos and npos-1 are sentinels
    next_.resize(capacity, unlinked);
    prev_.resize(capacity, unlinked);
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return next_.size(); }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  [[nodiscard]] bool contains(std::uint32_t slot) const noexcept {
    return slot < next_.size() && next_[slot] != unlinked;
  }

  [[nodiscard]] std::uint32_t front() const noexcept { return head_; }
  [[nodiscard]] std::uint32_t back() const noexcept { return tail_; }

  /// Successor toward the LRU end; npos past the tail.
  [[nodiscard]] std::uint32_t next(std::uint32_t slot) const noexcept {
    PFP_DASSERT(contains(slot));
    return next_[slot] == end_mark ? npos : next_[slot];
  }

  /// Predecessor toward the MRU end; npos before the head.
  [[nodiscard]] std::uint32_t prev(std::uint32_t slot) const noexcept {
    PFP_DASSERT(contains(slot));
    return prev_[slot] == end_mark ? npos : prev_[slot];
  }

  /// Inserts an unlinked slot at the MRU position.
  void push_front(std::uint32_t slot) {
    PFP_DASSERT(slot < next_.size());
    PFP_DASSERT(!contains(slot));
    prev_[slot] = end_mark;
    next_[slot] = head_ == npos ? end_mark : head_;
    if (head_ != npos) {
      prev_[head_] = slot;
    } else {
      tail_ = slot;
    }
    head_ = slot;
    ++size_;
  }

  /// Removes a linked slot.
  void erase(std::uint32_t slot) {
    PFP_DASSERT(contains(slot));
    const std::uint32_t p = prev_[slot];
    const std::uint32_t n = next_[slot];
    if (p == end_mark) {
      head_ = (n == end_mark) ? npos : n;
    } else {
      next_[p] = n;
    }
    if (n == end_mark) {
      tail_ = (p == end_mark) ? npos : p;
    } else {
      prev_[n] = p;
    }
    next_[slot] = unlinked;
    prev_[slot] = unlinked;
    --size_;
  }

  /// Marks a linked slot as most recently used.
  void touch(std::uint32_t slot) {
    if (head_ == slot) {
      return;
    }
    erase(slot);
    push_front(slot);
  }

  /// Removes and returns the LRU slot; npos when empty.
  std::uint32_t pop_back() {
    if (tail_ == npos) {
      return npos;
    }
    const std::uint32_t victim = tail_;
    erase(victim);
    return victim;
  }

  void clear() {
    for (std::uint32_t s = head_; s != npos;) {
      const std::uint32_t n = (next_[s] == end_mark) ? npos : next_[s];
      next_[s] = unlinked;
      prev_[s] = unlinked;
      s = n;
    }
    head_ = tail_ = npos;
    size_ = 0;
  }

 private:
  // unlinked marks slots outside the list; end_mark terminates the chain
  // (distinct so contains() is O(1) without a separate bitmap).
  static constexpr std::uint32_t unlinked = npos;
  static constexpr std::uint32_t end_mark = npos - 1;

  std::vector<std::uint32_t> next_;
  std::vector<std::uint32_t> prev_;
  std::uint32_t head_ = npos;
  std::uint32_t tail_ = npos;
  std::size_t size_ = 0;
};

}  // namespace pfp::util
