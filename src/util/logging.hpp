// Leveled stderr logging.
//
// The library itself never logs on hot paths; logging exists for the
// examples, benches and long sweeps (progress reporting).  Level is a
// process-wide atomic so sweep worker threads can log safely.
#pragma once

#include <atomic>
#include <sstream>
#include <string>

namespace pfp::util {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global threshold; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits one line ("[level] message") to stderr, thread-atomically.
void log_message(LogLevel level, const std::string& message);

namespace detail {

/// Builds the message with ostream formatting, emits on destruction.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail

}  // namespace pfp::util

#define PFP_LOG_DEBUG()                                                    \
  ::pfp::util::detail::LogLine(::pfp::util::LogLevel::kDebug)
#define PFP_LOG_INFO() ::pfp::util::detail::LogLine(::pfp::util::LogLevel::kInfo)
#define PFP_LOG_WARN() ::pfp::util::detail::LogLine(::pfp::util::LogLevel::kWarn)
#define PFP_LOG_ERROR()                                                    \
  ::pfp::util::detail::LogLine(::pfp::util::LogLevel::kError)
