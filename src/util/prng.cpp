#include "util/prng.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace pfp::util {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) noexcept {
  SplitMix64 sm(seed);
  for (auto& word : s_) {
    word = sm.next();
  }
  // An all-zero state would be a fixed point; SplitMix64 cannot emit four
  // consecutive zeros, but keep the guarantee explicit.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) {
    s_[0] = 0x9e3779b97f4a7c15ULL;
  }
}

std::uint64_t Xoshiro256::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Xoshiro256::uniform() noexcept {
  // Top 53 bits -> [0,1) with full double precision.
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Xoshiro256::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Xoshiro256::below(std::uint64_t bound) noexcept {
  PFP_DASSERT(bound > 0);
  // Lemire's multiply-shift rejection method: unbiased and avoids a modulo
  // in the common case.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::uint64_t Xoshiro256::range(std::uint64_t lo, std::uint64_t hi) noexcept {
  PFP_DASSERT(lo <= hi);
  return lo + below(hi - lo + 1);
}

bool Xoshiro256::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

std::uint64_t Xoshiro256::geometric(double p) noexcept {
  if (p >= 1.0) return 0;
  PFP_DASSERT(p > 0.0);
  const double u = 1.0 - uniform();  // u in (0,1]
  return static_cast<std::uint64_t>(std::floor(std::log(u) / std::log1p(-p)));
}

double Xoshiro256::exponential(double mean) noexcept {
  PFP_DASSERT(mean > 0.0);
  return -mean * std::log1p(-uniform());
}

std::uint64_t Xoshiro256::poisson(double mean) noexcept {
  PFP_DASSERT(mean >= 0.0);
  if (mean <= 0.0) return 0;
  if (mean < 64.0) {
    // Knuth inversion.
    const double limit = std::exp(-mean);
    double product = uniform();
    std::uint64_t count = 0;
    while (product > limit) {
      product *= uniform();
      ++count;
    }
    return count;
  }
  // Normal approximation suffices for the large means the workload
  // generators use (burst sizes), clamped at zero.
  const double v = normal(mean, std::sqrt(mean));
  return v <= 0.0 ? 0 : static_cast<std::uint64_t>(v + 0.5);
}

double Xoshiro256::normal() noexcept {
  if (have_spare_normal_) {
    have_spare_normal_ = false;
    return spare_normal_;
  }
  // Marsaglia polar method.
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  have_spare_normal_ = true;
  return u * factor;
}

double Xoshiro256::normal(double mu, double sigma) noexcept {
  return mu + sigma * normal();
}

double Xoshiro256::lognormal(double mu, double sigma) noexcept {
  return std::exp(normal(mu, sigma));
}

}  // namespace pfp::util
