// Little-endian scalar (de)serialization helpers for versioned binary
// streams.
//
// Every persistent stream in the simulator ("PFTR" trees, "PFEG" engine
// snapshots, the predictor blobs) speaks the same dialect: fixed-width
// little-endian integers, doubles as bit-cast u64.  The helpers are
// byte-at-a-time so the on-disk format is host-endianness-independent.
// Readers return garbage on a truncated stream rather than throwing —
// callers must check the stream state and raise their own typed error,
// which keeps each format's error vocabulary ("prefetch-tree stream:",
// "engine snapshot stream:", ...) with its owner.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <istream>
#include <ostream>

namespace pfp::util {

inline void write_u16(std::ostream& out, std::uint16_t v) {
  out.put(static_cast<char>(v & 0xff));
  out.put(static_cast<char>((v >> 8) & 0xff));
}

inline void write_u32(std::ostream& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.put(static_cast<char>(v & 0xff));
    v >>= 8;
  }
}

inline void write_u64(std::ostream& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.put(static_cast<char>(v & 0xff));
    v >>= 8;
  }
}

/// Signed values travel as their two's-complement bit pattern.
inline void write_i64(std::ostream& out, std::int64_t v) {
  write_u64(out, static_cast<std::uint64_t>(v));
}

inline void write_f64(std::ostream& out, double v) {
  write_u64(out, std::bit_cast<std::uint64_t>(v));
}

inline std::uint16_t read_u16(std::istream& in) {
  std::array<unsigned char, 2> b{};
  in.read(reinterpret_cast<char*>(b.data()), b.size());
  return static_cast<std::uint16_t>(b[0] | (b[1] << 8));
}

inline std::uint32_t read_u32(std::istream& in) {
  std::array<unsigned char, 4> b{};
  in.read(reinterpret_cast<char*>(b.data()), b.size());
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | b[static_cast<std::size_t>(i)];
  }
  return v;
}

inline std::uint64_t read_u64(std::istream& in) {
  std::array<unsigned char, 8> b{};
  in.read(reinterpret_cast<char*>(b.data()), b.size());
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | b[static_cast<std::size_t>(i)];
  }
  return v;
}

inline std::int64_t read_i64(std::istream& in) {
  return static_cast<std::int64_t>(read_u64(in));
}

inline double read_f64(std::istream& in) {
  return std::bit_cast<double>(read_u64(in));
}

}  // namespace pfp::util
