// Aligned console tables for bench output.
//
// Each bench reproduces a paper table/figure as rows on stdout; this
// printer right-aligns numeric columns so series are easy to eyeball and
// diff.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace pfp::util {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends a row; must match the header width.
  void row(std::vector<std::string> fields);

  /// Renders with a header underline; columns padded to the widest cell.
  void print(std::ostream& out) const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pfp::util
