// Software-prefetch helpers for pointer-chasing walks.
//
// The tree hot paths stream over contiguous sibling runs but gather node
// records scattered across the hot plane; issuing prefetches a few
// iterations ahead hides that gather latency (the SWPrefetcher idiom from
// the pointer-chase-prefetcher literature).  All helpers compile to plain
// `__builtin_prefetch` hints — no fences, no behaviour change — and to
// nothing at all on compilers without the builtin.
#pragma once

#include <cstdint>

namespace pfp::util {

/// Temporal-locality hint, mirroring __builtin_prefetch's third argument.
enum class PrefetchHint : std::uint8_t {
  kNta = 0,  ///< non-temporal: bypass as much of the hierarchy as possible
  kL3 = 1,
  kL2 = 2,
  kAll = 3,  ///< keep in every level (default for data reused soon)
};

/// Read-prefetch one cache line.
template <PrefetchHint Hint = PrefetchHint::kAll>
inline void prefetch_read([[maybe_unused]] const void* address) noexcept {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(address, /*rw=*/0, static_cast<int>(Hint));
#endif
}

/// Read-prefetch `Lines` consecutive cache lines starting `Skip` lines
/// past `address` — for streaming a contiguous run slightly ahead of the
/// scan position.
template <unsigned Skip, unsigned Lines, PrefetchHint Hint = PrefetchHint::kAll>
inline void prefetch_span([[maybe_unused]] const void* address) noexcept {
#if defined(__GNUC__) || defined(__clang__)
  constexpr unsigned kLineBytes = 64;
  const char* base = static_cast<const char*>(address);
  for (unsigned i = Skip; i < Skip + Lines; ++i) {
    __builtin_prefetch(base + static_cast<std::size_t>(i) * kLineBytes,
                       /*rw=*/0, static_cast<int>(Hint));
  }
#endif
}

}  // namespace pfp::util
