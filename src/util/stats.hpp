// Streaming summary statistics.
//
// Welford's online algorithm: numerically stable single-pass mean and
// variance, plus min/max.  Used for per-run metric summaries and for the
// trace characterization tool.
#pragma once

#include <cstdint>
#include <string>

namespace pfp::util {

/// Accumulates count/mean/variance/min/max of a stream of doubles.
class RunningStats {
 public:
  void add(double x) noexcept;

  /// Merges another accumulator (parallel sweep reduction).
  void merge(const RunningStats& other) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return count_ ? mean_ : 0.0; }
  /// Population variance; 0 with fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return count_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(count_); }

  void reset() noexcept { *this = RunningStats{}; }

  /// "mean=.. sd=.. min=.. max=.. n=.." one-liner for logs.
  [[nodiscard]] std::string summary() const;

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Ratio counter: numerator/denominator with a safe value() accessor.
/// Most paper metrics (miss rate, hit ratios, prediction accuracy) are
/// ratios of event counts; this keeps them honest in one place.
class RatioCounter {
 public:
  void hit() noexcept {
    ++num_;
    ++den_;
  }
  void miss() noexcept { ++den_; }
  void add(bool in_numerator) noexcept { in_numerator ? hit() : miss(); }

  [[nodiscard]] std::uint64_t numerator() const noexcept { return num_; }
  [[nodiscard]] std::uint64_t denominator() const noexcept { return den_; }

  /// num/den, or 0 when no events recorded.
  [[nodiscard]] double value() const noexcept {
    return den_ ? static_cast<double>(num_) / static_cast<double>(den_) : 0.0;
  }

  void reset() noexcept { num_ = den_ = 0; }

 private:
  std::uint64_t num_ = 0;
  std::uint64_t den_ = 0;
};

}  // namespace pfp::util
