// Clang thread-safety annotations for the concurrent surface.
//
// The engine layer is genuinely concurrent (thread-per-shard workers over
// SPSC rings, a seqlock snapshot gate, single-writer counter cells), and
// until this header the only check on that surface was TSan — dynamic,
// schedule-dependent, and nearly blind on a 1-CPU host.  These macros put
// the locking and role discipline into the type system instead: Clang's
// -Wthread-safety analysis proves at compile time that guarded state is
// only touched under its capability.  A dedicated CI leg builds the whole
// tree with clang and -Werror=thread-safety (docs/static-analysis.md,
// "Concurrency analysis"); on GCC every macro expands to nothing, so the
// annotations are zero-cost and invisible to the release toolchain.
//
// Two kinds of capability are used in this codebase:
//
//  1. util::Mutex / util::MutexLock — annotated wrappers over std::mutex
//     and std::unique_lock (libstdc++'s own types carry no annotations,
//     so the analysis cannot see through them).  Classic data: members
//     are declared PFP_GUARDED_BY(mutex_) and only touched under a
//     MutexLock.
//
//  2. util::ThreadRole — a zero-size *role* capability with no runtime
//     lock at all.  It names a thread discipline ("the unique producer",
//     "the engine writer thread") that is enforced by construction, not
//     by blocking.  Write-side methods declare PFP_REQUIRES(role); the
//     one place that legitimately plays the role calls the object's
//     assert_*() method, which tells the analysis "this thread is the
//     role holder — hold me to it from here on".  The assert is a trust
//     declaration (an empty inline call, zero cost); the payoff is that
//     every OTHER path that touches role-guarded state without asserting
//     the role fails the clang build.  What the static analysis cannot
//     prove — that the asserting thread really is unique — stays TSan's
//     job; see docs/static-analysis.md for the exact split.
#pragma once

#include <mutex>

// Attribute plumbing.  Clang-only: GCC parses but ignores most of these
// spellings with -Wattributes noise, so they are compiled out entirely.
#if defined(__clang__)
#define PFP_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define PFP_THREAD_ANNOTATION__(x)  // no-op outside clang
#endif

/// Declares a type to be a capability ("mutex", "role", ...).
#define PFP_CAPABILITY(x) PFP_THREAD_ANNOTATION__(capability(x))

/// Declares an RAII type that acquires in its ctor / releases in its dtor.
#define PFP_SCOPED_CAPABILITY PFP_THREAD_ANNOTATION__(scoped_lockable)

/// Data member may only be touched while holding the capability.
#define PFP_GUARDED_BY(x) PFP_THREAD_ANNOTATION__(guarded_by(x))

/// Pointee (not the pointer) is guarded by the capability.
#define PFP_PT_GUARDED_BY(x) PFP_THREAD_ANNOTATION__(pt_guarded_by(x))

/// Caller must hold the capability (exclusively / shared).
#define PFP_REQUIRES(...) \
  PFP_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))
#define PFP_REQUIRES_SHARED(...) \
  PFP_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))

/// Function acquires / releases the capability itself.
#define PFP_ACQUIRE(...) \
  PFP_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
#define PFP_RELEASE(...) \
  PFP_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
#define PFP_TRY_ACQUIRE(...) \
  PFP_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (deadlock prevention).
#define PFP_EXCLUDES(...) PFP_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/// Tells the analysis the capability is held without acquiring it; the
/// idiom behind ThreadRole's assert_*() trust declarations.
#define PFP_ASSERT_CAPABILITY(...) \
  PFP_THREAD_ANNOTATION__(assert_capability(__VA_ARGS__))

/// Function returns a reference to the named capability.
#define PFP_RETURN_CAPABILITY(x) PFP_THREAD_ANNOTATION__(lock_returned(x))

/// Escape hatch; every use needs a comment explaining why the analysis
/// cannot see the invariant (prefer a role capability instead).
#define PFP_NO_THREAD_SAFETY_ANALYSIS \
  PFP_THREAD_ANNOTATION__(no_thread_safety_analysis)

namespace pfp::util {

/// Annotated std::mutex.  Same cost, same semantics; exists only because
/// libstdc++'s std::mutex is invisible to the analysis.
class PFP_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() PFP_ACQUIRE() { mutex_.lock(); }
  void unlock() PFP_RELEASE() { mutex_.unlock(); }
  bool try_lock() PFP_TRY_ACQUIRE(true) { return mutex_.try_lock(); }

  /// The wrapped mutex, for std::condition_variable interop (the wait
  /// call needs the real std::unique_lock; see MutexLock::native).
  [[nodiscard]] std::mutex& native() noexcept { return mutex_; }

 private:
  std::mutex mutex_;
};

/// Annotated RAII lock over Mutex (std::unique_lock underneath, so
/// condition variables can wait on it via native()).
class PFP_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) PFP_ACQUIRE(mutex)
      : lock_(mutex.native()) {}
  ~MutexLock() PFP_RELEASE() = default;

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// For std::condition_variable::wait, which atomically releases and
  /// reacquires.  The analysis does not model the temporary release; the
  /// capability is held again by the time wait returns, so the net
  /// accounting stays balanced (and guarded reads in the wait loop's
  /// predicate are genuinely protected).
  [[nodiscard]] std::unique_lock<std::mutex>& native() noexcept {
    return lock_;
  }

 private:
  std::unique_lock<std::mutex> lock_;
};

/// A zero-size role capability: names a thread discipline (unique
/// producer, unique consumer, single writer) instead of a runtime lock.
/// Owning objects embed one per role as a *public* member so that
/// PFP_GUARDED_BY / PFP_REQUIRES expressions can name it from call sites
/// and sibling members; the member is empty and never read or written at
/// runtime.
class PFP_CAPABILITY("role") ThreadRole {
 public:
  ThreadRole() = default;
  ThreadRole(const ThreadRole&) = delete;
  ThreadRole& operator=(const ThreadRole&) = delete;
};

}  // namespace pfp::util
