// Histograms for trace characterization and stack-distance profiling.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pfp::util {

/// Fixed-width linear histogram over [lo, hi); out-of-range samples land
/// in underflow/overflow counters.
class LinearHistogram {
 public:
  LinearHistogram(double lo, double hi, std::size_t bins);

  void add(double x, std::uint64_t weight = 1);

  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t bin_count(std::size_t i) const { return counts_.at(i); }
  [[nodiscard]] double bin_lo(std::size_t i) const;
  [[nodiscard]] double bin_hi(std::size_t i) const;
  [[nodiscard]] std::uint64_t underflow() const noexcept { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const noexcept { return overflow_; }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

  /// Value below which the given fraction q (0..1) of samples fall,
  /// linearly interpolated within the bin.  Under/overflow samples clamp
  /// to the range edges.
  [[nodiscard]] double quantile(double q) const;

  /// Folds another histogram in (per-shard aggregation).  Both sides must
  /// have identical range and binning.
  void merge(const LinearHistogram& other);

  void reset();

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

/// Power-of-two bucketed histogram for unbounded non-negative integer
/// quantities (reuse distances, run lengths).  Bucket i holds values in
/// [2^(i-1), 2^i), bucket 0 holds the value 0 and 1 separately folded.
class Log2Histogram {
 public:
  void add(std::uint64_t x, std::uint64_t weight = 1);

  [[nodiscard]] std::size_t buckets() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const;
  /// Inclusive lower bound of bucket i.
  static std::uint64_t bucket_lo(std::size_t i) noexcept;
  /// Inclusive upper bound of bucket i.
  static std::uint64_t bucket_hi(std::size_t i) noexcept;
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

  /// Render as "lo-hi: count" lines for reports.
  [[nodiscard]] std::string to_string() const;

  /// Folds another histogram in (per-shard aggregation); grows to the
  /// wider of the two bucket sets.
  void merge(const Log2Histogram& other);

  void reset();

 private:
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace pfp::util
