// Bounded exponential backoff for spin-wait loops.
//
// The sharded engine's producer spins when a shard ring is full and the
// shard workers spin when their ring is empty.  A raw yield loop burns a
// full core while making no progress — on the 1-CPU container that core
// is the one the stalled peer needs.  Backoff escalates through tiers:
//
//   tier 1  cpu_relax() bursts, doubling 1, 2, 4, ... up to
//           2^kMaxSpinExponent pause instructions per wait() — cheap
//           polling while the peer is probably mid-operation;
//   tier 2  std::this_thread::yield() on every wait() after that — the
//           waiter cedes its core to the scheduler instead of burning it.
//
// The spin budget before the first yield is therefore bounded at
// 2^(kMaxSpinExponent+1)-1 relaxes total, after which EVERY wait yields
// (regression-tested in tests/util/backoff_test.cpp).  Call reset() after
// the awaited condition holds so the next stall starts cheap again.
#pragma once

#include <cstdint>
#include <thread>

namespace pfp::util {

/// One pause/yield hint to the CPU: tells simultaneous-multithreading
/// hardware the core is in a spin loop so the sibling thread gets the
/// execution resources.  Compiles to `pause` on x86, `yield` on ARM, and
/// nothing elsewhere.
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__) || defined(__arm__)
  asm volatile("yield" ::: "memory");
#endif
}

/// Per-wait-site escalation state.  Not thread-safe: one Backoff per
/// waiting loop, on the waiting thread's stack or in its single-threaded
/// state.
class Backoff {
 public:
  /// Last spin tier: 2^6 = 64 relaxes, so the total pre-yield spin
  /// budget is 1+2+...+64 = 127 relax instructions (~a few hundred ns).
  static constexpr std::uint32_t kMaxSpinExponent = 6;

  /// Waits once at the current tier and escalates.  Returns true when
  /// the wait ceded the core (yield tier), false for a spin-tier wait —
  /// the return value exists so tests can pin the escalation contract
  /// without intercepting the scheduler.
  bool wait() noexcept {
    if (round_ <= kMaxSpinExponent) {
      const std::uint32_t spins = 1u << round_;
      for (std::uint32_t i = 0; i < spins; ++i) {
        cpu_relax();
      }
      ++round_;
      return false;
    }
    std::this_thread::yield();
    return true;
  }

  /// Back to the cheap tier; call when the awaited condition held.
  void reset() noexcept { round_ = 0; }

  /// True once every further wait() yields instead of spinning.
  [[nodiscard]] bool yielding() const noexcept {
    return round_ > kMaxSpinExponent;
  }

  /// Completed waits since the last reset (saturates at the yield tier).
  [[nodiscard]] std::uint32_t round() const noexcept { return round_; }

 private:
  std::uint32_t round_ = 0;
};

}  // namespace pfp::util
