// Exponentially weighted moving average.
//
// The cost-benefit controller needs running estimates of s (prefetches
// issued per access period) and h (prefetch hit ratio); the paper computes
// both "during execution".  An EWMA tracks them with O(1) state and a
// configurable horizon.
#pragma once

#include "util/assert.hpp"

namespace pfp::util {

/// value' = alpha * sample + (1 - alpha) * value.  Until the first sample
/// arrives, value() returns the configured initial estimate.
class Ewma {
 public:
  explicit Ewma(double alpha, double initial = 0.0) noexcept
      : alpha_(alpha), value_(initial) {
    PFP_DASSERT(alpha > 0.0 && alpha <= 1.0);
  }

  void add(double sample) noexcept {
    if (!seeded_) {
      value_ = sample;
      seeded_ = true;
      return;
    }
    value_ += alpha_ * (sample - value_);
  }

  [[nodiscard]] double value() const noexcept { return value_; }
  [[nodiscard]] bool seeded() const noexcept { return seeded_; }

  /// Resets to the given initial estimate and forgets all samples.
  void reset(double initial = 0.0) noexcept {
    value_ = initial;
    seeded_ = false;
  }

 private:
  double alpha_;
  double value_;
  bool seeded_ = false;
};

}  // namespace pfp::util
