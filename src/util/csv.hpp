// CSV emission for experiment results.
//
// Every bench prints a human-readable table and can additionally write the
// same rows as CSV so figures can be re-plotted offline.  Quoting follows
// RFC 4180 (fields containing comma, quote or newline are quoted; quotes
// doubled).
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace pfp::util {

/// Streams rows to an ostream.  Construct with the header, then add rows;
/// each row must have exactly as many fields as the header.
class CsvWriter {
 public:
  CsvWriter(std::ostream& out, std::vector<std::string> header);

  void row(const std::vector<std::string>& fields);

  /// Convenience for mixed numeric rows.
  class RowBuilder {
   public:
    explicit RowBuilder(CsvWriter& writer) : writer_(writer) {}
    RowBuilder& add(std::string_view value);
    RowBuilder& add(double value);
    RowBuilder& add(std::uint64_t value);
    /// Emits the row; builder must not be reused afterwards.
    void done();

   private:
    CsvWriter& writer_;
    std::vector<std::string> fields_;
  };

  RowBuilder row() { return RowBuilder(*this); }

  [[nodiscard]] std::size_t columns() const noexcept { return columns_; }
  [[nodiscard]] std::size_t rows_written() const noexcept { return rows_; }

  /// Escapes one field per RFC 4180.
  static std::string escape(std::string_view field);

 private:
  std::ostream& out_;
  std::size_t columns_;
  std::size_t rows_ = 0;
};

}  // namespace pfp::util
