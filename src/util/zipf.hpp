// Zipf-distributed sampling over {0, ..., n-1}.
//
// The workload generators use Zipfian popularity for files, processes and
// objects (file popularity in real traces is famously heavy-tailed).  We
// implement Hörmann's rejection-inversion sampler, which is O(1) per draw
// and exact for any skew s > 0, s != 1 handled via the same transform.
#pragma once

#include <cstdint>

#include "util/prng.hpp"

namespace pfp::util {

/// Samples ranks 0..n-1 with P(rank k) proportional to 1/(k+1)^s.
/// Rank 0 is the most popular item.
class ZipfSampler {
 public:
  /// n must be >= 1; skew s must be > 0.  s around 0.8-1.2 matches
  /// measured file-access popularity curves.
  ZipfSampler(std::uint64_t n, double s);

  /// Draws one rank in [0, n).
  std::uint64_t operator()(Xoshiro256& rng) const;

  [[nodiscard]] std::uint64_t size() const noexcept { return n_; }
  [[nodiscard]] double skew() const noexcept { return s_; }

 private:
  [[nodiscard]] double h(double x) const;
  [[nodiscard]] double h_inverse(double x) const;

  std::uint64_t n_;
  double s_;
  double h_x1_;
  double h_n_;
  double threshold_;  // rejection shortcut for rank 0
};

}  // namespace pfp::util
