// Minimal command-line option parser for the examples and benches.
//
// Supports "--name value", "--name=value" and boolean "--flag".  Unknown
// options are an error so typos fail fast; positional arguments are
// collected in order.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace pfp::util {

class Options {
 public:
  /// Registers a string option with a default and help text.
  void add(const std::string& name, const std::string& default_value,
           const std::string& help);
  /// Registers a boolean flag (default false).
  void add_flag(const std::string& name, const std::string& help);

  /// Parses argv.  Returns false (after printing a diagnostic plus usage)
  /// on unknown options, missing values or malformed input.  "--help"
  /// prints usage and also returns false.
  bool parse(int argc, const char* const* argv);

  /// Accessors; fatal (PFP_REQUIRE) if the option was never registered.
  [[nodiscard]] std::string str(const std::string& name) const;
  [[nodiscard]] std::uint64_t u64(const std::string& name) const;
  [[nodiscard]] double real(const std::string& name) const;
  [[nodiscard]] bool flag(const std::string& name) const;

  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  /// Usage text generated from the registered options.
  [[nodiscard]] std::string usage(const std::string& program) const;

 private:
  struct Spec {
    std::string default_value;
    std::string help;
    bool is_flag = false;
  };

  std::map<std::string, Spec> specs_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace pfp::util
