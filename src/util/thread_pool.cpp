#include "util/thread_pool.hpp"

#include <algorithm>

namespace pfp::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      // Manual wait loop (not the predicate overload): the predicate
      // lambda would be analysed as its own capability-free function, so
      // the guarded reads live directly in this scope where the analysis
      // can see the lock is held.  wait() releases and reacquires the
      // mutex internally; the capability is held again whenever the
      // predicate runs (see MutexLock::native).
      while (!stopping_ && queue_.empty()) {
        cv_.wait(lock.native());
      }
      if (queue_.empty()) {
        return;  // stopping and drained
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

}  // namespace pfp::util
