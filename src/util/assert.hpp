// Lightweight contract-checking macros.
//
// PFP_REQUIRE is an always-on precondition check (survives NDEBUG): the
// simulator's correctness depends on configuration invariants (non-zero
// cache sizes, probabilities in [0,1], ...) that must hold in Release
// builds too, where all experiments run.  PFP_DASSERT is a debug-only
// internal consistency check for hot paths.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace pfp::util {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) {
  std::fprintf(stderr, "pfp: %s failed: %s (%s:%d)\n", kind, expr, file, line);
  std::abort();
}

}  // namespace pfp::util

#define PFP_REQUIRE(expr)                                                  \
  do {                                                                     \
    if (!(expr)) {                                                         \
      ::pfp::util::contract_failure("precondition", #expr, __FILE__,       \
                                    __LINE__);                             \
    }                                                                      \
  } while (0)

#ifdef NDEBUG
#define PFP_DASSERT(expr) ((void)0)
#else
#define PFP_DASSERT(expr)                                                  \
  do {                                                                     \
    if (!(expr)) {                                                         \
      ::pfp::util::contract_failure("assertion", #expr, __FILE__,          \
                                    __LINE__);                             \
    }                                                                      \
  } while (0)
#endif
