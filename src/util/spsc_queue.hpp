// Bounded single-producer / single-consumer ring buffer.
//
// The sharded engine hands each shard worker its reference stream through
// one of these: exactly one thread pushes and exactly one thread pops, so
// the only synchronization needed is an acquire/release pair on the two
// ring indices.  Both sides keep a cached copy of the opposite index so
// the steady state touches a single shared cache line per operation
// instead of two (the classic Rigtorp layout).
//
// The bulk operations (try_push_n / try_pop_n) move a contiguous run of
// values under a SINGLE release/acquire pair, which is what makes the
// batched shard hand-off pay: the per-element synchronization cost of a
// 256-record run is 1/256th of the push-one path's.
//
// The producer/consumer split is machine-checked: try_push requires the
// producer role capability and try_pop the consumer role (Clang
// -Wthread-safety; see src/util/thread_annotations.hpp).  The one thread
// playing each role declares it once with assert_producer() /
// assert_consumer(); any new call path that touches a side without its
// role fails the thread-safety CI leg.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "util/assert.hpp"
#include "util/thread_annotations.hpp"

namespace pfp::util {

/// Fixed-capacity SPSC FIFO over trivially copyable values.
///
/// Contract: try_push is called by one producer thread only and try_pop
/// by one consumer thread only; neither blocks.  Capacity is rounded up
/// to a power of two so index wrapping is a mask.
template <typename T>
class SpscQueue {
 public:
  explicit SpscQueue(std::size_t min_capacity) {
    std::size_t cap = 2;
    while (cap < min_capacity) {
      PFP_REQUIRE(cap <= (std::size_t{1} << 62));
      cap <<= 1;
    }
    buffer_.resize(cap);
    mask_ = cap - 1;
  }

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  /// The calling thread declares itself the unique producer/consumer.
  /// Zero-cost trust declarations for the thread-safety analysis: call
  /// once per function (or thread loop) before using that side.
  void assert_producer() const noexcept PFP_ASSERT_CAPABILITY(producer_role) {}
  void assert_consumer() const noexcept PFP_ASSERT_CAPABILITY(consumer_role) {}

  /// Producer side.  Returns false when the ring is full.
  bool try_push(const T& value) PFP_REQUIRES(producer_role) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_cache_ > mask_) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail - head_cache_ > mask_) {
        return false;
      }
    }
    buffer_[tail & mask_] = value;
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Producer side, bulk: appends as many of `values` as currently fit,
  /// front-first, and publishes them all under ONE release store — the
  /// whole point of the batched hand-off (docs/perf.md, "Batched
  /// hand-off").  The copy crosses the wrap seam in at most two
  /// contiguous segments.  Returns the number accepted (0 when full);
  /// partial acceptance is normal when the ring is nearly full, and the
  /// caller retries with the remaining suffix.
  std::size_t try_push_n(std::span<const T> values)
      PFP_REQUIRES(producer_role) {
    if (values.empty()) {
      return 0;
    }
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    std::size_t free = capacity() - static_cast<std::size_t>(
                                        tail - head_cache_);
    if (free < values.size()) {
      head_cache_ = head_.load(std::memory_order_acquire);
      free = capacity() - static_cast<std::size_t>(tail - head_cache_);
      if (free == 0) {
        return 0;
      }
    }
    const std::size_t n = std::min(values.size(), free);
    const std::size_t start = static_cast<std::size_t>(tail & mask_);
    const std::size_t first = std::min(n, capacity() - start);
    std::copy_n(values.data(), first, buffer_.data() + start);
    std::copy_n(values.data() + first, n - first, buffer_.data());
    tail_.store(tail + n, std::memory_order_release);
    return n;
  }

  /// Consumer side.  Returns false when the ring is empty.
  bool try_pop(T& out) PFP_REQUIRES(consumer_role) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head == tail_cache_) {
        return false;
      }
    }
    out = buffer_[head & mask_];
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side, bulk: pops up to `max` values into `out` under ONE
  /// acquire/release pair, crossing the wrap seam in at most two
  /// contiguous segments.  Returns the number popped (0 when empty).
  /// The cached tail is refreshed whenever it cannot satisfy a full run,
  /// so a worker draining in bulk sees everything already published.
  std::size_t try_pop_n(T* out, std::size_t max)
      PFP_REQUIRES(consumer_role) {
    if (max == 0) {
      return 0;
    }
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    std::size_t avail = static_cast<std::size_t>(tail_cache_ - head);
    if (avail < max) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      avail = static_cast<std::size_t>(tail_cache_ - head);
      if (avail == 0) {
        return 0;
      }
    }
    const std::size_t n = std::min(max, avail);
    const std::size_t start = static_cast<std::size_t>(head & mask_);
    const std::size_t first = std::min(n, capacity() - start);
    std::copy_n(buffer_.data() + start, first, out);
    std::copy_n(buffer_.data(), n - first, out + first);
    head_.store(head + n, std::memory_order_release);
    return n;
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return mask_ + 1; }

  /// Approximate occupancy, callable from any thread (the shard stats
  /// scraper reads it live for the queue gauge).  head_ is loaded FIRST:
  /// head only ever advances toward tail, so a head read that predates
  /// the tail read can only under-count.  The reverse order had a real
  /// bug: a pop landing between the two loads pushed head past the stale
  /// tail and the subtraction underflowed to ~2^64 (regression-tested in
  /// tests/util/spsc_queue_test.cpp).  The result can still transiently
  /// exceed the true occupancy (pushes after the head read count, pops
  /// after it don't), which is fine for a gauge.
  [[nodiscard]] std::size_t size() const noexcept {
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    return static_cast<std::size_t>(tail - head);
  }
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }

  /// Role capabilities (zero-size, public so capability expressions can
  /// name them; see thread_annotations.hpp).
  ThreadRole producer_role;
  ThreadRole consumer_role;

 private:
  std::vector<T> buffer_;
  std::uint64_t mask_ = 0;
  // writers: consumer thread (try_pop)  readers: both sides + scrapers
  alignas(64) std::atomic<std::uint64_t> head_{0};  ///< next pop slot
  // writers: producer thread (try_push)  readers: both sides + scrapers
  alignas(64) std::atomic<std::uint64_t> tail_{0};  ///< next push slot
  // writers: producer thread  readers: producer thread
  alignas(64) std::uint64_t head_cache_
      PFP_GUARDED_BY(producer_role) = 0;  ///< producer's view of head_
  // writers: consumer thread  readers: consumer thread
  alignas(64) std::uint64_t tail_cache_
      PFP_GUARDED_BY(consumer_role) = 0;  ///< consumer's view of tail_
};

}  // namespace pfp::util
