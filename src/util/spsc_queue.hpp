// Bounded single-producer / single-consumer ring buffer.
//
// The sharded engine hands each shard worker its reference stream through
// one of these: exactly one thread pushes and exactly one thread pops, so
// the only synchronization needed is an acquire/release pair on the two
// ring indices.  Both sides keep a cached copy of the opposite index so
// the steady state touches a single shared cache line per operation
// instead of two (the classic Rigtorp layout).
//
// The producer/consumer split is machine-checked: try_push requires the
// producer role capability and try_pop the consumer role (Clang
// -Wthread-safety; see src/util/thread_annotations.hpp).  The one thread
// playing each role declares it once with assert_producer() /
// assert_consumer(); any new call path that touches a side without its
// role fails the thread-safety CI leg.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/assert.hpp"
#include "util/thread_annotations.hpp"

namespace pfp::util {

/// Fixed-capacity SPSC FIFO over trivially copyable values.
///
/// Contract: try_push is called by one producer thread only and try_pop
/// by one consumer thread only; neither blocks.  Capacity is rounded up
/// to a power of two so index wrapping is a mask.
template <typename T>
class SpscQueue {
 public:
  explicit SpscQueue(std::size_t min_capacity) {
    std::size_t cap = 2;
    while (cap < min_capacity) {
      PFP_REQUIRE(cap <= (std::size_t{1} << 62));
      cap <<= 1;
    }
    buffer_.resize(cap);
    mask_ = cap - 1;
  }

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  /// The calling thread declares itself the unique producer/consumer.
  /// Zero-cost trust declarations for the thread-safety analysis: call
  /// once per function (or thread loop) before using that side.
  void assert_producer() const noexcept PFP_ASSERT_CAPABILITY(producer_role) {}
  void assert_consumer() const noexcept PFP_ASSERT_CAPABILITY(consumer_role) {}

  /// Producer side.  Returns false when the ring is full.
  bool try_push(const T& value) PFP_REQUIRES(producer_role) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_cache_ > mask_) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail - head_cache_ > mask_) {
        return false;
      }
    }
    buffer_[tail & mask_] = value;
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side.  Returns false when the ring is empty.
  bool try_pop(T& out) PFP_REQUIRES(consumer_role) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head == tail_cache_) {
        return false;
      }
    }
    out = buffer_[head & mask_];
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return mask_ + 1; }

  /// Approximate occupancy, callable from any thread (the shard stats
  /// scraper reads it live for the queue gauge).  head_ is loaded FIRST:
  /// head only ever advances toward tail, so a head read that predates
  /// the tail read can only under-count.  The reverse order had a real
  /// bug: a pop landing between the two loads pushed head past the stale
  /// tail and the subtraction underflowed to ~2^64 (regression-tested in
  /// tests/util/spsc_queue_test.cpp).  The result can still transiently
  /// exceed the true occupancy (pushes after the head read count, pops
  /// after it don't), which is fine for a gauge.
  [[nodiscard]] std::size_t size() const noexcept {
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    return static_cast<std::size_t>(tail - head);
  }
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }

  /// Role capabilities (zero-size, public so capability expressions can
  /// name them; see thread_annotations.hpp).
  ThreadRole producer_role;
  ThreadRole consumer_role;

 private:
  std::vector<T> buffer_;
  std::uint64_t mask_ = 0;
  // writers: consumer thread (try_pop)  readers: both sides + scrapers
  alignas(64) std::atomic<std::uint64_t> head_{0};  ///< next pop slot
  // writers: producer thread (try_push)  readers: both sides + scrapers
  alignas(64) std::atomic<std::uint64_t> tail_{0};  ///< next push slot
  alignas(64) std::uint64_t head_cache_
      PFP_GUARDED_BY(producer_role) = 0;  ///< producer's view of head_
  alignas(64) std::uint64_t tail_cache_
      PFP_GUARDED_BY(consumer_role) = 0;  ///< consumer's view of tail_
};

}  // namespace pfp::util
