// Bounded single-producer / single-consumer ring buffer.
//
// The sharded engine hands each shard worker its reference stream through
// one of these: exactly one thread pushes and exactly one thread pops, so
// the only synchronization needed is an acquire/release pair on the two
// ring indices.  Both sides keep a cached copy of the opposite index so
// the steady state touches a single shared cache line per operation
// instead of two (the classic Rigtorp layout).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/assert.hpp"

namespace pfp::util {

/// Fixed-capacity SPSC FIFO over trivially copyable values.
///
/// Contract: try_push is called by one producer thread only and try_pop
/// by one consumer thread only; neither blocks.  Capacity is rounded up
/// to a power of two so index wrapping is a mask.
template <typename T>
class SpscQueue {
 public:
  explicit SpscQueue(std::size_t min_capacity) {
    std::size_t cap = 2;
    while (cap < min_capacity) {
      PFP_REQUIRE(cap <= (std::size_t{1} << 62));
      cap <<= 1;
    }
    buffer_.resize(cap);
    mask_ = cap - 1;
  }

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  /// Producer side.  Returns false when the ring is full.
  bool try_push(const T& value) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_cache_ > mask_) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail - head_cache_ > mask_) {
        return false;
      }
    }
    buffer_[tail & mask_] = value;
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side.  Returns false when the ring is empty.
  bool try_pop(T& out) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head == tail_cache_) {
        return false;
      }
    }
    out = buffer_[head & mask_];
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return mask_ + 1; }

  /// Approximate occupancy; exact only when called from the producer or
  /// consumer thread while the other side is quiescent.
  [[nodiscard]] std::size_t size() const noexcept {
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    return static_cast<std::size_t>(tail - head);
  }
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }

 private:
  std::vector<T> buffer_;
  std::uint64_t mask_ = 0;
  alignas(64) std::atomic<std::uint64_t> head_{0};  ///< next pop slot
  alignas(64) std::atomic<std::uint64_t> tail_{0};  ///< next push slot
  alignas(64) std::uint64_t head_cache_ = 0;  ///< producer's view of head_
  alignas(64) std::uint64_t tail_cache_ = 0;  ///< consumer's view of tail_
};

}  // namespace pfp::util
