#include "util/audit.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace pfp::util {

namespace {

[[noreturn]] void default_handler(const char* component, const char* what,
                                  const char* file, int line) {
  std::fprintf(stderr, "pfp: SIM_AUDIT failed: %s: %s (%s:%d)\n", component,
               what, file, line);
  std::abort();
}

// Handler swaps happen on test threads while audits may run anywhere, so
// the slot is atomic; relaxed ordering suffices — installing a handler is
// not a synchronization point for the structures being audited.
// writers: set_audit_handler (test setup/teardown)
// readers: audit_failure on any auditing thread
std::atomic<AuditHandler> g_handler{&default_handler};

}  // namespace

AuditHandler set_audit_handler(AuditHandler handler) noexcept {
  return g_handler.exchange(handler != nullptr ? handler : &default_handler,
                            std::memory_order_relaxed);
}

void audit_failure(const char* component, const char* what, const char* file,
                   int line) {
  g_handler.load(std::memory_order_relaxed)(component, what, file, line);
}

}  // namespace pfp::util
