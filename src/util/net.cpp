#include "util/net.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace pfp::util::net {

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw std::runtime_error(errno_message("fcntl(O_NONBLOCK)"));
  }
}

sockaddr_in loopback(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  return addr;
}

}  // namespace

std::string errno_message(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

void Socket::reset() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Socket listen_tcp(std::uint16_t port) {
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) {
    throw std::runtime_error(errno_message("socket"));
  }
  const int one = 1;
  if (::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one) <
      0) {
    throw std::runtime_error(errno_message("setsockopt(SO_REUSEADDR)"));
  }
  const sockaddr_in addr = loopback(port);
  if (::bind(sock.fd(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) < 0) {
    throw std::runtime_error(errno_message("bind"));
  }
  if (::listen(sock.fd(), SOMAXCONN) < 0) {
    throw std::runtime_error(errno_message("listen"));
  }
  set_nonblocking(sock.fd());
  return sock;
}

std::uint16_t local_port(const Socket& socket) {
  sockaddr_in addr{};
  socklen_t len = sizeof addr;
  if (::getsockname(socket.fd(), reinterpret_cast<sockaddr*>(&addr), &len) <
      0) {
    throw std::runtime_error(errno_message("getsockname"));
  }
  return ntohs(addr.sin_port);
}

Socket connect_tcp(std::uint16_t port) {
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) {
    throw std::runtime_error(errno_message("socket"));
  }
  const sockaddr_in addr = loopback(port);
  if (::connect(sock.fd(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) < 0) {
    throw std::runtime_error(errno_message("connect"));
  }
  // Frames are small request/reply units; Nagle only adds latency here.
  const int one = 1;
  ::setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return sock;
}

Socket accept_one(const Socket& listener) {
  const int fd = ::accept(listener.fd(), nullptr, nullptr);
  if (fd < 0) {
    return Socket();
  }
  Socket sock(fd);
  set_nonblocking(sock.fd());
  const int one = 1;
  ::setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return sock;
}

IoResult read_some(const Socket& socket, std::span<std::uint8_t> buf) {
  for (;;) {
    const ssize_t n = ::recv(socket.fd(), buf.data(), buf.size(), 0);
    if (n > 0) {
      return {IoStatus::kOk, static_cast<std::size_t>(n)};
    }
    if (n == 0) {
      return {IoStatus::kClosed, 0};
    }
    if (errno == EINTR) {
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return {IoStatus::kWouldBlock, 0};
    }
    return {IoStatus::kError, 0};
  }
}

IoResult write_some(const Socket& socket, std::span<const std::uint8_t> buf) {
  for (;;) {
    const ssize_t n =
        ::send(socket.fd(), buf.data(), buf.size(), MSG_NOSIGNAL);
    if (n >= 0) {
      return {IoStatus::kOk, static_cast<std::size_t>(n)};
    }
    if (errno == EINTR) {
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return {IoStatus::kWouldBlock, 0};
    }
    return {IoStatus::kError, 0};
  }
}

bool write_all(const Socket& socket, std::span<const std::uint8_t> buf) {
  std::size_t sent = 0;
  while (sent < buf.size()) {
    const IoResult r = write_some(socket, buf.subspan(sent));
    if (r.status == IoStatus::kOk) {
      sent += r.bytes;
      continue;
    }
    if (r.status == IoStatus::kWouldBlock) {
      // Client-side sockets are blocking; this only happens if a caller
      // passed a non-blocking one.  Spin via poll for writability.
      pollfd pfd{};
      pfd.fd = socket.fd();
      pfd.events = static_cast<short>(POLLOUT);
      ::poll(&pfd, 1, -1);
      continue;
    }
    return false;
  }
  return true;
}

bool read_exact(const Socket& socket, std::span<std::uint8_t> buf) {
  std::size_t got = 0;
  while (got < buf.size()) {
    const IoResult r = read_some(socket, buf.subspan(got));
    if (r.status == IoStatus::kOk) {
      got += r.bytes;
      continue;
    }
    if (r.status == IoStatus::kWouldBlock) {
      pollfd pfd{};
      pfd.fd = socket.fd();
      pfd.events = static_cast<short>(POLLIN);
      ::poll(&pfd, 1, -1);
      continue;
    }
    return false;
  }
  return true;
}

int Poller::wait(std::vector<PollEntry>& entries, int timeout_ms) {
  // Reuse one pollfd array across waits; sized in u64 units so the
  // header stays free of <poll.h>.
  const std::size_t bytes = entries.size() * sizeof(pollfd);
  scratch_.resize((bytes + sizeof(std::uint64_t) - 1) /
                  sizeof(std::uint64_t));
  auto* fds = reinterpret_cast<pollfd*>(scratch_.data());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    fds[i].fd = entries[i].fd;
    fds[i].events = static_cast<short>(
        (entries[i].want_read ? POLLIN : 0) |
        (entries[i].want_write ? POLLOUT : 0));
    fds[i].revents = 0;
  }
  const int n =
      ::poll(fds, static_cast<nfds_t>(entries.size()), timeout_ms);
  if (n < 0) {
    if (errno == EINTR) {
      for (PollEntry& entry : entries) {
        entry.ready = Readiness{};
      }
      return 0;
    }
    throw std::runtime_error(errno_message("poll"));
  }
  for (std::size_t i = 0; i < entries.size(); ++i) {
    entries[i].ready.readable = (fds[i].revents & POLLIN) != 0;
    entries[i].ready.writable = (fds[i].revents & POLLOUT) != 0;
    entries[i].ready.error =
        (fds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
  }
  return n;
}

WakeFd::WakeFd() {
  int fds[2];
  if (::pipe(fds) < 0) {
    throw std::runtime_error(errno_message("pipe"));
  }
  read_end_ = Socket(fds[0]);
  write_end_ = Socket(fds[1]);
  set_nonblocking(read_end_.fd());
  set_nonblocking(write_end_.fd());
}

void WakeFd::wake() noexcept {
  const std::uint8_t byte = 1;
  // A full pipe means the loop is already signalled; EINTR means the
  // byte may not have landed, so retry once — callers hold no locks.
  for (int attempt = 0; attempt < 2; ++attempt) {
    if (::write(write_end_.fd(), &byte, 1) >= 0 || errno != EINTR) {
      return;
    }
  }
}

void WakeFd::drain() noexcept {
  std::uint8_t buf[64];
  while (::read(read_end_.fd(), buf, sizeof buf) > 0) {
  }
}

}  // namespace pfp::util::net
