// Open-addressing hash map for the simulator hot path.
//
// Every simulated reference probes the edge map and two cache partitions,
// so map lookups dominate simulator throughput.  std::unordered_map pays a
// heap node per element and a pointer chase per probe; this map stores
// key/value pairs in one flat power-of-two array with linear probing, so a
// lookup is one mix, one masked index, and a short contiguous scan.
// Deletion uses backward-shift (Knuth 6.4 algorithm R) instead of
// tombstones, so probe sequences never degrade under churn — important for
// the caches, which erase as often as they insert.
//
// The API mirrors the std::unordered_map subset the hot paths use (find /
// emplace / erase / contains / operator[] / iteration); semantics match
// except for iteration order, which is unspecified in both.
#pragma once

#include <cstdint>
#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

#include "util/assert.hpp"

namespace pfp::util {

template <typename Key, typename Value, typename Hash = std::hash<Key>>
class FlatMap {
 public:
  using value_type = std::pair<Key, Value>;

  /// Forward iterator over occupied slots.  Stable across lookups but
  /// invalidated by any insert or erase (like unordered_map on rehash,
  /// but unconditionally — callers must not cache iterators across
  /// mutations).
  template <bool Const>
  class Iterator {
   public:
    using Map = std::conditional_t<Const, const FlatMap, FlatMap>;
    using reference =
        std::conditional_t<Const, const value_type&, value_type&>;
    using pointer = std::conditional_t<Const, const value_type*, value_type*>;

    Iterator() = default;
    reference operator*() const { return map_->slots_[index_]; }
    pointer operator->() const { return &map_->slots_[index_]; }
    Iterator& operator++() {
      ++index_;
      skip_empty();
      return *this;
    }
    bool operator==(const Iterator& other) const {
      return index_ == other.index_;
    }

   private:
    friend class FlatMap;
    Iterator(Map* map, std::size_t index) : map_(map), index_(index) {
      skip_empty();
    }
    void skip_empty() {
      while (index_ < map_->slots_.size() && !map_->used_[index_]) {
        ++index_;
      }
    }
    Map* map_ = nullptr;
    std::size_t index_ = 0;
  };

  using iterator = Iterator<false>;
  using const_iterator = Iterator<true>;

  FlatMap() = default;
  explicit FlatMap(std::size_t expected) { reserve(expected); }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  iterator begin() { return iterator(this, 0); }
  iterator end() { return iterator(this, slots_.size()); }
  [[nodiscard]] const_iterator begin() const { return const_iterator(this, 0); }
  [[nodiscard]] const_iterator end() const { return const_iterator(this, slots_.size()); }

  [[nodiscard]] bool contains(const Key& key) const { return find_index(key) != knpos; }

  iterator find(const Key& key) {
    const std::size_t i = find_index(key);
    return i == knpos ? end() : iterator(this, i);
  }
  [[nodiscard]] const_iterator find(const Key& key) const {
    const std::size_t i = find_index(key);
    return i == knpos ? end() : const_iterator(this, i);
  }

  /// Inserts (key, value) if absent; returns the slot either way, with
  /// second == true when the insertion happened.
  template <typename... Args>
  std::pair<iterator, bool> emplace(const Key& key, Args&&... args) {
    grow_if_needed();
    std::size_t i = home(key);
    while (used_[i]) {
      if (slots_[i].first == key) {
        return {iterator(this, i), false};
      }
      i = (i + 1) & mask_;
    }
    used_[i] = 1;
    slots_[i].first = key;
    slots_[i].second = Value(std::forward<Args>(args)...);
    ++size_;
    return {iterator(this, i), true};
  }

  Value& operator[](const Key& key) {
    return emplace(key, Value{}).first->second;
  }

  /// Erases a key; returns the number of elements removed (0 or 1).
  std::size_t erase(const Key& key) {
    const std::size_t i = find_index(key);
    if (i == knpos) {
      return 0;
    }
    erase_slot(i);
    return 1;
  }

  /// Erases the element an iterator points at.  Backward-shift deletion
  /// moves later elements, so the iterator must not be reused.
  void erase(const_iterator pos) {
    PFP_DASSERT(pos.index_ < slots_.size() && used_[pos.index_]);
    erase_slot(pos.index_);
  }
  void erase(iterator pos) {
    PFP_DASSERT(pos.index_ < slots_.size() && used_[pos.index_]);
    erase_slot(pos.index_);
  }

  /// Pre-sizes the table for `expected` elements without rehashing on the
  /// way there.
  void reserve(std::size_t expected) {
    std::size_t cap = kMinCapacity;
    while (expected * 4 > cap * 3) {
      cap *= 2;
    }
    if (cap > slots_.size()) {
      rehash(cap);
    }
  }

  void clear() {
    std::fill(used_.begin(), used_.end(), std::uint8_t{0});
    size_ = 0;
  }

  /// Slots in the backing array (power of two; 0 before first insert).
  [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }

 private:
  static constexpr std::size_t knpos = static_cast<std::size_t>(-1);
  static constexpr std::size_t kMinCapacity = 16;

  /// Fibonacci-mixes the user hash so identity hashes (std::hash on
  /// integers) still spread across the table.
  [[nodiscard]] std::size_t home(const Key& key) const {
    std::uint64_t x = static_cast<std::uint64_t>(hash_(key));
    x *= 0x9e3779b97f4a7c15ULL;
    x ^= x >> 32;
    return static_cast<std::size_t>(x) & mask_;
  }

  [[nodiscard]] std::size_t find_index(const Key& key) const {
    if (slots_.empty()) {
      return knpos;
    }
    std::size_t i = home(key);
    while (used_[i]) {
      if (slots_[i].first == key) {
        return i;
      }
      i = (i + 1) & mask_;
    }
    return knpos;
  }

  void grow_if_needed() {
    if ((size_ + 1) * 4 > slots_.size() * 3) {
      rehash(slots_.empty() ? kMinCapacity : slots_.size() * 2);
    }
  }

  void rehash(std::size_t new_capacity) {
    PFP_DASSERT((new_capacity & (new_capacity - 1)) == 0);
    std::vector<value_type> old_slots = std::move(slots_);
    std::vector<std::uint8_t> old_used = std::move(used_);
    slots_.assign(new_capacity, value_type{});
    used_.assign(new_capacity, 0);
    mask_ = new_capacity - 1;
    for (std::size_t i = 0; i < old_slots.size(); ++i) {
      if (!old_used[i]) {
        continue;
      }
      std::size_t j = home(old_slots[i].first);
      while (used_[j]) {
        j = (j + 1) & mask_;
      }
      used_[j] = 1;
      slots_[j] = std::move(old_slots[i]);
    }
  }

  void erase_slot(std::size_t i) {
    // Backward-shift: pull every displaced element of the probe chain one
    // hole closer to its home slot, leaving no tombstone behind.
    std::size_t j = i;
    while (true) {
      j = (j + 1) & mask_;
      if (!used_[j]) {
        break;
      }
      const std::size_t h = home(slots_[j].first);
      // j's element may fill the hole at i only if its home position lies
      // cyclically at-or-before i (otherwise the move would break the
      // element's own probe chain).
      if (((j - h) & mask_) >= ((j - i) & mask_)) {
        slots_[i] = std::move(slots_[j]);
        i = j;
      }
    }
    used_[i] = 0;
    slots_[i] = value_type{};
    --size_;
  }

  std::vector<value_type> slots_;
  std::vector<std::uint8_t> used_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
  [[no_unique_address]] Hash hash_;
};

}  // namespace pfp::util
