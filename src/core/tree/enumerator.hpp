// Prefetch-candidate enumeration.
//
// From the parse position the controller may prefetch along multiple
// paths simultaneously (Section 3), so candidates are all descendants of
// the current node, each carrying its path probability p_b (product of
// edge probabilities), its distance d_b (edge count), and its parent's
// path probability p_x — exactly the inputs of Equation 1's benefit and
// Equation 14's overhead.
//
// Enumeration is best-first on path probability with depth / probability
// / count pruning: probabilities only shrink along a path, so a
// probability-ordered frontier yields the globally most probable
// descendants first and the cut-offs are exact, not heuristic.
//
// Enumeration runs once per simulated access, so CandidateEnumerator owns
// its frontier heap, output buffer and dedup scratch and reuses them
// across calls — the hot path allocates nothing after the first few
// periods.  enumerate_candidates() remains as a convenience wrapper for
// one-shot callers (tests, examples).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/tree/prefetch_tree.hpp"

namespace pfp::core::tree {

struct Candidate {
  BlockId block = 0;
  double probability = 0.0;         ///< p_b: path probability from current
  double parent_probability = 1.0;  ///< p_x: path probability of parent
  std::uint32_t depth = 1;          ///< d_b: edges from current node
  NodeId node = kNoNode;            ///< tree node (introspection)
};

struct EnumeratorLimits {
  std::uint32_t max_depth = 8;      ///< deepest descendant considered
  double min_probability = 0.002;   ///< prune paths below this p_b
  std::size_t max_candidates = 48;  ///< cap on emitted candidates
};

/// Reusable best-first enumerator.  One instance per policy; not
/// thread-safe (each simulation owns its policies, so no sharing occurs).
class CandidateEnumerator {
 public:
  /// Descendants of `from`, most probable first.  Duplicate blocks (same
  /// block reachable along several paths) keep only their most probable
  /// occurrence.  The root's weight-0 state (empty tree) yields nothing.
  /// The returned span aliases internal storage and is invalidated by the
  /// next enumerate() call.
  std::span<const Candidate> enumerate(const PrefetchTree& tree, NodeId from,
                                       const EnumeratorLimits& limits);

 private:
  struct FrontierItem {
    double probability;
    double parent_probability;
    NodeId node;
    std::uint32_t depth;
    bool operator<(const FrontierItem& other) const {
      return probability < other.probability;  // max-heap on probability
    }
  };

  void push_children(const PrefetchTree& tree, NodeId node, double path_prob,
                     std::uint32_t depth, const EnumeratorLimits& limits);

  std::vector<FrontierItem> frontier_;  ///< binary max-heap (std::push_heap)
  std::vector<Candidate> out_;
  std::vector<BlockId> seen_;  ///< blocks already emitted (dedup scratch)
};

/// One-shot wrapper around CandidateEnumerator with identical results;
/// prefer a reused enumerator on hot paths.
std::vector<Candidate> enumerate_candidates(const PrefetchTree& tree,
                                            NodeId from,
                                            const EnumeratorLimits& limits);

}  // namespace pfp::core::tree
