// Prefetch-candidate enumeration.
//
// From the parse position the controller may prefetch along multiple
// paths simultaneously (Section 3), so candidates are all descendants of
// the current node, each carrying its path probability p_b (product of
// edge probabilities), its distance d_b (edge count), and its parent's
// path probability p_x — exactly the inputs of Equation 1's benefit and
// Equation 14's overhead.
//
// Enumeration is best-first on path probability with depth / probability
// / count pruning: probabilities only shrink along a path, so a
// probability-ordered frontier yields the globally most probable
// descendants first and the cut-offs are exact, not heuristic.
//
// Enumeration runs once per simulated access, so CandidateEnumerator owns
// its frontier heap, output buffers and dedup scratch and reuses them
// across calls — the hot path allocates nothing after the first few
// periods.  enumerate_candidates() remains as a convenience wrapper for
// one-shot callers (tests, examples).
//
// Incremental reuse.  The enumerator keeps a direct-mapped cache of
// per-node candidate lists keyed on (tree uid, node, limits) plus the
// validity stamps below.  A cached list for node X is served when either
//   - the tree's access serial is unchanged since the fill (nothing at
//     all happened — the read-only caller's case), or
//   - X's subtree is provably unchanged, which the LZ parse order lets
//     us establish in O(1): every mutation strictly below X (descendant
//     weight increment or node creation) happens with the parse at or
//     below X, and the parse can only get below X by crossing X — which
//     stamps X's children_epoch.  So if the parse was not strictly below
//     X at fill time, X's children_epoch is unchanged, and no leaf-LRU
//     eviction happened anywhere (global eviction stamp), the subtree is
//     bitwise identical.  Then:
//       (a) same own weight            → the list is returned verbatim;
//       (b) grown own weight           → every path product is recomputed
//           from the live integer weights in the exact multiply order of
//           a fresh walk (bit-identical; only the first edge's
//           denominator changed), provided membership, ordering and
//           dedup provably survive — otherwise
//       (c) full best-first re-walk.
// Cache misses fill only the slot's small key header and walk into one
// hot reused buffer; a slot materializes its candidate list lazily, on
// the first lookup that proves the node repeats with a stable subtree.
// That keeps the simulator path (which virtually never repeats a key —
// the parse dirties what it enumerates) free of scattered slot writes.
// Free-list slot reuse is safe because NodePool stamps recreated nodes
// from a strictly monotone counter and destruction advances the global
// eviction stamp, so a recycled NodeId can never match a stale entry.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/tree/prefetch_tree.hpp"
#include "util/audit.hpp"

namespace pfp::core::tree {

struct Candidate {
  BlockId block = 0;
  double probability = 0.0;         ///< p_b: path probability from current
  double parent_probability = 1.0;  ///< p_x: path probability of parent
  std::uint32_t depth = 1;          ///< d_b: edges from current node
  NodeId node = kNoNode;            ///< tree node (introspection)
};

struct EnumeratorLimits {
  std::uint32_t max_depth = 8;      ///< deepest descendant considered
  double min_probability = 0.002;   ///< prune paths below this p_b
  std::size_t max_candidates = 48;  ///< cap on emitted candidates
  /// Cached candidate lists are keyed on the limits they were built with.
  bool operator==(const EnumeratorLimits&) const = default;
};

/// Reusable best-first enumerator.  One instance per policy; not
/// thread-safe (each simulation owns its policies, so no sharing occurs).
class CandidateEnumerator {
 public:
  /// How often each cache path served an enumerate() call.
  struct CacheStats {
    std::uint64_t verbatim_hits = 0;  ///< case (a): unchanged subtree
    std::uint64_t rescale_hits = 0;   ///< case (b): own weight grew
    std::uint64_t full_walks = 0;     ///< case (c): re-enumerated
  };

  /// Descendants of `from`, most probable first.  Duplicate blocks (same
  /// block reachable along several paths) keep only their most probable
  /// occurrence.  The root's weight-0 state (empty tree) yields nothing.
  /// The returned span aliases internal storage and is invalidated by the
  /// next enumerate()/enumerate_fresh() call.
  std::span<const Candidate> enumerate(const PrefetchTree& tree, NodeId from,
                                       const EnumeratorLimits& limits);

  /// Identical results to enumerate() but never consults or fills the
  /// cache — one full walk into the reused hot buffer.  This is the
  /// reference path for one-shot callers, tests and audits.
  std::span<const Candidate> enumerate_fresh(const PrefetchTree& tree,
                                             NodeId from,
                                             const EnumeratorLimits& limits);

  /// enumerate_fresh() walking straight into a caller-owned vector —
  /// spares owning callers the copy out of the internal buffer.
  void enumerate_fresh_into(const PrefetchTree& tree, NodeId from,
                            const EnumeratorLimits& limits,
                            std::vector<Candidate>& out);

  [[nodiscard]] const CacheStats& cache_stats() const noexcept {
    return stats_;
  }

  /// Drops every cached list (stats are kept).  Never needed for
  /// correctness — the validity stamps invalidate structurally — but lets
  /// long-lived callers release a retired tree's entries.
  void clear_cache();

  /// SIM_AUDIT >= 1 sweep: every cache slot a lookup against `tree`
  /// would reuse (verbatim or rescaled) must reproduce a fresh
  /// enumeration bit-for-bit.  At SIM_AUDIT >= 2 enumerate() itself
  /// additionally re-walks on every cache hit and compares inline.
  void audit(const PrefetchTree& tree) const;

 private:
  friend struct EnumeratorTestAccess;  // corruption hooks for audit tests

  struct FrontierItem {
    double probability;
    double parent_probability;
    NodeId node;
    std::uint32_t depth;
    bool operator<(const FrontierItem& other) const {
      return probability < other.probability;  // max-heap on probability
    }
  };

  /// One direct-mapped cache entry.  The key header (everything but
  /// `items`) is written on every miss; `items` is materialized only when
  /// a later lookup finds the header still valid (the node repeats), and
  /// keeps its heap buffer across refills.
  struct Slot {
    NodeId from = kNoNode;
    std::uint64_t tree_uid = 0;
    std::uint64_t children_epoch = 0;
    std::uint64_t from_weight = 0;
    std::uint64_t eviction_epoch = 0;
    std::uint64_t fill_serial = 0;  ///< tree access serial at fill time
    EnumeratorLimits limits;
    /// Parse was strictly below `from` at fill time: the subtree can then
    /// mutate without stamping `from`, so only the frozen-serial rule may
    /// serve this entry.
    bool parse_below = false;
    /// Hit the max_candidates cap: candidates past the cap were never
    /// examined, so a rescale cannot prove the top-k set stable.
    bool capped = false;
    /// A duplicate block was discarded during the walk: dedup-winner
    /// selection depends on cross-path probability order a rescale
    /// cannot re-verify in O(k).
    bool deduped = false;
    bool items_valid = false;  ///< `items` materialized and current
    std::vector<Candidate> items;
  };

  /// Generation-stamped open-addressing dedup slot; a stale generation
  /// marks the slot empty, so clearing between walks is O(1).
  struct SeenSlot {
    std::uint32_t generation = 0;
    BlockId block = 0;
  };

  static constexpr std::size_t kCacheSlots = 256;  // power of two
  static_assert((kCacheSlots & (kCacheSlots - 1)) == 0);

  /// Best-first walk into `out` (bit-identical to the historical
  /// implementation; the heap/dedup/pruning sequence is pinned by
  /// tests/integration/metrics_pin_test.cpp).  Reports via the out-params
  /// whether the walk was truncated or deduplicated.
  void full_walk(const PrefetchTree& tree, NodeId from,
                 const EnumeratorLimits& limits, std::vector<Candidate>& out,
                 bool& capped, bool& deduped);

  /// Case (b): recompute every cached path product from live integer
  /// weights.  Returns false — leaving `items` partially rescaled, the
  /// caller must re-walk — when bit-identity cannot be proven: a product
  /// crossed min_probability, or the relative order / tie structure of
  /// adjacent items changed.
  static bool rescale(const PrefetchTree& tree, NodeId from,
                      const EnumeratorLimits& limits,
                      std::vector<Candidate>& items);

  /// Is the parse position a strict descendant of `from`?  O(1) when the
  /// parse sits at `from` (the simulator's case), O(parse depth) else.
  static bool parse_strictly_below(const PrefetchTree& tree, NodeId from);

  void seen_reset(std::size_t max_candidates);
  bool seen_insert(BlockId block);  ///< false if already present

  /// Exact elementwise equality, doubles included (the cache is an
  /// optimization, not a behaviour change).
  static bool same_items(std::span<const Candidate> a,
                         std::span<const Candidate> b);

  /// SIM_AUDIT >= 2 inline sweep: a served cache hit is re-derived by a
  /// fresh walk and compared bit-for-bit.  Compiles to nothing otherwise.
  void check_cached_result([[maybe_unused]] const PrefetchTree& tree,
                           [[maybe_unused]] NodeId from,
                           [[maybe_unused]] const EnumeratorLimits& limits,
                           [[maybe_unused]] const Slot& slot) {
#if SIM_AUDIT >= 2
    bool capped = false;
    bool deduped = false;
    full_walk(tree, from, limits, check_scratch_, capped, deduped);
    PFP_AUDIT("CandidateEnumerator",
              same_items({slot.items.data(), slot.items.size()},
                         {check_scratch_.data(), check_scratch_.size()}),
              "served cache hit diverges from a fresh enumeration");
#endif
  }

  std::vector<FrontierItem> frontier_;  ///< binary max-heap (std::push_heap)
  std::vector<SeenSlot> seen_;          ///< power-of-two dedup table
  std::uint32_t seen_generation_ = 0;
  std::vector<Candidate> out_;  ///< hot output buffer for non-cached walks
  std::vector<Slot> slots_;     ///< sized kCacheSlots on first enumerate()
  CacheStats stats_;
#if SIM_AUDIT >= 2
  std::vector<Candidate> check_scratch_;  ///< inline cached-vs-fresh sweep
#endif
};

/// One-shot wrapper around CandidateEnumerator with identical results and
/// no cache involvement; prefer a reused enumerator on hot paths.
std::vector<Candidate> enumerate_candidates(const PrefetchTree& tree,
                                            NodeId from,
                                            const EnumeratorLimits& limits);

}  // namespace pfp::core::tree
