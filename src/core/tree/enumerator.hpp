// Prefetch-candidate enumeration.
//
// From the parse position the controller may prefetch along multiple
// paths simultaneously (Section 3), so candidates are all descendants of
// the current node, each carrying its path probability p_b (product of
// edge probabilities), its distance d_b (edge count), and its parent's
// path probability p_x — exactly the inputs of Equation 1's benefit and
// Equation 14's overhead.
//
// Enumeration is best-first on path probability with depth / probability
// / count pruning: probabilities only shrink along a path, so a
// probability-ordered frontier yields the globally most probable
// descendants first and the cut-offs are exact, not heuristic.
#pragma once

#include <cstdint>
#include <vector>

#include "core/tree/prefetch_tree.hpp"

namespace pfp::core::tree {

struct Candidate {
  BlockId block = 0;
  double probability = 0.0;         ///< p_b: path probability from current
  double parent_probability = 1.0;  ///< p_x: path probability of parent
  std::uint32_t depth = 1;          ///< d_b: edges from current node
  NodeId node = kNoNode;            ///< tree node (introspection)
};

struct EnumeratorLimits {
  std::uint32_t max_depth = 8;      ///< deepest descendant considered
  double min_probability = 0.002;   ///< prune paths below this p_b
  std::size_t max_candidates = 48;  ///< cap on emitted candidates
};

/// Descendants of `from`, most probable first.  Duplicate blocks (same
/// block reachable along several paths) keep only their most probable
/// occurrence.  The root's weight-0 state (empty tree) yields nothing.
std::vector<Candidate> enumerate_candidates(const PrefetchTree& tree,
                                            NodeId from,
                                            const EnumeratorLimits& limits);

}  // namespace pfp::core::tree
