// Node storage for the LZ prefetch tree.
//
// Nodes live in a slab indexed by 32-bit ids with a free list, so the
// bounded-tree experiments (Figure 13) can create and evict hundreds of
// thousands of nodes without allocator churn, and so sizeof bookkeeping
// matches the paper's "each node corresponds to 40 bytes" accounting.
// Edge lookup (parent, block) -> child is a single hash probe in a global
// open-addressing edge map; per-node child lists support enumeration and
// keep their first few entries inline (typical nodes have 1–4 children,
// so the common case allocates nothing).
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "trace/record.hpp"
#include "util/flat_map.hpp"
#include "util/small_vector.hpp"

namespace pfp::core::tree {

using trace::BlockId;

using NodeId = std::uint32_t;
inline constexpr NodeId kNoNode = std::numeric_limits<NodeId>::max();

struct Node {
  BlockId block = 0;            ///< disk block this node represents
  std::uint64_t weight = 0;     ///< times this node has been visited
  NodeId parent = kNoNode;
  NodeId last_visited_child = kNoNode;  ///< Section 9.6 machinery
  std::uint32_t pos_in_parent = 0;      ///< index in parent's child list
  /// Children sorted by weight, descending.  Candidate enumeration and
  /// the parametric policies rely on this order to stop scanning at their
  /// probability cutoff instead of visiting every child (the root of a
  /// low-locality trace can have tens of thousands).
  util::SmallVector<NodeId, 4> children;
  /// Version stamp of this node's *downward* state: advances when a
  /// direct child's weight changes or the child list gains or loses an
  /// entry — but NOT when only this node's own weight grows.  Maintained
  /// in O(1) per parse step (only the mutated node's parent is stamped);
  /// CandidateEnumerator proves whole-subtree stability from it by
  /// exploiting the LZ parse order: the parse cannot mutate anything
  /// below this node without first crossing it — which stamps it (see
  /// enumerator.hpp for the cache-validity argument).
  std::uint64_t children_epoch = 0;
};

class NodePool {
 public:
  NodePool();

  /// Allocates a node for `block` under `parent` (kNoNode for the root)
  /// with initial weight 1, and registers the edge.
  NodeId create(NodeId parent, BlockId block);

  /// Child of `parent` labelled `block`, or kNoNode.
  [[nodiscard]] NodeId find_child(NodeId parent, BlockId block) const;

  /// Increments a node's weight, restoring the parent's descending-weight
  /// child order with one binary search + swap (weights only ever grow by
  /// one, so the displaced entry has exactly the old weight).
  void increment_weight(NodeId id);

  /// Destroys a node.  The node must be a leaf (no children).  Unlinks it
  /// from its parent's child list and the edge map.
  void destroy(NodeId id);

  Node& operator[](NodeId id) { return nodes_[id]; }
  const Node& operator[](NodeId id) const { return nodes_[id]; }

  [[nodiscard]] std::size_t live_nodes() const noexcept { return live_; }
  /// Upper bound on node ids ever allocated (for sizing side tables).
  [[nodiscard]] std::size_t id_bound() const noexcept { return nodes_.size(); }

  /// Strictly monotone counter behind every children_epoch stamp.  Freed
  /// slots are re-stamped from it on reuse, so a cached epoch can never
  /// collide with a recycled NodeId.
  [[nodiscard]] std::uint64_t current_epoch() const noexcept { return epoch_; }

  /// Count of destroy() calls.  Evictions are the one subtree mutation
  /// the parse-order argument cannot cover (the leaf-LRU victim may sit
  /// anywhere), so cached candidate lists are additionally keyed on this.
  [[nodiscard]] std::uint64_t eviction_epoch() const noexcept {
    return eviction_epoch_;
  }

  /// Raw slab access for tight read-only walks (valid ids < id_bound()).
  [[nodiscard]] const Node* data() const noexcept { return nodes_.data(); }

  /// Paper's storage accounting: 40 bytes per node (Section 9.3).
  static constexpr std::size_t kPaperBytesPerNode = 40;
  [[nodiscard]] std::size_t approx_memory_bytes() const noexcept {
    return live_ * kPaperBytesPerNode;
  }

 private:
  struct EdgeKey {
    NodeId parent;
    BlockId block;
    bool operator==(const EdgeKey&) const = default;
  };
  struct EdgeHash {
    std::size_t operator()(const EdgeKey& key) const noexcept {
      // splitmix-style combine; parent ids are dense, blocks sparse.
      std::uint64_t x = key.block ^ (static_cast<std::uint64_t>(key.parent)
                                     << 32);
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
      return static_cast<std::size_t>(x ^ (x >> 31));
    }
  };

  std::vector<Node> nodes_;
  std::vector<NodeId> free_;
  util::FlatMap<EdgeKey, NodeId, EdgeHash> edges_;
  std::size_t live_ = 0;
  std::uint64_t epoch_ = 0;
  std::uint64_t eviction_epoch_ = 0;
};

}  // namespace pfp::core::tree
