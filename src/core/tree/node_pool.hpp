// Node storage for the LZ prefetch tree.
//
// Nodes live in struct-of-arrays slabs indexed by 32-bit ids with a free
// list, so the bounded-tree experiments (Figure 13) can create and evict
// hundreds of thousands of nodes without allocator churn, and so sizeof
// bookkeeping matches the paper's "each node corresponds to 40 bytes"
// accounting.
//
// The record is split by access temperature:
//   - the HOT plane (`HotNode`: block, weight, parent, child-run head) is
//     everything a parse step or a best-first enumeration touches — 32
//     bytes, two nodes per cache line;
//   - the COLD plane (`ColdNode`: children_epoch, last_visited_child,
//     pos_in_parent) holds the Section 9.6 machinery and the incremental-
//     cache stamps, read far less often and never inside the enumeration
//     inner loop.
//
// Child lists are not per-node containers: every node's children occupy
// one contiguous run inside a shared child-index arena (power-of-two run
// growth, freed runs recycled per size class), so descending-weight
// enumeration streams over one flat array instead of chasing per-node
// heap blocks, and the next level's hot-plane entries can be software-
// prefetched while the current run is scanned.  Edge lookup
// (parent, block) -> child stays a single hash probe in a global
// open-addressing edge map.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "trace/record.hpp"
#include "util/flat_map.hpp"

namespace pfp::core::tree {

using trace::BlockId;

using NodeId = std::uint32_t;
inline constexpr NodeId kNoNode = std::numeric_limits<NodeId>::max();

/// Hot traversal plane: the fields every parse step and enumeration step
/// reads.  32 bytes — two nodes per cache line (the old array-of-structs
/// record was 72 bytes and spanned two lines by itself).
struct HotNode {
  BlockId block = 0;         ///< disk block this node represents
  std::uint64_t weight = 0;  ///< times this node has been visited
  NodeId parent = kNoNode;
  /// Child run inside the shared arena: children occupy
  /// [child_begin, child_begin + child_count), sorted by weight
  /// descending.  Candidate enumeration and the parametric policies rely
  /// on this order to stop scanning at their probability cutoff instead
  /// of visiting every child (the root of a low-locality trace can have
  /// tens of thousands).  child_capacity is 0 (no run) or a power of two.
  std::uint32_t child_begin = 0;
  std::uint32_t child_count = 0;
  std::uint32_t child_capacity = 0;
};
static_assert(sizeof(HotNode) == 32, "hot plane packs two nodes per line");

/// Cold plane: bookkeeping no enumeration inner loop ever touches.
struct ColdNode {
  /// Version stamp of this node's *downward* state: advances when a
  /// direct child's weight changes or the child list gains or loses an
  /// entry — but NOT when only this node's own weight grows.  Maintained
  /// in O(1) per parse step (only the mutated node's parent is stamped);
  /// CandidateEnumerator proves whole-subtree stability from it by
  /// exploiting the LZ parse order: the parse cannot mutate anything
  /// below this node without first crossing it — which stamps it (see
  /// enumerator.hpp for the cache-validity argument).
  std::uint64_t children_epoch = 0;
  NodeId last_visited_child = kNoNode;  ///< Section 9.6 machinery
  std::uint32_t pos_in_parent = 0;      ///< index in parent's child run
};
static_assert(sizeof(ColdNode) == 16);

/// Read-only by-value view of one node across both planes, for
/// introspection sites (tests, examples, policies off the inner loop).
struct NodeView {
  BlockId block = 0;
  std::uint64_t weight = 0;
  NodeId parent = kNoNode;
  std::uint64_t children_epoch = 0;
};

class NodePool {
 public:
  NodePool();

  /// Allocates a node for `block` under `parent` (kNoNode for the root)
  /// with initial weight 1, and registers the edge.  May move the
  /// parent's child run: spans from children() are invalidated.
  NodeId create(NodeId parent, BlockId block);

  /// Child of `parent` labelled `block`, or kNoNode.
  [[nodiscard]] NodeId find_child(NodeId parent, BlockId block) const;

  /// Increments a node's weight, restoring the parent's descending-weight
  /// child order with one binary search + swap (weights only ever grow by
  /// one, so the displaced entry has exactly the old weight).
  void increment_weight(NodeId id);

  /// Destroys a node.  The node must be a leaf (no children).  Unlinks it
  /// from its parent's child run and the edge map; a run whose last child
  /// leaves is recycled into the arena free lists.
  void destroy(NodeId id);

  // --- per-node accessors ---------------------------------------------
  [[nodiscard]] BlockId block(NodeId id) const { return hot_[id].block; }
  [[nodiscard]] std::uint64_t weight(NodeId id) const {
    return hot_[id].weight;
  }
  [[nodiscard]] NodeId parent(NodeId id) const { return hot_[id].parent; }
  [[nodiscard]] std::span<const NodeId> children(NodeId id) const {
    const HotNode& n = hot_[id];
    return {arena_.data() + n.child_begin, n.child_count};
  }
  [[nodiscard]] std::uint32_t child_count(NodeId id) const {
    return hot_[id].child_count;
  }
  [[nodiscard]] std::uint64_t children_epoch(NodeId id) const {
    return cold_[id].children_epoch;
  }
  [[nodiscard]] NodeId last_visited_child(NodeId id) const {
    return cold_[id].last_visited_child;
  }
  void set_last_visited_child(NodeId id, NodeId child) {
    cold_[id].last_visited_child = child;
  }
  [[nodiscard]] std::uint32_t pos_in_parent(NodeId id) const {
    return cold_[id].pos_in_parent;
  }
  [[nodiscard]] NodeView view(NodeId id) const {
    const HotNode& n = hot_[id];
    return NodeView{n.block, n.weight, n.parent, cold_[id].children_epoch};
  }

  /// Low-level mutable plane access.  Escape hatch for deserialization
  /// (weight restore) and the audit tests' seeded corruptions; regular
  /// callers go through the mutation API above, which keeps the order,
  /// edge-map and epoch invariants.
  [[nodiscard]] HotNode& hot(NodeId id) { return hot_[id]; }
  [[nodiscard]] const HotNode& hot(NodeId id) const { return hot_[id]; }
  [[nodiscard]] ColdNode& cold(NodeId id) { return cold_[id]; }
  [[nodiscard]] const ColdNode& cold(NodeId id) const { return cold_[id]; }

  [[nodiscard]] std::size_t live_nodes() const noexcept { return live_; }
  /// Upper bound on node ids ever allocated (for sizing side tables).
  [[nodiscard]] std::size_t id_bound() const noexcept { return hot_.size(); }

  /// Strictly monotone counter behind every children_epoch stamp.  Freed
  /// slots are re-stamped from it on reuse, so a cached epoch can never
  /// collide with a recycled NodeId.
  [[nodiscard]] std::uint64_t current_epoch() const noexcept { return epoch_; }

  /// Count of destroy() calls.  Evictions are the one subtree mutation
  /// the parse-order argument cannot cover (the leaf-LRU victim may sit
  /// anywhere), so cached candidate lists are additionally keyed on this.
  [[nodiscard]] std::uint64_t eviction_epoch() const noexcept {
    return eviction_epoch_;
  }

  /// Raw plane/arena access for tight read-only walks (valid ids <
  /// id_bound()).  Pointers are invalidated by create()/destroy().
  [[nodiscard]] const HotNode* hot_data() const noexcept {
    return hot_.data();
  }
  [[nodiscard]] const NodeId* child_arena() const noexcept {
    return arena_.data();
  }

  /// Paper's storage accounting: 40 bytes per node (Section 9.3).
  /// Figure 13 and the `tree_bytes` metric keep quoting this so the
  /// reproduction's memory axis stays comparable with the paper; see
  /// actual_memory_bytes() for what the process really spends.
  static constexpr std::size_t kPaperBytesPerNode = 40;
  [[nodiscard]] std::size_t approx_memory_bytes() const noexcept {
    return live_ * kPaperBytesPerNode;
  }

  /// Bytes the current layout actually reserves: both planes, the child
  /// arena, the free lists and the edge map (capacities, not live
  /// counts, because that is what the allocator charged us for).
  [[nodiscard]] std::size_t actual_memory_bytes() const noexcept;

  /// SIM_AUDIT sweep of the storage layout itself: plane sizes agree,
  /// live child runs sit inside the arena without overlapping each other
  /// or a recycled run, free-list size classes match run capacities, and
  /// every run entry points back at its owner.  Structural *tree*
  /// invariants (order, symmetry, reachability) live in
  /// PrefetchTree::audit(), which calls this.  No-op unless compiled
  /// with SIM_AUDIT >= 1.
  void audit() const;

 private:
  struct EdgeKey {
    NodeId parent;
    BlockId block;
    bool operator==(const EdgeKey&) const = default;
  };
  struct EdgeHash {
    std::size_t operator()(const EdgeKey& key) const noexcept {
      // splitmix-style combine; parent ids are dense, blocks sparse.
      std::uint64_t x = key.block ^ (static_cast<std::uint64_t>(key.parent)
                                     << 32);
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
      return static_cast<std::size_t>(x ^ (x >> 31));
    }
  };

  /// Smallest non-empty run: covers the paper's typical 1–4 child fanout
  /// with at most one regrow.
  static constexpr std::uint32_t kMinRunCapacity = 2;
  /// Runs are power-of-two sized; 2^31 children cannot occur (ids are
  /// 32-bit and the arena would overflow first).
  static constexpr std::uint32_t kRunClasses = 32;

  static std::uint32_t run_class(std::uint32_t capacity) noexcept;

  /// Offset of a run with capacity 1 << cls: recycled if one is free,
  /// else appended to the arena (which may reallocate it).
  std::uint32_t alloc_run(std::uint32_t cls);
  void free_run(std::uint32_t begin, std::uint32_t capacity);
  /// Doubles `id`'s child run (or creates its first), copying the live
  /// entries and recycling the old run.
  void grow_run(NodeId id);

  std::vector<HotNode> hot_;
  std::vector<ColdNode> cold_;
  /// Shared child-index arena; every node's children are one contiguous
  /// slice of it.
  std::vector<NodeId> arena_;
  /// Recycled run offsets, bucketed by log2(capacity).
  std::array<std::vector<std::uint32_t>, kRunClasses> free_runs_;
  std::vector<NodeId> free_;
  util::FlatMap<EdgeKey, NodeId, EdgeHash> edges_;
  std::size_t live_ = 0;
  std::uint64_t epoch_ = 0;
  std::uint64_t eviction_epoch_ = 0;
};

}  // namespace pfp::core::tree
