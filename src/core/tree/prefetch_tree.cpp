#include "core/tree/prefetch_tree.hpp"

#include <atomic>
#include <utility>
#include <vector>

#include "util/assert.hpp"
#include "util/audit.hpp"

namespace pfp::core::tree {

std::uint64_t PrefetchTree::next_uid() noexcept {
  // writers: every constructing thread (fetch_add)
  // readers: none directly — the RMW result is the only read
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

PrefetchTree::PrefetchTree(TreeConfig config)
    : config_(config), uid_(next_uid()) {
  root_ = pool_.create(kNoNode, /*block=*/0);
  pool_.hot(root_).weight = 0;  // root counts substrings, none seen yet
  current_ = root_;
  leaf_lru_.resize(16);
}

PrefetchTree::PrefetchTree(const PrefetchTree& other)
    : config_(other.config_),
      pool_(other.pool_),
      root_(other.root_),
      current_(other.current_),
      leaf_lru_(other.leaf_lru_),
      uid_(next_uid()),
      access_serial_(other.access_serial_) {}

PrefetchTree& PrefetchTree::operator=(const PrefetchTree& other) {
  if (this != &other) {
    config_ = other.config_;
    pool_ = other.pool_;
    root_ = other.root_;
    current_ = other.current_;
    leaf_lru_ = other.leaf_lru_;
    uid_ = next_uid();
    access_serial_ = other.access_serial_;
  }
  return *this;
}

PrefetchTree::PrefetchTree(PrefetchTree&& other) noexcept
    : config_(other.config_),
      pool_(std::move(other.pool_)),
      root_(other.root_),
      current_(other.current_),
      leaf_lru_(std::move(other.leaf_lru_)),
      uid_(other.uid_),
      access_serial_(other.access_serial_) {
  other.uid_ = next_uid();
}

PrefetchTree& PrefetchTree::operator=(PrefetchTree&& other) noexcept {
  if (this != &other) {
    config_ = other.config_;
    pool_ = std::move(other.pool_);
    root_ = other.root_;
    current_ = other.current_;
    leaf_lru_ = std::move(other.leaf_lru_);
    uid_ = other.uid_;
    access_serial_ = other.access_serial_;
    other.uid_ = next_uid();
  }
  return *this;
}

void PrefetchTree::touch(NodeId id) {
  if (leaf_lru_.contains(id)) {
    leaf_lru_.touch(id);
  }
}

void PrefetchTree::on_becomes_interior(NodeId id) {
  if (leaf_lru_.contains(id)) {
    leaf_lru_.erase(id);
  }
}

void PrefetchTree::evict_one_leaf() {
  // Evict the least recently touched leaf that is not the parse position.
  NodeId victim = leaf_lru_.back();
  if (victim == util::LruList::npos) {
    return;
  }
  if (victim == current_) {
    if (leaf_lru_.size() == 1) {
      return;  // nothing else evictable; exceed the bound by one node
    }
    leaf_lru_.touch(victim);  // shelter the parse position
    victim = leaf_lru_.back();
  }
  leaf_lru_.erase(victim);
  const NodeId parent = pool_.parent(victim);
  pool_.destroy(victim);
  // The parent may have just become a leaf; it is now evictable too.  It
  // enters at the cold end — its subtree, not the node itself, was the
  // recent activity.
  if (parent != kNoNode && parent != root_ && pool_.child_count(parent) == 0) {
    if (!leaf_lru_.contains(parent)) {
      // push_front then rotate to back: LruList has no push_back; emulate
      // by inserting and immediately demoting via touch order — instead we
      // simply insert at front; the next eviction sweep will reach it once
      // genuinely cold leaves are consumed.
      leaf_lru_.push_front(parent);
    }
  }
}

AccessInfo PrefetchTree::access(BlockId block) {
  ++access_serial_;
  AccessInfo info;
  const NodeId lvc = pool_.last_visited_child(current_);
  info.had_lvc = lvc != kNoNode;

  // Section 9.6: accesses overwhelmingly follow the last-visited child
  // (Table 3), and child labels are unique per parent, so checking the
  // LVC's block first resolves the common case with one hot-plane read
  // instead of an edge-map hash probe.  The fallback probe returns the
  // same child the fast path would, by the uniqueness of edge labels.
  const NodeId child = (lvc != kNoNode && pool_.block(lvc) == block)
                           ? lvc
                           : pool_.find_child(current_, block);
  info.predictable = child != kNoNode;
  info.followed_lvc = info.had_lvc && child == lvc;

  // Every substring start passes through the root; its weight counts
  // substrings so that root-child probabilities are per-substring
  // frequencies (Figure 1).
  if (current_ == root_) {
    ++pool_.hot(root_).weight;  // root has no parent: no order fix-up needed
  }

  if (child != kNoNode) {
    pool_.set_last_visited_child(current_, child);
    pool_.increment_weight(child);
    touch(child);
    current_ = child;
    return info;
  }

  info.new_node = true;
  const bool parent_was_leaf =
      current_ != root_ && pool_.child_count(current_) == 0;
  const NodeId added = pool_.create(current_, block);
  if (leaf_lru_.capacity() <= added) {
    leaf_lru_.resize(pool_.id_bound() * 2 + 16);
  }
  if (parent_was_leaf) {
    on_becomes_interior(current_);
  }
  leaf_lru_.push_front(added);
  pool_.set_last_visited_child(current_, added);
  current_ = root_;

  if (config_.max_nodes != 0) {
    while (pool_.live_nodes() > config_.max_nodes) {
      const std::size_t before = pool_.live_nodes();
      evict_one_leaf();
      if (pool_.live_nodes() == before) {
        break;  // nothing evictable
      }
    }
  }
  PFP_AUDIT_SWEEP(*this);
  return info;
}

void PrefetchTree::audit() const {
#if PFP_AUDIT_ENABLED
  // Storage-layout invariants (plane agreement, child-run arena
  // ownership, free-list hygiene) first: the structural walk below
  // assumes the runs it streams over are well-formed.
  pool_.audit();
  // Preorder walk from the root; every structural invariant is checked at
  // the node that owns it.  The walk is bounded by the live-node count so
  // a corrupted child link cannot loop forever under a throwing handler.
  std::vector<NodeId> stack{root_};
  std::size_t visited = 0;
  bool current_reachable = false;
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    ++visited;
    if (visited > pool_.live_nodes()) {
      PFP_AUDIT("PrefetchTree", false,
                "reachable nodes exceed live count (child-link cycle?)");
      return;
    }
    if (id == current_) {
      current_reachable = true;
    }
    const bool is_leaf = pool_.child_count(id) == 0 && id != root_;
    PFP_AUDIT("PrefetchTree", leaf_lru_.contains(id) == is_leaf,
              "leaf-LRU membership disagrees with leaf status");
    PFP_AUDIT("PrefetchTree",
              pool_.children_epoch(id) <= pool_.current_epoch(),
              "node stamped with an epoch the pool has not issued yet");
    const NodeId lvc = pool_.last_visited_child(id);
    std::uint64_t child_weight_sum = 0;
    std::uint64_t prev_weight = ~0ULL;
    bool lvc_found = lvc == kNoNode;
    const auto children = pool_.children(id);
    for (std::size_t i = 0; i < children.size(); ++i) {
      const NodeId c = children[i];
      PFP_AUDIT("PrefetchTree", pool_.parent(c) == id,
                "child's parent link does not point back (symmetry)");
      PFP_AUDIT("PrefetchTree",
                pool_.pos_in_parent(c) == static_cast<std::uint32_t>(i),
                "child's pos_in_parent disagrees with the child list");
      PFP_AUDIT("PrefetchTree", pool_.find_child(id, pool_.block(c)) == c,
                "edge map disagrees with the child list");
      PFP_AUDIT("PrefetchTree", pool_.weight(c) <= prev_weight,
                "children not in descending-weight order");
      prev_weight = pool_.weight(c);
      child_weight_sum += pool_.weight(c);
      if (c == lvc) {
        lvc_found = true;
      }
      stack.push_back(c);
    }
    // Every arrival at a child follows a distinct arrival at this node
    // (Section 2's parse), so child visit counts can never outnumber the
    // node's own.
    PFP_AUDIT("PrefetchTree", child_weight_sum <= pool_.weight(id),
              "children's weights sum past the node's visit count");
    PFP_AUDIT("PrefetchTree", lvc_found,
              "last-visited child is not among the node's children");
  }
  PFP_AUDIT("PrefetchTree", visited == pool_.live_nodes(),
            "live nodes unreachable from the root");
  PFP_AUDIT("PrefetchTree", current_reachable,
            "parse position (current node) unreachable from the root");
#endif
}

}  // namespace pfp::core::tree
