#include "core/tree/node_pool.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace pfp::core::tree {

NodePool::NodePool() { edges_.reserve(1024); }

NodeId NodePool::create(NodeId parent, BlockId block) {
  NodeId id;
  if (!free_.empty()) {
    id = free_.back();
    free_.pop_back();
    nodes_[id] = Node{};
  } else {
    id = static_cast<NodeId>(nodes_.size());
    PFP_REQUIRE(id != kNoNode);
    nodes_.emplace_back();
  }
  Node& node = nodes_[id];
  node.block = block;
  node.weight = 1;
  node.parent = parent;
  if (parent != kNoNode) {
    // Weight 1 is the minimum, so appending keeps the child list sorted.
    node.pos_in_parent =
        static_cast<std::uint32_t>(nodes_[parent].children.size());
    nodes_[parent].children.push_back(id);
    edges_.emplace(EdgeKey{parent, block}, id);
  }
  ++live_;
  // The parent's child list grew; the new node itself gets a stamp
  // strictly above anything ever cached, which is what makes free-list
  // slot reuse safe for epoch-keyed caches.
  if (parent != kNoNode) {
    nodes_[parent].children_epoch = ++epoch_;
  }
  node.children_epoch = ++epoch_;
  return id;
}

void NodePool::increment_weight(NodeId id) {
  Node& node = nodes_[id];
  [[maybe_unused]] const std::uint64_t old_weight = node.weight++;
  if (node.parent == kNoNode) {
    return;
  }
  // O(1) stamp: only the immediate parent's downward view changed here.
  // The node's own stamp stays — its descendants did not move, only its
  // own weight did (that is exactly the enumerator's rescale case).
  nodes_[node.parent].children_epoch = ++epoch_;
  auto& siblings = nodes_[node.parent].children;
  const std::uint32_t pos = node.pos_in_parent;
  PFP_DASSERT(siblings[pos] == id);
  if (pos == 0 || nodes_[siblings[pos - 1]].weight >= node.weight) {
    return;  // already in place
  }
  // All siblings in [target, pos) carry exactly old_weight (descending
  // order + weights change by single increments), so one swap restores
  // the invariant.  Binary search for the first sibling lighter than the
  // new weight, i.e. weight == old_weight.
  std::uint32_t lo = 0;
  std::uint32_t hi = pos;
  while (lo < hi) {
    const std::uint32_t mid = lo + (hi - lo) / 2;
    if (nodes_[siblings[mid]].weight >= node.weight) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  PFP_DASSERT(nodes_[siblings[lo]].weight == old_weight);
  std::swap(siblings[lo], siblings[pos]);
  nodes_[siblings[pos]].pos_in_parent = pos;
  node.pos_in_parent = lo;
}

NodeId NodePool::find_child(NodeId parent, BlockId block) const {
  const auto it = edges_.find(EdgeKey{parent, block});
  return it == edges_.end() ? kNoNode : it->second;
}

void NodePool::destroy(NodeId id) {
  Node& node = nodes_[id];
  PFP_REQUIRE(node.children.empty());
  const NodeId parent = node.parent;
  if (parent != kNoNode) {
    auto& siblings = nodes_[parent].children;
    PFP_DASSERT(siblings[node.pos_in_parent] == id);
    siblings.erase(siblings.begin() +
                   static_cast<std::ptrdiff_t>(node.pos_in_parent));
    for (std::size_t i = node.pos_in_parent; i < siblings.size(); ++i) {
      nodes_[siblings[i]].pos_in_parent = static_cast<std::uint32_t>(i);
    }
    if (nodes_[parent].last_visited_child == id) {
      nodes_[parent].last_visited_child = kNoNode;
    }
    edges_.erase(EdgeKey{parent, node.block});
  }
  node = Node{};  // resets children_epoch to 0: a freed slot never matches
  node.parent = kNoNode;
  free_.push_back(id);
  --live_;
  if (parent != kNoNode) {
    nodes_[parent].children_epoch = ++epoch_;
  }
  // The victim may sit far from the parse path, outside the parse-order
  // argument; the global eviction stamp invalidates every cached list.
  ++eviction_epoch_;
}

}  // namespace pfp::core::tree
