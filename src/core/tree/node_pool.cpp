#include "core/tree/node_pool.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/audit.hpp"

namespace pfp::core::tree {

NodePool::NodePool() { edges_.reserve(1024); }

std::uint32_t NodePool::run_class(std::uint32_t capacity) noexcept {
  PFP_DASSERT(capacity != 0 && (capacity & (capacity - 1)) == 0);
  std::uint32_t cls = 0;
  while ((1u << cls) < capacity) {
    ++cls;
  }
  return cls;
}

std::uint32_t NodePool::alloc_run(std::uint32_t cls) {
  auto& recycled = free_runs_[cls];
  if (!recycled.empty()) {
    const std::uint32_t begin = recycled.back();
    recycled.pop_back();
    return begin;
  }
  const std::size_t begin = arena_.size();
  PFP_REQUIRE(begin + (1u << cls) <=
              static_cast<std::size_t>(std::numeric_limits<std::uint32_t>::max()));
  arena_.resize(begin + (std::size_t{1} << cls), kNoNode);
  return static_cast<std::uint32_t>(begin);
}

void NodePool::free_run(std::uint32_t begin, std::uint32_t capacity) {
  if (capacity == 0) {
    return;
  }
  free_runs_[run_class(capacity)].push_back(begin);
}

void NodePool::grow_run(NodeId id) {
  // Copy out the run head first: alloc_run may resize the arena and any
  // HotNode reference would be into the pre-copy child data anyway.
  const std::uint32_t old_begin = hot_[id].child_begin;
  const std::uint32_t old_capacity = hot_[id].child_capacity;
  const std::uint32_t count = hot_[id].child_count;
  const std::uint32_t new_capacity =
      old_capacity == 0 ? kMinRunCapacity : old_capacity * 2;
  const std::uint32_t new_begin = alloc_run(run_class(new_capacity));
  if (count > 0) {
    std::copy(arena_.begin() + old_begin, arena_.begin() + old_begin + count,
              arena_.begin() + new_begin);
  }
  free_run(old_begin, old_capacity);
  HotNode& node = hot_[id];
  node.child_begin = new_begin;
  node.child_capacity = new_capacity;
}

NodeId NodePool::create(NodeId parent, BlockId block) {
  NodeId id;
  if (!free_.empty()) {
    id = free_.back();
    free_.pop_back();
  } else {
    id = static_cast<NodeId>(hot_.size());
    PFP_REQUIRE(id != kNoNode);
    hot_.emplace_back();
    cold_.emplace_back();
  }
  hot_[id] = HotNode{};
  cold_[id] = ColdNode{};
  HotNode& node = hot_[id];
  node.block = block;
  node.weight = 1;
  node.parent = parent;
  if (parent != kNoNode) {
    // Weight 1 is the minimum, so appending keeps the child run sorted.
    cold_[id].pos_in_parent = hot_[parent].child_count;
    if (hot_[parent].child_count == hot_[parent].child_capacity) {
      grow_run(parent);
    }
    HotNode& p = hot_[parent];
    arena_[p.child_begin + p.child_count] = id;
    ++p.child_count;
    edges_.emplace(EdgeKey{parent, block}, id);
  }
  ++live_;
  // The parent's child run grew; the new node itself gets a stamp
  // strictly above anything ever cached, which is what makes free-list
  // slot reuse safe for epoch-keyed caches.
  if (parent != kNoNode) {
    cold_[parent].children_epoch = ++epoch_;
  }
  cold_[id].children_epoch = ++epoch_;
  return id;
}

void NodePool::increment_weight(NodeId id) {
  HotNode& node = hot_[id];
  [[maybe_unused]] const std::uint64_t old_weight = node.weight++;
  if (node.parent == kNoNode) {
    return;
  }
  // O(1) stamp: only the immediate parent's downward view changed here.
  // The node's own stamp stays — its descendants did not move, only its
  // own weight did (that is exactly the enumerator's rescale case).
  cold_[node.parent].children_epoch = ++epoch_;
  NodeId* siblings = arena_.data() + hot_[node.parent].child_begin;
  const std::uint32_t pos = cold_[id].pos_in_parent;
  PFP_DASSERT(siblings[pos] == id);
  if (pos == 0 || hot_[siblings[pos - 1]].weight >= node.weight) {
    return;  // already in place
  }
  // All siblings in [target, pos) carry exactly old_weight (descending
  // order + weights change by single increments), so one swap restores
  // the invariant.  Binary search for the first sibling lighter than the
  // new weight, i.e. weight == old_weight.
  std::uint32_t lo = 0;
  std::uint32_t hi = pos;
  while (lo < hi) {
    const std::uint32_t mid = lo + (hi - lo) / 2;
    if (hot_[siblings[mid]].weight >= node.weight) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  PFP_DASSERT(hot_[siblings[lo]].weight == old_weight);
  std::swap(siblings[lo], siblings[pos]);
  cold_[siblings[pos]].pos_in_parent = pos;
  cold_[id].pos_in_parent = lo;
}

NodeId NodePool::find_child(NodeId parent, BlockId block) const {
  const auto it = edges_.find(EdgeKey{parent, block});
  return it == edges_.end() ? kNoNode : it->second;
}

void NodePool::destroy(NodeId id) {
  PFP_REQUIRE(hot_[id].child_count == 0);
  const NodeId parent = hot_[id].parent;
  if (parent != kNoNode) {
    HotNode& p = hot_[parent];
    NodeId* siblings = arena_.data() + p.child_begin;
    const std::uint32_t pos = cold_[id].pos_in_parent;
    PFP_DASSERT(siblings[pos] == id);
    for (std::uint32_t i = pos; i + 1 < p.child_count; ++i) {
      siblings[i] = siblings[i + 1];
      cold_[siblings[i]].pos_in_parent = i;
    }
    --p.child_count;
    if (p.child_count == 0) {
      // The run would otherwise linger while leaf-LRU churn (Figure 13's
      // bounded trees) creates and destroys subtrees; recycle it.
      free_run(p.child_begin, p.child_capacity);
      p.child_begin = 0;
      p.child_capacity = 0;
    }
    if (cold_[parent].last_visited_child == id) {
      cold_[parent].last_visited_child = kNoNode;
    }
    edges_.erase(EdgeKey{parent, hot_[id].block});
  }
  // Reset both planes; children_epoch 0 means a freed slot never matches.
  free_run(hot_[id].child_begin, hot_[id].child_capacity);
  hot_[id] = HotNode{};
  cold_[id] = ColdNode{};
  free_.push_back(id);
  --live_;
  if (parent != kNoNode) {
    cold_[parent].children_epoch = ++epoch_;
  }
  // The victim may sit far from the parse path, outside the parse-order
  // argument; the global eviction stamp invalidates every cached list.
  ++eviction_epoch_;
}

std::size_t NodePool::actual_memory_bytes() const noexcept {
  std::size_t bytes = hot_.capacity() * sizeof(HotNode) +
                      cold_.capacity() * sizeof(ColdNode) +
                      arena_.capacity() * sizeof(NodeId) +
                      free_.capacity() * sizeof(NodeId) +
                      edges_.capacity() * (sizeof(std::pair<EdgeKey, NodeId>) +
                                           sizeof(std::uint8_t));
  for (const auto& recycled : free_runs_) {
    bytes += recycled.capacity() * sizeof(std::uint32_t);
  }
  return bytes;
}

void NodePool::audit() const {
#if PFP_AUDIT_ENABLED
  PFP_AUDIT("NodePool", hot_.size() == cold_.size(),
            "hot and cold planes disagree on node count");
  PFP_AUDIT("NodePool", live_ + free_.size() == hot_.size(),
            "live count + free list does not cover the slabs");
  // Freed slots must be fully reset (a recycled NodeId with a stale
  // epoch would leak through the candidate cache's validity stamps).
  std::vector<bool> is_free(hot_.size(), false);
  for (const NodeId id : free_) {
    PFP_AUDIT("NodePool", id < hot_.size(), "free-list id beyond id bound");
    if (id >= hot_.size()) {
      return;
    }
    PFP_AUDIT("NodePool", !is_free[id], "node id doubly free-listed");
    is_free[id] = true;
    PFP_AUDIT("NodePool",
              hot_[id].weight == 0 && hot_[id].parent == kNoNode &&
                  hot_[id].child_count == 0 && hot_[id].child_capacity == 0 &&
                  cold_[id].children_epoch == 0,
              "freed slot not reset (stale epoch or dangling child run)");
  }
  // Paint every claimed arena interval — live child runs and recycled
  // free runs — and verify single ownership of each arena slot.
  std::vector<bool> claimed(arena_.size(), false);
  const auto claim = [&](std::uint32_t begin, std::uint32_t capacity,
                         const char* what) {
    PFP_AUDIT("NodePool",
              static_cast<std::size_t>(begin) + capacity <= arena_.size(),
              "child run reaches past the arena");
    if (static_cast<std::size_t>(begin) + capacity > arena_.size()) {
      return;
    }
    for (std::uint32_t i = begin; i < begin + capacity; ++i) {
      PFP_AUDIT("NodePool", !claimed[i], what);
      claimed[i] = true;
    }
  };
  for (NodeId id = 0; id < hot_.size(); ++id) {
    if (is_free[id]) {
      continue;
    }
    const HotNode& n = hot_[id];
    PFP_AUDIT("NodePool",
              n.child_capacity == 0 ||
                  (n.child_capacity & (n.child_capacity - 1)) == 0,
              "child run capacity is not a power of two");
    PFP_AUDIT("NodePool", n.child_count <= n.child_capacity,
              "child count exceeds the run capacity");
    claim(n.child_begin, n.child_capacity,
          "live child runs overlap in the arena");
    for (std::uint32_t i = 0; i < n.child_count; ++i) {
      const NodeId c = arena_[n.child_begin + i];
      PFP_AUDIT("NodePool", c < hot_.size() && !is_free[c],
                "child run entry names a dead node");
      if (c >= hot_.size()) {
        continue;
      }
      PFP_AUDIT("NodePool", hot_[c].parent == id,
                "child run entry does not point back at its owner");
      PFP_AUDIT("NodePool", cold_[c].pos_in_parent == i,
                "child's pos_in_parent disagrees with the run");
    }
  }
  for (std::uint32_t cls = 0; cls < kRunClasses; ++cls) {
    for (const std::uint32_t begin : free_runs_[cls]) {
      claim(begin, 1u << cls, "recycled run overlaps a claimed run");
    }
  }
#endif
}

}  // namespace pfp::core::tree
