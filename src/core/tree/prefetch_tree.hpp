// The LZ prefetch tree (Section 2).
//
// A directed tree built online from the block reference stream using the
// Vitter–Krishnan / Curewitz parse: the stream is split into substrings,
// each extending a previously seen substring by one new block.  Parsing
// walks from the root along matching edges, incrementing the weight of
// every node it arrives at (and the root's weight at every substring
// start, so root children carry first-block-of-substring statistics —
// Figure 1's a:5/6, b:1/6 example).  Hitting a missing edge adds a node
// and restarts at the root.
//
// Probability of child c given node n is weight(c) / weight(n); path
// probabilities multiply along edges, and the *distance* d_b of a
// descendant is its edge count from the current node (Figure 1's d_c=2).
//
// The tree optionally bounds its node count (Section 9.3): nodes are kept
// on an LRU list by last parse touch and the least recently used *leaf*
// is evicted — removing an interior node would orphan a whole subtree of
// still-useful context.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>

#include "core/tree/node_pool.hpp"
#include "util/assert.hpp"
#include "util/lru_list.hpp"

namespace pfp::core::tree {

struct TreeConfig {
  /// Maximum live nodes including the root; 0 = unbounded.  The paper's
  /// sweet spot for the CAD trace is 32K nodes (~1.25 MB at 40 B/node).
  std::size_t max_nodes = 0;
};

/// What the parse observed for one access; feeds Tables 2/3 and the
/// Figure 14/16 instrumentation.
struct AccessInfo {
  /// The accessed block was a child of the pre-access current node
  /// (the paper's "predictable" — Section 9.4).
  bool predictable = false;
  /// The pre-access current node had a last-visited child.
  bool had_lvc = false;
  /// The access went to exactly that last-visited child (Table 3).
  bool followed_lvc = false;
  /// Parsing added a new node (substring boundary; parse reset to root).
  bool new_node = false;
};

class PrefetchTree {
 public:
  explicit PrefetchTree(TreeConfig config = TreeConfig{});

  // Trees carry a process-unique id that epoch-keyed caches (see
  // CandidateEnumerator) fold into their keys.  A copy is a new tree
  // (fresh uid); a move keeps the uid — the moved-to object holds the
  // exact structure the cache entries describe — and re-uids the
  // moved-from shell so later reuse of it cannot alias stale entries.
  PrefetchTree(const PrefetchTree& other);
  PrefetchTree& operator=(const PrefetchTree& other);
  PrefetchTree(PrefetchTree&& other) noexcept;
  PrefetchTree& operator=(PrefetchTree&& other) noexcept;
  ~PrefetchTree() = default;

  /// Feeds one reference through the LZ parse.
  AccessInfo access(BlockId block);

  /// Node the parse is currently positioned at (prediction context).
  [[nodiscard]] NodeId current() const noexcept { return current_; }
  [[nodiscard]] NodeId root() const noexcept { return root_; }

  /// By-value snapshot of one node (reads both planes); introspection
  /// convenience — hot paths use the single-field accessors below.
  [[nodiscard]] NodeView node(NodeId id) const { return pool_.view(id); }
  [[nodiscard]] BlockId block(NodeId id) const { return pool_.block(id); }
  [[nodiscard]] std::uint64_t weight(NodeId id) const {
    return pool_.weight(id);
  }
  [[nodiscard]] std::uint64_t children_epoch(NodeId id) const {
    return pool_.children_epoch(id);
  }
  /// Children of `id`, weight-descending, as one contiguous slice of the
  /// pool's child arena.  Invalidated by the next access() (node creation
  /// can move or reallocate runs).
  [[nodiscard]] std::span<const NodeId> children(NodeId id) const {
    return pool_.children(id);
  }

  /// weight(child) / weight(parent) — the edge probability.  Inline: this
  /// sits in the innermost loop of candidate enumeration.
  [[nodiscard]] double edge_probability(NodeId parent, NodeId child) const {
    const std::uint64_t wp = pool_.weight(parent);
    const std::uint64_t wc = pool_.weight(child);
    PFP_DASSERT(wp > 0);
    PFP_DASSERT(wc <= wp);
    return static_cast<double>(wc) / static_cast<double>(wp);
  }

  /// Child of `id` labelled `block`, or kNoNode.
  [[nodiscard]] NodeId find_child(NodeId id, BlockId block) const {
    return pool_.find_child(id, block);
  }

  /// Last-visited child of `id`, or kNoNode (Section 9.6).
  [[nodiscard]] NodeId last_visited_child(NodeId id) const {
    return pool_.last_visited_child(id);
  }

  /// Process-unique identity of this tree instance (cache key component).
  [[nodiscard]] std::uint64_t uid() const noexcept { return uid_; }

  /// Count of access() calls.  Between two reads with equal serials the
  /// tree is bitwise unchanged — the cheapest possible cache-hit proof.
  [[nodiscard]] std::uint64_t access_serial() const noexcept {
    return access_serial_;
  }

  /// Read-only pool access for tight walks over the node slab.
  [[nodiscard]] const NodePool& pool() const noexcept { return pool_; }

  [[nodiscard]] std::size_t node_count() const noexcept {
    return pool_.live_nodes();
  }
  [[nodiscard]] std::size_t approx_memory_bytes() const noexcept {
    return pool_.approx_memory_bytes();
  }
  /// Bytes the SoA layout actually reserves (planes + child arena + edge
  /// map); approx_memory_bytes() stays on the paper's 40 B/node axis.
  [[nodiscard]] std::size_t actual_memory_bytes() const noexcept {
    return pool_.actual_memory_bytes();
  }
  [[nodiscard]] const TreeConfig& config() const noexcept { return config_; }

  /// SIM_AUDIT sweep: parent/child symmetry, descending-weight child
  /// order, edge-map agreement, child weight sums, leaf-LRU membership,
  /// and reachability of every live node and of the parse position
  /// (docs/static-analysis.md).  No-op unless compiled with
  /// SIM_AUDIT >= 1.
  void audit() const;

  /// Persists the tree's structure (topology, blocks, weights) as a
  /// compact binary stream, so a trained predictor can warm-start a later
  /// run.  Parse position and last-visited-child pointers are transient
  /// and not persisted.
  void serialize(std::ostream& out) const;

  /// Reconstructs a tree written by serialize().  The node bound of
  /// `config` governs future growth only (loading never evicts).  Throws
  /// std::runtime_error on malformed input.
  static PrefetchTree deserialize(std::istream& in,
                                  TreeConfig config = TreeConfig{});

 private:
  friend struct AuditTestAccess;  // corruption hooks for audit tests

  static std::uint64_t next_uid() noexcept;

  /// Deserialization helper: attach a child with a known weight, keeping
  /// the leaf-LRU bookkeeping consistent.  Children must be restored in
  /// descending-weight order (the serialized order).
  NodeId restore_child(NodeId parent, BlockId block, std::uint64_t weight);
  void touch(NodeId id);
  void on_becomes_interior(NodeId id);
  void evict_one_leaf();

  TreeConfig config_;
  NodePool pool_;
  NodeId root_;
  NodeId current_;
  /// LRU over *leaf* nodes only; interior nodes are not evictable.
  util::LruList leaf_lru_;
  std::uint64_t uid_;
  std::uint64_t access_serial_ = 0;
};

}  // namespace pfp::core::tree
