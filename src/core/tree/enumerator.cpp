#include "core/tree/enumerator.hpp"

#include <algorithm>

namespace pfp::core::tree {

void CandidateEnumerator::push_children(const PrefetchTree& tree, NodeId node,
                                        double path_prob, std::uint32_t depth,
                                        const EnumeratorLimits& limits) {
  if (depth >= limits.max_depth) {
    return;
  }
  // Children are kept sorted by descending weight, hence descending
  // edge probability: stop at the first child below the cutoff.
  for (const NodeId child : tree.children(node)) {
    const double p = path_prob * tree.edge_probability(node, child);
    if (p < limits.min_probability) {
      break;
    }
    frontier_.push_back(FrontierItem{p, path_prob, child, depth + 1});
    std::push_heap(frontier_.begin(), frontier_.end());
  }
}

std::span<const Candidate> CandidateEnumerator::enumerate(
    const PrefetchTree& tree, NodeId from, const EnumeratorLimits& limits) {
  out_.clear();
  seen_.clear();
  frontier_.clear();
  if (tree.node(from).weight == 0) {
    return {};  // empty tree: no statistics yet
  }
  out_.reserve(limits.max_candidates);
  seen_.reserve(limits.max_candidates);

  push_children(tree, from, 1.0, 0, limits);

  while (!frontier_.empty() && out_.size() < limits.max_candidates) {
    std::pop_heap(frontier_.begin(), frontier_.end());
    const FrontierItem item = frontier_.back();
    frontier_.pop_back();
    const Node& node = tree.node(item.node);
    // A block can be a descendant along several paths; heap order makes
    // the first occurrence the most probable one.  The emitted set is
    // small (<= max_candidates), so a linear scan beats hashing.
    const bool duplicate =
        std::find(seen_.begin(), seen_.end(), node.block) != seen_.end();
    if (!duplicate) {
      out_.push_back(Candidate{node.block, item.probability,
                               item.parent_probability, item.depth,
                               item.node});
      seen_.push_back(node.block);
    }
    push_children(tree, item.node, item.probability, item.depth, limits);
  }
  return out_;
}

std::vector<Candidate> enumerate_candidates(const PrefetchTree& tree,
                                            NodeId from,
                                            const EnumeratorLimits& limits) {
  CandidateEnumerator enumerator;
  const auto span = enumerator.enumerate(tree, from, limits);
  return std::vector<Candidate>(span.begin(), span.end());
}

}  // namespace pfp::core::tree
