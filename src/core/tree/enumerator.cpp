#include "core/tree/enumerator.hpp"

#include <algorithm>
#include <queue>

namespace pfp::core::tree {

namespace {

struct FrontierItem {
  double probability;
  double parent_probability;
  NodeId node;
  std::uint32_t depth;
  bool operator<(const FrontierItem& other) const {
    return probability < other.probability;  // max-heap on probability
  }
};

}  // namespace

std::vector<Candidate> enumerate_candidates(const PrefetchTree& tree,
                                            NodeId from,
                                            const EnumeratorLimits& limits) {
  std::vector<Candidate> out;
  if (tree.node(from).weight == 0) {
    return out;  // empty tree: no statistics yet
  }
  out.reserve(limits.max_candidates);

  std::priority_queue<FrontierItem> frontier;
  const auto push_children = [&](NodeId node, double path_prob,
                                 std::uint32_t depth) {
    if (depth >= limits.max_depth) {
      return;
    }
    // Children are kept sorted by descending weight, hence descending
    // edge probability: stop at the first child below the cutoff.
    for (const NodeId child : tree.children(node)) {
      const double p = path_prob * tree.edge_probability(node, child);
      if (p < limits.min_probability) {
        break;
      }
      frontier.push(FrontierItem{p, path_prob, child, depth + 1});
    }
  };
  push_children(from, 1.0, 0);

  while (!frontier.empty() && out.size() < limits.max_candidates) {
    const FrontierItem item = frontier.top();
    frontier.pop();
    const Node& node = tree.node(item.node);
    // A block can be a descendant along several paths; heap order makes
    // the first occurrence the most probable one.  The candidate list is
    // small (<= max_candidates), so a linear scan beats hashing.
    const bool duplicate =
        std::any_of(out.begin(), out.end(), [&](const Candidate& c) {
          return c.block == node.block;
        });
    if (!duplicate) {
      out.push_back(Candidate{node.block, item.probability,
                              item.parent_probability, item.depth,
                              item.node});
    }
    push_children(item.node, item.probability, item.depth);
  }
  return out;
}

}  // namespace pfp::core::tree
