#include "core/tree/enumerator.hpp"

#include <algorithm>
#include <array>

#include "util/assert.hpp"
#include "util/prefetch.hpp"

namespace pfp::core::tree {

void CandidateEnumerator::seen_reset(std::size_t max_candidates) {
  // At most max_candidates blocks are ever inserted; keep load <= 1/2 so
  // probe chains stay short.
  std::size_t want = 16;
  while (want < max_candidates * 2) {
    want <<= 1;
  }
  if (seen_.size() != want) {
    seen_.assign(want, SeenSlot{});
    seen_generation_ = 0;
  }
  if (++seen_generation_ == 0) {  // generation wrapped: purge stale stamps
    std::fill(seen_.begin(), seen_.end(), SeenSlot{});
    seen_generation_ = 1;
  }
}

bool CandidateEnumerator::seen_insert(BlockId block) {
  const std::size_t mask = seen_.size() - 1;
  std::uint64_t h = block;  // splitmix-style mix; blocks are sparse
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  h ^= h >> 31;
  std::size_t i = static_cast<std::size_t>(h) & mask;
  while (true) {
    SeenSlot& slot = seen_[i];
    if (slot.generation != seen_generation_) {
      slot.generation = seen_generation_;
      slot.block = block;
      return true;
    }
    if (slot.block == block) {
      return false;
    }
    i = (i + 1) & mask;
  }
}

void CandidateEnumerator::full_walk(const PrefetchTree& tree, NodeId from,
                                    const EnumeratorLimits& limits,
                                    std::vector<Candidate>& out, bool& capped,
                                    bool& deduped) {
  out.clear();
  frontier_.clear();
  seen_reset(limits.max_candidates);
  out.reserve(limits.max_candidates);
  bool saw_duplicate = false;

  const HotNode* nodes = tree.pool().hot_data();
  const NodeId* arena = tree.pool().child_arena();
  const std::uint32_t max_depth = limits.max_depth;
  const double min_probability = limits.min_probability;
  const std::size_t max_candidates = limits.max_candidates;

  // How far ahead of the scan position sibling hot-plane gathers are
  // prefetched.  The sibling run itself is contiguous (streamed by the
  // hardware); the per-child weight reads scatter across the hot plane
  // and are exactly the pointer-chase this hides.
  constexpr std::size_t kGatherAhead = 4;

  const auto push_children = [&](NodeId parent_id, double path_prob,
                                 std::uint32_t depth) {
    if (depth >= max_depth) {
      return;
    }
    const HotNode& parent = nodes[parent_id];
    // Children are kept sorted by descending weight, hence descending
    // edge probability: stop at the first child below the cutoff.  The
    // divide per child matches edge_probability() exactly (hoisting only
    // the integer->double conversion of the shared denominator).
    const double parent_weight = static_cast<double>(parent.weight);
    const NodeId* children = arena + parent.child_begin;
    const std::size_t child_count = parent.child_count;
    for (std::size_t i = 0; i < kGatherAhead && i < child_count; ++i) {
      util::prefetch_read(&nodes[children[i]]);
    }
    for (std::size_t i = 0; i < child_count; ++i) {
      if (i + kGatherAhead < child_count) {
        util::prefetch_read(&nodes[children[i + kGatherAhead]]);
      }
      const NodeId child = children[i];
      const double p =
          path_prob *
          (static_cast<double>(nodes[child].weight) / parent_weight);
      if (p < min_probability) {
        break;
      }
      // This child is now on the frontier and will have its own run
      // scanned if popped: stage the next level's sibling run while the
      // current one streams (best-first descent prefetch).  Leaves have
      // no run — most frontier nodes near the cutoff are leaves, so the
      // gate saves more bandwidth than the (cached) count read costs.
      if (nodes[child].child_count != 0) {
        util::prefetch_read(arena + nodes[child].child_begin);
      }
      frontier_.push_back(FrontierItem{p, path_prob, child, depth + 1});
      std::push_heap(frontier_.begin(), frontier_.end());
    }
  };

  push_children(from, 1.0, 0);

  while (!frontier_.empty() && out.size() < max_candidates) {
    std::pop_heap(frontier_.begin(), frontier_.end());
    const FrontierItem item = frontier_.back();
    frontier_.pop_back();
    if (!frontier_.empty()) {
      // The heap root is the next node whose run gets scanned; warm its
      // hot-plane entry while this item's children are pushed.
      util::prefetch_read(&nodes[frontier_.front().node]);
    }
    const HotNode& node = nodes[item.node];
    // A block can be a descendant along several paths; heap order makes
    // the first occurrence the most probable one.
    if (seen_insert(node.block)) {
      out.push_back(Candidate{node.block, item.probability,
                              item.parent_probability, item.depth, item.node});
    } else {
      saw_duplicate = true;
    }
    push_children(item.node, item.probability, item.depth);
  }
  // Items left on the frontier were never examined: the emitted top-k is
  // only known stable for the weights it was computed under.
  capped = !frontier_.empty();
  deduped = saw_duplicate;
}

bool CandidateEnumerator::rescale(const PrefetchTree& tree, NodeId from,
                                  const EnumeratorLimits& limits,
                                  std::vector<Candidate>& items) {
  // Only `from`'s own weight grew (its children_epoch is untouched), so
  // every cached path keeps its nodes and integer weights below the first
  // edge.  Recompute each product from the live weights in the exact
  // multiply order of a fresh walk.  Reuse is only claimed when the
  // result is provably what a fresh walk would emit: membership may not
  // shrink (min_probability crossing) and the pairwise order/tie
  // structure of the sorted list may not change — weights only grow, so
  // membership can never expand.
  const HotNode* nodes = tree.pool().hot_data();
  constexpr std::uint32_t kMaxChain = 64;
  std::array<NodeId, kMaxChain> chain;
  double prev_old = 0.0;
  double prev_new = 0.0;
  bool have_prev = false;
  for (Candidate& c : items) {
    if (c.depth > kMaxChain) {
      return false;  // degenerate limits: just re-walk
    }
    // Tree paths are unique: the ancestor chain from the candidate's
    // node is the enumeration path, no per-candidate storage needed.
    NodeId id = c.node;
    for (std::uint32_t i = c.depth; i > 0; --i) {
      chain[i - 1] = id;
      id = nodes[id].parent;
    }
    PFP_DASSERT(id == from);
    const double old_probability = c.probability;
    double p = 1.0;
    double parent_p = 1.0;
    std::uint64_t denominator = nodes[from].weight;
    for (std::uint32_t i = 0; i < c.depth; ++i) {
      const std::uint64_t w = nodes[chain[i]].weight;
      parent_p = p;
      p = p * (static_cast<double>(w) / static_cast<double>(denominator));
      if (p < limits.min_probability) {
        return false;  // membership shrank: best-first truncation moved
      }
      denominator = w;
    }
    if (have_prev) {
      // The recomputed first-edge denominators can round differently per
      // path; a strict ordering that collapses to a tie (or the reverse)
      // would change heap pop order in a fresh walk.
      const bool tie_old = prev_old == old_probability;
      const bool tie_new = prev_new == p;
      const bool descending_old = prev_old > old_probability;
      const bool descending_new = prev_new > p;
      if (tie_old != tie_new || descending_old != descending_new) {
        return false;
      }
    }
    c.probability = p;
    c.parent_probability = parent_p;
    prev_old = old_probability;
    prev_new = p;
    have_prev = true;
  }
  return true;
}

bool CandidateEnumerator::parse_strictly_below(const PrefetchTree& tree,
                                               NodeId from) {
  NodeId id = tree.current();
  if (id == from) {
    return false;  // the simulator's case: enumerating from the parse node
  }
  const HotNode* nodes = tree.pool().hot_data();
  while (id != kNoNode) {
    id = nodes[id].parent;
    if (id == from) {
      return true;
    }
  }
  return false;
}

bool CandidateEnumerator::same_items(std::span<const Candidate> a,
                                     std::span<const Candidate> b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    const Candidate& x = a[i];
    const Candidate& y = b[i];
    if (x.block != y.block || x.probability != y.probability ||
        x.parent_probability != y.parent_probability || x.depth != y.depth ||
        x.node != y.node) {
      return false;
    }
  }
  return true;
}

std::span<const Candidate> CandidateEnumerator::enumerate(
    const PrefetchTree& tree, NodeId from, const EnumeratorLimits& limits) {
  const std::uint64_t origin_weight = tree.weight(from);
  if (origin_weight == 0) {
    return {};  // empty tree: no statistics yet (the cache is untouched)
  }
  const std::uint64_t origin_epoch = tree.children_epoch(from);
  if (slots_.empty()) {
    slots_.resize(kCacheSlots);  // lazily built: one-shot users skip it
  }
  Slot& slot = slots_[static_cast<std::size_t>(from) & (kCacheSlots - 1)];
  const std::uint64_t serial = tree.access_serial();
  if (slot.from == from && slot.tree_uid == tree.uid() &&
      slot.limits == limits) {
    // Frozen: not a single access since the fill, so the tree is bitwise
    // unchanged.  Stable: the parse-order argument (file header of
    // enumerator.hpp) proves the whole subtree below `from` unchanged.
    const bool frozen = slot.fill_serial == serial;
    const bool stable =
        !slot.parse_below &&
        slot.eviction_epoch == tree.pool().eviction_epoch() &&
        slot.children_epoch == origin_epoch;
    if (frozen || stable) {
      if (slot.items_valid) {
        if (slot.from_weight == origin_weight) {
          ++stats_.verbatim_hits;
          check_cached_result(tree, from, limits, slot);
          return {slot.items.data(), slot.items.size()};
        }
        if (origin_weight > slot.from_weight && !slot.capped &&
            !slot.deduped && rescale(tree, from, limits, slot.items)) {
          slot.from_weight = origin_weight;
          slot.fill_serial = serial;
          slot.parse_below = parse_strictly_below(tree, from);
          ++stats_.rescale_hits;
          check_cached_result(tree, from, limits, slot);
          return {slot.items.data(), slot.items.size()};
        }
      }
      // The key repeated while still reusable: this node is worth
      // materializing, so promote the header-only entry with a walk into
      // the slot's retained buffer.  (A failed rescale lands here too;
      // the walk overwrites its partial in-place updates.)
      ++stats_.full_walks;
      full_walk(tree, from, limits, slot.items, slot.capped, slot.deduped);
      slot.children_epoch = origin_epoch;
      slot.from_weight = origin_weight;
      slot.eviction_epoch = tree.pool().eviction_epoch();
      slot.fill_serial = serial;
      slot.parse_below = parse_strictly_below(tree, from);
      slot.items_valid = true;
      return {slot.items.data(), slot.items.size()};
    }
  }
  // Miss: record the key header so a repeat lookup can promote, but walk
  // into the shared hot buffer — a never-repeating key (the simulator's
  // parse dirties exactly what it enumerates) costs no scattered
  // per-slot writes.
  slot.from = from;
  slot.tree_uid = tree.uid();
  slot.limits = limits;
  slot.children_epoch = origin_epoch;
  slot.from_weight = origin_weight;
  slot.eviction_epoch = tree.pool().eviction_epoch();
  slot.fill_serial = serial;
  slot.parse_below = parse_strictly_below(tree, from);
  slot.items_valid = false;
  ++stats_.full_walks;
  bool capped = false;
  bool deduped = false;
  full_walk(tree, from, limits, out_, capped, deduped);
  return {out_.data(), out_.size()};
}

std::span<const Candidate> CandidateEnumerator::enumerate_fresh(
    const PrefetchTree& tree, NodeId from, const EnumeratorLimits& limits) {
  if (tree.weight(from) == 0) {
    return {};
  }
  bool capped = false;
  bool deduped = false;
  full_walk(tree, from, limits, out_, capped, deduped);
  return {out_.data(), out_.size()};
}

void CandidateEnumerator::enumerate_fresh_into(const PrefetchTree& tree,
                                               NodeId from,
                                               const EnumeratorLimits& limits,
                                               std::vector<Candidate>& out) {
  out.clear();
  if (tree.weight(from) == 0) {
    return;
  }
  bool capped = false;
  bool deduped = false;
  full_walk(tree, from, limits, out, capped, deduped);
}

void CandidateEnumerator::clear_cache() {
  for (Slot& slot : slots_) {
    slot.from = kNoNode;
    slot.tree_uid = 0;
    slot.items_valid = false;
    slot.items.clear();  // keeps capacity: steady state stays alloc-free
  }
}

void CandidateEnumerator::audit([[maybe_unused]] const PrefetchTree& tree)
    const {
#if PFP_AUDIT_ENABLED
  // Reference results come from a scratch enumerator's cache-free path.
  // Allocation is fine here — audits are diagnostics, not the hot path.
  CandidateEnumerator fresh;
  for (const Slot& slot : slots_) {
    if (slot.from == kNoNode || slot.tree_uid != tree.uid() ||
        !slot.items_valid) {
      continue;  // empty, keyed to another tree, or header-only
    }
    PFP_AUDIT("CandidateEnumerator", slot.from < tree.pool().id_bound(),
              "cached node id beyond the pool's id bound");
    if (slot.from >= tree.pool().id_bound()) {
      continue;
    }
    const NodeView origin = tree.node(slot.from);
    // Mirror enumerate()'s hit conditions: only slots a lookup would
    // actually reuse are held to the bit-identity contract.
    const bool frozen = slot.fill_serial == tree.access_serial();
    const bool stable =
        !slot.parse_below &&
        slot.eviction_epoch == tree.pool().eviction_epoch() &&
        slot.children_epoch == origin.children_epoch;
    if (!frozen && !stable) {
      continue;  // stale: a lookup would fall through to a full walk
    }
    PFP_AUDIT("CandidateEnumerator", origin.weight >= slot.from_weight,
              "cached from-weight exceeds the live weight (weights only "
              "grow; recycled slot leaking through the validity stamps?)");
    if (origin.weight == slot.from_weight) {
      const auto reference =
          fresh.enumerate_fresh(tree, slot.from, slot.limits);
      PFP_AUDIT("CandidateEnumerator",
                same_items({slot.items.data(), slot.items.size()}, reference),
                "verbatim-reusable slot diverges from a fresh enumeration");
    } else if (origin.weight > slot.from_weight && !slot.capped &&
               !slot.deduped) {
      std::vector<Candidate> rescaled = slot.items;
      if (rescale(tree, slot.from, slot.limits, rescaled)) {
        const auto reference =
            fresh.enumerate_fresh(tree, slot.from, slot.limits);
        PFP_AUDIT("CandidateEnumerator",
                  same_items({rescaled.data(), rescaled.size()}, reference),
                  "rescaled slot diverges from a fresh enumeration");
      }
    }
  }
#endif
}

std::vector<Candidate> enumerate_candidates(const PrefetchTree& tree,
                                            NodeId from,
                                            const EnumeratorLimits& limits) {
  // enumerate_fresh() never reads or writes the slot cache, so reusing
  // one scratch enumerator per thread is behaviour-identical to a fresh
  // instance while keeping the walk's frontier/dedup/output buffers warm
  // across one-shot calls.
  thread_local CandidateEnumerator scratch;
  std::vector<Candidate> result;
  scratch.enumerate_fresh_into(tree, from, limits, result);
  return result;
}

}  // namespace pfp::core::tree
