#include "core/tree/predictability.hpp"

namespace pfp::core::tree {

PredictabilityReport measure_predictability(const trace::Trace& trace,
                                            TreeConfig config) {
  PrefetchTree tree(config);
  PredictabilityReport report;
  for (const auto& record : trace) {
    const AccessInfo info = tree.access(record.block);
    ++report.accesses;
    if (info.predictable) {
      ++report.predictable;
    }
    if (info.had_lvc) {
      ++report.lvc_opportunities;
      if (info.followed_lvc) {
        ++report.lvc_followed;
      }
    }
  }
  report.tree_nodes = tree.node_count();
  return report;
}

}  // namespace pfp::core::tree
