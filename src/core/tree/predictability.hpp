// Standalone predictability measurement (Table 2 without a simulator).
//
// Replays a trace through the LZ parse only and reports the paper's
// Section 9.4 statistics: the fraction of accesses that were predictable
// (present as a child of the current node) and the last-visited-child
// revisit rate (Table 3).  Useful for characterizing a trace's
// learnability before running cache simulations.
#pragma once

#include "core/tree/prefetch_tree.hpp"
#include "trace/trace.hpp"

namespace pfp::core::tree {

struct PredictabilityReport {
  std::uint64_t accesses = 0;
  std::uint64_t predictable = 0;        ///< child of the current node
  std::uint64_t lvc_opportunities = 0;  ///< node had a last-visited child
  std::uint64_t lvc_followed = 0;       ///< and the access went there
  std::size_t tree_nodes = 0;           ///< final tree size

  /// Table 2's "prediction accuracy".
  [[nodiscard]] double prediction_accuracy() const {
    return accesses == 0 ? 0.0
                         : static_cast<double>(predictable) /
                               static_cast<double>(accesses);
  }
  /// Table 3's last-visited-child revisit rate.
  [[nodiscard]] double lvc_revisit_rate() const {
    return lvc_opportunities == 0
               ? 0.0
               : static_cast<double>(lvc_followed) /
                     static_cast<double>(lvc_opportunities);
  }
};

/// One LZ pass over the trace; O(n) with tree growth bounded by `config`.
PredictabilityReport measure_predictability(
    const trace::Trace& trace, TreeConfig config = TreeConfig{});

}  // namespace pfp::core::tree
