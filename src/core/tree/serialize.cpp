// Binary (de)serialization of the prefetch tree.
//
// Format: "PFTR" magic, little-endian u16 version, u64 node count, then a
// preorder walk — the root contributes (weight u64, child count u32) and
// every other node (block u64, weight u64, child count u32).  Children
// appear in the stored descending-weight order, so reconstruction keeps
// the sorted-children invariant by plain appends.
#include <array>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <vector>

#include "core/tree/prefetch_tree.hpp"

namespace pfp::core::tree {

namespace {

constexpr std::array<char, 4> kMagic = {'P', 'F', 'T', 'R'};
constexpr std::uint16_t kVersion = 1;

void write_u16(std::ostream& out, std::uint16_t v) {
  out.put(static_cast<char>(v & 0xff));
  out.put(static_cast<char>((v >> 8) & 0xff));
}

void write_u32(std::ostream& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.put(static_cast<char>(v & 0xff));
    v >>= 8;
  }
}

void write_u64(std::ostream& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.put(static_cast<char>(v & 0xff));
    v >>= 8;
  }
}

std::uint16_t read_u16(std::istream& in) {
  std::array<unsigned char, 2> b{};
  in.read(reinterpret_cast<char*>(b.data()), b.size());
  return static_cast<std::uint16_t>(b[0] | (b[1] << 8));
}

std::uint32_t read_u32(std::istream& in) {
  std::array<unsigned char, 4> b{};
  in.read(reinterpret_cast<char*>(b.data()), b.size());
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | b[static_cast<std::size_t>(i)];
  }
  return v;
}

std::uint64_t read_u64(std::istream& in) {
  std::array<unsigned char, 8> b{};
  in.read(reinterpret_cast<char*>(b.data()), b.size());
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | b[static_cast<std::size_t>(i)];
  }
  return v;
}

[[noreturn]] void corrupt(const char* what) {
  throw std::runtime_error(std::string("prefetch-tree stream: ") + what);
}

}  // namespace

void PrefetchTree::serialize(std::ostream& out) const {
  out.write(kMagic.data(), kMagic.size());
  write_u16(out, kVersion);
  write_u64(out, node_count());

  // Preorder via explicit stack (trees can be deep on long traces).
  write_u64(out, node(root()).weight);
  write_u32(out, static_cast<std::uint32_t>(children(root()).size()));
  std::vector<NodeId> stack(children(root()).rbegin(),
                            children(root()).rend());
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    write_u64(out, pool_.block(id));
    write_u64(out, pool_.weight(id));
    const auto kids = pool_.children(id);
    write_u32(out, static_cast<std::uint32_t>(kids.size()));
    stack.insert(stack.end(), kids.rbegin(), kids.rend());
  }
}

NodeId PrefetchTree::restore_child(NodeId parent, BlockId block,
                                   std::uint64_t weight) {
  const bool parent_was_leaf =
      parent != root_ && pool_.child_count(parent) == 0;
  const NodeId added = pool_.create(parent, block);
  pool_.hot(added).weight = weight;
  if (leaf_lru_.capacity() <= added) {
    leaf_lru_.resize(pool_.id_bound() * 2 + 16);
  }
  if (parent_was_leaf) {
    on_becomes_interior(parent);
  }
  leaf_lru_.push_front(added);
  return added;
}

PrefetchTree PrefetchTree::deserialize(std::istream& in, TreeConfig config) {
  std::array<char, 4> magic{};
  in.read(magic.data(), magic.size());
  if (!in || magic != kMagic) {
    corrupt("bad magic");
  }
  if (read_u16(in) != kVersion) {
    corrupt("unsupported version");
  }
  const std::uint64_t expected_nodes = read_u64(in);
  if (!in || expected_nodes == 0) {
    corrupt("truncated header");
  }

  PrefetchTree tree(config);
  tree.pool_.hot(tree.root_).weight = read_u64(in);
  const std::uint32_t root_children = read_u32(in);

  struct Pending {
    NodeId parent;
    std::uint32_t remaining;
    std::uint64_t last_child_weight;  // descending-order validation
  };
  std::vector<Pending> stack;
  if (root_children > 0) {
    stack.push_back(Pending{tree.root_, root_children, ~0ULL});
  }
  while (!stack.empty()) {
    Pending& top = stack.back();
    if (top.remaining == 0) {
      stack.pop_back();
      continue;
    }
    --top.remaining;
    const BlockId block = read_u64(in);
    const std::uint64_t weight = read_u64(in);
    const std::uint32_t child_count = read_u32(in);
    if (!in) {
      corrupt("truncated body");
    }
    if (weight == 0 || weight > top.last_child_weight ||
        (top.parent != tree.root_ &&
         weight > tree.pool_.weight(top.parent))) {
      corrupt("weight invariant violated");
    }
    if (tree.pool_.find_child(top.parent, block) != kNoNode) {
      corrupt("duplicate edge");
    }
    top.last_child_weight = weight;
    const NodeId parent = top.parent;  // `top` may dangle after push_back
    const NodeId added = tree.restore_child(parent, block, weight);
    if (child_count > 0) {
      stack.push_back(Pending{added, child_count, ~0ULL});
    }
  }
  if (tree.node_count() != expected_nodes) {
    corrupt("node count mismatch");
  }
  return tree;
}

}  // namespace pfp::core::tree
