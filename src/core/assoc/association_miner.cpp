#include "core/assoc/association_miner.hpp"

#include <algorithm>
#include <array>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <utility>

#include "util/assert.hpp"
#include "util/audit.hpp"
#include "util/binary_io.hpp"

namespace pfp::core::assoc {

namespace {

constexpr std::array<char, 4> kMagic = {'P', 'F', 'A', 'S'};
constexpr std::uint16_t kStreamVersion = 1;

[[noreturn]] void corrupt(const char* what) {
  throw std::runtime_error(std::string("association stream: ") + what);
}

}  // namespace

AssociationMiner::AssociationMiner(AssocConfig config)
    : config_(config), lru_(config.max_rows) {
  PFP_REQUIRE(config_.lookahead >= 1);
  // The mined access and its full forward window must coexist in the
  // circular buffer.
  PFP_REQUIRE(config_.window > config_.lookahead);
  PFP_REQUIRE(config_.row_width >= 1);
  PFP_REQUIRE(config_.max_rows >= 1);
  // age_threshold == 1 would halve a row's single occurrence to zero.
  PFP_REQUIRE(config_.age_threshold >= 2);
  index_.reserve(config_.max_rows);
  window_.resize(config_.window, 0);
}

void AssociationMiner::observe(trace::BlockId block) {
  window_[serial_ % config_.window] = block;
  if (serial_ >= config_.lookahead) {
    close_window(serial_ - config_.lookahead);
  }
  ++serial_;
  PFP_AUDIT_SWEEP(*this);
}

void AssociationMiner::close_window(std::uint64_t u) {
  const trace::BlockId source = window_[u % config_.window];
  const std::uint32_t slot = ensure_row(source);
  for (std::uint64_t v = u + 1; v <= u + config_.lookahead; ++v) {
    const trace::BlockId partner = window_[v % config_.window];
    if (partner == source) {
      continue;
    }
    // Count each distinct partner once per window, so support can never
    // outgrow the occurrence counter (probability stays a frequency).
    bool duplicate = false;
    for (std::uint64_t w = u + 1; w < v; ++w) {
      if (window_[w % config_.window] == partner) {
        duplicate = true;
        break;
      }
    }
    if (duplicate) {
      continue;
    }
    record_pair(slot, partner, static_cast<std::uint32_t>(v - u));
  }
  Row& row = rows_[slot];
  ++row.occurrences;
  if (row.occurrences >= config_.age_threshold) {
    age_row(slot);
  }
}

std::uint32_t AssociationMiner::ensure_row(trace::BlockId source) {
  const auto it = index_.find(source);
  if (it != index_.end()) {
    lru_.touch(it->second);
    return it->second;
  }
  std::uint32_t slot = 0;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
  } else if (rows_.size() < config_.max_rows) {
    slot = static_cast<std::uint32_t>(rows_.size());
    rows_.push_back(Row{});
    arena_.resize(rows_.size() * config_.row_width);
  } else {
    // Table full: recycle the least recently mined row.
    slot = lru_.pop_back();
    Row& victim = rows_[slot];
    index_.erase(victim.source);
    associations_ -= victim.size;
  }
  rows_[slot] = Row{source, 0, 0};
  index_.emplace(source, slot);
  lru_.push_front(slot);
  return slot;
}

void AssociationMiner::record_pair(std::uint32_t slot, trace::BlockId partner,
                                   std::uint32_t gap) {
  Row& row = rows_[slot];
  Association* a = row_slice(slot);

  std::uint32_t i = 0;
  while (i < row.size && a[i].block != partner) {
    ++i;
  }
  if (i < row.size) {
    ++a[i].support;
    a[i].min_gap = std::min(a[i].min_gap, gap);
    // Bubble toward the front to keep the descending-support order.
    while (i > 0 && a[i - 1].support < a[i].support) {
      std::swap(a[i - 1], a[i]);
      --i;
    }
  } else if (row.size < config_.row_width) {
    a[row.size] = Association{partner, 1, gap};
    ++row.size;
    ++associations_;
  } else {
    // Full row: the weakest association (last, by the sorted invariant)
    // makes room for the newcomer.
    a[row.size - 1] = Association{partner, 1, gap};
  }
}

void AssociationMiner::age_row(std::uint32_t slot) {
  Row& row = rows_[slot];
  Association* a = row_slice(slot);
  std::uint32_t kept = 0;
  for (std::uint32_t i = 0; i < row.size; ++i) {
    const std::uint32_t halved = a[i].support / 2;
    if (halved == 0) {
      continue;  // sporadic noise fades out entirely
    }
    a[kept] = Association{a[i].block, halved, a[i].min_gap};
    ++kept;
  }
  associations_ -= row.size - kept;
  row.size = kept;
  row.occurrences /= 2;
}

std::size_t AssociationMiner::predict_into(
    trace::BlockId block, const AssocPredictLimits& limits,
    std::vector<costben::PredictedBlock>& out) const {
  if (limits.max_candidates == 0) {
    return 0;
  }
  const auto it = index_.find(block);
  if (it == index_.end()) {
    return 0;  // block never closed a window: nothing mined for it
  }
  const Row& row = rows_[it->second];
  const Association* a = row_slice(it->second);
  std::size_t appended = 0;
  for (std::uint32_t i = 0; i < row.size && appended < limits.max_candidates;
       ++i) {
    if (a[i].support < limits.min_support) {
      break;  // sorted descending: everything after is weaker
    }
    const double p = static_cast<double>(a[i].support) /
                     static_cast<double>(row.occurrences);
    if (p < limits.min_probability) {
      break;  // same denominator: probability order matches support order
    }
    const std::uint32_t depth =
        std::min(std::max(a[i].min_gap, 1u), limits.max_depth);
    // Parentless-candidate convention (see costben/candidate.hpp): 1.0 at
    // depth 1, own probability deeper.
    const double parent = depth == 1 ? 1.0 : p;
    out.push_back(costben::PredictedBlock{a[i].block, p, parent, depth});
    ++appended;
  }
  return appended;
}

std::size_t AssociationMiner::actual_memory_bytes() const noexcept {
  return rows_.capacity() * sizeof(Row) +
         arena_.capacity() * sizeof(Association) +
         index_.capacity() * (sizeof(std::pair<trace::BlockId, std::uint32_t>) +
                              sizeof(std::uint8_t)) +
         lru_.capacity() * 2 * sizeof(std::uint32_t) +
         free_.capacity() * sizeof(std::uint32_t) +
         window_.capacity() * sizeof(trace::BlockId);
}

void AssociationMiner::serialize(std::ostream& out) const {
  out.write(kMagic.data(), kMagic.size());
  util::write_u16(out, kStreamVersion);
  util::write_u64(out, index_.size());
  // LRU-to-MRU so the reader's push_front replays the recency order.
  for (std::uint32_t slot = lru_.back(); slot != util::LruList::npos;
       slot = lru_.prev(slot)) {
    const Row& row = rows_[slot];
    util::write_u64(out, row.source);
    util::write_u32(out, row.occurrences);
    util::write_u32(out, row.size);
    const Association* a = row_slice(slot);
    for (std::uint32_t i = 0; i < row.size; ++i) {
      util::write_u64(out, a[i].block);
      util::write_u32(out, a[i].support);
      util::write_u32(out, a[i].min_gap);
    }
  }
}

AssociationMiner AssociationMiner::deserialize(std::istream& in,
                                               AssocConfig config) {
  std::array<char, 4> magic{};
  in.read(magic.data(), magic.size());
  if (!in || magic != kMagic) {
    corrupt("bad magic");
  }
  if (util::read_u16(in) != kStreamVersion) {
    corrupt("unsupported version");
  }
  AssociationMiner miner(config);
  const std::uint64_t row_count = util::read_u64(in);
  if (!in || row_count > config.max_rows) {
    corrupt("row count exceeds the configured bound");
  }
  for (std::uint64_t r = 0; r < row_count; ++r) {
    const trace::BlockId source = util::read_u64(in);
    const std::uint32_t occurrences = util::read_u32(in);
    const std::uint32_t size = util::read_u32(in);
    if (!in) {
      corrupt("truncated row header");
    }
    if (occurrences == 0) {
      corrupt("row with no closed windows");
    }
    if (size > config.row_width) {
      corrupt("row width exceeds the configured bound");
    }
    const std::uint32_t slot = miner.ensure_row(source);
    if (miner.rows_[slot].size != 0 || miner.index_.size() != r + 1) {
      corrupt("duplicate source row");
    }
    Row& row = miner.rows_[slot];
    row.occurrences = occurrences;
    Association* a = miner.row_slice(slot);
    for (std::uint32_t i = 0; i < size; ++i) {
      const trace::BlockId partner = util::read_u64(in);
      const std::uint32_t support = util::read_u32(in);
      const std::uint32_t gap = util::read_u32(in);
      if (!in) {
        corrupt("truncated association");
      }
      if (support == 0 || support > occurrences) {
        corrupt("association support outside (0, occurrences]");
      }
      if (gap < 1 || gap > config.lookahead) {
        corrupt("association gap outside the lookahead");
      }
      if (i > 0 && a[i - 1].support < support) {
        corrupt("associations not in descending-support order");
      }
      a[i] = Association{partner, support, gap};
    }
    row.size = size;
    miner.associations_ += size;
  }
  PFP_AUDIT_SWEEP(miner);
  return miner;
}

void AssociationMiner::audit() const {
#if PFP_AUDIT_ENABLED
  PFP_AUDIT("AssociationMiner", rows_.size() <= config_.max_rows,
            "row storage within the configured bound");
  PFP_AUDIT("AssociationMiner", index_.size() == lru_.size(),
            "every indexed row is LRU-linked");
  PFP_AUDIT("AssociationMiner", index_.size() + free_.size() == rows_.size(),
            "slots are either live or on the free list");
  std::size_t live_associations = 0;
  for (const auto& [source, slot] : index_) {
    PFP_AUDIT("AssociationMiner", slot < rows_.size(),
              "index points at a slot");
    PFP_AUDIT("AssociationMiner", rows_[slot].source == source,
              "row source matches its index key");
    PFP_AUDIT("AssociationMiner", lru_.contains(slot),
              "live row is LRU-linked");
    const Row& row = rows_[slot];
    PFP_AUDIT("AssociationMiner", row.occurrences >= 1,
              "live row has closed a window");
    PFP_AUDIT("AssociationMiner", row.size <= config_.row_width,
              "row within the configured width");
    const Association* a = row_slice(slot);
    for (std::uint32_t i = 0; i < row.size; ++i) {
      PFP_AUDIT("AssociationMiner", a[i].support >= 1,
                "live association has support");
      PFP_AUDIT("AssociationMiner", a[i].support <= row.occurrences,
                "support bounded by closed windows");
      PFP_AUDIT("AssociationMiner",
                a[i].min_gap >= 1 && a[i].min_gap <= config_.lookahead,
                "gap within the lookahead");
      PFP_AUDIT("AssociationMiner", a[i].block != row.source,
                "no self-association");
      PFP_AUDIT("AssociationMiner", i == 0 || a[i - 1].support >= a[i].support,
                "row sorted by descending support");
    }
    live_associations += row.size;
  }
  PFP_AUDIT("AssociationMiner", live_associations == associations_,
            "association counter matches live rows");
  for (const std::uint32_t slot : free_) {
    PFP_AUDIT("AssociationMiner", slot < rows_.size(),
              "free slot is allocated");
    PFP_AUDIT("AssociationMiner", !lru_.contains(slot),
              "free slot is unlinked");
  }
#endif
}

}  // namespace pfp::core::assoc
