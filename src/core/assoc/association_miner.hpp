// MITHRIL-style sporadic-association miner (arXiv:1705.07400, adapted).
//
// Where the LZ tree and the delta-Markov chain need immediate repetition
// to learn, MITHRIL mines *temporal co-occurrence*: block X tends to be
// requested shortly after block A, even when other traffic interleaves.
// The miner keeps a circular window of recent accesses; once an access
// falls `lookahead` positions behind the newest one its forward window is
// complete, and it is paired with every distinct later block inside that
// span.  Each source block owns a bounded, support-sorted association row
// (support = windows in which the pair co-occurred; the minimum observed
// gap approximates how soon the partner is needed).  Rows are LRU-bounded
// so memory stays constant, and each row ages by halving when its source
// has closed `age_threshold` windows — old associations fade unless the
// trace keeps re-minting them.
//
// Prediction for the block being accessed reads its row: probability is
// support / windows-closed (an empirical conditional frequency), depth is
// the clamped minimum gap.  Associations have no chain parent, so
// parent_probability follows the parentless convention documented in
// costben/candidate.hpp: 1.0 at depth 1, the candidate's own probability
// deeper — which reduces Eq. 1 to p_b * (dT_pf(d) - dT_pf(d-1)) and
// Eq. 14's overhead to zero.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "core/costben/candidate.hpp"
#include "trace/record.hpp"
#include "util/flat_map.hpp"
#include "util/lru_list.hpp"

namespace pfp::core::assoc {

struct AssocConfig {
  /// Circular mining window over recent accesses; must exceed lookahead.
  std::uint32_t window = 256;
  /// Forward pairing distance: an access is associated with the distinct
  /// blocks seen in the next `lookahead` positions.
  std::uint32_t lookahead = 8;
  /// Associations kept per source block (weakest displaced when full).
  std::uint32_t row_width = 6;
  /// Bound on tracked source blocks (rows); LRU-recycled when full.
  std::uint32_t max_rows = 8192;
  /// Windows a source must close before its row ages by halving.
  std::uint32_t age_threshold = 4096;
};

/// Cutoffs for predict_into, mirroring tree::EnumeratorLimits.
struct AssocPredictLimits {
  std::uint32_t max_depth = 8;
  double min_probability = 0.002;
  std::size_t max_candidates = 48;
  /// Windows a pair must co-occur in before it is worth predicting
  /// (MITHRIL's sporadic-noise filter).
  std::uint32_t min_support = 2;
};

class AssociationMiner {
 public:
  /// One mined association of a source row.
  struct Association {
    trace::BlockId block = 0;   ///< the partner block
    std::uint32_t support = 0;  ///< windows the pair co-occurred in
    std::uint32_t min_gap = 1;  ///< smallest observed forward distance
  };

  AssociationMiner() : AssociationMiner(AssocConfig{}) {}
  explicit AssociationMiner(AssocConfig config);

  [[nodiscard]] const AssocConfig& config() const noexcept { return config_; }

  /// Feeds one access: appends it to the window and mines the access
  /// whose forward window just completed.
  void observe(trace::BlockId block);

  /// Appends up to `limits.max_candidates` predictions for `block`
  /// (strongest association first); returns the number appended.
  std::size_t predict_into(trace::BlockId block,
                           const AssocPredictLimits& limits,
                           std::vector<costben::PredictedBlock>& out) const;

  /// Number of live source rows.
  [[nodiscard]] std::size_t row_count() const noexcept {
    return index_.size();
  }
  /// Number of live associations across all rows.
  [[nodiscard]] std::size_t association_count() const noexcept {
    return associations_;
  }

  /// What the miner's containers really hold (capacity, not size) —
  /// comparable across policies like NodePool::actual_memory_bytes().
  [[nodiscard]] std::size_t actual_memory_bytes() const noexcept;

  /// "PFAS" v1: rows in LRU-to-MRU order so a round trip preserves the
  /// eviction order exactly.  The circular window is warm-up state and
  /// intentionally not persisted.
  void serialize(std::ostream& out) const;
  /// Rebuilds a miner from `in` under `config`'s bounds; throws
  /// std::runtime_error ("association stream: ...") on malformed input
  /// or rows exceeding the configured bounds.
  static AssociationMiner deserialize(std::istream& in, AssocConfig config);

  /// SIM_AUDIT sweep: index/rows/LRU/free-list consistency, per-row
  /// support ordering, gap bounds and support <= occurrence invariants
  /// (no-op unless PFP_AUDIT_ENABLED).
  void audit() const;

 private:
  struct Row {
    trace::BlockId source = 0;     ///< the block keying this row
    std::uint32_t occurrences = 0; ///< forward windows closed for it
    std::uint32_t size = 0;        ///< live entries in the arena slice
  };

  [[nodiscard]] Association* row_slice(std::uint32_t slot) noexcept {
    return arena_.data() + static_cast<std::size_t>(slot) * config_.row_width;
  }
  [[nodiscard]] const Association* row_slice(std::uint32_t slot)
      const noexcept {
    return arena_.data() + static_cast<std::size_t>(slot) * config_.row_width;
  }

  /// Row slot for `source`, allocating (and evicting the LRU row if the
  /// table is full) when absent.  Touches the LRU either way.
  std::uint32_t ensure_row(trace::BlockId source);
  /// Mines the completed forward window of the access at serial `u`.
  void close_window(std::uint64_t u);
  void record_pair(std::uint32_t slot, trace::BlockId partner,
                   std::uint32_t gap);
  /// Halves the row's occurrence counter and every support (aging);
  /// zero-support associations drop out.
  void age_row(std::uint32_t slot);

  AssocConfig config_;
  util::FlatMap<trace::BlockId, std::uint32_t> index_;  ///< source -> slot
  std::vector<Row> rows_;
  std::vector<Association> arena_;  ///< rows_[i] owns slice i*row_width
  util::LruList lru_;               ///< over row slots, front = MRU
  std::vector<std::uint32_t> free_;  ///< recycled row slots
  std::size_t associations_ = 0;

  std::vector<trace::BlockId> window_;  ///< circular, indexed by serial
  std::uint64_t serial_ = 0;            ///< accesses observed so far
};

}  // namespace pfp::core::assoc
