// Pangloss-style delta-Markov predictor (arXiv:1906.00877, adapted).
//
// The model learns the first-order chain over *address deltas*: after
// seeing consecutive blocks a, b, c it records the transition
// (b - a) -> (c - b).  Deltas generalize across absolute addresses, so a
// strided or looping workload collapses onto a handful of rows where a
// per-block table would sprawl.  Each context delta owns one compressed
// row: a fixed-width, count-sorted list of successor deltas (the paper's
// "compressed Markov chain" rows), and the whole table is LRU-bounded so
// memory stays constant no matter how wild the trace is.
//
// Aging: when a row's hottest count saturates, every count in the row is
// halved (zeros drop out).  Stale transitions therefore decay instead of
// pinning the row forever — the bounded-row analogue of Pangloss's LRU
// position-as-probability trick.
//
// Prediction walks the chain greedily from the last observed delta:
// depth-1 candidates are the current row's successors; deeper candidates
// extend each depth-1 candidate along the most probable path, multiplying
// step probabilities exactly like the LZ tree multiplies edge
// probabilities (Eq. 1's p_b), with the previous chain element's
// probability as p_x.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "core/costben/candidate.hpp"
#include "trace/record.hpp"
#include "util/flat_map.hpp"
#include "util/lru_list.hpp"

namespace pfp::core::markov {

struct MarkovConfig {
  /// Bound on tracked context deltas (rows); the least recently updated
  /// row is recycled when the table is full.
  std::uint32_t max_contexts = 4096;
  /// Successor deltas kept per row; the weakest is displaced when a new
  /// successor arrives at a full row.
  std::uint32_t row_width = 8;
  /// Count saturation threshold: when a successor's count reaches this,
  /// the whole row's counts are halved (aging).
  std::uint32_t max_count = 255;
};

/// Cutoffs for predict_into, mirroring tree::EnumeratorLimits.
struct MarkovPredictLimits {
  std::uint32_t max_depth = 8;
  double min_probability = 0.002;
  std::size_t max_candidates = 48;
};

class DeltaMarkov {
 public:
  /// One successor-delta entry of a row.
  struct Transition {
    std::int64_t delta = 0;
    std::uint32_t count = 0;
  };

  DeltaMarkov() : DeltaMarkov(MarkovConfig{}) {}
  explicit DeltaMarkov(MarkovConfig config);

  [[nodiscard]] const MarkovConfig& config() const noexcept { return config_; }

  /// Feeds one access; updates the chain with the (previous delta ->
  /// new delta) transition once two deltas exist.
  void observe(trace::BlockId block);

  /// Appends up to `limits.max_candidates` predictions (most probable
  /// first, deduplicated by block) for the current position; returns the
  /// number appended.  Candidates carry chain-product probabilities and
  /// the previous chain element's probability as parent_probability.
  std::size_t predict_into(const MarkovPredictLimits& limits,
                           std::vector<costben::PredictedBlock>& out) const;

  /// Number of live context rows.
  [[nodiscard]] std::size_t row_count() const noexcept {
    return index_.size();
  }
  /// Number of live transitions across all rows.
  [[nodiscard]] std::size_t transition_count() const noexcept {
    return transitions_;
  }

  /// What the model's containers really hold (capacity, not size) —
  /// comparable across policies like NodePool::actual_memory_bytes().
  [[nodiscard]] std::size_t actual_memory_bytes() const noexcept;

  /// "PFMK" v1: rows in LRU-to-MRU order so a round trip preserves the
  /// eviction order exactly.  The transient parse position (previous
  /// block / delta) is warm-up state and intentionally not persisted.
  void serialize(std::ostream& out) const;
  /// Rebuilds a model from `in` under `config`'s bounds; throws
  /// std::runtime_error ("delta-markov stream: ...") on malformed input
  /// or rows exceeding the configured bounds.
  static DeltaMarkov deserialize(std::istream& in, MarkovConfig config);

  /// SIM_AUDIT sweep: index/rows/LRU/free-list consistency, per-row
  /// count ordering and totals (no-op unless PFP_AUDIT_ENABLED).
  void audit() const;

 private:
  struct Row {
    std::int64_t context = 0;   ///< the delta keying this row
    std::uint64_t total = 0;    ///< sum of live transition counts
    std::uint32_t size = 0;     ///< live entries in the arena slice
  };

  [[nodiscard]] Transition* row_slice(std::uint32_t slot) noexcept {
    return arena_.data() + static_cast<std::size_t>(slot) * config_.row_width;
  }
  [[nodiscard]] const Transition* row_slice(std::uint32_t slot) const noexcept {
    return arena_.data() + static_cast<std::size_t>(slot) * config_.row_width;
  }

  /// Row slot for `context`, allocating (and evicting the LRU row if the
  /// table is full) when absent.  Touches the LRU either way.
  std::uint32_t ensure_row(std::int64_t context);
  void record(std::int64_t context, std::int64_t next_delta);
  /// Halves every count in the row, dropping zeros (aging).
  void decay_row(std::uint32_t slot);

  MarkovConfig config_;
  util::FlatMap<std::int64_t, std::uint32_t> index_;  ///< context -> slot
  std::vector<Row> rows_;
  std::vector<Transition> arena_;  ///< rows_[i] owns slice i*row_width
  util::LruList lru_;              ///< over row slots, front = MRU
  std::vector<std::uint32_t> free_;  ///< recycled row slots
  std::size_t transitions_ = 0;

  // Parse position: the last observed block and delta.
  trace::BlockId prev_block_ = 0;
  std::int64_t prev_delta_ = 0;
  bool has_prev_block_ = false;
  bool has_prev_delta_ = false;

  // predict_into staging, reused across calls so prediction allocates
  // nothing at steady state.  Logically const: prediction never mutates
  // the chain itself.
  mutable std::vector<costben::PredictedBlock> scratch_;
  mutable util::FlatMap<std::uint64_t, char> seen_;  ///< dedup by block
};

}  // namespace pfp::core::markov
