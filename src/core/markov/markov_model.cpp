#include "core/markov/markov_model.hpp"

#include <algorithm>
#include <array>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "util/assert.hpp"
#include "util/audit.hpp"
#include "util/binary_io.hpp"

namespace pfp::core::markov {

namespace {

constexpr std::array<char, 4> kMagic = {'P', 'F', 'M', 'K'};
constexpr std::uint16_t kStreamVersion = 1;

[[noreturn]] void corrupt(const char* what) {
  throw std::runtime_error(std::string("delta-markov stream: ") + what);
}

}  // namespace

DeltaMarkov::DeltaMarkov(MarkovConfig config)
    : config_(config), lru_(config.max_contexts) {
  PFP_REQUIRE(config_.max_contexts >= 1);
  PFP_REQUIRE(config_.row_width >= 1);
  // max_count == 1 would re-decay a fresh count forever.
  PFP_REQUIRE(config_.max_count >= 2);
  index_.reserve(config_.max_contexts);
}

void DeltaMarkov::observe(trace::BlockId block) {
  if (!has_prev_block_) {
    prev_block_ = block;
    has_prev_block_ = true;
    return;
  }
  const std::int64_t delta = static_cast<std::int64_t>(block) -
                             static_cast<std::int64_t>(prev_block_);
  if (has_prev_delta_) {
    record(prev_delta_, delta);
  }
  prev_delta_ = delta;
  has_prev_delta_ = true;
  prev_block_ = block;
  PFP_AUDIT_SWEEP(*this);
}

std::uint32_t DeltaMarkov::ensure_row(std::int64_t context) {
  const auto it = index_.find(context);
  if (it != index_.end()) {
    lru_.touch(it->second);
    return it->second;
  }
  std::uint32_t slot = 0;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
  } else if (rows_.size() < config_.max_contexts) {
    slot = static_cast<std::uint32_t>(rows_.size());
    rows_.push_back(Row{});
    arena_.resize(rows_.size() * config_.row_width);
  } else {
    // Table full: recycle the least recently updated row.
    slot = lru_.pop_back();
    Row& victim = rows_[slot];
    index_.erase(victim.context);
    transitions_ -= victim.size;
  }
  rows_[slot] = Row{context, 0, 0};
  index_.emplace(context, slot);
  lru_.push_front(slot);
  return slot;
}

void DeltaMarkov::record(std::int64_t context, std::int64_t next_delta) {
  const std::uint32_t slot = ensure_row(context);
  Row& row = rows_[slot];
  Transition* t = row_slice(slot);

  std::uint32_t i = 0;
  while (i < row.size && t[i].delta != next_delta) {
    ++i;
  }
  if (i < row.size) {
    ++t[i].count;
    ++row.total;
    // Bubble toward the front to keep the descending-count order.
    while (i > 0 && t[i - 1].count < t[i].count) {
      std::swap(t[i - 1], t[i]);
      --i;
    }
    if (t[i].count >= config_.max_count) {
      decay_row(slot);
    }
  } else if (row.size < config_.row_width) {
    t[row.size] = Transition{next_delta, 1};
    ++row.size;
    ++row.total;
    ++transitions_;
  } else {
    // Full row: the weakest successor (last, by the sorted invariant)
    // makes room for the newcomer.
    row.total -= t[row.size - 1].count;
    t[row.size - 1] = Transition{next_delta, 1};
    ++row.total;
  }
}

void DeltaMarkov::decay_row(std::uint32_t slot) {
  Row& row = rows_[slot];
  Transition* t = row_slice(slot);
  std::uint32_t kept = 0;
  std::uint64_t total = 0;
  for (std::uint32_t i = 0; i < row.size; ++i) {
    const std::uint32_t halved = t[i].count / 2;
    if (halved == 0) {
      continue;  // stale successor fades out entirely
    }
    t[kept] = Transition{t[i].delta, halved};
    total += halved;
    ++kept;
  }
  transitions_ -= row.size - kept;
  row.size = kept;
  row.total = total;
}

std::size_t DeltaMarkov::predict_into(
    const MarkovPredictLimits& limits,
    std::vector<costben::PredictedBlock>& out) const {
  if (!has_prev_delta_ || limits.max_candidates == 0) {
    return 0;
  }
  const auto it = index_.find(prev_delta_);
  if (it == index_.end()) {
    return 0;  // never seen this context: nothing to predict
  }
  scratch_.clear();
  const Row& row = rows_[it->second];
  const Transition* t = row_slice(it->second);
  for (std::uint32_t i = 0; i < row.size; ++i) {
    const double p1 =
        static_cast<double>(t[i].count) / static_cast<double>(row.total);
    if (p1 < limits.min_probability) {
      break;  // sorted descending: everything after is weaker
    }
    const std::int64_t first =
        static_cast<std::int64_t>(prev_block_) + t[i].delta;
    if (first < 0) {
      continue;  // delta walks off the front of the address space
    }
    scratch_.push_back(costben::PredictedBlock{
        static_cast<std::uint64_t>(first), p1, 1.0, 1});

    // Greedy chain: extend along each next context's most probable
    // successor, multiplying step probabilities (Eq. 1's path product).
    std::int64_t base = first;
    std::int64_t context = t[i].delta;
    double p_prev = p1;
    for (std::uint32_t depth = 2; depth <= limits.max_depth; ++depth) {
      const auto jt = index_.find(context);
      if (jt == index_.end() || rows_[jt->second].size == 0) {
        break;
      }
      const Row& next_row = rows_[jt->second];
      const Transition& best = row_slice(jt->second)[0];
      const double step = static_cast<double>(best.count) /
                          static_cast<double>(next_row.total);
      const double p = p_prev * step;
      if (p < limits.min_probability) {
        break;
      }
      base += best.delta;
      if (base < 0) {
        break;
      }
      scratch_.push_back(costben::PredictedBlock{
          static_cast<std::uint64_t>(base), p, p_prev, depth});
      p_prev = p;
      context = best.delta;
    }
  }

  // Most probable first; ties broken by block then depth so the output
  // is a pure function of the model state.
  std::sort(scratch_.begin(), scratch_.end(),
            [](const costben::PredictedBlock& a,
               const costben::PredictedBlock& b) {
              if (a.probability != b.probability) {
                return a.probability > b.probability;
              }
              if (a.block != b.block) {
                return a.block < b.block;
              }
              return a.depth < b.depth;
            });
  seen_.clear();
  std::size_t appended = 0;
  for (const costben::PredictedBlock& c : scratch_) {
    if (appended >= limits.max_candidates) {
      break;
    }
    if (!seen_.emplace(c.block, '\0').second) {
      continue;  // chains can converge: keep the most probable route
    }
    out.push_back(c);
    ++appended;
  }
  return appended;
}

std::size_t DeltaMarkov::actual_memory_bytes() const noexcept {
  return rows_.capacity() * sizeof(Row) +
         arena_.capacity() * sizeof(Transition) +
         index_.capacity() * (sizeof(std::pair<std::int64_t, std::uint32_t>) +
                              sizeof(std::uint8_t)) +
         lru_.capacity() * 2 * sizeof(std::uint32_t) +
         free_.capacity() * sizeof(std::uint32_t) +
         scratch_.capacity() * sizeof(costben::PredictedBlock) +
         seen_.capacity() * (sizeof(std::pair<std::uint64_t, char>) +
                             sizeof(std::uint8_t));
}

void DeltaMarkov::serialize(std::ostream& out) const {
  out.write(kMagic.data(), kMagic.size());
  util::write_u16(out, kStreamVersion);
  util::write_u64(out, index_.size());
  // LRU-to-MRU so the reader's push_front replays the recency order.
  for (std::uint32_t slot = lru_.back(); slot != util::LruList::npos;
       slot = lru_.prev(slot)) {
    const Row& row = rows_[slot];
    util::write_i64(out, row.context);
    util::write_u32(out, row.size);
    const Transition* t = row_slice(slot);
    for (std::uint32_t i = 0; i < row.size; ++i) {
      util::write_i64(out, t[i].delta);
      util::write_u32(out, t[i].count);
    }
  }
}

DeltaMarkov DeltaMarkov::deserialize(std::istream& in, MarkovConfig config) {
  std::array<char, 4> magic{};
  in.read(magic.data(), magic.size());
  if (!in || magic != kMagic) {
    corrupt("bad magic");
  }
  if (util::read_u16(in) != kStreamVersion) {
    corrupt("unsupported version");
  }
  DeltaMarkov model(config);
  const std::uint64_t row_count = util::read_u64(in);
  if (!in || row_count > config.max_contexts) {
    corrupt("row count exceeds the configured context bound");
  }
  for (std::uint64_t r = 0; r < row_count; ++r) {
    const std::int64_t context = util::read_i64(in);
    const std::uint32_t size = util::read_u32(in);
    if (!in) {
      corrupt("truncated row header");
    }
    if (size > config.row_width) {
      corrupt("row width exceeds the configured bound");
    }
    const std::uint32_t slot = model.ensure_row(context);
    if (model.rows_[slot].size != 0 || model.index_.size() != r + 1) {
      corrupt("duplicate context row");
    }
    Row& row = model.rows_[slot];
    Transition* t = model.row_slice(slot);
    for (std::uint32_t i = 0; i < size; ++i) {
      const std::int64_t delta = util::read_i64(in);
      const std::uint32_t count = util::read_u32(in);
      if (!in) {
        corrupt("truncated transition");
      }
      if (count == 0) {
        corrupt("zero transition count");
      }
      if (i > 0 && t[i - 1].count < count) {
        corrupt("transitions not in descending-count order");
      }
      t[i] = Transition{delta, count};
      row.total += count;
    }
    row.size = size;
    model.transitions_ += size;
  }
  PFP_AUDIT_SWEEP(model);
  return model;
}

void DeltaMarkov::audit() const {
#if PFP_AUDIT_ENABLED
  PFP_AUDIT("DeltaMarkov", rows_.size() <= config_.max_contexts,
            "row storage within the configured bound");
  PFP_AUDIT("DeltaMarkov", index_.size() == lru_.size(),
            "every indexed row is LRU-linked");
  PFP_AUDIT("DeltaMarkov", index_.size() + free_.size() == rows_.size(),
            "slots are either live or on the free list");
  std::size_t live_transitions = 0;
  for (const auto& [context, slot] : index_) {
    PFP_AUDIT("DeltaMarkov", slot < rows_.size(), "index points at a slot");
    PFP_AUDIT("DeltaMarkov", rows_[slot].context == context,
              "row context matches its index key");
    PFP_AUDIT("DeltaMarkov", lru_.contains(slot), "live row is LRU-linked");
    const Row& row = rows_[slot];
    PFP_AUDIT("DeltaMarkov", row.size <= config_.row_width,
              "row within the configured width");
    std::uint64_t total = 0;
    const Transition* t = row_slice(slot);
    for (std::uint32_t i = 0; i < row.size; ++i) {
      PFP_AUDIT("DeltaMarkov", t[i].count >= 1, "live transition has weight");
      PFP_AUDIT("DeltaMarkov", i == 0 || t[i - 1].count >= t[i].count,
                "row sorted by descending count");
      total += t[i].count;
    }
    PFP_AUDIT("DeltaMarkov", total == row.total,
              "row total equals the sum of its counts");
    live_transitions += row.size;
  }
  PFP_AUDIT("DeltaMarkov", live_transitions == transitions_,
            "transition counter matches live rows");
  for (const std::uint32_t slot : free_) {
    PFP_AUDIT("DeltaMarkov", slot < rows_.size(), "free slot is allocated");
    PFP_AUDIT("DeltaMarkov", !lru_.contains(slot), "free slot is unlinked");
  }
#endif
}

}  // namespace pfp::core::markov
