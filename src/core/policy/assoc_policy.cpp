#include "core/policy/assoc_policy.hpp"

#include <span>

#include "util/phase.hpp"

namespace pfp::core::policy {

AssocCostBenefit::AssocCostBenefit() : AssocCostBenefit(AssocPolicyConfig{}) {}

AssocCostBenefit::AssocCostBenefit(AssocPolicyConfig config)
    : config_(config), miner_(config.miner) {}

void AssocCostBenefit::on_access(BlockId block, AccessOutcome outcome,
                                 Context& ctx) {
  (void)outcome;
  miner_.observe(block);
  last_block_ = block;
  has_last_block_ = true;
  ctx.metrics.tree_nodes = miner_.row_count();
  ctx.metrics.tree_bytes = miner_.actual_memory_bytes();
  util::phase_mark(ctx.phases, util::EnginePhase::kPredictorUpdate);

  candidates_.clear();
  miner_.predict_into(block, config_.limits, candidates_);
  util::phase_mark(ctx.phases, util::EnginePhase::kEnumeration);

  CostBenefitKnobs knobs;
  knobs.max_depth = config_.limits.max_depth;
  knobs.max_prefetches_per_period = config_.max_prefetches_per_period;
  knobs.refetch = config_.refetch;
  // An association surfaces only while its source is the current access;
  // Eq. 1's defer-to-depth-(d-1) alternative never materializes for it.
  knobs.single_offer = true;
  const std::uint32_t issued = run_cost_benefit_loop(
      std::span<const costben::PredictedBlock>(candidates_), knobs, ctx,
      order_, dtpf_, [this](Context& c) { reclaim_by_rule(config_.reclaim, c); });
  ctx.estimators.end_period(issued);
}

void AssocCostBenefit::reclaim_for_demand(Context& ctx) {
  // Section 6.2: the same cost equations pick the replacement victim for
  // demand fetches (unless an ablation overrides the rule).
  reclaim_by_rule(config_.reclaim, ctx);
}

std::uint32_t AssocCostBenefit::predictor_state_tag() const {
  return kPredictorAssoc;
}

void AssocCostBenefit::save_predictor_state(std::ostream& out) const {
  miner_.serialize(out);
}

bool AssocCostBenefit::load_predictor_state(std::istream& in) {
  miner_ = assoc::AssociationMiner::deserialize(in, config_.miner);
  return true;
}

std::size_t AssocCostBenefit::predictions_into(
    std::vector<costben::PredictedBlock>& out) const {
  if (!has_last_block_) {
    return 0;
  }
  return miner_.predict_into(last_block_, config_.limits, out);
}

}  // namespace pfp::core::policy
