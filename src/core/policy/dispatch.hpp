// Static dispatch over the factory's kind -> concrete-class mapping.
//
// The factory constructs exactly one dynamic type per PolicyKind; callers
// that want devirtualized per-policy loops (the engine's batch path) need
// that mapping at compile time.  Keeping it here, next to the factory,
// means adding a policy kind touches one place instead of every driver.
#pragma once

#include <cstdio>

#include "core/policy/factory.hpp"
#include "core/policy/next_limit.hpp"
#include "core/policy/no_prefetch.hpp"
#include "core/policy/perfect_selector.hpp"
#include "core/policy/tree_children.hpp"
#include "core/policy/tree_lvc.hpp"
#include "core/policy/tree_next_limit.hpp"
#include "core/policy/tree_threshold.hpp"
#include "util/assert.hpp"

namespace pfp::core::policy {

/// Value-less type tag handed to dispatch_kind visitors.
template <typename T>
struct KindTag {
  using type = T;
};

/// The vtable fallback silently forfeits devirtualization, so reaching it
/// means a PolicyKind was added without a dispatch_kind case — a bug, not
/// a mode.  Debug builds abort; Release builds log once per process and
/// keep running on the (correct, just slower) virtual path.
inline void note_vtable_fallback(PolicyKind kind) {
  PFP_DASSERT(!"dispatch_kind: PolicyKind missing from the static dispatch "
               "table, falling back to the vtable");
  static const bool warned_once = [kind] {
    std::fprintf(stderr,
                 "pfp: warning: dispatch_kind has no case for PolicyKind %d "
                 "('%s'); using the vtable fallback (devirtualized loops "
                 "disabled for it)\n",
                 static_cast<int>(kind), kind_name(kind).c_str());
    return true;
  }();
  (void)warned_once;
}

/// Invokes f with KindTag<Concrete> for the dynamic type make_prefetcher
/// builds for `kind` (kTree maps to TreeCostBenefit even though
/// subclasses exist — the factory guarantees the exact type).  Unknown
/// kinds fall back to KindTag<Prefetcher>, which visitors should treat as
/// "use the vtable"; see note_vtable_fallback for how loudly.
template <typename F>
decltype(auto) dispatch_kind(PolicyKind kind, F&& f) {
  switch (kind) {
    case PolicyKind::kNoPrefetch:
      return f(KindTag<NoPrefetch>{});
    case PolicyKind::kNextLimit:
      return f(KindTag<NextLimit>{});
    case PolicyKind::kTree:
      return f(KindTag<TreeCostBenefit>{});
    case PolicyKind::kTreeNextLimit:
      return f(KindTag<TreeNextLimit>{});
    case PolicyKind::kTreeLvc:
      return f(KindTag<TreeLvc>{});
    case PolicyKind::kPerfectSelector:
      return f(KindTag<PerfectSelector>{});
    case PolicyKind::kTreeThreshold:
      return f(KindTag<TreeThreshold>{});
    case PolicyKind::kTreeChildren:
      return f(KindTag<TreeChildren>{});
    case PolicyKind::kProbGraph:
      return f(KindTag<ProbGraph>{});
    case PolicyKind::kTreeAdaptive:
      return f(KindTag<TreeAdaptive>{});
    case PolicyKind::kMarkov:
      return f(KindTag<MarkovCostBenefit>{});
    case PolicyKind::kAssoc:
      return f(KindTag<AssocCostBenefit>{});
  }
  note_vtable_fallback(kind);
  return f(KindTag<Prefetcher>{});  // unknown kind: vtable fallback
}

}  // namespace pfp::core::policy
