#include "core/policy/no_prefetch.hpp"

#include "core/policy/eviction.hpp"

namespace pfp::core::policy {

void NoPrefetch::on_access(BlockId block, AccessOutcome outcome,
                           Context& ctx) {
  (void)block;
  (void)outcome;
  ctx.estimators.end_period(0);
}

void NoPrefetch::reclaim_for_demand(Context& ctx) {
  // The prefetch cache is always empty here, so this is plain LRU.
  evict_demand_first(ctx);
}

}  // namespace pfp::core::policy
