// Baseline: no prefetching (Section 9's "no-prefetch").
//
// The combined cache degenerates to a plain LRU demand cache; a property
// test checks that its miss rate matches cache::LruCache exactly.
#pragma once

#include "core/policy/prefetcher.hpp"

namespace pfp::core::policy {

class NoPrefetch final : public Prefetcher {
 public:
  [[nodiscard]] std::string name() const override { return "no-prefetch"; }
  void on_access(BlockId block, AccessOutcome outcome,
                 Context& ctx) override;
  void reclaim_for_demand(Context& ctx) override;
};

}  // namespace pfp::core::policy
