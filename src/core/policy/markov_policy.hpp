// markov: Pangloss-style delta-Markov prediction under the paper's
// cost-benefit controller.
//
// Swaps the LZ tree out of the "tree" policy's seat and plugs the
// compressed delta-Markov chain (core/markov) in: every access updates
// the chain, the chain enumerates candidate blocks with chain-product
// probabilities, and the shared run_cost_benefit_loop prices them with
// Eq. 1 / Eq. 11 / Eq. 14 exactly as it prices tree candidates.  The
// predictor zoo exists to show the controller is predictor-agnostic —
// only candidate generation differs between this policy and "tree".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/markov/markov_model.hpp"
#include "core/policy/cost_benefit.hpp"
#include "core/policy/prefetcher.hpp"

namespace pfp::core::policy {

struct MarkovPolicyConfig {
  markov::MarkovConfig model;
  markov::MarkovPredictLimits limits;
  /// Hard cap on prefetches per access period; a safety net, normally the
  /// cost-benefit inequality stops the loop first.
  std::uint32_t max_prefetches_per_period = 16;
  RefetchDistanceRule refetch = RefetchDistanceRule::kHorizon;
  ReclaimRule reclaim = ReclaimRule::kCostBased;
};

class MarkovCostBenefit final : public Prefetcher {
 public:
  MarkovCostBenefit();  // default config
  explicit MarkovCostBenefit(MarkovPolicyConfig config);

  [[nodiscard]] std::string name() const override { return "markov"; }
  void on_access(BlockId block, AccessOutcome outcome,
                 Context& ctx) override;
  void reclaim_for_demand(Context& ctx) override;

  [[nodiscard]] std::uint32_t predictor_state_tag() const override;
  void save_predictor_state(std::ostream& out) const override;
  bool load_predictor_state(std::istream& in) override;
  std::size_t predictions_into(
      std::vector<costben::PredictedBlock>& out) const override;

  [[nodiscard]] const MarkovPolicyConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] const markov::DeltaMarkov& model() const noexcept {
    return model_;
  }

 private:
  MarkovPolicyConfig config_;
  markov::DeltaMarkov model_;
  /// Reused across access periods so the per-access hot path performs no
  /// heap allocation once the buffers reach steady-state size.
  std::vector<costben::PredictedBlock> candidates_;
  std::vector<std::pair<double, std::size_t>> order_;
  std::vector<double> dtpf_;  ///< per-period Eq. 2 table (BenefitTable)
};

}  // namespace pfp::core::policy
