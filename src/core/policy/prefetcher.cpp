#include "core/policy/prefetcher.hpp"

namespace pfp::core::policy {

void Prefetcher::on_prefetch_consumed(const cache::PrefetchEntry& entry,
                                      Context& ctx) {
  ctx.estimators.prefetch_outcome(/*accessed=*/true, entry.obl);
}

}  // namespace pfp::core::policy
