#include "core/policy/prefetcher.hpp"

#include <cctype>
#include <cstdio>

namespace pfp::core::policy {

std::string predictor_tag_name(std::uint32_t tag) {
  switch (tag) {
    case kPredictorNone:
      return "none";
    case kPredictorTree:
      return "tree";
    case kPredictorMarkov:
      return "markov";
    case kPredictorAssoc:
      return "assoc";
    default:
      break;
  }
  char buf[16];
  std::snprintf(buf, sizeof buf, "0x%08x", tag);
  return buf;
}

void Prefetcher::on_prefetch_consumed(const cache::PrefetchEntry& entry,
                                      Context& ctx) {
  ctx.estimators.prefetch_outcome(/*accessed=*/true, entry.obl);
}

std::uint32_t Prefetcher::predictor_state_tag() const {
  return kPredictorNone;
}

void Prefetcher::save_predictor_state(std::ostream& /*out*/) const {}

bool Prefetcher::load_predictor_state(std::istream& /*in*/) {
  return false;
}

std::size_t Prefetcher::predictions_into(
    std::vector<costben::PredictedBlock>& /*out*/) const {
  return 0;
}

}  // namespace pfp::core::policy
