#include "core/policy/prefetcher.hpp"

#include "core/tree/prefetch_tree.hpp"

namespace pfp::core::policy {

void Prefetcher::on_prefetch_consumed(const cache::PrefetchEntry& entry,
                                      Context& ctx) {
  ctx.estimators.prefetch_outcome(/*accessed=*/true, entry.obl);
}

const tree::PrefetchTree* Prefetcher::predictor_tree() const {
  return nullptr;
}

bool Prefetcher::restore_predictor_tree(tree::PrefetchTree /*tree*/) {
  return false;
}

}  // namespace pfp::core::policy
