// tree-threshold: Curewitz et al.'s parametric scheme (Section 9.7).
//
// After each access, every child of the current tree node whose edge
// probability meets a fixed threshold is prefetched — no cost-benefit
// analysis.  Table 4 sweeps the threshold to show the best value is
// workload-dependent and mischoice costs up to 15 %; Figure 17 shows the
// cost-benefit tree matches the *best* tuned threshold.
#pragma once

#include "core/policy/tree_base.hpp"

namespace pfp::core::policy {

class TreeThreshold final : public TreeInstrumentedPrefetcher {
 public:
  explicit TreeThreshold(double threshold,
                         tree::TreeConfig config = tree::TreeConfig{});

  [[nodiscard]] std::string name() const override;
  void on_access(BlockId block, AccessOutcome outcome,
                 Context& ctx) override;
  void reclaim_for_demand(Context& ctx) override;

  [[nodiscard]] double threshold() const noexcept { return threshold_; }

 private:
  double threshold_;
};

}  // namespace pfp::core::policy
