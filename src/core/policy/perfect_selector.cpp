#include "core/policy/perfect_selector.hpp"

#include "core/costben/equations.hpp"
#include "core/policy/eviction.hpp"

namespace pfp::core::policy {

PerfectSelector::PerfectSelector() : PerfectSelector(tree::TreeConfig{}) {}

PerfectSelector::PerfectSelector(tree::TreeConfig config)
    : TreeInstrumentedPrefetcher(config) {}

void PerfectSelector::on_access(BlockId block, AccessOutcome outcome,
                                Context& ctx) {
  observe_access(block, outcome, ctx);
  std::uint32_t issued = 0;
  if (!ctx.upcoming.empty()) {
    const BlockId next = ctx.upcoming.front().block;
    const tree::NodeId current = tree_.current();
    const tree::NodeId child = tree_.find_child(current, next);
    ++ctx.metrics.candidates_chosen;
    if (child != tree::kNoNode) {
      if (ctx.cache.contains(next)) {
        ++ctx.metrics.candidates_already_cached;
      } else {
        if (ctx.cache.free_buffers() == 0) {
          // The prefetched block is used on the very next access, so any
          // resident buffer is worth less; displace speculative leftovers
          // before touching the demand cache.
          evict_prefetch_first(ctx);
        }
        const double p = tree_.edge_probability(current, child);
        cache::PrefetchEntry entry;
        entry.block = next;
        entry.probability = p;
        entry.depth = 1;
        entry.eject_cost = costben::cost_eject_prefetch(
            ctx.timing, ctx.estimators.s(), p, /*d_b=*/1, /*x=*/0);
        entry.obl = false;
        entry.issued_period = ctx.period;
        entry.completion_ms = ctx.disks.submit(next, ctx.now_ms);
        ctx.cache.admit_prefetch(entry);
        ++ctx.metrics.prefetches_issued;
        ++ctx.metrics.tree_prefetches_issued;
        ctx.metrics.sum_prefetch_probability += p;
        ++issued;
      }
    }
  }
  ctx.estimators.end_period(issued);
}

void PerfectSelector::reclaim_for_demand(Context& ctx) {
  // Protect the lookahead block (it is needed on the very next access):
  // displace the demand LRU block instead whenever possible.
  evict_demand_first(ctx);
}

}  // namespace pfp::core::policy
