// The predictor-agnostic cost-benefit controller loop (Sections 5-7).
//
// Every cost-benefit policy runs the same per-period sequence regardless
// of where its candidates come from:
//   1. price each candidate with Eq. 1 (through the per-period
//      BenefitTable) and order by benefit;
//   2. walk best-first, pricing the cheapest replacement victim
//      (Eq. 11 vs Eq. 13) and Eq. 14's overhead;
//   3. prefetch while  B(b) - T_oh >= C,  stopping at the per-period cap.
//
// This header is that loop as a template over the candidate type: the LZ
// tree feeds it tree::Candidate spans, the delta-Markov and association
// policies feed costben::PredictedBlock spans.  Duck typing (fields
// block / probability / parent_probability / depth) instead of a common
// base keeps the tree's hot path copy-free — the loop body is the exact
// code the tree family always ran, so extracting it moved no metric pin.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "core/costben/equations.hpp"
#include "core/policy/context.hpp"
#include "core/policy/eviction.hpp"

namespace pfp::core::policy {

/// How the re-prefetch distance x of Eq. 11 is chosen for a block being
/// priced for ejection (the paper leaves x unspecified; DESIGN.md
/// discusses the default).  bench/abl03_refetch_distance measures the
/// impact of this choice.
enum class RefetchDistanceRule {
  kHorizon,      ///< x = min(d_b - 1, prefetch horizon)  (default)
  kParentDepth,  ///< x = d_b - 1 (re-prefetched at the last moment)
  kImmediate,    ///< x = 0 (ejected blocks come back as demand fetches)
};

/// Which buffer a cost-benefit policy reclaims (for demand fetches and
/// for prefetch admissions).  bench/abl04_eviction_policy compares them.
enum class ReclaimRule {
  kCostBased,      ///< cheaper of Eq. 11 / Eq. 13 victims (default)
  kPrefetchFirst,  ///< oldest prefetched block, then demand LRU
  kDemandFirst,    ///< demand LRU, then oldest prefetched block
};

/// The knobs the controller loop reads; each cost-benefit policy fills
/// this from its own config struct.
struct CostBenefitKnobs {
  std::uint32_t max_depth = 8;  ///< BenefitTable size (>= deepest candidate)
  /// Hard cap on prefetches per access period; a safety net, normally the
  /// cost-benefit inequality stops the loop first.
  std::uint32_t max_prefetches_per_period = 16;
  /// Minimum path probability a candidate must carry this period (the
  /// adaptive policy's feedback floor; 0 = no floor beyond enumeration).
  double probability_floor = 0.0;
  RefetchDistanceRule refetch = RefetchDistanceRule::kHorizon;
  /// Eq. 1 prices a candidate against re-offering it one period later at
  /// depth d-1 — valid for predictors that enumerate from the current
  /// context every access (the LZ tree, the delta chain).  Association
  /// candidates surface only when their source block is accessed; there
  /// is no later re-offer, so the alternative to prefetching is the
  /// demand fetch the block becomes: B = p_b * dT_pf(d).
  bool single_offer = false;
};

/// Evicts one buffer according to `rule` (shared by every cost-benefit
/// policy's reclaim paths).
inline void reclaim_by_rule(ReclaimRule rule, Context& ctx) {
  switch (rule) {
    case ReclaimRule::kCostBased:
      evict_cheapest(ctx);
      return;
    case ReclaimRule::kPrefetchFirst:
      evict_prefetch_first(ctx);
      return;
    case ReclaimRule::kDemandFirst:
      evict_demand_first(ctx);
      return;
  }
}

/// Admits one predictor-chosen block, computing its Eq. 11 ejection price
/// under the configured re-prefetch-distance rule.
template <typename Candidate>
void admit_predicted_prefetch(Context& ctx, const Candidate& candidate,
                              RefetchDistanceRule refetch) {
  const double s = ctx.estimators.s();
  // Re-prefetch distance x for Eq. 11: by default a displaced block would
  // be fetched again once it comes within the prefetch horizon (see
  // DESIGN.md); ablation rules pin x to the extremes.
  std::uint32_t x = 0;
  switch (refetch) {
    case RefetchDistanceRule::kHorizon:
      x = std::min(candidate.depth - 1,
                   costben::prefetch_horizon(ctx.timing, s));
      break;
    case RefetchDistanceRule::kParentDepth:
      x = candidate.depth - 1;
      break;
    case RefetchDistanceRule::kImmediate:
      x = 0;
      break;
  }
  cache::PrefetchEntry entry;
  entry.block = candidate.block;
  entry.probability = candidate.probability;
  entry.depth = candidate.depth;
  entry.eject_cost = costben::cost_eject_prefetch(
      ctx.timing, s, candidate.probability, candidate.depth, x);
  entry.obl = false;
  entry.issued_period = ctx.period;
  entry.completion_ms = ctx.disks.submit(candidate.block, ctx.now_ms);
  ctx.cache.admit_prefetch(entry);
  ++ctx.metrics.prefetches_issued;
  ++ctx.metrics.tree_prefetches_issued;
  ctx.metrics.sum_prefetch_probability += candidate.probability;
}

/// Runs selection / pricing / decision over one period's candidates;
/// returns the number of prefetches issued (callers fold it into the s
/// estimate).  `order` and `dtpf` are caller-owned scratch reused across
/// periods so the loop allocates nothing at steady state; `reclaim_one`
/// evicts exactly one buffer when the controller needs room (policies
/// route it through reclaim_by_rule or their own override).  Marks the
/// cost-benefit phase boundary after the pricing sort, exactly where the
/// tree family always marked it.
template <typename Candidate, typename ReclaimFn>
std::uint32_t run_cost_benefit_loop(
    std::span<const Candidate> candidates, const CostBenefitKnobs& knobs,
    Context& ctx, std::vector<std::pair<double, std::size_t>>& order,
    std::vector<double>& dtpf, ReclaimFn&& reclaim_one) {
  if (candidates.empty()) {
    return 0;
  }
  // s is an EWMA refreshed once per access period, so benefits are fixed
  // within the loop: tabulate dT_pf once and process best-first.
  const double s = ctx.estimators.s();
  const costben::BenefitTable benefit_of(ctx.timing, s, knobs.max_depth,
                                         dtpf);
  const double floor = knobs.probability_floor;
  order.clear();
  order.reserve(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const auto& c = candidates[i];
    if (c.probability < floor) {
      continue;  // below the (possibly adaptive) precision floor
    }
    const double b =
        knobs.single_offer
            ? c.probability * benefit_of.dtpf(c.depth)
            : benefit_of(c.probability, c.parent_probability, c.depth);
    if (b > 0.0) {
      order.emplace_back(b, i);
    }
  }
  std::sort(order.begin(), order.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  util::phase_mark(ctx.phases, util::EnginePhase::kCostBenefit);

  std::uint32_t issued = 0;
  for (const auto& [benefit_value, index] : order) {
    if (issued >= knobs.max_prefetches_per_period) {
      break;
    }
    const auto& candidate = candidates[index];
    ++ctx.metrics.candidates_chosen;
    if (ctx.cache.contains(candidate.block)) {
      // Figure 7: chosen, but already resident in one of the caches.
      ++ctx.metrics.candidates_already_cached;
      continue;
    }
    const double overhead = costben::prefetch_overhead(
        ctx.timing, candidate.probability, candidate.parent_probability);
    const double cost = ctx.cache.free_buffers() > 0
                            ? 0.0
                            : cheapest_eviction_cost(ctx);
    if (benefit_value - overhead < cost) {
      // Section 7 step 4: stop once replacing a block costs more than
      // prefetching the next-best block gains.
      break;
    }
    if (ctx.cache.free_buffers() == 0) {
      reclaim_one(ctx);
    }
    admit_predicted_prefetch(ctx, candidate, knobs.refetch);
    ++issued;
  }
  return issued;
}

}  // namespace pfp::core::policy
