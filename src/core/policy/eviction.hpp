// Replacement-victim selection helpers shared by the policies.
//
// Two families:
//  * cost-based (Sections 6/7): price the demand cache's LRU buffer with
//    Eq. 13 (measured marginal hit rate) and the prefetch cache's
//    cheapest entry with its stored Eq. 11 cost, and evict the cheaper —
//    used by all cost-benefit policies, for demand reclaims and prefetch
//    admissions alike ("Cost equations 11 and 13 also determine the best
//    buffer to replace during a demand fetch operation").
//  * simple: recency rules for the baseline policies that predate the
//    cost model (oldest prefetch first, or demand LRU first).
//
// All evictors record ejection metrics and report unused-prefetch fates
// to the h estimators.
#pragma once

#include "core/policy/context.hpp"

namespace pfp::core::policy {

/// Cost of the cheapest evictable buffer (Eq. 11 vs Eq. 13) without
/// evicting.  Infinity if both caches are empty.
double cheapest_eviction_cost(const Context& ctx);

/// Evicts the cheapest buffer per the cost model.  Returns its cost.
/// Requires at least one resident block.
double evict_cheapest(Context& ctx);

/// Evicts the oldest prefetch-cache entry if any, else the demand LRU
/// block.  Requires at least one resident block.
void evict_prefetch_first(Context& ctx);

/// Evicts the demand LRU block if any, else the oldest prefetch entry.
/// Requires at least one resident block.
void evict_demand_first(Context& ctx);

/// Removes a specific prefetch-cache block (quota enforcement), recording
/// its fate.
void eject_prefetch_block(Context& ctx, BlockId block);

}  // namespace pfp::core::policy
