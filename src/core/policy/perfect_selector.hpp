// perfect-selector: the Section 9.5 oracle bound on selection quality.
//
// Knows the next trace reference (via Context::upcoming) and prefetches
// it if and only if the tree identifies it as predictable — i.e. perfect
// *selection* among the tree's candidates, with unchanged *prediction*.
// The gap between this and plain tree measures how much better candidate
// selection could get (Figure 15).
#pragma once

#include "core/policy/tree_base.hpp"

namespace pfp::core::policy {

class PerfectSelector final : public TreeInstrumentedPrefetcher {
 public:
  PerfectSelector();  // unbounded tree
  explicit PerfectSelector(tree::TreeConfig config);

  [[nodiscard]] std::string name() const override { return "perfect-selector"; }
  void on_access(BlockId block, AccessOutcome outcome,
                 Context& ctx) override;
  void reclaim_for_demand(Context& ctx) override;
};

}  // namespace pfp::core::policy
