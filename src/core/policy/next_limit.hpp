// One-block-lookahead with a 10 % cache quota (Section 9's "next-limit").
#pragma once

#include "core/policy/obl.hpp"
#include "core/policy/prefetcher.hpp"

namespace pfp::core::policy {

class NextLimit final : public Prefetcher {
 public:
  explicit NextLimit(double quota_fraction = 0.10)
      : lookahead_(quota_fraction) {}

  [[nodiscard]] std::string name() const override { return "next-limit"; }
  void on_access(BlockId block, AccessOutcome outcome,
                 Context& ctx) override;
  void reclaim_for_demand(Context& ctx) override;

 private:
  SequentialLookahead lookahead_;
};

}  // namespace pfp::core::policy
