#include "core/policy/tree_children.hpp"

#include <algorithm>
#include <vector>

#include "core/costben/equations.hpp"
#include "core/policy/eviction.hpp"
#include "util/assert.hpp"

namespace pfp::core::policy {

TreeChildren::TreeChildren(std::uint32_t count, tree::TreeConfig config)
    : TreeInstrumentedPrefetcher(config), count_(count) {
  PFP_REQUIRE(count >= 1);
}

std::string TreeChildren::name() const {
  return "tree-children(" + std::to_string(count_) + ")";
}

void TreeChildren::on_access(BlockId block, AccessOutcome outcome,
                             Context& ctx) {
  observe_access(block, outcome, ctx);
  const tree::NodeId current = tree_.current();
  const auto children = tree_.children(current);

  // Top-k children by weight (== by probability; same denominator).  The
  // child list is maintained in descending weight order, so these are
  // simply the first k entries.
  const std::size_t keep = std::min<std::size_t>(count_, children.size());
  const auto ranked = children.first(keep);

  std::uint32_t issued = 0;
  for (const tree::NodeId child : ranked) {
    const BlockId target = tree_.block(child);
    ++ctx.metrics.candidates_chosen;
    if (ctx.cache.contains(target)) {
      ++ctx.metrics.candidates_already_cached;
      continue;
    }
    if (ctx.cache.free_buffers() == 0) {
      evict_prefetch_first(ctx);
    }
    const double p = tree_.edge_probability(current, child);
    cache::PrefetchEntry entry;
    entry.block = target;
    entry.probability = p;
    entry.depth = 1;
    entry.eject_cost = costben::cost_eject_prefetch(
        ctx.timing, ctx.estimators.s(), p, /*d_b=*/1, /*x=*/0);
    entry.obl = false;
    entry.issued_period = ctx.period;
    entry.completion_ms = ctx.disks.submit(target, ctx.now_ms);
    ctx.cache.admit_prefetch(entry);
    ++ctx.metrics.prefetches_issued;
    ++ctx.metrics.tree_prefetches_issued;
    ctx.metrics.sum_prefetch_probability += p;
    ++issued;
  }
  ctx.estimators.end_period(issued);
}

void TreeChildren::reclaim_for_demand(Context& ctx) {
  evict_prefetch_first(ctx);
}

}  // namespace pfp::core::policy
