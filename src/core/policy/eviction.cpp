#include "core/policy/eviction.hpp"

#include <limits>

#include "core/costben/equations.hpp"
#include "util/assert.hpp"

namespace pfp::core::policy {

namespace {

constexpr double kInfinity = std::numeric_limits<double>::infinity();

double demand_lru_cost(const Context& ctx) {
  const auto& demand = ctx.cache.demand();
  if (demand.empty()) {
    return kInfinity;
  }
  // Eq. 13 with the online estimate of H(n) - H(n-1) at the demand
  // cache's current size.
  const double marginal = ctx.stack.marginal_hit_rate(demand.size());
  return costben::cost_eject_demand(ctx.timing, marginal);
}

void do_eject_prefetch(Context& ctx, const cache::PrefetchEntry& entry) {
  ctx.cache.prefetch().remove(entry.block);
  ctx.estimators.prefetch_outcome(/*accessed=*/false, entry.obl);
  ++ctx.metrics.prefetch_ejections;
}

void do_evict_demand_lru(Context& ctx) {
  ctx.cache.demand().evict_lru();
  ++ctx.metrics.demand_ejections;
}

}  // namespace

double cheapest_eviction_cost(const Context& ctx) {
  double best = demand_lru_cost(ctx);
  if (const auto entry = ctx.cache.prefetch().cheapest()) {
    best = std::min(best, entry->eject_cost);
  }
  return best;
}

double evict_cheapest(Context& ctx) {
  PFP_REQUIRE(ctx.cache.resident() > 0);
  const double demand_cost = demand_lru_cost(ctx);
  const auto prefetch_victim = ctx.cache.prefetch().cheapest();
  const double prefetch_cost =
      prefetch_victim ? prefetch_victim->eject_cost : kInfinity;
  if (prefetch_cost <= demand_cost) {
    do_eject_prefetch(ctx, *prefetch_victim);
    return prefetch_cost;
  }
  do_evict_demand_lru(ctx);
  return demand_cost;
}

void evict_prefetch_first(Context& ctx) {
  PFP_REQUIRE(ctx.cache.resident() > 0);
  auto& prefetch = ctx.cache.prefetch();
  if (!prefetch.empty()) {
    const auto victim = prefetch.oldest_any();
    PFP_DASSERT(victim.has_value());
    do_eject_prefetch(ctx, *prefetch.lookup(*victim));
    return;
  }
  do_evict_demand_lru(ctx);
}

void evict_demand_first(Context& ctx) {
  PFP_REQUIRE(ctx.cache.resident() > 0);
  if (!ctx.cache.demand().empty()) {
    do_evict_demand_lru(ctx);
    return;
  }
  const auto victim = ctx.cache.prefetch().oldest_any();
  PFP_DASSERT(victim.has_value());
  do_eject_prefetch(ctx, *ctx.cache.prefetch().lookup(*victim));
}

void eject_prefetch_block(Context& ctx, BlockId block) {
  const auto entry = ctx.cache.prefetch().lookup(block);
  PFP_REQUIRE(entry.has_value());
  do_eject_prefetch(ctx, *entry);
}

}  // namespace pfp::core::policy
