// Shared state handed to prefetching policies each access period.
//
// The simulator owns the caches, timing model and estimators; policies
// receive them by reference through this context plus a metrics sink for
// the instrumentation the paper's figures need.  `upcoming` exposes the
// rest of the trace for oracle policies (perfect-selector, Section 9.5);
// honest policies never read it.
#pragma once

#include <cstdint>
#include <span>

#include "cache/buffer_cache.hpp"
#include "cache/disk_model.hpp"
#include "cache/stack_distance.hpp"
#include "core/costben/estimator.hpp"
#include "core/costben/timing_model.hpp"
#include "trace/record.hpp"
#include "util/phase.hpp"

namespace pfp::core::policy {

using trace::BlockId;

/// Counters written by policies; the simulator folds them into its
/// per-run metrics.  Each maps to a specific paper exhibit (noted).
struct PolicyMetrics {
  std::uint64_t prefetches_issued = 0;       ///< Fig 8 / Fig 11 numerator
  std::uint64_t obl_prefetches_issued = 0;   ///< one-block-lookahead share
  std::uint64_t tree_prefetches_issued = 0;  ///< tree-predicted share
  double sum_prefetch_probability = 0.0;     ///< Fig 10 numerator

  std::uint64_t candidates_chosen = 0;          ///< Fig 7 denominator
  std::uint64_t candidates_already_cached = 0;  ///< Fig 7 numerator

  std::uint64_t prefetch_ejections = 0;  ///< prefetched, ejected unused
  std::uint64_t demand_ejections = 0;

  std::uint64_t predictable = 0;           ///< Table 2 numerator
  std::uint64_t predictable_uncached = 0;  ///< Fig 14 numerator

  std::uint64_t lvc_opportunities = 0;  ///< Table 3 denominator
  std::uint64_t lvc_followed = 0;       ///< Table 3 numerator
  std::uint64_t lvc_checks = 0;         ///< Fig 16 denominator
  std::uint64_t lvc_cached = 0;         ///< Fig 16 numerator

  std::uint64_t tree_nodes = 0;  ///< live nodes at end of run (Sec 9.3)
  std::uint64_t tree_bytes = 0;  ///< paper's 40 B/node accounting
};

struct Context {
  cache::BufferCache& cache;
  /// Disk service model: prefetch issuers submit their reads here and
  /// stamp PrefetchEntry::completion_ms with the returned time.
  cache::DiskArray& disks;
  const costben::TimingParams& timing;
  costben::Estimators& estimators;
  cache::StackDistanceEstimator& stack;
  PolicyMetrics& metrics;
  std::uint64_t period = 0;
  /// Simulator virtual time at the start of this access period (ms).
  double now_ms = 0.0;
  /// Trace records after the one being processed (oracle policies only).
  std::span<const trace::TraceRecord> upcoming{};
  /// Phase-latency stopwatch (docs/observability.md); policies stamp
  /// stage boundaries via util::phase_mark.  Null when the driver is not
  /// instrumented; never influences any decision.
  util::PhaseStopwatch* phases = nullptr;
};

}  // namespace pfp::core::policy
