#include "core/policy/next_limit.hpp"

#include "core/policy/eviction.hpp"

namespace pfp::core::policy {

void NextLimit::on_access(BlockId block, AccessOutcome outcome,
                          Context& ctx) {
  std::uint32_t issued = 0;
  // Re-arm on demand fetches and on first references to prefetched
  // blocks, so sequential runs stream after a single miss.
  if (outcome == AccessOutcome::kMiss ||
      outcome == AccessOutcome::kPrefetchHit) {
    if (lookahead_.maybe_prefetch_next(block, ctx)) {
      issued = 1;
    }
  }
  ctx.estimators.end_period(issued);
}

void NextLimit::reclaim_for_demand(Context& ctx) {
  // Keep the (quota-bounded) lookahead blocks; a demand fetch displaces
  // the demand LRU block, as in an unpartitioned LRU cache.
  evict_demand_first(ctx);
}

}  // namespace pfp::core::policy
