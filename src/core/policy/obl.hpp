// One-block-lookahead machinery shared by next-limit and tree-next-limit.
//
// The paper's next-limit scheme "always prefetches the next disk block
// after a block is fetched on-demand", capping the cache fraction devoted
// to these speculative blocks at 10 % (Section 9).  As in classic OBL, a
// hit on a prefetched block re-arms the lookahead, so a sequential run
// costs one demand miss and then streams.  Quota overflow ejects the
// oldest OBL block; OBL entries are priced for the cost model with the
// online OBL hit-ratio estimate.
#pragma once

#include "core/policy/context.hpp"

namespace pfp::core::policy {

class SequentialLookahead {
 public:
  /// quota_fraction: max share of the total cache OBL blocks may occupy.
  explicit SequentialLookahead(double quota_fraction = 0.10);

  /// Arms the lookahead for `block` (call after a demand miss or a
  /// prefetch-cache hit): prefetches block + 1 unless already cached.
  /// Returns true if a prefetch was issued.
  bool maybe_prefetch_next(BlockId block, Context& ctx);

  [[nodiscard]] double quota_fraction() const noexcept { return quota_fraction_; }

 private:
  double quota_fraction_;
};

}  // namespace pfp::core::policy
