// tree-lvc: the Section 9.6 variant — cost-benefit prefetching plus an
// unconditional prefetch of the current node's last-visited child.
//
// The paper finds it performs no better than plain tree because >85 % of
// last-visited children are already cached (Figure 16); this policy
// exists to reproduce exactly that negative result.
#pragma once

#include "core/policy/tree_policy.hpp"

namespace pfp::core::policy {

class TreeLvc final : public TreeCostBenefit {
 public:
  TreeLvc();  // default config
  explicit TreeLvc(TreePolicyConfig config);

  [[nodiscard]] std::string name() const override { return "tree-lvc"; }
  void on_access(BlockId block, AccessOutcome outcome,
                 Context& ctx) override;
};

}  // namespace pfp::core::policy
