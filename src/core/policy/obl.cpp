#include "core/policy/obl.hpp"

#include <algorithm>

#include "core/costben/equations.hpp"
#include "core/policy/eviction.hpp"
#include "util/assert.hpp"

namespace pfp::core::policy {

SequentialLookahead::SequentialLookahead(double quota_fraction)
    : quota_fraction_(quota_fraction) {
  PFP_REQUIRE(quota_fraction > 0.0 && quota_fraction <= 1.0);
}

bool SequentialLookahead::maybe_prefetch_next(BlockId block, Context& ctx) {
  const BlockId target = block + 1;
  if (ctx.cache.contains(target)) {
    return false;
  }
  auto& prefetch = ctx.cache.prefetch();
  const auto quota = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             quota_fraction_ *
             static_cast<double>(ctx.cache.total_blocks())));
  if (prefetch.obl_count() >= quota) {
    // At quota: recycle the oldest OBL buffer for the new prefetch.
    const auto victim = prefetch.oldest_obl();
    PFP_DASSERT(victim.has_value());
    eject_prefetch_block(ctx, *victim);
  } else if (ctx.cache.free_buffers() == 0) {
    // Under quota but the pool is full: grow the OBL share at the expense
    // of the demand cache (that is what the 10 % cap is for).
    evict_demand_first(ctx);
  }
  const double p = ctx.estimators.obl_h();
  cache::PrefetchEntry entry;
  entry.block = target;
  entry.probability = p;
  entry.depth = 1;
  // Eq. 11 with d_b = 1, x = 0: losing the block costs a full demand
  // re-fetch weighted by the odds it would actually be used.
  entry.eject_cost =
      costben::cost_eject_prefetch(ctx.timing, ctx.estimators.s(), p,
                                   /*d_b=*/1, /*x=*/0);
  entry.obl = true;
  entry.issued_period = ctx.period;
  entry.completion_ms = ctx.disks.submit(target, ctx.now_ms);
  ctx.cache.admit_prefetch(entry);
  ++ctx.metrics.prefetches_issued;
  ++ctx.metrics.obl_prefetches_issued;
  return true;
}

}  // namespace pfp::core::policy
