#include "core/policy/markov_policy.hpp"

#include <span>

#include "util/phase.hpp"

namespace pfp::core::policy {

MarkovCostBenefit::MarkovCostBenefit()
    : MarkovCostBenefit(MarkovPolicyConfig{}) {}

MarkovCostBenefit::MarkovCostBenefit(MarkovPolicyConfig config)
    : config_(config), model_(config.model) {}

void MarkovCostBenefit::on_access(BlockId block, AccessOutcome outcome,
                                  Context& ctx) {
  (void)outcome;
  model_.observe(block);
  ctx.metrics.tree_nodes = model_.row_count();
  ctx.metrics.tree_bytes = model_.actual_memory_bytes();
  util::phase_mark(ctx.phases, util::EnginePhase::kPredictorUpdate);

  candidates_.clear();
  model_.predict_into(config_.limits, candidates_);
  util::phase_mark(ctx.phases, util::EnginePhase::kEnumeration);

  CostBenefitKnobs knobs;
  knobs.max_depth = config_.limits.max_depth;
  knobs.max_prefetches_per_period = config_.max_prefetches_per_period;
  knobs.refetch = config_.refetch;
  const std::uint32_t issued = run_cost_benefit_loop(
      std::span<const costben::PredictedBlock>(candidates_), knobs, ctx,
      order_, dtpf_, [this](Context& c) { reclaim_by_rule(config_.reclaim, c); });
  ctx.estimators.end_period(issued);
}

void MarkovCostBenefit::reclaim_for_demand(Context& ctx) {
  // Section 6.2: the same cost equations pick the replacement victim for
  // demand fetches (unless an ablation overrides the rule).
  reclaim_by_rule(config_.reclaim, ctx);
}

std::uint32_t MarkovCostBenefit::predictor_state_tag() const {
  return kPredictorMarkov;
}

void MarkovCostBenefit::save_predictor_state(std::ostream& out) const {
  model_.serialize(out);
}

bool MarkovCostBenefit::load_predictor_state(std::istream& in) {
  model_ = markov::DeltaMarkov::deserialize(in, config_.model);
  return true;
}

std::size_t MarkovCostBenefit::predictions_into(
    std::vector<costben::PredictedBlock>& out) const {
  return model_.predict_into(config_.limits, out);
}

}  // namespace pfp::core::policy
