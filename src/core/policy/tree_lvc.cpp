#include "core/policy/tree_lvc.hpp"

#include "core/costben/equations.hpp"
#include "core/policy/eviction.hpp"

namespace pfp::core::policy {

TreeLvc::TreeLvc() : TreeLvc(TreePolicyConfig{}) {}

TreeLvc::TreeLvc(TreePolicyConfig config) : TreeCostBenefit(config) {}

void TreeLvc::on_access(BlockId block, AccessOutcome outcome, Context& ctx) {
  observe_access(block, outcome, ctx);
  std::uint32_t issued = run_cost_benefit(ctx);

  // "...prefetches the last visited child of a node in addition to
  // prefetching blocks determined by cost-benefit analysis" (Sec 9.6).
  const tree::NodeId current = tree_.current();
  const tree::NodeId lvc = tree_.last_visited_child(current);
  if (lvc != tree::kNoNode) {
    const BlockId target = tree_.block(lvc);
    if (!ctx.cache.contains(target)) {
      if (ctx.cache.free_buffers() == 0) {
        evict_cheapest(ctx);
      }
      tree::Candidate candidate;
      candidate.block = target;
      candidate.probability = tree_.edge_probability(current, lvc);
      candidate.parent_probability = 1.0;
      candidate.depth = 1;
      candidate.node = lvc;
      admit_predicted_prefetch(ctx, candidate, config_.refetch);
      ++issued;
    }
  }
  ctx.estimators.end_period(issued);
}

}  // namespace pfp::core::policy
