#include "core/policy/prob_graph.hpp"

#include <algorithm>

#include "core/costben/equations.hpp"
#include "core/policy/eviction.hpp"
#include "util/assert.hpp"

namespace pfp::core::policy {

ProbGraph::ProbGraph() : ProbGraph(ProbGraphConfig{}) {}

ProbGraph::ProbGraph(ProbGraphConfig config) : config_(config) {
  PFP_REQUIRE(config_.min_probability > 0.0 &&
              config_.min_probability <= 1.0);
  PFP_REQUIRE(config_.max_prefetches >= 1);
  PFP_REQUIRE(config_.max_successors >= 1);
}

void ProbGraph::record_transition(BlockId from, BlockId to) {
  Node& node = graph_[from];
  ++node.total;
  auto& edges = node.edges;
  const auto it = std::find_if(edges.begin(), edges.end(),
                               [&](const Edge& e) {
                                 return e.successor == to;
                               });
  if (it != edges.end()) {
    ++it->count;
    // Restore descending order with a single bubble step (counts grow by
    // one, so the edge can climb at most past equal-count neighbours).
    auto pos = it;
    while (pos != edges.begin() && (pos - 1)->count < pos->count) {
      std::iter_swap(pos - 1, pos);
      --pos;
    }
    return;
  }
  if (edges.size() < config_.max_successors) {
    edges.push_back(Edge{to, 1});
    return;
  }
  // Full: replace the weakest edge (list is sorted, so it is the last).
  edges.back() = Edge{to, 1};
}

double ProbGraph::successor_probability(BlockId block,
                                        BlockId successor) const {
  const auto it = graph_.find(block);
  if (it == graph_.end() || it->second.total == 0) {
    return 0.0;
  }
  for (const Edge& e : it->second.edges) {
    if (e.successor == successor) {
      return static_cast<double>(e.count) /
             static_cast<double>(it->second.total);
    }
  }
  return 0.0;
}

void ProbGraph::on_access(BlockId block, AccessOutcome outcome,
                          Context& ctx) {
  (void)outcome;
  if (has_previous_) {
    record_transition(previous_, block);
  }
  previous_ = block;
  has_previous_ = true;

  std::uint32_t issued = 0;
  const auto it = graph_.find(block);
  if (it != graph_.end() && it->second.total > 0) {
    const double total = static_cast<double>(it->second.total);
    for (const Edge& edge : it->second.edges) {
      if (issued >= config_.max_prefetches) {
        break;
      }
      const double p = static_cast<double>(edge.count) / total;
      if (p < config_.min_probability) {
        break;  // sorted by count: the rest are weaker
      }
      ++ctx.metrics.candidates_chosen;
      if (ctx.cache.contains(edge.successor)) {
        ++ctx.metrics.candidates_already_cached;
        continue;
      }
      if (ctx.cache.free_buffers() == 0) {
        evict_prefetch_first(ctx);
      }
      cache::PrefetchEntry entry;
      entry.block = edge.successor;
      entry.probability = p;
      entry.depth = 1;
      entry.eject_cost = costben::cost_eject_prefetch(
          ctx.timing, ctx.estimators.s(), p, /*d_b=*/1, /*x=*/0);
      entry.obl = false;
      entry.issued_period = ctx.period;
      entry.completion_ms = ctx.disks.submit(edge.successor, ctx.now_ms);
      ctx.cache.admit_prefetch(entry);
      ++ctx.metrics.prefetches_issued;
      ++ctx.metrics.tree_prefetches_issued;
      ctx.metrics.sum_prefetch_probability += p;
      ++issued;
    }
  }
  ctx.estimators.end_period(issued);
}

void ProbGraph::reclaim_for_demand(Context& ctx) {
  evict_prefetch_first(ctx);
}

}  // namespace pfp::core::policy
