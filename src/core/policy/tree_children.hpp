// tree-children: Kroeger & Long's parametric scheme (Section 9.7).
//
// After each access, the k highest-probability children of the current
// tree node are prefetched — no cost-benefit analysis.  The paper found
// the optimal k ranges from 3 to 10 depending on workload; Figure 17
// compares the cost-benefit tree against the best tuned k.
#pragma once

#include "core/policy/tree_base.hpp"

namespace pfp::core::policy {

class TreeChildren final : public TreeInstrumentedPrefetcher {
 public:
  explicit TreeChildren(std::uint32_t count,
                        tree::TreeConfig config = tree::TreeConfig{});

  [[nodiscard]] std::string name() const override;
  void on_access(BlockId block, AccessOutcome outcome,
                 Context& ctx) override;
  void reclaim_for_demand(Context& ctx) override;

  [[nodiscard]] std::uint32_t count() const noexcept { return count_; }

 private:
  std::uint32_t count_;
};

}  // namespace pfp::core::policy
