#include "core/policy/tree_threshold.hpp"

#include "core/costben/equations.hpp"
#include "core/policy/eviction.hpp"
#include "util/assert.hpp"
#include "util/string_utils.hpp"

namespace pfp::core::policy {

TreeThreshold::TreeThreshold(double threshold, tree::TreeConfig config)
    : TreeInstrumentedPrefetcher(config), threshold_(threshold) {
  PFP_REQUIRE(threshold > 0.0 && threshold <= 1.0);
}

std::string TreeThreshold::name() const {
  return "tree-threshold(" + util::format_double(threshold_, 3) + ")";
}

void TreeThreshold::on_access(BlockId block, AccessOutcome outcome,
                              Context& ctx) {
  observe_access(block, outcome, ctx);
  std::uint32_t issued = 0;
  const tree::NodeId current = tree_.current();
  for (const tree::NodeId child : tree_.children(current)) {
    const double p = tree_.edge_probability(current, child);
    if (p < threshold_) {
      break;  // children sorted by descending weight: the rest also fail
    }
    const BlockId target = tree_.block(child);
    ++ctx.metrics.candidates_chosen;
    if (ctx.cache.contains(target)) {
      ++ctx.metrics.candidates_already_cached;
      continue;
    }
    if (ctx.cache.free_buffers() == 0) {
      evict_prefetch_first(ctx);
    }
    cache::PrefetchEntry entry;
    entry.block = target;
    entry.probability = p;
    entry.depth = 1;
    entry.eject_cost = costben::cost_eject_prefetch(
        ctx.timing, ctx.estimators.s(), p, /*d_b=*/1, /*x=*/0);
    entry.obl = false;
    entry.issued_period = ctx.period;
    entry.completion_ms = ctx.disks.submit(target, ctx.now_ms);
    ctx.cache.admit_prefetch(entry);
    ++ctx.metrics.prefetches_issued;
    ++ctx.metrics.tree_prefetches_issued;
    ctx.metrics.sum_prefetch_probability += p;
    ++issued;
  }
  ctx.estimators.end_period(issued);
}

void TreeThreshold::reclaim_for_demand(Context& ctx) {
  // Speculative blocks yield to demand fetches; this self-limits the
  // prefetch cache in the absence of a cost model.
  evict_prefetch_first(ctx);
}

}  // namespace pfp::core::policy
