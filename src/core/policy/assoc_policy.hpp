// assoc: MITHRIL-style association mining under the paper's cost-benefit
// controller.
//
// The association miner (core/assoc) learns which blocks tend to follow
// a given block within a short window even across interleaved traffic;
// on each access the mined associations of the accessed block become the
// candidate stream for the shared run_cost_benefit_loop.  Association
// candidates are parentless — the prediction is conditioned directly on
// the observed access, not on an earlier prefetch — so they use the
// parentless p_x convention documented in costben/candidate.hpp and pay
// no Eq. 14 overhead.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/assoc/association_miner.hpp"
#include "core/policy/cost_benefit.hpp"
#include "core/policy/prefetcher.hpp"

namespace pfp::core::policy {

struct AssocPolicyConfig {
  assoc::AssocConfig miner;
  assoc::AssocPredictLimits limits;
  /// Hard cap on prefetches per access period; a safety net, normally the
  /// cost-benefit inequality stops the loop first.
  std::uint32_t max_prefetches_per_period = 16;
  RefetchDistanceRule refetch = RefetchDistanceRule::kHorizon;
  ReclaimRule reclaim = ReclaimRule::kCostBased;
};

class AssocCostBenefit final : public Prefetcher {
 public:
  AssocCostBenefit();  // default config
  explicit AssocCostBenefit(AssocPolicyConfig config);

  [[nodiscard]] std::string name() const override { return "assoc"; }
  void on_access(BlockId block, AccessOutcome outcome,
                 Context& ctx) override;
  void reclaim_for_demand(Context& ctx) override;

  [[nodiscard]] std::uint32_t predictor_state_tag() const override;
  void save_predictor_state(std::ostream& out) const override;
  bool load_predictor_state(std::istream& in) override;
  std::size_t predictions_into(
      std::vector<costben::PredictedBlock>& out) const override;

  [[nodiscard]] const AssocPolicyConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] const assoc::AssociationMiner& miner() const noexcept {
    return miner_;
  }

 private:
  AssocPolicyConfig config_;
  assoc::AssociationMiner miner_;
  BlockId last_block_ = 0;  ///< predictions_into introspects from here
  bool has_last_block_ = false;
  /// Reused across access periods so the per-access hot path performs no
  /// heap allocation once the buffers reach steady-state size.
  std::vector<costben::PredictedBlock> candidates_;
  std::vector<std::pair<double, std::size_t>> order_;
  std::vector<double> dtpf_;  ///< per-period Eq. 2 table (BenefitTable)
};

}  // namespace pfp::core::policy
