// Base for every policy that maintains an LZ prefetch tree.
//
// Centralizes the parse step and the instrumentation the paper reports
// about tree behaviour regardless of policy: prediction accuracy
// (Table 2), predictable-but-uncached (Figure 14), last-visited-child
// revisit and residency (Table 3 / Figure 16), and tree size (Sec 9.3).
#pragma once

#include "core/policy/prefetcher.hpp"
#include "core/tree/prefetch_tree.hpp"

namespace pfp::core::policy {

class TreeInstrumentedPrefetcher : public Prefetcher {
 public:
  explicit TreeInstrumentedPrefetcher(tree::TreeConfig config);

  [[nodiscard]] const tree::PrefetchTree& prefetch_tree() const noexcept { return tree_; }

  /// Engine snapshot hooks: the tree is the persistent predictor state.
  [[nodiscard]] const tree::PrefetchTree* predictor_tree() const override;
  bool restore_predictor_tree(tree::PrefetchTree tree) override;

 protected:
  /// Feeds the reference through the parse and updates the shared tree
  /// metrics.  Call exactly once per on_access.
  tree::AccessInfo observe_access(BlockId block, AccessOutcome outcome,
                                  Context& ctx);

  tree::PrefetchTree tree_;
};

}  // namespace pfp::core::policy
