// Base for every policy that maintains an LZ prefetch tree.
//
// Centralizes the parse step and the instrumentation the paper reports
// about tree behaviour regardless of policy: prediction accuracy
// (Table 2), predictable-but-uncached (Figure 14), last-visited-child
// revisit and residency (Table 3 / Figure 16), and tree size (Sec 9.3).
#pragma once

#include "core/policy/prefetcher.hpp"
#include "core/tree/enumerator.hpp"
#include "core/tree/prefetch_tree.hpp"

namespace pfp::core::policy {

class TreeInstrumentedPrefetcher : public Prefetcher {
 public:
  explicit TreeInstrumentedPrefetcher(tree::TreeConfig config);

  [[nodiscard]] const tree::PrefetchTree& prefetch_tree() const noexcept { return tree_; }

  /// Generic predictor-state surface: the tree is the durable predictor.
  /// The opaque stream is core/tree/serialize's "PFTR" format; the growth
  /// bound on load comes from the live policy's configuration, not the
  /// stream (it stores structure only).
  [[nodiscard]] std::uint32_t predictor_state_tag() const override;
  void save_predictor_state(std::ostream& out) const override;
  bool load_predictor_state(std::istream& in) override;
  std::size_t predictions_into(
      std::vector<costben::PredictedBlock>& out) const override;

 protected:
  /// Enumeration limits predictions_into() applies; cost-benefit policies
  /// override this with their configured limits so introspection sees the
  /// same candidate set the controller prices.
  [[nodiscard]] virtual tree::EnumeratorLimits prediction_limits() const;
  /// Feeds the reference through the parse and updates the shared tree
  /// metrics.  Call exactly once per on_access.
  tree::AccessInfo observe_access(BlockId block, AccessOutcome outcome,
                                  Context& ctx);

  tree::PrefetchTree tree_;
};

}  // namespace pfp::core::policy
