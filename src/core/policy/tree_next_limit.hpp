// tree-next-limit: cost-benefit tree prefetching combined with quota-
// limited one-block-lookahead (Section 9).
//
// The OBL half removes compulsory misses on sequential runs; the tree
// half removes repeat misses on learned non-sequential patterns.  The
// paper observes the two reductions are additive because they target
// disjoint miss classes.
#pragma once

#include "core/policy/obl.hpp"
#include "core/policy/tree_policy.hpp"

namespace pfp::core::policy {

class TreeNextLimit final : public TreeCostBenefit {
 public:
  TreeNextLimit();  // default config, 10 % OBL quota
  TreeNextLimit(TreePolicyConfig config, double quota_fraction);

  [[nodiscard]] std::string name() const override { return "tree-next-limit"; }
  void on_access(BlockId block, AccessOutcome outcome,
                 Context& ctx) override;

 private:
  SequentialLookahead lookahead_;
};

}  // namespace pfp::core::policy
